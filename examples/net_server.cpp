// Process entry point for the networked shard tier — one binary, three
// roles (tests/net_harness.cpp and the CI `network` job drive it):
//
//   net_server shard   --listen EP
//       One shard server.  Serves kUnavailable until a leader bootstraps
//       it; kShutdown (or SIGTERM) exits.
//
//   net_server leader  --listen EP --shards EP1,EP2,... --n N --seed S
//                      [--dir D] [--every K]
//       Builds the deterministic (N, S) instance, runs one distributed
//       build, bootstraps the shard servers and serves the consolidated
//       QueryService API (kQuery/kIngest/kStats) on EP.  With --dir the
//       tier journals + snapshots there and kSubscribe streams committed
//       journal frames to replicas.
//
//   net_server replica --listen EP --leader EP
//       Subscribes to the leader, replays its journal, serves read-only
//       queries on EP (kIngest answers kNotLeader) — and keeps serving its
//       last contiguous generation when the leader dies.
//
// Every role prints "LISTENING <endpoint>" once ready (harnesses parse it;
// --listen may use port 0) and logs one line per lifecycle event, so CI can
// upload the logs on failure.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "net/client.hpp"
#include "net/replicate.hpp"
#include "net/server.hpp"
#include "service/service.hpp"

namespace g = mpcmst::graph;
namespace svc = mpcmst::service;
namespace net = mpcmst::service::net;

namespace {

/// The deterministic workload instance: harnesses rebuild the identical
/// instance in-process from the same (n, seed) to compare answers.
g::Instance make_instance(std::size_t n, std::uint64_t seed) {
  auto tree = g::random_recursive_tree(n, seed);
  g::assign_random_tree_weights(tree, 1, 40, seed + 2);
  return g::make_mst_instance(std::move(tree), 2 * n, seed + 4, /*slack=*/4);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

struct Args {
  std::string listen;
  std::string leader;
  std::string shards_csv;
  std::string dir;
  std::size_t n = 64;
  std::uint64_t seed = 7;
  std::size_t every = 8;  // snapshot_every_n for --dir tiers
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_val = i + 1 < argc;
    if (arg == "--listen" && has_val)
      a.listen = argv[++i];
    else if (arg == "--leader" && has_val)
      a.leader = argv[++i];
    else if (arg == "--shards" && has_val)
      a.shards_csv = argv[++i];
    else if (arg == "--dir" && has_val)
      a.dir = argv[++i];
    else if (arg == "--n" && has_val)
      a.n = std::stoul(argv[++i]);
    else if (arg == "--seed" && has_val)
      a.seed = std::stoull(argv[++i]);
    else if (arg == "--every" && has_val)
      a.every = std::stoul(argv[++i]);
    else
      return false;
  }
  return !a.listen.empty();
}

int run_shard(const Args& a) {
  net::ShardServer server(net::Listener::bind(a.listen));
  std::cout << "LISTENING " << server.endpoint() << std::endl;
  server.start();
  server.wait();
  std::cout << "shard: shut down" << std::endl;
  return 0;
}

int run_leader(const Args& a) {
  const std::vector<std::string> shards = split_csv(a.shards_csv);
  if (shards.empty()) {
    std::cerr << "leader: --shards is required" << std::endl;
    return 2;
  }
  const g::Instance inst = make_instance(a.n, a.seed);
  mpcmst::mpc::Engine eng(
      mpcmst::mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));

  svc::ServiceConfig cfg;
  cfg.engine = &eng;
  cfg.instance = &inst;
  cfg.live = true;
  cfg.remote_shards = shards;
  if (!a.dir.empty())
    cfg.persist = svc::PersistenceConfig{a.dir, svc::SyncMode::kCommit,
                                         a.every};
  std::shared_ptr<svc::QueryService> service = svc::QueryService::open(cfg);
  std::cout << "leader: tier bootstrapped, generation "
            << service->backend().generation() << ", fingerprint "
            << service->backend().fingerprint() << std::endl;

  std::shared_ptr<net::ReplicationHub> hub;
  if (!a.dir.empty()) {
    hub = std::make_shared<net::ReplicationHub>(a.dir);
    service->updatable_backend()->set_commit_listener(
        [hub](const std::vector<svc::JournalRecord>& recs) {
          hub->publish(recs);
        });
  }

  net::ServiceServer server(net::Listener::bind(a.listen),
                            [service] { return service; });
  server.set_ingest_handler(
      [service](const std::vector<svc::EdgeEvent>& events) {
        return service->ingest(events);
      });
  if (hub)
    server.set_subscribe_handler(
        [hub](net::Socket s, std::uint64_t last_gen, bool have_state) {
          hub->subscribe(std::move(s), last_gen, have_state);
        });
  std::cout << "LISTENING " << server.endpoint() << std::endl;
  server.start();
  server.wait();
  std::cout << "leader: shut down" << std::endl;
  return 0;
}

int run_replica(const Args& a) {
  if (a.leader.empty()) {
    std::cerr << "replica: --leader is required" << std::endl;
    return 2;
  }
  auto node = std::make_shared<net::ReplicaNode>(a.leader);
  node->start();
  net::ServiceServer server(net::Listener::bind(a.listen),
                            [node] { return node->service(); });
  std::cout << "LISTENING " << server.endpoint() << std::endl;
  server.start();
  server.wait();
  node->stop();
  std::cout << "replica: shut down at generation "
            << node->applied_generation() << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A dropped replica/client connection must surface as a recv error, not
  // kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  const std::string usage =
      "usage: net_server <shard|leader|replica> --listen EP "
      "[--shards EP1,EP2,...] [--leader EP] [--n N] [--seed S] [--dir D]";
  try {
    Args a;
    if (argc < 2 || !parse_args(argc, argv, a)) {
      std::cerr << usage << std::endl;
      return 2;
    }
    const std::string mode = argv[1];
    if (mode == "shard") return run_shard(a);
    if (mode == "leader") return run_leader(a);
    if (mode == "replica") return run_replica(a);
    std::cerr << usage << std::endl;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "FATAL: " << e.what() << std::endl;
    return 1;
  }
}
