// Scenario: auditing the spanning backbone of a low-diameter datacenter
// fabric.  The fabric is a 3-tier hierarchy (core / aggregation / rack)
// with abundant redundant cross-links; operations claims their configured
// spanning tree is cost-optimal.  We verify the claim on the MPC (this is
// exactly the regime the paper targets: diameter O(log n), so verification
// takes O(log D_T) << O(log n) rounds), then rank the most fragile backbone
// links — the ones whose failure or repricing is cheapest to absorb.
//
//   $ ./network_audit [n_racks]
#include <algorithm>
#include <iostream>
#include <random>
#include <vector>

#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "sensitivity/sensitivity.hpp"
#include "verify/verifier.hpp"

using namespace mpcmst;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 4096;

  // 3-tier hierarchy: a 16-ary tree has depth ~3-4 at this size.
  auto tree = graph::kary_tree(n, 16);
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<graph::Weight> link_cost(10, 99);
  for (std::size_t v = 1; v < n; ++v) tree.weight[v] = link_cost(rng);

  // Redundant cross-links priced above the backbone (the backbone was
  // provisioned as the cheap tier), then a handful mispriced below — the
  // audit must catch those.
  auto inst = graph::make_layered_instance(tree, 4 * n, 7, /*band=*/100);
  for (std::size_t v = 1; v < n; ++v)
    inst.tree.weight[v] = link_cost(rng);  // re-randomize inside the band

  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  auto verdict = verify::verify_mst_mpc(eng, inst);
  std::cout << "fabric: " << n << " switches, " << inst.m() << " links, "
            << "tree height ~4\n";
  std::cout << "audit verdict: backbone is "
            << (verdict.is_mst ? "cost-optimal (MST)" : "NOT optimal")
            << " — " << eng.rounds() << " MPC rounds\n\n";

  // Introduce two mispriced cross-links and re-audit.
  const std::size_t flipped = graph::inject_violations(inst, 2, 99);
  mpc::Engine eng2(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  verdict = verify::verify_mst_mpc(eng2, inst);
  std::cout << "after mispricing " << flipped << " cross-links: "
            << (verdict.is_mst ? "still optimal?!" : "audit flags the tree")
            << " (" << verdict.violations << " violating links)\n\n";

  // Fix the pricing back (fresh instance) and rank fragile backbone links.
  inst = graph::make_layered_instance(graph::kary_tree(n, 16), 4 * n, 7, 100);
  mpc::Engine eng3(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto sens = sensitivity::mst_sensitivity_mpc(eng3, inst);

  std::vector<sensitivity::TreeEdgeSens> ranked(sens.tree.local());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.sens < b.sens; });
  std::cout << "10 most fragile backbone links (smallest price headroom "
               "before the optimum changes):\n";
  std::cout << "  link {v,parent}  cost  replacement  headroom\n";
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i) {
    const auto& t = ranked[i];
    std::cout << "  {" << t.v << "," << inst.tree.parent[t.v] << "}  " << t.w
              << "  ";
    if (t.mc == graph::kPosInfW)
      std::cout << "none (bridge)\n";
    else
      std::cout << t.mc << "  " << t.sens << "\n";
  }
  std::cout << "\nsensitivity rounds: " << eng3.rounds()
            << ", peak memory/input: "
            << static_cast<double>(eng3.stats().peak_global_words) /
                   static_cast<double>(inst.input_words())
            << "\n";
  return 0;
}
