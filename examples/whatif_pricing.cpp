// Scenario: what-if pricing for a utility's distribution network.  The
// operator runs the network as an MST of candidate corridors; procurement
// wants to know, per corridor:
//   - for built corridors (tree edges): how much the maintenance price can
//     rise before the corridor drops out of the optimal plan, and which
//     corridor replaces it (Definition 1.2, tree side);
//   - for unbuilt corridors (non-tree edges): the price cut needed before
//     building it becomes optimal (Definition 1.2, non-tree side).
// This is MST sensitivity verbatim; one MPC run answers every corridor.
//
//   $ ./whatif_pricing [n]
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "sensitivity/sensitivity.hpp"
#include "seq/oracles.hpp"

using namespace mpcmst;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 2000;

  // Semi-rural network: a few long feeder lines (deepish tree) plus local
  // meshing proposals.
  auto tree = graph::caterpillar_tree(n, n / 8, 17);
  graph::assign_random_tree_weights(tree, 100, 999, 23);
  auto inst = graph::make_mst_instance(std::move(tree), 3 * n, 29,
                                       /*slack=*/400);

  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto sens = sensitivity::mst_sensitivity_mpc(eng, inst);

  // Built corridors with the least pricing headroom.
  std::vector<sensitivity::TreeEdgeSens> built(sens.tree.local());
  std::sort(built.begin(), built.end(),
            [](const auto& a, const auto& b) { return a.sens < b.sens; });
  std::cout << "corridors at pricing risk (price rise that changes the "
               "optimal plan):\n";
  std::cout << "  corridor  price  cheapest-alternative  headroom\n";
  for (std::size_t i = 0; i < 8 && i < built.size(); ++i) {
    const auto& t = built[i];
    std::cout << "  {" << t.v << "," << inst.tree.parent[t.v] << "}  " << t.w
              << "  " << (t.mc == graph::kPosInfW ? -1 : t.mc) << "  "
              << (t.sens == graph::kPosInfW ? -1 : t.sens) << "\n";
  }

  // Unbuilt corridors closest to entering the optimal plan.
  std::vector<sensitivity::NonTreeEdgeSens> unbuilt(sens.nontree.local());
  std::sort(unbuilt.begin(), unbuilt.end(),
            [](const auto& a, const auto& b) { return a.sens < b.sens; });
  std::cout << "\nunbuilt corridors closest to viability (required price "
               "cut):\n";
  std::cout << "  corridor  price  displaces-at  cut-needed\n";
  for (std::size_t i = 0; i < 8 && i < unbuilt.size(); ++i) {
    const auto& e = unbuilt[i];
    const auto& edge = inst.nontree[e.orig_id];
    std::cout << "  {" << edge.u << "," << edge.v << "}  " << e.w << "  "
              << e.maxpath << "  " << e.sens << "\n";
  }

  // Sanity: the cheapest projected swap really keeps the plan optimal.
  // (Lower the best unbuilt corridor by its sens and re-verify.)
  if (!unbuilt.empty() && unbuilt.front().sens > 0) {
    auto mutated = inst;
    mutated.nontree[unbuilt.front().orig_id].w -= unbuilt.front().sens;
    std::cout << "\nafter applying the top cut, the tree is "
              << (seq::verify_mst(mutated) ? "still optimal (tie swap)"
                                           : "no longer uniquely optimal")
              << "\n";
  }
  std::cout << "\nanswered " << (inst.m()) << " corridor questions in "
            << eng.rounds() << " MPC rounds\n";
  return 0;
}
