// Scenario: what-if pricing for a utility's distribution network.  The
// operator runs the network as an MST of candidate corridors; procurement
// wants to know, per corridor:
//   - for built corridors (tree edges): how much the maintenance price can
//     rise before the corridor drops out of the optimal plan, and which
//     corridor replaces it (Definition 1.2, tree side);
//   - for unbuilt corridors (non-tree edges): the price cut needed before
//     building it becomes optimal (Definition 1.2, non-tree side).
// One distributed run builds the sensitivity index; every corridor question
// after that is a cheap local query against the service (src/service/).
// Corridors nothing can replace report "unbounded" headroom — the kPosInfW
// sentinel is never printed as if it were a price.
//
//   $ ./whatif_pricing [n]
#include <algorithm>
#include <iostream>
#include <vector>

#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "service/service.hpp"
#include "seq/oracles.hpp"

using namespace mpcmst;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 2000;

  // Semi-rural network: a few long feeder lines (deepish tree) plus local
  // meshing proposals.
  auto tree = graph::caterpillar_tree(n, n / 8, 17);
  graph::assign_random_tree_weights(tree, 100, 999, 23);
  auto inst = graph::make_mst_instance(std::move(tree), 3 * n, 29,
                                       /*slack=*/400);

  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  auto service = service::QueryService::build(eng, inst);
  const auto& index = service->index();

  // Built corridors with the least pricing headroom, via one top-k query.
  std::cout << "corridors at pricing risk (price rise that changes the "
               "optimal plan):\n";
  std::cout << "  corridor  price  cheapest-alternative  headroom\n";
  const auto fragile = service->top_k_fragile(8);
  for (const auto& f : fragile.fragile) {
    std::cout << "  {" << f.child << "," << f.parent << "}  " << f.w << "  ";
    if (f.replacement < 0) {
      // Uncovered corridor: nothing can replace it, headroom is unbounded.
      std::cout << "none  unbounded\n";
      continue;
    }
    const auto& alt = index.nontree_edge(f.replacement);
    std::cout << alt.w << " (corridor {" << alt.u << "," << alt.v << "})  "
              << f.sens << "\n";
  }

  // Unbuilt corridors closest to entering the optimal plan: smallest
  // non-tree headroom.  Edges that cover nothing (kPosInfW headroom) can
  // never enter and are skipped rather than printed as prices.
  struct Candidate {
    std::int64_t id;
    graph::Weight sens;
  };
  std::vector<Candidate> unbuilt;
  unbuilt.reserve(index.num_nontree());
  for (std::size_t i = 0; i < index.num_nontree(); ++i) {
    const auto& e = index.nontree_edge(static_cast<std::int64_t>(i));
    if (e.sens >= graph::kPosInfW) continue;
    // Skip corridors shadowed by a parallel edge: endpoint queries resolve
    // to the tree edge (or the lightest duplicate), so the service would be
    // answering about a different corridor than this row.
    const auto ref = index.find(e.u, e.v);
    if (!ref || ref->is_tree || ref->id != static_cast<std::int64_t>(i))
      continue;
    unbuilt.push_back({static_cast<std::int64_t>(i), e.sens});
  }
  std::sort(unbuilt.begin(), unbuilt.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.sens != b.sens ? a.sens < b.sens : a.id < b.id;
            });
  std::cout << "\nunbuilt corridors closest to viability (required price "
               "cut):\n";
  std::cout << "  corridor  price  displaces-at  cut-needed\n";
  for (std::size_t i = 0; i < 8 && i < unbuilt.size(); ++i) {
    const auto& e = index.nontree_edge(unbuilt[i].id);
    const auto a = service->price_change(e.u, e.v, -e.sens - 1);
    std::cout << "  {" << e.u << "," << e.v << "}  " << e.w << "  "
              << e.maxpath << "  " << e.sens
              << (a.still_optimal ? "" : "  (cut+1 flips the plan)") << "\n";
  }

  // Sanity: the cheapest projected swap really keeps the plan optimal.
  // (Lower the best unbuilt corridor by its headroom and re-verify.)
  if (!unbuilt.empty() && unbuilt.front().sens > 0) {
    const auto& e = index.nontree_edge(unbuilt.front().id);
    const auto at_tie = service->price_change(e.u, e.v, -unbuilt.front().sens);
    auto mutated = inst;
    mutated.nontree[unbuilt.front().id].w -= unbuilt.front().sens;
    const bool oracle = seq::verify_mst(mutated);
    std::cout << "\nafter applying the top cut, the tree is "
              << (oracle ? "still optimal (tie swap)"
                         : "no longer uniquely optimal")
              << "; the service " << (at_tie.still_optimal == oracle
                                          ? "agrees"
                                          : "DISAGREES (bug!)")
              << "\n";
  }

  const auto stats = service->stats();
  std::cout << "\nanswered " << stats.queries_served
            << " corridor questions against one index built in "
            << index.receipt().build_rounds << " MPC rounds ("
            << inst.m() << " corridors indexed)\n";
  return 0;
}
