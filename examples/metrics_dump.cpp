// End-to-end tour of the telemetry layer: run one mixed workload against a
// persistent live tier — cold + warm query batches, updates spanning the
// classification lattice, a checkpoint, a crash-free recover — then dump
// everything the registry saw.
//
//   $ ./metrics_dump [n] [--dir DIR] [--json FILE] [--trace FILE]
//
// Prometheus text goes to stdout (scrape-able as-is); the full registry JSON
// and the chrome://tracing span file land next to you (metrics.json /
// trace.json by default).  Load trace.json at chrome://tracing or
// https://ui.perfetto.dev to see the build phases, snapshot writes and
// recovery phases on a wall-clock timeline.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "service/service.hpp"

using namespace mpcmst;

int main(int argc, char** argv) {
  std::size_t n = 2000;
  std::string dir =
      (std::filesystem::temp_directory_path() / "mpcmst-metrics-dump")
          .string();
  std::string json_file = "metrics.json";
  std::string trace_file = "trace.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto operand = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      if (const char* d = operand()) dir = d;
    } else if (arg == "--json") {
      if (const char* d = operand()) json_file = d;
    } else if (arg == "--trace") {
      if (const char* d = operand()) trace_file = d;
    } else {
      try {
        n = std::stoul(arg);
      } catch (const std::exception&) {
        std::cerr << "usage: metrics_dump [n] [--dir DIR] [--json FILE] "
                     "[--trace FILE]\n";
        return 1;
      }
    }
  }
  if constexpr (kMetricsCompiledOut)
    std::cerr << "note: built with MPCMST_NO_METRICS — every surface below "
                 "is an empty stub\n";

  // --- build a persistent live tier (journal fsync on every commit) ---
  std::filesystem::remove_all(dir);
  auto tree = graph::caterpillar_tree(n, n / 8, 17);
  graph::assign_random_tree_weights(tree, 100, 999, 23);
  const auto inst =
      graph::make_mst_instance(std::move(tree), 3 * n, 29, /*slack=*/400);
  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  service::PersistenceConfig persist;
  persist.dir = dir;
  persist.sync_mode = service::SyncMode::kCommit;
  auto service = service::QueryService::build_live(eng, inst, {}, persist);

  // --- a mixed batch over all four query kinds, run cold then warm ---
  std::vector<service::Query> batch;
  for (graph::Vertex v = 1; v < static_cast<graph::Vertex>(n); v += 7) {
    const graph::Vertex p = inst.tree.parent[v];
    batch.push_back(service::Query::price_change(v, p, 50));
    batch.push_back(service::Query::replacement_edge(v, p));
    batch.push_back(service::Query::corridor_headroom(v, p));
  }
  batch.push_back(service::Query::top_k_fragile(10));
  service->answer_batch(batch);  // cold: misses, evaluated on the pool
  service->answer_batch(batch);  // warm: bulk cache hits

  // --- updates spanning the classification lattice ---
  // Each class leaves its own counter + latency series behind; the headroom
  // answer tells us how far an edge can move before the tree changes.
  std::size_t applied = 0;
  for (graph::Vertex v = 1;
       v < static_cast<graph::Vertex>(n) && applied < 24; v += 11) {
    const graph::Vertex p = inst.tree.parent[v];
    const auto a = service->corridor_headroom(v, p);
    if (a.status != service::Status::kOk) continue;
    const graph::Weight w = inst.tree.weight[v];
    graph::Weight new_w = w;  // same weight: classifies as no_change
    switch (applied % 3) {
      case 1:  // within headroom: reweight in place
        if (a.headroom != graph::kPosInfW && a.headroom > 0)
          new_w = w + a.headroom / 2;
        break;
      case 2:  // past headroom: forces a swap (when a replacement exists)
        if (a.headroom != graph::kPosInfW) new_w = w + a.headroom + 1;
        break;
      default:
        break;
    }
    service->apply_update(v, p, new_w);
    ++applied;
  }
  for (std::size_t i = 0; i < inst.nontree.size() && i < 8; i += 2) {
    const auto& e = inst.nontree[i];
    const auto a = service->corridor_headroom(e.u, e.v);
    if (a.status != service::Status::kOk) continue;
    // Even i: nudge up (nontree reweight); odd-half: drop below its cover
    // path (nontree swap) when the headroom is finite.
    graph::Weight new_w = e.w + 3;
    if (i % 4 == 2 && a.headroom != graph::kPosInfW)
      new_w = e.w - a.headroom - 1;
    service->apply_update(e.u, e.v, new_w);
    ++applied;
  }

  // --- checkpoint, a journal tail, then a clean-room recover ---
  service->checkpoint();
  for (std::size_t i = 1; i < inst.nontree.size() && i < 6; i += 2) {
    const auto& e = inst.nontree[i];
    service->apply_update(e.u, e.v, inst.nontree[i].w + 1);
  }
  const auto gen_before = service->backend().generation();
  service.reset();  // release the journal before recovering in-process
  service::QueryService::RecoveredInfo info;
  service = service::QueryService::recover(persist, {}, &info);
  service->answer_batch(batch);  // cache is cold again post-recover
  std::cout << "# workload: " << applied << " updates applied, generation "
            << gen_before << " -> recovered " << service->backend().generation()
            << " (snapshot " << info.snapshot_generation << " + "
            << info.replayed_records << " replayed)\n";

  // --- dump all three surfaces ---
  MetricsRegistry::instance().render_prometheus(std::cout);
  {
    std::ofstream out(json_file);
    MetricsRegistry::instance().render_json(out);
  }
  {
    std::ofstream out(trace_file);
    TraceBuffer::instance().render_chrome_json(out);
  }
  std::cout << "# wrote " << json_file << " (registry JSON) and " << trace_file
            << " (" << TraceBuffer::instance().size()
            << " spans, chrome://tracing)\n";
  std::filesystem::remove_all(dir);
  return 0;
}
