// Quickstart: build a small weighted graph with a candidate spanning tree,
// verify it is an MST (Theorem 3.1), then run sensitivity analysis
// (Theorem 4.1) — all on the simulated low-space MPC.
//
//   $ ./quickstart
#include <iostream>

#include "graph/instance.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "sensitivity/sensitivity.hpp"
#include "verify/verifier.hpp"

using namespace mpcmst;

int main() {
  // A 8-vertex tree, rooted at 0 (parent pointers + edge weights) ...
  graph::Instance inst;
  inst.tree.n = 8;
  inst.tree.root = 0;
  //                  v:       0  1  2  3  4  5  6  7
  inst.tree.parent = {0, 0, 0, 1, 1, 2, 2, 5};
  inst.tree.weight = {0, 4, 2, 3, 6, 5, 1, 2};
  // ... plus non-tree edges of G.
  inst.nontree = {
      {3, 4, 9},  // covers 3-1-4
      {4, 6, 8},  // covers 4-1-0-2-6
      {7, 6, 6},  // covers 7-5-2-6
      {1, 2, 7},  // covers 1-0-2
  };

  // An MPC sized for this input: s ~ sqrt(input words), linear global budget.
  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));

  const auto verdict = verify::verify_mst_mpc(eng, inst);
  std::cout << "T is " << (verdict.is_mst ? "an MST" : "NOT an MST") << " of G"
            << " (decided in " << eng.rounds() << " MPC rounds, "
            << eng.stats().peak_global_words << " peak words)\n\n";

  mpc::Engine eng2(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto sens = sensitivity::mst_sensitivity_mpc(eng2, inst);

  std::cout << "tree edge {v, parent}  weight  mc  sens  (increase before the"
               " edge leaves some MST)\n";
  for (const auto& t : sens.tree.local()) {
    std::cout << "  {" << t.v << "," << inst.tree.parent[t.v] << "}      "
              << t.w << "  ";
    if (t.mc == graph::kPosInfW)
      std::cout << "inf  inf   (bridge: no replacement exists)\n";
    else
      std::cout << t.mc << "  " << t.sens << "\n";
  }
  std::cout << "\nnon-tree edge  weight  maxpath  sens  (decrease before it"
               " enters some MST)\n";
  for (const auto& e : sens.nontree.local()) {
    const auto& edge = inst.nontree[e.orig_id];
    std::cout << "  {" << edge.u << "," << edge.v << "}        " << e.w
              << "     " << e.maxpath << "      " << e.sens << "\n";
  }
  std::cout << "\nsensitivity rounds: " << eng2.rounds() << "\n";
  return 0;
}
