// Debugging lens for a persisted serving tier: print every record of its
// update journal (generation, fingerprint chain, update kind) and the
// snapshot files next to it, flagging torn tails and invalid snapshots.
//
//   $ ./journal_dump <persistence-dir | journal-file> [--verify]
//
// --verify additionally chains the records (each old_fingerprint must equal
// the previous new_fingerprint) and, when a directory was given, checks the
// tail against the newest valid snapshot — a dry run of what
// QueryService::recover would replay.  Each record's check is clocked
// through a registry histogram and the distribution is printed at the end
// (the same Histogram/percentile API the service uses).  Read-only:
// nothing is truncated.
#include <filesystem>
#include <iostream>
#include <string>

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "service/journal.hpp"
#include "service/snapshot.hpp"
#include "service/telemetry.hpp"
#include "service/update.hpp"

using namespace mpcmst;

namespace {

const char* class_name(std::uint8_t cls) {
  switch (static_cast<service::UpdateClass>(cls)) {
    case service::UpdateClass::kNoChange:
      return "no-change";
    case service::UpdateClass::kTreeReweight:
      return "tree-reweight";
    case service::UpdateClass::kTreeSwap:
      return "tree-swap";
    case service::UpdateClass::kNonTreeReweight:
      return "nontree-reweight";
    case service::UpdateClass::kNonTreeSwap:
      return "nontree-swap";
    case service::UpdateClass::kNonTreeInsert:
      return "nontree-insert";
    case service::UpdateClass::kInsertSwap:
      return "insert-swap";
    case service::UpdateClass::kVertexAttach:
      return "vertex-attach";
    case service::UpdateClass::kNonTreeDelete:
      return "nontree-delete";
    case service::UpdateClass::kTreeDeletePromote:
      return "tree-delete-promote";
  }
  return "?";
}

const char* op_name(std::uint8_t op) {
  switch (static_cast<service::UpdateOp>(op)) {
    case service::UpdateOp::kReweight:
      return "reweight";
    case service::UpdateOp::kAddEdge:
      return "add";
    case service::UpdateOp::kRemoveEdge:
      return "remove";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify")
      verify = true;
    else if (target.empty())
      target = arg;
    else
      target.clear();  // too many operands: fall through to usage
  }
  if (target.empty()) {
    std::cerr << "usage: journal_dump <persistence-dir | journal-file> "
                 "[--verify]\n";
    return 2;
  }

  const bool is_dir = std::filesystem::is_directory(target);
  const std::string journal =
      is_dir ? service::journal_path(target) : target;

  std::uint64_t snapshot_generation = 0;
  if (is_dir) {
    const auto files = service::list_snapshot_files(target);
    std::cout << files.size() << " snapshot file"
              << (files.size() == 1 ? "" : "s") << "\n";
    for (const auto& path : files) {
      const auto image = service::load_snapshot_file(path);
      std::cout << "  " << path << ": ";
      if (!image) {
        std::cout << "INVALID (torn, foreign, or version-mismatched)\n";
        continue;
      }
      std::cout << "generation " << image->generation << ", n="
                << image->index->n() << ", m="
                << (image->index->n() - 1 + image->index->num_nontree())
                << ", " << (image->sharded()
                                ? std::to_string(image->shards->num_shards()) +
                                      " shards"
                                : std::string("monolith"))
                << ", fingerprint " << std::hex << image->index->fingerprint()
                << std::dec << "\n";
      if (snapshot_generation < image->generation)
        snapshot_generation = image->generation;
    }
  }

  const auto scan = service::Journal::scan(journal);
  if (scan.missing) {
    std::cerr << journal << ": not a journal (missing or bad header)\n";
    return 1;
  }
  std::cout << scan.records.size() << " record"
            << (scan.records.size() == 1 ? "" : "s") << " in " << journal
            << (scan.torn ? " (TORN TAIL after the last intact record)" : "")
            << "\n";
  std::cout << "  gen         old-fp            new-fp            "
               "op  class             u -> v @ new_w\n";
  bool chained = true;
  std::uint64_t prev_fp = 0;
  bool have_prev = false;
  for (const auto& rec : scan.records) {
    std::cout << "  " << rec.generation << "  " << std::hex
              << rec.old_fingerprint << "  " << rec.new_fingerprint << std::dec
              << "  " << op_name(rec.op) << "  " << class_name(rec.cls)
              << "  {" << rec.u << "," << rec.v << "} @ " << rec.new_w << "\n";
    if (have_prev && rec.old_fingerprint != prev_fp) chained = false;
    prev_fp = rec.new_fingerprint;
    have_prev = true;
  }

  if (verify) {
    // Re-check the chain with each record clocked individually: the
    // histogram is the service's own latency machinery, dogfooded outside
    // the service (per-record cost of a dry-run replay scan).
    Histogram& rec_hist = MetricsRegistry::instance().histogram(
        "mpcmst_journal_verify_record_seconds");
    bool rechained = true;
    std::uint64_t fp = 0;
    bool have_fp = false;
    for (const auto& rec : scan.records) {
      ScopedLatency lat(rec_hist);
      if (have_fp && rec.old_fingerprint != fp) rechained = false;
      if (rec.cls >= service::kNumUpdateClasses) rechained = false;
      if (rec.op > static_cast<std::uint8_t>(service::UpdateOp::kRemoveEdge))
        rechained = false;
      fp = rec.new_fingerprint;
      have_fp = true;
    }
    if (!chained || !rechained) {
      std::cerr << "FAIL: records do not chain (old_fingerprint != previous "
                   "new_fingerprint)\n";
      return 1;
    }
    if (is_dir) {
      std::uint64_t tail = 0;
      for (const auto& rec : scan.records)
        if (rec.generation > snapshot_generation) ++tail;
      std::cout << "recover would replay " << tail << " record"
                << (tail == 1 ? "" : "s") << " on top of generation "
                << snapshot_generation << "\n";
    }
    const HistogramSnapshot h = rec_hist.snapshot();
    if (h.count > 0)
      std::cout << "per-record check ns: p50=" << h.percentile(0.50)
                << " p90=" << h.percentile(0.90)
                << " p99=" << h.percentile(0.99) << " max=" << h.max
                << " mean=" << format_double(h.mean()) << " over " << h.count
                << " record" << (h.count == 1 ? "" : "s") << "\n";
    std::cout << "chain OK\n";
  }
  return 0;
}
