// Scenario: the conditional lower bound, live (paper §5 + Appendix A).
// Builds the 1-vs-2-cycle apex instances — the input graph has diameter 2,
// yet distinguishing a valid candidate MST from an invalid one forces the
// verifier through Θ(log n) rounds, because the *candidate's* diameter is
// Θ(n).  Prints the round growth and the verdicts for all four candidates.
//
//   $ ./lowerbound_demo
#include <iostream>

#include "bound/one_two_cycle.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "verify/verifier.hpp"

using namespace mpcmst;

int main() {
  std::cout << "rounds on the apex family (G* diameter = 2, candidate "
               "diameter = Theta(n)):\n";
  std::cout << "  n      rounds   rounds/log2(n)\n";
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto lb =
        bound::make_apex_instance(n, bound::Candidate::HamPathPlusApex);
    mpc::Engine eng(
        mpc::MpcConfig::scaled(lb.instance.input_words(), 0.5, 64.0));
    const auto res = verify::verify_mst_mpc(eng, lb.instance);
    double logn = 0;
    for (std::size_t x = n; x > 1; x >>= 1) logn += 1;
    std::cout << "  " << n << "   " << eng.rounds() << "   "
              << static_cast<double>(eng.rounds()) / logn
              << (res.is_mst ? "   (accepted)" : "   (rejected?!)") << "\n";
  }

  std::cout << "\nverdicts at n = 4096:\n";
  for (auto [name, cand] : {std::pair<const char*, bound::Candidate>{
                                "ham-path+apex (1-cycle world, genuine MST)",
                                bound::Candidate::HamPathPlusApex},
                            {"two-paths+2-apex (2-cycle world, genuine MST)",
                             bound::Candidate::TwoPathsPlusTwoApex},
                            {"heavy-apex (valid tree, too expensive)",
                             bound::Candidate::HeavyApex},
                            {"cycle+path (not a spanning tree)",
                             bound::Candidate::CyclePlusPath}}) {
    const auto lb = bound::make_apex_instance(4096, cand);
    mpc::Engine eng(
        mpc::MpcConfig::scaled(lb.instance.input_words(), 0.5, 64.0));
    const auto res = verify::verify_mst_mpc(eng, lb.instance,
                                            verify::VerifyOptions{true});
    std::cout << "  " << name << ": "
              << (!res.input_is_tree ? "rejected by validation"
                  : res.is_mst       ? "accepted as MST"
                                     : "rejected (not minimum)")
              << "\n";
  }
  std::cout << "\nTheorem 5.2: o(log D_T)-round verification would refute "
               "the 1-vs-2-cycle conjecture.\n";
  return 0;
}
