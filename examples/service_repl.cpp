// Interactive driver for the sensitivity query service: build the index for
// one instance (the expensive distributed run), then answer what-if questions
// from stdin until EOF.  Scriptable:
//
//   $ echo "top 5
//           price 17 42 25
//           stats" | ./service_repl [n] [--shards N] [--live]
//
// --shards N > 1 partitions the index by vertex range and serves through the
// QueryRouter (answers are byte-identical to the monolithic backend).
// --live serves through the updatable generation layer, enabling `update`.
// --persist DIR makes the live tier crash-consistent (implies --live): every
// confirmed update is journaled before it is acknowledged and snapshots
// compact the journal; tune with --sync {commit,none} and --every N.
// --recover DIR skips the distributed build entirely and reconstructs the
// tier from DIR's newest snapshot + journal tail (ignores n/--shards/--live
// — the on-disk tier dictates them).
//
// Commands:
//   price <u> <v> <delta>   does the optimum survive the price change?
//   replace <u> <v>         cheapest swap-in for a tree edge
//   top <k>                 k least-headroom tree edges
//   headroom <u> <v>        sensitivity of an edge (Definition 1.2)
//   still_mst <u> <v> <w> [<u> <v> <w> ...]
//                           scenario query: is T still an MST when all the
//                           listed edges take these absolute prices at once?
//                           (reports the violating edges if not; read-only —
//                           the live generation is not mutated)
//   update <u> <v> <price>  absorb a confirmed price change (--live only)
//   add_edge <u> <v> <price>
//                           insert a brand-new edge (--live only); lands as
//                           a non-tree edge, swaps in if it undercuts its
//                           tree path, or attaches a fresh leaf vertex
//   remove_edge <u> <v>     delete an edge (--live only); a tree delete
//                           promotes its precomputed replacement, and a
//                           bridge delete is refused (would disconnect)
//   checkpoint              force a snapshot + journal compaction (--persist)
//   receipt                 cost of the one-time distributed build
//   stats                   served/cache/update totals + latency percentiles
//   metrics [prom|json]     dump the full registry (Prometheus text or JSON)
//   trace [file]            write the wall-clock spans as chrome://tracing
//                           JSON (default trace.json)
//   help, quit
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/metrics.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "service/service.hpp"

using namespace mpcmst;

namespace {

void print_help() {
  std::cout << "commands: price <u> <v> <delta> | replace <u> <v> | top <k>"
               " | headroom <u> <v> | still_mst <u> <v> <w> [...]"
               " | update <u> <v> <price> | add_edge <u> <v> <price>"
               " | remove_edge <u> <v> | checkpoint"
               " | receipt | stats | metrics [prom|json] | trace [file]"
               " | help | quit\n";
}

/// "p50/p99/max us" column for one latency series (blank when unsampled).
std::string latency_cell(const service::LatencySummary& s) {
  if (s.count == 0) return "-";
  std::ostringstream os;
  os << format_double(static_cast<double>(s.p50_ns) / 1e3) << "/"
     << format_double(static_cast<double>(s.p99_ns) / 1e3) << "/"
     << format_double(static_cast<double>(s.max_ns) / 1e3);
  return os.str();
}

const char* class_name(service::UpdateClass cls) {
  switch (cls) {
    case service::UpdateClass::kNoChange:
      return "no change";
    case service::UpdateClass::kTreeReweight:
      return "tree reweight within headroom";
    case service::UpdateClass::kTreeSwap:
      return "tree edge evicted (replacement swapped in)";
    case service::UpdateClass::kNonTreeReweight:
      return "non-tree reweight";
    case service::UpdateClass::kNonTreeSwap:
      return "non-tree edge swapped into the tree";
    case service::UpdateClass::kNonTreeInsert:
      return "inserted as a non-tree edge";
    case service::UpdateClass::kInsertSwap:
      return "inserted edge undercut its path (tree edge evicted)";
    case service::UpdateClass::kVertexAttach:
      return "fresh vertex attached as a leaf tree edge";
    case service::UpdateClass::kNonTreeDelete:
      return "non-tree edge deleted (slot tombstoned)";
    case service::UpdateClass::kTreeDeletePromote:
      return "tree edge deleted (replacement promoted)";
  }
  return "?";
}

/// Shared receipt rendering for update / add_edge / remove_edge.
void print_receipt(const service::UpdateReceipt& r) {
  std::cout << class_name(r.report.cls) << ": " << r.report.old_w << " -> "
            << r.report.new_w << ", generation " << r.generation;
  if (r.report.swapped_out >= 0)
    std::cout << ", evicted tree edge at child " << r.report.swapped_out
              << ", promoted non-tree slot #" << r.report.swapped_in;
  std::cout << (r.full_relabel
                    ? ", full host relabel"
                    : ", patched " +
                          std::to_string(r.patched_tree_edges +
                                         r.patched_nontree_edges) +
                          " labels in place")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 2000;
  std::size_t shards = 1;
  bool live = false;
  std::optional<service::PersistenceConfig> persist;
  std::string recover_dir;
  service::SyncMode sync = service::SyncMode::kCommit;
  std::size_t snapshot_every = 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--shards") {
        if (i + 1 >= argc) throw std::invalid_argument("missing operand");
        shards = std::stoul(argv[++i]);
      } else if (arg == "--live") {
        live = true;
      } else if (arg == "--persist") {
        if (i + 1 >= argc) throw std::invalid_argument("missing operand");
        persist.emplace();
        persist->dir = argv[++i];
        live = true;
      } else if (arg == "--recover") {
        if (i + 1 >= argc) throw std::invalid_argument("missing operand");
        recover_dir = argv[++i];
      } else if (arg == "--sync") {
        if (i + 1 >= argc) throw std::invalid_argument("missing operand");
        const std::string mode = argv[++i];
        if (mode == "none")
          sync = service::SyncMode::kNever;
        else if (mode == "commit")
          sync = service::SyncMode::kCommit;
        else
          throw std::invalid_argument("bad sync mode");
      } else if (arg == "--every") {
        if (i + 1 >= argc) throw std::invalid_argument("missing operand");
        snapshot_every = std::stoul(argv[++i]);
      } else {
        n = std::stoul(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "usage: service_repl [n] [--shards N] [--live] "
                   "[--persist DIR [--sync commit|none] [--every N]] "
                   "[--recover DIR]\n";
      return 1;
    }
  }
  if (persist) {
    persist->sync_mode = sync;
    persist->snapshot_every_n = snapshot_every;
  }

  std::unique_ptr<service::QueryService> service;
  std::optional<mpc::Engine> eng;
  if (!recover_dir.empty()) {
    service::PersistenceConfig cfg;
    cfg.dir = recover_dir;
    cfg.sync_mode = sync;
    cfg.snapshot_every_n = snapshot_every;
    service::QueryService::RecoveredInfo info;
    try {
      service = service::QueryService::recover(cfg, {}, &info);
    } catch (const std::exception& e) {
      std::cerr << "recover failed: " << e.what() << "\n";
      return 1;
    }
    std::cout << "recovered generation " << service->backend().generation()
              << " from " << recover_dir << " (snapshot "
              << info.snapshot_generation << " + " << info.replayed_records
              << " replayed record" << (info.replayed_records == 1 ? "" : "s")
              << (info.journal_was_torn ? ", torn tail truncated" : "")
              << ") — no distributed rebuild\n";
    live = true;
  } else {
    auto tree = graph::caterpillar_tree(n, n / 8, 17);
    graph::assign_random_tree_weights(tree, 100, 999, 23);
    const auto inst = graph::make_mst_instance(std::move(tree), 3 * n, 29,
                                               /*slack=*/400);
    eng.emplace(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
    if (live)
      service = shards > 1 ? service::QueryService::build_live_sharded(
                                 *eng, inst, shards, {}, persist)
                           : service::QueryService::build_live(*eng, inst, {},
                                                               persist);
    else
      service = shards > 1
                    ? service::QueryService::build_sharded(*eng, inst, shards)
                    : service::QueryService::build(*eng, inst);
  }
  const auto& backend = service->backend();
  const auto& receipt = backend.receipt();
  std::cout << "index ready: n=" << backend.n() << " m="
            << (backend.n() ? backend.n() - 1 : 0) + backend.num_nontree()
            << ", " << receipt.build_rounds << " MPC rounds, "
            << backend.num_shards() << " shard"
            << (backend.num_shards() == 1 ? "" : "s")
            << (live ? ", live (updates enabled)" : "")
            << (persist || !recover_dir.empty() ? ", persistent" : "")
            << ", tree is " << (backend.is_mst() ? "an MST" : "NOT an MST")
            << "\n";
  print_help();

  std::string line;
  while (std::cout << "> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    graph::Vertex u, v;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      print_help();
    } else if (cmd == "price") {
      graph::Weight delta;
      if (!(in >> u >> v >> delta)) {
        std::cout << "usage: price <u> <v> <delta>\n";
        continue;
      }
      std::cout << to_string(service->price_change(u, v, delta)) << "\n";
    } else if (cmd == "replace") {
      if (!(in >> u >> v)) {
        std::cout << "usage: replace <u> <v>\n";
        continue;
      }
      const auto a = service->replacement_edge(u, v);
      std::cout << to_string(a) << "\n";
      if (a.status == service::Status::kOk && a.replacement >= 0) {
        if (const auto r = backend.nontree_info(a.replacement))
          std::cout << "  swap in {" << r->u << "," << r->v << "} at " << r->w
                    << "\n";
      }
    } else if (cmd == "top") {
      std::int64_t k;
      if (!(in >> k)) {
        std::cout << "usage: top <k>\n";
        continue;
      }
      const auto a = service->top_k_fragile(k);
      std::cout << "  edge        price  headroom  swap-in\n";
      for (const auto& f : a.fragile) {
        std::cout << "  {" << f.child << "," << f.parent << "}  " << f.w
                  << "  ";
        if (f.sens >= graph::kPosInfW)
          std::cout << "unbounded  none (bridge)\n";
        else
          std::cout << f.sens << "  #" << f.replacement << "\n";
      }
    } else if (cmd == "headroom") {
      if (!(in >> u >> v)) {
        std::cout << "usage: headroom <u> <v>\n";
        continue;
      }
      std::cout << to_string(service->corridor_headroom(u, v)) << "\n";
    } else if (cmd == "still_mst") {
      std::vector<service::PriceChange> changes;
      graph::Weight w;
      while (in >> u >> v >> w)
        changes.push_back(service::PriceChange{u, v, w});
      if (changes.empty()) {
        std::cout << "usage: still_mst <u> <v> <w> [<u> <v> <w> ...]\n";
        continue;
      }
      const auto a = service->still_mst(std::move(changes));
      if (a.status != service::Status::kOk)
        std::cout << to_string(a) << "\n";
      else if (a.still_optimal)
        std::cout << "still an MST under the scenario\n";
      else
        std::cout << to_string(a) << "\n";
    } else if (cmd == "update") {
      graph::Weight price;
      if (!(in >> u >> v >> price)) {
        std::cout << "usage: update <u> <v> <price>\n";
        continue;
      }
      if (!service->updatable()) {
        std::cout << "updates need --live (this service serves an immutable "
                     "snapshot)\n";
        continue;
      }
      if (price <= graph::kNegInfW || price >= graph::kPosInfW) {
        std::cout << "price " << price << " is outside the price band "
                     "(sentinels are not prices)\n";
        continue;
      }
      const auto r = service->apply_update(u, v, price);
      if (r.report.status != service::Status::kOk) {
        std::cout << "unknown edge {" << u << "," << v << "}\n";
        continue;
      }
      print_receipt(r);
    } else if (cmd == "add_edge") {
      graph::Weight price;
      if (!(in >> u >> v >> price)) {
        std::cout << "usage: add_edge <u> <v> <price>\n";
        continue;
      }
      if (!service->updatable()) {
        std::cout << "topology changes need --live (this service serves an "
                     "immutable snapshot)\n";
        continue;
      }
      if (price <= graph::kNegInfW || price >= graph::kPosInfW) {
        std::cout << "price " << price << " is outside the price band "
                     "(sentinels are not prices)\n";
        continue;
      }
      const auto r = service->add_edge(u, v, price);
      if (r.report.status != service::Status::kOk) {
        std::cout << "rejected: {" << u << "," << v << "} "
                  << (r.report.status == service::Status::kNotApplicable
                          ? "already exists (or u == v)"
                          : "has an out-of-range endpoint")
                  << "\n";
        continue;
      }
      print_receipt(r);
    } else if (cmd == "remove_edge") {
      if (!(in >> u >> v)) {
        std::cout << "usage: remove_edge <u> <v>\n";
        continue;
      }
      if (!service->updatable()) {
        std::cout << "topology changes need --live (this service serves an "
                     "immutable snapshot)\n";
        continue;
      }
      const auto r = service->remove_edge(u, v);
      if (r.report.status != service::Status::kOk) {
        if (r.report.status == service::Status::kWouldDisconnect)
          std::cout << "refused: removing tree edge {" << u << "," << v
                    << "} would disconnect the graph (no covering non-tree "
                       "edge); state unchanged\n";
        else
          std::cout << "unknown edge {" << u << "," << v << "}\n";
        continue;
      }
      print_receipt(r);
    } else if (cmd == "checkpoint") {
      if (!service->updatable() || (!persist && recover_dir.empty())) {
        std::cout << "checkpoint needs a persistent tier (--persist DIR or "
                     "--recover DIR)\n";
        continue;
      }
      service->checkpoint();
      std::cout << "checkpointed generation "
                << service->backend().generation()
                << " (journal compacted)\n";
    } else if (cmd == "receipt") {
      std::cout << "build: " << receipt.build_rounds << " MPC rounds, peak "
                << receipt.peak_global_words << " words ("
                << format_double(
                       static_cast<double>(receipt.peak_global_words) /
                       static_cast<double>(receipt.input_words))
                << "x input), lca steps " << receipt.lca_contraction_steps
                << ", contraction steps "
                << receipt.sens_stats.contraction_steps << "\n";
    } else if (cmd == "stats") {
      const auto s = service->stats();
      std::cout << s.queries_served << " served over "
                << backend.num_shards() << " shard"
                << (backend.num_shards() == 1 ? "" : "s") << ", generation "
                << s.generation << "\n"
                << "cache: hit rate "
                << format_double(100.0 * s.cache.hit_rate()) << "% ("
                << s.cache.hits << " hits, " << s.cache.misses << " misses, "
                << s.cache.evictions << " evictions, " << s.cache.entries
                << " entries)\n";
      if constexpr (!kMetricsCompiledOut) {
        Table lat({"kind", "count", "p50/p99/max us"});
        for (std::size_t k = 0; k < service::kNumQueryKinds; ++k)
          lat.row(service::query_kind_label(k), s.telemetry.queries_by_kind[k],
                  latency_cell(s.telemetry.query_latency[k]));
        lat.print(std::cout);
        std::cout << "updates:";
        for (std::size_t c = 0; c < service::kNumUpdateClasses; ++c)
          std::cout << " " << service::update_class_label(c) << "="
                    << s.telemetry.updates_by_class[c];
        std::cout << "; checkpoints=" << s.telemetry.checkpoints
                  << " recoveries=" << s.telemetry.recoveries << "\n";
        if (s.telemetry.journal_fsync.count > 0)
          std::cout << "journal fsync us (p50/p99/max): "
                    << latency_cell(s.telemetry.journal_fsync) << " over "
                    << s.telemetry.journal_fsync.count << " commits\n";
      } else {
        std::cout << "(telemetry compiled out: MPCMST_NO_METRICS)\n";
      }
    } else if (cmd == "metrics") {
      std::string fmt;
      in >> fmt;  // optional; default prom
      if (fmt == "json")
        MetricsRegistry::instance().render_json(std::cout);
      else
        MetricsRegistry::instance().render_prometheus(std::cout);
    } else if (cmd == "trace") {
      std::string path;
      if (!(in >> path)) path = "trace.json";
      std::ofstream out(path);
      if (!out) {
        std::cout << "cannot open " << path << "\n";
        continue;
      }
      TraceBuffer::instance().render_chrome_json(out);
      std::cout << "wrote " << TraceBuffer::instance().size()
                << " span(s) to " << path
                << " — load via chrome://tracing or ui.perfetto.dev\n";
    } else {
      std::cout << "unknown command '" << cmd << "'\n";
      print_help();
    }
  }
  std::cout << "\n";
  return 0;
}
