// Tests for the hierarchical clustering (paper §2.1):
// structural invariants (Definitions 2.5-2.7), geometric decay (Lemma 2.8
// substitute), history accounting (Observation 2.10), vertex assignment.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/clustering.hpp"
#include "graph/generators.hpp"
#include "mpc/ops.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"
#include "treeops/interval_label.hpp"

namespace g = mpcmst::graph;
namespace mpc = mpcmst::mpc;
namespace to = mpcmst::treeops;
namespace cl = mpcmst::cluster;
namespace seq = mpcmst::seq;

namespace {

struct Fixture {
  g::RootedTree tree;
  mpc::Engine eng;
  mpc::Dist<to::TreeRec> dtree;
  to::DepthResult depths;
  to::IntervalResult labels;

  explicit Fixture(g::RootedTree t)
      : tree(std::move(t)),
        eng(mpcmst::test::make_engine(64 * tree.n)),
        dtree(to::load_tree(eng, tree)),
        depths(to::compute_depths(dtree, tree.root)),
        labels(to::dfs_interval_labels(dtree, tree.root, depths)) {}
};

/// Recover the vertex sets of the live clusters by sequentially replaying:
/// each vertex belongs to the deepest live leader on its root path.
std::map<g::Vertex, std::set<g::Vertex>> cluster_sets(
    const Fixture& fx, const mpc::Dist<cl::ClusterNode>& nodes) {
  std::set<g::Vertex> leaders;
  for (const auto& c : nodes.local()) leaders.insert(c.leader);
  std::map<g::Vertex, std::set<g::Vertex>> sets;
  for (std::size_t v = 0; v < fx.tree.n; ++v) {
    g::Vertex x = static_cast<g::Vertex>(v);
    while (!leaders.count(x)) x = fx.tree.parent[x];
    sets[x].insert(static_cast<g::Vertex>(v));
  }
  return sets;
}

class ClusteringShapes
    : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {};

TEST_P(ClusteringShapes, InvariantsHoldThroughContraction) {
  Fixture fx(GetParam().tree);
  const seq::SeqTreeIndex idx(fx.tree);
  cl::HierarchicalClustering hc(fx.dtree, fx.tree.root, fx.labels.intervals);

  for (int step = 0; step < 6 && hc.num_clusters() > 1; ++step) {
    const auto merges = hc.plan_step();
    // Definition 2.7: no chained merges — a senior is never a junior in the
    // same step.
    std::set<g::Vertex> juniors, seniors;
    for (const auto& m : merges.local()) {
      juniors.insert(m.junior);
      seniors.insert(m.senior);
    }
    for (const auto s : seniors) EXPECT_FALSE(juniors.count(s));
    hc.apply_step(merges, [](std::int64_t l, const cl::MergeRec&) {
      return l;
    });

    // Clusters partition V; each is connected in T; leaders are the shallow-
    // est vertices of their cluster (subtree roots).
    const auto sets = cluster_sets(fx, hc.nodes());
    std::size_t total = 0;
    for (const auto& [leader, members] : sets) {
      total += members.size();
      EXPECT_TRUE(members.count(leader));
      for (const auto v : members) {
        // Walking up from any member stays inside until the leader.
        g::Vertex x = v;
        while (x != leader) {
          ASSERT_TRUE(idx.is_ancestor(leader, x));
          x = fx.tree.parent[x];
          ASSERT_TRUE(members.count(x)) << "cluster not connected";
        }
      }
    }
    EXPECT_EQ(total, fx.tree.n);
    EXPECT_EQ(sets.size(), hc.num_clusters());

    // Node records are consistent: parent cluster contains the attach vertex,
    // attach = p(leader), w_top = weight of {leader, attach}.
    for (const auto& c : hc.nodes().local()) {
      if (c.leader == hc.root_cluster()) continue;
      EXPECT_EQ(c.attach, fx.tree.parent[c.leader]);
      EXPECT_EQ(c.w_top, fx.tree.weight[c.leader]);
      ASSERT_TRUE(sets.count(c.parent_leader));
      EXPECT_TRUE(sets.at(c.parent_leader).count(c.attach));
    }
  }
}

TEST_P(ClusteringShapes, DecayIsGeometricOnAverage) {
  Fixture fx(GetParam().tree);
  cl::HierarchicalClustering hc(fx.dtree, fx.tree.root, fx.labels.intervals);
  const std::size_t steps = hc.run_until(
      1, [](std::int64_t l, const cl::MergeRec&) { return l; });
  // Contracting to a single cluster should take O(log n) steps; allow a
  // generous constant for the randomized compress.
  std::size_t logn = 1;
  while ((std::size_t{1} << logn) < fx.tree.n) ++logn;
  EXPECT_LE(steps, 12 * logn) << "decay too slow";
  // Observation 2.10: one merge per absorbed cluster, n-1 in total.
  std::size_t merges = 0;
  for (const auto& h : hc.history()) merges += h.size();
  EXPECT_EQ(merges, fx.tree.n - 1);
  // Decay trace is strictly decreasing to 1.
  ASSERT_FALSE(hc.decay().empty());
  EXPECT_EQ(hc.decay().front(), fx.tree.n);
  EXPECT_EQ(hc.decay().back(), 1u);
}

TEST_P(ClusteringShapes, VertexAssignmentMatchesReplay) {
  Fixture fx(GetParam().tree);
  cl::HierarchicalClustering hc(fx.dtree, fx.tree.root, fx.labels.intervals);
  for (int i = 0; i < 4 && hc.num_clusters() > 1; ++i) hc.step();
  const auto sets = cluster_sets(fx, hc.nodes());
  const auto vc = cl::assign_vertices_to_clusters(fx.dtree, fx.tree.root,
                                                  fx.depths.depth, hc.nodes());
  for (const auto& x : vc.local()) {
    ASSERT_TRUE(sets.count(x.val)) << "vertex " << x.v;
    EXPECT_TRUE(sets.at(x.val).count(x.v))
        << "vertex " << x.v << " not in claimed cluster " << x.val;
  }
}

TEST_P(ClusteringShapes, FormedAtTracksMergeHistory) {
  Fixture fx(GetParam().tree);
  cl::HierarchicalClustering hc(fx.dtree, fx.tree.root, fx.labels.intervals);
  for (int i = 0; i < 5 && hc.num_clusters() > 1; ++i) hc.step();
  // Every junior's recorded merge step is at most the step count, and
  // junior_formed_at < step of the merge.
  for (std::size_t s = 0; s < hc.history().size(); ++s) {
    for (const auto& m : hc.history()[s].local()) {
      EXPECT_EQ(m.step, static_cast<std::int64_t>(s + 1));
      EXPECT_LT(m.junior_formed_at, m.step);
      EXPECT_LT(m.senior_prev_formed_at, m.step);
      EXPECT_EQ(m.attach, fx.tree.parent[m.junior]);
      EXPECT_EQ(m.w_top, fx.tree.weight[m.junior]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ClusteringShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(173)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& inf) {
      return inf.param.name;
    });

TEST(Clustering, RunUntilReachesTarget) {
  Fixture fx(g::path_tree(512));
  cl::HierarchicalClustering hc(fx.dtree, fx.tree.root, fx.labels.intervals);
  hc.run_until(32, [](std::int64_t l, const cl::MergeRec&) { return l; });
  EXPECT_LE(hc.num_clusters(), 32u);
  EXPECT_GE(hc.num_clusters(), 1u);
}

TEST_P(ClusteringShapes, ThetaLabelsMatchBruteForce) {
  // Lemma 3.4: with the verification label rule, after every contraction
  // step the up-label of each cluster c equals the maximum tree-edge weight
  // on the path from the leader of c's parent cluster down to p(leader(c))
  // (-inf for an empty path) — the θ of Definition 3.2.
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 60, 59);
  Fixture fx(std::move(tree));
  const seq::SeqTreeIndex idx(fx.tree);
  cl::HierarchicalClustering hc(fx.dtree, fx.tree.root, fx.labels.intervals,
                                g::kNegInfW);
  const cl::LabelRule rule = [](std::int64_t old_label,
                                const cl::MergeRec& m) {
    return std::max(old_label,
                    std::max<std::int64_t>(m.w_top, m.junior_label));
  };
  for (int step = 0; step < 7 && hc.num_clusters() > 1; ++step) {
    const auto merges = hc.plan_step();
    hc.apply_step(merges, rule);
    for (const auto& c : hc.nodes().local()) {
      if (c.leader == hc.root_cluster()) continue;
      const g::Vertex top = c.parent_leader;        // leader of parent cluster
      const g::Vertex bottom = fx.tree.parent[c.leader];  // p(leader(c))
      const g::Weight expect =
          top == bottom ? g::kNegInfW : idx.max_on_path(top, bottom);
      EXPECT_EQ(c.label, expect)
          << GetParam().name << " step " << step << " cluster " << c.leader;
    }
  }
}

TEST(Clustering, LabelRuleIsApplied) {
  // On a path, labels accumulate the max w_top of absorbed parents — after
  // full contraction the surviving structure must have consistent labels.
  auto tree = g::path_tree(64);
  g::assign_random_tree_weights(tree, 1, 100, 13);
  Fixture fx(std::move(tree));
  cl::HierarchicalClustering hc(fx.dtree, fx.tree.root, fx.labels.intervals,
                                g::kNegInfW);
  const cl::LabelRule rule = [](std::int64_t old_label,
                                const cl::MergeRec& m) {
    return std::max(old_label, std::max<std::int64_t>(m.w_top,
                                                      m.junior_label));
  };
  hc.run_until(1, rule);
  EXPECT_EQ(hc.num_clusters(), 1u);
}

}  // namespace
