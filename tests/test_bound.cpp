// Tests for the lower-bound family (Theorem 5.2 / Appendix A): structure of
// the apex instances, verdicts of the verifier on all four candidates, and
// the Θ(log n) round behaviour on this family.
#include <gtest/gtest.h>

#include "bound/one_two_cycle.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"
#include "verify/verifier.hpp"

namespace b = mpcmst::bound;
namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;
namespace vf = mpcmst::verify;

namespace {

TEST(Bound, InstanceShape) {
  const auto lb = b::make_apex_instance(16, b::Candidate::HamPathPlusApex);
  EXPECT_EQ(lb.instance.n(), 17u);
  EXPECT_EQ(lb.instance.m(), 32u);  // 2n edges in G*
  EXPECT_TRUE(lb.instance.tree.well_formed());
  // Weight of the candidate: n + 1.
  g::Weight w = 0;
  for (auto x : lb.instance.tree.weight) w += x;
  EXPECT_EQ(w, 17);
}

TEST(Bound, SequentialOracleAgreesOnAllCandidates) {
  for (const auto candidate :
       {b::Candidate::HamPathPlusApex, b::Candidate::TwoPathsPlusTwoApex,
        b::Candidate::HeavyApex}) {
    const auto lb = b::make_apex_instance(32, candidate);
    ASSERT_TRUE(lb.instance.tree.well_formed());
    EXPECT_EQ(seq::verify_mst(lb.instance), lb.expected_mst);
    EXPECT_EQ(seq::verify_mst_by_weight(lb.instance), lb.expected_mst);
  }
  const auto bad = b::make_apex_instance(32, b::Candidate::CyclePlusPath);
  EXPECT_FALSE(bad.instance.tree.well_formed());
  EXPECT_FALSE(bad.tree_is_valid);
}

TEST(Bound, MpcVerifierDecidesAllCandidates) {
  for (const auto candidate :
       {b::Candidate::HamPathPlusApex, b::Candidate::TwoPathsPlusTwoApex,
        b::Candidate::HeavyApex, b::Candidate::CyclePlusPath}) {
    const auto lb = b::make_apex_instance(64, candidate);
    auto eng = mpcmst::test::make_engine(64 * lb.instance.input_words());
    const auto res = vf::verify_mst_mpc(eng, lb.instance,
                                        vf::VerifyOptions{/*validate=*/true});
    EXPECT_EQ(res.input_is_tree, lb.tree_is_valid);
    EXPECT_EQ(res.is_mst, lb.expected_mst)
        << "candidate " << static_cast<int>(candidate);
  }
}

TEST(Bound, RoundsGrowLogarithmically) {
  // D_T = Θ(n) on this family, so verification rounds must grow with log n —
  // the behaviour Theorem 5.2 proves unavoidable.
  auto rounds_at = [](std::size_t n) {
    const auto lb = b::make_apex_instance(n, b::Candidate::HamPathPlusApex);
    auto eng = mpcmst::test::make_engine(64 * lb.instance.input_words());
    const auto res = vf::verify_mst_mpc(eng, lb.instance);
    EXPECT_TRUE(res.is_mst);
    return eng.rounds();
  };
  const auto r64 = rounds_at(64);
  const auto r1024 = rounds_at(1024);
  EXPECT_GT(r1024, r64);
  // Sub-linear growth: quadrupling log n should not quadruple rounds by n.
  EXPECT_LT(static_cast<double>(r1024),
            3.0 * static_cast<double>(r64));
}

}  // namespace
