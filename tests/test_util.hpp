// Shared helpers for the test suite: a catalog of tree shapes and instance
// builders used by the parameterized sweeps, plus scratch-directory and
// query-probe scaffolding shared by the persistence suites.
#pragma once

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/instance.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "service/query.hpp"

namespace mpcmst::test {

struct ShapeCase {
  std::string name;
  graph::RootedTree tree;
};

/// A spread of tree shapes at roughly `n` vertices covering the diameter
/// spectrum; every shape is randomly relabeled so vertex ids carry no
/// structural information.
inline std::vector<ShapeCase> shape_catalog(std::size_t n,
                                            std::uint64_t seed = 7) {
  using namespace graph;
  std::vector<ShapeCase> out;
  out.push_back({"path", relabel_random(path_tree(n), seed + 1)});
  out.push_back({"star", relabel_random(star_tree(n), seed + 2)});
  out.push_back({"binary", relabel_random(kary_tree(n, 2), seed + 3)});
  out.push_back({"k8ary", relabel_random(kary_tree(n, 8), seed + 4)});
  out.push_back(
      {"caterpillar",
       relabel_random(caterpillar_tree(n, n / 2 ? n / 2 : 1, seed), seed + 5)});
  out.push_back(
      {"broom", relabel_random(broom_tree(n, n / 3 ? n / 3 : 1), seed + 6)});
  out.push_back({"rand_depth8",
                 relabel_random(random_tree_depth_bounded(n, 8, seed + 10),
                                seed + 7)});
  out.push_back(
      {"rand_recursive",
       relabel_random(random_recursive_tree(n, seed + 11), seed + 8)});
  return out;
}

/// Scratch directory wiped on construction and destruction (persistence
/// suites point journals/snapshots here).
struct ScratchDir {
  explicit ScratchDir(std::string p) : path(std::move(p)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& str() const { return path; }
  std::string sub(const std::string& name) const { return path + "/" + name; }

  std::string path;
};

/// Every point-query kind on every current edge plus a spread of top-k
/// sizes — the all-four-kinds probe the persistence suites compare against
/// oracles (regenerate after updates: swaps move edges between sets).
inline std::vector<service::Query> probe_queries(const graph::Instance& inst) {
  std::vector<service::Query> out;
  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<graph::Vertex>(v) == inst.tree.root) continue;
    const auto c = static_cast<graph::Vertex>(v);
    const graph::Vertex p = inst.tree.parent[v];
    out.push_back(service::Query::corridor_headroom(c, p));
    out.push_back(service::Query::replacement_edge(p, c));
    out.push_back(service::Query::price_change(c, p, 3));
  }
  for (const graph::WEdge& e : inst.nontree) {
    out.push_back(service::Query::corridor_headroom(e.u, e.v));
    out.push_back(service::Query::replacement_edge(e.u, e.v));
    out.push_back(service::Query::price_change(e.u, e.v, -2));
  }
  for (const std::int64_t k :
       {std::int64_t{1}, std::int64_t{5}, static_cast<std::int64_t>(inst.n())})
    out.push_back(service::Query::top_k_fragile(k));
  return out;
}

/// Default generously-sized engine for functional tests (capacity enforcement
/// is still on, but with a large budget so only true blowups trip it).
inline mpc::Engine make_engine(std::size_t input_words,
                               std::uint64_t seed = 0x5eed) {
  mpc::MpcConfig cfg;
  cfg.machines = 16;
  cfg.local_capacity =
      std::max<std::size_t>(256, input_words);  // tests are small
  cfg.block_slack = 8.0;
  cfg.seed = seed;
  return mpc::Engine(cfg);
}

}  // namespace mpcmst::test
