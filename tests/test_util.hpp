// Shared helpers for the test suite: a catalog of tree shapes and instance
// builders used by the parameterized sweeps.
#pragma once

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/instance.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"

namespace mpcmst::test {

struct ShapeCase {
  std::string name;
  graph::RootedTree tree;
};

/// A spread of tree shapes at roughly `n` vertices covering the diameter
/// spectrum; every shape is randomly relabeled so vertex ids carry no
/// structural information.
inline std::vector<ShapeCase> shape_catalog(std::size_t n,
                                            std::uint64_t seed = 7) {
  using namespace graph;
  std::vector<ShapeCase> out;
  out.push_back({"path", relabel_random(path_tree(n), seed + 1)});
  out.push_back({"star", relabel_random(star_tree(n), seed + 2)});
  out.push_back({"binary", relabel_random(kary_tree(n, 2), seed + 3)});
  out.push_back({"k8ary", relabel_random(kary_tree(n, 8), seed + 4)});
  out.push_back(
      {"caterpillar",
       relabel_random(caterpillar_tree(n, n / 2 ? n / 2 : 1, seed), seed + 5)});
  out.push_back(
      {"broom", relabel_random(broom_tree(n, n / 3 ? n / 3 : 1), seed + 6)});
  out.push_back({"rand_depth8",
                 relabel_random(random_tree_depth_bounded(n, 8, seed + 10),
                                seed + 7)});
  out.push_back(
      {"rand_recursive",
       relabel_random(random_recursive_tree(n, seed + 11), seed + 8)});
  return out;
}

/// Default generously-sized engine for functional tests (capacity enforcement
/// is still on, but with a large budget so only true blowups trip it).
inline mpc::Engine make_engine(std::size_t input_words,
                               std::uint64_t seed = 0x5eed) {
  mpc::MpcConfig cfg;
  cfg.machines = 16;
  cfg.local_capacity =
      std::max<std::size_t>(256, input_words);  // tests are small
  cfg.block_slack = 8.0;
  cfg.seed = seed;
  return mpc::Engine(cfg);
}

}  // namespace mpcmst::test
