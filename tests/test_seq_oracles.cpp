// Cross-validation of the sequential oracles against brute force.
// These oracles gate everything else, so they are tested exhaustively on
// small instances across the full shape catalog.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;

namespace {

class OracleShapes : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {
};

TEST_P(OracleShapes, IndexMatchesBruteDepthAndAncestry) {
  const auto& tree = GetParam().tree;
  const seq::SeqTreeIndex idx(tree);
  // Brute depths by parent walk.
  for (std::size_t v = 0; v < tree.n; ++v) {
    std::int64_t d = 0;
    g::Vertex x = static_cast<g::Vertex>(v);
    while (x != tree.root) {
      x = tree.parent[x];
      ++d;
    }
    EXPECT_EQ(idx.depth(static_cast<g::Vertex>(v)), d);
  }
  // Ancestor test vs parent walk, sampled pairs.
  for (std::size_t i = 0; i < 200; ++i) {
    const auto a = static_cast<g::Vertex>((i * 37) % tree.n);
    const auto b = static_cast<g::Vertex>((i * 101 + 13) % tree.n);
    bool brute = false;
    for (g::Vertex x = b;; x = tree.parent[x]) {
      if (x == a) {
        brute = true;
        break;
      }
      if (x == tree.root) break;
    }
    EXPECT_EQ(idx.is_ancestor(a, b), brute) << a << " anc " << b;
  }
}

TEST_P(OracleShapes, LcaAndPathMaxMatchBrute) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 30, 17);
  const seq::SeqTreeIndex idx(tree);
  for (std::size_t i = 0; i < 300; ++i) {
    const auto u = static_cast<g::Vertex>((i * 53 + 5) % tree.n);
    const auto v = static_cast<g::Vertex>((i * 211 + 1) % tree.n);
    // Brute LCA and path max by depth-aligned parent walks.
    g::Vertex a = u, b = v;
    g::Weight maxw = g::kNegInfW;
    auto depth = [&](g::Vertex x) { return idx.depth(x); };
    while (a != b) {
      if (depth(a) >= depth(b)) {
        maxw = std::max(maxw, tree.weight[a]);
        a = tree.parent[a];
      } else {
        maxw = std::max(maxw, tree.weight[b]);
        b = tree.parent[b];
      }
    }
    EXPECT_EQ(idx.lca(u, v), a);
    if (u != v) {
      EXPECT_EQ(idx.max_on_path(u, v), maxw);
    }
  }
}

TEST_P(OracleShapes, SensitivityMatchesBrute) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 25, 23);
  const auto inst = g::make_random_instance(tree, 3 * tree.n, 29, 1, 60);
  const seq::SeqTreeIndex idx(inst.tree);
  const auto fast = seq::sensitivity(inst, idx);
  const auto brute = seq::sensitivity_brute(inst);
  ASSERT_EQ(fast.tree_mc.size(), brute.tree_mc.size());
  for (std::size_t v = 0; v < fast.tree_mc.size(); ++v)
    EXPECT_EQ(fast.tree_mc[v], brute.tree_mc[v]) << "vertex " << v;
  ASSERT_EQ(fast.nontree_maxpath.size(), brute.nontree_maxpath.size());
  for (std::size_t i = 0; i < fast.nontree_maxpath.size(); ++i)
    EXPECT_EQ(fast.nontree_maxpath[i], brute.nontree_maxpath[i]) << i;
}

TEST_P(OracleShapes, VerifyAgreesWithWeightOracle) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 20, 31);
  // YES instance.
  auto yes = g::make_mst_instance(tree, 2 * tree.n, 37, 4);
  EXPECT_EQ(seq::verify_mst(yes), seq::verify_mst_by_weight(yes));
  EXPECT_TRUE(seq::verify_mst(yes));
  // NO instance (when injectable).
  auto no = yes;
  if (g::inject_violations(no, 2, 41) > 0) {
    EXPECT_EQ(seq::verify_mst(no), seq::verify_mst_by_weight(no));
    EXPECT_FALSE(seq::verify_mst(no));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, OracleShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(211)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& info) {
      return info.param.name;
    });

TEST(Kruskal, CountsComponents) {
  g::Instance inst;
  inst.tree = g::path_tree(4);
  // Disconnect by making it a "forest" via weightless nontree edges only --
  // here we simply test a connected instance plus component count 1.
  const auto info = seq::msf_weight_kruskal(inst);
  EXPECT_EQ(info.components, 1u);
  EXPECT_EQ(info.weight, 3);
}

TEST(Sensitivity, TieConventions) {
  // Triangle: tree path a-b-c (weights 2, 3); non-tree edge {a,c} weight 3.
  g::Instance inst;
  inst.tree.n = 3;
  inst.tree.root = 0;
  inst.tree.parent = {0, 0, 1};
  inst.tree.weight = {0, 2, 3};
  inst.nontree = {{0, 2, 3}};
  EXPECT_TRUE(seq::verify_mst(inst));  // tie: w == maxpath is still an MST
  const auto sens = seq::sensitivity_brute(inst);
  EXPECT_EQ(sens.tree_mc[1], 3);  // edge {1,0} covered by {0,2} at weight 3
  EXPECT_EQ(sens.tree_mc[2], 3);
  EXPECT_EQ(sens.nontree_maxpath[0], 3);
}

}  // namespace
