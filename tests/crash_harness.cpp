// Crash-injection harness for the persistence layer, driven by the CI
// `recovery` job (and registered with CTest at a small iteration count).
//
// The parent builds a persistent live tier once, then repeatedly re-execs
// itself as a --child that recovers the tier, applies a deterministic stream
// of confirmed changes — reweights plus topology churn (non-tree inserts,
// vertex attaches, non-tree deletes) — and SIGKILLs itself at a randomized
// commit-path
// point (mid-record through the journal write-fault hook, post-commit after
// the fsync, or mid-snapshot during a checkpoint).  After each death the
// parent recovers in-process and holds the tier to the oracle:
//   - the recovered instance must equal the canonical replay of exactly
//     generation() updates of the same deterministic stream;
//   - all four query kinds must answer byte-identically to a fresh
//     distributed rebuild of that instance (monolith and sharded tiers);
//   - atomicity: the update being applied at the kill either committed
//     (post-commit / mid-snapshot kills: generation == intent) or vanished
//     (mid-record kills: generation == intent - 1, with a torn tail).
//
// Every event of the stream is effective by construction (a reweight's new
// price differs from the resolved edge's current one; inserts always apply;
// deletes only target non-tree edges whose key no tree edge shadows — never
// a refusable bridge), so attempt index == generation and the parent can
// replay the committed prefix exactly.
//
//   usage: crash_harness <dir> [--iters K] [--seed S] [--shards N]
//          (N = 0, the default, runs both the monolith and a 3-shard tier)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "graph/generators.hpp"
#include "service/journal.hpp"
#include "service/router.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/update.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace svc = mpcmst::service;
using mpcmst::hash_combine;

namespace {

constexpr std::size_t kSnapshotEveryN = 6;
const char* const kPhases[] = {"journal-mid-record", "journal-post-commit",
                               "snapshot-mid-write"};

// --- deterministic workload -------------------------------------------------

g::Instance base_instance(std::uint64_t seed) {
  auto tree = g::random_recursive_tree(48, seed);
  g::assign_random_tree_weights(tree, 1, 40, seed + 2);
  return g::make_mst_instance(std::move(tree), 96, seed + 4, /*slack=*/4);
}

/// Current weight of {u, v} under the index's resolution precedence (tree
/// edge first, then the lightest duplicate).
g::Weight resolved_weight(const g::Instance& inst, g::Vertex u, g::Vertex v) {
  for (const g::Vertex c : {u, v}) {
    const g::Vertex other = (c == u) ? v : u;
    if (c != inst.tree.root &&
        inst.tree.parent[static_cast<std::size_t>(c)] == other)
      return inst.tree.weight[static_cast<std::size_t>(c)];
  }
  g::Weight best = g::kPosInfW;
  for (const g::WEdge& e : inst.nontree) {
    if (e.u == e.v) continue;  // tombstoned slot: resolves nowhere
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u))
      best = std::min(best, e.w);
  }
  return best;
}

/// Is {u, v} the key of a current tree edge?  remove_edge resolves tree
/// edges first, so the stream only deletes non-tree edges whose key no tree
/// edge shadows (a tree delete could refuse — not effective).
bool is_tree_key(const g::Instance& inst, g::Vertex u, g::Vertex v) {
  for (const g::Vertex c : {u, v}) {
    const g::Vertex other = (c == u) ? v : u;
    if (c != inst.tree.root &&
        inst.tree.parent[static_cast<std::size_t>(c)] == other)
      return true;
  }
  return false;
}

/// Attempt `i` of the stream: a pure function of (seed, i, current
/// instance), effective by construction — so the child and the parent's
/// oracle replay can never disagree about what attempt `i` was.  Mix:
/// reweights of tree and live non-tree edges, inserts (duplicates allowed),
/// fresh-vertex attaches, and non-tree deletes (which tombstone slots later
/// inserts reuse) — the full journal-v2 op surface under SIGKILL.
svc::EdgeEvent pick_event(const g::Instance& inst, std::uint64_t seed,
                          std::uint64_t i) {
  const std::uint64_t h1 = hash_combine(seed, i, 1);
  const std::uint64_t h2 = hash_combine(seed, i, 2);
  const std::uint64_t h3 = hash_combine(seed, i, 3);
  const auto n = static_cast<g::Vertex>(inst.n());
  std::vector<std::size_t> live;  // non-tombstoned non-tree slots
  for (std::size_t s = 0; s < inst.nontree.size(); ++s)
    if (inst.nontree[s].u != inst.nontree[s].v) live.push_back(s);
  g::Weight w = 1 + static_cast<g::Weight>(h3 % 60);

  const std::uint64_t kind = h1 % 8;
  if (kind < 3) {  // reweight a tree edge
    auto c = static_cast<g::Vertex>(h2 % inst.n());
    if (c == inst.tree.root) c = (c + 1) % n;
    const g::Vertex p = inst.tree.parent[static_cast<std::size_t>(c)];
    if (w == resolved_weight(inst, c, p)) w = (w % 60) + 1;
    return {svc::UpdateOp::kReweight, c, p, w};
  }
  if (kind < 5 && !live.empty()) {  // reweight a live non-tree edge
    const g::WEdge& e = inst.nontree[live[h2 % live.size()]];
    if (w == resolved_weight(inst, e.u, e.v)) w = (w % 60) + 1;
    return {svc::UpdateOp::kReweight, e.u, e.v, w};
  }
  if (kind == 7 && !live.empty()) {  // delete a non-shadowed non-tree edge
    for (std::size_t probe = 0; probe < live.size(); ++probe) {
      const g::WEdge& e =
          inst.nontree[live[(h2 + probe) % live.size()]];
      if (!is_tree_key(inst, e.u, e.v))
        return {svc::UpdateOp::kRemoveEdge, e.u, e.v, 0};
    }
    // Every live edge shadowed (vanishingly unlikely): insert instead.
  }
  if (h2 % 5 == 0 && inst.n() < 96)  // attach a fresh leaf vertex
    return {svc::UpdateOp::kAddEdge, n,
            static_cast<g::Vertex>(h3 % inst.n()), w};
  auto u = static_cast<g::Vertex>(h2 % inst.n());
  auto v = static_cast<g::Vertex>((h2 >> 16) % inst.n());
  if (u == v) v = (v + 1) % n;
  return {svc::UpdateOp::kAddEdge, u, v, w};
}

using mpcmst::test::probe_queries;

// --- intent file: atomicity evidence across the SIGKILL ---------------------

std::string intent_path(const std::string& dir) { return dir + "/intent.bin"; }

/// "Iteration `iter` is about to apply the update producing generation
/// `intent`" — one fsync'd 16-byte pwrite, so it survives the kill.
void write_intent(int fd, std::uint64_t iter, std::uint64_t intent) {
  std::uint64_t rec[2] = {iter, intent};
  if (::pwrite(fd, rec, sizeof rec, 0) != sizeof rec || ::fsync(fd) != 0) {
    std::cerr << "child: intent write failed\n";
    ::_exit(3);
  }
}

bool read_intent(const std::string& dir, std::uint64_t& iter,
                 std::uint64_t& intent) {
  const int fd = ::open(intent_path(dir).c_str(), O_RDONLY);
  if (fd < 0) return false;
  std::uint64_t rec[2] = {0, 0};
  const bool ok = ::pread(fd, rec, sizeof rec, 0) == sizeof rec;
  ::close(fd);
  iter = rec[0];
  intent = rec[1];
  return ok;
}

// --- child: recover, update, die at the chosen commit-path point ------------

struct KillSpec {
  const char* phase = "";
  int countdown = 0;
};
KillSpec g_kill;

void crash_hook(const char* phase) {
  if (std::strcmp(phase, g_kill.phase) != 0) return;
  if (--g_kill.countdown == 0) {
    ::kill(::getpid(), SIGKILL);
    for (;;) ::pause();  // unreachable: SIGKILL is not deliverable-deferred
  }
}

int run_child(const std::string& dir, std::uint64_t seed, int phase,
              int countdown, int max_steps, std::uint64_t iter) {
  g_kill = KillSpec{kPhases[phase], countdown};
  svc::set_persist_crash_hook(&crash_hook);
  svc::PersistenceConfig cfg{dir, svc::SyncMode::kCommit, kSnapshotEveryN};
  auto service = svc::QueryService::recover(cfg);
  const int intent_fd =
      ::open(intent_path(dir).c_str(), O_CREAT | O_WRONLY, 0644);
  if (intent_fd < 0) return 3;
  for (int step = 0; step < max_steps; ++step) {
    const std::uint64_t gen = service->backend().generation();
    write_intent(intent_fd, iter, gen + 1);
    const auto inst = service->updatable_backend()->instance_snapshot();
    const svc::EdgeEvent ev = pick_event(inst, seed, gen);
    svc::UpdateReceipt r;
    switch (ev.op) {
      case svc::UpdateOp::kReweight:
        r = service->apply_update(ev.u, ev.v, ev.w);
        break;
      case svc::UpdateOp::kAddEdge:
        r = service->add_edge(ev.u, ev.v, ev.w);
        break;
      case svc::UpdateOp::kRemoveEdge:
        r = service->remove_edge(ev.u, ev.v);
        break;
    }
    if (r.report.status != svc::Status::kOk ||
        r.report.cls == svc::UpdateClass::kNoChange) {
      std::cerr << "child: attempt " << gen << " was not effective\n";
      return 3;
    }
  }
  return 0;  // the kill point was never reached: a crash-free iteration
}

// --- parent: spawn children, verify each recovery against the oracle --------

/// Recover `dir` in-process and hold it to the oracle; throws (caught in
/// main) on any divergence.  Returns the recovered generation.
std::uint64_t verify_recovery(const std::string& dir, const g::Instance& base,
                              std::uint64_t seed, std::uint64_t iter,
                              int phase, bool killed) {
  svc::PersistenceConfig cfg{dir, svc::SyncMode::kCommit, kSnapshotEveryN};
  svc::QueryService::RecoveredInfo info;
  auto service = svc::QueryService::recover(cfg, {}, &info);
  const std::uint64_t gen = service->backend().generation();

  // The committed prefix must be exactly the first `gen` attempts of the
  // deterministic stream, applied through the canonical transform.
  g::Instance oracle = base;
  for (std::uint64_t i = 0; i < gen; ++i) {
    const svc::EdgeEvent ev = pick_event(oracle, seed, i);
    const auto rep = svc::apply_event_to_instance(oracle, ev);
    MPCMST_ASSERT(rep.status == svc::Status::kOk &&
                      rep.cls != svc::UpdateClass::kNoChange,
                  "oracle attempt " << i << " not effective");
  }
  const auto recovered = service->updatable_backend()->instance_snapshot();
  MPCMST_ASSERT(recovered.tree.parent == oracle.tree.parent &&
                    recovered.tree.weight == oracle.tree.weight &&
                    recovered.nontree == oracle.nontree,
                "recovered instance differs from the canonical replay at "
                "generation "
                    << gen);
  MPCMST_ASSERT(service->backend().fingerprint() ==
                    svc::SensitivityIndex::fingerprint_of(oracle),
                "recovered fingerprint mismatch at generation " << gen);

  // Byte-identical answers vs a fresh distributed rebuild, all four kinds.
  auto eng = mpcmst::test::make_engine(64 * oracle.input_words());
  const svc::MonolithicBackend rebuild(
      svc::SensitivityIndex::build(eng, oracle));
  for (const auto& q : probe_queries(oracle))
    MPCMST_ASSERT(service->backend().answer(q) == rebuild.answer(q),
                  "answer diverged from fresh rebuild: " << to_string(q));

  // Atomicity of the in-flight update, when the kill hit this iteration's
  // stream (a kill inside recover()'s own compaction leaves a stale tag).
  std::uint64_t tag = 0, intent = 0;
  if (killed && read_intent(dir, tag, intent) && tag == iter) {
    if (phase == 0) {
      MPCMST_ASSERT(gen == intent - 1, "mid-record kill: update at intent "
                                           << intent << " half-committed");
      MPCMST_ASSERT(info.journal_was_torn,
                    "mid-record kill left no torn tail");
    } else {
      MPCMST_ASSERT(gen == intent,
                    "post-commit kill lost the acknowledged update at intent "
                        << intent);
    }
  }
  return gen;
}

int run_parent(const std::string& root, std::uint64_t seed, int iters,
               std::size_t shards_arg, const char* self) {
  for (const std::size_t shards :
       shards_arg ? std::vector<std::size_t>{shards_arg}
                  : std::vector<std::size_t>{1, 3}) {
    const std::string dir =
        root + (shards == 1 ? "/mono" : "/shard" + std::to_string(shards));
    const g::Instance base = base_instance(seed);
    {
      // One distributed build seeds the tier; everything after is
      // recover -> update -> die -> recover.
      auto eng = mpcmst::test::make_engine(64 * base.input_words());
      svc::PersistenceConfig cfg{dir, svc::SyncMode::kCommit, kSnapshotEveryN};
      if (shards == 1)
        (void)svc::QueryService::build_live(eng, base, {}, cfg);
      else
        (void)svc::QueryService::build_live_sharded(eng, base, shards, {},
                                                    cfg);
    }
    ::unlink(intent_path(dir).c_str());  // a previous run's atomicity tag

    std::uint64_t generation = 0;
    for (int iter = 0; iter < iters; ++iter) {
      const std::uint64_t h = hash_combine(seed, iter, 99);
      const int phase = static_cast<int>(h % 3);
      const int countdown =
          phase == 2 ? 1 : 1 + static_cast<int>((h >> 8) % 6);
      const int max_steps = phase == 2 ? 20 : countdown + 6;

      // Argument strings are built before fork(): the child must only
      // execv (allocating between fork and exec in a multithreaded parent
      // risks a held malloc lock).
      const std::string seed_s = std::to_string(seed);
      const std::string phase_s = std::to_string(phase);
      const std::string countdown_s = std::to_string(countdown);
      const std::string steps_s = std::to_string(max_steps);
      const std::string iter_s = std::to_string(iter);
      const char* child_argv[] = {self,
                                  "--child",
                                  dir.c_str(),
                                  seed_s.c_str(),
                                  phase_s.c_str(),
                                  countdown_s.c_str(),
                                  steps_s.c_str(),
                                  iter_s.c_str(),
                                  nullptr};
      const pid_t pid = ::fork();
      if (pid == 0) {
        // Exec a fresh single-threaded child (the parent's pool threads do
        // not survive fork, so the child must not reuse this image's state).
        ::execv(self, const_cast<char**>(child_argv));
        ::_exit(127);
      }
      int status = 0;
      if (::waitpid(pid, &status, 0) != pid) {
        std::cerr << "FAIL: waitpid\n";
        return 1;
      }
      const bool killed =
          WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
      if (!killed && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
        std::cerr << "FAIL: child exited abnormally (status " << status
                  << ")\n";
        return 1;
      }
      generation = verify_recovery(dir, base, seed, iter, phase, killed);
      std::cout << "  " << dir << " iter " << iter << ": "
                << (killed ? kPhases[phase] : "no-crash") << " -> generation "
                << generation << " verified\n";
    }
    if (generation == 0) {
      std::cerr << "FAIL: " << dir << " never committed an update\n";
      return 1;
    }
  }
  std::cout << "crash harness PASSED\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 8 && std::string(argv[1]) == "--child")
      return run_child(argv[2], std::stoull(argv[3]), std::stoi(argv[4]),
                       std::stoi(argv[5]), std::stoi(argv[6]),
                       std::stoull(argv[7]));

    std::string root;
    std::uint64_t seed = 7;
    int iters = 10;
    std::size_t shards = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--iters" && i + 1 < argc)
        iters = std::stoi(argv[++i]);
      else if (arg == "--seed" && i + 1 < argc)
        seed = std::stoull(argv[++i]);
      else if (arg == "--shards" && i + 1 < argc)
        shards = std::stoul(argv[++i]);
      else if (root.empty() && arg[0] != '-')
        root = arg;
      else {
        std::cerr << "usage: crash_harness <dir> [--iters K] [--seed S] "
                     "[--shards N]\n";
        return 2;
      }
    }
    if (root.empty()) {
      std::cerr << "usage: crash_harness <dir> [--iters K] [--seed S] "
                   "[--shards N]\n";
      return 2;
    }
    char self[4096];
    const ssize_t len = ::readlink("/proc/self/exe", self, sizeof self - 1);
    if (len <= 0) {
      std::cerr << "FAIL: cannot resolve /proc/self/exe\n";
      return 1;
    }
    self[len] = '\0';
    return run_parent(root, seed, iters, shards, self);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
