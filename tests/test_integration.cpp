// End-to-end property tests of the *definitions* (Definition 1.2):
// perturbing an edge by exactly its sensitivity is the boundary between
// "T stays an MST" and "T stops being an MST".  These exercise the full
// verification + sensitivity pipelines against each other.
#include <gtest/gtest.h>

#include <random>

#include "graph/generators.hpp"
#include "sensitivity/sensitivity.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"
#include "verify/verifier.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;
namespace sn = mpcmst::sensitivity;
namespace vf = mpcmst::verify;

namespace {

class PerturbShapes
    : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {};

TEST_P(PerturbShapes, TreeEdgeSensitivityIsTheExactThreshold) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 50, 91);
  const auto inst = g::make_mst_instance(tree, 3 * tree.n, 93, 10);
  ASSERT_TRUE(seq::verify_mst(inst));
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto sens = sn::mst_sensitivity_mpc(eng, inst);

  std::mt19937_64 rng(95);
  std::uniform_int_distribution<std::size_t> pick(0, sens.tree.size() - 1);
  for (int trial = 0; trial < 8; ++trial) {
    const auto& t = sens.tree.local()[pick(rng)];
    if (t.mc == g::kPosInfW) continue;  // bridge: any increase keeps T optimal
    // Increase w(e) to mc(e): T remains an MST (tie).
    auto keeps = inst;
    keeps.tree.weight[t.v] = t.mc;
    EXPECT_TRUE(seq::verify_mst(keeps))
        << GetParam().name << " child " << t.v;
    // Increase beyond mc(e): T is no longer an MST.
    auto breaks = inst;
    breaks.tree.weight[t.v] = t.mc + 1;
    EXPECT_FALSE(seq::verify_mst(breaks))
        << GetParam().name << " child " << t.v;
  }
}

TEST_P(PerturbShapes, NonTreeEdgeSensitivityIsTheExactThreshold) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 50, 97);
  const auto inst = g::make_mst_instance(tree, 3 * tree.n, 99, 10);
  ASSERT_TRUE(seq::verify_mst(inst));
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto sens = sn::mst_sensitivity_mpc(eng, inst);

  std::mt19937_64 rng(101);
  std::uniform_int_distribution<std::size_t> pick(0, sens.nontree.size() - 1);
  for (int trial = 0; trial < 8; ++trial) {
    const auto& e = sens.nontree.local()[pick(rng)];
    if (e.sens == g::kPosInfW) continue;
    // Decrease w(e) to maxpath: T remains an MST (tie).
    auto keeps = inst;
    keeps.nontree[e.orig_id].w = e.maxpath;
    EXPECT_TRUE(seq::verify_mst(keeps)) << GetParam().name;
    // Decrease below maxpath: T stops being an MST.
    auto breaks = inst;
    breaks.nontree[e.orig_id].w = e.maxpath - 1;
    EXPECT_FALSE(seq::verify_mst(breaks)) << GetParam().name;
  }
}

TEST_P(PerturbShapes, VerifierAgreesAfterPerturbation) {
  // Apply the "breaks" perturbation and confirm the *MPC verifier* also
  // flips its verdict (closing the loop between the two pipelines).
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 50, 103);
  auto inst = g::make_mst_instance(tree, 2 * tree.n, 105, 10);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto sens = sn::mst_sensitivity_mpc(eng, inst);
  for (const auto& t : sens.tree.local()) {
    if (t.mc == g::kPosInfW) continue;
    inst.tree.weight[t.v] = t.mc + 1;
    auto eng2 = mpcmst::test::make_engine(64 * inst.input_words());
    EXPECT_FALSE(vf::verify_mst_mpc(eng2, inst).is_mst) << GetParam().name;
    break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, PerturbShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(113)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& inf) {
      return inf.param.name;
    });

TEST(Integration, MediumScaleAgainstFastOracle) {
  // Larger than the catalog tests: n = 3000, checked against the near-linear
  // sequential oracle rather than brute force.
  auto tree = g::random_tree_depth_bounded(3000, 40, 107);
  g::assign_random_tree_weights(tree, 1, 1000, 109);
  const auto inst = g::make_mst_instance(std::move(tree), 9000, 111, 50);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = sn::mst_sensitivity_mpc(eng, inst);
  const seq::SeqTreeIndex idx(inst.tree);
  const auto oracle = seq::sensitivity(inst, idx);
  for (const auto& t : res.tree.local())
    ASSERT_EQ(t.mc, oracle.tree_mc[t.v]) << "vertex " << t.v;
  for (const auto& e : res.nontree.local())
    ASSERT_EQ(e.maxpath, oracle.nontree_maxpath[e.orig_id])
        << "edge " << e.orig_id;
}

TEST(Integration, DegenerateSizes) {
  // n = 1: a single vertex, no edges.
  {
    g::Instance inst;
    inst.tree.n = 1;
    inst.tree.root = 0;
    inst.tree.parent = {0};
    inst.tree.weight = {0};
    auto eng = mpcmst::test::make_engine(256);
    EXPECT_TRUE(vf::verify_mst_mpc(eng, inst).is_mst);
    auto eng2 = mpcmst::test::make_engine(256);
    const auto s = sn::mst_sensitivity_mpc(eng2, inst);
    EXPECT_EQ(s.tree.size(), 0u);
  }
  // n = 2 with one parallel non-tree edge, lighter and heavier.
  for (g::Weight w : {g::Weight{1}, g::Weight{9}}) {
    g::Instance inst;
    inst.tree.n = 2;
    inst.tree.root = 0;
    inst.tree.parent = {0, 0};
    inst.tree.weight = {0, 5};
    inst.nontree = {{0, 1, w}};
    auto eng = mpcmst::test::make_engine(512);
    EXPECT_EQ(vf::verify_mst_mpc(eng, inst).is_mst, w >= 5);
    if (w >= 5) {
      auto eng2 = mpcmst::test::make_engine(512);
      const auto s = sn::mst_sensitivity_mpc(eng2, inst);
      ASSERT_EQ(s.tree.size(), 1u);
      EXPECT_EQ(s.tree.local()[0].mc, w);
      EXPECT_EQ(s.nontree.local()[0].maxpath, 5);
    }
  }
  // Two-vertex path as the deepest possible "tree" relative to n.
  {
    g::Instance inst;
    inst.tree = g::path_tree(3);
    inst.nontree = {{0, 2, 7}};
    auto eng = mpcmst::test::make_engine(512);
    const auto s = sn::mst_sensitivity_mpc(eng, inst);
    for (const auto& t : s.tree.local()) EXPECT_EQ(t.mc, 7);
  }
}

TEST(Integration, DeterministicAcrossRuns) {
  // Same seed => identical rounds and results (bit-reproducible runs).
  auto tree = g::caterpillar_tree(500, 100, 113);
  g::assign_random_tree_weights(tree, 1, 99, 115);
  const auto inst = g::make_mst_instance(std::move(tree), 1000, 117, 9);
  auto run = [&]() {
    auto eng = mpcmst::test::make_engine(64 * inst.input_words(), 0xABCD);
    const auto res = vf::verify_mst_mpc(eng, inst);
    return std::pair<std::size_t, bool>(eng.rounds(), res.is_mst);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
