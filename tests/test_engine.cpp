// Unit tests for the MPC engine and its O(1)-round primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "mpc/engine.hpp"
#include "mpc/ops.hpp"

namespace mpc = mpcmst::mpc;

namespace {

mpc::Engine small_engine(std::size_t machines = 8,
                         std::size_t capacity = 4096) {
  mpc::MpcConfig cfg;
  cfg.machines = machines;
  cfg.local_capacity = capacity;
  return mpc::Engine(cfg);
}

struct Rec {
  std::int64_t key;
  std::int64_t val;
};

TEST(Engine, CollectiveDepthGrowsWithMachines) {
  mpc::MpcConfig cfg;
  cfg.local_capacity = 64;
  cfg.machines = 4;
  EXPECT_EQ(mpc::Engine(cfg).collective_depth(8), 1u);
  cfg.machines = 64;   // fan-in 8 -> depth 2
  EXPECT_EQ(mpc::Engine(cfg).collective_depth(8), 2u);
  cfg.machines = 513;  // fan-in 8 -> depth 4 (8^3 = 512 < 513)
  EXPECT_EQ(mpc::Engine(cfg).collective_depth(8), 4u);
}

TEST(Engine, RoundChargingAndPhases) {
  mpc::Engine eng = small_engine();
  {
    mpc::PhaseScope phase(eng, "alpha");
    eng.charge_exchange(100);
  }
  eng.charge_sort(100);
  EXPECT_EQ(eng.stats().exchanges, 1u);
  EXPECT_EQ(eng.stats().sorts, 1u);
  EXPECT_EQ(eng.stats().phase_rounds.at("alpha"), 1u);
  EXPECT_EQ(eng.rounds(), 1u + (2 * eng.collective_depth() + 1));
}

TEST(Engine, MemoryAccountingTracksPeak) {
  mpc::Engine eng = small_engine();
  {
    auto a = mpc::tabulate<std::int64_t>(eng, 100, [](std::size_t i) {
      return std::int64_t(i);
    });
    EXPECT_EQ(eng.stats().live_words, 100u);
    {
      auto b = a.clone();
      EXPECT_EQ(eng.stats().live_words, 200u);
    }
    EXPECT_EQ(eng.stats().live_words, 100u);
  }
  EXPECT_EQ(eng.stats().live_words, 0u);
  EXPECT_EQ(eng.stats().peak_global_words, 200u);
}

TEST(Engine, LocalCapacityEnforced) {
  mpc::MpcConfig cfg;
  cfg.machines = 2;
  cfg.local_capacity = 16;
  cfg.block_slack = 1.0;
  mpc::Engine eng(cfg);
  EXPECT_THROW(mpc::tabulate<std::int64_t>(
                   eng, 1000, [](std::size_t i) { return std::int64_t(i); }),
               mpcmst::ModelError);
}

TEST(Engine, GlobalBudgetEnforced) {
  mpc::MpcConfig cfg;
  cfg.machines = 8;
  cfg.local_capacity = 4096;
  cfg.global_budget_words = 128;
  mpc::Engine eng(cfg);
  auto a = mpc::tabulate<std::int64_t>(eng, 100, [](std::size_t i) {
    return std::int64_t(i);
  });
  EXPECT_THROW(a.clone(), mpcmst::ModelError);
}

TEST(Ops, SortByMatchesStdSort) {
  mpc::Engine eng = small_engine();
  std::mt19937_64 rng(1);
  std::vector<Rec> data(1000);
  for (auto& r : data) {
    r.key = std::int64_t(rng() % 50);
    r.val = std::int64_t(rng() % 1000);
  }
  auto d = mpc::scatter(eng, data);
  mpc::sort_by(d, [](const Rec& r) { return r.key; });
  // Stability: equal keys keep input order.
  std::stable_sort(data.begin(), data.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(d.local()[i].key, data[i].key);
    EXPECT_EQ(d.local()[i].val, data[i].val);
  }
  EXPECT_GT(eng.rounds(), 0u);
}

TEST(Ops, ReduceAndPrefix) {
  mpc::Engine eng = small_engine();
  auto d = mpc::tabulate<std::int64_t>(eng, 100, [](std::size_t i) {
    return std::int64_t(i + 1);
  });
  const auto sum = mpc::reduce(
      d, [](std::int64_t x) { return x; }, std::plus<>{}, std::int64_t{0});
  EXPECT_EQ(sum, 5050);
  auto pre = mpc::exclusive_prefix(
      d, [](std::int64_t x) { return x; }, std::plus<>{}, std::int64_t{0});
  EXPECT_EQ(pre.local()[0], 0);
  EXPECT_EQ(pre.local()[99], 4950);
}

TEST(Ops, FilterAndConcat) {
  mpc::Engine eng = small_engine();
  auto d = mpc::tabulate<std::int64_t>(eng, 100, [](std::size_t i) {
    return std::int64_t(i);
  });
  auto evens = mpc::filter(d, [](std::int64_t x) { return x % 2 == 0; });
  EXPECT_EQ(evens.size(), 50u);
  auto both = mpc::concat(evens, evens);
  EXPECT_EQ(both.size(), 100u);
}

TEST(Ops, ReduceByKey) {
  mpc::Engine eng = small_engine();
  auto d = mpc::tabulate<Rec>(eng, 100, [](std::size_t i) {
    return Rec{std::int64_t(i % 7), std::int64_t(i)};
  });
  auto sums = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
      d, [](const Rec& r) { return std::uint64_t(r.key); },
      [](const Rec& r) { return r.val; }, std::plus<>{});
  EXPECT_EQ(sums.size(), 7u);
  std::int64_t total = 0;
  for (const auto& kv : sums.local()) total += kv.val;
  EXPECT_EQ(total, 4950);
}

TEST(Ops, JoinUnique) {
  mpc::Engine eng = small_engine();
  auto left = mpc::tabulate<Rec>(eng, 50, [](std::size_t i) {
    return Rec{std::int64_t(i), -1};
  });
  auto right = mpc::tabulate<Rec>(eng, 25, [](std::size_t i) {
    return Rec{std::int64_t(2 * i), std::int64_t(100 + i)};
  });
  mpc::join_unique(
      left, right, [](const Rec& r) { return std::uint64_t(r.key); },
      [](const Rec& r) { return std::uint64_t(r.key); },
      [](Rec& l, const Rec* r) { l.val = r ? r->val : -7; });
  for (const Rec& r : left.local()) {
    if (r.key % 2 == 0)
      EXPECT_EQ(r.val, 100 + r.key / 2);
    else
      EXPECT_EQ(r.val, -7);
  }
}

TEST(Ops, JoinUniqueRejectsDuplicateRightKeys) {
  mpc::Engine eng = small_engine();
  auto left = mpc::tabulate<Rec>(eng, 2, [](std::size_t i) {
    return Rec{std::int64_t(i), 0};
  });
  auto right = mpc::tabulate<Rec>(eng, 2, [](std::size_t) {
    return Rec{7, 0};
  });
  EXPECT_THROW(mpc::join_unique(
                   left, right,
                   [](const Rec& r) { return std::uint64_t(r.key); },
                   [](const Rec& r) { return std::uint64_t(r.key); },
                   [](Rec&, const Rec*) {}),
               mpcmst::InvariantError);
}

TEST(Ops, StabJoinFindsDisjointIntervals) {
  struct Interval {
    std::int64_t group, lo, hi, payload;
  };
  struct Query {
    std::int64_t group, point, found;
  };
  mpc::Engine eng = small_engine();
  auto intervals = mpc::scatter<Interval>(
      eng, {{1, 0, 9, 100}, {1, 10, 19, 101}, {2, 5, 6, 200}});
  auto queries = mpc::scatter<Query>(
      eng, {{1, 3, 0}, {1, 10, 0}, {1, 19, 0}, {2, 5, 0}, {2, 7, 0},
            {3, 1, 0}});
  mpc::stab_join(
      queries, intervals, [](const Query& q) { return std::uint64_t(q.group); },
      [](const Query& q) { return q.point; },
      [](const Interval& i) { return std::uint64_t(i.group); },
      [](const Interval& i) { return i.lo; },
      [](const Interval& i) { return i.hi; },
      [](Query& q, const Interval* i) { q.found = i ? i->payload : -1; });
  const auto& out = queries.local();
  EXPECT_EQ(out[0].found, 100);
  EXPECT_EQ(out[1].found, 101);
  EXPECT_EQ(out[2].found, 101);
  EXPECT_EQ(out[3].found, 200);
  EXPECT_EQ(out[4].found, -1);
  EXPECT_EQ(out[5].found, -1);
}

TEST(Ops, Pack2RoundTrips) {
  const std::uint64_t k = mpc::pack2(123456, 7891011);
  EXPECT_EQ(k >> 32, 123456u);
  EXPECT_EQ(k & 0xffffffffu, 7891011u);
}

TEST(Engine, ResetMetersKeepsLiveWords) {
  mpc::Engine eng = small_engine();
  auto d = mpc::tabulate<std::int64_t>(eng, 64, [](std::size_t i) {
    return std::int64_t(i);
  });
  eng.charge_exchange(10);
  eng.reset_meters();
  EXPECT_EQ(eng.rounds(), 0u);
  EXPECT_EQ(eng.stats().live_words, 64u);
  EXPECT_EQ(eng.stats().peak_global_words, 64u);
  (void)d;
}

}  // namespace
