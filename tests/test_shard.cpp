// Tests for the sharded index and query router (src/service/shard.hpp,
// src/service/router.hpp): byte-identical answers against the monolithic
// SensitivityIndex across shard counts and all four query families
// (including top_k_fragile under duplicate sensitivities), shard-boundary
// behavior (edges straddling two shards, empty vertex ranges), direct
// range-restricted builds vs splitting a monolith, per-shard footprint
// bounds, and the QueryService running over a QueryRouter backend.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "service/router.hpp"
#include "service/service.hpp"
#include "service/shard.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;
namespace svc = mpcmst::service;

namespace {

std::shared_ptr<const svc::SensitivityIndex> build_index(
    const g::Instance& inst) {
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  return svc::SensitivityIndex::build(eng, inst);
}

std::shared_ptr<const svc::ShardedSensitivityIndex> build_sharded(
    const g::Instance& inst, std::size_t shards) {
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  return svc::ShardedSensitivityIndex::build(eng, inst, shards);
}

/// Every point query on every edge (tree and non-tree, both endpoint
/// orders), some unknown pairs, and a spread of top-k sizes — the exhaustive
/// workload the parity tests replay against two backends.
std::vector<svc::Query> exhaustive_queries(const g::Instance& inst) {
  std::vector<svc::Query> out;
  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<g::Vertex>(v) == inst.tree.root) continue;
    const g::Vertex c = static_cast<g::Vertex>(v);
    const g::Vertex p = inst.tree.parent[v];
    out.push_back(svc::Query::corridor_headroom(c, p));
    out.push_back(svc::Query::corridor_headroom(p, c));
    out.push_back(svc::Query::replacement_edge(c, p));
    out.push_back(
        svc::Query::price_change(c, p, static_cast<g::Weight>(v % 7)));
    out.push_back(svc::Query::price_change(c, p, g::kPosInfW));
  }
  for (const g::WEdge& e : inst.nontree) {
    out.push_back(svc::Query::corridor_headroom(e.u, e.v));
    out.push_back(svc::Query::replacement_edge(e.u, e.v));
    out.push_back(svc::Query::price_change(e.u, e.v, -3));
  }
  // Unknown / out-of-range edges.
  out.push_back(svc::Query::corridor_headroom(-1, 2));
  out.push_back(svc::Query::corridor_headroom(
      0, static_cast<g::Vertex>(inst.n()) + 5));
  out.push_back(svc::Query::price_change(0, 0, 4));
  for (const std::int64_t k : {0L, 1L, 3L, static_cast<long>(inst.n() / 2),
                               static_cast<long>(inst.n()) + 10}) {
    out.push_back(svc::Query::top_k_fragile(k));
  }
  return out;
}

void expect_identical_answers(const svc::IndexBackend& expected,
                              const svc::IndexBackend& actual,
                              const std::vector<svc::Query>& queries) {
  for (const svc::Query& q : queries) {
    const svc::Answer a = expected.answer(q);
    const svc::Answer b = actual.answer(q);
    ASSERT_EQ(a, b) << to_string(q) << "\n  expected: " << to_string(a)
                    << "\n  actual:   " << to_string(b);
  }
}

struct ShardCase {
  std::string name;
  g::Instance inst;
};

/// The four tree families of the service agreement suite, each in a generic
/// and a duplicate-weight (tie) regime — ties are what make top_k merge
/// stability interesting.
std::vector<ShardCase> shard_catalog() {
  std::vector<ShardCase> out;
  std::uint64_t seed = 501;
  auto add = [&](std::string name, g::RootedTree tree, std::size_t extra,
                 g::Weight wlo, g::Weight whi, g::Weight slack) {
    g::assign_random_tree_weights(tree, wlo, whi, ++seed);
    out.push_back({std::move(name),
                   g::make_mst_instance(std::move(tree), extra, ++seed,
                                        slack)});
  };
  const std::size_t n = 120;
  for (auto& [fam, tree] :
       std::vector<std::pair<std::string, g::RootedTree>>{
           {"recursive", g::random_recursive_tree(n, 171)},
           {"caterpillar", g::caterpillar_tree(n, n / 3, 172)},
           {"kary8", g::kary_tree(n, 8)},
           {"path", g::path_tree(n)}}) {
    add(fam + "_wide", tree, 3 * n, 1, 400, 8);
    add(fam + "_ties", tree, 2 * n, 1, 4, 0);
  }
  return out;
}

class ShardParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardParity, ShardsMatchMonolithAcrossFamilies) {
  const std::size_t shards = GetParam();
  for (auto& sc : shard_catalog()) {
    SCOPED_TRACE(sc.name);
    const auto mono = build_index(sc.inst);
    const svc::MonolithicBackend expected(mono);
    const svc::QueryRouter actual(
        svc::ShardedSensitivityIndex::split(*mono, shards));
    EXPECT_EQ(actual.num_shards(), shards);
    EXPECT_EQ(actual.fingerprint(), expected.fingerprint());
    EXPECT_EQ(actual.is_mst(), expected.is_mst());
    EXPECT_EQ(actual.violations(), expected.violations());
    expect_identical_answers(expected, actual, exhaustive_queries(sc.inst));
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardParity,
                         ::testing::Values(1, 2, 3, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "shards" + std::to_string(i.param);
                         });

TEST(Shard, DirectBuildMatchesSplit) {
  // Building straight from the distributed artifacts (range-restricted
  // slices, no monolithic index in between) must produce shard-for-shard
  // identical content to splitting the monolith.
  for (auto& sc : shard_catalog()) {
    SCOPED_TRACE(sc.name);
    const auto mono = build_index(sc.inst);
    const auto from_split = svc::ShardedSensitivityIndex::split(*mono, 8);
    const auto direct = build_sharded(sc.inst, 8);
    ASSERT_EQ(direct->num_shards(), from_split->num_shards());
    EXPECT_EQ(direct->fingerprint(), from_split->fingerprint());
    EXPECT_EQ(direct->violations(), from_split->violations());
    EXPECT_EQ(direct->receipt().build_rounds,
              from_split->receipt().build_rounds);
    for (std::size_t i = 0; i < direct->num_shards(); ++i) {
      const svc::IndexShard& a = direct->shard(i);
      const svc::IndexShard& b = from_split->shard(i);
      ASSERT_EQ(a.lo, b.lo) << "shard " << i;
      ASSERT_EQ(a.hi, b.hi) << "shard " << i;
      EXPECT_EQ(a.tree, b.tree) << "shard " << i;
      EXPECT_EQ(a.fragile_order, b.fragile_order) << "shard " << i;
      EXPECT_EQ(a.violations, b.violations) << "shard " << i;
      ASSERT_EQ(a.nontree.size(), b.nontree.size()) << "shard " << i;
      EXPECT_EQ(a.nontree_ids, b.nontree_ids) << "shard " << i;
      for (std::size_t r = 0; r < a.nontree_ids.size(); ++r) {
        const std::int64_t id = a.nontree_ids[r];
        const auto other = b.nontree_edge(id);
        ASSERT_TRUE(other.has_value()) << "shard " << i << " orig_id " << id;
        EXPECT_EQ(a.nontree.get(r), *other)
            << "shard " << i << " orig_id " << id;
      }
      ASSERT_EQ(a.by_endpoints.size(), b.by_endpoints.size())
          << "shard " << i;
      for (const auto& [key, ref] : a.by_endpoints) {
        const auto other = b.find(key);
        ASSERT_TRUE(other.has_value()) << "shard " << i << " key " << key;
        EXPECT_EQ(ref, *other) << "shard " << i << " key " << key;
      }
    }
  }
}

TEST(Shard, EdgesStraddlingTwoShards) {
  // Path tree: with stride 8 every eighth tree edge {8k-1, 8k} has its
  // endpoints in different shards; the entry lives with the child, so
  // resolution must probe the second shard.  A long non-tree chord straddles
  // too and is owned by its min endpoint's shard.
  g::Instance inst;
  inst.tree = g::path_tree(64);
  for (std::size_t v = 1; v < 64; ++v) inst.tree.weight[v] = 5;
  inst.nontree = {{3, 60, 9}, {15, 16, 9}, {8, 7, 9}, {40, 33, 9}};
  ASSERT_TRUE(seq::verify_mst(inst));

  const auto mono = build_index(inst);
  const auto sharded = svc::ShardedSensitivityIndex::split(*mono, 8);
  const svc::QueryRouter router(sharded);

  std::size_t straddlers = 0;
  for (std::size_t v = 1; v < 64; ++v) {
    const g::Vertex c = static_cast<g::Vertex>(v);
    const g::Vertex p = inst.tree.parent[v];
    if (sharded->shard_of(c) != sharded->shard_of(p)) ++straddlers;
    const auto res = sharded->resolve(p, c);  // parent-first order
    ASSERT_TRUE(res.has_value()) << "tree edge {" << c << "," << p << "}";
    EXPECT_TRUE(res->ref.is_tree);
    EXPECT_EQ(res->ref.id, c);
    EXPECT_TRUE(res->shard->owns(c));  // entry lives with the child
  }
  EXPECT_EQ(straddlers, 7u);  // children 8, 16, ..., 56

  for (const g::WEdge& e : inst.nontree) {
    const auto res = sharded->resolve(e.u, e.v);
    const auto expected_ref = mono->find(e.u, e.v);
    ASSERT_TRUE(res.has_value() && expected_ref.has_value())
        << "{" << e.u << "," << e.v << "}";
    EXPECT_EQ(res->ref, *expected_ref) << "{" << e.u << "," << e.v << "}";
    // {8, 7} is parallel to a tree edge and must resolve to it (living with
    // its child); a real non-tree edge lives with its min endpoint.
    if (res->ref.is_tree)
      EXPECT_TRUE(res->shard->owns(res->ref.id));
    else
      EXPECT_TRUE(res->shard->owns(std::min(e.u, e.v)));
  }
  // {3, 60} straddles shards 0 and 7; {15, 16} straddles 1 and 2.
  EXPECT_NE(sharded->shard_of(3), sharded->shard_of(60));
  EXPECT_NE(sharded->shard_of(15), sharded->shard_of(16));

  const svc::MonolithicBackend expected(mono);
  expect_identical_answers(expected, router, exhaustive_queries(inst));
}

TEST(Shard, EmptyShardRanges) {
  // More shards than vertices: trailing shards own empty ranges, and the
  // root-only shard of a star tree holds no tree edges at all.
  g::Instance inst;
  inst.tree = g::star_tree(5);  // root 0, children 1..4
  for (std::size_t v = 1; v < 5; ++v)
    inst.tree.weight[v] = static_cast<g::Weight>(v);
  inst.nontree = {{1, 2, 7}, {3, 4, 9}};
  ASSERT_TRUE(seq::verify_mst(inst));

  const auto mono = build_index(inst);
  const auto sharded = svc::ShardedSensitivityIndex::split(*mono, 8);
  ASSERT_EQ(sharded->num_shards(), 8u);
  EXPECT_EQ(sharded->shard(0).cost.tree_edges, 0u);  // root only
  for (std::size_t i = 5; i < 8; ++i) {
    EXPECT_EQ(sharded->shard(i).lo, sharded->shard(i).hi) << "shard " << i;
    EXPECT_EQ(sharded->shard(i).cost.resident_words, 0u) << "shard " << i;
  }
  const svc::QueryRouter router(sharded);
  const svc::MonolithicBackend expected(mono);
  expect_identical_answers(expected, router, exhaustive_queries(inst));
  // The k-way merge must skip the empty shards cleanly.
  const auto top = router.answer(svc::Query::top_k_fragile(10));
  ASSERT_EQ(top.fragile.size(), 4u);
}

TEST(Shard, TopKTieBreakingStableAcrossShardCounts) {
  // Duplicate sensitivities everywhere (slack 0, tiny weight range): the
  // global fragility order is fixed by the (sens, child id) tie-break, and
  // every shard count must reproduce it entry-for-entry.
  auto tree = g::random_recursive_tree(90, 311);
  g::assign_random_tree_weights(tree, 1, 3, 313);
  const auto inst = g::make_mst_instance(std::move(tree), 180, 317, 0);
  const auto mono = build_index(inst);
  const svc::MonolithicBackend expected(mono);

  bool saw_duplicate_sens = false;
  const auto full = expected.answer(svc::Query::top_k_fragile(
      static_cast<std::int64_t>(inst.n())));
  for (std::size_t i = 1; i < full.fragile.size(); ++i) {
    if (full.fragile[i].sens == full.fragile[i - 1].sens)
      saw_duplicate_sens = true;
    // Global order is strictly increasing on the (sens, child) pair.
    EXPECT_TRUE(full.fragile[i - 1].sens < full.fragile[i].sens ||
                full.fragile[i - 1].child < full.fragile[i].child);
  }
  EXPECT_TRUE(saw_duplicate_sens) << "tie regime produced no ties";

  for (const std::size_t shards : {1u, 2u, 5u, 8u, 90u}) {
    SCOPED_TRACE(shards);
    const svc::QueryRouter router(
        svc::ShardedSensitivityIndex::split(*mono, shards));
    for (const std::int64_t k : {1L, 7L, 45L, 89L, 90L}) {
      const auto a = expected.answer(svc::Query::top_k_fragile(k));
      const auto b = router.answer(svc::Query::top_k_fragile(k));
      ASSERT_EQ(a, b) << "k=" << k;
    }
  }
}

TEST(Shard, PerShardFootprintIsBounded) {
  auto tree = g::random_recursive_tree(400, 401);
  g::assign_random_tree_weights(tree, 1, 90, 403);
  const auto inst = g::make_mst_instance(std::move(tree), 1200, 407, 6);
  const auto mono = build_index(inst);
  const auto sharded = svc::ShardedSensitivityIndex::split(*mono, 8);

  std::size_t tree_total = 0, nontree_total = 0, words_total = 0;
  for (std::size_t i = 0; i < sharded->num_shards(); ++i) {
    const svc::ShardCost& c = sharded->shard(i).cost;
    tree_total += c.tree_edges;
    nontree_total += c.nontree_edges;
    words_total += c.resident_words;
    EXPECT_LE(c.tree_edges, (inst.n() + 7) / 8) << "shard " << i;
  }
  EXPECT_EQ(tree_total, inst.n() - 1);
  EXPECT_EQ(nontree_total, inst.nontree.size());
  // The point of sharding: no single participant holds more than a fraction
  // of the labeling (dense ranges are exactly balanced; the non-tree side is
  // randomized, so allow generous slack).
  EXPECT_LT(sharded->max_shard_words(), words_total / 4);
}

TEST(Shard, NonMstInstanceAgreesOnViolations) {
  auto tree = g::random_recursive_tree(100, 431);
  g::assign_random_tree_weights(tree, 5, 30, 433);
  auto inst = g::make_mst_instance(std::move(tree), 250, 437, 6);
  ASSERT_GT(g::inject_violations(inst, 3, 439), 0u);
  ASSERT_FALSE(seq::verify_mst(inst));
  const auto mono = build_index(inst);
  const auto sharded = svc::ShardedSensitivityIndex::split(*mono, 4);
  EXPECT_FALSE(sharded->is_mst());
  EXPECT_EQ(sharded->violations(), mono->violations());
  expect_identical_answers(svc::MonolithicBackend(mono),
                           svc::QueryRouter(sharded),
                           exhaustive_queries(inst));
}

TEST(Shard, ServiceOverRouterMatchesMonolithicService) {
  // The full serving stack (worker pool + LRU cache) over a sharded backend
  // against the monolithic service, under real batch concurrency — the merge
  // and routing paths the sanitizer jobs watch.
  auto tree = g::caterpillar_tree(300, 90, 443);
  g::assign_random_tree_weights(tree, 1, 60, 449);
  const auto inst = g::make_mst_instance(std::move(tree), 900, 457, 5);
  const auto mono = build_index(inst);
  svc::QueryService monolithic(mono, {.threads = 2, .cache_capacity = 0});
  svc::QueryService routed(
      std::make_shared<const svc::QueryRouter>(
          svc::ShardedSensitivityIndex::split(*mono, 8)),
      {.threads = 8, .chunk_size = 32});
  EXPECT_EQ(routed.backend().num_shards(), 8u);
  EXPECT_EQ(routed.backend().fingerprint(), mono->fingerprint());

  std::mt19937_64 rng(0xf00d);
  std::uniform_int_distribution<std::size_t> pick(1, inst.n() - 1);
  std::uniform_int_distribution<std::size_t> nontree_pick(
      0, inst.nontree.size() - 1);
  std::uniform_int_distribution<g::Weight> delta(-25, 25);
  std::vector<svc::Query> queries;
  queries.reserve(6000);
  for (std::size_t i = 0; i < 6000; ++i) {
    const auto c = static_cast<g::Vertex>(pick(rng));
    switch (i % 5) {
      case 0:
        queries.push_back(
            svc::Query::price_change(c, inst.tree.parent[c], delta(rng)));
        break;
      case 1: {
        const g::WEdge& e = inst.nontree[nontree_pick(rng)];
        queries.push_back(svc::Query::price_change(e.u, e.v, delta(rng)));
        break;
      }
      case 2:
        queries.push_back(
            svc::Query::replacement_edge(inst.tree.parent[c], c));
        break;
      case 3:
        queries.push_back(svc::Query::top_k_fragile(1 + (i % 13)));
        break;
      default:
        queries.push_back(
            svc::Query::corridor_headroom(c, inst.tree.parent[c]));
    }
  }
  const auto routed_answers = routed.answer_batch(queries);
  ASSERT_EQ(routed_answers.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    ASSERT_EQ(routed_answers[i], monolithic.answer(queries[i]))
        << i << ": " << to_string(queries[i]);
  // Warm pass is served from the cache and stays identical.
  EXPECT_EQ(routed.answer_batch(queries), routed_answers);
  EXPECT_GE(routed.stats().cache.hits, queries.size());
}

TEST(Shard, BuildShardedServiceEndToEnd) {
  auto tree = g::kary_tree(80, 4);
  g::assign_random_tree_weights(tree, 1, 15, 461);
  const auto inst = g::make_mst_instance(std::move(tree), 160, 463, 3);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto service = svc::QueryService::build_sharded(eng, inst, 4);
  EXPECT_EQ(service->backend().num_shards(), 4u);
  EXPECT_TRUE(service->backend().is_mst());
  EXPECT_GT(service->backend().receipt().build_rounds, 0u);

  const auto mono = build_index(inst);
  EXPECT_EQ(service->backend().fingerprint(), mono->fingerprint());
  for (std::size_t v = 1; v < inst.n(); ++v) {
    if (static_cast<g::Vertex>(v) == inst.tree.root) continue;
    const auto a = service->corridor_headroom(static_cast<g::Vertex>(v),
                                              inst.tree.parent[v]);
    const auto e = answer_query(
        *mono, svc::Query::corridor_headroom(static_cast<g::Vertex>(v),
                                             inst.tree.parent[v]));
    ASSERT_EQ(a, e) << "child " << v;
  }
}

}  // namespace
