// HashStream and query-key hashing: the batch-change-set key must be order-
// and length-sensitive at the stream level, while permuted-but-equal change
// sets — which Query::still_mst canonicalizes — must collide on purpose.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_set>
#include <vector>

#include "common/hash.hpp"
#include "service/query.hpp"

namespace svc = mpcmst::service;

TEST(HashStream, OrderSensitive) {
  mpcmst::HashStream ab;
  ab.mix(1).mix(2);
  mpcmst::HashStream ba;
  ba.mix(2).mix(1);
  EXPECT_NE(ab.digest(), ba.digest())
      << "a stream hash must depend on word order";
}

TEST(HashStream, LengthSensitive) {
  // Folding the count into the digest separates [x], [x, 0] and [0, x]:
  // zero-padding is not free, in either direction.
  mpcmst::HashStream one;
  one.mix(42);
  mpcmst::HashStream padded;
  padded.mix(42).mix(0);
  mpcmst::HashStream led;
  led.mix(0).mix(42);
  EXPECT_NE(one.digest(), padded.digest());
  EXPECT_NE(one.digest(), led.digest());
  EXPECT_NE(padded.digest(), led.digest());

  mpcmst::HashStream empty;
  EXPECT_NE(empty.digest(), mpcmst::HashStream().mix(0).digest());
}

TEST(HashStream, SeedSeparatesDomains) {
  mpcmst::HashStream plain;
  plain.mix(7);
  mpcmst::HashStream seeded(99);
  seeded.mix(7);
  EXPECT_NE(plain.digest(), seeded.digest());
}

TEST(HashStream, DeterministicAndWellSpread) {
  // Same words, same digest — and 4k short streams shouldn't collide.
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 64; ++a)
    for (std::uint64_t b = 0; b < 64; ++b) {
      mpcmst::HashStream h;
      h.mix(a).mix(b);
      mpcmst::HashStream again;
      again.mix(a).mix(b);
      EXPECT_EQ(h.digest(), again.digest());
      seen.insert(h.digest());
    }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(QueryHash, PermutedButEqualChangeSetsCollideByDesign) {
  std::vector<svc::PriceChange> batch;
  for (int i = 0; i < 10; ++i)
    batch.push_back(svc::PriceChange{i, i + 1, 100 - i});

  std::mt19937_64 rng(17);
  for (int rep = 0; rep < 20; ++rep) {
    auto permuted = batch;
    std::shuffle(permuted.begin(), permuted.end(), rng);
    for (std::size_t i = 0; i < permuted.size(); i += 2)
      std::swap(permuted[i].u, permuted[i].v);  // same edge, flipped spelling
    const svc::Query a = svc::Query::still_mst(batch);
    const svc::Query b = svc::Query::still_mst(permuted);
    ASSERT_TRUE(a == b);
    EXPECT_EQ(svc::QueryHash{}(a), svc::QueryHash{}(b))
        << "canonicalized equal sets must share a cache key";
  }
}

TEST(QueryHash, DistinctBatchesSeparate) {
  const svc::Query base =
      svc::Query::still_mst({svc::PriceChange{0, 1, 10},
                             svc::PriceChange{2, 3, 20}});
  const svc::Query other_weight =
      svc::Query::still_mst({svc::PriceChange{0, 1, 10},
                             svc::PriceChange{2, 3, 21}});
  const svc::Query other_edge =
      svc::Query::still_mst({svc::PriceChange{0, 1, 10},
                             svc::PriceChange{2, 4, 20}});
  const svc::Query shorter = svc::Query::still_mst({svc::PriceChange{0, 1, 10}});
  const svc::QueryHash h;
  EXPECT_NE(h(base), h(other_weight));
  EXPECT_NE(h(base), h(other_edge));
  EXPECT_NE(h(base), h(shorter));
  // And still_mst keys must not collide with the point-query families that
  // leave `changes` empty.
  EXPECT_NE(h(svc::Query::still_mst({})), h(svc::Query::price_change(0, 1, 0)));
}

TEST(QueryHash, DuplicateEntriesCollapseBeforeHashing) {
  // Last write wins during canonicalization, so a batch with a superseded
  // entry keys identically to the batch holding only the final word.
  const svc::Query dup = svc::Query::still_mst(
      {svc::PriceChange{4, 5, 1}, svc::PriceChange{5, 4, 9}});
  const svc::Query final_only =
      svc::Query::still_mst({svc::PriceChange{4, 5, 9}});
  ASSERT_TRUE(dup == final_only);
  EXPECT_EQ(svc::QueryHash{}(dup), svc::QueryHash{}(final_only));
}
