// Process-level harness for the networked tier, driven by the CI `network`
// job (and registered with CTest so plain `ctest` exercises it).  Spawns
// real `net_server` processes on loopback (port 0; endpoints parsed from
// each child's "LISTENING <ep>" log line — the logs stay in <dir> so CI can
// upload them on failure) and checks:
//
//   1. parity: a leader over two shard-server processes answers every probe
//      query byte-identically to an in-process build of the same
//      deterministic (n, seed) instance;
//   2. shard death: SIGKILL one shard server, restart an empty one on the
//      same endpoint — ingest + queries heal it (receipts and answers still
//      match the in-process oracle);
//   3. replication: a replica process subscribed to a persistent leader
//      catches up to the leader's generation/fingerprint, the leader is
//      SIGKILLed mid-stream, and the replica keeps serving reads at its
//      last contiguous generation (and refuses mutations with kNotLeader).
//
//   usage: net_harness <net_server_binary> <dir>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace svc = mpcmst::service;
namespace net = mpcmst::service::net;
using net::MsgType;

namespace {

constexpr std::size_t kN = 48;
constexpr std::uint64_t kSeed = 7;

/// net_server's deterministic workload instance (keep in sync with
/// examples/net_server.cpp): the oracle rebuilds it in-process.
g::Instance make_instance(std::size_t n, std::uint64_t seed) {
  auto tree = g::random_recursive_tree(n, seed);
  g::assign_random_tree_weights(tree, 1, 40, seed + 2);
  return g::make_mst_instance(std::move(tree), 2 * n, seed + 4, /*slack=*/4);
}

// --- child process management ----------------------------------------------

struct Child {
  pid_t pid = -1;
  std::string log;
};

/// fork + execv with stdout/stderr into `log` (argument strings are built
/// before fork, crash_harness-style).
Child spawn(const std::string& exe, const std::vector<std::string>& args,
            const std::string& log) {
  std::vector<const char*> argv;
  argv.push_back(exe.c_str());
  for (const std::string& a : args) argv.push_back(a.c_str());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
    }
    ::execv(exe.c_str(), const_cast<char**>(argv.data()));
    ::_exit(127);
  }
  MPCMST_ASSERT(pid > 0, "fork failed");
  return Child{pid, log};
}

void kill_child(Child& c, int sig = SIGKILL) {
  if (c.pid <= 0) return;
  ::kill(c.pid, sig);
  int status = 0;
  ::waitpid(c.pid, &status, 0);
  c.pid = -1;
}

/// Poll the child's log for "LISTENING <endpoint>".
std::string wait_listening(const Child& c, int timeout_ms = 30000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(c.log);
    std::string line;
    while (std::getline(in, line))
      if (line.rfind("LISTENING ", 0) == 0) return line.substr(10);
    // A child that already died will never listen; fail fast.
    int status = 0;
    MPCMST_ASSERT(::waitpid(c.pid, &status, WNOHANG) == 0,
                  "child exited before LISTENING (see " << c.log << ")");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  MPCMST_ASSERT(false, "timeout waiting for LISTENING in " << c.log);
  return {};
}

// --- service-endpoint client (kQuery / kIngest / kStats) --------------------

svc::Answer remote_answer(net::ShardConn& conn, const svc::Query& q) {
  mpcmst::ByteWriter body;
  net::encode_query(body, q);
  const net::Frame f = conn.call(MsgType::kQuery, body);
  MPCMST_ASSERT(f.type == MsgType::kQueryReply, "unexpected kQuery reply");
  mpcmst::ByteReader r(f.body.data(), f.body.size());
  svc::Answer a;
  net::WireStamp st;
  MPCMST_ASSERT(net::decode_answer(r, a) && net::decode_stamp(r, st),
                "truncated kQueryReply");
  return a;
}

std::vector<svc::UpdateReceipt> remote_ingest(
    net::ShardConn& conn, const std::vector<svc::EdgeEvent>& events) {
  mpcmst::ByteWriter body;
  body.u64(events.size());
  for (const svc::EdgeEvent& ev : events) net::encode_edge_event(body, ev);
  const net::Frame f = conn.call(MsgType::kIngest, body);
  MPCMST_ASSERT(f.type == MsgType::kIngestReply, "unexpected kIngest reply");
  mpcmst::ByteReader r(f.body.data(), f.body.size());
  const std::uint64_t count = r.u64();
  std::vector<svc::UpdateReceipt> out(static_cast<std::size_t>(count));
  for (svc::UpdateReceipt& rc : out)
    MPCMST_ASSERT(net::decode_update_receipt(r, rc),
                  "truncated kIngestReply");
  return out;
}

net::WireStats remote_stats(net::ShardConn& conn) {
  const net::Frame f = conn.call(MsgType::kStats, mpcmst::ByteWriter());
  MPCMST_ASSERT(f.type == MsgType::kStatsReply, "unexpected kStats reply");
  mpcmst::ByteReader r(f.body.data(), f.body.size());
  net::WireStats st;
  MPCMST_ASSERT(net::decode_stats(r, st), "truncated kStatsReply");
  return st;
}

// --- scenarios --------------------------------------------------------------

std::vector<svc::EdgeEvent> event_round(const g::Instance& inst, int round) {
  const auto n = static_cast<g::Vertex>(inst.n());
  const auto& nt = inst.nontree[static_cast<std::size_t>(round * 3) %
                                inst.nontree.size()];
  return {
      {svc::UpdateOp::kReweight, nt.u, nt.v, nt.w + 3 + round},
      {svc::UpdateOp::kAddEdge, (7 * round + 1) % n, (11 * round + 3) % n,
       2 + round},
  };
}

void expect_remote_parity(net::ShardConn& conn, svc::QueryService& oracle,
                          const g::Instance& inst, const char* what) {
  auto qs = mpcmst::test::probe_queries(inst);
  qs.push_back(svc::Query::still_mst({{0, 1, 2}, {1, 2, 50}}));
  for (const svc::Query& q : qs) {
    const svc::Answer got = remote_answer(conn, q);
    const svc::Answer want = oracle.answer(q);
    MPCMST_ASSERT(got == want,
                  what << ": answer diverged for " << svc::to_string(q));
  }
}

int run(const std::string& server_bin, const std::string& dir) {
  // Fresh at start, deliberately NOT wiped at exit: the child logs are the
  // post-mortem artifact CI uploads when a scenario fails.
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const g::Instance inst = make_instance(kN, kSeed);

  // In-process oracle over the identical instance.
  auto eng = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig oracle_cfg;
  oracle_cfg.engine = &eng;
  oracle_cfg.instance = &inst;
  oracle_cfg.sharded = true;
  oracle_cfg.num_shards = 2;
  oracle_cfg.live = true;
  auto oracle = svc::QueryService::open(oracle_cfg);

  // --- scenario 1: parity over real processes -------------------------------
  Child shard0 = spawn(server_bin, {"shard", "--listen", "127.0.0.1:0"},
                       dir + "/shard0.log");
  Child shard1 = spawn(server_bin, {"shard", "--listen", "127.0.0.1:0"},
                       dir + "/shard1.log");
  const std::string ep0 = wait_listening(shard0);
  const std::string ep1 = wait_listening(shard1);

  Child leader = spawn(server_bin,
                       {"leader", "--listen", "127.0.0.1:0", "--shards",
                        ep0 + "," + ep1, "--n", std::to_string(kN), "--seed",
                        std::to_string(kSeed), "--dir", dir + "/wal",
                        "--every", "100000"},
                       dir + "/leader.log");
  const std::string leader_ep = wait_listening(leader);
  net::ShardConn leader_conn(leader_ep, {});
  expect_remote_parity(leader_conn, *oracle, inst, "parity");
  std::cout << "scenario 1 (socket parity): OK\n";

  // --- scenario 2: SIGKILL one shard, restart empty, heal -------------------
  kill_child(shard1);
  shard1 = spawn(server_bin, {"shard", "--listen", ep1},
                 dir + "/shard1-restarted.log");
  MPCMST_ASSERT(wait_listening(shard1) == ep1, "restart endpoint moved");

  const auto evs = event_round(inst, 1);
  const auto remote_rc = remote_ingest(leader_conn, evs);
  const auto oracle_rc = oracle->ingest(evs);
  MPCMST_ASSERT(remote_rc.size() == oracle_rc.size(), "receipt count");
  for (std::size_t i = 0; i < remote_rc.size(); ++i)
    MPCMST_ASSERT(
        remote_rc[i].report.status == oracle_rc[i].report.status &&
            remote_rc[i].report.cls == oracle_rc[i].report.cls &&
            remote_rc[i].new_fingerprint == oracle_rc[i].new_fingerprint &&
            remote_rc[i].generation == oracle_rc[i].generation,
        "receipt " << i << " diverged after shard restart");
  const g::Instance now = oracle->updatable_backend()->instance_snapshot();
  expect_remote_parity(leader_conn, *oracle, now, "post-restart");
  std::cout << "scenario 2 (shard SIGKILL + restart): OK\n";

  // --- scenario 3: replica catch-up, leader SIGKILL mid-stream --------------
  Child replica = spawn(server_bin,
                        {"replica", "--listen", "127.0.0.1:0", "--leader",
                         leader_ep},
                        dir + "/replica.log");
  net::ShardConn replica_conn(wait_listening(replica), {});

  // Wait until the replica has installed state and caught the live tail.
  const net::WireStats lstats = remote_stats(leader_conn);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    MPCMST_ASSERT(std::chrono::steady_clock::now() < deadline,
                  "replica never caught up (see replica.log)");
    try {
      const net::WireStats rs = remote_stats(replica_conn);
      if (rs.serving && rs.generation == lstats.generation &&
          rs.fingerprint == lstats.fingerprint)
        break;
    } catch (const svc::ServiceError&) {
      // Endpoint up, no backend yet.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  expect_remote_parity(replica_conn, *oracle, now, "replica");

  // Mutations must be refused by the follower.
  bool refused = false;
  try {
    (void)remote_ingest(replica_conn, evs);
  } catch (const svc::ServiceError& e) {
    refused = e.status() == svc::ServiceStatus::kNotLeader;
  }
  MPCMST_ASSERT(refused, "replica accepted a mutation");

  // Commit one more burst and SIGKILL the leader right behind it: the
  // replica keeps serving at its last contiguous generation, whatever part
  // of the stream reached it.
  const auto burst = event_round(now, 2);
  const auto burst_rc = remote_ingest(leader_conn, burst);
  kill_child(leader);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const net::WireStats final_stats = remote_stats(replica_conn);
  MPCMST_ASSERT(final_stats.serving, "replica stopped serving");
  MPCMST_ASSERT(final_stats.generation >= lstats.generation &&
                    final_stats.generation <= burst_rc.back().generation,
                "replica generation " << final_stats.generation
                                      << " outside the committed range");
  // Whatever generation it stopped at, its fingerprint must be the one the
  // leader's receipts promised for that generation.
  std::uint64_t want_fp = lstats.fingerprint;
  for (const svc::UpdateReceipt& rc : burst_rc)
    if (rc.generation <= final_stats.generation) want_fp = rc.new_fingerprint;
  MPCMST_ASSERT(final_stats.fingerprint == want_fp,
                "replica fingerprint diverges from the journal chain");
  const svc::Answer probe =
      remote_answer(replica_conn, svc::Query::top_k_fragile(3));
  MPCMST_ASSERT(probe.status == svc::Status::kOk,
                "replica read failed after leader death");
  std::cout << "scenario 3 (replication + leader SIGKILL): OK\n";

  kill_child(replica);
  kill_child(shard0);
  kill_child(shard1);
  std::cout << "net harness PASSED\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: net_harness <net_server_binary> <dir>\n";
    return 2;
  }
  try {
    return run(argv[1], argv[2]);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
