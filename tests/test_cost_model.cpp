// Golden regression test for the charged MPC cost model.
//
// Pins the exact charged `mpc_rounds` and `peak_global_words` of the full
// build pipeline (verification core + sensitivity Algorithms 5-7) for the
// four standard tree families at a fixed size, under the same scaled engine
// configuration the benchmarks use.  The charged model is the paper's
// complexity measure: any engine or pipeline change — superlevel fusion,
// new primitives, reordered passes — must keep these numbers byte-identical
// or consciously update them alongside a cost-model change note in
// docs/PAPER_MAP.md.
//
// The constants were generated from the unfused per-level loops; the fused
// superlevel sweeps are required to reproduce them exactly, which is the
// executable proof that physical passes and charged rounds are decoupled.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "graph/generators.hpp"
#include "graph/instance.hpp"
#include "mpc/config.hpp"
#include "mpc/engine.hpp"
#include "sensitivity/sensitivity.hpp"

namespace g = mpcmst::graph;
namespace mpc = mpcmst::mpc;

namespace {

constexpr std::size_t kN = 1500;          // vertices per family
constexpr std::size_t kExtra = 3 * kN;    // non-tree edges (bench shape)
constexpr std::uint64_t kSeed = 2024;

struct FamilyCost {
  const char* name;
  std::size_t rounds;
  std::size_t peak_words;
};

// Golden charged costs (generated once from the unfused level loops).
constexpr FamilyCost kGolden[] = {
    {"path", 20866, 211878},
    {"star", 1506, 278886},
    {"k8ary", 3296, 380448},
    {"rand_recursive", 10100, 372758},
};

g::RootedTree make_family(const std::string& name) {
  if (name == "path") return g::relabel_random(g::path_tree(kN), kSeed + 1);
  if (name == "star") return g::relabel_random(g::star_tree(kN), kSeed + 2);
  if (name == "k8ary")
    return g::relabel_random(g::kary_tree(kN, 8), kSeed + 3);
  return g::relabel_random(g::random_recursive_tree(kN, kSeed + 10),
                           kSeed + 4);
}

class CostModelGolden : public ::testing::TestWithParam<FamilyCost> {};

TEST_P(CostModelGolden, ChargedRoundsAndPeakWordsArePinned) {
  const FamilyCost& golden = GetParam();
  const auto inst =
      g::make_layered_instance(make_family(golden.name), kExtra, kSeed + 20);
  mpc::Engine eng(mpc::MpcConfig::scaled(inst.input_words(), 0.5, 64.0));
  const auto result = mpcmst::sensitivity::mst_sensitivity_mpc(eng, inst);
  ASSERT_EQ(result.tree.size() + 1, inst.n());
  EXPECT_EQ(eng.stats().rounds, golden.rounds)
      << "charged mpc_rounds drifted for family " << golden.name;
  EXPECT_EQ(eng.stats().peak_global_words, golden.peak_words)
      << "charged peak_global_words drifted for family " << golden.name;
}

INSTANTIATE_TEST_SUITE_P(Families, CostModelGolden,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
