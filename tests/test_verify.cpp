// Tests for MST verification (Theorem 3.1) and the three baselines:
// correctness against the sequential oracles (YES and NO instances across
// the shape catalog), per-edge covering maxima, agreement among verifiers,
// round/memory profiles.
#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"
#include "verify/baselines.hpp"
#include "verify/verifier.hpp"

namespace g = mpcmst::graph;
namespace mpc = mpcmst::mpc;
namespace seq = mpcmst::seq;
namespace vf = mpcmst::verify;

namespace {

/// Sequential per-edge covering maxima for cross-checking verdicts.
std::vector<g::Weight> seq_maxima(const g::Instance& inst) {
  const seq::SeqTreeIndex idx(inst.tree);
  std::vector<g::Weight> out;
  out.reserve(inst.nontree.size());
  for (const auto& e : inst.nontree)
    out.push_back(e.u == e.v ? g::kNegInfW : idx.max_on_path(e.u, e.v));
  return out;
}

void expect_verdicts_match(const vf::VerifyResult& res,
                           const g::Instance& inst, const std::string& tag) {
  const auto ref = seq_maxima(inst);
  for (const auto& v : res.verdicts.local()) {
    ASSERT_GE(v.orig_id, 0);
    ASSERT_LT(static_cast<std::size_t>(v.orig_id), ref.size());
    EXPECT_EQ(v.maxpath, ref[v.orig_id])
        << tag << " edge " << v.orig_id << " {" << inst.nontree[v.orig_id].u
        << "," << inst.nontree[v.orig_id].v << "}";
    EXPECT_EQ(v.w, inst.nontree[v.orig_id].w);
  }
}

class VerifyShapes : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {
};

TEST_P(VerifyShapes, YesInstanceAccepted) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 40, 3);
  const auto inst = g::make_mst_instance(tree, 3 * tree.n, 5, 6);
  ASSERT_TRUE(seq::verify_mst(inst));
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = vf::verify_mst_mpc(eng, inst);
  EXPECT_TRUE(res.is_mst) << GetParam().name;
  EXPECT_EQ(res.violations, 0u);
  expect_verdicts_match(res, inst, GetParam().name);
}

TEST_P(VerifyShapes, NoInstanceRejected) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 40, 7);
  auto inst = g::make_mst_instance(tree, 3 * tree.n, 9, 6);
  const std::size_t injected = g::inject_violations(inst, 5, 11);
  ASSERT_GT(injected, 0u);
  ASSERT_FALSE(seq::verify_mst(inst));
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = vf::verify_mst_mpc(eng, inst);
  EXPECT_FALSE(res.is_mst) << GetParam().name;
  EXPECT_GT(res.violations, 0u);
  expect_verdicts_match(res, inst, GetParam().name);
}

TEST_P(VerifyShapes, RandomWeightsMatchOracleVerdict) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 30, 13);
  const auto inst = g::make_random_instance(tree, 2 * tree.n, 15, 1, 80);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = vf::verify_mst_mpc(eng, inst);
  EXPECT_EQ(res.is_mst, seq::verify_mst(inst)) << GetParam().name;
  expect_verdicts_match(res, inst, GetParam().name);
}

TEST_P(VerifyShapes, BaselinesAgreeWithPaperAlgorithm) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 25, 17);
  const auto inst = g::make_random_instance(tree, 2 * tree.n, 19, 1, 60);
  const auto ref = seq_maxima(inst);

  auto run = [&](auto&& fn, const char* tag) {
    auto eng = mpcmst::test::make_engine(64 * inst.input_words());
    const auto res = fn(eng, inst);
    EXPECT_EQ(res.is_mst, seq::verify_mst(inst)) << tag;
    for (const auto& v : res.verdicts.local())
      EXPECT_EQ(v.maxpath, ref[v.orig_id])
          << tag << " edge " << v.orig_id << " (" << GetParam().name << ")";
  };
  run(vf::naive_verifier, "naive");
  run(vf::lifting_verifier, "lifting");
  run(vf::pram_verifier, "pram");
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, VerifyShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(131)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& inf) {
      return inf.param.name;
    });

TEST(Verify, EmptyNontreeIsMst) {
  auto tree = g::kary_tree(64, 3);
  g::Instance inst;
  inst.tree = tree;
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = vf::verify_mst_mpc(eng, inst);
  EXPECT_TRUE(res.is_mst);
}

TEST(Verify, ValidatesInputWhenAsked) {
  g::RootedTree bad = g::path_tree(32);
  bad.parent[10] = 12;
  bad.parent[11] = 10;
  bad.parent[12] = 11;  // cycle
  g::Instance inst;
  inst.tree = bad;
  inst.nontree = {{0, 5, 3}};
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res =
      vf::verify_mst_mpc(eng, inst, vf::VerifyOptions{/*validate=*/true});
  EXPECT_FALSE(res.input_is_tree);
  EXPECT_FALSE(res.is_mst);
}

TEST(Verify, TieWeightsAreAccepted) {
  // w(e) == maxpath(e) keeps T an MST (Definition 1.2 tie convention).
  g::Instance inst;
  inst.tree.n = 4;
  inst.tree.root = 0;
  inst.tree.parent = {0, 0, 1, 2};
  inst.tree.weight = {0, 5, 5, 5};
  inst.nontree = {{0, 3, 5}};
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = vf::verify_mst_mpc(eng, inst);
  EXPECT_TRUE(res.is_mst);
  EXPECT_EQ(res.verdicts.local().at(0).maxpath, 5);
}

TEST(Verify, RoundsScaleWithDiameterNotSize) {
  const std::size_t n = 1 << 10;
  auto run = [&](g::RootedTree tree) {
    const auto inst = g::make_layered_instance(std::move(tree), n, 23);
    auto eng = mpcmst::test::make_engine(64 * inst.input_words());
    const auto res = vf::verify_mst_mpc(eng, inst);
    EXPECT_TRUE(res.is_mst);
    return eng.rounds();
  };
  const auto shallow = run(g::kary_tree(n, 8));
  const auto deep = run(g::path_tree(n));
  EXPECT_LT(shallow, deep);
}

TEST(Verify, LinearGlobalMemoryAcrossDiameters) {
  // The headline "optimal utilization": peak global words stays within a
  // fixed multiple of the input size across the whole diameter spectrum.
  const std::size_t n = 1 << 9;
  std::map<std::string, double> ratios;
  for (auto& [name, tree] :
       std::map<std::string, g::RootedTree>{{"star", g::star_tree(n)},
                                            {"kary", g::kary_tree(n, 4)},
                                            {"path", g::path_tree(n)}}) {
    const auto inst = g::make_layered_instance(std::move(tree), 2 * n, 29);
    auto eng = mpcmst::test::make_engine(256 * inst.input_words());
    (void)vf::verify_mst_mpc(eng, inst);
    ratios[name] = static_cast<double>(eng.stats().peak_global_words) /
                   static_cast<double>(inst.input_words());
  }
  for (const auto& [name, r] : ratios)
    EXPECT_LT(r, 64.0) << name << " peak/input ratio " << r;
}

}  // namespace
