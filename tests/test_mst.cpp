// Tests for the Borůvka MST builder: forest validity, weight-optimality
// against Kruskal, disconnected inputs, and closing the loop with the
// paper's verifier (build -> root -> verify accepts).
#include <gtest/gtest.h>

#include <random>

#include "graph/generators.hpp"
#include "mst/boruvka.hpp"
#include "seq/dsu.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"
#include "treeops/euler.hpp"
#include "verify/verifier.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;

namespace {

std::vector<g::WEdge> random_graph(std::size_t n, std::size_t m,
                                   std::uint64_t seed, bool connected) {
  std::mt19937_64 rng(seed);
  std::vector<g::WEdge> edges;
  std::uniform_int_distribution<g::Weight> w(1, 1000);
  if (connected) {
    for (std::size_t v = 1; v < n; ++v) {
      std::uniform_int_distribution<g::Vertex> pick(0,
                                                    static_cast<g::Vertex>(v) -
                                                        1);
      edges.push_back({static_cast<g::Vertex>(v), pick(rng), w(rng)});
    }
  }
  std::uniform_int_distribution<g::Vertex> pick(0, static_cast<g::Vertex>(n) -
                                                       1);
  while (edges.size() < m) {
    const auto a = pick(rng), b = pick(rng);
    if (a != b) edges.push_back({a, b, w(rng)});
  }
  return edges;
}

g::Weight kruskal_weight(std::size_t n, const std::vector<g::WEdge>& edges,
                         std::size_t* components = nullptr) {
  auto sorted = edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const g::WEdge& a, const g::WEdge& b) { return a.w < b.w; });
  seq::Dsu dsu(n);
  g::Weight total = 0;
  std::size_t comps = n;
  for (const auto& e : sorted)
    if (dsu.unite(e.u, e.v)) {
      total += e.w;
      --comps;
    }
  if (components) *components = comps;
  return total;
}

TEST(Boruvka, MatchesKruskalOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 400;
    const auto edges = random_graph(n, 1600, seed, /*connected=*/true);
    auto eng = mpcmst::test::make_engine(16 * edges.size() + 8 * n);
    const auto mst = mpcmst::mst::mst_boruvka_mpc(eng, n, edges);
    EXPECT_EQ(mst.components, 1u);
    EXPECT_EQ(mst.edges.size(), n - 1);
    EXPECT_EQ(mst.total_weight, kruskal_weight(n, edges)) << "seed " << seed;
    // The chosen edges really form a spanning forest.
    seq::Dsu dsu(n);
    for (const auto& e : mst.edges) EXPECT_TRUE(dsu.unite(e.u, e.v));
  }
}

TEST(Boruvka, HandlesDisconnectedGraphs) {
  const std::size_t n = 300;
  auto edges = random_graph(150, 400, 7, true);  // only vertices 0..149
  for (auto& e : edges) {
    (void)e;  // vertices 150..299 stay isolated except a small clique
  }
  edges.push_back({200, 201, 5});
  edges.push_back({201, 202, 6});
  auto eng = mpcmst::test::make_engine(16 * edges.size() + 8 * n);
  const auto mst = mpcmst::mst::mst_boruvka_mpc(eng, n, edges);
  std::size_t comps = 0;
  const auto kw = kruskal_weight(n, edges, &comps);
  EXPECT_EQ(mst.total_weight, kw);
  EXPECT_EQ(mst.components, comps);
}

TEST(Boruvka, PhasesAreLogarithmic) {
  const std::size_t n = 1 << 12;
  const auto edges = random_graph(n, 4 * n, 11, true);
  auto eng = mpcmst::test::make_engine(16 * edges.size() + 8 * n);
  const auto mst = mpcmst::mst::mst_boruvka_mpc(eng, n, edges);
  EXPECT_LE(mst.phases, 14u);  // ~log2(n) + slack
}

TEST(Boruvka, BuildRootVerifyRoundTrip) {
  // Build an MST, root it via the Euler-tour rooting, verify with the
  // paper's algorithm: the full downstream workflow.
  const std::size_t n = 500;
  const auto edges = random_graph(n, 2000, 13, true);
  auto eng = mpcmst::test::make_engine(64 * edges.size() + 8 * n);
  const auto mst = mpcmst::mst::mst_boruvka_mpc(eng, n, edges);
  ASSERT_EQ(mst.components, 1u);

  const auto rooted =
      mpcmst::treeops::root_tree_euler(eng, n, mst.edges, /*root=*/0);
  ASSERT_TRUE(rooted.tree.well_formed());

  g::Instance inst;
  inst.tree = rooted.tree;
  std::set<std::pair<g::Vertex, g::Vertex>> in_tree;
  for (const auto& e : mst.edges)
    in_tree.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  std::set<std::pair<g::Vertex, g::Vertex>> used;
  for (const auto& e : edges) {
    const auto k = std::make_pair(std::min(e.u, e.v), std::max(e.u, e.v));
    if (in_tree.count(k) && !used.count(k)) {
      // Skip exactly one copy: the tree instance owns it.  (Parallel edges
      // with equal endpoints but different weights stay in nontree.)
      const bool is_tree_weight =
          rooted.tree.weight[rooted.tree.parent[e.u] == e.v ? e.u : e.v] ==
          e.w;
      if (is_tree_weight) {
        used.insert(k);
        continue;
      }
    }
    inst.nontree.push_back(e);
  }
  auto eng2 = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = mpcmst::verify::verify_mst_mpc(eng2, inst);
  EXPECT_TRUE(res.is_mst);
}

}  // namespace
