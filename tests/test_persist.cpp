// Unit tests for the persistence layer (src/service/journal.hpp,
// src/service/snapshot.hpp) and QueryService::recover: journal framing and
// torn-tail truncation against hand-corrupted record bytes, snapshot
// round-trips on monolithic and sharded tiers (pure deserialization — load
// must reproduce the label columns byte-for-byte), newest-valid snapshot
// selection over a corrupted file, the snapshot_every_n compaction policy,
// and end-to-end recovery parity with both the live tier it mirrors and a
// fresh rebuild of the same instance.  The SIGKILL-under-load side lives in
// tests/crash_harness.cpp, driven by the CI `recovery` job.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <vector>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "graph/generators.hpp"
#include "service/journal.hpp"
#include "service/router.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/update.hpp"
#include "test_util.hpp"

namespace fs = std::filesystem;
namespace g = mpcmst::graph;
namespace svc = mpcmst::service;

namespace {

/// Scratch persistence directory under gtest's temp root.
mpcmst::test::ScratchDir make_dir(const std::string& name) {
  return mpcmst::test::ScratchDir(
      (fs::path(::testing::TempDir()) / ("mpcmst_persist_" + name)).string());
}

svc::JournalRecord make_record(std::uint64_t gen) {
  svc::JournalRecord rec;
  rec.generation = gen;
  rec.old_fingerprint = 0x1000 + gen;
  rec.new_fingerprint = 0x1000 + gen + 1;
  rec.u = static_cast<std::int64_t>(gen * 3);
  rec.v = static_cast<std::int64_t>(gen * 3 + 1);
  rec.new_w = static_cast<std::int64_t>(100 - gen);
  rec.cls = static_cast<std::uint8_t>(gen % 5);
  return rec;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

g::Instance small_instance(std::uint64_t seed) {
  auto tree = g::random_recursive_tree(40, seed);
  g::assign_random_tree_weights(tree, 1, 35, seed + 2);
  return g::make_mst_instance(std::move(tree), 80, seed + 4, /*slack=*/4);
}

std::shared_ptr<const svc::SensitivityIndex> fresh_build(
    const g::Instance& inst) {
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  return svc::SensitivityIndex::build(eng, inst);
}

using mpcmst::test::probe_queries;

TEST(Journal, AppendScanRoundTrip) {
  const auto dir = make_dir("journal_roundtrip");
  const std::string path = svc::journal_path(dir.str());
  {
    auto j = svc::Journal::open(path, svc::SyncMode::kCommit);
    for (std::uint64_t gen = 1; gen <= 5; ++gen) j.append(make_record(gen));
  }
  const auto scan = svc::Journal::scan(path);
  ASSERT_FALSE(scan.missing);
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 5u);
  for (std::uint64_t gen = 1; gen <= 5; ++gen)
    EXPECT_EQ(scan.records[gen - 1], make_record(gen)) << "gen " << gen;

  // Reopening appends after the existing records.
  {
    auto j = svc::Journal::open(path, svc::SyncMode::kNever);
    j.append(make_record(6));
  }
  EXPECT_EQ(svc::Journal::scan(path).records.size(), 6u);
}

TEST(Journal, TornTailIsTruncated) {
  const auto dir = make_dir("journal_torn");
  const std::string path = svc::journal_path(dir.str());
  {
    auto j = svc::Journal::open(path, svc::SyncMode::kCommit);
    for (std::uint64_t gen = 1; gen <= 3; ++gen) j.append(make_record(gen));
  }
  const auto clean = svc::Journal::scan(path);
  ASSERT_EQ(clean.records.size(), 3u);
  const std::uint64_t full_size = clean.valid_bytes;

  // Chop the last record mid-frame: a crash between the two halves of an
  // append leaves exactly this shape.
  auto bytes = read_file(path);
  ASSERT_EQ(bytes.size(), full_size);
  bytes.resize(bytes.size() - 20);
  write_file(path, bytes);

  auto scan = svc::Journal::recover(path);
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(fs::file_size(path), scan.valid_bytes);

  // The truncated journal accepts appends again, exactly where it left off.
  {
    auto j = svc::Journal::open(path, svc::SyncMode::kCommit);
    j.append(make_record(3));
  }
  const auto rescan = svc::Journal::scan(path);
  EXPECT_FALSE(rescan.torn);
  ASSERT_EQ(rescan.records.size(), 3u);
  EXPECT_EQ(rescan.records.back(), make_record(3));
}

TEST(Journal, CorruptedRecordBytesStopTheScan) {
  const auto dir = make_dir("journal_corrupt");
  const std::string path = svc::journal_path(dir.str());
  {
    auto j = svc::Journal::open(path, svc::SyncMode::kCommit);
    for (std::uint64_t gen = 1; gen <= 3; ++gen) j.append(make_record(gen));
  }
  // Flip one payload byte inside record 2 (headers are 16 bytes, frames 58):
  // its CRC fails, and — because nothing after a bad frame can be trusted —
  // record 3 is dropped with it.
  auto bytes = read_file(path);
  const std::size_t frame = (bytes.size() - 16) / 3;
  bytes[16 + frame + 10] ^= 0x40;
  write_file(path, bytes);

  const auto scan = svc::Journal::scan(path);
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], make_record(1));

  const auto recovered = svc::Journal::recover(path);
  EXPECT_EQ(fs::file_size(path), recovered.valid_bytes);
  EXPECT_EQ(svc::Journal::scan(path).records.size(), 1u);
  EXPECT_FALSE(svc::Journal::scan(path).torn);
}

/// Hand-encode a version-1 journal file (49-byte payloads, no op byte) —
/// the on-disk format every tier wrote before topology ops existed.
void write_v1_journal(const std::string& path,
                      const std::vector<svc::JournalRecord>& recs) {
  mpcmst::ByteWriter w;
  const char magic[8] = {'M', 'P', 'C', 'J', 'R', 'N', '0', '1'};
  w.bytes(magic, sizeof magic);
  w.u32(1);
  w.u32(mpcmst::crc32(w.data().data(), w.size()));
  for (const auto& rec : recs) {
    mpcmst::ByteWriter payload;
    payload.u64(rec.generation);
    payload.u64(rec.old_fingerprint);
    payload.u64(rec.new_fingerprint);
    payload.i64(rec.u);
    payload.i64(rec.v);
    payload.i64(rec.new_w);
    payload.u8(rec.cls);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.bytes(payload.data().data(), payload.size());
    w.u32(mpcmst::crc32(payload.data().data(), payload.size()));
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(w.data().data()),
            static_cast<std::streamsize>(w.size()));
}

TEST(Journal, V1FileUpgradesOnOpen) {
  const auto dir = make_dir("journal_v1_upgrade");
  const std::string path = svc::journal_path(dir.str());
  std::vector<svc::JournalRecord> recs;
  for (std::uint64_t gen = 1; gen <= 4; ++gen) recs.push_back(make_record(gen));
  write_v1_journal(path, recs);

  // A v1 file scans as-is (every record is a reweight)...
  const auto v1 = svc::Journal::scan(path);
  ASSERT_FALSE(v1.missing);
  EXPECT_EQ(v1.version, 1u);
  ASSERT_EQ(v1.records.size(), 4u);
  for (std::uint64_t gen = 1; gen <= 4; ++gen) {
    EXPECT_EQ(v1.records[gen - 1], make_record(gen)) << "gen " << gen;
    EXPECT_EQ(v1.records[gen - 1].op, 0u);
  }

  // ...and open() upgrades it in place before appending v2 frames.
  {
    auto j = svc::Journal::open(path, svc::SyncMode::kCommit);
    svc::JournalRecord topo = make_record(5);
    topo.op = static_cast<std::uint8_t>(svc::UpdateOp::kAddEdge);
    j.append(topo);
  }
  const auto v2 = svc::Journal::scan(path);
  EXPECT_EQ(v2.version, 2u);
  EXPECT_FALSE(v2.torn);
  ASSERT_EQ(v2.records.size(), 5u);
  for (std::uint64_t gen = 1; gen <= 4; ++gen)
    EXPECT_EQ(v2.records[gen - 1], make_record(gen)) << "gen " << gen;
  EXPECT_EQ(v2.records[4].op,
            static_cast<std::uint8_t>(svc::UpdateOp::kAddEdge));

  // A torn v1 tail is dropped by the upgrade, like recover() would.
  write_v1_journal(path, recs);
  auto bytes = read_file(path);
  bytes.resize(bytes.size() - 10);
  write_file(path, bytes);
  { auto j = svc::Journal::open(path, svc::SyncMode::kCommit); }
  const auto fixed = svc::Journal::scan(path);
  EXPECT_EQ(fixed.version, 2u);
  EXPECT_FALSE(fixed.torn);
  EXPECT_EQ(fixed.records.size(), 3u);
}

TEST(Persist, RecoverFromV1FixtureMatchesV2) {
  // Drive a real tier, then rewrite its journal as the v1 format a
  // pre-topology build would have left behind.  recover() must land on the
  // same generation and fingerprint as from the v2 file.
  const auto dir = make_dir("recover_v1_fixture");
  const auto inst = small_instance(401);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  svc::PersistenceConfig cfg;
  cfg.dir = dir.str();
  cfg.snapshot_every_n = 0;  // journal-only: recovery replays everything
  auto live = svc::QueryService::build_live(eng, inst, {}, cfg);
  std::mt19937_64 rng(0xbead);
  std::size_t applied = 0;
  while (applied < 8) {
    const auto snapshot = live->updatable_backend()->instance_snapshot();
    g::Vertex u;
    do {
      u = static_cast<g::Vertex>(rng() % snapshot.n());
    } while (u == snapshot.tree.root);
    const auto r = live->apply_update(
        u, snapshot.tree.parent[static_cast<std::size_t>(u)],
        1 + static_cast<g::Weight>(rng() % 40));
    if (r.report.cls != svc::UpdateClass::kNoChange) ++applied;
  }
  const std::uint64_t want_gen = live->backend().generation();
  const std::uint64_t want_fp = live->backend().fingerprint();
  live.reset();  // release the journal handle

  const std::string path = svc::journal_path(dir.str());
  const auto scan = svc::Journal::scan(path);
  ASSERT_EQ(scan.version, 2u);
  ASSERT_EQ(scan.records.size(), 8u);
  for (const auto& rec : scan.records) ASSERT_EQ(rec.op, 0u);
  write_v1_journal(path, scan.records);
  ASSERT_EQ(svc::Journal::scan(path).version, 1u);

  svc::QueryService::RecoveredInfo info;
  auto recovered = svc::QueryService::recover(cfg, {}, &info);
  EXPECT_EQ(info.replayed_records, 8u);
  EXPECT_EQ(recovered->backend().generation(), want_gen);
  EXPECT_EQ(recovered->backend().fingerprint(), want_fp);
  // The resumed journal is v2 on disk now.
  recovered.reset();
  EXPECT_EQ(svc::Journal::scan(path).version, 2u);
}

TEST(Snapshot, MonolithRoundTripIsByteIdentical) {
  const auto dir = make_dir("snapshot_mono");
  const auto inst = small_instance(101);
  const auto idx = fresh_build(inst);
  svc::write_snapshot(dir.str(), 0, *idx, nullptr);

  const auto image = svc::load_snapshot_file(svc::snapshot_path(dir.str(), 0));
  ASSERT_TRUE(image.has_value());
  EXPECT_FALSE(image->sharded());
  EXPECT_EQ(image->generation, 0u);

  // Pure deserialization: every column, order and receipt must come back
  // byte-for-byte, and the reconstructed instance must equal the original.
  EXPECT_EQ(image->index->fingerprint(), idx->fingerprint());
  EXPECT_EQ(image->index->tree_labels(), idx->tree_labels());
  EXPECT_EQ(image->index->nontree_labels(), idx->nontree_labels());
  EXPECT_EQ(image->index->fragile_order(), idx->fragile_order());
  EXPECT_EQ(image->index->root(), idx->root());
  EXPECT_EQ(image->index->violations(), idx->violations());
  EXPECT_EQ(image->index->receipt().build_rounds, idx->receipt().build_rounds);
  EXPECT_EQ(image->instance.tree.parent, inst.tree.parent);
  EXPECT_EQ(image->instance.tree.weight, inst.tree.weight);
  EXPECT_EQ(image->instance.nontree, inst.nontree);

  const svc::MonolithicBackend want(idx);
  const svc::MonolithicBackend got(image->index);
  for (const auto& q : probe_queries(inst))
    ASSERT_EQ(got.answer(q), want.answer(q)) << to_string(q);
}

TEST(Snapshot, NewestValidWinsOverCorrupted) {
  const auto dir = make_dir("snapshot_newest");
  const auto inst = small_instance(151);
  const auto idx = fresh_build(inst);
  const auto shards = svc::ShardedSensitivityIndex::split(*idx, 3);
  svc::write_snapshot(dir.str(), 0, *idx, shards.get());
  svc::write_snapshot(dir.str(), 7, *idx, nullptr);

  // The sharded generation-0 file round-trips every shard column.
  {
    const auto image =
        svc::load_snapshot_file(svc::snapshot_path(dir.str(), 0));
    ASSERT_TRUE(image.has_value());
    ASSERT_TRUE(image->sharded());
    EXPECT_EQ(image->shards->num_shards(), 3u);
    EXPECT_EQ(image->shards->fingerprint(), idx->fingerprint());
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(image->shards->shard(s).tree, shards->shard(s).tree);
      EXPECT_EQ(image->shards->shard(s).nontree, shards->shard(s).nontree);
      EXPECT_EQ(image->shards->shard(s).fragile_order,
                shards->shard(s).fragile_order);
    }
  }

  ASSERT_EQ(svc::load_newest_snapshot(dir.str())->generation, 7u);

  // Corrupt one byte in the middle of the newest file: selection must fall
  // back to generation 0 rather than serve a lying snapshot.
  const std::string newest = svc::snapshot_path(dir.str(), 7);
  auto bytes = read_file(newest);
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(newest, bytes);
  EXPECT_FALSE(svc::load_snapshot_file(newest).has_value());
  const auto image = svc::load_newest_snapshot(dir.str());
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->generation, 0u);
  EXPECT_TRUE(image->sharded());
}

TEST(Persist, RecoverMatchesLiveTierAndFreshRebuild) {
  const auto dir = make_dir("recover_e2e");
  const auto inst = small_instance(211);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  svc::PersistenceConfig cfg;
  cfg.dir = dir.str();
  cfg.snapshot_every_n = 0;  // journal-only: recovery replays everything
  auto live = svc::QueryService::build_live_sharded(eng, inst, 3, {}, cfg);

  // Drive a deterministic mix of reweights and swaps through the tier.
  std::mt19937_64 rng(0xfeed);
  std::size_t applied = 0;
  while (applied < 25) {
    const auto snapshot = live->updatable_backend()->instance_snapshot();
    g::Vertex u, v;
    if (rng() % 2 == 0) {
      do {
        u = static_cast<g::Vertex>(rng() % snapshot.n());
      } while (u == snapshot.tree.root);
      v = snapshot.tree.parent[static_cast<std::size_t>(u)];
    } else {
      const g::WEdge& e = snapshot.nontree[rng() % snapshot.nontree.size()];
      u = e.u;
      v = e.v;
    }
    const auto r = live->apply_update(
        u, v, 1 + static_cast<g::Weight>(rng() % 50));
    ASSERT_EQ(r.report.status, svc::Status::kOk);
    if (r.report.cls != svc::UpdateClass::kNoChange) ++applied;
  }

  svc::QueryService::RecoveredInfo info;
  auto recovered = svc::QueryService::recover(cfg, {}, &info);
  EXPECT_EQ(info.snapshot_generation, 0u);
  EXPECT_EQ(info.replayed_records, 25u);
  EXPECT_FALSE(info.journal_was_torn);

  // Continuity with the live tier...
  EXPECT_EQ(recovered->backend().generation(), live->backend().generation());
  EXPECT_EQ(recovered->backend().fingerprint(), live->backend().fingerprint());
  EXPECT_EQ(recovered->backend().num_shards(), 3u);
  const auto current = live->updatable_backend()->instance_snapshot();
  const auto rec_inst = recovered->updatable_backend()->instance_snapshot();
  EXPECT_EQ(rec_inst.tree.parent, current.tree.parent);
  EXPECT_EQ(rec_inst.tree.weight, current.tree.weight);
  EXPECT_EQ(rec_inst.nontree, current.nontree);

  // ...and byte-identical answers against a fresh distributed rebuild.
  const svc::MonolithicBackend oracle(fresh_build(current));
  for (const auto& q : probe_queries(current)) {
    const svc::Answer want = oracle.answer(q);
    ASSERT_EQ(recovered->backend().answer(q), want) << to_string(q);
    ASSERT_EQ(live->backend().answer(q), want) << to_string(q);
  }

  // The recovered tier keeps absorbing updates and stays recoverable.
  const auto c =
      static_cast<g::Vertex>(current.tree.root == 0 ? 1 : 0);
  const auto r2 = recovered->apply_update(
      c, current.tree.parent[static_cast<std::size_t>(c)], 33);
  if (r2.report.cls != svc::UpdateClass::kNoChange) {
    recovered.reset();  // release the journal before recovering again
    auto again = svc::QueryService::recover(cfg);
    EXPECT_EQ(again->backend().fingerprint(), r2.new_fingerprint);
  }
}

TEST(Persist, CompactionPolicyBoundsTheJournal) {
  const auto dir = make_dir("compaction");
  const auto inst = small_instance(307);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  svc::PersistenceConfig cfg;
  cfg.dir = dir.str();
  cfg.sync_mode = svc::SyncMode::kNever;
  cfg.snapshot_every_n = 4;
  auto live = svc::QueryService::build_live(eng, inst, {}, cfg);

  std::mt19937_64 rng(42);
  std::size_t applied = 0;
  while (applied < 10) {
    const auto snapshot = live->updatable_backend()->instance_snapshot();
    g::Vertex u;
    do {
      u = static_cast<g::Vertex>(rng() % snapshot.n());
    } while (u == snapshot.tree.root);
    const auto r = live->apply_update(
        u, snapshot.tree.parent[static_cast<std::size_t>(u)],
        1 + static_cast<g::Weight>(rng() % 40));
    if (r.report.cls != svc::UpdateClass::kNoChange) ++applied;
  }

  // Checkpoints landed at generations 4 and 8, so the journal holds at most
  // snapshot_every_n - 1 records (here: generations 9 and 10).
  const auto scan = svc::Journal::scan(svc::journal_path(dir.str()));
  EXPECT_EQ(scan.records.size(), 2u);
  // Old snapshots are pruned down to the newest two.
  EXPECT_EQ(svc::list_snapshot_files(dir.str()).size(), 2u);

  svc::QueryService::RecoveredInfo info;
  auto recovered = svc::QueryService::recover(cfg, {}, &info);
  EXPECT_EQ(info.snapshot_generation, 8u);
  EXPECT_EQ(info.replayed_records, 2u);
  EXPECT_EQ(recovered->backend().generation(), 10u);
  EXPECT_EQ(recovered->backend().fingerprint(), live->backend().fingerprint());

  // An explicit checkpoint leaves nothing to replay.
  live->checkpoint();
  EXPECT_EQ(svc::Journal::scan(svc::journal_path(dir.str())).records.empty(),
            true);

  // Staleness floor: corrupt the newest snapshot (generation 10).  The
  // fallback (generation 8) exists, but the compacted journal cannot bridge
  // 8 -> 10 any more — recovering would silently un-acknowledge two
  // committed updates, so recover() must refuse instead.
  const std::string newest = svc::snapshot_path(dir.str(), 10);
  auto bytes = read_file(newest);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(newest, bytes);
  EXPECT_THROW((void)svc::QueryService::recover(cfg), mpcmst::ModelError);
}

}  // namespace
