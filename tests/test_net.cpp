// In-process integration tests for the networked tier: leader parity with
// the in-process sharded backend under interleaved + concurrent updates, a
// shard-server restart healing through stamp-mismatch re-bootstrap, and
// journal-shipped replication (ReplicationHub + ReplicaNode over a loopback
// ServiceServer) with reconnect-resume from the last applied generation.
// Process-level crash scenarios (SIGKILL) live in net_harness.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/replicate.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace svc = mpcmst::service;
namespace net = mpcmst::service::net;

namespace {

g::Instance make_instance(std::size_t n, std::uint64_t seed) {
  auto tree = g::random_recursive_tree(n, seed);
  g::assign_random_tree_weights(tree, 1, 40, seed + 2);
  return g::make_mst_instance(std::move(tree), 2 * n, seed + 4, /*slack=*/4);
}

/// Deterministic event stream over the instance: reweights on both edge
/// kinds, inserts (including colliding ones both sides refuse identically),
/// and deletes.
std::vector<svc::EdgeEvent> event_round(const g::Instance& inst, int round) {
  const auto n = static_cast<g::Vertex>(inst.n());
  std::vector<svc::EdgeEvent> evs;
  const auto& nt = inst.nontree[static_cast<std::size_t>(round * 3) %
                                inst.nontree.size()];
  evs.push_back({svc::UpdateOp::kReweight, nt.u, nt.v, nt.w + 3 + round});
  const g::Vertex c = (round + 1) % n == inst.tree.root
                          ? (round + 2) % n
                          : (round + 1) % n;
  evs.push_back({svc::UpdateOp::kReweight, c,
                 inst.tree.parent[static_cast<std::size_t>(c)],
                 1 + (round % 5)});
  evs.push_back({svc::UpdateOp::kAddEdge, (7 * round + 1) % n,
                 (11 * round + 3) % n, 2 + round});
  const auto& del = inst.nontree[static_cast<std::size_t>(round * 5 + 1) %
                                 inst.nontree.size()];
  evs.push_back({svc::UpdateOp::kRemoveEdge, del.u, del.v, 0});
  return evs;
}

void expect_parity(svc::QueryService& a, svc::QueryService& b,
                   const g::Instance& inst, const char* what) {
  auto qs = mpcmst::test::probe_queries(inst);
  qs.push_back(svc::Query::still_mst({{0, 1, 2}, {1, 2, 50}}));
  const auto xs = a.answer_batch(qs);
  const auto ys = b.answer_batch(qs);
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < qs.size(); ++i)
    ASSERT_EQ(xs[i], ys[i]) << what << ": query " << i << " "
                            << svc::to_string(qs[i]);
}

void expect_receipts_match(const std::vector<svc::UpdateReceipt>& xs,
                           const std::vector<svc::UpdateReceipt>& ys,
                           const char* what) {
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].report.status, ys[i].report.status) << what << " " << i;
    EXPECT_EQ(xs[i].report.cls, ys[i].report.cls) << what << " " << i;
    EXPECT_EQ(xs[i].old_fingerprint, ys[i].old_fingerprint) << what << " "
                                                            << i;
    EXPECT_EQ(xs[i].new_fingerprint, ys[i].new_fingerprint) << what << " "
                                                            << i;
    EXPECT_EQ(xs[i].generation, ys[i].generation) << what << " " << i;
  }
}

bool wait_until(const std::function<bool()>& cond, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

TEST(NetLeader, ParityUnderInterleavedAndConcurrentUpdates) {
  const g::Instance inst = make_instance(40, 31);

  std::vector<std::unique_ptr<net::ShardServer>> servers;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<net::ShardServer>(
        net::Listener::bind("127.0.0.1:0")));
    servers.back()->start();
    endpoints.push_back(servers.back()->endpoint());
  }

  auto eng1 = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig local_cfg;
  local_cfg.engine = &eng1;
  local_cfg.instance = &inst;
  local_cfg.sharded = true;
  local_cfg.num_shards = 3;
  local_cfg.live = true;
  auto local = svc::QueryService::open(local_cfg);

  auto eng2 = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig net_cfg;
  net_cfg.engine = &eng2;
  net_cfg.instance = &inst;
  net_cfg.live = true;
  net_cfg.remote_shards = endpoints;
  auto leader = svc::QueryService::open(net_cfg);

  // A concurrent reader hammers the leader across every ingest below: it
  // must always get a whole-epoch answer (the fan-out and the patch
  // broadcast exclude each other), never a torn merge or an error.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    const svc::Query probe = svc::Query::top_k_fragile(5);
    while (!done.load(std::memory_order_acquire)) {
      const svc::Answer a = leader->answer(probe);
      ASSERT_EQ(a.status, svc::Status::kOk);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int round = 0; round < 6; ++round) {
    const auto evs = event_round(inst, round);
    const auto lr = local->ingest(evs);
    const auto nr = leader->ingest(evs);
    expect_receipts_match(lr, nr, "round receipt");
    const g::Instance now = local->updatable_backend()->instance_snapshot();
    expect_parity(*local, *leader, now, "round");
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(leader->backend().generation(), local->backend().generation());
  EXPECT_EQ(leader->backend().fingerprint(), local->backend().fingerprint());

  for (auto& s : servers) s->stop();
}

TEST(NetLeader, ShardRestartHealsViaRebootstrap) {
  const g::Instance inst = make_instance(24, 51);

  std::vector<std::unique_ptr<net::ShardServer>> servers;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<net::ShardServer>(
        net::Listener::bind("127.0.0.1:0")));
    servers.back()->start();
    endpoints.push_back(servers.back()->endpoint());
  }

  auto eng1 = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig local_cfg;
  local_cfg.engine = &eng1;
  local_cfg.instance = &inst;
  local_cfg.sharded = true;
  local_cfg.num_shards = 2;
  local_cfg.live = true;
  auto local = svc::QueryService::open(local_cfg);

  auto eng2 = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig net_cfg;
  net_cfg.engine = &eng2;
  net_cfg.instance = &inst;
  net_cfg.live = true;
  net_cfg.remote_shards = endpoints;
  auto leader = svc::QueryService::open(net_cfg);
  expect_parity(*local, *leader, inst, "pre-restart");

  // Kill shard 1 and restart an empty server on the same endpoint: the
  // leader detects the lost slice (connection fault or foreign stamp) and
  // re-bootstraps it from the authoritative core on the next query.
  servers[1]->stop();
  servers[1].reset();
  servers[1] =
      std::make_unique<net::ShardServer>(net::Listener::bind(endpoints[1]));
  servers[1]->start();

  const std::uint64_t reboots_before =
      net::net_counter("shard_rebootstraps").total();
  // Same-generation parity still holds (the leader's cache keeps serving
  // the unchanged epoch while the slice is gone).
  expect_parity(*local, *leader, inst, "post-restart");

  // An uncached fan-out query must cross the wire: the leader hits the
  // empty server, suspects the tier, and re-bootstraps the lost slice from
  // its authoritative core — the query then answers correctly.
  const svc::Query fresh = svc::Query::top_k_fragile(2);
  EXPECT_EQ(leader->answer(fresh), local->answer(fresh));
  if (mpcmst::metrics_enabled()) {
    EXPECT_GT(net::net_counter("shard_rebootstraps").total(), reboots_before);
  }

  // And updates flow again end to end.
  const auto evs = event_round(inst, 1);
  expect_receipts_match(local->ingest(evs), leader->ingest(evs),
                        "post-restart receipt");
  const g::Instance now = local->updatable_backend()->instance_snapshot();
  expect_parity(*local, *leader, now, "post-restart ingest");

  for (auto& s : servers) s->stop();
}

TEST(NetReplication, CatchUpLiveTailAndReconnectResume) {
  mpcmst::test::ScratchDir scratch("net_replication");
  const g::Instance inst = make_instance(32, 71);

  auto eng = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig cfg;
  cfg.engine = &eng;
  cfg.instance = &inst;
  cfg.live = true;
  // A huge snapshot cadence keeps the journal un-truncated, so resumes can
  // always bridge from it (the snapshot path is exercised by the fresh
  // replica's bootstrap below).
  cfg.persist = svc::PersistenceConfig{scratch.str(), svc::SyncMode::kCommit,
                                       1 << 20};
  auto leader = svc::QueryService::open(cfg);

  auto hub = std::make_shared<net::ReplicationHub>(scratch.str());
  leader->updatable_backend()->set_commit_listener(
      [hub](const std::vector<svc::JournalRecord>& recs) {
        hub->publish(recs);
      });

  std::shared_ptr<svc::QueryService> shared_leader = std::move(leader);
  net::ServiceServer server(net::Listener::bind("127.0.0.1:0"),
                            [shared_leader] { return shared_leader; });
  server.set_subscribe_handler(
      [hub](net::Socket s, std::uint64_t last_gen, bool have_state) {
        hub->subscribe(std::move(s), last_gen, have_state);
      });
  server.start();

  // Fresh replica: bootstraps from the generation-0 snapshot + journal tail.
  net::ReplicaNode node(server.endpoint());
  node.start();
  ASSERT_TRUE(wait_until([&] { return node.service() != nullptr; }, 10000));

  // Live tail: every committed batch is pushed to the subscriber.
  for (int round = 0; round < 3; ++round)
    shared_leader->ingest(event_round(inst, round));
  const std::uint64_t gen1 = shared_leader->backend().generation();
  ASSERT_TRUE(
      wait_until([&] { return node.applied_generation() == gen1; }, 10000));
  auto replica_svc = node.service();
  ASSERT_NE(replica_svc, nullptr);
  EXPECT_EQ(replica_svc->backend().fingerprint(),
            shared_leader->backend().fingerprint());
  const g::Instance now =
      shared_leader->updatable_backend()->instance_snapshot();
  expect_parity(*shared_leader, *replica_svc, now, "caught-up replica");

  // Disconnect, commit more while the replica is away, reconnect: the node
  // re-subscribes from its last applied generation and resumes via the
  // journal tail alone — no snapshot is re-shipped.
  const std::uint64_t snaps_before =
      net::net_counter("snapshots_shipped").total();
  node.stop();
  for (int round = 3; round < 6; ++round)
    shared_leader->ingest(event_round(inst, round));
  const std::uint64_t gen2 = shared_leader->backend().generation();
  ASSERT_GT(gen2, gen1);
  node.start();
  ASSERT_TRUE(
      wait_until([&] { return node.applied_generation() == gen2; }, 10000));
  if (mpcmst::metrics_enabled()) {
    EXPECT_EQ(net::net_counter("snapshots_shipped").total(), snaps_before);
  }
  replica_svc = node.service();
  ASSERT_NE(replica_svc, nullptr);
  EXPECT_EQ(replica_svc->backend().fingerprint(),
            shared_leader->backend().fingerprint());
  const g::Instance now2 =
      shared_leader->updatable_backend()->instance_snapshot();
  expect_parity(*shared_leader, *replica_svc, now2, "resumed replica");

  // The replica keeps serving its last contiguous generation after the
  // leader goes away entirely (the in-process stand-in for leader SIGKILL;
  // the process-level version lives in the net harness).
  server.stop();
  hub->close_all();
  auto lone = node.service();
  ASSERT_NE(lone, nullptr);
  EXPECT_EQ(lone->backend().generation(), gen2);
  const auto probe = lone->answer(svc::Query::top_k_fragile(3));
  EXPECT_EQ(probe.status, svc::Status::kOk);
  node.stop();
}

}  // namespace
