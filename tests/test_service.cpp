// Tests for the sensitivity query service (src/service/): index snapshot
// against the sequential oracles, replacement-edge correctness, Definition
// 1.2 tie semantics end-to-end (mutate + re-verify), randomized agreement
// across generator families (incl. duplicate weights and partial cover),
// cache behavior, and batched concurrency.
#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;
namespace svc = mpcmst::service;

namespace {

std::shared_ptr<const svc::SensitivityIndex> build_index(
    const g::Instance& inst) {
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  return svc::SensitivityIndex::build(eng, inst);
}

/// Expected headroom under the Definition 1.2 sentinels.
g::Weight tree_headroom(const seq::SensitivityResult& brute, g::Vertex child,
                        g::Weight w) {
  const g::Weight mc = brute.tree_mc[child];
  return mc == g::kPosInfW ? g::kPosInfW : mc - w;
}

/// Does non-tree edge `e` cover the tree edge {child, p(child)}?
bool covers(const seq::SeqTreeIndex& idx, const g::WEdge& e, g::Vertex child) {
  if (e.u == e.v) return false;
  const g::Vertex a = idx.lca(e.u, e.v);
  return idx.depth(child) > idx.depth(a) &&
         (idx.is_ancestor(child, e.u) || idx.is_ancestor(child, e.v));
}

class ServiceShapes
    : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {};

TEST_P(ServiceShapes, IndexMatchesBruteForce) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 40, 61);
  const auto inst = g::make_mst_instance(tree, 3 * tree.n, 63, 6);
  ASSERT_TRUE(seq::verify_mst(inst));
  const auto index = build_index(inst);
  EXPECT_TRUE(index->is_mst());
  const auto brute = seq::sensitivity_brute(inst);
  const seq::SeqTreeIndex seq_idx(inst.tree);

  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<g::Vertex>(v) == inst.tree.root) continue;
    const auto& t = index->tree_edge(static_cast<g::Vertex>(v));
    EXPECT_EQ(t.mc, brute.tree_mc[v]) << "child " << v;
    EXPECT_EQ(t.parent, inst.tree.parent[v]);
    if (t.mc == g::kPosInfW) {
      EXPECT_EQ(t.replacement, -1) << "child " << v;
      EXPECT_EQ(t.sens, g::kPosInfW);
    } else {
      // The replacement must achieve the mc and actually cover the edge.
      ASSERT_GE(t.replacement, 0) << "child " << v;
      const g::WEdge& r = inst.nontree[t.replacement];
      EXPECT_EQ(r.w, t.mc) << "child " << v;
      EXPECT_TRUE(covers(seq_idx, r, static_cast<g::Vertex>(v)))
          << "child " << v << " replacement " << t.replacement;
    }
  }
  for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
    const auto& e = index->nontree_edge(static_cast<std::int64_t>(i));
    EXPECT_EQ(e.maxpath, brute.nontree_maxpath[i]) << "nontree " << i;
    EXPECT_EQ(e.sens, e.w - e.maxpath);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ServiceShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(127)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& inf) {
      return inf.param.name;
    });

// --- randomized agreement: >= 10k queries over >= 4 generator families, ---
// --- duplicate-weight (tie) and partial-cover regimes included          ---

struct AgreementCase {
  std::string name;
  g::Instance inst;
};

std::vector<AgreementCase> agreement_catalog() {
  std::vector<AgreementCase> out;
  std::uint64_t seed = 101;
  auto add = [&](std::string name, g::RootedTree tree, std::size_t extra,
                 g::Weight wlo, g::Weight whi, g::Weight slack) {
    g::assign_random_tree_weights(tree, wlo, whi, ++seed);
    out.push_back(
        {std::move(name), g::make_mst_instance(std::move(tree), extra,
                                               ++seed, slack)});
  };
  const std::size_t n = 150;
  // Four tree families x three weight/cover regimes:
  //   wide   — generic weights, dense cover;
  //   ties   — duplicate weights everywhere, slack 0 (Definition 1.2 ties);
  //   sparse — n/4 non-tree edges, most tree edges uncovered.
  for (auto& [fam, tree] :
       std::vector<std::pair<std::string, g::RootedTree>>{
           {"recursive", g::random_recursive_tree(n, 77)},
           {"caterpillar", g::caterpillar_tree(n, n / 3, 78)},
           {"kary8", g::kary_tree(n, 8)},
           {"path", g::path_tree(n)}}) {
    add(fam + "_wide", tree, 3 * n, 1, 500, 8);
    add(fam + "_ties", tree, 2 * n, 1, 4, 0);
    add(fam + "_sparse", tree, n / 4, 1, 60, 3);
  }
  return out;
}

TEST(ServiceAgreement, RandomizedQueriesMatchOracles) {
  std::size_t total_queries = 0;
  for (auto& ac : agreement_catalog()) {
    SCOPED_TRACE(ac.name);
    const g::Instance& inst = ac.inst;
    ASSERT_TRUE(seq::verify_mst(inst));
    const auto brute = seq::sensitivity_brute(inst);
    svc::QueryService service(build_index(inst),
                              {.threads = 4, .chunk_size = 64});

    std::mt19937_64 rng(0xabcd ^ inst.n() ^ inst.nontree.size());
    std::uniform_int_distribution<int> kind(0, 3);
    std::uniform_int_distribution<std::size_t> tree_pick(0, inst.n() - 1);
    std::uniform_int_distribution<std::size_t> nontree_pick(
        0, inst.nontree.size() - 1);
    std::uniform_int_distribution<g::Weight> delta(-30, 30);

    // Replicate the endpoint resolution rule (tree wins, then the lightest
    // duplicate): random non-tree pairs may collide with tree edges or each
    // other, and the expectation must follow the resolved edge.
    auto ekey = [](g::Vertex u, g::Vertex v) {
      if (u > v) std::swap(u, v);
      return (std::uint64_t(u) << 32) | std::uint64_t(v);
    };
    std::unordered_map<std::uint64_t, svc::EdgeRef> resolve;
    for (std::size_t v = 0; v < inst.n(); ++v)
      if (static_cast<g::Vertex>(v) != inst.tree.root)
        resolve[ekey(static_cast<g::Vertex>(v), inst.tree.parent[v])] =
            svc::EdgeRef{true, static_cast<std::int64_t>(v)};
    for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
      const g::WEdge& ne = inst.nontree[i];
      auto [it, inserted] = resolve.try_emplace(
          ekey(ne.u, ne.v), svc::EdgeRef{false, static_cast<std::int64_t>(i)});
      if (!inserted && !it->second.is_tree &&
          ne.w < inst.nontree[it->second.id].w)
        it->second.id = static_cast<std::int64_t>(i);
    }
    auto expected_for = [&](g::Vertex u, g::Vertex v) {
      svc::Answer e;
      e.edge = resolve.at(ekey(u, v));
      if (e.edge.is_tree) {
        e.headroom = tree_headroom(brute, e.edge.id,
                                   inst.tree.weight[e.edge.id]);
        e.swap_cost = brute.tree_mc[e.edge.id];
      } else {
        e.headroom =
            inst.nontree[e.edge.id].w - brute.nontree_maxpath[e.edge.id];
        e.swap_cost = brute.nontree_maxpath[e.edge.id];
      }
      return e;
    };

    std::vector<svc::Query> queries;
    std::vector<svc::Answer> expected;
    const std::size_t rounds = 1000;  // 12 instances x 1000 >= 10k total
    for (std::size_t r = 0; r < rounds; ++r) {
      auto fill_optimal = [&](svc::Answer& e, g::Weight d) {
        if (e.edge.is_tree)
          e.still_optimal =
              inst.tree.weight[e.edge.id] + d <= brute.tree_mc[e.edge.id];
        else
          e.still_optimal = inst.nontree[e.edge.id].w + d >=
                            brute.nontree_maxpath[e.edge.id];
      };
      switch (kind(rng)) {
        case 0: {  // tree-edge price change
          g::Vertex c = static_cast<g::Vertex>(tree_pick(rng));
          if (c == inst.tree.root) c = (c + 1) % inst.n();
          const g::Weight d = delta(rng);
          queries.push_back(
              svc::Query::price_change(c, inst.tree.parent[c], d));
          svc::Answer e = expected_for(c, inst.tree.parent[c]);
          fill_optimal(e, d);
          expected.push_back(std::move(e));
          break;
        }
        case 1: {  // non-tree price change (may resolve to a parallel edge)
          const g::WEdge& ne = inst.nontree[nontree_pick(rng)];
          const g::Weight d = delta(rng);
          queries.push_back(svc::Query::price_change(ne.u, ne.v, d));
          svc::Answer e = expected_for(ne.u, ne.v);
          fill_optimal(e, d);
          expected.push_back(std::move(e));
          break;
        }
        case 2: {  // corridor headroom, tree side
          g::Vertex c = static_cast<g::Vertex>(tree_pick(rng));
          if (c == inst.tree.root) c = (c + 1) % inst.n();
          queries.push_back(
              svc::Query::corridor_headroom(inst.tree.parent[c], c));
          expected.push_back(expected_for(c, inst.tree.parent[c]));
          break;
        }
        default: {  // replacement edge
          g::Vertex c = static_cast<g::Vertex>(tree_pick(rng));
          if (c == inst.tree.root) c = (c + 1) % inst.n();
          queries.push_back(
              svc::Query::replacement_edge(c, inst.tree.parent[c]));
          expected.push_back(expected_for(c, inst.tree.parent[c]));
          break;
        }
      }
    }
    const std::vector<svc::Answer> answers = service.answer_batch(queries);
    ASSERT_EQ(answers.size(), expected.size());
    for (std::size_t i = 0; i < answers.size(); ++i) {
      const svc::Answer& a = answers[i];
      const svc::Answer& e = expected[i];
      ASSERT_EQ(a.status, svc::Status::kOk) << to_string(queries[i]);
      EXPECT_EQ(a.edge, e.edge) << to_string(queries[i]);
      EXPECT_EQ(a.headroom, e.headroom) << to_string(queries[i]);
      EXPECT_EQ(a.swap_cost, e.swap_cost) << to_string(queries[i]);
      if (queries[i].kind == svc::QueryKind::kPriceChange) {
        EXPECT_EQ(a.still_optimal, e.still_optimal) << to_string(queries[i]);
      }
      if (a.edge.is_tree && a.replacement >= 0) {
        EXPECT_EQ(inst.nontree[a.replacement].w, a.swap_cost);
      }
    }
    total_queries += queries.size();

    // End-to-end spot checks: apply the priced change to a copy of the
    // instance and re-verify with the independent sequential oracle.
    std::size_t checked = 0;
    for (std::size_t i = 0; i < queries.size() && checked < 8; ++i) {
      const svc::Query& q = queries[i];
      if (q.kind != svc::QueryKind::kPriceChange) continue;
      g::Instance mutated = inst;
      if (answers[i].edge.is_tree)
        mutated.tree.weight[answers[i].edge.id] += q.delta;
      else
        mutated.nontree[answers[i].edge.id].w += q.delta;
      EXPECT_EQ(seq::verify_mst(mutated), answers[i].still_optimal)
          << ac.name << " " << to_string(q);
      ++checked;
    }
  }
  EXPECT_GE(total_queries, 10000u);
}

TEST(Service, TopKFragileMatchesBruteOrder) {
  auto tree = g::random_recursive_tree(200, 91);
  g::assign_random_tree_weights(tree, 1, 25, 93);
  const auto inst = g::make_mst_instance(tree, 150, 95, 4);  // partial cover
  const auto brute = seq::sensitivity_brute(inst);
  svc::QueryService service(build_index(inst), {.threads = 2});

  std::vector<g::Vertex> order;
  for (std::size_t v = 0; v < inst.n(); ++v)
    if (static_cast<g::Vertex>(v) != inst.tree.root)
      order.push_back(static_cast<g::Vertex>(v));
  std::sort(order.begin(), order.end(), [&](g::Vertex a, g::Vertex b) {
    const g::Weight sa = tree_headroom(brute, a, inst.tree.weight[a]);
    const g::Weight sb = tree_headroom(brute, b, inst.tree.weight[b]);
    return sa != sb ? sa < sb : a < b;
  });
  for (std::int64_t k : {0, 1, 7, 50, 1000}) {
    const svc::Answer a = service.top_k_fragile(k);
    ASSERT_EQ(a.status, svc::Status::kOk);
    ASSERT_EQ(a.fragile.size(),
              std::min<std::size_t>(static_cast<std::size_t>(k),
                                    order.size()));
    for (std::size_t i = 0; i < a.fragile.size(); ++i) {
      EXPECT_EQ(a.fragile[i].child, order[i]) << "k=" << k << " i=" << i;
      EXPECT_EQ(a.fragile[i].sens,
                tree_headroom(brute, order[i], inst.tree.weight[order[i]]));
    }
  }
}

TEST(Service, TieKeepsTreeOptimalEndToEnd) {
  // Raise a covered tree edge exactly to its mc: Definition 1.2 says the
  // tie keeps T optimal; one unit more flips it.
  auto tree = g::random_recursive_tree(80, 11);
  g::assign_random_tree_weights(tree, 5, 20, 13);
  const auto inst = g::make_mst_instance(tree, 200, 15, 5);
  svc::QueryService service(build_index(inst), {.threads = 1});
  std::size_t checked = 0;
  for (std::size_t v = 0; v < inst.n() && checked < 5; ++v) {
    const auto c = static_cast<g::Vertex>(v);
    if (c == inst.tree.root) continue;
    const auto& t = service.index().tree_edge(c);
    if (t.mc == g::kPosInfW) continue;
    const auto at_tie = service.price_change(c, t.parent, t.sens);
    EXPECT_TRUE(at_tie.still_optimal);
    const auto past_tie = service.price_change(c, t.parent, t.sens + 1);
    EXPECT_FALSE(past_tie.still_optimal);
    g::Instance mutated = inst;
    mutated.tree.weight[v] += t.sens;
    EXPECT_TRUE(seq::verify_mst(mutated));
    mutated.tree.weight[v] += 1;
    EXPECT_FALSE(seq::verify_mst(mutated));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Service, UncoveredInstanceIsInfinitelyRobust) {
  // No non-tree edges at all: every tree edge is a bridge.
  g::Instance inst;
  inst.tree = g::path_tree(32);
  for (std::size_t v = 1; v < 32; ++v) inst.tree.weight[v] = 3;
  svc::QueryService service(build_index(inst), {.threads = 1});
  EXPECT_TRUE(service.index().is_mst());
  const auto a = service.price_change(4, 5, 1000000);
  EXPECT_EQ(a.status, svc::Status::kOk);
  EXPECT_TRUE(a.still_optimal);
  EXPECT_EQ(a.headroom, g::kPosInfW);
  EXPECT_EQ(a.replacement, -1);
  // Even a delta clamped to the sentinel band cannot price out a bridge.
  EXPECT_TRUE(service.price_change(4, 5, g::kPosInfW).still_optimal);
  EXPECT_TRUE(
      service.price_change(4, 5, std::numeric_limits<g::Weight>::max())
          .still_optimal);
  const auto top = service.top_k_fragile(5);
  ASSERT_EQ(top.fragile.size(), 5u);
  for (const auto& f : top.fragile) EXPECT_EQ(f.sens, g::kPosInfW);
}

TEST(Service, UnknownAndNotApplicableEdges) {
  auto tree = g::kary_tree(60, 3);
  g::assign_random_tree_weights(tree, 1, 9, 17);
  const auto inst = g::make_mst_instance(tree, 100, 19, 2);
  svc::QueryService service(build_index(inst), {.threads = 1});
  EXPECT_EQ(service.corridor_headroom(-1, 3).status,
            svc::Status::kUnknownEdge);
  EXPECT_EQ(service.corridor_headroom(2, 2).status, svc::Status::kUnknownEdge);
  // Some pair that is neither a tree nor a non-tree edge.
  bool found = false;
  for (g::Vertex u = 0; u < 60 && !found; ++u)
    for (g::Vertex v = u + 1; v < 60 && !found; ++v)
      if (!service.index().find(u, v)) {
        EXPECT_EQ(service.replacement_edge(u, v).status,
                  svc::Status::kUnknownEdge);
        found = true;
      }
  EXPECT_TRUE(found);
  // replacement_edge of a non-tree edge answers kNotApplicable.
  const g::WEdge& ne = inst.nontree.front();
  const auto ref = service.index().find(ne.u, ne.v);
  ASSERT_TRUE(ref.has_value());
  if (!ref->is_tree) {
    EXPECT_EQ(service.replacement_edge(ne.u, ne.v).status,
              svc::Status::kNotApplicable);
  }
}

TEST(Service, EndpointResolutionPrefersTreeThenLightest) {
  // Parallel edges: {1,2} duplicated as a non-tree edge, plus a non-tree
  // pair {0,3} duplicated at different weights (and flipped order).
  g::Instance inst;
  inst.tree = g::path_tree(5);
  for (std::size_t v = 1; v < 5; ++v) inst.tree.weight[v] = 2;
  inst.nontree = {{1, 2, 7}, {0, 3, 9}, {3, 0, 6}, {0, 3, 8}};
  const auto index = build_index(inst);
  const auto tree_ref = index->find(2, 1);
  ASSERT_TRUE(tree_ref.has_value());
  EXPECT_TRUE(tree_ref->is_tree);
  EXPECT_EQ(tree_ref->id, 2);
  const auto light = index->find(0, 3);
  ASSERT_TRUE(light.has_value());
  EXPECT_FALSE(light->is_tree);
  EXPECT_EQ(light->id, 2);  // the w=6 duplicate wins
}

TEST(Service, CacheHitsRepeatAnswersExactly) {
  auto tree = g::caterpillar_tree(120, 40, 21);
  g::assign_random_tree_weights(tree, 1, 30, 23);
  const auto inst = g::make_mst_instance(tree, 300, 25, 5);
  svc::QueryService service(build_index(inst),
                            {.threads = 2, .cache_capacity = 1024});
  const auto first = service.corridor_headroom(inst.nontree[0].u,
                                               inst.nontree[0].v);
  const auto second = service.corridor_headroom(inst.nontree[0].u,
                                                inst.nontree[0].v);
  EXPECT_EQ(first, second);
  // Order-insensitive canonicalization: the flipped query hits too.
  const auto flipped = service.corridor_headroom(inst.nontree[0].v,
                                                 inst.nontree[0].u);
  EXPECT_EQ(first, flipped);
  const auto stats = service.stats();
  EXPECT_EQ(stats.queries_served, 3u);
  EXPECT_GE(stats.cache.hits, 2u);

  // A cache-disabled service answers identically.
  svc::QueryService uncached(build_index(inst),
                             {.threads = 1, .cache_capacity = 0});
  EXPECT_EQ(uncached.corridor_headroom(inst.nontree[0].u, inst.nontree[0].v),
            first);
  EXPECT_EQ(uncached.stats().cache.hits, 0u);
}

TEST(Service, LruEvictsAtCapacity) {
  svc::ShardedLruCache<int, int> cache(4, 2);
  for (int i = 0; i < 16; ++i) cache.put(i, 10 * i);
  const auto stats = cache.stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_GE(stats.evictions, 12u);
  // Recency: a touched key survives an insertion into its shard.
  svc::ShardedLruCache<int, int> one(2, 1);
  one.put(1, 11);
  one.put(2, 22);
  ASSERT_TRUE(one.get(1).has_value());  // 1 becomes most-recent
  one.put(3, 33);                       // evicts 2
  EXPECT_TRUE(one.get(1).has_value());
  EXPECT_FALSE(one.get(2).has_value());
  EXPECT_TRUE(one.get(3).has_value());
}

TEST(Service, ConcurrentBatchMatchesSequential) {
  auto tree = g::random_recursive_tree(300, 27);
  g::assign_random_tree_weights(tree, 1, 50, 29);
  const auto inst = g::make_mst_instance(tree, 900, 31, 7);
  const auto index = build_index(inst);
  svc::QueryService parallel(index, {.threads = 8, .chunk_size = 32});
  svc::QueryService sequential(index, {.threads = 1, .cache_capacity = 0});

  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<std::size_t> pick(1, inst.n() - 1);
  std::uniform_int_distribution<g::Weight> delta(-20, 20);
  std::vector<svc::Query> queries;
  queries.reserve(8000);
  for (std::size_t i = 0; i < 8000; ++i) {
    const auto c = static_cast<g::Vertex>(pick(rng));
    if (c == inst.tree.root) {
      queries.push_back(svc::Query::top_k_fragile(5));
    } else if (i % 3 == 0) {
      queries.push_back(
          svc::Query::price_change(c, inst.tree.parent[c], delta(rng)));
    } else if (i % 3 == 1) {
      queries.push_back(svc::Query::replacement_edge(inst.tree.parent[c], c));
    } else {
      queries.push_back(svc::Query::corridor_headroom(c, inst.tree.parent[c]));
    }
  }
  const auto par = parallel.answer_batch(queries);
  ASSERT_EQ(par.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i)
    ASSERT_EQ(par[i], sequential.answer(queries[i])) << i;
  // Re-serving the same batch is almost entirely cache hits.
  (void)parallel.answer_batch(queries);
  const auto stats = parallel.stats();
  EXPECT_EQ(stats.queries_served, 2 * queries.size());
  EXPECT_GE(stats.cache.hits, queries.size());
}

TEST(Service, FingerprintAndReceipt) {
  auto tree = g::kary_tree(90, 4);
  g::assign_random_tree_weights(tree, 1, 12, 33);
  const auto inst = g::make_mst_instance(tree, 180, 35, 3);
  const auto index = build_index(inst);
  EXPECT_EQ(index->fingerprint(),
            svc::SensitivityIndex::fingerprint_of(inst));
  auto changed = inst;
  changed.nontree[0].w += 1;
  EXPECT_NE(index->fingerprint(),
            svc::SensitivityIndex::fingerprint_of(changed));
  const auto& receipt = index->receipt();
  EXPECT_GT(receipt.build_rounds, 0u);
  EXPECT_EQ(receipt.input_words, inst.input_words());
  EXPECT_GT(receipt.peak_global_words, 0u);
}

TEST(Service, NonMstInputIsFlagged) {
  auto tree = g::random_recursive_tree(100, 37);
  g::assign_random_tree_weights(tree, 5, 30, 39);
  auto inst = g::make_mst_instance(tree, 250, 41, 6);
  ASSERT_GT(g::inject_violations(inst, 3, 43), 0u);
  ASSERT_FALSE(seq::verify_mst(inst));
  const auto index = build_index(inst);
  EXPECT_FALSE(index->is_mst());
  EXPECT_GT(index->violations(), 0u);
}

}  // namespace
