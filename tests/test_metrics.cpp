// Unit tests for the telemetry layer (src/common/metrics.hpp,
// src/service/telemetry.hpp): the log-bucket and percentile math of
// HistogramSnapshot (boundaries, empty, single sample, shard merge),
// exactness of the striped counters/histograms under thread fan-out,
// registry identity and type-conflict rules, a line-format validator for
// the Prometheus rendering, and the acceptance sweep — one mixed workload
// (batched queries, updates across the classification lattice, checkpoint,
// recover) after which every instrumented series must have moved.
//
// The pure-math suites run in both build modes; everything that reads the
// registry GTEST_SKIPs under -DMPCMST_NO_METRICS (the stubs legitimately
// report nothing).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "service/telemetry.hpp"
#include "test_util.hpp"

namespace fs = std::filesystem;
namespace g = mpcmst::graph;
namespace svc = mpcmst::service;
using mpcmst::HistogramSnapshot;
using mpcmst::MetricsRegistry;
using mpcmst::MetricsSnapshot;

namespace {

/// One manually filled snapshot (so the math tests run identically in both
/// build modes — no live Histogram required).
HistogramSnapshot make_snapshot(const std::vector<std::uint64_t>& values) {
  HistogramSnapshot s;
  for (const std::uint64_t v : values) {
    ++s.buckets[HistogramSnapshot::bucket_of(v)];
    ++s.count;
    s.sum += v;
    s.max = std::max(s.max, v);
  }
  return s;
}

}  // namespace

// --- bucket math -----------------------------------------------------------

TEST(HistogramMath, BucketBoundariesSitAtPowersOfTwo) {
  EXPECT_EQ(HistogramSnapshot::bucket_of(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(2), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(3), 2u);
  EXPECT_EQ(HistogramSnapshot::bucket_of(4), 3u);
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t lo = std::uint64_t{1} << (k - 1);
    const std::uint64_t hi = (std::uint64_t{1} << k) - 1;
    EXPECT_EQ(HistogramSnapshot::bucket_of(lo), k) << "k=" << k;
    EXPECT_EQ(HistogramSnapshot::bucket_of(hi), k) << "k=" << k;
  }
  EXPECT_EQ(HistogramSnapshot::bucket_of(~std::uint64_t{0}), 64u);

  EXPECT_EQ(HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(63),
            (std::uint64_t{1} << 63) - 1);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(64), ~std::uint64_t{0});
  // Every value lands in the bucket whose range contains it.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 7ull, 8ull, 1000ull}) {
    const std::size_t b = HistogramSnapshot::bucket_of(v);
    EXPECT_LE(v, HistogramSnapshot::bucket_upper(b));
    if (b > 0) {
      EXPECT_GT(v, HistogramSnapshot::bucket_upper(b - 1));
    }
  }
}

TEST(HistogramMath, EmptyReportsZero) {
  const HistogramSnapshot s;
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.percentile(0.5), 0u);
  EXPECT_EQ(s.percentile(1.0), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramMath, SingleSampleReportsItselfExactly) {
  const auto s = make_snapshot({5});
  // Bucket 3's upper bound is 7, but the recorded max clamps it to 5.
  EXPECT_EQ(s.percentile(0.0), 5u);
  EXPECT_EQ(s.percentile(0.5), 5u);
  EXPECT_EQ(s.percentile(1.0), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(HistogramMath, PercentilesWalkCumulativeBuckets) {
  const auto s = make_snapshot({4, 8});
  // rank ceil(0.5 * 2) = 1 -> bucket of 4 (upper bound 7).
  EXPECT_EQ(s.percentile(0.5), 7u);
  // rank 2 -> bucket of 8 (upper 15), clamped to the recorded max.
  EXPECT_EQ(s.percentile(1.0), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 6.0);

  // 100 zeros and one large value: p50 is exactly 0, p100 the max.
  std::vector<std::uint64_t> values(100, 0);
  values.push_back(1 << 20);
  const auto t = make_snapshot(values);
  EXPECT_EQ(t.percentile(0.5), 0u);
  EXPECT_EQ(t.percentile(1.0), std::uint64_t{1} << 20);
}

TEST(HistogramMath, MergeAddsCountsAndKeepsMax) {
  auto a = make_snapshot({1, 2, 3});
  const auto b = make_snapshot({100, 200});
  a.merge(b);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.sum, 306u);
  EXPECT_EQ(a.max, 200u);
  EXPECT_EQ(a.percentile(1.0), 200u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : a.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, a.count);
}

// --- live registry (full build only) ---------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableIdentity) {
  if constexpr (mpcmst::kMetricsCompiledOut)
    GTEST_SKIP() << "MPCMST_NO_METRICS";
  auto& reg = MetricsRegistry::instance();
  auto& a = reg.counter("test_identity_total", "x=\"1\"");
  auto& b = reg.counter("test_identity_total", "x=\"1\"");
  auto& c = reg.counter("test_identity_total", "x=\"2\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  // One (name, labels) pair cannot be two types.
  EXPECT_THROW(reg.gauge("test_identity_total", "x=\"1\""),
               mpcmst::InvariantError);
}

TEST(MetricsRegistry, CounterExactUnderThreadFanOut) {
  if constexpr (mpcmst::kMetricsCompiledOut)
    GTEST_SKIP() << "MPCMST_NO_METRICS";
  mpcmst::metrics_set_enabled(true);
  auto& ctr = MetricsRegistry::instance().counter("test_fanout_total");
  const std::uint64_t before = ctr.total();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&ctr] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) ctr.inc();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(ctr.total() - before, kThreads * kPerThread);
}

TEST(MetricsRegistry, HistogramExactAcrossStripeMerge) {
  if constexpr (mpcmst::kMetricsCompiledOut)
    GTEST_SKIP() << "MPCMST_NO_METRICS";
  mpcmst::metrics_set_enabled(true);
  auto& h = MetricsRegistry::instance().histogram("test_stripe_merge_ns");
  const auto before = h.snapshot();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h, t] {
      // Distinct value per thread, so the merged sum pins each stripe's
      // contribution: sum = Sum_t (t+1) * kPerThread.
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t) + 1);
    });
  for (auto& w : workers) w.join();
  const auto after = h.snapshot();
  EXPECT_EQ(after.count - before.count, kThreads * kPerThread);
  std::uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    want_sum += (static_cast<std::uint64_t>(t) + 1) * kPerThread;
  EXPECT_EQ(after.sum - before.sum, want_sum);
  EXPECT_GE(after.max, static_cast<std::uint64_t>(kThreads));
}

TEST(MetricsRegistry, RuntimeDisableStopsMutations) {
  if constexpr (mpcmst::kMetricsCompiledOut)
    GTEST_SKIP() << "MPCMST_NO_METRICS";
  auto& ctr = MetricsRegistry::instance().counter("test_disable_total");
  mpcmst::metrics_set_enabled(false);
  const std::uint64_t before = ctr.total();
  ctr.inc(100);
  EXPECT_EQ(ctr.total(), before);
  mpcmst::metrics_set_enabled(true);
  ctr.inc(3);
  EXPECT_EQ(ctr.total(), before + 3);
}

// --- Prometheus text exposition validator ----------------------------------

namespace {

/// Minimal validator for the Prometheus text format: every line is a
/// comment or a sample, every sample's family has a preceding # TYPE,
/// histogram buckets are cumulative with a trailing +Inf that equals
/// _count.
void validate_prometheus(const std::string& text) {
  static const std::regex type_re(
      R"(^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$)");
  static const std::regex sample_re(
      R"(^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? )"
      R"(([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$)");
  std::map<std::string, std::string> family_type;  // name -> type
  // (family, labels-minus-le) -> [(le, value)] in order of appearance.
  std::map<std::string, std::vector<std::pair<std::string, double>>> buckets;
  std::map<std::string, double> counts;  // same grouping, _count value

  std::istringstream in(text);
  std::string line;
  std::smatch m;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (std::regex_match(line, m, type_re)) family_type[m[1]] = m[2];
      continue;  // other comments are legal
    }
    ASSERT_TRUE(std::regex_match(line, m, sample_re)) << "bad line: " << line;
    std::string name = m[1];
    const std::string labels = m[2];
    const double value = std::stod(m[3]);
    // Histogram series sample under the family name + a suffix.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0 &&
          family_type.count(name.substr(0, name.size() - s.size())))
        family = name.substr(0, name.size() - s.size());
    }
    ASSERT_TRUE(family_type.count(family))
        << "sample before its # TYPE: " << line;
    ASSERT_GE(value, 0.0) << "negative sample in " << line;

    if (family_type[family] == "histogram") {
      // Group key: labels with the le="..." pair (and its separating
      // comma) removed; a now-empty {} collapses to no labels at all, so
      // _bucket lines group with their label-less _sum/_count.
      static const std::regex le_re(R"re(,?le="([^"]*)")re");
      std::string le;
      if (std::regex_search(labels, m, le_re)) le = m[1];
      std::string rest = std::regex_replace(labels, le_re, "");
      rest = std::regex_replace(rest, std::regex(R"(\{,)"), "{");
      if (rest == "{}") rest.clear();
      const std::string group = family + "|" + rest;
      if (name == family + "_bucket")
        buckets[group].emplace_back(le, value);
      else if (name == family + "_count")
        counts[group] = value;
    }
  }
  ASSERT_FALSE(family_type.empty()) << "no # TYPE lines at all";
  for (const auto& [group, series] : buckets) {
    ASSERT_FALSE(series.empty());
    for (std::size_t i = 1; i < series.size(); ++i)
      EXPECT_GE(series[i].second, series[i - 1].second)
          << "non-cumulative buckets in " << group;
    EXPECT_EQ(series.back().first, "+Inf")
        << "last bucket of " << group << " is not +Inf";
    ASSERT_TRUE(counts.count(group)) << "no _count for " << group;
    EXPECT_EQ(series.back().second, counts[group])
        << "+Inf bucket != _count in " << group;
  }
}

}  // namespace

TEST(Prometheus, RenderedRegistryParses) {
  if constexpr (mpcmst::kMetricsCompiledOut)
    GTEST_SKIP() << "MPCMST_NO_METRICS";
  mpcmst::metrics_set_enabled(true);
  auto& reg = MetricsRegistry::instance();
  reg.counter("test_prom_total", "kind=\"a\"").inc(3);
  reg.counter("test_prom_total", "kind=\"b\"").inc(1);
  reg.gauge("test_prom_depth").set(7);
  auto& h = reg.histogram("test_prom_latency_seconds");
  for (const std::uint64_t v : {0ull, 1ull, 900ull, 1500ull, 1048576ull})
    h.record(v);
  reg.histogram("test_prom_sizes", "op=\"batch\"", mpcmst::MetricUnit::kCount)
      .record(42);

  std::ostringstream os;
  reg.render_prometheus(os);
  validate_prometheus(os.str());
}

// --- acceptance: one mixed workload moves every instrumented series --------

namespace {

std::uint64_t hist_count_delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after,
                               const std::string& key) {
  return after.histogram_or(key).count - before.histogram_or(key).count;
}

std::uint64_t counter_delta(const MetricsSnapshot& before,
                            const MetricsSnapshot& after,
                            const std::string& key) {
  return after.counter_or(key) - before.counter_or(key);
}

}  // namespace

TEST(Telemetry, MixedWorkloadMovesEverySeries) {
  if constexpr (mpcmst::kMetricsCompiledOut)
    GTEST_SKIP() << "MPCMST_NO_METRICS";
  mpcmst::metrics_set_enabled(true);
  auto& reg = MetricsRegistry::instance();
  const MetricsSnapshot before = reg.snapshot();

  mpcmst::test::ScratchDir dir(
      (fs::path(::testing::TempDir()) / "mpcmst_metrics_workload").string());
  auto tree = g::random_recursive_tree(40, 91);
  g::assign_random_tree_weights(tree, 10, 60, 93);
  const auto inst = g::make_mst_instance(std::move(tree), 80, 95, /*slack=*/8);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());

  svc::PersistenceConfig persist;
  persist.dir = dir.str();
  persist.sync_mode = svc::SyncMode::kCommit;  // every commit fsyncs
  // A 4-entry cache over ~250 distinct probes: evictions are certain.
  svc::ServiceOptions opts;
  opts.threads = 2;
  opts.cache_capacity = 4;
  opts.cache_shards = 2;
  auto service = svc::QueryService::build_live(eng, inst, opts, persist);

  // Batched queries across all four kinds (cold), then again (some hits
  // survive even in a 4-entry cache: the probe tail stays resident).
  const auto probes = mpcmst::test::probe_queries(inst);
  service->answer_batch(probes);
  service->answer_batch({probes.end() - 4, probes.end()});
  service->top_k_fragile(3);  // single-query path too

  // One update of every class, probed through the live backend so each
  // weight is chosen to force its classification.
  std::map<svc::UpdateClass, int> applied;
  auto apply_expecting = [&](g::Vertex u, g::Vertex v, g::Weight w,
                             svc::UpdateClass want) {
    const auto receipt = service->apply_update(u, v, w);
    ASSERT_EQ(receipt.report.status, svc::Status::kOk);
    EXPECT_EQ(receipt.report.cls, want)
        << "{" << u << "," << v << "} @ " << w;
    ++applied[receipt.report.cls];
  };
  {
    // Current live state (updates below change it, so snapshot once per
    // class and re-probe).
    auto live = [&] { return service->updatable_backend()->instance_snapshot(); };
    // no_change: re-apply a tree edge's current weight.
    const auto s0 = live();
    g::Vertex c0 = s0.tree.root == 0 ? 1 : 0;
    apply_expecting(c0, s0.tree.parent[static_cast<std::size_t>(c0)],
                    s0.tree.weight[static_cast<std::size_t>(c0)],
                    svc::UpdateClass::kNoChange);
    // tree_reweight / tree_swap: first tree edge with finite headroom.
    for (const svc::UpdateClass want :
         {svc::UpdateClass::kTreeReweight, svc::UpdateClass::kTreeSwap}) {
      const auto s = live();
      bool done = false;
      for (std::size_t v = 0; v < s.n() && !done; ++v) {
        if (static_cast<g::Vertex>(v) == s.tree.root) continue;
        const auto c = static_cast<g::Vertex>(v);
        const auto a = service->corridor_headroom(c, s.tree.parent[v]);
        if (a.status != svc::Status::kOk || a.headroom >= g::kPosInfW ||
            a.headroom <= 0)
          continue;
        const g::Weight w = s.tree.weight[v];
        const g::Weight new_w = want == svc::UpdateClass::kTreeReweight
                                    ? w + a.headroom      // tie keeps T
                                    : w + a.headroom + 1;  // forced swap
        apply_expecting(c, s.tree.parent[v], new_w, want);
        done = true;
      }
      ASSERT_TRUE(done) << "no tree edge with finite headroom";
    }
    // nontree_reweight: raising a non-tree edge never moves it.
    // nontree_swap: drop one below its covering path maximum.
    for (const svc::UpdateClass want : {svc::UpdateClass::kNonTreeReweight,
                                        svc::UpdateClass::kNonTreeSwap}) {
      const auto s = live();
      bool done = false;
      for (const g::WEdge& e : s.nontree) {
        const auto a = service->corridor_headroom(e.u, e.v);
        if (a.status != svc::Status::kOk) continue;
        if (want == svc::UpdateClass::kNonTreeSwap &&
            (a.headroom >= g::kPosInfW || a.headroom <= 0))
          continue;
        const g::Weight new_w = want == svc::UpdateClass::kNonTreeReweight
                                    ? e.w + 5
                                    : e.w - a.headroom - 1;
        apply_expecting(e.u, e.v, new_w, want);
        done = true;
        break;
      }
      ASSERT_TRUE(done) << "no usable non-tree edge";
    }
  }
  ASSERT_EQ(applied.size(), 5u) << "workload missed an update class";

  // Checkpoint, one more update (a journal tail), then recover in-process.
  service->checkpoint();
  {
    const auto s = service->updatable_backend()->instance_snapshot();
    service->apply_update(s.nontree[0].u, s.nontree[0].v, s.nontree[0].w + 7);
  }
  service.reset();  // release the journal before recovering
  svc::QueryService::RecoveredInfo info;
  service = svc::QueryService::recover(persist, opts, &info);
  EXPECT_GE(info.replayed_records, 1u);

  const MetricsSnapshot after = reg.snapshot();

  // Query latency histograms: all four kinds sampled.
  for (const char* kind : {"price_change", "replacement_edge", "top_k_fragile",
                           "corridor_headroom"}) {
    const std::string labels = std::string("{kind=\"") + kind + "\"}";
    EXPECT_GT(counter_delta(before, after, "mpcmst_queries_total" + labels),
              0u)
        << kind;
    EXPECT_GT(hist_count_delta(before, after,
                               "mpcmst_query_latency_seconds" + labels),
              0u)
        << kind;
  }
  EXPECT_GT(counter_delta(before, after, "mpcmst_query_batches_total"), 0u);
  EXPECT_GT(
      hist_count_delta(before, after, "mpcmst_query_batch_latency_seconds"),
      0u);

  // Cache traffic, including evictions (4-entry cache, ~250 probes).
  EXPECT_GT(counter_delta(before, after, "mpcmst_cache_hits_total"), 0u);
  EXPECT_GT(counter_delta(before, after, "mpcmst_cache_misses_total"), 0u);
  EXPECT_GT(counter_delta(before, after, "mpcmst_cache_evictions_total"), 0u);

  // Every update classification counted and timed.
  for (const char* cls : {"no_change", "tree_reweight", "tree_swap",
                          "nontree_reweight", "nontree_swap"}) {
    const std::string labels = std::string("{class=\"") + cls + "\"}";
    EXPECT_GT(counter_delta(before, after, "mpcmst_updates_total" + labels),
              0u)
        << cls;
    EXPECT_GT(hist_count_delta(before, after,
                               "mpcmst_update_latency_seconds" + labels),
              0u)
        << cls;
  }

  // Persistence: journaled appends, commit fsyncs, snapshot write + load,
  // the checkpoint counter, and all three recovery phases.
  EXPECT_GT(hist_count_delta(before, after, "mpcmst_journal_append_seconds"),
            0u);
  EXPECT_GT(hist_count_delta(before, after, "mpcmst_journal_fsync_seconds"),
            0u);
  EXPECT_GT(hist_count_delta(before, after, "mpcmst_snapshot_write_seconds"),
            0u);
  EXPECT_GT(hist_count_delta(before, after, "mpcmst_snapshot_load_seconds"),
            0u);
  EXPECT_GT(counter_delta(before, after, "mpcmst_checkpoints_total"), 0u);
  EXPECT_GT(counter_delta(before, after, "mpcmst_recoveries_total"), 0u);
  for (const char* phase : {"snapshot_load", "tail_scan", "replay"}) {
    const std::string key = std::string("mpcmst_recovery_phase_seconds") +
                            "{phase=\"" + phase + "\"}";
    EXPECT_GT(hist_count_delta(before, after, key), 0u) << phase;
  }

  // The service's own stats() surface carries the same slice.
  const auto stats = service->stats();
  EXPECT_GT(stats.telemetry.recoveries, 0u);
  EXPECT_GT(stats.telemetry.journal_fsync.count, 0u);
}
