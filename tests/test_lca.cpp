// Tests for all-edges LCA (Algorithms 1-3) and the ancestor-descendant
// transform (Corollary 2.19), validated against the sequential lifting LCA.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "lca/all_edges_lca.hpp"
#include "mpc/ops.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace mpc = mpcmst::mpc;
namespace to = mpcmst::treeops;
namespace seq = mpcmst::seq;

namespace {

struct LcaFixture {
  g::RootedTree tree;
  mpc::Engine eng;
  mpc::Dist<to::TreeRec> dtree;
  to::DepthResult depths;
  to::IntervalResult labels;
  std::int64_t dhat;

  explicit LcaFixture(g::RootedTree t)
      : tree(std::move(t)),
        eng(mpcmst::test::make_engine(64 * tree.n)),
        dtree(to::load_tree(eng, tree)),
        depths(to::compute_depths(dtree, tree.root)),
        labels(to::dfs_interval_labels(dtree, tree.root, depths)),
        dhat(2 * std::max<std::int64_t>(depths.height, 1)) {}

  mpc::Dist<mpcmst::lca::IdEdge> load_edges(
      const std::vector<g::WEdge>& edges) {
    std::vector<mpcmst::lca::IdEdge> recs;
    for (std::size_t i = 0; i < edges.size(); ++i)
      recs.push_back({edges[i].u, edges[i].v, edges[i].w,
                      static_cast<std::int64_t>(i)});
    return mpc::scatter(eng, std::move(recs));
  }
};

class LcaShapes : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {};

TEST_P(LcaShapes, MatchesSequentialLca) {
  LcaFixture fx(GetParam().tree);
  const auto inst =
      g::make_random_instance(fx.tree, 4 * fx.tree.n, 77, 1, 100);
  auto edges = fx.load_edges(inst.nontree);
  const auto res = mpcmst::lca::all_edges_lca(fx.dtree, fx.tree.root,
                                              fx.depths, fx.labels.intervals,
                                              edges, fx.dhat);
  const seq::SeqTreeIndex idx(fx.tree);
  ASSERT_EQ(res.edges.size(), inst.nontree.size());
  for (const auto& e : res.edges.local()) {
    EXPECT_EQ(e.lca, idx.lca(e.u, e.v))
        << GetParam().name << " edge " << e.u << "," << e.v;
  }
}

TEST_P(LcaShapes, TransformYieldsAncestorDescendantHalves) {
  LcaFixture fx(GetParam().tree);
  const auto inst = g::make_random_instance(fx.tree, fx.tree.n, 78, 1, 50);
  auto edges = fx.load_edges(inst.nontree);
  const auto res = mpcmst::lca::all_edges_lca(fx.dtree, fx.tree.root,
                                              fx.depths, fx.labels.intervals,
                                              edges, fx.dhat);
  const auto ad = mpcmst::lca::ancestor_descendant_transform(res);
  const seq::SeqTreeIndex idx(fx.tree);
  std::vector<int> halves(inst.nontree.size(), 0);
  for (const auto& h : ad.local()) {
    EXPECT_TRUE(idx.is_ancestor(h.hi, h.lo))
        << "half " << h.lo << ".." << h.hi << " not ancestor-descendant";
    EXPECT_NE(h.lo, h.hi);
    EXPECT_EQ(h.w, inst.nontree[h.orig_id].w);
    halves[h.orig_id] += 1;
  }
  // Each edge contributes 1 or 2 halves (1 when an endpoint is the LCA).
  for (std::size_t i = 0; i < halves.size(); ++i) {
    const auto& e = inst.nontree[i];
    const auto l = idx.lca(e.u, e.v);
    const int expect = (e.u != l) + (e.v != l);
    EXPECT_EQ(halves[i], expect) << "edge " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, LcaShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(149)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& inf) {
      return inf.param.name;
    });

TEST(Lca, AdjacentAndIdenticalEndpoints) {
  LcaFixture fx(g::path_tree(32));
  std::vector<g::WEdge> edges = {
      {5, 5, 1},    // self loop: LCA = itself, no halves
      {7, 8, 1},    // parent-child: LCA = 7 (closer to root on a path)
      {0, 31, 1},   // root to deepest: LCA = root
  };
  auto dedges = fx.load_edges(edges);
  const auto res = mpcmst::lca::all_edges_lca(
      fx.dtree, fx.tree.root, fx.depths, fx.labels.intervals, dedges, fx.dhat);
  EXPECT_EQ(res.edges.local()[0].lca, 5);
  EXPECT_EQ(res.edges.local()[1].lca, 7);
  EXPECT_EQ(res.edges.local()[2].lca, 0);
  const auto ad = mpcmst::lca::ancestor_descendant_transform(res);
  EXPECT_EQ(ad.size(), 0u + 1u + 1u);
}

TEST(Lca, RoundsScaleWithDiameterNotSize) {
  const std::size_t n = 1 << 10;
  auto run = [&](g::RootedTree tree) {
    LcaFixture fx(std::move(tree));
    const auto inst = g::make_random_instance(fx.tree, n, 5, 1, 10);
    auto edges = fx.load_edges(inst.nontree);
    fx.eng.reset_meters();
    (void)mpcmst::lca::all_edges_lca(fx.dtree, fx.tree.root, fx.depths,
                                     fx.labels.intervals, edges, fx.dhat);
    return fx.eng.rounds();
  };
  const auto rounds_shallow = run(g::kary_tree(n, 8));
  const auto rounds_path = run(g::path_tree(n));
  EXPECT_LT(rounds_shallow, rounds_path);
}

}  // namespace
