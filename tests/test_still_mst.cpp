// still_mst batch-verification suite: every answer must equal the
// apply-then-rebuild oracle (apply all k changes to a scratch instance,
// rebuild host-side, compare violation sets) — on the monolith and on shard
// counts {1, 3, 8}, including ties, correlated shocks along one tree path,
// batches mixing tree and non-tree edges, duplicate entries (last write
// wins) and permuted-but-equal change sets (canonicalization).  Negative
// certificates are re-verified against the sequential oracle: each certified
// edge must actually violate the cycle rule on the reweighted instance, by
// seq::SeqTreeIndex path maxima.  500-batch fuzz per backend; the suite runs
// in the ASan/UBSan CI legs like every other test.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "service/router.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/update.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;
namespace svc = mpcmst::service;
namespace verify = mpcmst::verify;

namespace {

/// The apply-then-rebuild oracle: resolve every change against the PRE-batch
/// index (tree edge first, then the lightest duplicate — the service's
/// precedence), write the weights into a scratch instance in batch order
/// (later entries overwrite earlier ones, the service's last-write-wins),
/// rebuild host-side, and read the violation set off the fresh labels.
svc::Answer oracle_still_mst(const g::Instance& base,
                             const svc::SensitivityIndex& pre,
                             const std::vector<svc::PriceChange>& batch) {
  svc::Answer expected;
  g::Instance scratch = base;
  for (const svc::PriceChange& c : batch) {
    const auto ref = pre.find(c.u, c.v);
    if (!ref) {
      expected.status = svc::Status::kUnknownEdge;
      return expected;
    }
    const g::Weight w =
        std::clamp(c.new_w, g::kNegInfW, g::kPosInfW);
    if (ref->is_tree)
      scratch.tree.weight[static_cast<std::size_t>(ref->id)] = w;
    else
      scratch.nontree[static_cast<std::size_t>(ref->id)].w = w;
  }
  const auto rebuilt = svc::SensitivityIndex::build_host(scratch);
  const svc::NonTreeLabels& nt = rebuilt->nontree_labels();
  for (std::size_t i = 0; i < nt.size(); ++i)
    if (nt.w[i] < nt.maxpath[i])
      expected.certificates.push_back(verify::ViolationCert{
          static_cast<std::int64_t>(i), nt.u[i], nt.v[i], nt.w[i],
          nt.maxpath[i]});
  expected.still_optimal = expected.certificates.empty();
  // Independent cross-check: the certificate set is empty iff the reweighted
  // instance passes sequential MSF-weight verification.
  EXPECT_EQ(expected.still_optimal, seq::verify_mst_by_weight(scratch));
  return expected;
}

/// Every certified edge must actually violate the cycle rule on the
/// reweighted instance, checked by an independent sequential path-max oracle.
void check_certificates_violate(const g::Instance& base,
                                const svc::SensitivityIndex& pre,
                                const std::vector<svc::PriceChange>& batch,
                                const svc::Answer& a) {
  g::Instance scratch = base;
  for (const svc::PriceChange& c : batch) {
    const auto ref = pre.find(c.u, c.v);
    ASSERT_TRUE(ref.has_value());
    const g::Weight w = std::clamp(c.new_w, g::kNegInfW, g::kPosInfW);
    if (ref->is_tree)
      scratch.tree.weight[static_cast<std::size_t>(ref->id)] = w;
    else
      scratch.nontree[static_cast<std::size_t>(ref->id)].w = w;
  }
  const seq::SeqTreeIndex seq_index(scratch.tree);
  for (const verify::ViolationCert& c : a.certificates) {
    ASSERT_GE(c.orig_id, 0);
    ASSERT_LT(c.orig_id, static_cast<std::int64_t>(scratch.nontree.size()));
    const g::WEdge& e = scratch.nontree[static_cast<std::size_t>(c.orig_id)];
    EXPECT_EQ(c.u, e.u);
    EXPECT_EQ(c.v, e.v);
    EXPECT_EQ(c.w, e.w) << "cert weight != effective weight";
    const g::Weight path_max = seq_index.max_on_path(e.u, e.v);
    EXPECT_EQ(c.maxpath, path_max) << "cert path max != sequential path max";
    EXPECT_LT(c.w, path_max)
        << "certified edge #" << c.orig_id << " does not violate the cycle "
        << "rule on the reweighted instance";
  }
}

void expect_answers_equal(const svc::Answer& got, const svc::Answer& want,
                          const std::string& what) {
  ASSERT_EQ(got.status, want.status) << what;
  ASSERT_EQ(got.still_optimal, want.still_optimal) << what;
  ASSERT_EQ(got.certificates.size(), want.certificates.size()) << what;
  for (std::size_t i = 0; i < got.certificates.size(); ++i)
    ASSERT_TRUE(got.certificates[i] == want.certificates[i])
        << what << " cert " << i << " orig_id " << got.certificates[i].orig_id;
}

/// Monolith + routers over shard counts {1, 3, 8} built from one snapshot.
struct Backends {
  std::shared_ptr<const svc::SensitivityIndex> index;
  svc::MonolithicBackend mono;
  std::vector<std::unique_ptr<svc::QueryRouter>> routers;

  explicit Backends(const g::Instance& inst)
      : index(svc::SensitivityIndex::build_host(inst)), mono(index) {
    for (const std::size_t shards : {1u, 3u, 8u})
      routers.push_back(std::make_unique<svc::QueryRouter>(
          svc::ShardedSensitivityIndex::split(*index, shards)));
  }

  /// Answer on the monolith, assert every sharded backend agrees
  /// byte-for-byte, and return the (shared) answer.
  svc::Answer answer_everywhere(const svc::Query& q) {
    const svc::Answer a = mono.answer(q);
    for (std::size_t r = 0; r < routers.size(); ++r) {
      const svc::Answer b = routers[r]->answer(q);
      EXPECT_TRUE(a == b) << "router " << r << " diverged from monolith";
    }
    return a;
  }
};

g::Vertex random_vertex(std::mt19937_64& rng, std::size_t n) {
  return static_cast<g::Vertex>(rng() % n);
}

/// A random batch biased toward interesting scenarios: existing tree and
/// non-tree edges, weights near the current ones (ties included), an
/// occasional out-of-band weight.
std::vector<svc::PriceChange> random_batch(const g::Instance& inst,
                                           std::mt19937_64& rng,
                                           std::size_t k) {
  std::vector<svc::PriceChange> batch;
  batch.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    svc::PriceChange c;
    if (rng() % 2 == 0 && inst.n() > 1) {
      g::Vertex child;
      do {
        child = random_vertex(rng, inst.n());
      } while (child == inst.tree.root);
      const bool flip = rng() % 2 == 0;
      c.u = flip ? inst.tree.parent[static_cast<std::size_t>(child)] : child;
      c.v = flip ? child : inst.tree.parent[static_cast<std::size_t>(child)];
      c.new_w = inst.tree.weight[static_cast<std::size_t>(child)] +
                static_cast<g::Weight>(rng() % 21) - 10;
    } else {
      const g::WEdge& e = inst.nontree[rng() % inst.nontree.size()];
      const bool flip = rng() % 2 == 0;
      c.u = flip ? e.v : e.u;
      c.v = flip ? e.u : e.v;
      c.new_w = e.w + static_cast<g::Weight>(rng() % 21) - 10;
    }
    batch.push_back(c);
  }
  return batch;
}

}  // namespace

TEST(StillMst, OracleParityAcrossShapes) {
  for (const auto& shape : mpcmst::test::shape_catalog(40)) {
    auto tree = shape.tree;
    g::assign_random_tree_weights(tree, 1, 50, 1201);
    const auto inst = g::make_mst_instance(std::move(tree), 80, 1203,
                                           /*slack=*/4);
    Backends backends(inst);
    std::mt19937_64 rng(0xbead + inst.n());
    for (const std::size_t k : {1u, 2u, 5u, 16u}) {
      for (int rep = 0; rep < 6; ++rep) {
        const auto batch = random_batch(inst, rng, k);
        const auto a =
            backends.answer_everywhere(svc::Query::still_mst(batch));
        const auto want = oracle_still_mst(inst, *backends.index, batch);
        expect_answers_equal(a, want,
                             shape.name + " k=" + std::to_string(k));
        check_certificates_violate(inst, *backends.index, batch, a);
      }
    }
  }
}

TEST(StillMst, TiesKeepTheTreeOptimal) {
  // Path 0-1-2-3 (weights 10, 20, 30 keyed by child) + non-tree {0,3} at 31.
  g::RootedTree tree;
  tree.n = 4;
  tree.root = 0;
  tree.parent = {0, 0, 1, 2};
  tree.weight = {0, 10, 20, 30};
  g::Instance inst;
  inst.tree = tree;
  inst.nontree = {{0, 3, 31}};
  Backends backends(inst);

  // Exactly at the path maximum: a tie keeps T optimal (Definition 1.2).
  auto tie = backends.answer_everywhere(
      svc::Query::still_mst({svc::PriceChange{3, 0, 30}}));
  EXPECT_TRUE(tie.still_optimal);
  EXPECT_TRUE(tie.certificates.empty());

  // One unit below: the edge certifies the violation.
  auto below = backends.answer_everywhere(
      svc::Query::still_mst({svc::PriceChange{3, 0, 29}}));
  EXPECT_FALSE(below.still_optimal);
  ASSERT_EQ(below.certificates.size(), 1u);
  EXPECT_EQ(below.certificates[0].orig_id, 0);
  EXPECT_EQ(below.certificates[0].w, 29);
  EXPECT_EQ(below.certificates[0].maxpath, 30);

  // Tree side of the same tie: drop the path max to the non-tree weight.
  auto tree_tie = backends.answer_everywhere(
      svc::Query::still_mst({svc::PriceChange{2, 3, 31}}));
  EXPECT_TRUE(tree_tie.still_optimal);
  // ...and one past it: raising a tree edge can break optimality too.
  auto tree_break = backends.answer_everywhere(
      svc::Query::still_mst({svc::PriceChange{2, 3, 32}}));
  EXPECT_FALSE(tree_break.still_optimal);
  ASSERT_EQ(tree_break.certificates.size(), 1u);
  EXPECT_EQ(tree_break.certificates[0].maxpath, 32);

  // Both at once: the non-tree edge rises exactly as far as the tree edge —
  // still a tie, still optimal.  A batch is simultaneous, not sequential.
  auto both = backends.answer_everywhere(svc::Query::still_mst(
      {svc::PriceChange{2, 3, 32}, svc::PriceChange{0, 3, 32}}));
  EXPECT_TRUE(both.still_optimal);

  const auto want = oracle_still_mst(
      inst, *backends.index,
      {svc::PriceChange{2, 3, 32}, svc::PriceChange{0, 3, 32}});
  expect_answers_equal(both, want, "simultaneous tie");
}

TEST(StillMst, CorrelatedShockAlongOnePath) {
  // Raise every tree edge on one long root path at once: every non-tree edge
  // covering any part of that path may flip to violating — the oracle must
  // agree on exactly which.
  auto tree = g::path_tree(48);
  g::assign_random_tree_weights(tree, 10, 40, 1301);
  const auto inst = g::make_mst_instance(std::move(tree), 120, 1303,
                                         /*slack=*/6);
  Backends backends(inst);

  // Walk a leaf-to-root chain of the path tree (vertex n-1 is its leaf).
  std::vector<svc::PriceChange> shock;
  g::Vertex x = static_cast<g::Vertex>(inst.n() - 1);
  for (int i = 0; i < 12 && x != inst.tree.root; ++i) {
    const g::Vertex p = inst.tree.parent[static_cast<std::size_t>(x)];
    shock.push_back(svc::PriceChange{
        x, p, inst.tree.weight[static_cast<std::size_t>(x)] + 25});
    x = p;
  }
  ASSERT_GE(shock.size(), 3u);

  const auto a = backends.answer_everywhere(svc::Query::still_mst(shock));
  const auto want = oracle_still_mst(inst, *backends.index, shock);
  expect_answers_equal(a, want, "correlated shock");
  check_certificates_violate(inst, *backends.index, shock, a);
  EXPECT_FALSE(a.still_optimal) << "a +25 shock on 12 path edges should "
                                   "undercut at least one covering edge";
}

TEST(StillMst, CanonicalizationAndDuplicates) {
  auto tree = g::random_recursive_tree(30, 1401);
  g::assign_random_tree_weights(tree, 1, 30, 1403);
  const auto inst = g::make_mst_instance(std::move(tree), 60, 1405);
  Backends backends(inst);
  std::mt19937_64 rng(0xfeed);

  const auto batch = random_batch(inst, rng, 8);
  auto permuted = batch;
  std::shuffle(permuted.begin(), permuted.end(), rng);
  // Also flip some endpoint orders: {u, v} and {v, u} are the same edge.
  for (std::size_t i = 0; i < permuted.size(); i += 2)
    std::swap(permuted[i].u, permuted[i].v);

  const svc::Query q1 = svc::Query::still_mst(batch);
  const svc::Query q2 = svc::Query::still_mst(permuted);
  EXPECT_TRUE(q1 == q2) << "permuted-but-equal change sets must canonicalize "
                           "to the same query";
  EXPECT_EQ(svc::QueryHash{}(q1), svc::QueryHash{}(q2));
  expect_answers_equal(backends.answer_everywhere(q1),
                       backends.answer_everywhere(q2), "permuted batch");

  // Duplicates: the last entry for an edge is the scenario's final word.
  const g::WEdge& e = inst.nontree[0];
  const std::vector<svc::PriceChange> dup = {
      svc::PriceChange{e.u, e.v, e.w + 100},
      svc::PriceChange{e.v, e.u, e.w - 100}};
  const svc::Query qdup = svc::Query::still_mst(dup);
  ASSERT_EQ(qdup.changes.size(), 1u);
  EXPECT_EQ(qdup.changes[0].new_w, e.w - 100);
  expect_answers_equal(backends.answer_everywhere(qdup),
                       oracle_still_mst(inst, *backends.index, dup),
                       "duplicate entries");
}

TEST(StillMst, UnknownEdgeAndEmptyBatch) {
  auto tree = g::kary_tree(20, 2);
  g::assign_random_tree_weights(tree, 1, 20, 1501);
  const auto inst = g::make_mst_instance(std::move(tree), 30, 1503);
  Backends backends(inst);

  // Any unresolvable change poisons the whole scenario.
  const auto unknown = backends.answer_everywhere(svc::Query::still_mst(
      {svc::PriceChange{0, 1, 5}, svc::PriceChange{-3, 7, 5}}));
  EXPECT_EQ(unknown.status, svc::Status::kUnknownEdge);
  EXPECT_TRUE(unknown.certificates.empty());

  // The empty scenario just re-verifies the base labels: an MST stays one.
  const auto empty = backends.answer_everywhere(svc::Query::still_mst({}));
  EXPECT_EQ(empty.status, svc::Status::kOk);
  EXPECT_TRUE(empty.still_optimal);
}

TEST(StillMst, EmptyBatchOnNonMstBaseReportsItsViolations) {
  // still_mst is defined against the cached labels whatever they say: on a
  // base that is not an MST, the empty scenario returns the base violations.
  auto tree = g::random_recursive_tree(24, 1601);
  g::assign_random_tree_weights(tree, 5, 25, 1603);
  auto inst = g::make_mst_instance(std::move(tree), 40, 1605);
  ASSERT_GT(g::inject_violations(inst, 4, 1607), 0u);
  Backends backends(inst);
  ASSERT_GT(backends.index->violations(), 0u);

  const auto a = backends.answer_everywhere(svc::Query::still_mst({}));
  EXPECT_FALSE(a.still_optimal);
  EXPECT_EQ(a.certificates.size(), backends.index->violations());
  const auto want = oracle_still_mst(inst, *backends.index, {});
  expect_answers_equal(a, want, "non-MST base");
}

TEST(StillMst, FuzzFiveHundredBatchesPerBackend) {
  auto tree = g::random_recursive_tree(60, 1701);
  g::assign_random_tree_weights(tree, 1, 60, 1703);
  const auto inst = g::make_mst_instance(std::move(tree), 140, 1705,
                                         /*slack=*/3);
  Backends backends(inst);
  std::mt19937_64 rng(0x5eed);

  for (int rep = 0; rep < 500; ++rep) {
    const std::size_t k = 1 + rng() % 12;
    const auto batch = random_batch(inst, rng, k);
    // answer_everywhere runs the batch on the monolith and every shard
    // count, so each of the 4 backends sees all 500 batches.
    const auto a = backends.answer_everywhere(svc::Query::still_mst(batch));
    const auto want = oracle_still_mst(inst, *backends.index, batch);
    expect_answers_equal(a, want, "fuzz rep " + std::to_string(rep));
    if (!a.still_optimal)
      check_certificates_violate(inst, *backends.index, batch, a);
  }
}

TEST(StillMst, LiveBackendsServeItWithoutMutatingTheGeneration) {
  auto tree = g::random_recursive_tree(40, 1801);
  g::assign_random_tree_weights(tree, 1, 40, 1803);
  const auto inst = g::make_mst_instance(std::move(tree), 80, 1805);
  const auto snapshot = svc::SensitivityIndex::build_host(inst);

  auto mono = std::make_shared<svc::LiveMonolithBackend>(inst, snapshot);
  auto sharded =
      std::make_shared<svc::LiveShardedBackend>(inst, snapshot, 3);
  std::mt19937_64 rng(0xace);
  const auto batch = random_batch(inst, rng, 6);
  const svc::Query q = svc::Query::still_mst(batch);

  const auto a0 = mono->answer(q);
  EXPECT_TRUE(a0 == sharded->answer(q));
  EXPECT_EQ(mono->generation(), 0u);
  EXPECT_EQ(sharded->generation(), 0u);
  EXPECT_EQ(mono->fingerprint(), snapshot->fingerprint())
      << "still_mst must not mutate the live generation";
  expect_answers_equal(a0, oracle_still_mst(inst, *snapshot, batch), "live");

  // After a real update the same scenario is answered against the new
  // generation — and still matches the oracle on the new instance.
  const g::WEdge& e = inst.nontree[1];
  mono->apply_update(e.u, e.v, e.w + 5);
  sharded->apply_update(e.u, e.v, e.w + 5);
  EXPECT_EQ(mono->generation(), 1u);
  const g::Instance now = mono->instance_snapshot();
  const auto pre = svc::SensitivityIndex::build_host(now);
  const auto a1 = mono->answer(q);
  EXPECT_TRUE(a1 == sharded->answer(q));
  expect_answers_equal(a1, oracle_still_mst(now, *pre, batch),
                       "live after update");
}

TEST(StillMst, ServiceCachesCanonicalizedBatches) {
  auto tree = g::random_recursive_tree(40, 1901);
  g::assign_random_tree_weights(tree, 1, 40, 1903);
  const auto inst = g::make_mst_instance(std::move(tree), 80, 1905);
  svc::ServiceOptions opts;
  opts.threads = 2;
  svc::QueryService service(svc::SensitivityIndex::build_host(inst), opts);

  std::mt19937_64 rng(0xcafe);
  const auto batch = random_batch(inst, rng, 5);
  auto permuted = batch;
  std::shuffle(permuted.begin(), permuted.end(), rng);

  const auto before = service.stats().cache;
  const auto a1 = service.still_mst(batch);
  const auto mid = service.stats().cache;
  EXPECT_EQ(mid.misses, before.misses + 1);
  const auto a2 = service.still_mst(permuted);  // canonicalizes to the same key
  const auto after = service.stats().cache;
  EXPECT_EQ(after.hits, mid.hits + 1) << "permuted-but-equal batch must hit";
  EXPECT_TRUE(a1 == a2);
}

TEST(StillMst, SurvivesSnapshotRecovery) {
  // The topology view is rebuilt from the persisted label columns on load:
  // a recovered tier must answer still_mst byte-identically.
  auto tree = g::random_recursive_tree(36, 2001);
  g::assign_random_tree_weights(tree, 1, 36, 2003);
  const auto inst = g::make_mst_instance(std::move(tree), 70, 2005);
  const auto snapshot = svc::SensitivityIndex::build_host(inst);

  const mpcmst::test::ScratchDir dir(
      (std::filesystem::path(::testing::TempDir()) / "mpcmst_still_recover")
          .string());
  svc::PersistenceConfig cfg{dir.str(), svc::SyncMode::kCommit,
                             /*snapshot_every_n=*/0};
  auto live = std::make_shared<svc::LiveShardedBackend>(inst, snapshot, 3);
  live->attach_persistence(svc::Persistence::create_fresh(cfg));
  live->checkpoint();

  std::mt19937_64 rng(0xd00d);
  const auto batch = random_batch(inst, rng, 7);
  const svc::Query q = svc::Query::still_mst(batch);
  const auto want = live->answer(q);

  auto recovered = svc::QueryService::recover(cfg);
  ASSERT_NE(recovered, nullptr);
  const auto got = recovered->answer(q);
  EXPECT_TRUE(got == want)
      << "recovered tier diverged from the live one on still_mst";
}
