// Tests for the forest extension (Remark 2.4): MSF verification and
// sensitivity across disconnected instances.
#include <gtest/gtest.h>

#include "forest/forest.hpp"
#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace fo = mpcmst::forest;
namespace seq = mpcmst::seq;

namespace {

/// Glue k single-tree instances into one forest instance with disjoint
/// vertex ranges.
g::Instance glue(const std::vector<g::Instance>& parts) {
  g::Instance out;
  g::Vertex base = 0;
  for (const auto& p : parts) {
    out.tree.n += p.n();
    for (std::size_t v = 0; v < p.n(); ++v) {
      out.tree.parent.push_back(p.tree.parent[v] + base);
      out.tree.weight.push_back(p.tree.weight[v]);
    }
    for (const auto& e : p.nontree)
      out.nontree.push_back({e.u + base, e.v + base, e.w});
    base += static_cast<g::Vertex>(p.n());
  }
  out.tree.root = parts.empty() ? 0 : parts.front().tree.root;
  return out;
}

g::Instance three_component_msf(std::uint64_t seed) {
  std::vector<g::Instance> parts;
  auto t1 = g::kary_tree(200, 3);
  g::assign_random_tree_weights(t1, 1, 30, seed);
  parts.push_back(g::make_mst_instance(std::move(t1), 300, seed + 1, 5));
  auto t2 = g::path_tree(150);
  g::assign_random_tree_weights(t2, 1, 30, seed + 2);
  parts.push_back(g::make_mst_instance(std::move(t2), 200, seed + 3, 5));
  auto t3 = g::star_tree(100);
  g::assign_random_tree_weights(t3, 1, 30, seed + 4);
  parts.push_back(g::make_mst_instance(std::move(t3), 150, seed + 5, 5));
  return glue(parts);
}

TEST(Forest, AcceptsValidMsf) {
  const auto inst = three_component_msf(61);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = fo::verify_msf_mpc(eng, inst);
  EXPECT_TRUE(res.is_msf);
  EXPECT_EQ(res.meter.components, 3u);
  EXPECT_EQ(res.crossing_edges, 0u);
  EXPECT_GT(res.meter.rounds, 0u);
}

TEST(Forest, RejectsCoveringViolation) {
  // Undercut one non-tree edge inside the middle component, then glue.
  auto t1 = g::kary_tree(200, 3);
  g::assign_random_tree_weights(t1, 1, 30, 67);
  auto p1 = g::make_mst_instance(std::move(t1), 300, 68, 5);
  auto t2 = g::path_tree(150);
  g::assign_random_tree_weights(t2, 1, 30, 69);
  auto p2 = g::make_mst_instance(std::move(t2), 200, 70, 5);
  ASSERT_GT(g::inject_violations(p2, 1, 71), 0u);
  const auto inst = glue({p1, p2});
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = fo::verify_msf_mpc(eng, inst);
  EXPECT_FALSE(res.is_msf);
  EXPECT_GT(res.violations, 0u);
}

TEST(Forest, RejectsCrossComponentEdge) {
  auto inst = three_component_msf(73);
  inst.nontree.push_back({5, 250, 1000});  // joins components 1 and 2
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = fo::verify_msf_mpc(eng, inst);
  EXPECT_FALSE(res.is_msf);
  EXPECT_EQ(res.crossing_edges, 1u);
}

TEST(Forest, SensitivityMatchesPerComponentBrute) {
  const auto inst = three_component_msf(79);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = fo::msf_sensitivity_mpc(eng, inst);
  // Brute force on the glued instance: parent walks never cross components.
  const auto brute = seq::sensitivity_brute(inst);
  std::size_t tree_rows = 0;
  for (const auto& t : res.tree) {
    ++tree_rows;
    EXPECT_EQ(t.mc, brute.tree_mc[t.v]) << "vertex " << t.v;
  }
  EXPECT_EQ(tree_rows, inst.n() - 3);  // three roots have no parent edge
  ASSERT_EQ(res.nontree.size(), inst.nontree.size());
  for (const auto& e : res.nontree)
    EXPECT_EQ(e.maxpath, brute.nontree_maxpath[e.orig_id])
        << "edge " << e.orig_id;
}

TEST(Forest, ParallelMeteringTakesMaxOverComponents) {
  // rounds(forest of {star, path}) ~ decomposition + rounds(path), not the
  // sum: the path component dominates.
  auto star = g::make_layered_instance(g::star_tree(512), 512, 83);
  auto path = g::make_layered_instance(g::path_tree(512), 512, 89);
  const auto both = glue({star, path});
  auto run = [](const g::Instance& inst) {
    auto eng = mpcmst::test::make_engine(64 * inst.input_words());
    return fo::verify_msf_mpc(eng, inst).meter.rounds;
  };
  const auto r_star = run(star);
  const auto r_path = run(path);
  const auto r_both = run(both);
  EXPECT_LT(r_both, r_star + r_path);
  EXPECT_GE(r_both, r_path);
}

}  // namespace
