// Tests for the answer_batch fast path (bulk cache probe + shard-run
// parallel evaluation + bulk insert): randomized oracle agreement against
// per-query answers on the monolith and shard counts {1, 3, 8}, duplicate
// queries inside one batch, the empty batch, and batches racing / spanning
// an apply_update.  The Debug CI jobs run all of this under ASan/UBSan —
// the bulk cache paths and the pool's cursor are what they watch.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>

#include "graph/generators.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace svc = mpcmst::service;

namespace {

g::Instance make_instance(std::size_t n, std::uint64_t seed) {
  auto tree = g::random_recursive_tree(n, seed);
  g::assign_random_tree_weights(tree, 1, 60, seed + 1);
  return g::make_mst_instance(std::move(tree), 3 * n, seed + 2, 6);
}

/// Mixed workload over all four query families, intentionally including
/// out-of-range endpoints (kUnknownEdge answers must survive the fast path).
std::vector<svc::Query> make_workload(const g::Instance& inst,
                                      std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(1, inst.n() - 1);
  std::uniform_int_distribution<std::size_t> nontree_pick(
      0, inst.nontree.size() - 1);
  std::uniform_int_distribution<g::Weight> delta(-30, 30);
  std::vector<svc::Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto c = static_cast<g::Vertex>(pick(rng));
    switch (i % 6) {
      case 0:
        out.push_back(
            svc::Query::price_change(c, inst.tree.parent[c], delta(rng)));
        break;
      case 1: {
        const g::WEdge& e = inst.nontree[nontree_pick(rng)];
        out.push_back(svc::Query::price_change(e.u, e.v, delta(rng)));
        break;
      }
      case 2:
        out.push_back(svc::Query::replacement_edge(inst.tree.parent[c], c));
        break;
      case 3:
        out.push_back(svc::Query::top_k_fragile(1 + (i % 17)));
        break;
      case 4:
        out.push_back(svc::Query::corridor_headroom(c, inst.tree.parent[c]));
        break;
      default:
        // Unknown edges: both endpoints valid but (almost surely) not
        // adjacent, plus occasional out-of-range vertices.
        out.push_back(svc::Query::corridor_headroom(
            c, (i % 12 == 5) ? static_cast<g::Vertex>(inst.n() + 7) : c));
    }
  }
  return out;
}

}  // namespace

TEST(Batch, AgreesWithPerQueryAcrossBackends) {
  const auto inst = make_instance(400, 1009);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto index = svc::SensitivityIndex::build(eng, inst);
  // Reference answers from a pool-of-1, cache-off service.
  svc::QueryService reference(index, {.threads = 1, .cache_capacity = 0});
  const auto workload = make_workload(inst, 5000, 1013);
  std::vector<svc::Answer> expected;
  expected.reserve(workload.size());
  for (const auto& q : workload) expected.push_back(reference.answer(q));

  for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                   std::size_t{3}, std::size_t{8}}) {
    SCOPED_TRACE(shards == 0 ? "monolith"
                             : "shards=" + std::to_string(shards));
    std::shared_ptr<const svc::IndexBackend> backend;
    if (shards == 0) {
      backend = std::make_shared<const svc::MonolithicBackend>(index);
    } else {
      backend = std::make_shared<const svc::QueryRouter>(
          svc::ShardedSensitivityIndex::split(*index, shards));
    }
    svc::QueryService service(backend, {.threads = 4, .chunk_size = 64});
    // Cold batch (all misses), then warm batch (all hits) — both must equal
    // the per-query reference byte for byte.
    const auto cold = service.answer_batch(workload);
    ASSERT_EQ(cold.size(), workload.size());
    for (std::size_t i = 0; i < workload.size(); ++i)
      ASSERT_EQ(cold[i], expected[i]) << i << ": " << to_string(workload[i]);
    const auto warm = service.answer_batch(workload);
    EXPECT_EQ(warm, cold);
    EXPECT_GE(service.stats().cache.hits, workload.size());
  }
}

TEST(Batch, DuplicateQueriesInOneBatch) {
  const auto inst = make_instance(120, 2027);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  svc::QueryService service(svc::SensitivityIndex::build(eng, inst),
                            {.threads = 4, .chunk_size = 8});
  // A batch that is mostly duplicates of a handful of distinct questions,
  // shuffled so copies land in different chunks.
  const auto distinct = make_workload(inst, 12, 2029);
  std::vector<svc::Query> batch;
  for (std::size_t i = 0; i < 600; ++i) batch.push_back(distinct[i % 12]);
  std::mt19937_64 rng(2031);
  std::shuffle(batch.begin(), batch.end(), rng);
  const auto answers = service.answer_batch(batch);
  ASSERT_EQ(answers.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    ASSERT_EQ(answers[i], service.answer(batch[i]))
        << i << ": " << to_string(batch[i]);
  // Every copy of the same question got the same bytes.
  for (std::size_t d = 0; d < distinct.size(); ++d) {
    const svc::Answer* first = nullptr;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!(batch[i] == distinct[d])) continue;
      if (!first)
        first = &answers[i];
      else
        EXPECT_EQ(answers[i], *first) << "duplicate " << d << " at " << i;
    }
  }
}

TEST(Batch, EmptyBatch) {
  const auto inst = make_instance(60, 3001);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  svc::QueryService service(svc::SensitivityIndex::build(eng, inst), {});
  const auto before = service.stats();
  EXPECT_TRUE(service.answer_batch({}).empty());
  EXPECT_EQ(service.stats().queries_served, before.queries_served);
}

TEST(Batch, SequentialBatchesSpanningAnUpdate) {
  // batch -> apply_update -> batch: the second batch must answer from the
  // new generation (no stale hit can survive the fingerprint rotation), and
  // both batches must equal their generation's per-query answers.
  const auto inst = make_instance(200, 4007);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto eng = mpcmst::test::make_engine(64 * inst.input_words());
    auto service = svc::QueryService::build_live_sharded(
        eng, inst, shards, {.threads = 4, .chunk_size = 32});
    auto eng2 = mpcmst::test::make_engine(64 * inst.input_words());
    auto oracle = svc::QueryService::build_live_sharded(
        eng2, inst, shards, {.threads = 1, .cache_capacity = 0});

    const auto workload = make_workload(inst, 2000, 4013);
    const auto before = service->answer_batch(workload);
    for (std::size_t i = 0; i < workload.size(); ++i)
      ASSERT_EQ(before[i], oracle->answer(workload[i])) << i;

    // One confirmed change through both services.
    const g::Vertex c = inst.tree.root == 1 ? 2 : 1;
    const auto r1 = service->apply_update(c, inst.tree.parent[c],
                                          inst.tree.weight[c] + 1);
    const auto r2 = oracle->apply_update(c, inst.tree.parent[c],
                                         inst.tree.weight[c] + 1);
    ASSERT_EQ(r1.new_fingerprint, r2.new_fingerprint);
    if (r1.report.cls == svc::UpdateClass::kNoChange) continue;

    const auto after = service->answer_batch(workload);
    for (std::size_t i = 0; i < workload.size(); ++i)
      ASSERT_EQ(after[i], oracle->answer(workload[i])) << i;
  }
}

TEST(Batch, ConcurrentBatchRacingUpdates) {
  // answer_batch racing apply_update: every answer must match the pre- or
  // the post-update oracle (generation gating may skip inserts, but can
  // never serve a mixed or stale answer for a cached key).  The toggled
  // update is a guaranteed within-headroom reweight in both directions, so
  // exactly two generations ever exist.
  const auto inst = make_instance(150, 5003);
  const auto pre = svc::SensitivityIndex::build_host(inst);
  g::Vertex c = -1;
  for (const g::Vertex child : pre->fragile_order()) {
    const auto t = pre->tree_edge(child);
    if (t.sens >= 1 && t.sens < g::kPosInfW) {
      c = child;
      break;
    }
  }
  ASSERT_GE(c, 0) << "no tree edge with headroom in the test instance";
  const g::Weight old_w = inst.tree.weight[c];
  auto post_inst = inst;
  const auto rep = svc::apply_update_to_instance(post_inst, c,
                                                 inst.tree.parent[c],
                                                 old_w + 1);
  ASSERT_EQ(rep.cls, svc::UpdateClass::kTreeReweight);
  const auto post = svc::SensitivityIndex::build_host(post_inst);

  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  auto service = svc::QueryService::build_live_sharded(
      eng, inst, 3, {.threads = 4, .chunk_size = 16});
  const auto workload = make_workload(inst, 3000, 5009);
  std::vector<svc::Answer> got;
  std::thread updater([&] {
    for (int round = 0; round < 24; ++round) {
      (void)service->apply_update(c, inst.tree.parent[c],
                                  round % 2 ? old_w : old_w + 1);
      std::this_thread::yield();
    }
  });
  for (int pass = 0; pass < 6; ++pass) got = service->answer_batch(workload);
  updater.join();
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const auto a = answer_query(*pre, workload[i]);
    const auto b = answer_query(*post, workload[i]);
    EXPECT_TRUE(got[i] == a || got[i] == b)
        << i << ": " << to_string(workload[i]);
  }
}
