// Tests for the graph substrate: tree shapes, relabeling, instance builders.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;

namespace {

TEST(Shapes, AllWellFormed) {
  for (const auto& sc : mpcmst::test::shape_catalog(257)) {
    EXPECT_TRUE(sc.tree.well_formed()) << sc.name;
    EXPECT_EQ(sc.tree.n, 257u) << sc.name;
  }
}

TEST(Shapes, PathHeightIsNMinus1) {
  const auto t = g::path_tree(100);
  EXPECT_EQ(seq::SeqTreeIndex(t).height(), 99);
}

TEST(Shapes, StarHeightIsOne) {
  const auto t = g::star_tree(100);
  EXPECT_EQ(seq::SeqTreeIndex(t).height(), 1);
}

TEST(Shapes, KaryHeightIsLogarithmic) {
  const auto t = g::kary_tree(1 << 10, 2);
  const auto h = seq::SeqTreeIndex(t).height();
  EXPECT_GE(h, 9);
  EXPECT_LE(h, 10);
}

TEST(Shapes, DepthBoundedTreeRespectsBound) {
  const auto t = g::random_tree_depth_bounded(1000, 5, 42);
  EXPECT_LE(seq::SeqTreeIndex(t).height(), 5);
}

TEST(Shapes, RelabelPreservesStructure) {
  const auto t = g::kary_tree(300, 3);
  const auto r = g::relabel_random(t, 99);
  EXPECT_TRUE(r.well_formed());
  EXPECT_EQ(seq::SeqTreeIndex(r).height(), seq::SeqTreeIndex(t).height());
  // Weight multiset preserved.
  std::multiset<g::Weight> a(t.weight.begin(), t.weight.end());
  std::multiset<g::Weight> b(r.weight.begin(), r.weight.end());
  EXPECT_EQ(a, b);
}

TEST(Shapes, TreeEdgesEnumeratesAll) {
  const auto t = g::kary_tree(50, 4);
  const auto edges = t.tree_edges();
  EXPECT_EQ(edges.size(), 49u);
  for (const auto& e : edges) EXPECT_EQ(t.parent[e.u], e.v);
}

TEST(WellFormed, RejectsCycleAndBadRoot) {
  g::RootedTree t;
  t.n = 3;
  t.root = 0;
  t.parent = {0, 2, 1};  // 1 <-> 2 cycle
  t.weight = {0, 1, 1};
  EXPECT_FALSE(t.well_formed());
  t.parent = {1, 0, 0};  // root's parent is not itself
  EXPECT_FALSE(t.well_formed());
  t.parent = {0, 0, 1};
  EXPECT_TRUE(t.well_formed());
}

TEST(Instances, MstInstanceVerifies) {
  for (const auto& sc : mpcmst::test::shape_catalog(200)) {
    auto tree = sc.tree;
    g::assign_random_tree_weights(tree, 1, 50, 5);
    const auto inst = g::make_mst_instance(tree, 400, 6);
    EXPECT_TRUE(seq::verify_mst(inst)) << sc.name;
    EXPECT_TRUE(seq::verify_mst_by_weight(inst)) << sc.name;
  }
}

TEST(Instances, LayeredInstanceVerifies) {
  auto tree = g::random_recursive_tree(300, 3);
  const auto inst = g::make_layered_instance(tree, 500, 4);
  EXPECT_TRUE(seq::verify_mst(inst));
  EXPECT_TRUE(seq::verify_mst_by_weight(inst));
}

TEST(Instances, InjectViolationsBreaksMst) {
  auto tree = g::random_recursive_tree(200, 8);
  g::assign_random_tree_weights(tree, 1, 50, 9);
  auto inst = g::make_mst_instance(tree, 300, 10, /*slack=*/5);
  ASSERT_TRUE(seq::verify_mst(inst));
  const std::size_t injected = g::inject_violations(inst, 3, 11);
  ASSERT_GT(injected, 0u);
  EXPECT_FALSE(seq::verify_mst(inst));
  EXPECT_FALSE(seq::verify_mst_by_weight(inst));
}

TEST(Instances, InputWordsCountsEdgesAndVertices) {
  auto tree = g::path_tree(10);
  const auto inst = g::make_random_instance(tree, 5, 1, 1, 9);
  EXPECT_EQ(inst.m(), 14u);
  EXPECT_EQ(inst.input_words(), 3 * 14 + 2 * 10);
}

}  // namespace
