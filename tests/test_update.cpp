// Churn-oracle suite for the incremental update layer
// (src/service/update.hpp): after every applied update the live backends
// must answer byte-identically to a fresh full rebuild of the canonical
// post-update instance — on the monolith and on shard counts {1, 3, 8},
// through 200 random confirmed changes covering reweights, swaps in both
// directions, and exact ties at the headroom edge.  The whole sequence runs
// journaled (persistence attached to every backend), and every 50 steps each
// tier is recovered from disk and held to the same oracle: fingerprint and
// generation continuity plus byte-identical answers.  Plus: cache-generation
// safety (a pre-update answer can never be served post-update; entries of a
// byte-identical generation still hit), the build_sharded shard-count clamp
// regression, epoch stamping, and concurrent queries during updates (the
// paths the ASan/UBSan CI jobs watch).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "seq/oracles.hpp"
#include "service/journal.hpp"
#include "service/router.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/update.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace seq = mpcmst::seq;
namespace svc = mpcmst::service;

namespace {

std::shared_ptr<const svc::SensitivityIndex> fresh_build(
    const g::Instance& inst) {
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  return svc::SensitivityIndex::build(eng, inst);
}

/// Scratch persistence root for the journaled soak.
mpcmst::test::ScratchDir soak_dir(const std::string& name) {
  return mpcmst::test::ScratchDir(
      (std::filesystem::path(::testing::TempDir()) / ("mpcmst_update_" + name))
          .string());
}

/// Every point query on every current edge (both endpoint orders), unknown
/// pairs, and a spread of top-k sizes — regenerated per churn step because
/// swaps move edges between the tree and the non-tree set.
std::vector<svc::Query> exhaustive_queries(const g::Instance& inst) {
  std::vector<svc::Query> out;
  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<g::Vertex>(v) == inst.tree.root) continue;
    const g::Vertex c = static_cast<g::Vertex>(v);
    const g::Vertex p = inst.tree.parent[v];
    out.push_back(svc::Query::corridor_headroom(c, p));
    out.push_back(svc::Query::replacement_edge(p, c));
    out.push_back(
        svc::Query::price_change(c, p, static_cast<g::Weight>(v % 9) - 4));
  }
  for (const g::WEdge& e : inst.nontree) {
    out.push_back(svc::Query::corridor_headroom(e.u, e.v));
    out.push_back(svc::Query::replacement_edge(e.u, e.v));
    out.push_back(svc::Query::price_change(e.u, e.v, -2));
  }
  out.push_back(svc::Query::corridor_headroom(-1, 3));
  out.push_back(
      svc::Query::corridor_headroom(0, static_cast<g::Vertex>(inst.n()) + 7));
  for (const std::int64_t k :
       {0L, 1L, 5L, static_cast<long>(inst.n() / 2),
        static_cast<long>(inst.n()) + 3})
    out.push_back(svc::Query::top_k_fragile(k));
  return out;
}

void expect_instances_equal(const g::Instance& a, const g::Instance& b,
                            std::size_t step) {
  ASSERT_EQ(a.tree.root, b.tree.root) << "step " << step;
  ASSERT_EQ(a.tree.parent, b.tree.parent) << "step " << step;
  ASSERT_EQ(a.tree.weight, b.tree.weight) << "step " << step;
  ASSERT_EQ(a.nontree, b.nontree) << "step " << step;
}

void expect_reports_equal(const svc::UpdateReport& a,
                          const svc::UpdateReport& b, std::size_t step) {
  ASSERT_EQ(a.status, b.status) << "step " << step;
  ASSERT_EQ(a.cls, b.cls) << "step " << step;
  ASSERT_EQ(a.edge, b.edge) << "step " << step;
  ASSERT_EQ(a.old_w, b.old_w) << "step " << step;
  ASSERT_EQ(a.swapped_out, b.swapped_out) << "step " << step;
  ASSERT_EQ(a.swapped_in, b.swapped_in) << "step " << step;
}

TEST(Update, ChurnOracleSoak) {
  auto tree = g::random_recursive_tree(48, 901);
  g::assign_random_tree_weights(tree, 1, 40, 903);
  const auto base = g::make_mst_instance(std::move(tree), 96, 907,
                                         /*slack=*/4);

  auto eng = mpcmst::test::make_engine(64 * base.input_words());
  auto mono = svc::LiveMonolithBackend::build(eng, base);
  const auto snapshot = fresh_build(base);
  std::vector<std::shared_ptr<svc::LiveShardedBackend>> sharded;
  for (const std::size_t shards : {1u, 3u, 8u})
    sharded.push_back(
        std::make_shared<svc::LiveShardedBackend>(base, snapshot, shards));

  // Journal every tier through the whole soak: the monolith commit-synced
  // with compaction disabled (recovery replays the full history), the shard
  // tiers OS-buffered with a mid-soak compaction policy (recovery replays a
  // short tail over a fresher snapshot) — both regimes must land identically.
  const auto persist_root = soak_dir("churn");
  std::vector<std::pair<svc::PersistenceConfig, svc::UpdatableBackend*>>
      persisted;
  {
    svc::PersistenceConfig cfg{persist_root.sub("mono"), svc::SyncMode::kCommit,
                               /*snapshot_every_n=*/0};
    mono->attach_persistence(svc::Persistence::create_fresh(cfg));
    mono->checkpoint();
    persisted.emplace_back(cfg, mono.get());
  }
  for (std::size_t b = 0; b < sharded.size(); ++b) {
    svc::PersistenceConfig cfg{persist_root.sub("shard" + std::to_string(b)),
                               svc::SyncMode::kNever, /*snapshot_every_n=*/25};
    sharded[b]->attach_persistence(svc::Persistence::create_fresh(cfg));
    sharded[b]->checkpoint();
    persisted.emplace_back(cfg, sharded[b].get());
  }

  g::Instance oracle_inst = base;  // mutated by the pure canonical transform
  std::mt19937_64 rng(0xc0ffee);
  std::size_t swaps_seen = 0, tie_reweights = 0;
  for (std::size_t step = 0; step < 200; ++step) {
    // --- pick a target edge of the CURRENT instance and a new weight ---
    g::Vertex u, v;
    if (rng() % 2 == 0) {
      do {
        u = static_cast<g::Vertex>(rng() % oracle_inst.n());
      } while (u == oracle_inst.tree.root);
      v = oracle_inst.tree.parent[static_cast<std::size_t>(u)];
      if (rng() % 2) std::swap(u, v);
    } else {
      const g::WEdge& e =
          oracle_inst.nontree[rng() % oracle_inst.nontree.size()];
      u = e.u;
      v = e.v;
    }
    const svc::Answer probe =
        mono->answer(svc::Query::corridor_headroom(u, v));
    ASSERT_EQ(probe.status, svc::Status::kOk) << "step " << step;
    const g::Weight pivot = probe.swap_cost;  // mc (tree) / maxpath (other)
    const bool pivot_real =
        pivot > g::kNegInfW && pivot < g::kPosInfW;
    g::Weight new_w;
    switch (pivot_real ? rng() % 5 : 0) {
      case 1:  // exact tie at the headroom edge: must stay, never swap
        new_w = pivot;
        ++tie_reweights;
        break;
      case 2:  // past the pivot: tree edges swap out, non-tree edges stay
        new_w = pivot + 1 + static_cast<g::Weight>(rng() % 5);
        break;
      case 3:  // below the pivot: non-tree edges swap in, tree edges stay
        new_w = pivot - 1 - static_cast<g::Weight>(rng() % 5);
        break;
      case 4:  // fresh uniform price
        new_w = 1 + static_cast<g::Weight>(rng() % 60);
        break;
      default:  // local jiggle around the current price
        new_w = probe.headroom < g::kPosInfW && rng() % 4 == 0
                    ? pivot
                    : static_cast<g::Weight>(rng() % 50) - 5;
        break;
    }

    // --- one canonical transform, applied everywhere ---
    const svc::UpdateReport expected_rep =
        svc::apply_update_to_instance(oracle_inst, u, v, new_w);
    ASSERT_EQ(expected_rep.status, svc::Status::kOk) << "step " << step;
    if (expected_rep.cls == svc::UpdateClass::kTreeSwap ||
        expected_rep.cls == svc::UpdateClass::kNonTreeSwap)
      ++swaps_seen;

    const svc::UpdateReceipt mono_receipt = mono->apply_update(u, v, new_w);
    expect_reports_equal(mono_receipt.report, expected_rep, step);
    for (auto& backend : sharded)
      expect_reports_equal(backend->apply_update(u, v, new_w).report,
                           expected_rep, step);

    // The live instances must equal the canonical transform byte-for-byte.
    expect_instances_equal(mono->instance_snapshot(), oracle_inst, step);
    expect_instances_equal(sharded.back()->instance_snapshot(), oracle_inst,
                           step);

    // --- fresh full rebuild of the post-update instance: the oracle ---
    const auto oracle_idx = fresh_build(oracle_inst);
    ASSERT_TRUE(oracle_idx->is_mst()) << "step " << step;
    const svc::MonolithicBackend oracle(oracle_idx);
    ASSERT_EQ(mono->fingerprint(), oracle_idx->fingerprint())
        << "step " << step;
    ASSERT_TRUE(mono->is_mst()) << "step " << step;
    for (auto& backend : sharded) {
      ASSERT_EQ(backend->fingerprint(), oracle_idx->fingerprint())
          << "step " << step;
      ASSERT_EQ(backend->violations(), 0u) << "step " << step;
    }
    const auto queries = exhaustive_queries(oracle_inst);
    for (const svc::Query& q : queries) {
      const svc::Answer want = oracle.answer(q);
      const svc::Answer got = mono->answer(q);
      ASSERT_EQ(got, want) << "step " << step << " monolith "
                           << to_string(q) << "\n  want: " << to_string(want)
                           << "\n  got:  " << to_string(got);
      for (std::size_t b = 0; b < sharded.size(); ++b) {
        const svc::Answer s = sharded[b]->answer(q);
        ASSERT_EQ(s, want) << "step " << step << " sharded[" << b << "] "
                           << to_string(q) << "\n  want: " << to_string(want)
                           << "\n  got:  " << to_string(s);
      }
    }

    // --- every 50 steps: bounce every tier through journal + recover ---
    // The recovered service must show fingerprint/generation continuity with
    // the live tier it mirrors and answer the whole exhaustive set exactly
    // like the fresh-rebuild oracle.
    if (step % 50 == 49) {
      for (auto& [cfg, live] : persisted) {
        svc::QueryService::RecoveredInfo info;
        auto rec = svc::QueryService::recover(cfg, {}, &info);
        ASSERT_EQ(rec->backend().generation(), live->generation())
            << "step " << step << " " << cfg.dir;
        ASSERT_EQ(rec->backend().fingerprint(), live->fingerprint())
            << "step " << step << " " << cfg.dir;
        ASSERT_EQ(info.snapshot_generation + info.replayed_records,
                  rec->backend().generation())
            << "step " << step << " " << cfg.dir;
        for (const svc::Query& q : queries)
          ASSERT_EQ(rec->backend().answer(q), oracle.answer(q))
              << "step " << step << " recovered " << cfg.dir << " "
              << to_string(q);
      }
    }
  }
  // The soak must actually have exercised the interesting regimes.
  EXPECT_GT(swaps_seen, 10u);
  EXPECT_GT(tie_reweights, 5u);
  EXPECT_EQ(mono->generation(), sharded.front()->generation());
}

TEST(Update, CacheGenerationSafety) {
  auto tree = g::caterpillar_tree(80, 30, 411);
  g::assign_random_tree_weights(tree, 10, 90, 413);
  const auto inst = g::make_mst_instance(std::move(tree), 200, 417,
                                         /*slack=*/6);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  auto service = svc::QueryService::build_live(
      eng, inst, {.threads = 2, .cache_capacity = 1 << 12});
  ASSERT_TRUE(service->updatable());

  // A covered tree edge with real headroom (sens >= 1), so a +1 reweight is
  // a within-headroom patch that changes the answer of every query family
  // below; k is chosen so the top-k answer contains the patched edge.
  const auto order =
      service->top_k_fragile(static_cast<std::int64_t>(inst.n()));
  std::size_t rank = 0;
  while (rank < order.fragile.size() &&
         (order.fragile[rank].sens < 1 ||
          order.fragile[rank].sens >= g::kPosInfW))
    ++rank;
  ASSERT_LT(rank, order.fragile.size());
  const g::Vertex c = order.fragile[rank].child;
  const g::Vertex p = order.fragile[rank].parent;
  const std::int64_t k = static_cast<std::int64_t>(rank) + 1;

  const std::vector<svc::Query> kinds = {
      svc::Query::price_change(c, p, 1), svc::Query::replacement_edge(c, p),
      svc::Query::top_k_fragile(k), svc::Query::corridor_headroom(c, p)};

  // Pre-warm generation 0: second pass must be all hits.
  std::vector<svc::Answer> gen0;
  for (const auto& q : kinds) gen0.push_back(service->answer(q));
  const auto warm0 = service->stats().cache;
  for (std::size_t i = 0; i < kinds.size(); ++i)
    EXPECT_EQ(service->answer(kinds[i]), gen0[i]);
  const auto warm1 = service->stats().cache;
  EXPECT_EQ(warm1.hits - warm0.hits, kinds.size());

  // One confirmed reweight within headroom rotates the fingerprint.
  const g::Weight old_w = order.fragile[rank].w;
  const auto receipt = service->apply_update(c, p, old_w + 1);
  ASSERT_EQ(receipt.report.cls, svc::UpdateClass::kTreeReweight);
  ASSERT_NE(receipt.old_fingerprint, receipt.new_fingerprint);

  // No query of any kind may return its pre-update answer: every answer
  // must match a fresh rebuild of the updated instance, and none may be
  // served from the warmed generation-0 entries (all four miss).
  const auto oracle_idx =
      fresh_build(service->updatable_backend()->instance_snapshot());
  const svc::MonolithicBackend oracle(oracle_idx);
  const auto before = service->stats().cache;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const svc::Answer got = service->answer(kinds[i]);
    EXPECT_EQ(got, oracle.answer(kinds[i])) << to_string(kinds[i]);
    EXPECT_NE(got, gen0[i]) << to_string(kinds[i]);
  }
  const auto after = service->stats().cache;
  EXPECT_EQ(after.misses - before.misses, kinds.size());
  EXPECT_EQ(after.hits, before.hits);

  // The new generation warms normally.
  const auto rewarm0 = service->stats().cache;
  for (const auto& q : kinds) (void)service->answer(q);
  EXPECT_EQ(service->stats().cache.hits - rewarm0.hits, kinds.size());

  // Reverting the price restores a byte-identical instance, so the
  // generation-0 entries are valid again — and they still hit: entries of
  // an untouched (re-validated) generation survive updates to others.
  const auto revert = service->apply_update(c, p, old_w);
  ASSERT_EQ(revert.new_fingerprint, receipt.old_fingerprint);
  const auto back0 = service->stats().cache;
  for (std::size_t i = 0; i < kinds.size(); ++i)
    EXPECT_EQ(service->answer(kinds[i]), gen0[i]) << to_string(kinds[i]);
  const auto back1 = service->stats().cache;
  EXPECT_EQ(back1.hits - back0.hits, kinds.size());
}

TEST(Update, BuildShardedClampsShardCount) {
  auto tree = g::kary_tree(30, 3);
  g::assign_random_tree_weights(tree, 1, 20, 433);
  const auto inst = g::make_mst_instance(std::move(tree), 60, 437, 3);

  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto service = svc::QueryService::build_sharded(eng, inst, 1000);
  // Regression: 1000 requested shards on 30 vertices used to build 970
  // empty ranges; now the count is clamped and reported.
  EXPECT_EQ(service->backend().num_shards(), 30u);
  EXPECT_EQ(service->backend().receipt().effective_shards, 30u);

  auto eng2 = mpcmst::test::make_engine(64 * inst.input_words());
  const auto live = svc::QueryService::build_live_sharded(eng2, inst, 99);
  EXPECT_EQ(live->backend().num_shards(), 30u);
  EXPECT_EQ(live->backend().receipt().effective_shards, 30u);

  // The clamp also holds on the direct live-backend entry point (what the
  // update bench drives), not just the QueryService wrappers.
  auto eng4 = mpcmst::test::make_engine(64 * inst.input_words());
  const auto direct = svc::LiveShardedBackend::build(eng4, inst, 500);
  EXPECT_EQ(direct->num_shards(), 30u);
  EXPECT_EQ(direct->receipt().effective_shards, 30u);

  // Clamped backends still answer exactly like the monolith.
  const auto mono = fresh_build(inst);
  const svc::MonolithicBackend expected(mono);
  for (const auto& q : exhaustive_queries(inst)) {
    ASSERT_EQ(service->backend().answer(q), expected.answer(q))
        << to_string(q);
    ASSERT_EQ(live->backend().answer(q), expected.answer(q)) << to_string(q);
  }

  // Sane requests are untouched.
  auto eng3 = mpcmst::test::make_engine(64 * inst.input_words());
  const auto four = svc::QueryService::build_sharded(eng3, inst, 4);
  EXPECT_EQ(four->backend().num_shards(), 4u);
  EXPECT_EQ(four->backend().receipt().effective_shards, 4u);
}

TEST(Update, NoChangeAndUnknownEdgeLeaveGenerationAlone) {
  auto tree = g::path_tree(24);
  for (std::size_t v = 1; v < 24; ++v)
    tree.weight[v] = static_cast<g::Weight>(3 * v % 17 + 1);
  const auto inst = g::make_mst_instance(std::move(tree), 40, 443, 5);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  auto backend = svc::LiveMonolithBackend::build(eng, inst);
  const std::uint64_t fp = backend->fingerprint();

  const auto same =
      backend->apply_update(1, inst.tree.parent[1], inst.tree.weight[1]);
  EXPECT_EQ(same.report.cls, svc::UpdateClass::kNoChange);
  EXPECT_EQ(same.report.status, svc::Status::kOk);
  EXPECT_EQ(backend->generation(), 0u);
  EXPECT_EQ(backend->fingerprint(), fp);

  const auto unknown = backend->apply_update(0, 23, 7);  // not an edge
  EXPECT_EQ(unknown.report.status, svc::Status::kUnknownEdge);
  EXPECT_EQ(backend->generation(), 0u);
  EXPECT_EQ(backend->fingerprint(), fp);
}

TEST(Update, EpochBarrierStampsEveryShard) {
  auto tree = g::random_recursive_tree(60, 451);
  g::assign_random_tree_weights(tree, 1, 30, 453);
  const auto inst = g::make_mst_instance(std::move(tree), 120, 457, 4);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  auto backend = svc::LiveShardedBackend::build(eng, inst, 5);

  std::mt19937_64 rng(19);
  for (std::size_t i = 0; i < 10; ++i) {
    g::Vertex u;
    do {
      u = static_cast<g::Vertex>(rng() % inst.n());
    } while (u == inst.tree.root);
    const auto snapshot = backend->instance_snapshot();
    (void)backend->apply_update(
        u, snapshot.tree.parent[static_cast<std::size_t>(u)],
        1 + static_cast<g::Weight>(rng() % 25));
  }
  EXPECT_GT(backend->generation(), 0u);
  const auto& sharded = backend->sharded();
  EXPECT_EQ(sharded.generation(), backend->generation());
  for (std::size_t i = 0; i < sharded.num_shards(); ++i)
    EXPECT_EQ(sharded.shard(i).generation, backend->generation())
        << "shard " << i;
  // The barrier holds, so the merge serves — and still matches a rebuild.
  const auto oracle_idx = fresh_build(backend->instance_snapshot());
  const svc::MonolithicBackend oracle(oracle_idx);
  const auto q = svc::Query::top_k_fragile(20);
  EXPECT_EQ(backend->answer(q), oracle.answer(q));
}

TEST(Update, ConcurrentQueriesDuringUpdates) {
  // The locking the sanitizer jobs watch: batched queries race confirmed
  // updates; every served answer must belong to SOME generation (the epoch
  // barrier asserts internally), and the final state must match a rebuild.
  auto tree = g::random_recursive_tree(90, 461);
  g::assign_random_tree_weights(tree, 1, 50, 463);
  const auto inst = g::make_mst_instance(std::move(tree), 180, 467, 5);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  auto service = svc::QueryService::build_live_sharded(
      eng, inst, 4, {.threads = 4, .cache_capacity = 1 << 10,
                     .chunk_size = 16});

  std::vector<svc::Query> workload;
  std::mt19937_64 rng(0xabc);
  for (std::size_t i = 0; i < 600; ++i) {
    const auto c = static_cast<g::Vertex>(1 + rng() % (inst.n() - 1));
    if (i % 3 == 0)
      workload.push_back(svc::Query::top_k_fragile(1 + i % 9));
    else
      workload.push_back(svc::Query::corridor_headroom(
          c, inst.tree.parent[static_cast<std::size_t>(c)]));
  }

  std::thread updater([&] {
    std::mt19937_64 r2(0xdef);
    for (std::size_t i = 0; i < 40; ++i) {
      const auto snapshot = service->updatable_backend()->instance_snapshot();
      g::Vertex u;
      do {
        u = static_cast<g::Vertex>(r2() % snapshot.n());
      } while (u == snapshot.tree.root);
      (void)service->apply_update(
          u, snapshot.tree.parent[static_cast<std::size_t>(u)],
          1 + static_cast<g::Weight>(r2() % 60));
    }
  });
  for (int round = 0; round < 5; ++round)
    (void)service->answer_batch(workload);
  updater.join();

  const auto oracle_idx =
      fresh_build(service->updatable_backend()->instance_snapshot());
  const svc::MonolithicBackend oracle(oracle_idx);
  for (const auto& q : workload)
    ASSERT_EQ(service->backend().answer(q), oracle.answer(q))
        << to_string(q);
}

}  // namespace
