// Wire-protocol tests (net/wire.hpp): framing round-trips for every message
// type, deterministic truncation/bit-flip fuzz (a damaged frame is refused
// whole, never partially parsed), version-mismatch refusal (an authentic
// frame from a foreign version is kVersionMismatch; a corrupt one is
// kWireError, never "from the future"), payload codec round-trips, and the
// loopback parity gate: a 4-shard networked deployment must answer all five
// query kinds byte-identically to the in-process sharded tier, before and
// after updates.
#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"
#include "service/shard.hpp"
#include "service/snapshot.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace svc = mpcmst::service;
namespace net = mpcmst::service::net;
using mpcmst::service::net::MsgType;

namespace {

/// Deterministic LCG (same constants as MMIX) so fuzz failures reproduce.
struct Lcg {
  std::uint64_t s;
  explicit Lcg(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 16;
  }
};

const MsgType kAllTypes[] = {
    MsgType::kError,        MsgType::kOk,
    MsgType::kPing,         MsgType::kPong,
    MsgType::kMeta,         MsgType::kAnswerRun,
    MsgType::kAnswerRunReply, MsgType::kTopK,
    MsgType::kTopKReply,    MsgType::kCertify,
    MsgType::kCertifyReply, MsgType::kFindRun,
    MsgType::kFindRunReply, MsgType::kNontreeInfo,
    MsgType::kNontreeInfoReply, MsgType::kMetaReply,
    MsgType::kBootstrap,    MsgType::kPatch,
    MsgType::kQuery,        MsgType::kQueryReply,
    MsgType::kIngest,       MsgType::kIngestReply,
    MsgType::kStats,        MsgType::kStatsReply,
    MsgType::kSubscribe,    MsgType::kSnapshot,
    MsgType::kJournal,      MsgType::kShutdown,
};

std::vector<unsigned char> body_of(Lcg& rng, std::size_t n) {
  std::vector<unsigned char> b(n);
  for (auto& x : b) x = static_cast<unsigned char>(rng.next());
  return b;
}

TEST(WireFrame, RoundTripEveryType) {
  Lcg rng(11);
  for (const MsgType t : kAllTypes) {
    const auto body = body_of(rng, rng.next() % 96);
    const auto frame = net::pack_frame(t, body.data(), body.size());
    net::Frame out;
    std::size_t consumed = 0;
    ASSERT_EQ(net::parse_frame(frame.data(), frame.size(), out, &consumed),
              svc::ServiceStatus::kOk)
        << net::to_string(t);
    EXPECT_EQ(out.type, t);
    EXPECT_EQ(out.body, body);
    EXPECT_EQ(consumed, frame.size());
  }
}

TEST(WireFrame, EveryTruncationRefused) {
  const std::vector<unsigned char> body{1, 2, 3, 4, 5, 6, 7};
  const auto frame = net::pack_frame(MsgType::kQuery, body.data(), body.size());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    net::Frame out;
    EXPECT_EQ(net::parse_frame(frame.data(), len, out),
              svc::ServiceStatus::kWireError)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(WireFrame, BitFlipFuzz) {
  Lcg rng(1234);
  int refused_wire = 0, refused_version = 0;
  for (int iter = 0; iter < 600; ++iter) {
    const MsgType t = kAllTypes[rng.next() % std::size(kAllTypes)];
    const auto body = body_of(rng, rng.next() % 64);
    auto frame = net::pack_frame(t, body.data(), body.size());
    const std::size_t bit = rng.next() % (frame.size() * 8);
    frame[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    net::Frame out;
    const svc::ServiceStatus s =
        net::parse_frame(frame.data(), frame.size(), out);
    // A single flipped bit must never yield an accepted frame: the length
    // no longer matches or the CRC fails.  (A flip landing exactly on the
    // version byte still fails the CRC — corrupt, not foreign.)
    ASSERT_NE(s, svc::ServiceStatus::kOk)
        << "iter " << iter << " bit " << bit << " accepted";
    if (s == svc::ServiceStatus::kWireError) ++refused_wire;
    if (s == svc::ServiceStatus::kVersionMismatch) ++refused_version;
  }
  EXPECT_EQ(refused_wire + refused_version, 600);
  EXPECT_GT(refused_wire, 0);
}

TEST(WireFrame, TruncationFuzz) {
  Lcg rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    const auto body = body_of(rng, rng.next() % 80);
    const auto frame =
        net::pack_frame(MsgType::kAnswerRunReply, body.data(), body.size());
    const std::size_t len = rng.next() % frame.size();  // strictly short
    net::Frame out;
    EXPECT_EQ(net::parse_frame(frame.data(), len, out),
              svc::ServiceStatus::kWireError)
        << "iter " << iter;
  }
}

TEST(WireFrame, ForeignVersionRefusedOnlyWithValidCrc) {
  const std::vector<unsigned char> body{9, 8, 7};
  auto frame = net::pack_frame(MsgType::kPing, body.data(), body.size());
  // Layout: len u32 | version u8 | type u8 | body | crc u32;
  // the CRC covers version + type + body.
  frame[4] = net::kWireVersion + 1;
  net::Frame out;
  // Bumped version with a stale CRC: corrupt, not "from the future".
  EXPECT_EQ(net::parse_frame(frame.data(), frame.size(), out),
            svc::ServiceStatus::kWireError);
  // Recompute the CRC so the frame is authentic — now the refusal names the
  // version.
  const std::uint32_t crc =
      mpcmst::crc32(frame.data() + 4, frame.size() - 8);
  std::memcpy(frame.data() + frame.size() - 4, &crc, 4);
  EXPECT_EQ(net::parse_frame(frame.data(), frame.size(), out),
            svc::ServiceStatus::kVersionMismatch);
}

// --- payload codecs -------------------------------------------------------

template <typename T, typename Enc, typename Dec>
void expect_roundtrip(const T& value, Enc encode, Dec decode) {
  mpcmst::ByteWriter w;
  encode(w, value);
  mpcmst::ByteReader r(w.data().data(), w.size());
  T out{};
  ASSERT_TRUE(decode(r, out));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(out, value);
}

TEST(WireCodec, ScalarBodies) {
  expect_roundtrip(net::WireStamp{42, 0xabcdef}, net::encode_stamp,
                   net::decode_stamp);
  expect_roundtrip(svc::EdgeEvent{svc::UpdateOp::kAddEdge, 3, 9, 17},
                   net::encode_edge_event, net::decode_edge_event);
  svc::JournalRecord rec;
  rec.generation = 7;
  rec.old_fingerprint = 1;
  rec.new_fingerprint = 2;
  rec.u = 4;
  rec.v = 5;
  rec.new_w = -3;
  rec.cls = 2;
  rec.op = 1;
  expect_roundtrip(rec, net::encode_journal_record,
                   net::decode_journal_record);
}

TEST(WireCodec, ErrorBody) {
  mpcmst::ByteWriter w;
  net::encode_error(w, svc::ServiceStatus::kNotLeader, "follow the leader");
  mpcmst::ByteReader r(w.data().data(), w.size());
  svc::ServiceStatus s{};
  std::string msg;
  ASSERT_TRUE(net::decode_error(r, s, msg));
  EXPECT_EQ(s, svc::ServiceStatus::kNotLeader);
  EXPECT_EQ(msg, "follow the leader");
}

TEST(WireCodec, QueryAndAnswerBodies) {
  for (const svc::Query& q : {
           svc::Query::price_change(3, 7, -5),
           svc::Query::replacement_edge(1, 2),
           svc::Query::top_k_fragile(9),
           svc::Query::corridor_headroom(0, 4),
           svc::Query::still_mst({{5, 6, 11}, {2, 3, 1}}),
       })
    expect_roundtrip(q, net::encode_query, net::decode_query);

  svc::Answer a;
  a.status = svc::Status::kOk;
  a.edge = svc::EdgeRef{true, 12};
  a.still_optimal = false;
  a.headroom = 5;
  a.swap_cost = 9;
  a.replacement = 3;
  a.fragile.push_back(svc::FragileEntry{1, 0, 4, 2, 6});
  a.certificates.push_back(mpcmst::verify::ViolationCert{2, 1, 5, 3, 8});
  expect_roundtrip(a, net::encode_answer, net::decode_answer);
}

TEST(WireCodec, ReceiptMetaStatsBodies) {
  svc::UpdateReceipt rc;
  rc.report.status = svc::Status::kOk;
  rc.report.cls = svc::UpdateClass::kTreeReweight;
  rc.report.edge = svc::EdgeRef{true, -1};
  rc.report.old_w = 3;
  rc.report.new_w = 6;
  rc.old_fingerprint = 11;
  rc.new_fingerprint = 12;
  rc.generation = 4;
  rc.patched_tree_edges = 2;
  rc.patched_nontree_edges = 5;
  mpcmst::ByteWriter w;
  net::encode_update_receipt(w, rc);
  mpcmst::ByteReader r(w.data().data(), w.size());
  svc::UpdateReceipt out;
  ASSERT_TRUE(net::decode_update_receipt(r, out));
  EXPECT_EQ(out.report.cls, rc.report.cls);
  EXPECT_EQ(out.new_fingerprint, rc.new_fingerprint);
  EXPECT_EQ(out.generation, rc.generation);
  EXPECT_EQ(out.patched_nontree_edges, rc.patched_nontree_edges);

  net::WireMeta m;
  m.n = 10;
  m.num_nontree = 20;
  m.stride = 3;
  m.num_shards = 4;
  m.shard_index = 2;
  m.root = 1;
  m.violations = 0;
  m.fingerprint = 77;
  m.generation = 9;
  mpcmst::ByteWriter wm;
  net::encode_meta(wm, m);
  mpcmst::ByteReader rm(wm.data().data(), wm.size());
  net::WireMeta mo;
  ASSERT_TRUE(net::decode_meta(rm, mo));
  EXPECT_EQ(mo.n, m.n);
  EXPECT_EQ(mo.stride, m.stride);
  EXPECT_EQ(mo.shard_index, m.shard_index);
  EXPECT_EQ(mo.fingerprint, m.fingerprint);

  net::WireStats st;
  st.generation = 5;
  st.fingerprint = 6;
  st.n = 7;
  st.num_nontree = 8;
  st.violations = 0;
  st.num_shards = 2;
  st.serving = 1;
  mpcmst::ByteWriter ws;
  net::encode_stats(ws, st);
  mpcmst::ByteReader rs(ws.data().data(), ws.size());
  net::WireStats so;
  ASSERT_TRUE(net::decode_stats(rs, so));
  EXPECT_EQ(so.generation, st.generation);
  EXPECT_EQ(so.n, st.n);
  EXPECT_EQ(so.serving, st.serving);
}

TEST(WireCodec, ResolvedChangesAndPatchBodies) {
  const std::vector<mpcmst::verify::ResolvedChange> cs{
      {true, 3, 9}, {false, 1, -2}};
  mpcmst::ByteWriter w;
  net::encode_resolved_changes(w, cs);
  mpcmst::ByteReader r(w.data().data(), w.size());
  std::vector<mpcmst::verify::ResolvedChange> out;
  ASSERT_TRUE(net::decode_resolved_changes(r, out));
  ASSERT_EQ(out.size(), cs.size());
  EXPECT_EQ(out[0].is_tree, cs[0].is_tree);
  EXPECT_EQ(out[1].new_w, cs[1].new_w);

  net::WirePatch p;
  p.epoch = 3;
  p.fingerprint = 4;
  p.num_nontree = 5;
  p.tree_children = {1, 2};
  p.tree_infos.resize(2);
  p.nontree_ids = {0};
  p.nontree_infos.resize(1);
  p.endpoint_keys = {0x100000002ull};
  p.endpoint_is_tree = {0};
  p.endpoint_ids = {-1};
  mpcmst::ByteWriter wp;
  net::encode_patch(wp, p);
  mpcmst::ByteReader rp(wp.data().data(), wp.size());
  net::WirePatch po;
  ASSERT_TRUE(net::decode_patch(rp, po));
  EXPECT_EQ(po.epoch, p.epoch);
  EXPECT_EQ(po.tree_children, p.tree_children);
  EXPECT_EQ(po.endpoint_keys, p.endpoint_keys);
  EXPECT_EQ(po.endpoint_ids, p.endpoint_ids);
}

TEST(WireCodec, HostStateRoundTripsByteIdentical) {
  auto tree = g::random_recursive_tree(24, 5);
  g::assign_random_tree_weights(tree, 1, 30, 7);
  const g::Instance inst = g::make_mst_instance(std::move(tree), 48, 9, 4);
  auto eng = mpcmst::test::make_engine(inst.input_words());
  const auto idx = svc::SensitivityIndex::build(eng, inst);
  const auto shards = svc::ShardedSensitivityIndex::split(*idx, 3);
  const auto states = net::make_host_states(*shards, shards->receipt());
  ASSERT_EQ(states.size(), 3u);
  for (const net::ShardHostState& st : states) {
    mpcmst::ByteWriter w;
    net::encode_host_state(w, st);
    mpcmst::ByteReader r(w.data().data(), w.size());
    net::ShardHostState out;
    ASSERT_TRUE(net::decode_host_state(r, out));
    // Re-encode: a decoded state must serialize byte-identically (the codec
    // is the identity the bootstrap path relies on).
    mpcmst::ByteWriter w2;
    net::encode_host_state(w2, out);
    EXPECT_EQ(w2.data(), w.data());
    EXPECT_EQ(out.meta.shard_index, st.meta.shard_index);
    EXPECT_EQ(out.parent, st.parent);
    EXPECT_EQ(out.tree_w, st.tree_w);
  }
}

// --- loopback parity ------------------------------------------------------

std::vector<svc::Query> parity_queries(const g::Instance& inst) {
  auto qs = mpcmst::test::probe_queries(inst);
  // The fifth kind plus edge cases: still_mst batches (benign, violating,
  // and unknown-edge), out-of-range points, negative top-k (k is clamped
  // identically on both sides).
  const g::Vertex c = inst.tree.root == 0 ? 1 : 0;
  const g::Vertex p = inst.tree.parent[static_cast<std::size_t>(c)];
  qs.push_back(svc::Query::still_mst({{c, p, 1}}));
  qs.push_back(svc::Query::still_mst(
      {{c, p, 1000}, {inst.nontree[0].u, inst.nontree[0].v, 1}}));
  qs.push_back(svc::Query::still_mst({{-5, 2, 1}}));
  qs.push_back(svc::Query::price_change(-1, 3, 2));
  qs.push_back(svc::Query::corridor_headroom(
      static_cast<g::Vertex>(inst.n()) + 5, 0));
  qs.push_back(svc::Query::top_k_fragile(-1));
  qs.push_back(svc::Query::top_k_fragile(1 << 20));
  return qs;
}

void expect_same_answers(svc::QueryService& a, svc::QueryService& b,
                         const std::vector<svc::Query>& qs,
                         const char* what) {
  const auto xs = a.answer_batch(qs);
  const auto ys = b.answer_batch(qs);
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_EQ(xs[i], ys[i]) << what << ": query " << i << " "
                            << svc::to_string(qs[i]);
  for (std::size_t i = 0; i < qs.size(); i += 7)
    EXPECT_EQ(a.answer(qs[i]), b.answer(qs[i])) << what << " single " << i;
}

TEST(LoopbackParity, FourShardTierMatchesInProcess) {
  auto tree = g::random_recursive_tree(48, 21);
  g::assign_random_tree_weights(tree, 1, 40, 23);
  const g::Instance inst = g::make_mst_instance(std::move(tree), 96, 25, 4);

  // Four shard servers on loopback.
  std::vector<std::unique_ptr<net::ShardServer>> servers;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 4; ++i) {
    servers.push_back(std::make_unique<net::ShardServer>(
        net::Listener::bind("127.0.0.1:0")));
    servers.back()->start();
    endpoints.push_back(servers.back()->endpoint());
  }

  // In-process sharded live tier.
  auto eng1 = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig local_cfg;
  local_cfg.engine = &eng1;
  local_cfg.instance = &inst;
  local_cfg.sharded = true;
  local_cfg.num_shards = 4;
  local_cfg.live = true;
  auto local = svc::QueryService::open(local_cfg);

  // Networked leader over the same instance.
  auto eng2 = mpcmst::test::make_engine(inst.input_words());
  svc::ServiceConfig net_cfg;
  net_cfg.engine = &eng2;
  net_cfg.instance = &inst;
  net_cfg.live = true;
  net_cfg.remote_shards = endpoints;
  auto leader = svc::QueryService::open(net_cfg);

  EXPECT_EQ(leader->backend().fingerprint(), local->backend().fingerprint());
  EXPECT_EQ(leader->backend().num_shards(), 4u);
  expect_same_answers(*local, *leader, parity_queries(inst), "fresh");

  // A read-only remote attach sees the same tier.  Cache disabled: a
  // cached read-only attach serves at the newest epoch it has *observed*
  // (see make_remote_backend), which would make post-update parity depend
  // on probe order; uncached, every answer crosses the wire.
  svc::ServiceConfig ro_cfg;
  ro_cfg.remote_shards = endpoints;
  ro_cfg.options.cache_capacity = 0;
  auto remote = svc::QueryService::open(ro_cfg);
  expect_same_answers(*local, *remote, parity_queries(inst), "read-only");

  // Updates flow through both tiers identically: reweights, inserts (one
  // attaching a fresh vertex), deletes — patches and re-bootstraps both.
  const g::Vertex c = inst.tree.root == 0 ? 1 : 0;
  const g::Vertex p = inst.tree.parent[static_cast<std::size_t>(c)];
  const std::vector<svc::EdgeEvent> events{
      {svc::UpdateOp::kReweight, inst.nontree[0].u, inst.nontree[0].v,
       inst.nontree[0].w + 5},
      {svc::UpdateOp::kAddEdge, 3, 11, 2},  // likely a swap (cheap edge)
      {svc::UpdateOp::kReweight, c, p, 1},
      {svc::UpdateOp::kAddEdge, static_cast<g::Vertex>(inst.n()), 7, 9},
      {svc::UpdateOp::kRemoveEdge, inst.nontree[1].u, inst.nontree[1].v, 0},
  };
  const auto lr = local->ingest(events);
  const auto nr = leader->ingest(events);
  ASSERT_EQ(lr.size(), nr.size());
  for (std::size_t i = 0; i < lr.size(); ++i) {
    EXPECT_EQ(lr[i].report.status, nr[i].report.status) << i;
    EXPECT_EQ(lr[i].report.cls, nr[i].report.cls) << i;
    EXPECT_EQ(lr[i].new_fingerprint, nr[i].new_fingerprint) << i;
    EXPECT_EQ(lr[i].generation, nr[i].generation) << i;
  }
  EXPECT_EQ(leader->backend().generation(), local->backend().generation());

  const g::Instance after = local->updatable_backend()->instance_snapshot();
  expect_same_answers(*local, *leader, parity_queries(after), "post-update");

  // The read-only attach retries through the epoch change and converges.
  expect_same_answers(*local, *remote, parity_queries(after),
                      "read-only post-update");

  for (auto& s : servers) s->stop();
}

}  // namespace
