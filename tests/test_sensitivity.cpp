// Tests for MST sensitivity (Theorem 4.1): tree-edge mc values and non-tree
// maxima against brute force across the shape catalog, note accounting
// (Lemma 4.6 / Claim 4.13), case coverage, tie conventions.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sensitivity/sensitivity.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace mpc = mpcmst::mpc;
namespace seq = mpcmst::seq;
namespace sn = mpcmst::sensitivity;

namespace {

void expect_sensitivity_matches(const sn::SensitivityResult& res,
                                const g::Instance& inst,
                                const std::string& tag) {
  const auto brute = seq::sensitivity_brute(inst);
  // Tree edges.
  std::size_t seen = 0;
  for (const auto& t : res.tree.local()) {
    ++seen;
    EXPECT_EQ(t.mc, brute.tree_mc[t.v]) << tag << " tree edge child " << t.v;
    if (t.mc != g::kPosInfW) {
      EXPECT_EQ(t.sens, t.mc - t.w);
    }
  }
  EXPECT_EQ(seen, inst.n() - 1) << tag;
  // Non-tree edges.
  ASSERT_EQ(res.nontree.size(), inst.nontree.size()) << tag;
  for (const auto& e : res.nontree.local()) {
    EXPECT_EQ(e.maxpath, brute.nontree_maxpath[e.orig_id])
        << tag << " non-tree edge " << e.orig_id;
    EXPECT_EQ(e.sens, e.w - e.maxpath);
  }
}

class SensShapes : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {};

TEST_P(SensShapes, MatchesBruteForceOnMstInstance) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 40, 31);
  const auto inst = g::make_mst_instance(tree, 3 * tree.n, 33, 6);
  ASSERT_TRUE(seq::verify_mst(inst));
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = sn::mst_sensitivity_mpc(eng, inst);
  expect_sensitivity_matches(res, inst, GetParam().name);
}

TEST_P(SensShapes, MatchesBruteForceWithTies) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 6, 37);  // narrow range: many ties
  const auto inst = g::make_mst_instance(tree, 2 * tree.n, 39, 0);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = sn::mst_sensitivity_mpc(eng, inst);
  expect_sensitivity_matches(res, inst, GetParam().name);
}

TEST_P(SensShapes, NoteAccountingIsLinear) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 20, 41);
  const auto inst = g::make_mst_instance(tree, 2 * tree.n, 43, 5);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = sn::mst_sensitivity_mpc(eng, inst);
  // Claim 4.13: the live note pool stays O(n) (constant chosen generously).
  EXPECT_LE(res.stats.notes_peak, 8 * inst.n() + 64) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, SensShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(127)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& inf) {
      return inf.param.name;
    });

TEST(Sensitivity, UncoveredTreeEdgesAreInfinite) {
  // A path with one non-tree edge covering only part of it.
  g::Instance inst;
  inst.tree = g::path_tree(8);
  for (std::size_t v = 1; v < 8; ++v) inst.tree.weight[v] = 2;
  inst.tree.weight[0] = 0;
  inst.nontree = {{2, 5, 9}};  // covers edges with child 3,4,5
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = sn::mst_sensitivity_mpc(eng, inst);
  for (const auto& t : res.tree.local()) {
    if (t.v >= 3 && t.v <= 5) {
      EXPECT_EQ(t.mc, 9) << "child " << t.v;
      EXPECT_EQ(t.sens, 7);
    } else {
      EXPECT_EQ(t.mc, g::kPosInfW) << "child " << t.v;
    }
  }
  EXPECT_EQ(res.nontree.local().at(0).maxpath, 2);
  EXPECT_EQ(res.nontree.local().at(0).sens, 7);
}

TEST(Sensitivity, StarAndDeepPathExtremes) {
  for (auto&& tree : {g::star_tree(200), g::path_tree(200)}) {
    auto t = tree;
    g::assign_random_tree_weights(t, 1, 15, 47);
    const auto inst = g::make_mst_instance(t, 500, 49, 4);
    auto eng = mpcmst::test::make_engine(64 * inst.input_words());
    const auto res = sn::mst_sensitivity_mpc(eng, inst);
    expect_sensitivity_matches(res, inst, "extreme");
  }
}

TEST(Sensitivity, CaseCountersAreConsistent) {
  auto tree = g::random_recursive_tree(300, 51);
  g::assign_random_tree_weights(tree, 1, 30, 53);
  const auto inst = g::make_mst_instance(tree, 600, 55, 5);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto res = sn::mst_sensitivity_mpc(eng, inst);
  // Case 1 kills an edge each time; cases 4/5 truncate.  All non-negative
  // and bounded by total edge work.
  EXPECT_GT(res.stats.case1 + res.stats.case4 + res.stats.case5, 0u);
  EXPECT_GT(res.stats.contraction_steps, 0u);
}

TEST(Sensitivity, RoundsScaleWithDiameterNotSize) {
  const std::size_t n = 1 << 10;
  auto run = [&](g::RootedTree tree) {
    const auto inst = g::make_layered_instance(std::move(tree), n, 57);
    auto eng = mpcmst::test::make_engine(64 * inst.input_words());
    (void)sn::mst_sensitivity_mpc(eng, inst);
    return eng.rounds();
  };
  EXPECT_LT(run(g::kary_tree(n, 8)), run(g::path_tree(n)));
}

}  // namespace
