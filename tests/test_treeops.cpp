// Tests for the pointer-doubling toolkit and Euler-tour machinery:
// depths, interval labels, subtree/root-path aggregates, validation, rooting.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "graph/generators.hpp"
#include "mpc/ops.hpp"
#include "seq/oracles.hpp"
#include "test_util.hpp"
#include "treeops/doubling.hpp"
#include "treeops/euler.hpp"
#include "treeops/interval_label.hpp"

namespace g = mpcmst::graph;
namespace mpc = mpcmst::mpc;
namespace to = mpcmst::treeops;
namespace seq = mpcmst::seq;

namespace {

class TreeopsShapes
    : public ::testing::TestWithParam<mpcmst::test::ShapeCase> {};

TEST_P(TreeopsShapes, DepthsMatchSequential) {
  const auto& tree = GetParam().tree;
  auto eng = mpcmst::test::make_engine(8 * tree.n);
  const auto dtree = to::load_tree(eng, tree);
  const auto res = to::compute_depths(dtree, tree.root);
  const seq::SeqTreeIndex idx(tree);
  EXPECT_EQ(res.height, idx.height());
  for (const auto& d : res.depth.local())
    EXPECT_EQ(d.depth, idx.depth(d.v)) << "vertex " << d.v;
  // Doubling converges in ~log2(height) iterations.
  std::size_t logh = 0;
  while ((std::int64_t{1} << logh) < std::max<std::int64_t>(idx.height(), 1))
    ++logh;
  EXPECT_LE(res.iterations, logh + 2) << "too many doubling iterations";
}

TEST_P(TreeopsShapes, IntervalLabelsMatchCanonicalDfs) {
  const auto& tree = GetParam().tree;
  auto eng = mpcmst::test::make_engine(8 * tree.n);
  const auto dtree = to::load_tree(eng, tree);
  const auto res = to::dfs_interval_labels(dtree, tree.root);
  const seq::SeqTreeIndex idx(tree);
  for (const auto& iv : res.intervals.local()) {
    EXPECT_EQ(iv.lo, idx.pre(iv.v)) << "pre of " << iv.v;
    EXPECT_EQ(iv.hi, idx.pre(iv.v) + idx.subtree_size(iv.v) - 1)
        << "hi of " << iv.v;
  }
}

TEST_P(TreeopsShapes, SubtreeAggregateSumAndMax) {
  const auto& tree = GetParam().tree;
  auto eng = mpcmst::test::make_engine(8 * tree.n);
  const auto dtree = to::load_tree(eng, tree);
  const auto depths = to::compute_depths(dtree, tree.root);
  // Value of vertex v: (v * 7 + 3) % 101, so sums are nontrivial.
  auto vals = mpc::map<to::VertexValue>(dtree, [](const to::TreeRec& t) {
    return to::VertexValue{t.v, (t.v * 7 + 3) % 101};
  });
  const auto sums =
      to::subtree_aggregate(dtree, depths.depth, vals, std::plus<>{});
  const auto maxs = to::subtree_aggregate(
      dtree, depths.depth, vals,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });

  // Sequential reference by accumulating each vertex into all its ancestors.
  std::vector<std::int64_t> ref_sum(tree.n, 0), ref_max(tree.n, INT64_MIN);
  for (std::size_t v = 0; v < tree.n; ++v) {
    const std::int64_t val = (static_cast<std::int64_t>(v) * 7 + 3) % 101;
    g::Vertex x = static_cast<g::Vertex>(v);
    while (true) {
      ref_sum[x] += val;
      ref_max[x] = std::max(ref_max[x], val);
      if (x == tree.root) break;
      x = tree.parent[x];
    }
  }
  for (const auto& s : sums.local()) EXPECT_EQ(s.val, ref_sum[s.v]);
  for (const auto& s : maxs.local()) EXPECT_EQ(s.val, ref_max[s.v]);
}

TEST_P(TreeopsShapes, RootpathAccumulateMax) {
  auto tree = GetParam().tree;
  g::assign_random_tree_weights(tree, 1, 40, 3);
  auto eng = mpcmst::test::make_engine(8 * tree.n);
  const auto dtree = to::load_tree(eng, tree);
  auto vals = mpc::map<to::VertexValue>(dtree, [](const to::TreeRec& t) {
    return to::VertexValue{t.v, t.v == t.parent ? INT64_MIN : t.w};
  });
  const auto res = to::rootpath_accumulate(
      dtree, tree.root, vals,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
      INT64_MIN);
  // acc(v) = max edge weight on the path v..root.
  for (const auto& a : res.acc.local()) {
    std::int64_t ref = INT64_MIN;
    for (g::Vertex x = a.v; x != tree.root; x = tree.parent[x])
      ref = std::max(ref, tree.weight[x]);
    EXPECT_EQ(a.val, ref) << "vertex " << a.v;
  }
}

TEST_P(TreeopsShapes, SparseAggregateMatchesBrute) {
  const auto& tree = GetParam().tree;
  auto eng = mpcmst::test::make_engine(16 * tree.n);
  const auto dtree = to::load_tree(eng, tree);
  const auto depths = to::compute_depths(dtree, tree.root);
  // Entries: each vertex v contributes (slot = v % 5, val = v % 17).
  std::vector<to::SlotValue> entries;
  for (std::size_t v = 0; v < tree.n; ++v)
    entries.push_back({static_cast<g::Vertex>(v),
                       static_cast<std::int64_t>(v % 5),
                       static_cast<std::int64_t>(v % 17)});
  auto dent = mpc::scatter(eng, entries);
  const auto agg = to::subtree_aggregate_sparse(dtree, depths.depth, dent);
  // Brute: min per (ancestor, slot).
  std::map<std::pair<g::Vertex, std::int64_t>, std::int64_t> ref;
  for (std::size_t v = 0; v < tree.n; ++v) {
    g::Vertex x = static_cast<g::Vertex>(v);
    while (true) {
      auto key = std::make_pair(x, static_cast<std::int64_t>(v % 5));
      auto it = ref.find(key);
      const std::int64_t val = static_cast<std::int64_t>(v % 17);
      if (it == ref.end() || val < it->second) ref[key] = val;
      if (x == tree.root) break;
      x = tree.parent[x];
    }
  }
  ASSERT_EQ(agg.size(), ref.size());
  for (const auto& e : agg.local()) {
    auto it = ref.find({e.v, e.slot});
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(e.val, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, TreeopsShapes,
    ::testing::ValuesIn(mpcmst::test::shape_catalog(193)),
    [](const ::testing::TestParamInfo<mpcmst::test::ShapeCase>& info) {
      return info.param.name;
    });

TEST(Validate, AcceptsTreesRejectsCyclesAndDoubleRoots) {
  auto eng = mpcmst::test::make_engine(4096);
  {
    const auto tree = g::kary_tree(64, 3);
    const auto dtree = to::load_tree(eng, tree);
    EXPECT_TRUE(to::validate_rooted_tree(dtree, tree.root, 64));
  }
  {
    // 0 -> ... with a 3-cycle among 5,6,7.
    g::RootedTree bad = g::path_tree(8);
    bad.parent[5] = 7;
    bad.parent[6] = 5;
    bad.parent[7] = 6;
    const auto dtree = to::load_tree(eng, bad);
    EXPECT_FALSE(to::validate_rooted_tree(dtree, bad.root, 8));
  }
  {
    g::RootedTree two_roots = g::path_tree(8);
    two_roots.parent[4] = 4;  // second self-loop
    const auto dtree = to::load_tree(eng, two_roots);
    EXPECT_FALSE(to::validate_rooted_tree(dtree, two_roots.root, 8));
  }
}

TEST(Euler, RootingRecoversParentStructure) {
  for (const auto& sc : mpcmst::test::shape_catalog(157, 19)) {
    auto tree = sc.tree;
    g::assign_random_tree_weights(tree, 1, 9, 5);
    auto eng = mpcmst::test::make_engine(32 * tree.n);
    const auto rooted =
        to::root_tree_euler(eng, tree.n, tree.tree_edges(), tree.root);
    ASSERT_TRUE(rooted.tree.well_formed()) << sc.name;
    // Same root, same parent relation (orientation toward the root is
    // unique for a tree).
    EXPECT_EQ(rooted.tree.root, tree.root);
    for (std::size_t v = 0; v < tree.n; ++v) {
      EXPECT_EQ(rooted.tree.parent[v], tree.parent[v]) << sc.name << " v=" << v;
      EXPECT_EQ(rooted.tree.weight[v], tree.weight[v]) << sc.name << " v=" << v;
    }
  }
}

TEST(Euler, IntervalsValidForAncestorTests) {
  for (const auto& sc : mpcmst::test::shape_catalog(101, 23)) {
    const auto& tree = sc.tree;
    auto eng = mpcmst::test::make_engine(32 * tree.n);
    const auto dtree = to::load_tree(eng, tree);
    const auto res = to::euler_interval_labels(dtree, tree.root, tree.n);
    std::vector<to::IntervalRec> byv(tree.n);
    for (const auto& iv : res.intervals.local()) byv[iv.v] = iv;
    const seq::SeqTreeIndex idx(tree);
    for (std::size_t i = 0; i < 400; ++i) {
      const auto a = static_cast<g::Vertex>((i * 37) % tree.n);
      const auto b = static_cast<g::Vertex>((i * 61 + 29) % tree.n);
      const bool anc = idx.is_ancestor(a, b);
      EXPECT_EQ(anc, byv[a].lo <= byv[b].lo && byv[b].hi <= byv[a].hi)
          << sc.name << " " << a << "," << b;
    }
    // Interval widths encode subtree sizes even in tour order.
    for (std::size_t v = 0; v < tree.n; ++v)
      EXPECT_EQ(byv[v].hi - byv[v].lo + 1,
                idx.subtree_size(static_cast<g::Vertex>(v)));
  }
}

TEST(Rounds, DepthRoundsScaleWithLogHeightNotN) {
  // Same n, very different heights: the path needs many more doubling
  // iterations than the star; both use O(log height) rounds.
  const std::size_t n = 512;
  auto run = [&](const g::RootedTree& tree) {
    auto eng = mpcmst::test::make_engine(8 * n);
    const auto dtree = to::load_tree(eng, tree);
    const auto res = to::compute_depths(dtree, tree.root);
    return std::pair<std::size_t, std::size_t>(res.iterations, eng.rounds());
  };
  const auto [it_star, rounds_star] = run(g::star_tree(n));
  const auto [it_path, rounds_path] = run(g::path_tree(n));
  EXPECT_LE(it_star, 2u);
  EXPECT_GE(it_path, 8u);  // log2(511) ~ 9
  EXPECT_LT(rounds_star, rounds_path);
}

}  // namespace
