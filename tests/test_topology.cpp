// Topology-churn suite for the dynamic edge-set layer
// (src/service/update.hpp): add_edge / remove_edge / ingest on the live
// backends, held — after every step — to byte-identical answers against a
// fresh full rebuild of the canonical post-event instance, on the monolith
// and shard counts {1, 3, 8}.  The soak mixes reweights, non-tree inserts
// (including duplicate-key inserts), insert-swaps, vertex attaches,
// non-tree deletes (slot tombstoning + label repair), tree deletes
// (replacement promotion), and refused bridge deletes (kWouldDisconnect,
// state unchanged) — journaled throughout, with recovery bounces and
// grown/shrunk-column snapshot round-trips.  Also here: the fail-stop
// commit regression (a write fault injected via set_persist_crash_hook must
// poison the backend, never serve state ahead of the journal) and the
// epoch-ordering regression (the sharded backend must not publish the new
// generation before scatter() has patched the shards).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "graph/generators.hpp"
#include "service/journal.hpp"
#include "service/router.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "service/update.hpp"
#include "test_util.hpp"

namespace g = mpcmst::graph;
namespace svc = mpcmst::service;

namespace {

std::shared_ptr<const svc::SensitivityIndex> fresh_build(
    const g::Instance& inst) {
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  return svc::SensitivityIndex::build(eng, inst);
}

mpcmst::test::ScratchDir soak_dir(const std::string& name) {
  return mpcmst::test::ScratchDir(
      (std::filesystem::path(::testing::TempDir()) /
       ("mpcmst_topology_" + name))
          .string());
}

/// Non-tombstoned non-tree slots of the current instance.
std::vector<std::size_t> live_slots(const g::Instance& inst) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < inst.nontree.size(); ++i)
    if (inst.nontree[i].u != inst.nontree[i].v) out.push_back(i);
  return out;
}

/// Drive one EdgeEvent through a backend's public update surface (the same
/// dispatch recover() uses when replaying journal records).
svc::UpdateReceipt apply_event(svc::UpdatableBackend& b,
                               const svc::EdgeEvent& ev) {
  switch (ev.op) {
    case svc::UpdateOp::kReweight:
      return b.apply_update(ev.u, ev.v, ev.w);
    case svc::UpdateOp::kAddEdge:
      return b.add_edge(ev.u, ev.v, ev.w);
    case svc::UpdateOp::kRemoveEdge:
      return b.remove_edge(ev.u, ev.v);
  }
  return {};
}

/// All five query kinds against the current instance: the four point/top-k
/// families on every live edge (tombstones excluded — they resolve as
/// unknown), plus still_mst scenarios over a deterministic slice of edges,
/// plus probes of tombstoned and out-of-range keys.
std::vector<svc::Query> topology_queries(const g::Instance& inst) {
  std::vector<svc::Query> out;
  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<g::Vertex>(v) == inst.tree.root) continue;
    const auto c = static_cast<g::Vertex>(v);
    const g::Vertex p = inst.tree.parent[v];
    out.push_back(svc::Query::corridor_headroom(c, p));
    out.push_back(svc::Query::replacement_edge(p, c));
    out.push_back(
        svc::Query::price_change(c, p, static_cast<g::Weight>(v % 9) - 4));
  }
  std::vector<svc::PriceChange> scenario;
  for (const std::size_t i : live_slots(inst)) {
    const g::WEdge& e = inst.nontree[i];
    out.push_back(svc::Query::corridor_headroom(e.u, e.v));
    out.push_back(svc::Query::replacement_edge(e.u, e.v));
    out.push_back(svc::Query::price_change(e.u, e.v, -2));
    if (scenario.size() < 6)
      scenario.push_back(svc::PriceChange{
          e.u, e.v,
          std::max<g::Weight>(1, e.w - 3 + static_cast<g::Weight>(i % 7))});
  }
  if (!scenario.empty()) out.push_back(svc::Query::still_mst(scenario));
  scenario.clear();
  for (std::size_t v = 1; v < inst.n() && scenario.size() < 4; v += 3) {
    if (static_cast<g::Vertex>(v) == inst.tree.root) continue;
    scenario.push_back(
        svc::PriceChange{static_cast<g::Vertex>(v), inst.tree.parent[v],
                         inst.tree.weight[v] + static_cast<g::Weight>(v % 5)});
  }
  if (!scenario.empty()) out.push_back(svc::Query::still_mst(scenario));
  out.push_back(svc::Query::corridor_headroom(0, 0));  // tombstone key
  out.push_back(
      svc::Query::corridor_headroom(0, static_cast<g::Vertex>(inst.n()) + 9));
  for (const std::int64_t k :
       {1L, 5L, static_cast<long>(inst.n() / 2), static_cast<long>(inst.n())})
    out.push_back(svc::Query::top_k_fragile(k));
  return out;
}

void expect_instances_equal(const g::Instance& a, const g::Instance& b,
                            std::size_t step) {
  ASSERT_EQ(a.tree.root, b.tree.root) << "step " << step;
  ASSERT_EQ(a.tree.parent, b.tree.parent) << "step " << step;
  ASSERT_EQ(a.tree.weight, b.tree.weight) << "step " << step;
  ASSERT_EQ(a.nontree, b.nontree) << "step " << step;
}

void expect_reports_equal(const svc::UpdateReport& a,
                          const svc::UpdateReport& b, std::size_t step) {
  ASSERT_EQ(a.status, b.status) << "step " << step;
  ASSERT_EQ(a.cls, b.cls) << "step " << step;
  ASSERT_EQ(a.edge, b.edge) << "step " << step;
  ASSERT_EQ(a.old_w, b.old_w) << "step " << step;
  ASSERT_EQ(a.new_w, b.new_w) << "step " << step;
  ASSERT_EQ(a.swapped_out, b.swapped_out) << "step " << step;
  ASSERT_EQ(a.swapped_in, b.swapped_in) << "step " << step;
}

/// One random topology/reweight event against the CURRENT instance.  Pure
/// function of (inst, rng) so the soak stays reproducible.
svc::EdgeEvent pick_event(const g::Instance& inst, std::mt19937_64& rng) {
  const auto n = static_cast<g::Vertex>(inst.n());
  const auto slots = live_slots(inst);
  const std::uint64_t roll = rng() % 12;
  const auto random_weight = [&] {
    return 1 + static_cast<g::Weight>(rng() % 60);
  };
  if (roll < 3) {  // reweight an existing edge
    if (roll < 2 || slots.empty()) {
      g::Vertex u;
      do {
        u = static_cast<g::Vertex>(rng() % inst.n());
      } while (u == inst.tree.root);
      return {svc::UpdateOp::kReweight, u,
              inst.tree.parent[static_cast<std::size_t>(u)], random_weight()};
    }
    const g::WEdge& e = inst.nontree[slots[rng() % slots.size()]];
    return {svc::UpdateOp::kReweight, e.u, e.v, random_weight()};
  }
  if (roll == 3 && inst.n() < 72) {  // attach a fresh leaf vertex
    const auto anchor = static_cast<g::Vertex>(rng() % inst.n());
    return {svc::UpdateOp::kAddEdge, n, anchor, random_weight()};
  }
  if (roll == 4 && !slots.empty()) {  // duplicate-key insert
    const g::WEdge& e = inst.nontree[slots[rng() % slots.size()]];
    return {svc::UpdateOp::kAddEdge, e.u, e.v, random_weight()};
  }
  if (roll < 8) {  // random insert (may duplicate a tree edge's key)
    g::Vertex u, v;
    do {
      u = static_cast<g::Vertex>(rng() % inst.n());
      v = static_cast<g::Vertex>(rng() % inst.n());
    } while (u == v);
    return {svc::UpdateOp::kAddEdge, u, v, random_weight()};
  }
  if (roll < 10) {  // remove a tree edge (bridges are refused)
    g::Vertex u;
    do {
      u = static_cast<g::Vertex>(rng() % inst.n());
    } while (u == inst.tree.root);
    return {svc::UpdateOp::kRemoveEdge, u,
            inst.tree.parent[static_cast<std::size_t>(u)], 0};
  }
  if (!slots.empty()) {  // remove a non-tree edge
    const g::WEdge& e = inst.nontree[slots[rng() % slots.size()]];
    return {svc::UpdateOp::kRemoveEdge, e.u, e.v, 0};
  }
  return {svc::UpdateOp::kAddEdge, 0, static_cast<g::Vertex>(1 + rng() % 5),
          random_weight()};
}

TEST(Topology, ChurnOracleSoak) {
  auto tree = g::random_recursive_tree(36, 1201);
  g::assign_random_tree_weights(tree, 1, 40, 1203);
  const auto base = g::make_mst_instance(std::move(tree), 72, 1207,
                                         /*slack=*/4);

  auto eng = mpcmst::test::make_engine(64 * base.input_words());
  auto mono = svc::LiveMonolithBackend::build(eng, base);
  const auto snapshot = fresh_build(base);
  std::vector<std::shared_ptr<svc::LiveShardedBackend>> sharded;
  for (const std::size_t shards : {1u, 3u, 8u})
    sharded.push_back(
        std::make_shared<svc::LiveShardedBackend>(base, snapshot, shards));

  // Journal every tier through the whole soak; the shard tiers compact
  // mid-soak so recovery also exercises snapshots with grown/tombstoned
  // non-tree columns and attached vertices.
  const auto persist_root = soak_dir("churn");
  std::vector<std::pair<svc::PersistenceConfig, svc::UpdatableBackend*>>
      persisted;
  {
    svc::PersistenceConfig cfg{persist_root.sub("mono"), svc::SyncMode::kCommit,
                               /*snapshot_every_n=*/0};
    mono->attach_persistence(svc::Persistence::create_fresh(cfg));
    mono->checkpoint();
    persisted.emplace_back(cfg, mono.get());
  }
  for (std::size_t b = 0; b < sharded.size(); ++b) {
    svc::PersistenceConfig cfg{persist_root.sub("shard" + std::to_string(b)),
                               svc::SyncMode::kNever, /*snapshot_every_n=*/25};
    sharded[b]->attach_persistence(svc::Persistence::create_fresh(cfg));
    sharded[b]->checkpoint();
    persisted.emplace_back(cfg, sharded[b].get());
  }

  g::Instance oracle_inst = base;  // mutated by the pure canonical transform
  std::mt19937_64 rng(0xd1ce);
  std::size_t inserts = 0, insert_swaps = 0, attaches = 0, dup_inserts = 0;
  std::size_t nontree_deletes = 0, promotions = 0, refusals = 0,
              reused_slots = 0;
  g::Vertex last_attached = -1;
  for (std::size_t step = 0; step < 220; ++step) {
    svc::EdgeEvent ev;
    if (last_attached >= 0) {
      // A just-attached leaf edge is a guaranteed bridge: deleting it must
      // be refused deterministically, not only when the rng happens to hit
      // one.
      ev = svc::EdgeEvent{svc::UpdateOp::kRemoveEdge, last_attached,
                          oracle_inst.tree
                              .parent[static_cast<std::size_t>(last_attached)],
                          0};
      last_attached = -1;
    } else {
      ev = pick_event(oracle_inst, rng);
    }

    const bool slot_reuse =
        ev.op == svc::UpdateOp::kAddEdge &&
        static_cast<std::size_t>(ev.u) != oracle_inst.n() &&
        static_cast<std::size_t>(ev.v) != oracle_inst.n() &&
        live_slots(oracle_inst).size() < oracle_inst.nontree.size();

    // --- one canonical transform, applied everywhere ---
    const std::uint64_t gen_before = mono->generation();
    const svc::UpdateReport expected =
        svc::apply_event_to_instance(oracle_inst, ev);
    switch (expected.cls) {
      case svc::UpdateClass::kNonTreeInsert:
        ++inserts;
        if (slot_reuse) ++reused_slots;
        break;
      case svc::UpdateClass::kInsertSwap:
        ++insert_swaps;
        break;
      case svc::UpdateClass::kVertexAttach:
        ++attaches;
        last_attached = static_cast<g::Vertex>(oracle_inst.n() - 1);
        break;
      case svc::UpdateClass::kNonTreeDelete:
        ++nontree_deletes;
        break;
      case svc::UpdateClass::kTreeDeletePromote:
        ++promotions;
        break;
      default:
        break;
    }
    if (expected.status == svc::Status::kWouldDisconnect) ++refusals;
    if (expected.cls == svc::UpdateClass::kNonTreeInsert) {
      const auto key = svc::endpoint_key(ev.u, ev.v);
      std::size_t dups = 0;
      for (const std::size_t i : live_slots(oracle_inst))
        if (svc::endpoint_key(oracle_inst.nontree[i].u,
                              oracle_inst.nontree[i].v) == key)
          ++dups;
      if (dups > 1) ++dup_inserts;
    }

    const svc::UpdateReceipt mono_receipt = apply_event(*mono, ev);
    expect_reports_equal(mono_receipt.report, expected, step);
    for (auto& backend : sharded)
      expect_reports_equal(apply_event(*backend, ev).report, expected, step);

    if (expected.status != svc::Status::kOk) {
      // Refused/unknown events must leave every tier untouched.
      ASSERT_EQ(mono->generation(), gen_before) << "step " << step;
      expect_instances_equal(mono->instance_snapshot(), oracle_inst, step);
      continue;
    }

    expect_instances_equal(mono->instance_snapshot(), oracle_inst, step);
    expect_instances_equal(sharded.back()->instance_snapshot(), oracle_inst,
                           step);

    // --- fresh full rebuild of the post-event instance: the oracle ---
    const auto oracle_idx = fresh_build(oracle_inst);
    ASSERT_TRUE(oracle_idx->is_mst()) << "step " << step;
    const svc::MonolithicBackend oracle(oracle_idx);
    ASSERT_EQ(mono->fingerprint(), oracle_idx->fingerprint())
        << "step " << step;
    for (auto& backend : sharded) {
      ASSERT_EQ(backend->fingerprint(), oracle_idx->fingerprint())
          << "step " << step;
      ASSERT_EQ(backend->violations(), 0u) << "step " << step;
    }
    const auto queries = topology_queries(oracle_inst);
    for (const svc::Query& q : queries) {
      const svc::Answer want = oracle.answer(q);
      const svc::Answer got = mono->answer(q);
      ASSERT_EQ(got, want) << "step " << step << " monolith " << to_string(q)
                           << "\n  want: " << to_string(want)
                           << "\n  got:  " << to_string(got);
      for (std::size_t b = 0; b < sharded.size(); ++b) {
        const svc::Answer s = sharded[b]->answer(q);
        ASSERT_EQ(s, want) << "step " << step << " sharded[" << b << "] "
                           << to_string(q) << "\n  want: " << to_string(want)
                           << "\n  got:  " << to_string(s);
      }
    }

    // --- every 50 steps: bounce every tier through journal + recover ---
    if (step % 50 == 49) {
      for (auto& [cfg, live] : persisted) {
        svc::QueryService::RecoveredInfo info;
        auto rec = svc::QueryService::recover(cfg, {}, &info);
        ASSERT_EQ(rec->backend().generation(), live->generation())
            << "step " << step << " " << cfg.dir;
        ASSERT_EQ(rec->backend().fingerprint(), live->fingerprint())
            << "step " << step << " " << cfg.dir;
        ASSERT_EQ(info.snapshot_generation + info.replayed_records,
                  rec->backend().generation())
            << "step " << step << " " << cfg.dir;
        for (const svc::Query& q : queries)
          ASSERT_EQ(rec->backend().answer(q), oracle.answer(q))
              << "step " << step << " recovered " << cfg.dir << " "
              << to_string(q);
      }
    }
  }

  // The soak must actually have exercised every regime.
  EXPECT_GT(inserts, 20u);
  EXPECT_GT(insert_swaps, 5u);
  EXPECT_GT(attaches, 3u);
  EXPECT_GT(dup_inserts, 2u);
  EXPECT_GT(nontree_deletes, 10u);
  EXPECT_GT(promotions, 3u);
  EXPECT_GT(refusals, 3u);
  EXPECT_GT(reused_slots, 5u);
  EXPECT_EQ(mono->generation(), sharded.front()->generation());

  // Snapshot round-trip of the churned tier: grown tree columns (attached
  // vertices) and tombstoned non-tree slots must come back byte-for-byte.
  const auto snap_dir = soak_dir("roundtrip");
  const auto final_idx = fresh_build(oracle_inst);
  const auto final_shards = svc::ShardedSensitivityIndex::split(*final_idx, 3);
  svc::write_snapshot(snap_dir.str(), 0, *final_idx, final_shards.get());
  const auto image =
      svc::load_snapshot_file(svc::snapshot_path(snap_dir.str(), 0));
  ASSERT_TRUE(image.has_value());
  ASSERT_TRUE(image->sharded());
  EXPECT_EQ(image->index->fingerprint(), final_idx->fingerprint());
  EXPECT_EQ(image->index->nontree_labels(), final_idx->nontree_labels());
  EXPECT_EQ(image->instance.nontree, oracle_inst.nontree);
  EXPECT_EQ(image->instance.tree.parent, oracle_inst.tree.parent);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(image->shards->shard(s).nontree, final_shards->shard(s).nontree);
}

TEST(Topology, IngestBatchMatchesSequentialApply) {
  auto tree = g::random_recursive_tree(30, 1301);
  g::assign_random_tree_weights(tree, 1, 30, 1303);
  const auto base = g::make_mst_instance(std::move(tree), 60, 1307,
                                         /*slack=*/4);
  auto eng = mpcmst::test::make_engine(64 * base.input_words());

  const auto persist_root = soak_dir("ingest");
  svc::PersistenceConfig cfg{persist_root.sub("tier"), svc::SyncMode::kCommit,
                             /*snapshot_every_n=*/0};
  auto service = svc::QueryService::build_live_sharded(eng, base, 3,
                                                       {.chunk_size = 16}, cfg);

  // Deterministic event stream against the evolving instance (the canonical
  // transform tracks what each event will see).
  g::Instance oracle_inst = base;
  std::mt19937_64 rng(0xfee1);
  std::vector<svc::EdgeEvent> events;
  std::vector<svc::UpdateReport> expected;
  std::uint64_t expect_gen = 0;
  for (std::size_t i = 0; i < 80; ++i) {
    const svc::EdgeEvent ev = pick_event(oracle_inst, rng);
    events.push_back(ev);
    expected.push_back(svc::apply_event_to_instance(oracle_inst, ev));
    if (expected.back().status == svc::Status::kOk &&
        expected.back().cls != svc::UpdateClass::kNoChange)
      ++expect_gen;
  }

  const auto receipts = service->ingest(events);
  ASSERT_EQ(receipts.size(), events.size());
  for (std::size_t i = 0; i < receipts.size(); ++i)
    expect_reports_equal(receipts[i].report, expected[i], i);
  EXPECT_EQ(service->backend().generation(), expect_gen);

  // One journal record per applied event, each carrying its op byte.
  const auto scan = svc::Journal::scan(svc::journal_path(cfg.dir));
  EXPECT_EQ(scan.version, 2u);
  EXPECT_EQ(scan.records.size(), expect_gen);

  // Byte-identical to a fresh rebuild, and to a recovery of the journal.
  const svc::MonolithicBackend oracle(fresh_build(oracle_inst));
  const auto queries = topology_queries(oracle_inst);
  for (const auto& q : queries)
    ASSERT_EQ(service->backend().answer(q), oracle.answer(q)) << to_string(q);
  service.reset();  // release the journal before recovering
  auto recovered = svc::QueryService::recover(cfg);
  EXPECT_EQ(recovered->backend().generation(), expect_gen);
  for (const auto& q : queries)
    ASSERT_EQ(recovered->backend().answer(q), oracle.answer(q))
        << to_string(q);
}

// ---------------------------------------------------------------------------
// Fail-stop commit path: a write fault during the journal commit must poison
// the backend (it mutated before the commit), never serve state the journal
// does not hold, and recovery must land on the pre-fault state.

std::atomic<bool> g_fail_commit{false};

void failing_commit_hook(const char* phase) {
  if (g_fail_commit.load(std::memory_order_acquire) &&
      std::strcmp(phase, "journal-mid-record") == 0)
    throw std::runtime_error("injected write fault");
}

/// Clears the process-wide crash hook even when an ASSERT unwinds the test.
struct HookGuard {
  explicit HookGuard(void (*hook)(const char*)) {
    svc::set_persist_crash_hook(hook);
  }
  ~HookGuard() {
    g_fail_commit.store(false);
    svc::set_persist_crash_hook(nullptr);
  }
};

void run_fail_stop_case(const std::shared_ptr<svc::UpdatableBackend>& backend,
                        const svc::PersistenceConfig& cfg) {
  backend->attach_persistence(svc::Persistence::create_fresh(cfg));
  backend->checkpoint();
  HookGuard guard(&failing_commit_hook);

  // One healthy update first: the two-half hook write path itself is fine.
  const auto inst = backend->instance_snapshot();
  const auto c = static_cast<g::Vertex>(inst.tree.root == 0 ? 1 : 0);
  const g::Vertex p = inst.tree.parent[static_cast<std::size_t>(c)];
  const auto ok = backend->apply_update(c, p, inst.tree.weight[c] + 1);
  ASSERT_EQ(ok.report.status, svc::Status::kOk);

  const std::uint64_t gen_before = backend->generation();
  const std::uint64_t fp_before = backend->fingerprint();
  const auto inst_before = backend->instance_snapshot();

  // Inject the fault mid-commit on an epoch-advancing update.
  g_fail_commit.store(true, std::memory_order_release);
  EXPECT_THROW((void)backend->apply_update(c, p, inst.tree.weight[c] + 2),
               std::runtime_error);
  g_fail_commit.store(false, std::memory_order_release);

  // Fail-stop: the backend refuses every subsequent read and write.
  EXPECT_THROW((void)backend->answer(svc::Query::corridor_headroom(c, p)),
               mpcmst::ModelError);
  EXPECT_THROW((void)backend->apply_update(c, p, 5), mpcmst::ModelError);
  EXPECT_THROW((void)backend->ingest({svc::EdgeEvent{
                   svc::UpdateOp::kReweight, c, p, 6}}),
               mpcmst::ModelError);
  EXPECT_THROW(backend->checkpoint(), mpcmst::ModelError);

  // Recovery truncates the torn half-record and lands exactly on the state
  // the journal acknowledged — the mutated-but-uncommitted update is gone.
  svc::QueryService::RecoveredInfo info;
  auto recovered = svc::QueryService::recover(cfg, {}, &info);
  EXPECT_TRUE(info.journal_was_torn);
  EXPECT_EQ(recovered->backend().generation(), gen_before);
  EXPECT_EQ(recovered->backend().fingerprint(), fp_before);
  const auto rec_inst = recovered->updatable_backend()->instance_snapshot();
  EXPECT_EQ(rec_inst.tree.weight, inst_before.tree.weight);
  EXPECT_EQ(rec_inst.nontree, inst_before.nontree);

  const svc::MonolithicBackend oracle(fresh_build(inst_before));
  const auto q = svc::Query::corridor_headroom(c, p);
  EXPECT_EQ(recovered->backend().answer(q), oracle.answer(q));
}

TEST(Topology, CommitFaultPoisonsMonolith) {
  auto tree = g::random_recursive_tree(24, 1401);
  g::assign_random_tree_weights(tree, 1, 25, 1403);
  const auto inst = g::make_mst_instance(std::move(tree), 48, 1407, 4);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto dir = soak_dir("failstop_mono");
  run_fail_stop_case(
      svc::LiveMonolithBackend::build(eng, inst),
      svc::PersistenceConfig{dir.str(), svc::SyncMode::kCommit, 0});
}

TEST(Topology, CommitFaultPoisonsSharded) {
  auto tree = g::random_recursive_tree(24, 1501);
  g::assign_random_tree_weights(tree, 1, 25, 1503);
  const auto inst = g::make_mst_instance(std::move(tree), 48, 1507, 4);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto dir = soak_dir("failstop_shard");
  run_fail_stop_case(
      svc::LiveShardedBackend::build(eng, inst, 3),
      svc::PersistenceConfig{dir.str(), svc::SyncMode::kCommit, 0});
}

TEST(Topology, IngestFaultPoisonsMidBatch) {
  // A fault in the middle of a group commit: every event of the batch was
  // applied but the append died half-written, so the tier must poison (no
  // receipt was acknowledged) and recovery must land on a CONSISTENT PREFIX
  // of the batch — the intact journal frames, never the full in-memory
  // state the commit failed to make durable.
  auto tree = g::random_recursive_tree(24, 1601);
  g::assign_random_tree_weights(tree, 1, 25, 1603);
  const auto inst = g::make_mst_instance(std::move(tree), 48, 1607, 4);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  const auto dir = soak_dir("failstop_ingest");
  const svc::PersistenceConfig cfg{dir.str(), svc::SyncMode::kCommit, 0};
  auto backend = svc::LiveMonolithBackend::build(eng, inst);
  backend->attach_persistence(svc::Persistence::create_fresh(cfg));
  backend->checkpoint();
  HookGuard guard(&failing_commit_hook);

  const auto c = static_cast<g::Vertex>(inst.tree.root == 0 ? 1 : 0);
  const g::Vertex p = inst.tree.parent[static_cast<std::size_t>(c)];
  const std::vector<svc::EdgeEvent> batch = {
      svc::EdgeEvent{svc::UpdateOp::kReweight, c, p, inst.tree.weight[c] + 1},
      svc::EdgeEvent{svc::UpdateOp::kAddEdge, c, p, 50}};
  // Canonical fingerprint after each prefix of the batch (every event here
  // advances the epoch, so prefix k <=> generation k).
  std::vector<std::uint64_t> prefix_fp = {backend->fingerprint()};
  {
    g::Instance canon = inst;
    for (const auto& ev : batch) {
      ASSERT_EQ(svc::apply_event_to_instance(canon, ev).status,
                svc::Status::kOk);
      prefix_fp.push_back(fresh_build(canon)->fingerprint());
    }
  }

  g_fail_commit.store(true, std::memory_order_release);
  EXPECT_THROW((void)backend->ingest(batch), std::runtime_error);
  g_fail_commit.store(false, std::memory_order_release);
  EXPECT_THROW((void)backend->answer(svc::Query::corridor_headroom(c, p)),
               mpcmst::ModelError);
  EXPECT_THROW((void)backend->ingest(batch), mpcmst::ModelError);

  // The fault killed the append mid-frame, so the final record of the batch
  // can never be durable: recovery lands strictly before the full batch, on
  // whichever prefix of intact frames survived, and matches the canonical
  // transform of exactly that prefix.
  auto recovered = svc::QueryService::recover(cfg);
  const std::uint64_t gen = recovered->backend().generation();
  EXPECT_LT(gen, batch.size());
  ASSERT_LT(gen, prefix_fp.size());
  EXPECT_EQ(recovered->backend().fingerprint(),
            prefix_fp[static_cast<std::size_t>(gen)]);
}

// ---------------------------------------------------------------------------
// Epoch ordering: the sharded backend must not publish the new generation
// until scatter() has patched the shards.  The "shard-scatter" crash point
// fires at the top of scatter(); a racing reader that observes the
// generation there must still see the PRE-update epoch.

std::atomic<const svc::UpdatableBackend*> g_probe_backend{nullptr};
std::atomic<std::uint64_t> g_gen_at_scatter{0};
std::atomic<std::uint64_t> g_scatter_hits{0};

void scatter_probe_hook(const char* phase) {
  if (std::strcmp(phase, "shard-scatter") != 0) return;
  if (const auto* b = g_probe_backend.load(std::memory_order_acquire)) {
    g_gen_at_scatter.store(b->generation(), std::memory_order_release);
    g_scatter_hits.fetch_add(1, std::memory_order_acq_rel);
  }
}

TEST(Topology, GenerationPublishedOnlyAfterScatter) {
  auto tree = g::random_recursive_tree(40, 1701);
  g::assign_random_tree_weights(tree, 1, 30, 1703);
  const auto inst = g::make_mst_instance(std::move(tree), 80, 1707, 4);
  auto eng = mpcmst::test::make_engine(64 * inst.input_words());
  auto backend = svc::LiveShardedBackend::build(eng, inst, 4);

  HookGuard guard(&scatter_probe_hook);
  g_probe_backend.store(backend.get(), std::memory_order_release);

  std::mt19937_64 rng(0x5ca7);
  std::size_t advanced = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    const auto snapshot = backend->instance_snapshot();
    g::Vertex u;
    do {
      u = static_cast<g::Vertex>(rng() % snapshot.n());
    } while (u == snapshot.tree.root);
    const std::uint64_t gen_before = backend->generation();
    const std::uint64_t hits_before =
        g_scatter_hits.load(std::memory_order_acquire);
    const auto r = backend->apply_update(
        u, snapshot.tree.parent[static_cast<std::size_t>(u)],
        1 + static_cast<g::Weight>(rng() % 40));
    if (r.report.cls == svc::UpdateClass::kNoChange) continue;
    ++advanced;
    ASSERT_GT(g_scatter_hits.load(std::memory_order_acquire), hits_before);
    // Regression: the old commit path stored the new generation BEFORE
    // scatter(), so a reader arriving here saw an epoch whose shards were
    // not yet patched.
    ASSERT_EQ(g_gen_at_scatter.load(std::memory_order_acquire), gen_before)
        << "update " << i
        << ": generation published before the shards were patched";
    ASSERT_EQ(backend->generation(), gen_before + 1);
  }
  EXPECT_GT(advanced, 5u);
  g_probe_backend.store(nullptr, std::memory_order_release);
}

}  // namespace
