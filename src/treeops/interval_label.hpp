// DFS interval labeling (Lemma 2.14) in O(log D_T) rounds, linear memory.
//
// The label of v is I(v) = [lo, hi] = [pre(v), pre(v) + size(v) - 1] for the
// canonical DFS that visits children in increasing vertex id.  Then
// `u is an ancestor of v  <=>  I(u) ⊇ I(v)  <=>  lo(u) <= lo(v) <= hi(u)`,
// the workhorse ancestor test of the whole paper.
//
// Construction (our elementary substitute for [ASZ19]+[GLM+23], DESIGN.md §2):
//   1. depth(v) by accumulating pointer doubling;
//   2. size(v) by the exact-distance subtree fold;
//   3. eps(v) = total size of smaller-id siblings, one sort + segmented scan;
//   4. pre(v) = sum of (1 + eps(x)) along the root path (root excluded),
//      again by accumulating pointer doubling.
#pragma once

#include "mpc/dist.hpp"
#include "treeops/doubling.hpp"

namespace mpcmst::treeops {

struct IntervalRec {
  Vertex v = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

inline bool interval_contains(const IntervalRec& outer, std::int64_t point) {
  return outer.lo <= point && point <= outer.hi;
}

struct IntervalResult {
  mpc::Dist<IntervalRec> intervals;
  std::int64_t height = 0;
};

/// Compute DFS interval labels, reusing precomputed depths.
IntervalResult dfs_interval_labels(const mpc::Dist<TreeRec>& tree, Vertex root,
                                   const DepthResult& depths);

/// Convenience overload that computes depths internally.
IntervalResult dfs_interval_labels(const mpc::Dist<TreeRec>& tree,
                                   Vertex root);

}  // namespace mpcmst::treeops
