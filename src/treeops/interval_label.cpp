#include "treeops/interval_label.hpp"

#include <functional>

#include "mpc/ops.hpp"

namespace mpcmst::treeops {

IntervalResult dfs_interval_labels(const mpc::Dist<TreeRec>& tree, Vertex root,
                                   const DepthResult& depths) {
  mpc::Engine& eng = tree.engine();
  mpc::PhaseScope phase(eng, "interval-label");

  // Subtree sizes.
  mpc::Dist<VertexValue> ones = mpc::map<VertexValue>(
      tree, [](const TreeRec& t) { return VertexValue{t.v, 1}; });
  mpc::Dist<VertexValue> sizes =
      subtree_aggregate(tree, depths.depth, ones, std::plus<>{});

  // eps(v): total subtree size of smaller-id siblings of v.  One sort by
  // (parent, v) + a segmented exclusive prefix sum per sibling group.
  struct ChildRec {
    Vertex v;
    Vertex parent;
    std::int64_t size;
    std::int64_t eps;
  };
  mpc::Dist<ChildRec> children = mpc::map2<ChildRec>(
      tree, sizes, [](const TreeRec& t, const VertexValue& s) {
        MPCMST_ASSERT(t.v == s.v, "misaligned size records");
        return ChildRec{t.v, t.parent, s.val, 0};
      });
  // (tree and sizes are aligned because subtree_aggregate maps over tree.)
  mpc::sort_by(children, [](const ChildRec& c) {
    return mpc::pack2(std::uint64_t(c.parent), std::uint64_t(c.v));
  });
  // Segmented exclusive prefix over runs of equal parent (contiguous after
  // the sort); one boundary-carry round.
  {
    auto& v = children.local();
    eng.charge_exchange(8);  // boundary carry between machines
    std::int64_t run_acc = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i == 0 || v[i].parent != v[i - 1].parent) run_acc = 0;
      if (v[i].v == v[i].parent) {
        // The root record (parent == self) sorts inside the run of the
        // root's children; it is not a sibling, so skip it without
        // disturbing the running prefix.
        v[i].eps = 0;
        continue;
      }
      v[i].eps = run_acc;
      run_acc += v[i].size;
    }
  }

  // pre(v) = sum over non-root x on the path v..root of (1 + eps(x)).
  mpc::Dist<VertexValue> vals = mpc::map<VertexValue>(
      children, [](const ChildRec& c) {
        return VertexValue{c.v, c.v == c.parent ? 0 : 1 + c.eps};
      });
  auto pre = rootpath_accumulate(tree, root, vals, std::plus<>{}, 0);

  // Assemble [pre, pre + size - 1].
  struct PreSize {
    Vertex v;
    std::int64_t pre;
    std::int64_t size;
  };
  mpc::Dist<PreSize> ps = mpc::map2<PreSize>(
      pre.acc, sizes, [](const VertexValue& p, const VertexValue& s) {
        MPCMST_ASSERT(p.v == s.v, "misaligned pre/size records");
        return PreSize{p.v, p.val, s.val};
      });
  IntervalResult out{
      mpc::map<IntervalRec>(ps,
                            [](const PreSize& x) {
                              return IntervalRec{x.v, x.pre,
                                                 x.pre + x.size - 1};
                            }),
      depths.height};
  return out;
}

IntervalResult dfs_interval_labels(const mpc::Dist<TreeRec>& tree,
                                   Vertex root) {
  const DepthResult depths = compute_depths(tree, root);
  return dfs_interval_labels(tree, root, depths);
}

}  // namespace mpcmst::treeops
