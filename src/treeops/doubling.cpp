#include "treeops/doubling.hpp"

#include <algorithm>
#include <functional>

namespace mpcmst::treeops {

mpc::Dist<TreeRec> load_tree(mpc::Engine& eng, const graph::RootedTree& tree) {
  MPCMST_CHECK(tree.n < (1ULL << 31), "vertex ids must fit in 31 bits");
  std::vector<TreeRec> recs;
  recs.reserve(tree.n);
  for (std::size_t v = 0; v < tree.n; ++v)
    recs.push_back(
        {static_cast<Vertex>(v), tree.parent[v], tree.weight[v]});
  return mpc::scatter(eng, std::move(recs));
}

DepthResult compute_depths(const mpc::Dist<TreeRec>& tree, Vertex root) {
  mpc::PhaseScope phase(tree.engine(), "depth");
  // Each non-root vertex contributes one edge to every root path below it.
  mpc::Dist<VertexValue> ones = mpc::map<VertexValue>(
      tree, [&](const TreeRec& t) { return VertexValue{t.v, 1}; });
  auto acc = rootpath_accumulate(tree, root, ones, std::plus<>{}, 0);
  DepthResult out{
      mpc::map<DepthRec>(
          acc.acc, [](const VertexValue& x) { return DepthRec{x.v, x.val}; }),
      0, acc.iterations};
  // The height is the max depth, already folded by the accumulate epilogue;
  // combining the per-machine maxima still costs the aggregation-tree
  // collective the standalone reduce charged, but no extra physical pass.
  tree.engine().charge_collective(8);
  out.height = std::max<std::int64_t>(acc.max_acc, 0);
  return out;
}

bool validate_rooted_tree(const mpc::Dist<TreeRec>& tree, Vertex root,
                          std::size_t n) {
  mpc::PhaseScope phase(tree.engine(), "validate");
  if (tree.size() != n) return false;
  if (n == 0) return true;
  if (root < 0 || static_cast<std::size_t>(root) >= n) return false;

  // Local structural checks + one reduce: ids and parents in range, exactly
  // one self-parent and it is the root.
  struct Flags {
    std::int64_t bad = 0;
    std::int64_t self_parents = 0;
  };
  const Flags flags = mpc::reduce(
      tree,
      [&](const TreeRec& t) {
        Flags f;
        const bool in_range = t.v >= 0 && static_cast<std::size_t>(t.v) < n &&
                              t.parent >= 0 &&
                              static_cast<std::size_t>(t.parent) < n;
        f.bad = !in_range || (t.v == t.parent && t.v != root);
        f.self_parents = in_range && t.v == t.parent;
        return f;
      },
      [](Flags a, Flags b) {
        return Flags{a.bad + b.bad, a.self_parents + b.self_parents};
      },
      Flags{});
  if (flags.bad != 0 || flags.self_parents != 1) return false;

  // Unique vertex ids: sort by id, adjacent duplicates are local.
  mpc::Dist<TreeRec> sorted = tree.clone();
  mpc::sort_by(sorted, [](const TreeRec& t) { return t.v; });
  bool duplicate = false;
  for (std::size_t i = 1; i < sorted.local().size(); ++i)
    duplicate |= sorted.local()[i].v == sorted.local()[i - 1].v;
  if (duplicate) return false;

  // Convergence of pointer jumping to the root within ceil(log2 n) + 1
  // iterations.  A parent structure with a cycle never converges, so the
  // cap both bounds the rounds and detects cycles.  Fused: the jumping runs
  // over a dense pointer array (ids are 0..n-1, verified above), one sweep
  // per iteration, mirroring the unfused per-level clone + join charges.
  mpc::Engine& eng = tree.engine();
  const std::size_t state_words = n * 2;  // {v, ptr}
  auto sl = eng.superlevel_scope("validate_rooted_tree");
  mpc::PhantomDist state_ph = sl.phantom(state_words);
  std::vector<Vertex> ptr(n, -1), ptr_next(n, -1);
  sl.sweep();  // initial state (the unfused map)
  std::size_t unfinished = 0;
  for (const TreeRec& t : tree.local()) {
    ptr[static_cast<std::size_t>(t.v)] = t.parent;
    unfinished += t.parent != root;
  }
  std::size_t cap = 2;
  while ((std::size_t{1} << cap) < n) ++cap;
  cap += 2;
  for (std::size_t it = 0; it < cap; ++it) {
    sl.reduce();
    if (unfinished == 0) return true;
    const mpc::PhantomDist snapshot_ph = sl.phantom(state_words);
    sl.join_unique(state_words, state_words);
    sl.sweep();
    unfinished = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ptr_next[i] = ptr[static_cast<std::size_t>(ptr[i])];
      unfinished += ptr_next[i] != root;
    }
    ptr.swap(ptr_next);
  }
  sl.reduce();
  return unfinished == 0;
}

mpc::Dist<SlotValue> subtree_aggregate_sparse(
    const mpc::Dist<TreeRec>& tree, const mpc::Dist<DepthRec>& depth,
    const mpc::Dist<SlotValue>& entries) {
  struct Ptr {
    Vertex v;
    Vertex pk;  // exact 2^k-ancestor; -1 when depth(v) < 2^k
    std::int64_t depth;
  };
  mpc::Dist<Ptr> ptrs = mpc::map<Ptr>(tree, [](const TreeRec& t) {
    return Ptr{t.v, t.v == t.parent ? Vertex{-1} : t.parent, 0};
  });
  mpc::join_unique(
      ptrs, depth, [](const Ptr& p) { return std::uint64_t(p.v); },
      [](const DepthRec& d) { return std::uint64_t(d.v); },
      [](Ptr& p, const DepthRec* d) {
        MPCMST_ASSERT(d != nullptr, "sparse aggregate: missing depth");
        p.depth = d->depth;
      });

  auto dedup = [](const mpc::Dist<SlotValue>& in) {
    auto reduced = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
        in,
        [](const SlotValue& e) {
          return mpc::pack2(std::uint64_t(e.v), std::uint64_t(e.slot));
        },
        [](const SlotValue& e) { return e.val; },
        [](std::int64_t a, std::int64_t b) { return std::min(a, b); });
    return mpc::map<SlotValue>(reduced, [](const auto& kv) {
      return SlotValue{static_cast<Vertex>(kv.key >> 32),
                       static_cast<std::int64_t>(kv.key & 0xffffffffULL),
                       kv.val};
    });
  };

  mpc::Dist<SlotValue> acc = dedup(entries);

  std::size_t iterations = 0;
  while (true) {
    const std::int64_t active = mpc::reduce(
        ptrs, [](const Ptr& p) { return std::int64_t(p.pk >= 0); },
        std::plus<>{}, std::int64_t{0});
    if (active == 0) break;
    ++iterations;
    MPCMST_ASSERT(iterations <= 70, "sparse aggregate does not converge");

    // Route each entry to the holder's 2^k-ancestor (when it exists).
    struct Tagged {
      Vertex holder;
      Vertex target;
      std::int64_t slot;
      std::int64_t val;
    };
    mpc::Dist<Tagged> tagged = mpc::map<Tagged>(acc, [](const SlotValue& e) {
      return Tagged{e.v, Vertex{-1}, e.slot, e.val};
    });
    mpc::join_unique(
        tagged, ptrs, [](const Tagged& t) { return std::uint64_t(t.holder); },
        [](const Ptr& p) { return std::uint64_t(p.v); },
        [](Tagged& t, const Ptr* p) {
          MPCMST_ASSERT(p != nullptr, "sparse aggregate: missing pointer");
          t.target = p->pk;
        });
    mpc::Dist<SlotValue> moved = mpc::flat_map<SlotValue>(
        tagged, [](const Tagged& t, auto&& emit) {
          if (t.target >= 0) emit(SlotValue{t.target, t.slot, t.val});
        });
    acc = dedup(mpc::concat(acc, moved));

    // Advance pointers.
    const mpc::Dist<Ptr> snapshot = ptrs.clone();
    mpc::join_unique(
        ptrs, snapshot,
        [](const Ptr& p) {
          return p.pk >= 0 ? std::uint64_t(p.pk) : std::uint64_t(p.v);
        },
        [](const Ptr& p) { return std::uint64_t(p.v); },
        [](Ptr& p, const Ptr* t) {
          if (p.pk < 0) return;
          MPCMST_ASSERT(t != nullptr, "sparse aggregate: broken pointer");
          p.pk = t->pk;
        });
  }
  return acc;
}

}  // namespace mpcmst::treeops
