#include "treeops/euler.hpp"

#include <functional>

#include "mpc/ops.hpp"

namespace mpcmst::treeops {

namespace {

using graph::WEdge;
using graph::Weight;

struct Arc {
  Vertex from = 0;
  Vertex to = 0;
};

inline std::int64_t arc_id(Vertex from, Vertex to) {
  return static_cast<std::int64_t>(
      mpc::pack2(std::uint64_t(from), std::uint64_t(to)));
}

struct RankRec {
  std::int64_t id = 0;    // packed arc id
  std::int64_t nxt = -1;  // successor arc id, -1 = terminal
  std::int64_t acc = 0;   // during ranking: arcs to the terminal; then rank
};

/// Build the Euler tour successor relation and rank every arc from the tour
/// start (the first out-arc of the root).  Returns records whose acc is the
/// final rank; `iterations` counts the pointer-jumping rounds (~log2 of the
/// tour length).
mpc::Dist<RankRec> rank_euler_tour(mpc::Dist<Arc> arcs, Vertex root,
                                   std::size_t* iterations) {
  mpc::Engine& eng = arcs.engine();
  mpc::sort_by(arcs, [](const Arc& a) {
    return mpc::pack2(std::uint64_t(a.from), std::uint64_t(a.to));
  });

  // succ((x, v)) = (v, next neighbour of v after x in the cyclic sorted
  // order); the cycle is broken just before the root's first out-arc.
  std::vector<RankRec> succ;
  succ.reserve(arcs.size());
  {
    const auto& v = arcs.local();
    std::size_t i = 0;
    while (i < v.size()) {
      std::size_t j = i;
      while (j < v.size() && v[j].from == v[i].from) ++j;
      const std::size_t deg = j - i;
      for (std::size_t k = 0; k < deg; ++k) {
        const Arc& out = v[i + k];
        const bool last = (k + 1 == deg);
        const std::int64_t next =
            (out.from == root && last)
                ? -1
                : arc_id(out.from, v[i + (k + 1) % deg].to);
        // The reversed arc (out.to -> out.from) is followed by `next`.
        succ.push_back({arc_id(out.to, out.from), next, 0});
      }
      i = j;
    }
  }
  eng.charge_exchange(succ.size() * 3);  // route successor records to arcs

  mpc::Dist<RankRec> state(eng, std::move(succ));
  mpc::for_each(state, [](RankRec& r) { r.acc = r.nxt < 0 ? 0 : 1; });

  std::size_t iters = 0;
  while (true) {
    const std::int64_t active = mpc::reduce(
        state, [](const RankRec& r) { return std::int64_t(r.nxt >= 0); },
        std::plus<>{}, std::int64_t{0});
    if (active == 0) break;
    ++iters;
    MPCMST_ASSERT(iters <= 70, "list ranking does not converge");
    const mpc::Dist<RankRec> snapshot = state.clone();
    mpc::join_unique(
        state, snapshot,
        [](const RankRec& r) {
          return r.nxt >= 0 ? std::uint64_t(r.nxt) : std::uint64_t(r.id);
        },
        [](const RankRec& r) { return std::uint64_t(r.id); },
        [](RankRec& r, const RankRec* t) {
          if (r.nxt < 0) return;
          MPCMST_ASSERT(t != nullptr, "list ranking: broken successor");
          r.acc += t->acc;
          r.nxt = t->nxt;
        });
  }
  if (iterations) *iterations = iters;

  // acc = arcs after this one; rank = (L-1) - acc.
  const std::int64_t total = static_cast<std::int64_t>(state.size());
  mpc::for_each(state,
                [total](RankRec& r) { r.acc = (total - 1) - r.acc; });
  return state;
}

}  // namespace

EulerRooting root_tree_euler(mpc::Engine& eng, std::size_t n,
                             const std::vector<WEdge>& edges, Vertex root) {
  MPCMST_CHECK(n >= 1 && n < (1ULL << 31), "vertex count out of range");
  MPCMST_CHECK(edges.size() + 1 == n, "a tree on n vertices has n-1 edges");
  EulerRooting out;
  out.tree.n = n;
  out.tree.root = root;
  out.tree.parent.assign(n, 0);
  out.tree.weight.assign(n, 0);
  if (n == 1) {
    out.tree.parent[0] = root;
    return out;
  }

  mpc::PhaseScope phase(eng, "euler-rooting");
  mpc::Dist<WEdge> dedges = mpc::scatter(eng, edges);
  mpc::Dist<Arc> arcs = mpc::flat_map<Arc>(dedges, [](const WEdge& e,
                                                      auto&& emit) {
    emit(Arc{e.u, e.v});
    emit(Arc{e.v, e.u});
  });
  mpc::Dist<RankRec> ranks =
      rank_euler_tour(std::move(arcs), root, &out.ranking_iterations);

  // Orient: the direction of an edge traversed first (smaller rank) points
  // away from the root, so its head is the child.
  struct Orient {
    Vertex u, v;
    Weight w;
    std::int64_t rank_uv, rank_vu;
  };
  mpc::Dist<Orient> orient = mpc::map<Orient>(dedges, [](const WEdge& e) {
    return Orient{e.u, e.v, e.w, 0, 0};
  });
  mpc::join_unique(
      orient, ranks,
      [](const Orient& o) { return std::uint64_t(arc_id(o.u, o.v)); },
      [](const RankRec& r) { return std::uint64_t(r.id); },
      [](Orient& o, const RankRec* r) {
        MPCMST_ASSERT(r != nullptr, "rooting: missing arc rank");
        o.rank_uv = r->acc;
      });
  mpc::join_unique(
      orient, ranks,
      [](const Orient& o) { return std::uint64_t(arc_id(o.v, o.u)); },
      [](const RankRec& r) { return std::uint64_t(r.id); },
      [](Orient& o, const RankRec* r) {
        MPCMST_ASSERT(r != nullptr, "rooting: missing arc rank");
        o.rank_vu = r->acc;
      });

  const std::vector<Orient> host = mpc::gather(orient);
  for (const Orient& o : host) {
    const Vertex child = o.rank_uv < o.rank_vu ? o.v : o.u;
    const Vertex par = o.rank_uv < o.rank_vu ? o.u : o.v;
    out.tree.parent[child] = par;
    out.tree.weight[child] = o.w;
  }
  out.tree.parent[root] = root;
  out.tree.weight[root] = 0;
  return out;
}

IntervalResult euler_interval_labels(const mpc::Dist<TreeRec>& tree,
                                     Vertex root, std::size_t n) {
  mpc::Engine& eng = tree.engine();
  mpc::PhaseScope phase(eng, "euler-intervals");
  MPCMST_CHECK(n >= 1, "empty tree");
  if (n == 1) {
    return IntervalResult{
        mpc::tabulate<IntervalRec>(
            eng, 1, [&](std::size_t) { return IntervalRec{root, 0, 0}; }),
        0};
  }

  mpc::Dist<Arc> arcs =
      mpc::flat_map<Arc>(tree, [](const TreeRec& t, auto&& emit) {
        if (t.v == t.parent) return;
        emit(Arc{t.parent, t.v});
        emit(Arc{t.v, t.parent});
      });
  std::size_t iters = 0;
  mpc::Dist<RankRec> ranks = rank_euler_tour(std::move(arcs), root, &iters);

  struct VertexRanks {
    Vertex v;
    std::int64_t rank_down, rank_up;
  };
  mpc::Dist<VertexRanks> vr(eng);
  {
    // Attach parent to each record so arc ids are computable in the join key.
    struct VNode {
      Vertex v, parent;
      std::int64_t rank_down, rank_up;
    };
    mpc::Dist<VNode> nodes = mpc::map<VNode>(tree, [](const TreeRec& t) {
      return VNode{t.v, t.parent, -1, -1};
    });
    mpc::join_unique(
        nodes, ranks,
        [](const VNode& x) {
          return x.v == x.parent ? std::uint64_t(arc_id(x.v, x.v))
                                 : std::uint64_t(arc_id(x.parent, x.v));
        },
        [](const RankRec& r) { return std::uint64_t(r.id); },
        [](VNode& x, const RankRec* r) {
          if (x.v != x.parent) {
            MPCMST_ASSERT(r != nullptr, "intervals: missing down arc");
            x.rank_down = r->acc;
          }
        });
    mpc::join_unique(
        nodes, ranks,
        [](const VNode& x) {
          return x.v == x.parent ? std::uint64_t(arc_id(x.v, x.v))
                                 : std::uint64_t(arc_id(x.v, x.parent));
        },
        [](const RankRec& r) { return std::uint64_t(r.id); },
        [](VNode& x, const RankRec* r) {
          if (x.v != x.parent) {
            MPCMST_ASSERT(r != nullptr, "intervals: missing up arc");
            x.rank_up = r->acc;
          }
        });
    vr = mpc::map<VertexRanks>(nodes, [](const VNode& x) {
      return VertexRanks{x.v, x.rank_down, x.rank_up};
    });
  }

  // pre(v) = position of v's down arc among all down arcs (root first with
  // sentinel rank -1).
  mpc::sort_by(vr, [](const VertexRanks& x) { return x.rank_down; });
  mpc::Dist<std::int64_t> pos = mpc::exclusive_prefix(
      vr, [](const VertexRanks&) { return std::int64_t{1}; }, std::plus<>{},
      std::int64_t{0});
  struct PreSize {
    Vertex v;
    std::int64_t pre, size;
  };
  mpc::Dist<PreSize> ps = mpc::map2<PreSize>(
      vr, pos, [&](const VertexRanks& x, std::int64_t p) {
        const std::int64_t size =
            x.rank_down < 0 ? static_cast<std::int64_t>(n)
                            : (x.rank_up - x.rank_down + 1) / 2;
        return PreSize{x.v, p, size};
      });
  IntervalResult out{
      mpc::map<IntervalRec>(
          ps,
          [](const PreSize& x) {
            return IntervalRec{x.v, x.pre, x.pre + x.size - 1};
          }),
      0};
  return out;
}

}  // namespace mpcmst::treeops
