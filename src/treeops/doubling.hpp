// Pointer-doubling toolkit over rooted trees in MPC.
//
// Everything here runs in O(log height(T)) rounds with O(n) words of global
// memory, using only the O(1)-round primitives of mpc/ops.hpp:
//
//   - compute_depths / estimate: depth of every vertex, the tree height, and
//     hence the 2-approximation of D_T the paper assumes known (Remark 2.3);
//   - validate_rooted_tree: the MPC-side spanning-tree check (Remark 2.2);
//   - rootpath_accumulate<Op>: fold per-vertex values along every root path;
//   - subtree_aggregate<Op>: fold per-vertex values over every subtree, via
//     the exact-distance doubling recurrence
//        A_{k+1}(v) = A_k(v) (+) combine{ A_k(w) : p^{2^k}(w) = v },
//     which partitions each subtree by distance and therefore never double
//     counts;
//   - subtree_aggregate_sparse: the same recurrence over sparse
//     (vertex, slot) -> value multisets with idempotent min-combining, used
//     by the sensitivity algorithm's depth-indexed minima (Definition 4.8).
//
// These two folds replace the paper's black-box citations for subtree
// aggregation [GLM+23]; DESIGN.md §2 documents the substitution.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "graph/instance.hpp"
#include "graph/types.hpp"
#include "mpc/dist.hpp"
#include "mpc/ops.hpp"

namespace mpcmst::treeops {

using graph::Vertex;
using graph::Weight;

/// One vertex of a rooted tree: v, its parent (parent == v iff root), and the
/// weight of the edge {v, parent} (0 for the root).
struct TreeRec {
  Vertex v = 0;
  Vertex parent = 0;
  Weight w = 0;
};

struct DepthRec {
  Vertex v = 0;
  std::int64_t depth = 0;
};

struct VertexValue {
  Vertex v = 0;
  std::int64_t val = 0;
};

/// Sparse (vertex, slot) -> value entry for subtree_aggregate_sparse.
struct SlotValue {
  Vertex v = 0;
  std::int64_t slot = 0;
  std::int64_t val = 0;
};

/// Load a host-side tree into the MPC (input placement, free).
mpc::Dist<TreeRec> load_tree(mpc::Engine& eng, const graph::RootedTree& tree);

struct DepthResult {
  mpc::Dist<DepthRec> depth;
  std::int64_t height = 0;      // max_v depth(v)
  std::size_t iterations = 0;   // doubling iterations, ~ ceil(log2 height)
};

/// Depth of every vertex + tree height, in O(log height) rounds.
/// `2 * max(height, 1)` is the paper's 2-approximate D_T (Remark 2.3).
DepthResult compute_depths(const mpc::Dist<TreeRec>& tree, Vertex root);

/// MPC-side validation that the parent structure is a tree on n vertices
/// rooted at `root` (Remark 2.2): unique ids 0..n-1, exactly one self-parent
/// (the root), and every vertex reaches the root within ceil(log2 n) + 1
/// doubling iterations (a cycle never converges).  O(log n) rounds worst
/// case; O(log height) when the input actually is a tree.
bool validate_rooted_tree(const mpc::Dist<TreeRec>& tree, Vertex root,
                          std::size_t n);

// ---------------------------------------------------------------------------
// rootpath_accumulate
// ---------------------------------------------------------------------------

template <class Op>
struct RootpathResult {
  mpc::Dist<VertexValue> acc;
  std::size_t iterations = 0;
};

/// For every vertex v, fold `op` over val(x) for all non-root x on the path
/// v..root (inclusive of v; the root contributes `identity`).
/// `values` must contain exactly one entry per vertex.
template <class Op>
RootpathResult<Op> rootpath_accumulate(const mpc::Dist<TreeRec>& tree,
                                       Vertex root,
                                       const mpc::Dist<VertexValue>& values,
                                       Op op, std::int64_t identity) {
  struct State {
    Vertex v;
    Vertex ptr;
    std::int64_t acc;
  };

  // Initial state: ptr = parent, acc = own value; the root is already done.
  mpc::Dist<State> state = mpc::map<State>(tree, [&](const TreeRec& t) {
    return State{t.v, t.parent, 0};
  });
  mpc::join_unique(
      state, values, [](const State& s) { return std::uint64_t(s.v); },
      [](const VertexValue& x) { return std::uint64_t(x.v); },
      [&](State& s, const VertexValue* x) {
        MPCMST_ASSERT(x != nullptr, "rootpath_accumulate: missing value");
        s.acc = (s.v == root) ? identity : x->val;
      });

  std::size_t iterations = 0;
  while (true) {
    const std::int64_t unfinished = mpc::reduce(
        state, [&](const State& s) { return std::int64_t(s.ptr != root); },
        std::plus<>{}, std::int64_t{0});
    if (unfinished == 0) break;
    ++iterations;
    MPCMST_ASSERT(iterations <= 70, "rootpath_accumulate does not converge");
    const mpc::Dist<State> snapshot = state.clone();
    mpc::join_unique(
        state, snapshot, [](const State& s) { return std::uint64_t(s.ptr); },
        [](const State& s) { return std::uint64_t(s.v); },
        [&](State& s, const State* t) {
          MPCMST_ASSERT(t != nullptr, "rootpath_accumulate: broken pointer");
          s.acc = op(s.acc, t->acc);
          s.ptr = t->ptr;
        });
  }

  RootpathResult<Op> out{
      mpc::map<VertexValue>(
          state, [](const State& s) { return VertexValue{s.v, s.acc}; }),
      iterations};
  return out;
}

// ---------------------------------------------------------------------------
// subtree_aggregate
// ---------------------------------------------------------------------------

/// For every vertex v, fold `op` over val(x) for all x in the subtree of v
/// (inclusive).  `values` must contain exactly one entry per vertex.
/// Requires depths (compute_depths).  O(log height) rounds, O(n) memory.
template <class Op>
mpc::Dist<VertexValue> subtree_aggregate(const mpc::Dist<TreeRec>& tree,
                                         const mpc::Dist<DepthRec>& depth,
                                         const mpc::Dist<VertexValue>& values,
                                         Op op) {
  struct State {
    Vertex v;
    Vertex pk;             // exact 2^k-ancestor; -1 when depth(v) < 2^k
    std::int64_t depth;
    std::int64_t acc;      // A_k(v): fold over descendants within < 2^k
  };

  mpc::Dist<State> state = mpc::map<State>(tree, [](const TreeRec& t) {
    return State{t.v, t.v == t.parent ? Vertex{-1} : t.parent, 0, 0};
  });
  mpc::join_unique(
      state, depth, [](const State& s) { return std::uint64_t(s.v); },
      [](const DepthRec& d) { return std::uint64_t(d.v); },
      [](State& s, const DepthRec* d) {
        MPCMST_ASSERT(d != nullptr, "subtree_aggregate: missing depth");
        s.depth = d->depth;
      });
  mpc::join_unique(
      state, values, [](const State& s) { return std::uint64_t(s.v); },
      [](const VertexValue& x) { return std::uint64_t(x.v); },
      [](State& s, const VertexValue* x) {
        MPCMST_ASSERT(x != nullptr, "subtree_aggregate: missing value");
        s.acc = x->val;
      });

  std::size_t iterations = 0;
  while (true) {
    const std::int64_t active = mpc::reduce(
        state, [](const State& s) { return std::int64_t(s.pk >= 0); },
        std::plus<>{}, std::int64_t{0});
    if (active == 0) break;
    ++iterations;
    MPCMST_ASSERT(iterations <= 70, "subtree_aggregate does not converge");

    // Contributions A_k(w) -> p^{2^k}(w), combined per target.
    struct Contribution {
      Vertex target;
      std::int64_t val;
    };
    mpc::Dist<Contribution> contrib = mpc::flat_map<Contribution>(
        state, [](const State& s, auto&& emit) {
          if (s.pk >= 0) emit(Contribution{s.pk, s.acc});
        });
    auto combined = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
        contrib,
        [](const Contribution& c) { return std::uint64_t(c.target); },
        [](const Contribution& c) { return c.val; }, op);
    mpc::join_unique(
        state, combined, [](const State& s) { return std::uint64_t(s.v); },
        [](const auto& kv) { return kv.key; },
        [&](State& s, const auto* kv) {
          if (kv != nullptr) s.acc = op(s.acc, kv->val);
        });

    // Advance pointers: pk' = pk(pk), valid iff the target itself had a
    // valid pointer (depth(v) >= 2^{k+1}).
    const mpc::Dist<State> snapshot = state.clone();
    mpc::join_unique(
        state, snapshot,
        [](const State& s) {
          return s.pk >= 0 ? std::uint64_t(s.pk)
                           : std::uint64_t(s.v);  // self lookup, ignored
        },
        [](const State& s) { return std::uint64_t(s.v); },
        [](State& s, const State* t) {
          if (s.pk < 0) return;
          MPCMST_ASSERT(t != nullptr, "subtree_aggregate: broken pointer");
          s.pk = t->pk;
        });
  }
  return mpc::map<VertexValue>(
      state, [](const State& s) { return VertexValue{s.v, s.acc}; });
}

/// Sparse multiset variant: entries (v, slot, val); result holds, for every
/// vertex v and every slot present in v's subtree, the min value of that slot
/// in the subtree.  Min-combining is idempotent, so this is safe for
/// overlapping contributions; we still use the exact-distance recurrence.
mpc::Dist<SlotValue> subtree_aggregate_sparse(
    const mpc::Dist<TreeRec>& tree, const mpc::Dist<DepthRec>& depth,
    const mpc::Dist<SlotValue>& entries);

}  // namespace mpcmst::treeops
