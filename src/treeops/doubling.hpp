// Pointer-doubling toolkit over rooted trees in MPC.
//
// Everything here runs in O(log height(T)) rounds with O(n) words of global
// memory, using only the O(1)-round primitives of mpc/ops.hpp:
//
//   - compute_depths / estimate: depth of every vertex, the tree height, and
//     hence the 2-approximation of D_T the paper assumes known (Remark 2.3);
//   - validate_rooted_tree: the MPC-side spanning-tree check (Remark 2.2);
//   - rootpath_accumulate<Op>: fold per-vertex values along every root path;
//   - subtree_aggregate<Op>: fold per-vertex values over every subtree, via
//     the exact-distance doubling recurrence
//        A_{k+1}(v) = A_k(v) (+) combine{ A_k(w) : p^{2^k}(w) = v },
//     which partitions each subtree by distance and therefore never double
//     counts;
//   - subtree_aggregate_sparse: the same recurrence over sparse
//     (vertex, slot) -> value multisets with idempotent min-combining, used
//     by the sensitivity algorithm's depth-indexed minima (Definition 4.8).
//
// These two folds replace the paper's black-box citations for subtree
// aggregation [GLM+23]; DESIGN.md §2 documents the substitution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "graph/instance.hpp"
#include "graph/types.hpp"
#include "mpc/dist.hpp"
#include "mpc/ops.hpp"
#include "mpc/superlevel.hpp"

namespace mpcmst::treeops {

using graph::Vertex;
using graph::Weight;

/// One vertex of a rooted tree: v, its parent (parent == v iff root), and the
/// weight of the edge {v, parent} (0 for the root).
struct TreeRec {
  Vertex v = 0;
  Vertex parent = 0;
  Weight w = 0;
};

struct DepthRec {
  Vertex v = 0;
  std::int64_t depth = 0;
};

struct VertexValue {
  Vertex v = 0;
  std::int64_t val = 0;
};

/// Sparse (vertex, slot) -> value entry for subtree_aggregate_sparse.
struct SlotValue {
  Vertex v = 0;
  std::int64_t slot = 0;
  std::int64_t val = 0;
};

/// Load a host-side tree into the MPC (input placement, free).
mpc::Dist<TreeRec> load_tree(mpc::Engine& eng, const graph::RootedTree& tree);

struct DepthResult {
  mpc::Dist<DepthRec> depth;
  std::int64_t height = 0;      // max_v depth(v)
  std::size_t iterations = 0;   // doubling iterations, ~ ceil(log2 height)
};

/// Depth of every vertex + tree height, in O(log height) rounds.
/// `2 * max(height, 1)` is the paper's 2-approximate D_T (Remark 2.3).
DepthResult compute_depths(const mpc::Dist<TreeRec>& tree, Vertex root);

/// MPC-side validation that the parent structure is a tree on n vertices
/// rooted at `root` (Remark 2.2): unique ids 0..n-1, exactly one self-parent
/// (the root), and every vertex reaches the root within ceil(log2 n) + 1
/// doubling iterations (a cycle never converges).  O(log n) rounds worst
/// case; O(log height) when the input actually is a tree.
bool validate_rooted_tree(const mpc::Dist<TreeRec>& tree, Vertex root,
                          std::size_t n);

// ---------------------------------------------------------------------------
// rootpath_accumulate
// ---------------------------------------------------------------------------

template <class Op>
struct RootpathResult {
  mpc::Dist<VertexValue> acc;
  std::size_t iterations = 0;
  /// Max over the final folded values, computed during the epilogue sweep
  /// (compute_depths reads the tree height off it without a second pass).
  std::int64_t max_acc = INT64_MIN;
};

/// For every vertex v, fold `op` over val(x) for all non-root x on the path
/// v..root (inclusive of v; the root contributes `identity`).
/// `values` must contain exactly one entry per vertex.
///
/// Fused realization: all doubling levels advance over dense host-side
/// arrays, one physical sweep per level, while the charge mirror reproduces
/// the unfused per-level map/join/reduce/clone sequence byte-identically
/// (see mpc/superlevel.hpp for the contract).
template <class Op>
RootpathResult<Op> rootpath_accumulate(const mpc::Dist<TreeRec>& tree,
                                       Vertex root,
                                       const mpc::Dist<VertexValue>& values,
                                       Op op, std::int64_t identity) {
  struct State {
    Vertex v;
    Vertex ptr;
    std::int64_t acc;
  };
  mpc::Engine& eng = tree.engine();
  const std::size_t n = tree.size();
  const std::size_t state_words = n * mpc::words_per<State>();
  MPCMST_ASSERT(values.size() == n, "rootpath_accumulate: missing value");

  auto sl = eng.superlevel_scope("rootpath_accumulate");
  // Stands in for the unfused working Dist<State>: alive until the epilogue
  // has allocated the output, exactly like the unfused local was.
  mpc::PhantomDist state_ph = sl.phantom(state_words);

  // Dense double-buffered doubling arrays indexed by vertex id (cluster
  // trees pass sparse leader ids, so size by the maximum id present).
  std::size_t max_id = 0;
  for (const TreeRec& t : tree.local())
    max_id = std::max(max_id, static_cast<std::size_t>(t.v));
  std::vector<Vertex> ptr(max_id + 1, -1), ptr_next(max_id + 1, -1);
  std::vector<std::int64_t> acc(max_id + 1, 0), acc_next(max_id + 1, 0);

  sl.sweep();  // index the values side
  for (const VertexValue& x : values.local()) {
    MPCMST_ASSERT(x.v >= 0 && static_cast<std::size_t>(x.v) <= max_id,
                  "rootpath_accumulate: value for unknown vertex " << x.v);
    acc[static_cast<std::size_t>(x.v)] = x.val;
  }
  sl.sweep();  // initial state (the unfused map + value join)
  std::size_t unfinished = 0;
  for (const TreeRec& t : tree.local()) {
    const auto i = static_cast<std::size_t>(t.v);
    ptr[i] = t.parent;
    if (t.v == root) acc[i] = identity;
    unfinished += t.parent != root;
  }
  sl.join_unique(state_words, values.words());

  std::size_t iterations = 0;
  while (true) {
    sl.reduce();  // the unfinished-count collective
    if (unfinished == 0) break;
    ++iterations;
    MPCMST_ASSERT(iterations <= 70, "rootpath_accumulate does not converge");
    // One sweep advances every pointer one doubling level; the mirror
    // charges the unfused snapshot clone + join.
    const mpc::PhantomDist snapshot_ph = sl.phantom(state_words);
    sl.join_unique(state_words, state_words);
    sl.sweep();
    unfinished = 0;
    for (const TreeRec& t : tree.local()) {
      const auto i = static_cast<std::size_t>(t.v);
      const auto j = static_cast<std::size_t>(ptr[i]);
      acc_next[i] = op(acc[i], acc[j]);
      ptr_next[i] = ptr[j];
      unfinished += ptr[j] != root;
    }
    ptr.swap(ptr_next);
    acc.swap(acc_next);
  }

  // Epilogue: materialize the output (tree order, like the unfused map) and
  // fold its max on the way — one pass for both.
  sl.sweep();
  std::vector<VertexValue> out_vals;
  out_vals.reserve(n);
  std::int64_t max_acc = INT64_MIN;
  for (const TreeRec& t : tree.local()) {
    const std::int64_t a = acc[static_cast<std::size_t>(t.v)];
    out_vals.push_back(VertexValue{t.v, a});
    max_acc = std::max(max_acc, a);
  }
  RootpathResult<Op> out{mpc::Dist<VertexValue>(eng, std::move(out_vals)),
                         iterations, max_acc};
  return out;
}

// ---------------------------------------------------------------------------
// subtree_aggregate
// ---------------------------------------------------------------------------

/// For every vertex v, fold `op` over val(x) for all x in the subtree of v
/// (inclusive).  `values` must contain exactly one entry per vertex.
/// Requires depths (compute_depths).  O(log height) rounds, O(n) memory.
///
/// Fused like rootpath_accumulate: the exact-distance recurrence
///   A_{k+1}(v) = A_k(v) (+) combine{ A_k(w) : p^{2^k}(w) = v }
/// runs over dense arrays with two physical sweeps per level while the
/// charge mirror replays the unfused flat_map / reduce_by_key / join /
/// clone sequence (and its Dist alloc/free interleaving) byte-identically.
template <class Op>
mpc::Dist<VertexValue> subtree_aggregate(const mpc::Dist<TreeRec>& tree,
                                         const mpc::Dist<DepthRec>& depth,
                                         const mpc::Dist<VertexValue>& values,
                                         Op op) {
  struct State {
    Vertex v;
    Vertex pk;             // exact 2^k-ancestor; -1 when depth(v) < 2^k
    std::int64_t depth;
    std::int64_t acc;      // A_k(v): fold over descendants within < 2^k
  };
  mpc::Engine& eng = tree.engine();
  const std::size_t n = tree.size();
  const std::size_t state_words = n * mpc::words_per<State>();
  MPCMST_ASSERT(depth.size() == n, "subtree_aggregate: missing depth");
  MPCMST_ASSERT(values.size() == n, "subtree_aggregate: missing value");

  auto sl = eng.superlevel_scope("subtree_aggregate");
  mpc::PhantomDist state_ph = sl.phantom(state_words);

  std::size_t max_id = 0;
  for (const TreeRec& t : tree.local())
    max_id = std::max(max_id, static_cast<std::size_t>(t.v));
  std::vector<Vertex> pk(max_id + 1, -1), pk_next(max_id + 1, -1);
  std::vector<std::int64_t> acc(max_id + 1, 0), comb(max_id + 1, 0);
  std::vector<char> touched(max_id + 1, 0);

  sl.sweep();  // index the values side
  for (const VertexValue& x : values.local()) {
    MPCMST_ASSERT(x.v >= 0 && static_cast<std::size_t>(x.v) <= max_id,
                  "subtree_aggregate: value for unknown vertex " << x.v);
    acc[static_cast<std::size_t>(x.v)] = x.val;
  }
  sl.sweep();  // initial state (the unfused map + depth/value joins)
  std::size_t active = 0;
  for (const TreeRec& t : tree.local()) {
    const auto i = static_cast<std::size_t>(t.v);
    pk[i] = t.v == t.parent ? Vertex{-1} : t.parent;
    active += pk[i] >= 0;
  }
  sl.join_unique(state_words, depth.words());
  sl.join_unique(state_words, values.words());

  std::size_t iterations = 0;
  while (true) {
    sl.reduce();  // the active-count collective
    if (active == 0) break;
    ++iterations;
    MPCMST_ASSERT(iterations <= 70, "subtree_aggregate does not converge");

    // Sweep 1: contributions A_k(w) -> p^{2^k}(w), combined per target in
    // tree order (the combine op is associative+commutative).
    sl.sweep();
    std::size_t contrib_n = 0, out_n = 0;
    for (const TreeRec& t : tree.local()) {
      const auto i = static_cast<std::size_t>(t.v);
      if (pk[i] < 0) continue;
      const auto tgt = static_cast<std::size_t>(pk[i]);
      if (touched[tgt]) {
        comb[tgt] = op(comb[tgt], acc[i]);
      } else {
        comb[tgt] = acc[i];
        touched[tgt] = 1;
        ++out_n;
      }
      ++contrib_n;
    }

    // Mirror the unfused iteration's charges and Dist lifetimes:
    // flat_map(contrib) -> reduce_by_key(combined) -> join -> clone -> join,
    // with the three temporaries freed in reverse order at iteration end.
    const std::size_t contrib_words = contrib_n * 2;  // {target, val}
    const std::size_t combined_words = out_n * 2;     // KeyVal<u64, i64>
    sl.resize(contrib_words);
    const mpc::PhantomDist contrib_ph = sl.phantom(contrib_words);
    sl.reduce_by_key(contrib_words, combined_words);
    const mpc::PhantomDist combined_ph = sl.phantom(combined_words);
    sl.join_unique(state_words, combined_words);
    const mpc::PhantomDist snapshot_ph = sl.phantom(state_words);
    sl.join_unique(state_words, state_words);

    // Sweep 2: fold the combined contributions in and advance the pointers
    // (pk' = pk(pk), -1 once the 2^k-ancestor leaves the tree).
    sl.sweep();
    active = 0;
    for (const TreeRec& t : tree.local()) {
      const auto i = static_cast<std::size_t>(t.v);
      if (touched[i]) {
        acc[i] = op(acc[i], comb[i]);
        touched[i] = 0;
      }
      pk_next[i] =
          pk[i] >= 0 ? pk[static_cast<std::size_t>(pk[i])] : Vertex{-1};
      active += pk_next[i] >= 0;
    }
    pk.swap(pk_next);
  }

  // Epilogue: output in tree order, like the unfused map.
  sl.sweep();
  std::vector<VertexValue> out_vals;
  out_vals.reserve(n);
  for (const TreeRec& t : tree.local())
    out_vals.push_back(VertexValue{t.v, acc[static_cast<std::size_t>(t.v)]});
  return mpc::Dist<VertexValue>(eng, std::move(out_vals));
}

/// Sparse multiset variant: entries (v, slot, val); result holds, for every
/// vertex v and every slot present in v's subtree, the min value of that slot
/// in the subtree.  Min-combining is idempotent, so this is safe for
/// overlapping contributions; we still use the exact-distance recurrence.
mpc::Dist<SlotValue> subtree_aggregate_sparse(
    const mpc::Dist<TreeRec>& tree, const mpc::Dist<DepthRec>& depth,
    const mpc::Dist<SlotValue>& entries);

}  // namespace mpcmst::treeops
