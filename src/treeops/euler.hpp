// Euler tour + list ranking by pointer jumping.
//
// Two uses:
//   1. root_tree_euler: orient an *unrooted* tree given as an edge list into
//      parent pointers.  This substitutes for the cited [BLM+23] O(log D)
//      rooting black box at O(log n) rounds (DESIGN.md §2, substitution 3).
//   2. euler_interval_labels: interval labels computed the classic PRAM way
//      (Euler tour ranks), the backbone of the O(log n)-round
//      PRAM-simulation baseline that the paper's O(log D_T) algorithms are
//      compared against.  The child order of this DFS is the tour order, not
//      the canonical increasing-id order, so the labels are valid for
//      ancestor tests but not identical to treeops::dfs_interval_labels.
#pragma once

#include <vector>

#include "graph/instance.hpp"
#include "mpc/dist.hpp"
#include "treeops/interval_label.hpp"

namespace mpcmst::treeops {

struct EulerRooting {
  graph::RootedTree tree;
  std::size_t ranking_iterations = 0;  // ~ log2(2n), the O(log n) cost
};

/// Orient tree edges into parent pointers toward `root`.
/// `edges` must form a tree on vertices 0..n-1.
EulerRooting root_tree_euler(mpc::Engine& eng, std::size_t n,
                             const std::vector<graph::WEdge>& edges,
                             Vertex root);

/// Interval labels from Euler-tour ranks (O(log n) rounds, O(n) memory).
IntervalResult euler_interval_labels(const mpc::Dist<TreeRec>& tree,
                                     Vertex root, std::size_t n);

}  // namespace mpcmst::treeops
