// Service-boundary error taxonomy: one enum for every way a call into the
// serving tier can conclude, in-process or over a socket.
//
// The first four values mirror query.hpp's per-answer Status (an answered
// query is a *successful* call — its Answer carries the per-query verdict);
// the rest name the call-level failures that used to surface as bare
// ModelError throws (poisoned backend, malformed request) plus the transport
// failures the networked tier introduces.  The numeric values ARE the wire
// error codes (net/wire.hpp frames a kError reply as one code byte plus a
// message), so a remote caller and an in-process caller observe the same
// documented failure, and the README's ServiceStatus <-> wire-code table is
// definitionally in sync with this header.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace mpcmst::service {

enum class ServiceStatus : std::uint8_t {
  // Per-answer verdicts (mirror service::Status — pinned by static_asserts
  // in status.cpp so the two enums can never drift).
  kOk = 0,
  kUnknownEdge = 1,      // {u, v} resolves to no edge
  kNotApplicable = 2,    // e.g. replacement_edge of a non-tree edge
  kWouldDisconnect = 3,  // refused tree-edge delete (bridge)

  // Call-level failures.
  kPoisoned = 4,        // fail-stop backend: a commit failed after mutation
  kInvalidRequest = 5,  // malformed/unserviceable request (bad op, bad shard)
  kWireError = 6,       // framing/CRC/socket fault on the transport
  kTimeout = 7,         // the peer did not answer within the deadline
  kVersionMismatch = 8,  // peer speaks a different wire protocol version
  kEpochRetry = 9,       // cross-shard merge could not pin one epoch
  kNotLeader = 10,       // mutation sent to a read replica / static server
  kUnavailable = 11,     // no backend behind this endpoint (not bootstrapped)
};

/// Stable label for logs, the REPL and the wire-code table in the README.
const char* to_string(ServiceStatus s);

/// A service-boundary failure with a machine-readable status.  Derives from
/// ModelError so every existing `catch (ModelError&)` / EXPECT_THROW site
/// keeps working; new code can switch on status() instead of parsing text.
class ServiceError : public ModelError {
 public:
  ServiceError(ServiceStatus status, const std::string& what)
      : ModelError(what), status_(status) {}

  ServiceStatus status() const { return status_; }

 private:
  ServiceStatus status_;
};

}  // namespace mpcmst::service
