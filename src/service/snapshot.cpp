#include "service/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "service/telemetry.hpp"

namespace fs = std::filesystem;

namespace mpcmst::service {

namespace {

constexpr char kMagic[8] = {'M', 'P', 'C', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kKindMonolith = 0;
constexpr std::uint8_t kKindSharded = 1;
constexpr char kPrefix[] = "snapshot-";
constexpr char kSuffix[] = ".bin";

static_assert(std::is_trivially_copyable_v<CostReceipt>);
static_assert(std::is_trivially_copyable_v<ShardCost>);

void encode_endpoint_map(
    ByteWriter& w, const std::unordered_map<std::uint64_t, EdgeRef>& map) {
  // Canonical key order: the same logical map always encodes to the same
  // bytes regardless of hash-table iteration order, so a decoded state
  // re-encodes byte-identically (snapshots and kBootstrap payloads can be
  // compared as raw bytes).
  std::vector<std::uint64_t> keys;
  keys.reserve(map.size());
  for (const auto& [key, ref] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const std::uint64_t key : keys) {
    const EdgeRef& ref = map.at(key);
    w.u64(key);
    w.u8(ref.is_tree ? 1 : 0);
    w.i64(ref.id);
  }
}

void decode_endpoint_map(ByteReader& r,
                         std::unordered_map<std::uint64_t, EdgeRef>& map) {
  const std::uint64_t count = r.u64();
  if (!r.ok() || count > r.remaining() / (8 + 1 + 8)) return;
  map.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    const bool is_tree = r.u8() != 0;
    const std::int64_t id = r.i64();
    map.emplace(key, EdgeRef{is_tree, id});
  }
}

void encode_tree_labels(ByteWriter& w, const TreeLabels& t) {
  w.vec(t.parent);
  w.vec(t.w);
  w.vec(t.mc);
  w.vec(t.sens);
  w.vec(t.replacement);
}

TreeLabels decode_tree_labels(ByteReader& r) {
  TreeLabels t;
  t.parent = r.vec<Vertex>();
  t.w = r.vec<Weight>();
  t.mc = r.vec<Weight>();
  t.sens = r.vec<Weight>();
  t.replacement = r.vec<std::int64_t>();
  return t;
}

void encode_nontree_labels(ByteWriter& w, const NonTreeLabels& nt) {
  w.vec(nt.u);
  w.vec(nt.v);
  w.vec(nt.w);
  w.vec(nt.maxpath);
  w.vec(nt.sens);
}

NonTreeLabels decode_nontree_labels(ByteReader& r) {
  NonTreeLabels nt;
  nt.u = r.vec<Vertex>();
  nt.v = r.vec<Vertex>();
  nt.w = r.vec<Weight>();
  nt.maxpath = r.vec<Weight>();
  nt.sens = r.vec<Weight>();
  return nt;
}

bool tree_labels_consistent(const TreeLabels& t) {
  const std::size_t n = t.parent.size();
  return t.w.size() == n && t.mc.size() == n && t.sens.size() == n &&
         t.replacement.size() == n;
}

bool nontree_labels_consistent(const NonTreeLabels& nt) {
  const std::size_t n = nt.u.size();
  return nt.v.size() == n && nt.w.size() == n && nt.maxpath.size() == n &&
         nt.sens.size() == n;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best-effort: some filesystems refuse dir fds
  ::fsync(fd);
  ::close(fd);
}

/// Generation parsed from a snapshot filename, or nullopt for other files.
std::optional<std::uint64_t> snapshot_generation_of(const std::string& name) {
  const std::size_t prefix = sizeof(kPrefix) - 1;
  const std::size_t suffix = sizeof(kSuffix) - 1;
  if (name.size() <= prefix + suffix || name.compare(0, prefix, kPrefix) != 0 ||
      name.compare(name.size() - suffix, suffix, kSuffix) != 0)
    return std::nullopt;
  std::uint64_t gen = 0;
  for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return gen;
}

}  // namespace

/// Friend of SensitivityIndex / ShardedSensitivityIndex: reads and writes
/// their private state directly so a load is pure deserialization.
struct SnapshotCodec {
  static void encode_index(ByteWriter& w, const SensitivityIndex& idx) {
    w.i64(idx.root_);
    w.u64(idx.violations_);
    w.u64(idx.fingerprint_);
    w.u32(sizeof(CostReceipt));
    w.pod(idx.receipt_);
    encode_tree_labels(w, idx.tree_);
    encode_nontree_labels(w, idx.nontree_);
    w.vec(idx.fragile_order_);
    encode_endpoint_map(w, idx.by_endpoints_);
  }

  static std::shared_ptr<SensitivityIndex> decode_index(ByteReader& r) {
    auto idx = std::shared_ptr<SensitivityIndex>(new SensitivityIndex());
    idx->root_ = r.i64();
    idx->violations_ = static_cast<std::size_t>(r.u64());
    idx->fingerprint_ = r.u64();
    if (r.u32() != sizeof(CostReceipt)) return nullptr;  // layout changed
    idx->receipt_ = r.pod<CostReceipt>();
    idx->tree_ = decode_tree_labels(r);
    idx->nontree_ = decode_nontree_labels(r);
    idx->fragile_order_ = r.vec<Vertex>();
    decode_endpoint_map(r, idx->by_endpoints_);
    if (!r.ok() || !tree_labels_consistent(idx->tree_) ||
        !nontree_labels_consistent(idx->nontree_))
      return nullptr;
    // The topology view is derived state (parent column + root); rebuild it
    // rather than serializing a second copy of the structure.  Validate
    // first: a CRC-valid but malformed parent column must fail the load,
    // not throw out of it.
    graph::Instance canon = instance_from_index(*idx);
    if (!canon.tree.well_formed()) return nullptr;
    idx->topo_ = verify::TreeTopology(canon.tree);
    return idx;
  }

  static void encode_shard(ByteWriter& w, const IndexShard& s) {
    w.i64(s.lo);
    w.i64(s.hi);
    encode_tree_labels(w, s.tree);
    w.vec(s.nontree_ids);
    encode_nontree_labels(w, s.nontree);
    encode_endpoint_map(w, s.by_endpoints);
    w.vec(s.fragile_order);
    w.u64(s.violations);
    w.u64(s.generation);
    w.u32(sizeof(ShardCost));
    w.pod(s.cost);
  }

  static bool decode_shard(ByteReader& r, IndexShard& s) {
    s.lo = r.i64();
    s.hi = r.i64();
    s.tree = decode_tree_labels(r);
    s.nontree_ids = r.vec<std::int64_t>();
    s.nontree = decode_nontree_labels(r);
    decode_endpoint_map(r, s.by_endpoints);
    s.fragile_order = r.vec<Vertex>();
    s.violations = static_cast<std::size_t>(r.u64());
    s.generation = r.u64();
    if (r.u32() != sizeof(ShardCost)) return false;
    s.cost = r.pod<ShardCost>();
    return r.ok() && tree_labels_consistent(s.tree) &&
           nontree_labels_consistent(s.nontree) &&
           s.nontree_ids.size() == s.nontree.size();
  }

  static void encode_sharded(ByteWriter& w,
                             const ShardedSensitivityIndex& idx) {
    w.u64(idx.n_);
    w.u64(idx.num_nontree_);
    w.u64(idx.stride_);
    w.u64(idx.violations_);
    w.i64(idx.root_);
    w.u64(idx.fingerprint_);
    w.u64(idx.generation_);
    w.u32(sizeof(CostReceipt));
    w.pod(idx.receipt_);
    w.u64(idx.shards_.size());
    for (const IndexShard& s : idx.shards_) encode_shard(w, s);
  }

  static std::shared_ptr<ShardedSensitivityIndex> decode_sharded(
      ByteReader& r) {
    auto idx = std::shared_ptr<ShardedSensitivityIndex>(
        new ShardedSensitivityIndex());
    idx->n_ = static_cast<std::size_t>(r.u64());
    idx->num_nontree_ = static_cast<std::size_t>(r.u64());
    idx->stride_ = static_cast<std::size_t>(r.u64());
    idx->violations_ = static_cast<std::size_t>(r.u64());
    idx->root_ = r.i64();
    idx->fingerprint_ = r.u64();
    idx->generation_ = r.u64();
    if (r.u32() != sizeof(CostReceipt)) return nullptr;
    idx->receipt_ = r.pod<CostReceipt>();
    const std::uint64_t num_shards = r.u64();
    // Anti-allocation bound only (each shard encodes far more than a byte);
    // garbage counts die in decode_shard.
    if (!r.ok() || num_shards == 0 || num_shards > r.remaining())
      return nullptr;
    idx->shards_.resize(static_cast<std::size_t>(num_shards));
    for (IndexShard& s : idx->shards_)
      if (!decode_shard(r, s)) return nullptr;
    // Derived from the per-shard parent columns; fails on malformed ones.
    if (!idx->rebuild_topology()) return nullptr;
    return idx;
  }

  /// The canonical instance is exactly the label columns: the tree columns
  /// carry parent/weight verbatim (root slot included), the non-tree columns
  /// carry u/v/w by orig_id.
  static graph::Instance instance_from_index(const SensitivityIndex& idx) {
    graph::Instance inst;
    inst.tree.n = idx.n();
    inst.tree.root = idx.root_;
    inst.tree.parent = idx.tree_.parent;
    inst.tree.weight = idx.tree_.w;
    inst.nontree.resize(idx.nontree_.size());
    for (std::size_t i = 0; i < inst.nontree.size(); ++i)
      inst.nontree[i] =
          graph::WEdge{idx.nontree_.u[i], idx.nontree_.v[i], idx.nontree_.w[i]};
    return inst;
  }
};

std::string snapshot_path(const std::string& dir, std::uint64_t generation) {
  char name[48];
  std::snprintf(name, sizeof name, "%s%020llu%s", kPrefix,
                static_cast<unsigned long long>(generation), kSuffix);
  return dir + "/" + name;
}

std::vector<std::string> list_snapshot_files(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto gen = snapshot_generation_of(name))
      found.emplace_back(*gen, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [gen, path] : found) out.push_back(std::move(path));
  return out;
}

std::optional<std::uint64_t> newest_snapshot_generation(
    const std::string& dir) {
  std::optional<std::uint64_t> best;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto gen = snapshot_generation_of(entry.path().filename().string());
    if (gen && (!best || *gen > *best)) best = gen;
  }
  return best;
}

void write_snapshot(const std::string& dir, std::uint64_t generation,
                    const SensitivityIndex& index,
                    const ShardedSensitivityIndex* shards) {
  TraceScope span("snapshot-write", service_metrics().snapshot_write);
  ByteWriter payload;
  payload.u8(shards ? kKindSharded : kKindMonolith);
  payload.u64(generation);
  SnapshotCodec::encode_index(payload, index);
  if (shards) SnapshotCodec::encode_sharded(payload, *shards);

  ByteWriter file;
  file.bytes(kMagic, sizeof kMagic);
  file.u32(kVersion);
  file.u32(0);  // reserved
  file.u64(payload.size());
  file.bytes(payload.data().data(), payload.size());
  file.u32(crc32(payload.data().data(), payload.size()));

  const std::string final_path = snapshot_path(dir, generation);
  const std::string tmp_path = final_path + ".tmp";
  struct FdGuard {
    int fd;
    ~FdGuard() {
      if (fd >= 0) ::close(fd);
    }
  } guard{::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644)};
  MPCMST_CHECK(guard.fd >= 0, "snapshot: cannot create " << tmp_path);
  const unsigned char* p = file.data().data();
  const std::size_t n = file.size();
  const std::size_t half = n / 2;
  write_all_fd(guard.fd, p, half, tmp_path);
  persist_crash_point("snapshot-mid-write");
  write_all_fd(guard.fd, p + half, n - half, tmp_path);
  MPCMST_CHECK(::fsync(guard.fd) == 0,
               "snapshot: fsync failed on " << tmp_path);
  MPCMST_CHECK(::rename(tmp_path.c_str(), final_path.c_str()) == 0,
               "snapshot: rename to " << final_path << " failed");
  fsync_dir(dir);
}

void encode_index_shard(ByteWriter& w, const IndexShard& s) {
  SnapshotCodec::encode_shard(w, s);
}

bool decode_index_shard(ByteReader& r, IndexShard& s) {
  return SnapshotCodec::decode_shard(r, s);
}

std::optional<TierImage> load_snapshot_file(const std::string& path) {
  ScopedLatency load_lat(*service_metrics().snapshot_load);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  return parse_snapshot_bytes(bytes.data(), bytes.size());
}

std::optional<TierImage> parse_snapshot_bytes(const unsigned char* data,
                                              std::size_t size) {
  ByteReader header(data, size);
  char magic[8];
  header.bytes(magic, sizeof magic);
  if (!header.ok() || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    return std::nullopt;
  if (header.u32() != kVersion) return std::nullopt;
  header.u32();  // reserved
  const std::uint64_t payload_len = header.u64();
  // Subtract, never add: a huge forged payload_len must not wrap around.
  if (!header.ok() || header.remaining() < 4 ||
      payload_len != header.remaining() - 4)
    return std::nullopt;
  const unsigned char* payload = data + (size - payload_len - 4);
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, payload + payload_len, 4);
  if (stored_crc != crc32(payload, static_cast<std::size_t>(payload_len)))
    return std::nullopt;

  ByteReader r(payload, static_cast<std::size_t>(payload_len));
  const std::uint8_t kind = r.u8();
  TierImage image;
  image.generation = r.u64();
  auto index = SnapshotCodec::decode_index(r);
  if (!index) return std::nullopt;
  if (kind == kKindSharded) {
    auto shards = SnapshotCodec::decode_sharded(r);
    if (!shards || shards->fingerprint() != index->fingerprint() ||
        shards->generation() != image.generation)
      return std::nullopt;
    image.shards = std::move(shards);
  } else if (kind != kKindMonolith) {
    return std::nullopt;
  }
  if (r.remaining() != 0) return std::nullopt;

  // Reconstruct the canonical instance and cross-check the fingerprint: a
  // snapshot that cannot reproduce its own instance is never served.
  image.instance = SnapshotCodec::instance_from_index(*index);
  if (SensitivityIndex::fingerprint_of(image.instance) != index->fingerprint())
    return std::nullopt;
  image.index = std::move(index);
  return image;
}

std::optional<TierImage> load_newest_snapshot(const std::string& dir) {
  for (const std::string& path : list_snapshot_files(dir))
    if (auto image = load_snapshot_file(path)) return image;
  return std::nullopt;
}

std::shared_ptr<Persistence> Persistence::create_fresh(PersistenceConfig cfg) {
  MPCMST_CHECK(!cfg.dir.empty(), "persistence: empty directory");
  std::error_code ec;
  fs::create_directories(cfg.dir, ec);
  MPCMST_CHECK(!ec, "persistence: cannot create " << cfg.dir);
  // A fresh tier supersedes whatever tier lived here before: its snapshots,
  // half-written temporaries and journal describe different label state.
  for (const auto& entry : fs::directory_iterator(cfg.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (snapshot_generation_of(name) || name.ends_with(".tmp"))
      fs::remove(entry.path(), ec);
  }
  fs::remove(journal_path(cfg.dir), ec);
  auto p = std::shared_ptr<Persistence>(new Persistence(std::move(cfg)));
  p->journal_ = Journal::open(journal_path(p->cfg_.dir), p->cfg_.sync_mode);
  return p;
}

std::shared_ptr<Persistence> Persistence::resume(PersistenceConfig cfg,
                                                 std::uint64_t tail_records) {
  auto p = std::shared_ptr<Persistence>(new Persistence(std::move(cfg)));
  p->journal_ = Journal::open(journal_path(p->cfg_.dir), p->cfg_.sync_mode);
  p->since_checkpoint_ = tail_records;
  return p;
}

void Persistence::commit(const JournalRecord& rec) {
  journal_.append(rec);
  ++since_checkpoint_;
}

void Persistence::commit_batch(const std::vector<JournalRecord>& recs) {
  journal_.append_batch(recs);
  since_checkpoint_ += recs.size();
}

void Persistence::checkpoint(std::uint64_t generation,
                             const SensitivityIndex& index,
                             const ShardedSensitivityIndex* shards) {
  service_metrics().checkpoints->inc();
  TraceScope span("checkpoint");
  write_snapshot(cfg_.dir, generation, index, shards);
  // Order matters: the snapshot is durable before the journal records it
  // subsumes are dropped — a crash between the two replays a no-op tail.
  journal_.reset();
  since_checkpoint_ = 0;
  const auto files = list_snapshot_files(cfg_.dir);
  std::error_code ec;
  for (std::size_t i = 2; i < files.size(); ++i) fs::remove(files[i], ec);
  // Any .tmp is a crashed checkpoint's ruin — committed files were renamed.
  for (const auto& entry : fs::directory_iterator(cfg_.dir, ec))
    if (entry.path().filename().string().ends_with(".tmp"))
      fs::remove(entry.path(), ec);
}

}  // namespace mpcmst::service
