// Incremental edge updates: the mutable generation layer over the snapshot
// indexes, turning the precompute-once service into a long-lived system.
//
// A confirmed price change lands here instead of forcing a distributed
// rerun.  Each update is classified and repaired with the cheapest move
// that keeps the labels byte-identical to a fresh full rebuild:
//   - tree-edge reweight within headroom (new_w <= mc): patch w/sens in
//     place and repair the covering maxima of the non-tree edges straddling
//     the edge's cut (the only labels its weight can reach);
//   - tree-edge raised past its replacement: swap in the precomputed argmin
//     cover [Tar82], restructure the tree along the reversed parent chain,
//     and relabel host-side (SensitivityIndex::build_host — the sequential
//     oracles, never the distributed pass; Kor-Korman-Peleg lower bounds are
//     why the update path must not pay distributed verification per change);
//   - non-tree reweight that stays out (new_w >= maxpath): patch w/sens and
//     update the edge's covering contribution (mc/replacement/sens) along
//     its tree path, plus the duplicate resolution of its endpoint key;
//   - non-tree edge undercutting its path maximum: it enters the tree, the
//     heaviest path edge leaves (same exchange + host relabel).
// Ties follow Definition 1.2 throughout: a change that creates a tie keeps
// T optimal, so w == mc / w == maxpath stays a reweight, never a swap.
//
// Topology churn rides the same machinery: add_edge inserts a non-tree edge
// (covering-contribution offer along its tree path, or a swap when it
// undercuts the path max; a fresh endpoint attaches as a leaf tree edge) and
// remove_edge deletes one (a non-tree delete tombstones its slot — the
// canonical dead slot is WEdge{0,0,0}, and ANY u == v slot counts as dead —
// and repairs the mc/replacement labels that leaned on it; a tree delete
// promotes the precomputed replacement, or refuses with kWouldDisconnect
// when the edge is a bridge).  Batch ingest absorbs a raw EdgeEvent stream
// under one writer section with a single group-committed journal append.
//
// Generation safety: every applied change rotates the instance fingerprint
// (recomputed from the canonical post-update instance, so it always equals
// what a fresh build of that instance would carry) and advances a strictly
// increasing generation counter.  The service's LRU keys on the fingerprint
// — a stale generation can never be served — and revalidates inserts on the
// generation so an update racing a query cannot poison an older key.  On
// the sharded backend every shard is stamped with the new epoch and the
// top-k merge (router.hpp) refuses to combine shards whose stamps differ.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "service/index.hpp"
#include "service/journal.hpp"
#include "service/query.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"

namespace mpcmst::service {

class Persistence;  // snapshot.hpp: journal + snapshot coordinator

enum class UpdateClass : std::uint8_t {
  kNoChange,          // new weight equals the current one (no mutation)
  kTreeReweight,      // tree edge, stays within headroom (new_w <= mc)
  kTreeSwap,          // tree edge raised past its replacement: exchange
  kNonTreeReweight,   // non-tree edge, stays out (new_w >= maxpath)
  kNonTreeSwap,       // non-tree edge undercuts its path: exchange
  kNonTreeInsert,     // add_edge: new edge stays out (w >= path max)
  kInsertSwap,        // add_edge: new edge undercuts its path: exchange
  kVertexAttach,      // add_edge: fresh endpoint joins T as a leaf edge
  kNonTreeDelete,     // remove_edge: non-tree slot tombstoned + labels repaired
  kTreeDeletePromote  // remove_edge: tree edge replaced by its argmin cover
};

/// Topology-churn operation kind — journaled per record (journal v2) so
/// replay re-dispatches each event through the same entry point.
enum class UpdateOp : std::uint8_t {
  kReweight = 0,
  kAddEdge = 1,
  kRemoveEdge = 2,
};

/// One element of a raw edge stream: reweight / insert / delete.  `w` is the
/// new absolute price (ignored for kRemoveEdge).  Batch ingest absorbs
/// vectors of these the way a streaming-graph system consumes its input.
struct EdgeEvent {
  UpdateOp op = UpdateOp::kReweight;
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 0;

  friend bool operator==(const EdgeEvent&, const EdgeEvent&) = default;
};

/// What one canonical instance transformation did (shared by the live layer
/// and the churn-test oracle, so both sides mutate identically).
struct UpdateReport {
  Status status = Status::kOk;  // kUnknownEdge: {u, v} resolves nowhere
  UpdateClass cls = UpdateClass::kNoChange;
  EdgeRef edge;                     // pre-update resolution of {u, v}
  Weight old_w = 0;
  Weight new_w = 0;
  Vertex swapped_out = -1;          // child of the tree edge that left T
  std::int64_t swapped_in = -1;     // non-tree slot that entered T
};

/// Apply one confirmed weight change to the instance itself, in canonical
/// form: {u, v} resolves exactly like the index (tree edge first, then the
/// lightest duplicate), a swapped-out tree edge is written as
/// {child, old parent} into the vacated non-tree slot (orig_ids of every
/// other edge are stable), and the reversed parent chain keeps each edge's
/// weight with the edge.  Both the update layer and a from-scratch oracle
/// rebuild go through this one definition.
UpdateReport apply_update_to_instance(graph::Instance& inst, Vertex u,
                                      Vertex v, Weight new_w);

/// Canonical topology transforms, same contract as apply_update_to_instance
/// (the live layer and the churn-test oracle both go through these
/// definitions).  A dead non-tree slot is the tombstone WEdge{0,0,0}; ANY
/// slot with u == v counts as dead (excluded from resolution, covering
/// nothing).  add_edge allocates the lowest dead slot, else appends; with
/// exactly one endpoint == n (the next fresh vertex id) it attaches a new
/// leaf tree edge instead.  remove_edge of a tree edge promotes the argmin
/// cover into the tree, or refuses with Status::kWouldDisconnect (no
/// mutation) when the edge is a bridge.
UpdateReport add_edge_to_instance(graph::Instance& inst, Vertex u, Vertex v,
                                  Weight w);
UpdateReport remove_edge_from_instance(graph::Instance& inst, Vertex u,
                                       Vertex v);
/// Dispatch one EdgeEvent through the canonical transform for its op.
UpdateReport apply_event_to_instance(graph::Instance& inst,
                                     const EdgeEvent& ev);

/// Labels touched by one in-place repair (what the sharded backend must
/// scatter); `full` marks a swap, after which everything was relabeled.
/// Topology churn generalizes the patches: `nontree_ids` may name slots that
/// are new, tombstoned, or whose owning shard changed (the scatter moves
/// them), and an endpoints entry carrying EdgeRef{false, -1} means "erase
/// this key" (the last duplicate of the key was deleted).
struct ChangedSet {
  bool full = false;
  std::vector<Vertex> tree_children;
  std::vector<std::int64_t> nontree_ids;
  std::vector<std::pair<std::uint64_t, EdgeRef>> endpoints;  // re-resolved
};

/// Per-update receipt: classification, fingerprint rotation, repair size.
struct UpdateReceipt {
  UpdateReport report;
  std::uint64_t old_fingerprint = 0;
  std::uint64_t new_fingerprint = 0;
  std::uint64_t generation = 0;          // epoch after this update
  std::size_t patched_tree_edges = 0;    // labels repaired in place
  std::size_t patched_nontree_edges = 0;
  bool full_relabel = false;  // swap path: host-side relabel (still no MPC)
};

/// The single-sourced update engine: one mutable monolithic generation
/// (instance + SensitivityIndex value; the structure-only topology view
/// travels inside the index — see SensitivityIndex::topology()).
/// Both live backends delegate here, so the monolith and the shards can
/// never disagree on what an update means.  Not internally synchronized —
/// the owning backend holds the lock.
class LiveCore {
 public:
  /// `snapshot` must be the index of `inst` (fingerprints are checked).
  LiveCore(graph::Instance inst,
           std::shared_ptr<const SensitivityIndex> snapshot);

  const graph::Instance& instance() const { return inst_; }
  const SensitivityIndex& index() const { return idx_; }

  struct Outcome {
    UpdateReport report;
    ChangedSet changed;
  };
  /// Classify and apply one confirmed change.  Requires the current
  /// generation to be an MST (violations() == 0): updates are defined
  /// against Definition 1.2, which needs one.
  Outcome apply(Vertex u, Vertex v, Weight new_w);

  /// Insert a new edge.  Non-tree inserts allocate the lowest tombstoned
  /// slot (else append) and either stay out (covering-contribution offer
  /// along the tree path) or swap in; one endpoint == n attaches a fresh
  /// leaf vertex.  Mirrors add_edge_to_instance exactly.
  Outcome add_edge(Vertex u, Vertex v, Weight w);

  /// Delete an edge.  A non-tree delete tombstones the slot and repairs the
  /// mc/replacement labels that leaned on it; a tree delete promotes the
  /// precomputed replacement, or refuses with Status::kWouldDisconnect
  /// (no mutation).  Mirrors remove_edge_from_instance exactly.
  Outcome remove_edge(Vertex u, Vertex v);

  /// Dispatch one EdgeEvent to apply / add_edge / remove_edge.
  Outcome apply_event(const EdgeEvent& ev);

 private:
  void tree_reweight(Vertex c, Weight new_w, ChangedSet& changed);
  void nontree_reweight(std::int64_t id, Weight new_w, ChangedSet& changed);
  /// Swap path: the instance was already exchanged; relabel everything
  /// host-side (the rebuilt index carries a fresh topology view).
  void relabel(ChangedSet& changed);
  /// Move mc/replacement of tree edge `child` (updating sens + order).
  void set_mc(Vertex child, Weight mc, std::int64_t repl, ChangedSet& changed);
  /// Re-sort one child inside fragile_order_ after its sens moved.
  void reposition(Vertex child, Weight old_sens);
  /// Max tree weight on the path u..v skipping edge {skip, p(skip)}.
  Weight path_max_excluding(Vertex u, Vertex v, Vertex skip) const;
  /// Recompute the lightest-duplicate resolution of one endpoint key from
  /// the per-key duplicate bucket (O(duplicates), not O(m)); may insert or
  /// erase the map entry as duplicates appear and disappear.  Tree entries
  /// shadow: the key resolves to the tree edge regardless of duplicates.
  void re_resolve_key(Vertex u, Vertex v, ChangedSet& changed);

  /// Rebuild free_slots_ / dup_of_key_ from the current label columns
  /// (construction and every relabel; incremental ops maintain them).
  void rebuild_slot_caches();

  /// Lowest tombstoned non-tree slot, else append a fresh one — a pure
  /// function of the instance, so the canonical transform agrees.  Writes
  /// `e` into both the instance and the label columns.
  std::int64_t allocate_nontree_slot(const graph::WEdge& e);

  /// The index's weight-agnostic topology view (valid across reweights;
  /// swaps replace the whole index, topology included).
  const verify::TreeTopology& topo() const { return idx_.topology(); }

  graph::Instance inst_;
  SensitivityIndex idx_;  // mutated through friendship

  // Slot caches for topology churn, rebuilt on relabel and maintained on
  // insert/delete: tombstoned slots (ascending) for allocation, and the
  // live duplicate slots of every endpoint key (ascending) so duplicate
  // re-resolution costs O(duplicates of that key) instead of O(m).
  std::vector<std::int64_t> free_slots_;
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> dup_of_key_;
};

/// A backend that absorbs confirmed changes.  `generation()` (inherited)
/// advances on every applied update; `instance_snapshot()` hands the
/// canonical current instance to oracles and operators.
///
/// ingest() is the single mutation entry point: the journal v2 op byte
/// already discriminates reweight / insert / delete, so every other mutator
/// is a one-line wrapper building a single-event batch.  Implementations
/// provide exactly one lock/journal/poison commit path.
class UpdatableBackend : public IndexBackend {
 public:
  /// Absorb one confirmed weight change: ingest of a single kReweight event.
  UpdateReceipt apply_update(Vertex u, Vertex v, Weight new_w) {
    return ingest({EdgeEvent{UpdateOp::kReweight, u, v, new_w}}).front();
  }
  /// Topology churn: insert / delete an edge (same receipt contract as
  /// apply_update; a refused tree delete reports Status::kWouldDisconnect
  /// without mutating or advancing the epoch).
  UpdateReceipt add_edge(Vertex u, Vertex v, Weight w) {
    return ingest({EdgeEvent{UpdateOp::kAddEdge, u, v, w}}).front();
  }
  UpdateReceipt remove_edge(Vertex u, Vertex v) {
    return ingest({EdgeEvent{UpdateOp::kRemoveEdge, u, v, 0}}).front();
  }
  /// Absorb a raw edge stream under ONE writer critical section: every
  /// event is applied and journaled (group commit — one buffered append +
  /// fsync for the whole batch), and the new generation becomes visible
  /// only once the batch is durable.  Nothing is acknowledged before the
  /// commit, so a crash mid-batch replays a consistent prefix.
  virtual std::vector<UpdateReceipt> ingest(
      const std::vector<EdgeEvent>& events) = 0;
  virtual graph::Instance instance_snapshot() const = 0;

  /// Observer of durable commits: invoked inside the writer critical
  /// section, after the batch's journal records are durable and the new
  /// generation is published, with the records in generation order.  This is
  /// the journal-shipping tap the replication tier (net/replicate.hpp)
  /// subscribes to; in-process deployments never set it.  Install before
  /// serving traffic — the setter is not synchronized against ingest.
  using CommitListener = std::function<void(const std::vector<JournalRecord>&)>;
  void set_commit_listener(CommitListener fn) {
    commit_listener_ = std::move(fn);
  }

  /// Attach a journal + snapshot coordinator (snapshot.hpp): every
  /// subsequently applied change is committed to the journal before the new
  /// generation is visible to queries, and the snapshot_every_n compaction
  /// policy runs inside the same writer critical section.
  virtual void attach_persistence(std::shared_ptr<Persistence> p) = 0;

  /// Force a snapshot + journal compaction of the current generation
  /// (no-op when no persistence is attached).
  virtual void checkpoint() = 0;

 protected:
  CommitListener commit_listener_;  // null: nobody listening
};

// Commit-path building blocks shared by the live backends and the networked
// leader (net/), so receipts, journal frames and the epoch-advance rule can
// never drift between deployments.

/// Receipt assembly for one applied outcome (the caller stamps the
/// generation after deciding whether the epoch advances).
UpdateReceipt make_update_receipt(const LiveCore& core,
                                  const LiveCore::Outcome& out,
                                  std::uint64_t old_fingerprint);

/// Does this report advance the epoch (kOk and not kNoChange)?
bool advances_epoch(const UpdateReport& rep);

/// The journal record for one applied event: the submitted inputs (replay
/// re-dispatches them against the identical pre-state) plus the fingerprint
/// chain and the epoch the change produced.
JournalRecord make_journal_record(std::uint64_t epoch, const UpdateReceipt& r,
                                  const EdgeEvent& ev);

/// Per-classification totals and latency (duration_ns == 0: clock skipped).
void record_update_telemetry(const UpdateReceipt& r,
                             std::uint64_t duration_ns);

/// Replay one committed journal record through the ordinary update path,
/// holding the outcome to the record: the pre-state fingerprint must chain,
/// and the replayed classification / fingerprint / generation must equal
/// what the journal promised — or ModelError.  The caller owns the
/// generation-contiguity check (recover() fails hard on a gap; a journal-
/// shipped replica treats a gap as "resubscribe from my generation").
UpdateReceipt replay_journal_record(UpdatableBackend& backend,
                                    const JournalRecord& rec);

/// The monolithic snapshot made live: LiveCore behind a reader-writer lock.
class LiveMonolithBackend final : public UpdatableBackend {
 public:
  /// `initial_generation` restores the epoch counter when reconstructing a
  /// persisted tier (QueryService::recover); fresh builds leave it 0.
  LiveMonolithBackend(graph::Instance inst,
                      std::shared_ptr<const SensitivityIndex> snapshot,
                      std::uint64_t initial_generation = 0);

  /// One distributed build, then serve-and-absorb.
  static std::shared_ptr<LiveMonolithBackend> build(mpc::Engine& eng,
                                                    const graph::Instance& i);

  Answer answer(const Query& q) const override;
  std::size_t n() const override;
  std::size_t num_nontree() const override;
  bool is_mst() const override;
  std::size_t violations() const override;
  std::uint64_t fingerprint() const override;
  /// The distributed build was paid exactly once and its receipt is carried
  /// verbatim across generations, so this is a stable construction-time
  /// copy — safe to read without holding the lock.
  const CostReceipt& receipt() const override { return receipt_; }
  std::size_t num_shards() const override { return 1; }
  std::uint64_t generation() const override {
    return generation_.load(std::memory_order_acquire);
  }
  std::optional<EdgeRef> find(Vertex u, Vertex v) const override;
  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override;

  /// Single mutation path (see UpdatableBackend): apply each event under
  /// the writer lock, group-commit the journal records (fail-stop on a
  /// throwing commit), then publish the epoch.
  std::vector<UpdateReceipt> ingest(
      const std::vector<EdgeEvent>& events) override;
  graph::Instance instance_snapshot() const override;
  void attach_persistence(std::shared_ptr<Persistence> p) override;
  void checkpoint() override;

 private:
  void check_not_poisoned() const;

  mutable std::shared_mutex mu_;
  LiveCore core_;
  const CostReceipt receipt_;  // never written after construction
  std::atomic<std::uint64_t> generation_{0};
  std::shared_ptr<Persistence> persist_;  // null: in-memory only
  // Fail-stop: set when a journal commit (or checkpoint) throws while the
  // core already holds the new state.  Acknowledged state must equal
  // journaled state, so a backend that cannot journal refuses to serve —
  // every entry point throws ModelError until the tier is recovered from
  // its (consistent) persistence directory.
  std::atomic<bool> poisoned_{false};
};

/// The sharded serving tier made live: the same LiveCore classifies and
/// repairs, and the changed labels are scattered into the owning shards in
/// place (swaps re-split the relabeled monolith).  Every update stamps all
/// shards with the new epoch before the lock is released — the barrier the
/// top-k merge checks.
class LiveShardedBackend final : public UpdatableBackend {
 public:
  LiveShardedBackend(graph::Instance inst,
                     std::shared_ptr<const SensitivityIndex> snapshot,
                     std::size_t num_shards);

  /// Recovery path: serve a deserialized shard set as-is (no re-split) and
  /// restore the epoch counter.  `shards` must carry the same fingerprint
  /// as `snapshot` and be stamped with `initial_generation` throughout.
  LiveShardedBackend(graph::Instance inst,
                     std::shared_ptr<const SensitivityIndex> snapshot,
                     std::shared_ptr<const ShardedSensitivityIndex> shards,
                     std::uint64_t initial_generation);

  static std::shared_ptr<LiveShardedBackend> build(mpc::Engine& eng,
                                                   const graph::Instance& i,
                                                   std::size_t num_shards);

  Answer answer(const Query& q) const override;
  std::size_t n() const override;
  std::size_t num_nontree() const override;
  bool is_mst() const override;
  std::size_t violations() const override;
  std::uint64_t fingerprint() const override;
  /// Stable construction-time copy (the shard count, and with it
  /// effective_shards, never changes): lock-free like the monolith's.
  const CostReceipt& receipt() const override { return receipt_; }
  std::size_t num_shards() const override;
  std::uint64_t generation() const override {
    return generation_.load(std::memory_order_acquire);
  }
  /// Partition arithmetic only (the vertex ranges never move, even across
  /// updates), so no lock — required: the batch fast path calls this while
  /// other workers hold the shared lock.
  std::size_t shard_hint(const Query& q) const override {
    return point_query_shard(shards_, q);
  }
  std::optional<EdgeRef> find(Vertex u, Vertex v) const override;
  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override;

  /// Single mutation path (see UpdatableBackend): apply and scatter each
  /// event under the writer lock (readers are excluded for the duration, so
  /// scattering pre-commit is safe), group-commit, THEN publish the epoch —
  /// the store comes after scatter() so a lock-free generation() reader can
  /// never observe epoch N+1 while shard labels are still at N.
  std::vector<UpdateReceipt> ingest(
      const std::vector<EdgeEvent>& events) override;
  graph::Instance instance_snapshot() const override;
  void attach_persistence(std::shared_ptr<Persistence> p) override;
  void checkpoint() override;

  /// Per-shard views for tests (hold no lock across updates).
  const ShardedSensitivityIndex& sharded() const { return shards_; }

 private:
  void check_not_poisoned() const;
  void scatter(const ChangedSet& changed, std::uint64_t epoch);

  mutable std::shared_mutex mu_;
  LiveCore core_;
  ShardedSensitivityIndex shards_;
  const CostReceipt receipt_;  // never written after construction
  std::atomic<std::uint64_t> generation_{0};
  std::shared_ptr<Persistence> persist_;  // null: in-memory only
  std::atomic<bool> poisoned_{false};  // see LiveMonolithBackend::poisoned_
};

}  // namespace mpcmst::service
