#include "service/status.hpp"

#include "service/query.hpp"

namespace mpcmst::service {

// The per-answer prefix of ServiceStatus must stay numerically identical to
// query.hpp's Status: the wire layer transports answers with one code space.
static_assert(static_cast<std::uint8_t>(ServiceStatus::kOk) ==
              static_cast<std::uint8_t>(Status::kOk));
static_assert(static_cast<std::uint8_t>(ServiceStatus::kUnknownEdge) ==
              static_cast<std::uint8_t>(Status::kUnknownEdge));
static_assert(static_cast<std::uint8_t>(ServiceStatus::kNotApplicable) ==
              static_cast<std::uint8_t>(Status::kNotApplicable));
static_assert(static_cast<std::uint8_t>(ServiceStatus::kWouldDisconnect) ==
              static_cast<std::uint8_t>(Status::kWouldDisconnect));

const char* to_string(ServiceStatus s) {
  switch (s) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kUnknownEdge:
      return "unknown_edge";
    case ServiceStatus::kNotApplicable:
      return "not_applicable";
    case ServiceStatus::kWouldDisconnect:
      return "would_disconnect";
    case ServiceStatus::kPoisoned:
      return "poisoned";
    case ServiceStatus::kInvalidRequest:
      return "invalid_request";
    case ServiceStatus::kWireError:
      return "wire_error";
    case ServiceStatus::kTimeout:
      return "timeout";
    case ServiceStatus::kVersionMismatch:
      return "version_mismatch";
    case ServiceStatus::kEpochRetry:
      return "epoch_retry";
    case ServiceStatus::kNotLeader:
      return "not_leader";
    case ServiceStatus::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace mpcmst::service
