#include "service/router.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/check.hpp"

namespace mpcmst::service {

MonolithicBackend::MonolithicBackend(
    std::shared_ptr<const SensitivityIndex> index)
    : index_(std::move(index)) {
  MPCMST_ASSERT(index_ != nullptr, "MonolithicBackend: null index");
}

Answer MonolithicBackend::answer(const Query& q) const {
  return answer_query(*index_, q);
}

std::optional<NonTreeEdgeInfo> MonolithicBackend::nontree_info(
    std::int64_t orig_id) const {
  if (orig_id < 0 ||
      orig_id >= static_cast<std::int64_t>(index_->num_nontree()))
    return std::nullopt;
  return index_->nontree_edge(orig_id);
}

QueryRouter::QueryRouter(std::shared_ptr<const ShardedSensitivityIndex> index)
    : index_(std::move(index)) {
  MPCMST_ASSERT(index_ != nullptr, "QueryRouter: null sharded index");
}

std::optional<EdgeRef> QueryRouter::find(Vertex u, Vertex v) const {
  const auto res = index_->resolve(u, v);
  if (!res) return std::nullopt;
  return res->ref;
}

Answer QueryRouter::answer(const Query& q) const {
  return route_query(*index_, q);
}

std::size_t point_query_shard(const ShardedSensitivityIndex& index,
                              const Query& q) {
  if (q.kind == QueryKind::kTopKFragile || q.kind == QueryKind::kStillMst)
    return 0;  // fan-out queries touch every shard; no single-shard hint
  const Vertex a = std::min(q.u, q.v);
  if (a < 0 || a >= static_cast<Vertex>(index.n())) return 0;
  return index.shard_of(a);
}

Answer route_query(const ShardedSensitivityIndex& index, const Query& q) {
  if (q.kind == QueryKind::kTopKFragile) return merge_top_k(index, q);
  if (q.kind == QueryKind::kStillMst) return merge_still_mst(index, q);
  const auto res = index.resolve(q.u, q.v);
  if (!res) {
    Answer a;
    a.status = Status::kUnknownEdge;
    return a;
  }
  // The entry-owning shard always owns the referenced labels (a tree entry
  // lives with its child, a non-tree entry with its min endpoint), so the
  // whole point query is one shard-local lookup.
  if (res->ref.is_tree)
    return answer_for_tree_edge(q, res->ref,
                                res->shard->tree_edge(res->ref.id));
  const std::optional<NonTreeEdgeInfo> e =
      res->shard->nontree_edge(res->ref.id);
  MPCMST_ASSERT(e.has_value(), "router: resolved non-tree edge "
                                   << res->ref.id << " missing from shard");
  return answer_for_nontree_edge(q, res->ref, *e);
}

Answer merge_top_k(const ShardedSensitivityIndex& index, const Query& q) {
  // Epoch barrier: pin the generation the whole merge must observe.  A shard
  // stamped differently means an update was torn across the merge — refuse
  // to mix the generations rather than return a frankenstein top-k.
  const std::uint64_t epoch = index.generation();
  Answer a;
  const std::size_t total = index.n() ? index.n() - 1 : 0;
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(q.k), total);
  a.fragile.reserve(k);
  if (k == 0) return a;

  // One heap entry per non-empty shard: its next unconsumed fragility rank.
  struct Head {
    Weight sens;
    Vertex child;
    std::size_t shard;
    std::size_t pos;
  };
  const auto after = [](const Head& x, const Head& y) {
    return x.sens != y.sens ? x.sens > y.sens : x.child > y.child;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heap(after);
  for (std::size_t i = 0; i < index.num_shards(); ++i) {
    const IndexShard& s = index.shard(i);
    MPCMST_ASSERT(s.generation == epoch,
                  "top_k merge: shard " << i << " carries generation "
                                        << s.generation << " != epoch "
                                        << epoch);
    if (s.fragile_order.empty()) continue;
    const Vertex child = s.fragile_order.front();
    heap.push(Head{s.tree_sens(child), child, i, 0});
  }
  while (a.fragile.size() < k && !heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    const IndexShard& s = index.shard(head.shard);
    a.fragile.push_back(
        make_fragile_entry(head.child, s.tree_edge(head.child)));
    const std::size_t next = head.pos + 1;
    if (next < s.fragile_order.size()) {
      const Vertex child = s.fragile_order[next];
      heap.push(Head{s.tree_sens(child), child, head.shard, next});
    }
  }
  MPCMST_ASSERT(index.generation() == epoch,
                "top_k merge: index advanced mid-merge (epoch " << epoch
                                                                << ")");
  return a;
}

Answer merge_still_mst(const ShardedSensitivityIndex& index, const Query& q) {
  // Same epoch barrier as merge_top_k: the resolutions, the tree-weight
  // overlay and every shard's certification must observe one generation.
  const std::uint64_t epoch = index.generation();
  Answer a;
  std::vector<verify::ResolvedChange> resolved;
  a.status = resolve_changes(
      [&index](Vertex u, Vertex v) -> std::optional<EdgeRef> {
        const auto res = index.resolve(u, v);
        if (!res) return std::nullopt;
        return res->ref;
      },
      q.changes, resolved);
  if (a.status != Status::kOk) return a;

  const verify::BatchCertifier cert(
      index.topology(),
      [&index](Vertex child) {
        const IndexShard& s = index.shard(index.shard_of(child));
        return s.tree.w[static_cast<std::size_t>(child - s.lo)];
      },
      resolved);
  for (std::size_t i = 0; i < index.num_shards(); ++i) {
    const IndexShard& s = index.shard(i);
    MPCMST_ASSERT(s.generation == epoch,
                  "still_mst merge: shard " << i << " carries generation "
                                            << s.generation << " != epoch "
                                            << epoch);
    for (std::size_t r = 0; r < s.nontree_ids.size(); ++r)
      if (const auto viol =
              cert.certify(s.nontree_ids[r], s.nontree.u[r], s.nontree.v[r],
                           s.nontree.w[r], s.nontree.maxpath[r]))
        a.certificates.push_back(*viol);
  }
  // Per-shard rosters ascend in orig_id but interleave across shards; the
  // monolith scans ascending globally, so merge to that order.
  std::sort(a.certificates.begin(), a.certificates.end(),
            [](const verify::ViolationCert& x, const verify::ViolationCert& y) {
              return x.orig_id < y.orig_id;
            });
  a.still_optimal = a.certificates.empty();
  MPCMST_ASSERT(index.generation() == epoch,
                "still_mst merge: index advanced mid-merge (epoch " << epoch
                                                                    << ")");
  return a;
}

}  // namespace mpcmst::service
