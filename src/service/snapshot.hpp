// Versioned on-disk snapshots of the serving tier, plus the Persistence
// coordinator that pairs them with the update journal (journal.hpp).
//
// A snapshot serializes the index state *directly* — the SoA TreeLabels /
// NonTreeLabels columns, fragility orders, replacement edges, endpoint maps,
// cost receipts and the fingerprint, and (on sharded tiers) every
// IndexShard's slice — so loading is deserialization, never a rebuild: no
// oracle runs, no label computation, no re-splitting.  The canonical
// instance is not stored at all; it is reconstructed from the label columns
// (the parent/w tree columns and the u/v/w non-tree columns are byte-for-
// byte the instance), and the reconstruction is cross-checked against the
// stored fingerprint before anything is served.
//
// Crash consistency: a snapshot is written to a .tmp file, fsync'd, then
// rename(2)'d into place (and the directory fsync'd), so `snapshot-<gen>.bin`
// files are always either absent or complete; a whole-payload CRC32 rejects
// any file that lies about that.  load_newest_snapshot() walks generations
// downward until a file validates, so a crash mid-checkpoint simply falls
// back to the previous checkpoint plus a longer journal tail.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "graph/instance.hpp"
#include "service/index.hpp"
#include "service/journal.hpp"
#include "service/shard.hpp"

namespace mpcmst::service {

/// Path of the generation-`generation` snapshot inside `dir` (zero-padded so
/// lexical and numeric order agree).
std::string snapshot_path(const std::string& dir, std::uint64_t generation);

/// All committed snapshot files in `dir`, newest generation first.
std::vector<std::string> list_snapshot_files(const std::string& dir);

/// Highest generation named by any snapshot file in `dir` (from filenames
/// only — the file may not validate).  Recovery uses it as a floor: landing
/// below it means an acknowledged generation existed that neither the
/// surviving snapshots nor the journal can reproduce, which must fail
/// loudly rather than silently serve stale answers.
std::optional<std::uint64_t> newest_snapshot_generation(const std::string& dir);

/// Serialize the tier state at `generation`: the monolithic index always,
/// plus the shard set when `shards` is non-null.  Atomic (tmp + rename).
void write_snapshot(const std::string& dir, std::uint64_t generation,
                    const SensitivityIndex& index,
                    const ShardedSensitivityIndex* shards);

/// A deserialized tier: everything recover() needs to reconstruct a live
/// backend without rebuilding any label.
struct TierImage {
  std::uint64_t generation = 0;
  graph::Instance instance;  // reconstructed from the label columns
  std::shared_ptr<const SensitivityIndex> index;
  std::shared_ptr<const ShardedSensitivityIndex> shards;  // null: monolithic

  bool sharded() const { return shards != nullptr; }
};

/// Parse and validate one snapshot file (nullopt: unreadable, foreign,
/// version-mismatched, CRC-failed, or fingerprint-inconsistent).
std::optional<TierImage> load_snapshot_file(const std::string& path);

/// Validate a whole snapshot file held in memory — the same checks as
/// load_snapshot_file, minus the read.  The replication tier (net/) ships
/// the newest snapshot file verbatim to a joining replica, which parses the
/// received bytes through this before trusting any of them.
std::optional<TierImage> parse_snapshot_bytes(const unsigned char* data,
                                              std::size_t size);

// Shard-slice codec reuse for the network tier: a kBootstrap payload carries
// one IndexShard through exactly the codec the snapshot file uses, so a
// shard shipped over a socket deserializes byte-identical to one loaded from
// disk.  decode returns false on any structural inconsistency (the caller
// owns CRC framing).
void encode_index_shard(ByteWriter& w, const IndexShard& s);
bool decode_index_shard(ByteReader& r, IndexShard& s);

/// The newest generation in `dir` that validates end-to-end.
std::optional<TierImage> load_newest_snapshot(const std::string& dir);

/// Journal + snapshot policy coordinator, owned (via shared_ptr) by a live
/// backend and driven from inside its writer lock: commit() appends the
/// journal record for an applied update, checkpoint() writes a snapshot,
/// truncates the journal and prunes superseded snapshot files.  Not
/// internally synchronized — the backend's update lock is the serializer.
class Persistence {
 public:
  /// Start a fresh tier in cfg.dir: create the directory, discard any
  /// previous tier's snapshots/journal (they describe a superseded tier),
  /// and open the journal.  The caller must checkpoint() once its initial
  /// state exists, so the directory is recoverable from generation 0 on.
  static std::shared_ptr<Persistence> create_fresh(PersistenceConfig cfg);

  /// Reopen cfg.dir after recovery.  `tail_records` is the number of journal
  /// records already on disk beyond the recovered snapshot — they count
  /// toward the snapshot_every_n compaction budget.
  static std::shared_ptr<Persistence> resume(PersistenceConfig cfg,
                                             std::uint64_t tail_records);

  /// Append + (per cfg.sync_mode) fsync one committed update.
  void commit(const JournalRecord& rec);

  /// Group commit for batch ingest: all records in one journal write and
  /// one fsync (Journal::append_batch).
  void commit_batch(const std::vector<JournalRecord>& recs);

  /// Has the journal grown past cfg.snapshot_every_n since the last
  /// checkpoint?  (Always false when snapshot_every_n == 0.)
  bool checkpoint_due() const {
    return cfg_.snapshot_every_n > 0 &&
           since_checkpoint_ >= cfg_.snapshot_every_n;
  }

  /// Snapshot the current state, truncate the journal, prune old snapshot
  /// files (the newest two are kept: the new one plus one fallback).
  void checkpoint(std::uint64_t generation, const SensitivityIndex& index,
                  const ShardedSensitivityIndex* shards);

  const PersistenceConfig& config() const { return cfg_; }
  std::uint64_t records_since_checkpoint() const { return since_checkpoint_; }

 private:
  explicit Persistence(PersistenceConfig cfg) : cfg_(std::move(cfg)) {}

  PersistenceConfig cfg_;
  Journal journal_;
  std::uint64_t since_checkpoint_ = 0;
};

}  // namespace mpcmst::service
