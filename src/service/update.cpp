#include "service/update.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "mpc/dist.hpp"
#include "sensitivity/sensitivity.hpp"
#include "service/snapshot.hpp"
#include "service/status.hpp"
#include "service/telemetry.hpp"

namespace mpcmst::service {

namespace {

using graph::kNegInfW;
using graph::kPosInfW;

/// (weight, orig_id) pairs order both the duplicate resolution and the
/// replacement argmin; -1 ids only meet real ids at mc == kPosInfW.
using WeightId = std::pair<Weight, std::int64_t>;

/// Child of the heaviest tree edge on the path u..v (ties: smallest child
/// id) — the edge a swapped-in non-tree edge evicts.
Vertex heaviest_path_child(const graph::Instance& inst,
                           const verify::TreeTopology& topo, Vertex u,
                           Vertex v) {
  Vertex best = -1;
  Weight best_w = kNegInfW;
  for (Vertex x : topo.path_children(u, v)) {
    const Weight w = inst.tree.weight[static_cast<std::size_t>(x)];
    if (w > best_w || (w == best_w && x < best)) {
      best_w = w;
      best = x;
    }
  }
  return best;
}

/// The canonical exchange: tree edge {child_out, p(child_out)} leaves T, the
/// non-tree edge in `slot_in` enters.  The parent chain from the in-subtree
/// endpoint up to child_out is reversed (each edge keeps its weight, stored
/// at its new child), the promoted edge gets `promoted_w`, and the demoted
/// edge is written as {child_out, old parent, demoted_w} into the vacated
/// slot — orig_ids of every other edge stay put.  `topo` must describe the
/// pre-exchange tree.
void exchange_edges(graph::Instance& inst, const verify::TreeTopology& topo,
                    Vertex child_out, std::int64_t slot_in, Weight promoted_w,
                    Weight demoted_w) {
  const graph::WEdge in = inst.nontree[static_cast<std::size_t>(slot_in)];
  MPCMST_ASSERT(topo.covers(child_out, in.u, in.v),
                "exchange: slot " << slot_in << " does not cross the cut of "
                                  << child_out);
  const Vertex a = topo.is_ancestor(child_out, in.u) ? in.u : in.v;
  const Vertex b = (a == in.u) ? in.v : in.u;
  const Vertex old_parent = inst.tree.parent[static_cast<std::size_t>(
      child_out)];
  Vertex x = a;
  Vertex prev_parent = b;
  Weight prev_w = promoted_w;
  for (;;) {
    const Vertex px = inst.tree.parent[static_cast<std::size_t>(x)];
    const Weight wx = inst.tree.weight[static_cast<std::size_t>(x)];
    inst.tree.parent[static_cast<std::size_t>(x)] = prev_parent;
    inst.tree.weight[static_cast<std::size_t>(x)] = prev_w;
    prev_parent = x;
    prev_w = wx;
    if (x == child_out) break;
    x = px;
  }
  inst.nontree[static_cast<std::size_t>(slot_in)] =
      graph::WEdge{child_out, old_parent, demoted_w};
}

/// Resolve {u, v} against the raw instance with the index's precedence:
/// tree edge first, then the lightest duplicate (strict <, ascending id).
std::optional<EdgeRef> resolve_in_instance(const graph::Instance& inst,
                                           Vertex u, Vertex v) {
  const auto n = static_cast<Vertex>(inst.n());
  if (u < 0 || v < 0 || u >= n || v >= n) return std::nullopt;
  for (Vertex c : {u, v}) {
    const Vertex other = (c == u) ? v : u;
    if (c != inst.tree.root &&
        inst.tree.parent[static_cast<std::size_t>(c)] == other)
      return EdgeRef{true, c};
  }
  const std::uint64_t key = endpoint_key(u, v);
  WeightId best{kPosInfW, -1};
  // Deliberately O(m): this is the stateless oracle the churn tests rebuild
  // from scratch; the live path resolves through the index's endpoint map
  // and per-key duplicate buckets instead.
  for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
    const graph::WEdge& e = inst.nontree[i];
    if (e.u == e.v) continue;  // tombstoned slot
    if (endpoint_key(e.u, e.v) != key) continue;
    best = std::min(best, WeightId{e.w, static_cast<std::int64_t>(i)});
  }
  if (best.second < 0) return std::nullopt;
  return EdgeRef{false, best.second};
}

/// Lowest dead (u == v) non-tree slot, or -1: the canonical slot allocation
/// both the raw transform and LiveCore's free list replicate.
std::int64_t lowest_dead_slot(const graph::Instance& inst) {
  for (std::size_t i = 0; i < inst.nontree.size(); ++i)
    if (inst.nontree[i].u == inst.nontree[i].v)
      return static_cast<std::int64_t>(i);
  return -1;
}

}  // namespace

UpdateReport apply_update_to_instance(graph::Instance& inst, Vertex u,
                                      Vertex v, Weight new_w) {
  MPCMST_ASSERT(new_w > kNegInfW && new_w < kPosInfW,
                "apply_update: new weight " << new_w
                                            << " outside the price band");
  UpdateReport rep;
  rep.new_w = new_w;
  const auto ref = resolve_in_instance(inst, u, v);
  if (!ref) {
    rep.status = Status::kUnknownEdge;
    return rep;
  }
  rep.edge = *ref;
  if (ref->is_tree) {
    const auto c = static_cast<std::size_t>(ref->id);
    rep.old_w = inst.tree.weight[c];
    if (new_w == rep.old_w) return rep;  // kNoChange
    const verify::TreeTopology topo(inst.tree);
    WeightId best{kPosInfW, -1};  // cheapest cover of {c, p(c)}
    for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
      const graph::WEdge& e = inst.nontree[i];
      if (e.u == e.v || !topo.covers(ref->id, e.u, e.v)) continue;
      best = std::min(best, WeightId{e.w, static_cast<std::int64_t>(i)});
    }
    if (new_w <= best.first) {  // covers the uncovered case (mc == inf)
      rep.cls = UpdateClass::kTreeReweight;
      inst.tree.weight[c] = new_w;
    } else {
      rep.cls = UpdateClass::kTreeSwap;
      rep.swapped_out = ref->id;
      rep.swapped_in = best.second;
      exchange_edges(inst, topo, ref->id, best.second,
                     /*promoted_w=*/best.first, /*demoted_w=*/new_w);
    }
  } else {
    const auto i = static_cast<std::size_t>(ref->id);
    graph::WEdge& e = inst.nontree[i];
    rep.old_w = e.w;
    if (new_w == rep.old_w) return rep;  // kNoChange
    Weight maxpath = kNegInfW;
    std::unique_ptr<verify::TreeTopology> topo;
    if (e.u != e.v) {
      topo = std::make_unique<verify::TreeTopology>(inst.tree);
      for (Vertex x : topo->path_children(e.u, e.v))
        maxpath = std::max(maxpath,
                           inst.tree.weight[static_cast<std::size_t>(x)]);
    }
    if (new_w >= maxpath) {  // self loops always stay out
      rep.cls = UpdateClass::kNonTreeReweight;
      e.w = new_w;
    } else {
      rep.cls = UpdateClass::kNonTreeSwap;
      const Vertex d = heaviest_path_child(inst, *topo, e.u, e.v);
      rep.swapped_out = d;
      rep.swapped_in = ref->id;
      exchange_edges(inst, *topo, d, ref->id, /*promoted_w=*/new_w,
                     /*demoted_w=*/
                     inst.tree.weight[static_cast<std::size_t>(d)]);
    }
  }
  return rep;
}

UpdateReport add_edge_to_instance(graph::Instance& inst, Vertex u, Vertex v,
                                  Weight w) {
  MPCMST_ASSERT(w > kNegInfW && w < kPosInfW,
                "add_edge: weight " << w << " outside the price band");
  UpdateReport rep;
  rep.old_w = w;  // insert convention: old_w == new_w == the insert price
  rep.new_w = w;
  const auto n = static_cast<Vertex>(inst.n());
  if (u == v) {  // self loops are never inserted (they would be dead slots)
    rep.status = Status::kNotApplicable;
    return rep;
  }
  const bool u_fresh = (u == n), v_fresh = (v == n);
  if (u_fresh != v_fresh) {
    // Vertex attach: the fresh endpoint (the next unused id, n) joins T as a
    // leaf — a leaf edge is the unique edge of its cut, so it is in the MST.
    const Vertex anchor = u_fresh ? v : u;
    if (anchor < 0 || anchor >= n) {
      rep.status = Status::kUnknownEdge;
      return rep;
    }
    rep.cls = UpdateClass::kVertexAttach;
    rep.edge = EdgeRef{true, n};
    inst.tree.n += 1;
    inst.tree.parent.push_back(anchor);
    inst.tree.weight.push_back(w);
    return rep;
  }
  if (u < 0 || v < 0 || u >= n || v >= n) {
    rep.status = Status::kUnknownEdge;
    return rep;
  }
  // Both endpoints live: the new edge closes a cycle with its tree path.
  const verify::TreeTopology topo(inst.tree);
  const Vertex d = heaviest_path_child(inst, topo, u, v);
  const Weight maxpath = inst.tree.weight[static_cast<std::size_t>(d)];
  const std::int64_t dead = lowest_dead_slot(inst);
  std::int64_t slot = dead;
  if (dead >= 0) {
    inst.nontree[static_cast<std::size_t>(dead)] = graph::WEdge{u, v, w};
  } else {
    slot = static_cast<std::int64_t>(inst.nontree.size());
    inst.nontree.push_back(graph::WEdge{u, v, w});
  }
  rep.edge = EdgeRef{false, slot};
  if (w >= maxpath) {  // a tie stays out (Definition 1.2)
    rep.cls = UpdateClass::kNonTreeInsert;
  } else {
    rep.cls = UpdateClass::kInsertSwap;
    rep.swapped_out = d;
    rep.swapped_in = slot;
    exchange_edges(inst, topo, d, slot, /*promoted_w=*/w,
                   /*demoted_w=*/maxpath);
  }
  return rep;
}

UpdateReport remove_edge_from_instance(graph::Instance& inst, Vertex u,
                                       Vertex v) {
  UpdateReport rep;
  const auto ref = resolve_in_instance(inst, u, v);
  if (!ref) {
    rep.status = Status::kUnknownEdge;
    return rep;
  }
  rep.edge = *ref;
  if (!ref->is_tree) {
    const auto i = static_cast<std::size_t>(ref->id);
    rep.cls = UpdateClass::kNonTreeDelete;
    rep.old_w = inst.nontree[i].w;
    rep.new_w = 0;
    inst.nontree[i] = graph::WEdge{0, 0, 0};  // tombstone the slot
    return rep;
  }
  const Vertex c = static_cast<Vertex>(ref->id);
  rep.old_w = inst.tree.weight[static_cast<std::size_t>(c)];
  rep.new_w = 0;
  const verify::TreeTopology topo(inst.tree);
  // Argmin covering non-tree edge of the cut — the edge that must be
  // promoted for T minus {c, p(c)} to stay spanning.
  WeightId best{kPosInfW, -1};
  for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
    const graph::WEdge& e = inst.nontree[i];
    if (e.u == e.v || !topo.covers(c, e.u, e.v)) continue;
    best = std::min(best, WeightId{e.w, static_cast<std::int64_t>(i)});
  }
  if (best.second < 0) {  // bridge in G: refuse, mutate nothing
    rep.status = Status::kWouldDisconnect;
    return rep;
  }
  rep.cls = UpdateClass::kTreeDeletePromote;
  rep.swapped_out = c;
  rep.swapped_in = best.second;
  exchange_edges(inst, topo, c, best.second, /*promoted_w=*/best.first,
                 /*demoted_w=*/0);
  // The exchange parked the deleted edge in the promoted slot; tombstone it
  // — the removed edge is written nowhere.
  inst.nontree[static_cast<std::size_t>(best.second)] = graph::WEdge{0, 0, 0};
  return rep;
}

UpdateReport apply_event_to_instance(graph::Instance& inst,
                                     const EdgeEvent& ev) {
  switch (ev.op) {
    case UpdateOp::kReweight:
      return apply_update_to_instance(inst, ev.u, ev.v, ev.w);
    case UpdateOp::kAddEdge:
      return add_edge_to_instance(inst, ev.u, ev.v, ev.w);
    case UpdateOp::kRemoveEdge:
      return remove_edge_from_instance(inst, ev.u, ev.v);
  }
  MPCMST_CHECK(false, "apply_event: unknown op "
                          << static_cast<int>(ev.op));
  return {};
}

LiveCore::LiveCore(graph::Instance inst,
                   std::shared_ptr<const SensitivityIndex> snapshot)
    : inst_(std::move(inst)), idx_(*snapshot) {
  MPCMST_ASSERT(idx_.fingerprint_ == SensitivityIndex::fingerprint_of(inst_),
                "LiveCore: snapshot does not match the instance");
  rebuild_slot_caches();
}

void LiveCore::rebuild_slot_caches() {
  free_slots_.clear();
  dup_of_key_.clear();
  const NonTreeLabels& nt = idx_.nontree_;
  for (std::size_t i = 0; i < nt.size(); ++i) {
    if (nt.u[i] == nt.v[i])  // dead slot — both vectors come out ascending
      free_slots_.push_back(static_cast<std::int64_t>(i));
    else
      dup_of_key_[endpoint_key(nt.u[i], nt.v[i])].push_back(
          static_cast<std::int64_t>(i));
  }
}

std::int64_t LiveCore::allocate_nontree_slot(const graph::WEdge& e) {
  std::int64_t slot;
  if (!free_slots_.empty()) {  // lowest dead slot, like lowest_dead_slot()
    slot = free_slots_.front();
    free_slots_.erase(free_slots_.begin());
  } else {
    slot = static_cast<std::int64_t>(inst_.nontree.size());
    inst_.nontree.push_back(graph::WEdge{});
    idx_.nontree_.push_back(NonTreeEdgeInfo{});
  }
  inst_.nontree[static_cast<std::size_t>(slot)] = e;
  idx_.nontree_.set(static_cast<std::size_t>(slot),
                    NonTreeEdgeInfo{e.u, e.v, e.w, kNegInfW, kPosInfW});
  auto& bucket = dup_of_key_[endpoint_key(e.u, e.v)];
  bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), slot), slot);
  return slot;
}

Weight LiveCore::path_max_excluding(Vertex u, Vertex v, Vertex skip) const {
  Weight best = kNegInfW;
  for (Vertex x : topo().path_children(u, v))
    if (x != skip)
      best = std::max(best, inst_.tree.weight[static_cast<std::size_t>(x)]);
  return best;
}

void LiveCore::reposition(Vertex child, Weight old_sens) {
  auto& order = idx_.fragile_order_;
  const auto& sens = idx_.tree_.sens;
  // The vector is sorted with `child` still keyed at its old sensitivity;
  // locate it there, then reinsert under the new one.
  const auto old_it = std::lower_bound(
      order.begin(), order.end(), std::pair<Weight, Vertex>{old_sens, child},
      [&](Vertex a, const std::pair<Weight, Vertex>& key) {
        const Weight sa = (a == child) ? old_sens : sens[a];
        return sa != key.first ? sa < key.first : a < key.second;
      });
  MPCMST_ASSERT(old_it != order.end() && *old_it == child,
                "reposition: child " << child << " not found at old rank");
  order.erase(old_it);
  const Weight new_sens = sens[static_cast<std::size_t>(child)];
  const auto new_it = std::lower_bound(
      order.begin(), order.end(), std::pair<Weight, Vertex>{new_sens, child},
      [&](Vertex a, const std::pair<Weight, Vertex>& key) {
        const Weight sa = sens[a];
        return sa != key.first ? sa < key.first : a < key.second;
      });
  order.insert(new_it, child);
}

void LiveCore::set_mc(Vertex child, Weight mc, std::int64_t repl,
                      ChangedSet& changed) {
  const auto c = static_cast<std::size_t>(child);
  TreeLabels& t = idx_.tree_;
  if (t.mc[c] == mc && t.replacement[c] == repl) return;
  const Weight old_sens = t.sens[c];
  t.mc[c] = mc;
  t.replacement[c] = repl;
  t.sens[c] = sensitivity::tree_sens(mc, t.w[c]);
  if (t.sens[c] != old_sens) reposition(child, old_sens);
  changed.tree_children.push_back(child);
}

void LiveCore::re_resolve_key(Vertex u, Vertex v, ChangedSet& changed) {
  const std::uint64_t key = endpoint_key(u, v);
  const auto it = idx_.by_endpoints_.find(key);
  if (it != idx_.by_endpoints_.end() && it->second.is_tree)
    return;  // a tree entry shadows every non-tree duplicate
  const NonTreeLabels& nt = idx_.nontree_;
  WeightId best{kPosInfW, -1};
  const auto bucket = dup_of_key_.find(key);
  if (bucket != dup_of_key_.end())
    for (const std::int64_t i : bucket->second)
      best = std::min(best, WeightId{nt.w[static_cast<std::size_t>(i)], i});
#ifndef NDEBUG
  {
    // Parity with the O(m) scan the duplicate bucket replaced.
    WeightId scanned{kPosInfW, -1};
    for (std::size_t i = 0; i < nt.size(); ++i) {
      if (nt.u[i] == nt.v[i] || endpoint_key(nt.u[i], nt.v[i]) != key)
        continue;
      scanned = std::min(scanned,
                         WeightId{nt.w[i], static_cast<std::int64_t>(i)});
    }
    MPCMST_ASSERT(scanned == best,
                  "re_resolve_key: duplicate bucket (" << best.second
                      << ") disagrees with the scan (" << scanned.second
                      << ") for {" << u << "," << v << "}");
  }
#endif
  if (best.second < 0) {
    // The last duplicate of the key disappeared: drop the entry.
    if (it == idx_.by_endpoints_.end()) return;
    idx_.by_endpoints_.erase(it);
    changed.endpoints.emplace_back(key, EdgeRef{false, -1});  // erase marker
    return;
  }
  const EdgeRef ref{false, best.second};
  if (it == idx_.by_endpoints_.end()) {
    idx_.by_endpoints_.emplace(key, ref);
    changed.endpoints.emplace_back(key, ref);
  } else if (it->second != ref) {
    it->second = ref;
    changed.endpoints.emplace_back(key, ref);
  }
}

void LiveCore::tree_reweight(Vertex c, Weight new_w, ChangedSet& changed) {
  const auto ci = static_cast<std::size_t>(c);
  TreeLabels& t = idx_.tree_;
  const Weight old_sens = t.sens[ci];
  inst_.tree.weight[ci] = new_w;
  t.w[ci] = new_w;
  t.sens[ci] = sensitivity::tree_sens(t.mc[ci], new_w);
  if (t.sens[ci] != old_sens) reposition(c, old_sens);
  changed.tree_children.push_back(c);
  // The reweighted edge lies on the covered path of exactly the non-tree
  // edges straddling its cut; their covering maxima are the only other
  // labels its weight can reach (mc values only read non-tree weights).
  NonTreeLabels& nt = idx_.nontree_;
  for (std::size_t i = 0; i < nt.size(); ++i) {
    if (nt.u[i] == nt.v[i] || !topo().covers(c, nt.u[i], nt.v[i])) continue;
    const Weight mp = std::max(new_w, path_max_excluding(nt.u[i], nt.v[i], c));
    if (mp == nt.maxpath[i]) continue;
    nt.maxpath[i] = mp;
    nt.sens[i] = sensitivity::nontree_sens(nt.w[i], mp);
    changed.nontree_ids.push_back(static_cast<std::int64_t>(i));
  }
}

void LiveCore::nontree_reweight(std::int64_t id, Weight new_w,
                                ChangedSet& changed) {
  const auto fi = static_cast<std::size_t>(id);
  NonTreeLabels& nt = idx_.nontree_;
  const Weight old_w = nt.w[fi];
  const Vertex fu = nt.u[fi], fv = nt.v[fi];
  inst_.nontree[fi].w = new_w;
  nt.w[fi] = new_w;
  nt.sens[fi] = sensitivity::nontree_sens(new_w, nt.maxpath[fi]);
  changed.nontree_ids.push_back(id);
  if (fu != fv) {
    // The edge's covering contribution moved: cheaper offers are taken on
    // the spot, path edges that leaned on it as argmin recompute below.
    std::vector<Vertex> recompute;
    for (Vertex x : topo().path_children(fu, fv)) {
      const auto xi = static_cast<std::size_t>(x);
      if (idx_.tree_.replacement[xi] == id) {
        if (new_w <= old_w)
          set_mc(x, new_w, id, changed);
        else
          recompute.push_back(x);
      } else if (WeightId{new_w, id} <
                 WeightId{idx_.tree_.mc[xi], idx_.tree_.replacement[xi]}) {
        set_mc(x, new_w, id, changed);
      }
    }
    if (!recompute.empty()) {
      std::vector<WeightId> best(recompute.size(), WeightId{kPosInfW, -1});
      for (std::size_t j = 0; j < nt.size(); ++j) {
        if (nt.u[j] == nt.v[j]) continue;
        for (std::size_t r = 0; r < recompute.size(); ++r)
          if (topo().covers(recompute[r], nt.u[j], nt.v[j]))
            best[r] = std::min(
                best[r], WeightId{nt.w[j], static_cast<std::int64_t>(j)});
      }
      for (std::size_t r = 0; r < recompute.size(); ++r)
        set_mc(recompute[r], best[r].first, best[r].second, changed);
    }
  }
  re_resolve_key(fu, fv, changed);
}

void LiveCore::relabel(ChangedSet& changed) {
  changed.full = true;
  const CostReceipt receipt = idx_.receipt_;
  idx_ = *SensitivityIndex::build_host(inst_, receipt);
  MPCMST_ASSERT(idx_.violations_ == 0,
                "apply_update: exchange left a violated instance");
  rebuild_slot_caches();
}

LiveCore::Outcome LiveCore::apply(Vertex u, Vertex v, Weight new_w) {
  MPCMST_ASSERT(new_w > kNegInfW && new_w < kPosInfW,
                "apply_update: new weight " << new_w
                                            << " outside the price band");
  MPCMST_ASSERT(idx_.violations_ == 0,
                "apply_update: the live index must hold an MST");
  Outcome out;
  out.report.new_w = new_w;
  const auto ref = idx_.find(u, v);
  if (!ref) {
    out.report.status = Status::kUnknownEdge;
    return out;
  }
  out.report.edge = *ref;
  if (ref->is_tree) {
    const Vertex c = static_cast<Vertex>(ref->id);
    const auto ci = static_cast<std::size_t>(c);
    const Weight e_w = idx_.tree_.w[ci];
    const Weight e_mc = idx_.tree_.mc[ci];
    out.report.old_w = e_w;
    if (new_w == e_w) return out;  // kNoChange
    if (new_w <= e_mc) {           // a tie at the headroom edge stays (1.2)
      out.report.cls = UpdateClass::kTreeReweight;
      tree_reweight(c, new_w, out.changed);
    } else {
      const std::int64_t repl = idx_.tree_.replacement[ci];
      out.report.cls = UpdateClass::kTreeSwap;
      out.report.swapped_out = c;
      out.report.swapped_in = repl;
      exchange_edges(inst_, topo(), c, repl,
                     /*promoted_w=*/
                     inst_.nontree[static_cast<std::size_t>(repl)].w,
                     /*demoted_w=*/new_w);
      relabel(out.changed);
    }
  } else {
    const std::int64_t id = ref->id;
    const auto ei = static_cast<std::size_t>(id);
    const Weight e_w = idx_.nontree_.w[ei];
    const Weight e_maxpath = idx_.nontree_.maxpath[ei];
    const Vertex e_u = idx_.nontree_.u[ei], e_v = idx_.nontree_.v[ei];
    out.report.old_w = e_w;
    if (new_w == e_w) return out;  // kNoChange
    if (new_w >= e_maxpath) {      // covers kNegInfW (self loop) and ties
      out.report.cls = UpdateClass::kNonTreeReweight;
      nontree_reweight(id, new_w, out.changed);
    } else {
      out.report.cls = UpdateClass::kNonTreeSwap;
      const Vertex d = heaviest_path_child(inst_, topo(), e_u, e_v);
      out.report.swapped_out = d;
      out.report.swapped_in = id;
      exchange_edges(inst_, topo(), d, id, /*promoted_w=*/new_w,
                     /*demoted_w=*/
                     inst_.tree.weight[static_cast<std::size_t>(d)]);
      relabel(out.changed);
    }
  }
  idx_.fingerprint_ = SensitivityIndex::fingerprint_of(inst_);
  return out;
}

LiveCore::Outcome LiveCore::add_edge(Vertex u, Vertex v, Weight w) {
  MPCMST_ASSERT(w > kNegInfW && w < kPosInfW,
                "add_edge: weight " << w << " outside the price band");
  MPCMST_ASSERT(idx_.violations_ == 0,
                "add_edge: the live index must hold an MST");
  Outcome out;
  out.report.old_w = w;  // insert convention: old_w == new_w == insert price
  out.report.new_w = w;
  const auto n = static_cast<Vertex>(inst_.n());
  if (u == v) {
    out.report.status = Status::kNotApplicable;
    return out;
  }
  const bool u_fresh = (u == n), v_fresh = (v == n);
  if (u_fresh != v_fresh) {
    const Vertex anchor = u_fresh ? v : u;
    if (anchor < 0 || anchor >= n) {
      out.report.status = Status::kUnknownEdge;
      return out;
    }
    // Vertex attach: a leaf tree edge.  n changed, so every dense structure
    // (tree columns, topology view, shard ranges) is rebuilt via relabel.
    out.report.cls = UpdateClass::kVertexAttach;
    out.report.edge = EdgeRef{true, n};
    inst_.tree.n += 1;
    inst_.tree.parent.push_back(anchor);
    inst_.tree.weight.push_back(w);
    relabel(out.changed);
    idx_.fingerprint_ = SensitivityIndex::fingerprint_of(inst_);
    return out;
  }
  if (u < 0 || v < 0 || u >= n || v >= n) {
    out.report.status = Status::kUnknownEdge;
    return out;
  }
  const Vertex d = heaviest_path_child(inst_, topo(), u, v);
  const Weight maxpath = inst_.tree.weight[static_cast<std::size_t>(d)];
  const std::int64_t slot = allocate_nontree_slot(graph::WEdge{u, v, w});
  out.report.edge = EdgeRef{false, slot};
  if (w >= maxpath) {  // a tie stays out (Definition 1.2)
    out.report.cls = UpdateClass::kNonTreeInsert;
    const auto si = static_cast<std::size_t>(slot);
    NonTreeLabels& nt = idx_.nontree_;
    nt.maxpath[si] = maxpath;
    nt.sens[si] = sensitivity::nontree_sens(w, maxpath);
    out.changed.nontree_ids.push_back(slot);
    // Covering offer along the tree path: a strict (w, id) improvement on a
    // cut's argmin takes it, exactly the build's replacement order.
    for (Vertex x : topo().path_children(u, v)) {
      const auto xi = static_cast<std::size_t>(x);
      if (WeightId{w, slot} <
          WeightId{idx_.tree_.mc[xi], idx_.tree_.replacement[xi]})
        set_mc(x, w, slot, out.changed);
    }
    re_resolve_key(u, v, out.changed);
  } else {
    out.report.cls = UpdateClass::kInsertSwap;
    out.report.swapped_out = d;
    out.report.swapped_in = slot;
    exchange_edges(inst_, topo(), d, slot, /*promoted_w=*/w,
                   /*demoted_w=*/maxpath);
    relabel(out.changed);
  }
  idx_.fingerprint_ = SensitivityIndex::fingerprint_of(inst_);
  return out;
}

LiveCore::Outcome LiveCore::remove_edge(Vertex u, Vertex v) {
  MPCMST_ASSERT(idx_.violations_ == 0,
                "remove_edge: the live index must hold an MST");
  Outcome out;
  const auto ref = idx_.find(u, v);
  if (!ref) {
    out.report.status = Status::kUnknownEdge;
    return out;
  }
  out.report.edge = *ref;
  if (!ref->is_tree) {
    const auto i = static_cast<std::size_t>(ref->id);
    NonTreeLabels& nt = idx_.nontree_;
    const Vertex fu = nt.u[i], fv = nt.v[i];
    out.report.cls = UpdateClass::kNonTreeDelete;
    out.report.old_w = nt.w[i];
    out.report.new_w = 0;
    // Tombstone the slot in the instance, the labels and the slot caches.
    inst_.nontree[i] = graph::WEdge{0, 0, 0};
    nt.set(i, NonTreeEdgeInfo{0, 0, 0, kNegInfW, kPosInfW});
    out.changed.nontree_ids.push_back(ref->id);
    const std::uint64_t key = endpoint_key(fu, fv);
    const auto bucket = dup_of_key_.find(key);
    MPCMST_ASSERT(bucket != dup_of_key_.end(),
                  "remove_edge: slot " << ref->id << " missing from bucket");
    auto& slots = bucket->second;
    slots.erase(std::find(slots.begin(), slots.end(), ref->id));
    if (slots.empty()) dup_of_key_.erase(bucket);
    free_slots_.insert(
        std::lower_bound(free_slots_.begin(), free_slots_.end(), ref->id),
        ref->id);
    // Tree edges that leaned on the deleted edge as their argmin cover
    // recompute it (a removal can only worsen mc, never improve it).
    std::vector<Vertex> recompute;
    for (Vertex x : topo().path_children(fu, fv))
      if (idx_.tree_.replacement[static_cast<std::size_t>(x)] == ref->id)
        recompute.push_back(x);
    if (!recompute.empty()) {
      std::vector<WeightId> best(recompute.size(), WeightId{kPosInfW, -1});
      for (std::size_t j = 0; j < nt.size(); ++j) {
        if (nt.u[j] == nt.v[j]) continue;
        for (std::size_t r = 0; r < recompute.size(); ++r)
          if (topo().covers(recompute[r], nt.u[j], nt.v[j]))
            best[r] = std::min(
                best[r], WeightId{nt.w[j], static_cast<std::int64_t>(j)});
      }
      for (std::size_t r = 0; r < recompute.size(); ++r)
        set_mc(recompute[r], best[r].first, best[r].second, out.changed);
    }
    re_resolve_key(fu, fv, out.changed);
    idx_.fingerprint_ = SensitivityIndex::fingerprint_of(inst_);
    return out;
  }
  // Tree delete: promote the precomputed replacement, or refuse.
  const Vertex c = static_cast<Vertex>(ref->id);
  const auto ci = static_cast<std::size_t>(c);
  out.report.old_w = idx_.tree_.w[ci];
  out.report.new_w = 0;
  const std::int64_t repl = idx_.tree_.replacement[ci];
  if (repl < 0) {  // bridge in G: refuse before any mutation
    out.report.status = Status::kWouldDisconnect;
    return out;
  }
  out.report.cls = UpdateClass::kTreeDeletePromote;
  out.report.swapped_out = c;
  out.report.swapped_in = repl;
  exchange_edges(inst_, topo(), c, repl,
                 /*promoted_w=*/
                 inst_.nontree[static_cast<std::size_t>(repl)].w,
                 /*demoted_w=*/0);
  inst_.nontree[static_cast<std::size_t>(repl)] = graph::WEdge{0, 0, 0};
  relabel(out.changed);
  idx_.fingerprint_ = SensitivityIndex::fingerprint_of(inst_);
  return out;
}

LiveCore::Outcome LiveCore::apply_event(const EdgeEvent& ev) {
  switch (ev.op) {
    case UpdateOp::kReweight:
      return apply(ev.u, ev.v, ev.w);
    case UpdateOp::kAddEdge:
      return add_edge(ev.u, ev.v, ev.w);
    case UpdateOp::kRemoveEdge:
      return remove_edge(ev.u, ev.v);
  }
  MPCMST_CHECK(false, "apply_event: unknown op "
                          << static_cast<int>(ev.op));
  return {};
}

// Commit-path building blocks (declared in update.hpp): shared by both live
// backends and the networked leader so receipts, journal frames and the
// epoch-advance rule can never drift between deployments.

UpdateReceipt make_update_receipt(const LiveCore& core,
                                  const LiveCore::Outcome& out,
                                  std::uint64_t old_fingerprint) {
  UpdateReceipt r;
  r.report = out.report;
  r.old_fingerprint = old_fingerprint;
  r.new_fingerprint = core.index().fingerprint();
  r.full_relabel = out.changed.full;
  r.patched_tree_edges = out.changed.full
                             ? (core.index().n() ? core.index().n() - 1 : 0)
                             : out.changed.tree_children.size();
  r.patched_nontree_edges = out.changed.full
                                ? core.index().num_nontree()
                                : out.changed.nontree_ids.size();
  return r;
}

bool advances_epoch(const UpdateReport& rep) {
  return rep.status == Status::kOk && rep.cls != UpdateClass::kNoChange;
}

/// The journal record for one applied event: the submitted inputs (replay
/// re-dispatches them against the identical pre-state) plus the fingerprint
/// chain and the epoch the change produced.
JournalRecord make_journal_record(std::uint64_t epoch, const UpdateReceipt& r,
                                  const EdgeEvent& ev) {
  JournalRecord rec;
  rec.generation = epoch;
  rec.old_fingerprint = r.old_fingerprint;
  rec.new_fingerprint = r.new_fingerprint;
  rec.u = ev.u;
  rec.v = ev.v;
  rec.new_w = ev.w;
  rec.cls = static_cast<std::uint8_t>(r.report.cls);
  rec.op = static_cast<std::uint8_t>(ev.op);
  return rec;
}

void record_update_telemetry(const UpdateReceipt& r,
                             std::uint64_t duration_ns) {
  ServiceMetrics& tm = service_metrics();
  if (r.report.status != Status::kOk) {
    tm.update_rejects->inc();
    return;
  }
  const auto cls = static_cast<std::size_t>(r.report.cls) % kNumUpdateClasses;
  tm.updates[cls]->inc();
  if (duration_ns != 0) tm.update_latency[cls]->record(duration_ns);
}

UpdateReceipt replay_journal_record(UpdatableBackend& backend,
                                    const JournalRecord& rec) {
  MPCMST_CHECK(backend.fingerprint() == rec.old_fingerprint,
               "replay: journal record " << rec.generation
                                         << " does not chain from the "
                                            "current fingerprint");
  // Dispatch on the journaled op (v2 frames; v1 upgrades carry op = 0 =
  // reweight, the only op that existed then).
  UpdateReceipt r;
  switch (static_cast<UpdateOp>(rec.op)) {
    case UpdateOp::kReweight:
      r = backend.apply_update(rec.u, rec.v, rec.new_w);
      break;
    case UpdateOp::kAddEdge:
      r = backend.add_edge(rec.u, rec.v, rec.new_w);
      break;
    case UpdateOp::kRemoveEdge:
      r = backend.remove_edge(rec.u, rec.v);
      break;
    default:
      MPCMST_CHECK(false, "replay: journal record "
                              << rec.generation << " carries unknown op "
                              << static_cast<int>(rec.op));
  }
  MPCMST_CHECK(r.report.status == Status::kOk &&
                   static_cast<std::uint8_t>(r.report.cls) == rec.cls &&
                   r.new_fingerprint == rec.new_fingerprint &&
                   r.generation == rec.generation,
               "replay: record " << rec.generation
                                 << " diverged from the journal");
  return r;
}

// ---------------------------------------------------------------------------
// LiveMonolithBackend

LiveMonolithBackend::LiveMonolithBackend(
    graph::Instance inst, std::shared_ptr<const SensitivityIndex> snapshot,
    std::uint64_t initial_generation)
    : core_(std::move(inst), std::move(snapshot)),
      receipt_(core_.index().receipt()),
      generation_(initial_generation) {}

std::shared_ptr<LiveMonolithBackend> LiveMonolithBackend::build(
    mpc::Engine& eng, const graph::Instance& inst) {
  return std::make_shared<LiveMonolithBackend>(
      inst, SensitivityIndex::build(eng, inst));
}

Answer LiveMonolithBackend::answer(const Query& q) const {
  check_not_poisoned();
  std::shared_lock lock(mu_);
  return answer_query(core_.index(), q);
}

std::size_t LiveMonolithBackend::n() const {
  std::shared_lock lock(mu_);
  return core_.index().n();
}

std::size_t LiveMonolithBackend::num_nontree() const {
  std::shared_lock lock(mu_);
  return core_.index().num_nontree();
}

bool LiveMonolithBackend::is_mst() const {
  std::shared_lock lock(mu_);
  return core_.index().is_mst();
}

std::size_t LiveMonolithBackend::violations() const {
  std::shared_lock lock(mu_);
  return core_.index().violations();
}

std::uint64_t LiveMonolithBackend::fingerprint() const {
  std::shared_lock lock(mu_);
  return core_.index().fingerprint();
}

std::optional<EdgeRef> LiveMonolithBackend::find(Vertex u, Vertex v) const {
  std::shared_lock lock(mu_);
  return core_.index().find(u, v);
}

std::optional<NonTreeEdgeInfo> LiveMonolithBackend::nontree_info(
    std::int64_t orig_id) const {
  std::shared_lock lock(mu_);
  if (orig_id < 0 ||
      orig_id >= static_cast<std::int64_t>(core_.index().num_nontree()))
    return std::nullopt;
  return core_.index().nontree_edge(orig_id);
}

graph::Instance LiveMonolithBackend::instance_snapshot() const {
  std::shared_lock lock(mu_);
  return core_.instance();
}

void LiveMonolithBackend::check_not_poisoned() const {
  if (poisoned_.load(std::memory_order_acquire)) {
    throw ServiceError(
        ServiceStatus::kPoisoned,
        "live backend is poisoned: a journal commit failed after the "
        "state mutated; recover the tier from its persistence dir");
  }
}

std::vector<UpdateReceipt> LiveMonolithBackend::ingest(
    const std::vector<EdgeEvent>& events) {
  const bool timed = metrics_enabled();
  std::vector<UpdateReceipt> receipts;
  std::vector<std::uint64_t> durations;
  receipts.reserve(events.size());
  durations.reserve(events.size());
  std::unique_lock lock(mu_);
  check_not_poisoned();
  std::uint64_t epoch = generation_.load(std::memory_order_relaxed);
  std::vector<JournalRecord> staged;
  // Group commit: apply the whole batch under one writer section, stage the
  // journal records, then make them durable with ONE append + fsync.  The
  // epoch store comes after the commit, so nothing is acknowledged (and no
  // new generation is visible) until the batch is on disk; any throw before
  // that poisons the backend — applied-but-unjournaled state must not serve.
  try {
    for (const EdgeEvent& ev : events) {
      const std::uint64_t t0 = timed ? metrics_now_ns() : 0;
      const std::uint64_t old_fp = core_.index().fingerprint();
      const auto out = core_.apply_event(ev);
      UpdateReceipt r = make_update_receipt(core_, out, old_fp);
      if (advances_epoch(r.report)) {
        ++epoch;
        staged.push_back(make_journal_record(epoch, r, ev));
      }
      r.generation = epoch;
      receipts.push_back(std::move(r));
      durations.push_back(timed ? metrics_now_ns() - t0 : 0);
    }
    if (persist_ && !staged.empty()) persist_->commit_batch(staged);
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  generation_.store(epoch, std::memory_order_release);
  // Journal shipping tap: the batch is durable and published — stream it to
  // any subscribed replica hub before the writer section ends, so shipped
  // records leave in commit order.
  if (commit_listener_ && !staged.empty()) commit_listener_(staged);
  try {
    if (persist_ && persist_->checkpoint_due())
      persist_->checkpoint(epoch, core_.index(), nullptr);
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  lock.unlock();
  for (std::size_t i = 0; i < receipts.size(); ++i)
    record_update_telemetry(receipts[i], durations[i]);
  return receipts;
}

void LiveMonolithBackend::attach_persistence(std::shared_ptr<Persistence> p) {
  std::unique_lock lock(mu_);
  persist_ = std::move(p);
}

void LiveMonolithBackend::checkpoint() {
  std::unique_lock lock(mu_);
  check_not_poisoned();
  if (!persist_) return;
  persist_->checkpoint(generation_.load(std::memory_order_relaxed),
                       core_.index(), nullptr);
}

// ---------------------------------------------------------------------------
// LiveShardedBackend

LiveShardedBackend::LiveShardedBackend(
    graph::Instance inst, std::shared_ptr<const SensitivityIndex> snapshot,
    std::size_t num_shards)
    : core_(std::move(inst), snapshot),
      shards_(*ShardedSensitivityIndex::split(
          *snapshot, clamp_shard_count(num_shards, snapshot->n()))),
      receipt_(shards_.receipt()) {}

LiveShardedBackend::LiveShardedBackend(
    graph::Instance inst, std::shared_ptr<const SensitivityIndex> snapshot,
    std::shared_ptr<const ShardedSensitivityIndex> shards,
    std::uint64_t initial_generation)
    : core_(std::move(inst), std::move(snapshot)),
      shards_(*shards),
      receipt_(shards_.receipt()),
      generation_(initial_generation) {
  MPCMST_ASSERT(shards_.fingerprint() == core_.index().fingerprint(),
                "recovered shard set does not match the monolithic snapshot");
  MPCMST_ASSERT(shards_.generation() == initial_generation,
                "recovered shard set carries epoch "
                    << shards_.generation() << ", expected "
                    << initial_generation);
}

std::shared_ptr<LiveShardedBackend> LiveShardedBackend::build(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards) {
  return std::make_shared<LiveShardedBackend>(
      inst, SensitivityIndex::build(eng, inst), num_shards);
}

Answer LiveShardedBackend::answer(const Query& q) const {
  check_not_poisoned();
  std::shared_lock lock(mu_);
  return route_query(shards_, q);
}

std::size_t LiveShardedBackend::n() const {
  std::shared_lock lock(mu_);
  return shards_.n();
}

std::size_t LiveShardedBackend::num_nontree() const {
  std::shared_lock lock(mu_);
  return shards_.num_nontree();
}

bool LiveShardedBackend::is_mst() const {
  std::shared_lock lock(mu_);
  return shards_.is_mst();
}

std::size_t LiveShardedBackend::violations() const {
  std::shared_lock lock(mu_);
  return shards_.violations();
}

std::uint64_t LiveShardedBackend::fingerprint() const {
  std::shared_lock lock(mu_);
  return shards_.fingerprint();
}

std::size_t LiveShardedBackend::num_shards() const {
  std::shared_lock lock(mu_);
  return shards_.num_shards();
}

std::optional<EdgeRef> LiveShardedBackend::find(Vertex u, Vertex v) const {
  std::shared_lock lock(mu_);
  const auto res = shards_.resolve(u, v);
  if (!res) return std::nullopt;
  return res->ref;
}

std::optional<NonTreeEdgeInfo> LiveShardedBackend::nontree_info(
    std::int64_t orig_id) const {
  std::shared_lock lock(mu_);
  return shards_.nontree_info(orig_id);
}

graph::Instance LiveShardedBackend::instance_snapshot() const {
  std::shared_lock lock(mu_);
  return core_.instance();
}

void LiveShardedBackend::scatter(const ChangedSet& changed,
                                 std::uint64_t epoch) {
  persist_crash_point("shard-scatter");
  const SensitivityIndex& m = core_.index();
  if (changed.full) {
    // A swap relabeled everything; re-split the relabeled monolith (same
    // code path that built the shards, so contents stay byte-identical) —
    // per-shard fragility orders and cost receipts come out recomputed.
    shards_ = *ShardedSensitivityIndex::split(m, shards_.num_shards());
  } else {
    // Each mutation goes through the shared shard patch primitives
    // (shard.hpp) — the same functions the networked ShardServer applies,
    // so a slice behind a socket and a slice in this process stay
    // byte-identical by construction.
    for (const Vertex c : changed.tree_children)
      shard_patch_tree(shards_.shards_[shards_.shard_of(c)], c,
                       m.tree_edge(c));
    bool moved = false;
    for (const std::int64_t id : changed.nontree_ids) {
      // A fresh insert lands in a grown slot; a tombstone rehomes to
      // shard_of(0).  Reconciling every shard against the unique owner
      // evicts the stale slot wherever it was.
      const NonTreeEdgeInfo info = m.nontree_edge(id);
      const std::size_t owner = shards_.shard_of(std::min(info.u, info.v));
      for (std::size_t i = 0; i < shards_.shards_.size(); ++i)
        moved |= shard_patch_nontree(shards_.shards_[i], i == owner, id, info);
    }
    for (const auto& [key, ref] : changed.endpoints)
      shard_patch_endpoint(
          shards_.shards_[shards_.shard_of(static_cast<Vertex>(key >> 32))],
          key, ref);
    moved = moved || shards_.num_nontree_ != m.num_nontree();
    shards_.num_nontree_ = m.num_nontree();
    if (moved || !changed.endpoints.empty()) {
      // Topology churn resized a shard's columns or endpoint map: refresh
      // the cost receipts in place (same formula as finalize()).
      for (IndexShard& s : shards_.shards_) shard_refresh_cost(s);
    }
    shards_.fingerprint_ = m.fingerprint();
  }
  // Epoch barrier: stamp every shard with the new epoch before the lock is
  // released; the top-k merge asserts uniformity against the global stamp.
  shards_.generation_ = epoch;
  for (IndexShard& s : shards_.shards_) s.generation = epoch;
}

void LiveShardedBackend::check_not_poisoned() const {
  if (poisoned_.load(std::memory_order_acquire)) {
    throw ServiceError(
        ServiceStatus::kPoisoned,
        "live backend is poisoned: a journal commit failed after the "
        "state mutated; recover the tier from its persistence dir");
  }
}

std::vector<UpdateReceipt> LiveShardedBackend::ingest(
    const std::vector<EdgeEvent>& events) {
  const bool timed = metrics_enabled();
  std::vector<UpdateReceipt> receipts;
  std::vector<std::uint64_t> durations;
  receipts.reserve(events.size());
  durations.reserve(events.size());
  std::unique_lock lock(mu_);
  check_not_poisoned();
  std::uint64_t epoch = generation_.load(std::memory_order_relaxed);
  std::vector<JournalRecord> staged;
  // Group commit (see the monolith's ingest): apply and scatter the whole
  // batch under one writer section — scattering pre-commit is safe here
  // because readers are excluded for the duration — then journal it with
  // ONE append + fsync.  Any throw poisons: applied-but-unjournaled events
  // (or shards stamped ahead of the published generation) must not serve.
  try {
    for (const EdgeEvent& ev : events) {
      const std::uint64_t t0 = timed ? metrics_now_ns() : 0;
      const std::uint64_t old_fp = shards_.fingerprint();
      const auto out = core_.apply_event(ev);
      UpdateReceipt r = make_update_receipt(core_, out, old_fp);
      if (advances_epoch(r.report)) {
        ++epoch;
        staged.push_back(make_journal_record(epoch, r, ev));
        scatter(out.changed, epoch);
      }
      r.generation = epoch;
      receipts.push_back(std::move(r));
      durations.push_back(timed ? metrics_now_ns() - t0 : 0);
    }
    if (persist_ && !staged.empty()) persist_->commit_batch(staged);
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  generation_.store(epoch, std::memory_order_release);
  // Journal shipping tap (see the monolith's ingest).
  if (commit_listener_ && !staged.empty()) commit_listener_(staged);
  try {
    if (persist_ && persist_->checkpoint_due())
      persist_->checkpoint(epoch, core_.index(), &shards_);
  } catch (...) {
    poisoned_.store(true, std::memory_order_release);
    throw;
  }
  lock.unlock();
  for (std::size_t i = 0; i < receipts.size(); ++i)
    record_update_telemetry(receipts[i], durations[i]);
  return receipts;
}

void LiveShardedBackend::attach_persistence(std::shared_ptr<Persistence> p) {
  std::unique_lock lock(mu_);
  persist_ = std::move(p);
}

void LiveShardedBackend::checkpoint() {
  std::unique_lock lock(mu_);
  check_not_poisoned();
  if (!persist_) return;
  persist_->checkpoint(generation_.load(std::memory_order_relaxed),
                       core_.index(), &shards_);
}

}  // namespace mpcmst::service
