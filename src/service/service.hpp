// QueryService: the serve-many half of the sensitivity engine.
//
// Owns a shared immutable IndexBackend (monolithic snapshot or sharded
// router — the pool and cache are agnostic), a thread pool, and a sharded
// LRU result cache keyed by (graph fingerprint, canonical query).  Single
// queries are answered inline (cache-first).  Batches take a fast path: one
// bulk cache probe (one lock per cache shard, not per query), misses sorted
// into backend-shard runs and answered in parallel on the pool, then one
// bulk insert — so a warm batch never takes the LRU lock per query and a
// cold batch keeps each worker inside one shard's working set.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/parallel.hpp"
#include "service/cache.hpp"
#include "service/index.hpp"
#include "service/journal.hpp"
#include "service/query.hpp"
#include "service/router.hpp"
#include "service/telemetry.hpp"
#include "service/update.hpp"

namespace mpcmst::service {

struct ServiceOptions {
  /// Total concurrency for batched queries (including the calling thread);
  /// 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Total cached answers across shards; 0 disables the cache.
  std::size_t cache_capacity = 1 << 16;
  std::size_t cache_shards = 16;
  /// Batch entries per worker task (tune against per-task overhead).
  std::size_t chunk_size = 256;
};

/// What recover() found on disk (optional out-param for operators/tests).
struct RecoveredInfo {
  std::uint64_t snapshot_generation = 0;  // the snapshot replay started from
  std::uint64_t replayed_records = 0;     // journal tail applied on top
  bool journal_was_torn = false;          // a torn tail was truncated
};

/// One declarative description of a serving deployment, consumed by
/// QueryService::open() — the single factory every deployment shape funnels
/// through (the legacy build/build_sharded/build_live/build_live_sharded/
/// recover factories are thin wrappers over it).
///
/// Shapes, by flag:
///   - in-process snapshot:        engine+instance            (sharded?)
///   - in-process live:            engine+instance, live=true (sharded?,
///                                 persist?)
///   - recovery:                   recover_existing=true, persist required
///   - networked, read-only:       remote_shards non-empty, live=false —
///                                 attach to already-running shard servers
///   - networked, leader:          remote_shards non-empty, live=true,
///                                 engine+instance — build here, bootstrap
///                                 the servers, drive them with patches
struct ServiceConfig {
  /// Build inputs (required unless recover_existing or a read-only remote
  /// attach).
  mpc::Engine* engine = nullptr;
  const graph::Instance* instance = nullptr;

  bool sharded = false;        // vertex-range shards vs one monolith
  std::size_t num_shards = 1;  // clamped to [1, n] like build_sharded
  bool live = false;           // updatable generation layer

  std::optional<PersistenceConfig> persist;
  bool recover_existing = false;       // reconstruct from persist->dir
  RecoveredInfo* recovered = nullptr;  // out-param for recoveries (optional)

  /// Non-empty: the networked shard tier.  One endpoint per shard, in shard
  /// order ("host:port" or "unix:/path"); `sharded`/`num_shards` are implied
  /// by the list.
  std::vector<std::string> remote_shards;

  ServiceOptions options;
};

class QueryService {
 public:
  /// Serve any backend: a MonolithicBackend or a QueryRouter over shards.
  explicit QueryService(std::shared_ptr<const IndexBackend> backend,
                        ServiceOptions opts = {});
  /// Convenience: wrap a monolithic snapshot (keeps index() available).
  explicit QueryService(std::shared_ptr<const SensitivityIndex> index,
                        ServiceOptions opts = {});
  /// Serve an updatable backend: queries flow as usual, and apply_update()
  /// absorbs confirmed changes into the same backend.
  explicit QueryService(std::shared_ptr<UpdatableBackend> backend,
                        ServiceOptions opts = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// THE factory: open the deployment `cfg` describes (see ServiceConfig).
  /// Throws ModelError (or ServiceError for network faults) when the config
  /// is inconsistent or the deployment cannot be reached/recovered.
  static std::unique_ptr<QueryService> open(const ServiceConfig& cfg);

  /// Legacy nickname for QueryService::RecoveredInfo (now a namespace-scope
  /// struct so ServiceConfig can carry a pointer to one).
  using RecoveredInfo = mpcmst::service::RecoveredInfo;

  // Deprecated shape-specific factories: thin wrappers over open().  Prefer
  // QueryService::open(ServiceConfig) in new code.

  /// [[deprecated]] One distributed build, then serve (monolithic snapshot).
  static std::unique_ptr<QueryService> build(mpc::Engine& eng,
                                             const graph::Instance& inst,
                                             ServiceOptions opts = {});

  /// [[deprecated]] One distributed build scattered straight into
  /// `num_shards` vertex-range shards, served through the QueryRouter.
  /// A request for more shards than vertices is clamped; the count actually
  /// built is reported in backend().receipt().effective_shards.
  static std::unique_ptr<QueryService> build_sharded(
      mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
      ServiceOptions opts = {});

  /// [[deprecated]] One distributed build behind the mutable generation
  /// layer (LiveMonolithBackend): serve queries and absorb confirmed
  /// changes.  With `persist`, the tier becomes crash-consistent: the
  /// directory is initialized with a generation-0 snapshot, every applied
  /// update is journaled before its generation is visible, and recover()
  /// can reconstruct the tier after any process death.
  static std::unique_ptr<QueryService> build_live(
      mpc::Engine& eng, const graph::Instance& inst, ServiceOptions opts = {},
      std::optional<PersistenceConfig> persist = std::nullopt);

  /// [[deprecated]] Same, served from in-place-updatable vertex-range shards
  /// (LiveShardedBackend); `num_shards` is clamped like build_sharded.
  static std::unique_ptr<QueryService> build_live_sharded(
      mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
      ServiceOptions opts = {},
      std::optional<PersistenceConfig> persist = std::nullopt);

  /// [[deprecated]] Reconstruct a persisted live tier without any
  /// distributed or host rebuild: load the newest valid snapshot in cfg.dir,
  /// truncate any torn journal tail, replay the remaining records through
  /// the ordinary update path (each step's fingerprint chain and
  /// classification are checked against the record), and resume journaling.
  /// The recovered service answers byte-identically to one that never
  /// crashed — the CI recovery job enforces this against SIGKILLs at every
  /// commit-path phase.  Throws ModelError when the directory holds no valid
  /// snapshot or the journal does not chain.
  static std::unique_ptr<QueryService> recover(const PersistenceConfig& cfg,
                                               ServiceOptions opts = {},
                                               RecoveredInfo* info = nullptr);

  /// Answer one query through the cache, inline on the calling thread.
  Answer answer(const Query& q);

  /// Answer a batch; answers align with queries by position, and each one is
  /// byte-identical to what answer() would have returned for that query.
  /// Fast path: one bulk cache probe, misses counting-sorted by
  /// backend().shard_hint() and answered as parallel shard-runs, one bulk
  /// insert (skipped when an update landed mid-batch, exactly like the
  /// single-query generation check).
  std::vector<Answer> answer_batch(const std::vector<Query>& queries);

  // Typed shorthands for the five query families.
  Answer price_change(Vertex u, Vertex v, Weight delta);
  Answer replacement_edge(Vertex u, Vertex v);
  Answer top_k_fragile(std::int64_t k);
  Answer corridor_headroom(Vertex u, Vertex v);
  /// Batched verification (the scenario query): is T still an MST when all
  /// of `changes` land at once — and if not, which edges certify it?
  Answer still_mst(std::vector<PriceChange> changes);

  /// The answer source (works for every backend).
  const IndexBackend& backend() const { return *backend_; }

  /// Was this service built over an updatable backend?
  bool updatable() const { return updatable_ != nullptr; }

  /// The updatable view of the backend (null for immutable snapshots).
  const UpdatableBackend* updatable_backend() const {
    return updatable_.get();
  }
  UpdatableBackend* updatable_backend() { return updatable_.get(); }

  /// Absorb one confirmed change (asserts updatable()).  The backend rotates
  /// its fingerprint, so cached answers of the previous generation can never
  /// be served for the new one — they simply stop matching and age out.
  UpdateReceipt apply_update(Vertex u, Vertex v, Weight new_w);

  /// Insert a brand-new edge / delete an existing one (asserts updatable();
  /// see UpdatableBackend for the class and refusal semantics).
  UpdateReceipt add_edge(Vertex u, Vertex v, Weight w);
  UpdateReceipt remove_edge(Vertex u, Vertex v);

  /// Absorb a raw event stream (asserts updatable()).  Events are applied in
  /// order in chunks of opts.chunk_size, each chunk group-committed with one
  /// journal append + fsync; receipts align with events by position.
  std::vector<UpdateReceipt> ingest(const std::vector<EdgeEvent>& events);

  /// Force a snapshot + journal compaction now (asserts updatable(); no-op
  /// on tiers built without a PersistenceConfig).
  void checkpoint();

  /// The monolithic snapshot; only valid when the service was constructed
  /// from one (asserts otherwise) — sharded callers go through backend().
  const SensitivityIndex& index() const;

  struct Stats {
    std::uint64_t queries_served = 0;  // this service instance
    std::uint64_t generation = 0;      // backend generation at snapshot time
    CacheStats cache;                  // this instance's cache (incl.
                                       // evictions, surfaced end-to-end)
    TelemetrySnapshot telemetry;       // process-wide registry slice
  };
  Stats stats() const;

  std::size_t num_threads() const { return pool_.size(); }

 private:
  /// Cache key: the graph fingerprint pins every entry to the instance it
  /// answered, so the cache survives incremental updates — entries of a
  /// superseded generation stop matching (and an update sequence that lands
  /// back on a byte-identical instance legitimately re-validates them).
  struct CacheKey {
    std::uint64_t fingerprint = 0;
    Query query;

    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(
          hash_combine(k.fingerprint, QueryHash{}(k.query)));
    }
  };

  std::shared_ptr<const IndexBackend> backend_;
  std::shared_ptr<UpdatableBackend> updatable_;  // same object, if updatable
  ServiceOptions opts_;
  ShardedLruCache<CacheKey, Answer, CacheKeyHash> cache_;
  std::atomic<std::uint64_t> served_{0};
  ThreadPool pool_;
};

}  // namespace mpcmst::service
