// Backend abstraction and query routing for the serving layer.
//
// QueryService (service.hpp) owns worker threads and a result cache; neither
// cares where answers come from.  IndexBackend is that seam: a thread-safe,
// immutable answer source with the metadata the serving layer and the CLI
// surfaces need.  Two implementations:
//   - MonolithicBackend — adapts the single-host SensitivityIndex;
//   - QueryRouter — serves the same four-query API over a
//     ShardedSensitivityIndex: point queries resolve by endpoint-map lookup
//     in at most two shards (a tree entry lives with its child, which may be
//     either endpoint), and top_k_fragile runs a k-way heap merge over the
//     per-shard fragility orders.
// Both delegate answer assembly to the shared helpers in query.hpp, so a
// query answered through any backend returns byte-identical bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "service/index.hpp"
#include "service/query.hpp"
#include "service/shard.hpp"

namespace mpcmst::service {

/// What the serving layer needs from an index, monolithic or sharded.  All
/// implementations are immutable after construction: every method is const
/// and safe to call from concurrent workers without locking.
class IndexBackend {
 public:
  virtual ~IndexBackend() = default;

  /// Evaluate one query (pure; the service adds caching on top).
  virtual Answer answer(const Query& q) const = 0;

  virtual std::size_t n() const = 0;
  virtual std::size_t num_nontree() const = 0;
  virtual bool is_mst() const = 0;
  virtual std::size_t violations() const = 0;
  virtual std::uint64_t fingerprint() const = 0;
  virtual const CostReceipt& receipt() const = 0;
  virtual std::size_t num_shards() const = 0;

  /// Resolve an edge by endpoints (order-insensitive; same precedence rules
  /// on every backend: tree wins, then the lightest duplicate).
  virtual std::optional<EdgeRef> find(Vertex u, Vertex v) const = 0;

  /// Non-tree edge labels by orig_id (display paths, e.g. printing the
  /// endpoints of a replacement edge).
  virtual std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const = 0;
};

/// The single-host snapshot behind the backend seam.
class MonolithicBackend final : public IndexBackend {
 public:
  explicit MonolithicBackend(std::shared_ptr<const SensitivityIndex> index);

  const SensitivityIndex& index() const { return *index_; }
  std::shared_ptr<const SensitivityIndex> index_ptr() const { return index_; }

  Answer answer(const Query& q) const override;
  std::size_t n() const override { return index_->n(); }
  std::size_t num_nontree() const override { return index_->num_nontree(); }
  bool is_mst() const override { return index_->is_mst(); }
  std::size_t violations() const override { return index_->violations(); }
  std::uint64_t fingerprint() const override { return index_->fingerprint(); }
  const CostReceipt& receipt() const override { return index_->receipt(); }
  std::size_t num_shards() const override { return 1; }
  std::optional<EdgeRef> find(Vertex u, Vertex v) const override {
    return index_->find(u, v);
  }
  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override;

 private:
  std::shared_ptr<const SensitivityIndex> index_;
};

/// The four-query API over vertex-range shards.
class QueryRouter final : public IndexBackend {
 public:
  explicit QueryRouter(std::shared_ptr<const ShardedSensitivityIndex> index);

  const ShardedSensitivityIndex& sharded() const { return *index_; }

  Answer answer(const Query& q) const override;
  std::size_t n() const override { return index_->n(); }
  std::size_t num_nontree() const override { return index_->num_nontree(); }
  bool is_mst() const override { return index_->is_mst(); }
  std::size_t violations() const override { return index_->violations(); }
  std::uint64_t fingerprint() const override { return index_->fingerprint(); }
  const CostReceipt& receipt() const override { return index_->receipt(); }
  std::size_t num_shards() const override { return index_->num_shards(); }
  std::optional<EdgeRef> find(Vertex u, Vertex v) const override;
  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override {
    return index_->nontree_info(orig_id);
  }

 private:
  /// k-way merge over the per-shard fragility orders; (sens, child)
  /// tie-breaking reproduces the monolithic global order exactly.
  Answer top_k(const Query& q) const;

  std::shared_ptr<const ShardedSensitivityIndex> index_;
};

}  // namespace mpcmst::service
