// Backend abstraction and query routing for the serving layer.
//
// QueryService (service.hpp) owns worker threads and a result cache; neither
// cares where answers come from.  IndexBackend is that seam: a thread-safe,
// immutable answer source with the metadata the serving layer and the CLI
// surfaces need.  Two implementations:
//   - MonolithicBackend — adapts the single-host SensitivityIndex;
//   - QueryRouter — serves the same four-query API over a
//     ShardedSensitivityIndex: point queries resolve by endpoint-map lookup
//     in at most two shards (a tree entry lives with its child, which may be
//     either endpoint), and top_k_fragile runs a k-way heap merge over the
//     per-shard fragility orders.
// Both delegate answer assembly to the shared helpers in query.hpp, so a
// query answered through any backend returns byte-identical bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "service/index.hpp"
#include "service/query.hpp"
#include "service/shard.hpp"

namespace mpcmst::service {

/// What the serving layer needs from an index, monolithic or sharded.  All
/// implementations are safe to call from concurrent workers: the snapshot
/// backends below are immutable after construction, and the updatable ones
/// (update.hpp) synchronize internally and advance `generation()` on every
/// applied change.
class IndexBackend {
 public:
  virtual ~IndexBackend() = default;

  /// Evaluate one query (pure; the service adds caching on top).
  virtual Answer answer(const Query& q) const = 0;

  virtual std::size_t n() const = 0;
  virtual std::size_t num_nontree() const = 0;
  virtual bool is_mst() const = 0;
  virtual std::size_t violations() const = 0;
  virtual std::uint64_t fingerprint() const = 0;
  virtual const CostReceipt& receipt() const = 0;
  virtual std::size_t num_shards() const = 0;

  /// Strictly increasing update counter; constant 0 for immutable snapshot
  /// backends.  The service uses it to revalidate cache inserts: an answer
  /// is cached only if no update landed while it was being computed (the
  /// fingerprint alone is not enough — an update plus a revert restores the
  /// fingerprint but not the moment in time).
  virtual std::uint64_t generation() const { return 0; }

  /// Which shard's data a point query will touch (always 0 on monolithic
  /// backends).  A routing *hint* only — used by the batch fast path to sort
  /// a batch into shard-runs so consecutive queries stay cache-local; it
  /// never affects answers.  Must be callable without taking backend locks.
  virtual std::size_t shard_hint(const Query&) const { return 0; }

  /// Does this backend answer a whole shard-run of queries more cheaply than
  /// a per-query loop?  Remote backends (net/client.hpp) say yes: the batch
  /// fast path then issues one answer_many() per counting-sorted shard-run —
  /// one RPC per shard instead of one per query.  In-process backends keep
  /// the default and the batch path never deviates from its per-query loop.
  virtual bool batched_runs() const { return false; }

  /// Answer a run of queries (answers align by position, each byte-identical
  /// to answer() of that query).  The default is the plain loop; remote
  /// backends override it with a batched RPC.
  virtual std::vector<Answer> answer_many(const std::vector<Query>& qs) const {
    std::vector<Answer> out;
    out.reserve(qs.size());
    for (const Query& q : qs) out.push_back(answer(q));
    return out;
  }

  /// Resolve an edge by endpoints (order-insensitive; same precedence rules
  /// on every backend: tree wins, then the lightest duplicate).
  virtual std::optional<EdgeRef> find(Vertex u, Vertex v) const = 0;

  /// Non-tree edge labels by orig_id (display paths, e.g. printing the
  /// endpoints of a replacement edge).
  virtual std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const = 0;
};

/// The single-host snapshot behind the backend seam.
class MonolithicBackend final : public IndexBackend {
 public:
  explicit MonolithicBackend(std::shared_ptr<const SensitivityIndex> index);

  const SensitivityIndex& index() const { return *index_; }
  std::shared_ptr<const SensitivityIndex> index_ptr() const { return index_; }

  Answer answer(const Query& q) const override;
  std::size_t n() const override { return index_->n(); }
  std::size_t num_nontree() const override { return index_->num_nontree(); }
  bool is_mst() const override { return index_->is_mst(); }
  std::size_t violations() const override { return index_->violations(); }
  std::uint64_t fingerprint() const override { return index_->fingerprint(); }
  const CostReceipt& receipt() const override { return index_->receipt(); }
  std::size_t num_shards() const override { return 1; }
  std::optional<EdgeRef> find(Vertex u, Vertex v) const override {
    return index_->find(u, v);
  }
  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override;

 private:
  std::shared_ptr<const SensitivityIndex> index_;
};

/// The shard a point query's first probe lands on (0 for top-k and
/// out-of-range endpoints): pure partition arithmetic, no shard data read —
/// safe to call concurrently with in-place updates.
std::size_t point_query_shard(const ShardedSensitivityIndex& index,
                              const Query& q);

/// The four-query API over vertex-range shards.
class QueryRouter final : public IndexBackend {
 public:
  explicit QueryRouter(std::shared_ptr<const ShardedSensitivityIndex> index);

  const ShardedSensitivityIndex& sharded() const { return *index_; }

  Answer answer(const Query& q) const override;
  std::size_t n() const override { return index_->n(); }
  std::size_t num_nontree() const override { return index_->num_nontree(); }
  bool is_mst() const override { return index_->is_mst(); }
  std::size_t violations() const override { return index_->violations(); }
  std::uint64_t fingerprint() const override { return index_->fingerprint(); }
  const CostReceipt& receipt() const override { return index_->receipt(); }
  std::size_t num_shards() const override { return index_->num_shards(); }
  std::size_t shard_hint(const Query& q) const override {
    return point_query_shard(*index_, q);
  }
  std::optional<EdgeRef> find(Vertex u, Vertex v) const override;
  std::optional<NonTreeEdgeInfo> nontree_info(
      std::int64_t orig_id) const override {
    return index_->nontree_info(orig_id);
  }

 private:
  std::shared_ptr<const ShardedSensitivityIndex> index_;
};

// Shared shard-routing evaluators: QueryRouter serves them over an immutable
// sharded snapshot, LiveShardedBackend (update.hpp) over a mutating one
// (under its own lock).  Keeping one implementation guarantees the two
// backends can never drift.

/// Evaluate one query against a sharded index: point queries resolve by
/// endpoint-map lookup in at most two shards, top-k goes to merge_top_k.
Answer route_query(const ShardedSensitivityIndex& index, const Query& q);

/// k-way merge over the per-shard fragility orders; (sens, child)
/// tie-breaking reproduces the monolithic global order exactly.  The merge
/// runs behind an epoch barrier: every consumed shard must carry the index's
/// current generation stamp, checked again after the merge — a torn update
/// (some shards patched, some not) can therefore never leak into one
/// combined answer.
Answer merge_top_k(const ShardedSensitivityIndex& index, const Query& q);

/// still_mst over shards: every change resolves through the endpoint maps
/// (≤2 probes each), then each shard certifies its own non-tree roster
/// against the batch (tree weights served from the owning shard's columns,
/// global path questions from the router-resident topology) and the router
/// merges the per-shard certificate lists into ascending orig_id — the
/// monolith's scan order, so answers stay byte-identical.  Runs behind the
/// same epoch barrier as merge_top_k.
Answer merge_still_mst(const ShardedSensitivityIndex& index, const Query& q);

}  // namespace mpcmst::service
