#include "service/index.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "seq/dsu.hpp"
#include "seq/oracles.hpp"

namespace mpcmst::service {

std::uint64_t endpoint_key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  MPCMST_ASSERT(u >= 0 && v < (Vertex{1} << 32),
                "endpoint_key: vertex out of range " << u << "," << v);
  return (std::uint64_t(u) << 32) | std::uint64_t(v);
}

/// Non-tree edges are scanned by ascending weight; a DSU jumps over tree
/// edges that already received their (lightest) cover.
std::vector<std::int64_t> replacement_edges(const graph::Instance& inst,
                                            const verify::TreeTopology& topo) {
  const std::size_t n = inst.n();
  std::vector<std::int64_t> repl(n, -1);
  std::vector<std::size_t> order(inst.nontree.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return inst.nontree[a].w < inst.nontree[b].w;
                   });
  seq::Dsu jump(n);
  std::vector<Vertex> top(n);
  std::iota(top.begin(), top.end(), Vertex{0});
  auto climb_top = [&](Vertex x) { return top[jump.find(x)]; };
  for (std::size_t idx : order) {
    const graph::WEdge& e = inst.nontree[idx];
    if (e.u == e.v) continue;
    const Vertex a = topo.lca(e.u, e.v);
    for (Vertex x : {e.u, e.v}) {
      x = climb_top(x);
      while (topo.depth(x) > topo.depth(a)) {
        repl[x] = static_cast<std::int64_t>(idx);
        const Vertex next = climb_top(inst.tree.parent[x]);
        jump.unite(x, inst.tree.parent[x]);
        top[jump.find(x)] = next;
        x = next;
      }
    }
  }
  return repl;
}

std::uint64_t SensitivityIndex::fingerprint_of(const graph::Instance& inst) {
  std::uint64_t h = hash_combine(inst.n(), inst.nontree.size(),
                                 std::uint64_t(inst.tree.root));
  for (std::size_t v = 0; v < inst.n(); ++v)
    h = hash_combine(h, std::uint64_t(inst.tree.parent[v]),
                     std::uint64_t(inst.tree.weight[v]));
  for (const graph::WEdge& e : inst.nontree)
    h = hash_combine(h, hash_combine(std::uint64_t(e.u), std::uint64_t(e.v)),
                     std::uint64_t(e.w));
  return h;
}

void SensitivityIndex::finish(SensitivityIndex& idx,
                              const graph::Instance& inst,
                              const verify::TreeTopology& topo) {
  // --- replacement edges + cross-check against the mc labels ---
  const std::vector<std::int64_t> repl = replacement_edges(inst, topo);
  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<Vertex>(v) == inst.tree.root) continue;
    TreeEdgeInfo& e = idx.tree_[v];
    e.replacement = repl[v];
    if (idx.violations_ == 0) {
      // On MST inputs both computations answer Definition 1.2, so the argmin
      // weight must equal the mc label (covered or not).
      const Weight rw =
          repl[v] < 0 ? graph::kPosInfW : inst.nontree[repl[v]].w;
      MPCMST_ASSERT(rw == e.mc, "index build: replacement weight "
                                    << rw << " != mc " << e.mc
                                    << " for tree edge child " << v);
    }
  }

  // --- endpoint resolution map (tree edges take precedence; duplicate
  // non-tree edges resolve to the lightest) ---
  idx.by_endpoints_.clear();
  idx.by_endpoints_.reserve(2 * (inst.n() + inst.nontree.size()));
  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<Vertex>(v) == inst.tree.root) continue;
    idx.by_endpoints_[endpoint_key(static_cast<Vertex>(v),
                                   inst.tree.parent[v])] =
        EdgeRef{true, static_cast<std::int64_t>(v)};
  }
  for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
    const graph::WEdge& e = inst.nontree[i];
    auto [it, inserted] = idx.by_endpoints_.try_emplace(
        endpoint_key(e.u, e.v), EdgeRef{false, static_cast<std::int64_t>(i)});
    if (!inserted && !it->second.is_tree &&
        e.w < idx.nontree_[it->second.id].w)
      it->second.id = static_cast<std::int64_t>(i);
  }

  // --- fragility order: ascending tree-edge sensitivity, ties by child id ---
  idx.fragile_order_.clear();
  idx.fragile_order_.reserve(inst.n() ? inst.n() - 1 : 0);
  for (std::size_t v = 0; v < inst.n(); ++v)
    if (static_cast<Vertex>(v) != inst.tree.root)
      idx.fragile_order_.push_back(static_cast<Vertex>(v));
  std::sort(idx.fragile_order_.begin(), idx.fragile_order_.end(),
            [&](Vertex a, Vertex b) {
              const Weight sa = idx.tree_[a].sens, sb = idx.tree_[b].sens;
              return sa != sb ? sa < sb : a < b;
            });
}

std::shared_ptr<const SensitivityIndex> SensitivityIndex::build(
    mpc::Engine& eng, const graph::Instance& inst) {
  MPCMST_ASSERT(inst.tree.well_formed(), "index build: input is not a tree");
  auto idx = std::shared_ptr<SensitivityIndex>(new SensitivityIndex());
  idx->root_ = inst.tree.root;
  idx->fingerprint_ = fingerprint_of(inst);

  // One distributed run: shared prelude, then the Theorem 4.1 pipeline
  // (whose Observation 4.2 sub-run doubles as Theorem 3.1 verification).
  const mpc::RoundMeter meter(eng);
  const auto artifacts = verify::build_artifacts(eng, inst);
  const auto sens = sensitivity::mst_sensitivity_mpc(inst, artifacts);
  idx->receipt_.build_rounds = meter.delta();
  idx->receipt_.peak_global_words = eng.stats().peak_global_words;
  idx->receipt_.input_words = inst.input_words();
  idx->receipt_.lca_contraction_steps = artifacts.lca_contraction_steps;
  idx->receipt_.verify_core = sens.verify_core;
  idx->receipt_.sens_stats = sens.stats;

  // --- snapshot the distributed outputs into dense host arrays ---
  idx->tree_.assign(inst.n(), TreeEdgeInfo{});
  for (std::size_t v = 0; v < inst.n(); ++v)
    idx->tree_[v].parent = inst.tree.parent[v];
  for (const sensitivity::TreeEdgeSens& t : sens.tree.local()) {
    TreeEdgeInfo& e = idx->tree_[static_cast<std::size_t>(t.v)];
    e.w = t.w;
    e.mc = t.mc;
    e.sens = t.sens;
  }
  idx->nontree_.assign(inst.nontree.size(), NonTreeEdgeInfo{});
  for (const sensitivity::NonTreeEdgeSens& e : sens.nontree.local()) {
    NonTreeEdgeInfo& o = idx->nontree_[static_cast<std::size_t>(e.orig_id)];
    o.u = inst.nontree[e.orig_id].u;
    o.v = inst.nontree[e.orig_id].v;
    o.w = e.w;
    o.maxpath = e.maxpath;
    o.sens = e.sens;
    if (e.w < e.maxpath) ++idx->violations_;
  }

  finish(*idx, inst, verify::TreeTopology::from_artifacts(artifacts));
  return idx;
}

std::shared_ptr<const SensitivityIndex> SensitivityIndex::build_host(
    const graph::Instance& inst, CostReceipt receipt) {
  MPCMST_ASSERT(inst.tree.well_formed(),
                "host index build: input is not a tree");
  auto idx = std::shared_ptr<SensitivityIndex>(new SensitivityIndex());
  idx->root_ = inst.tree.root;
  idx->fingerprint_ = fingerprint_of(inst);
  idx->receipt_ = receipt;

  // Sequential labels: same values as the distributed pipeline (the build()
  // cross-check pins the two together), no engine charged.
  const seq::SeqTreeIndex seq_index(inst.tree);
  const seq::SensitivityResult sens = seq::sensitivity(inst, seq_index);
  idx->tree_.assign(inst.n(), TreeEdgeInfo{});
  for (std::size_t v = 0; v < inst.n(); ++v) {
    TreeEdgeInfo& e = idx->tree_[v];
    e.parent = inst.tree.parent[v];
    if (static_cast<Vertex>(v) == inst.tree.root) continue;
    e.w = inst.tree.weight[v];
    e.mc = sens.tree_mc[v];
    e.sens = sensitivity::tree_sens(e.mc, e.w);
  }
  idx->nontree_.assign(inst.nontree.size(), NonTreeEdgeInfo{});
  for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
    NonTreeEdgeInfo& o = idx->nontree_[i];
    o.u = inst.nontree[i].u;
    o.v = inst.nontree[i].v;
    o.w = inst.nontree[i].w;
    o.maxpath = sens.nontree_maxpath[i];
    o.sens = sensitivity::nontree_sens(o.w, o.maxpath);
    if (o.w < o.maxpath) ++idx->violations_;
  }

  finish(*idx, inst, verify::TreeTopology(inst.tree));
  return idx;
}

std::optional<EdgeRef> SensitivityIndex::find(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= static_cast<Vertex>(n()) ||
      v >= static_cast<Vertex>(n()))
    return std::nullopt;
  const auto it = by_endpoints_.find(endpoint_key(u, v));
  if (it == by_endpoints_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mpcmst::service
