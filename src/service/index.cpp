#include "service/index.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/radix.hpp"
#include "seq/dsu.hpp"
#include "seq/oracles.hpp"

namespace mpcmst::service {

ScratchArena& host_scratch_arena() {
  thread_local ScratchArena arena;
  return arena;
}

namespace {

/// Ascending-sensitivity order of the non-root children [0, n) ∩ tree slots,
/// ties by child id: one biased radix pass over the sens column (stable on
/// the ascending-id input order, so ties come out by id for free).
void sort_fragile(std::vector<Vertex>& order, const TreeLabels& tree,
                  Vertex base) {
  radix_sort_records(order.data(), order.size(), host_scratch_arena(),
                     [&](Vertex child) {
                       return tree.sens[static_cast<std::size_t>(child - base)];
                     });
}

}  // namespace

std::uint64_t endpoint_key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  MPCMST_ASSERT(u >= 0 && v < (Vertex{1} << 32),
                "endpoint_key: vertex out of range " << u << "," << v);
  return (std::uint64_t(u) << 32) | std::uint64_t(v);
}

/// Non-tree edges are scanned by ascending weight; a DSU jumps over tree
/// edges that already received their (lightest) cover.  The weight order
/// rides the radix path (stable on orig_id, like the stable_sort it
/// replaced).
std::vector<std::int64_t> replacement_edges(const graph::Instance& inst,
                                            const verify::TreeTopology& topo) {
  const std::size_t n = inst.n();
  std::vector<std::int64_t> repl(n, -1);
  std::vector<std::size_t> order(inst.nontree.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  radix_sort_records(order.data(), order.size(), host_scratch_arena(),
                     [&](std::size_t i) { return inst.nontree[i].w; });
  seq::Dsu jump(n);
  std::vector<Vertex> top(n);
  std::iota(top.begin(), top.end(), Vertex{0});
  auto climb_top = [&](Vertex x) { return top[jump.find(x)]; };
  for (std::size_t idx : order) {
    const graph::WEdge& e = inst.nontree[idx];
    if (e.u == e.v) continue;
    const Vertex a = topo.lca(e.u, e.v);
    for (Vertex x : {e.u, e.v}) {
      x = climb_top(x);
      while (topo.depth(x) > topo.depth(a)) {
        repl[x] = static_cast<std::int64_t>(idx);
        const Vertex next = climb_top(inst.tree.parent[x]);
        jump.unite(x, inst.tree.parent[x]);
        top[jump.find(x)] = next;
        x = next;
      }
    }
  }
  return repl;
}

std::uint64_t SensitivityIndex::fingerprint_of(const graph::Instance& inst) {
  std::uint64_t h = hash_combine(inst.n(), inst.nontree.size(),
                                 std::uint64_t(inst.tree.root));
  for (std::size_t v = 0; v < inst.n(); ++v)
    h = hash_combine(h, std::uint64_t(inst.tree.parent[v]),
                     std::uint64_t(inst.tree.weight[v]));
  for (const graph::WEdge& e : inst.nontree)
    h = hash_combine(h, hash_combine(std::uint64_t(e.u), std::uint64_t(e.v)),
                     std::uint64_t(e.w));
  return h;
}

void SensitivityIndex::finish(SensitivityIndex& idx,
                              const graph::Instance& inst,
                              const verify::TreeTopology& topo) {
  // Keep the topology view: the still_mst batch certifier and the update
  // path's repairs ask it structural questions against these same labels.
  idx.topo_ = topo;
  // The three tails touch disjoint members (replacement column + cross-check,
  // endpoint map, fragility order), so they run as independent pool tasks.
  ThreadPool& pool = ThreadPool::shared();
  pool.run_tasks(3, [&](std::size_t stage) {
    switch (stage) {
      case 0: {
        // --- replacement edges + cross-check against the mc labels ---
        const std::vector<std::int64_t> repl = replacement_edges(inst, topo);
        for (std::size_t v = 0; v < inst.n(); ++v) {
          if (static_cast<Vertex>(v) == inst.tree.root) continue;
          idx.tree_.replacement[v] = repl[v];
          if (idx.violations_ == 0) {
            // On MST inputs both computations answer Definition 1.2, so the
            // argmin weight must equal the mc label (covered or not).
            const Weight rw =
                repl[v] < 0 ? graph::kPosInfW : inst.nontree[repl[v]].w;
            MPCMST_ASSERT(rw == idx.tree_.mc[v],
                          "index build: replacement weight "
                              << rw << " != mc " << idx.tree_.mc[v]
                              << " for tree edge child " << v);
          }
        }
        break;
      }
      case 1: {
        // --- endpoint resolution map (tree edges take precedence; duplicate
        // non-tree edges resolve to the lightest) ---
        idx.by_endpoints_.clear();
        idx.by_endpoints_.reserve(2 * (inst.n() + inst.nontree.size()));
        for (std::size_t v = 0; v < inst.n(); ++v) {
          if (static_cast<Vertex>(v) == inst.tree.root) continue;
          idx.by_endpoints_[endpoint_key(static_cast<Vertex>(v),
                                         inst.tree.parent[v])] =
              EdgeRef{true, static_cast<std::int64_t>(v)};
        }
        for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
          const graph::WEdge& e = inst.nontree[i];
          if (e.u == e.v) continue;  // tombstoned slot (update.hpp)
          auto [it, inserted] = idx.by_endpoints_.try_emplace(
              endpoint_key(e.u, e.v),
              EdgeRef{false, static_cast<std::int64_t>(i)});
          if (!inserted && !it->second.is_tree &&
              e.w < idx.nontree_.w[static_cast<std::size_t>(it->second.id)])
            it->second.id = static_cast<std::int64_t>(i);
        }
        break;
      }
      default: {
        // --- fragility order: ascending sensitivity, ties by child id ---
        idx.fragile_order_.clear();
        idx.fragile_order_.reserve(inst.n() ? inst.n() - 1 : 0);
        for (std::size_t v = 0; v < inst.n(); ++v)
          if (static_cast<Vertex>(v) != inst.tree.root)
            idx.fragile_order_.push_back(static_cast<Vertex>(v));
        sort_fragile(idx.fragile_order_, idx.tree_, 0);
        break;
      }
    }
  });
}

std::shared_ptr<const SensitivityIndex> SensitivityIndex::build(
    mpc::Engine& eng, const graph::Instance& inst) {
  MPCMST_ASSERT(inst.tree.well_formed(), "index build: input is not a tree");
  auto idx = std::shared_ptr<SensitivityIndex>(new SensitivityIndex());
  idx->root_ = inst.tree.root;
  idx->fingerprint_ = fingerprint_of(inst);

  // One distributed run: shared prelude, then the Theorem 4.1 pipeline
  // (whose Observation 4.2 sub-run doubles as Theorem 3.1 verification).
  // The engine's PhaseScopes fill in the per-phase wall spans underneath
  // this top-level one.
  TraceScope build_span("index-build");
  const mpc::RoundMeter meter(eng);
  const auto artifacts = verify::build_artifacts(eng, inst);
  const auto sens = sensitivity::mst_sensitivity_mpc(inst, artifacts);
  idx->receipt_.build_rounds = meter.delta();
  idx->receipt_.peak_global_words = eng.stats().peak_global_words;
  idx->receipt_.input_words = inst.input_words();
  idx->receipt_.lca_contraction_steps = artifacts.lca_contraction_steps;
  idx->receipt_.verify_core = sens.verify_core;
  idx->receipt_.sens_stats = sens.stats;

  // --- snapshot the distributed outputs into the SoA columns ---
  // Every record lands in its own slot (child / orig_id are unique), so the
  // scatters are independent pool chunks.
  ThreadPool& pool = ThreadPool::shared();
  idx->tree_.assign(inst.n());
  pool.parallel_for(inst.n(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v)
      idx->tree_.parent[v] = inst.tree.parent[v];
  });
  const auto& tree_recs = sens.tree.local();
  pool.parallel_for(tree_recs.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const sensitivity::TreeEdgeSens& t = tree_recs[r];
      const auto v = static_cast<std::size_t>(t.v);
      idx->tree_.w[v] = t.w;
      idx->tree_.mc[v] = t.mc;
      idx->tree_.sens[v] = t.sens;
    }
  });
  idx->nontree_.assign(inst.nontree.size());
  const auto& nontree_recs = sens.nontree.local();
  std::atomic<std::size_t> violations{0};
  pool.parallel_for(nontree_recs.size(), [&](std::size_t lo, std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t r = lo; r < hi; ++r) {
      const sensitivity::NonTreeEdgeSens& e = nontree_recs[r];
      const auto i = static_cast<std::size_t>(e.orig_id);
      idx->nontree_.u[i] = inst.nontree[i].u;
      idx->nontree_.v[i] = inst.nontree[i].v;
      idx->nontree_.w[i] = e.w;
      idx->nontree_.maxpath[i] = e.maxpath;
      idx->nontree_.sens[i] = e.sens;
      if (e.w < e.maxpath) ++local;
    }
    violations.fetch_add(local, std::memory_order_relaxed);
  });
  idx->violations_ = violations.load();

  finish(*idx, inst, verify::TreeTopology::from_artifacts(artifacts));
  return idx;
}

std::shared_ptr<const SensitivityIndex> SensitivityIndex::build_host(
    const graph::Instance& inst, CostReceipt receipt) {
  MPCMST_ASSERT(inst.tree.well_formed(),
                "host index build: input is not a tree");
  auto idx = std::shared_ptr<SensitivityIndex>(new SensitivityIndex());
  idx->root_ = inst.tree.root;
  idx->fingerprint_ = fingerprint_of(inst);
  idx->receipt_ = receipt;

  // Sequential labels: same values as the distributed pipeline (the build()
  // cross-check pins the two together), no engine charged.  This is also
  // the update path's relabel primitive, so the span shows up under every
  // swap repair.
  TraceScope build_span("index-build-host");
  const seq::SeqTreeIndex seq_index(inst.tree);
  const seq::SensitivityResult sens = seq::sensitivity(inst, seq_index);
  ThreadPool& pool = ThreadPool::shared();
  idx->tree_.assign(inst.n());
  pool.parallel_for(inst.n(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      idx->tree_.parent[v] = inst.tree.parent[v];
      if (static_cast<Vertex>(v) == inst.tree.root) continue;
      idx->tree_.w[v] = inst.tree.weight[v];
      idx->tree_.mc[v] = sens.tree_mc[v];
      idx->tree_.sens[v] = sensitivity::tree_sens(sens.tree_mc[v],
                                                  inst.tree.weight[v]);
    }
  });
  idx->nontree_.assign(inst.nontree.size());
  std::atomic<std::size_t> violations{0};
  pool.parallel_for(inst.nontree.size(), [&](std::size_t lo, std::size_t hi) {
    std::size_t local = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      idx->nontree_.u[i] = inst.nontree[i].u;
      idx->nontree_.v[i] = inst.nontree[i].v;
      idx->nontree_.w[i] = inst.nontree[i].w;
      idx->nontree_.maxpath[i] = sens.nontree_maxpath[i];
      idx->nontree_.sens[i] =
          sensitivity::nontree_sens(inst.nontree[i].w, sens.nontree_maxpath[i]);
      if (inst.nontree[i].w < sens.nontree_maxpath[i]) ++local;
    }
    violations.fetch_add(local, std::memory_order_relaxed);
  });
  idx->violations_ = violations.load();

  finish(*idx, inst, verify::TreeTopology(inst.tree));
  return idx;
}

std::optional<EdgeRef> SensitivityIndex::find(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= static_cast<Vertex>(n()) ||
      v >= static_cast<Vertex>(n()))
    return std::nullopt;
  const auto it = by_endpoints_.find(endpoint_key(u, v));
  if (it == by_endpoints_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mpcmst::service
