// SensitivityIndex: the precompute-once half of the query service.
//
// One distributed run (verify::build_artifacts + verify_mst_mpc +
// mst_sensitivity_mpc over a shared prelude) is snapshotted into an
// immutable, host-side index:
//   - per tree edge {v, p(v)}: weight, mc (min covering non-tree weight,
//     Observation 4.3) and the concrete replacement edge achieving it;
//   - per non-tree edge: weight, maxpath (covering maximum, Observation 4.2);
//   - an endpoint map resolving {u, v} to either side;
//   - the fragility order (tree edges by ascending sensitivity);
//   - a cost receipt of the distributed build (rounds, memory, stats).
// Every subsequent what-if question is O(1) (or O(k)) local work against
// this snapshot — the serve-many half lives in service.hpp.
//
// The replacement edges are not part of the MPC output (the paper computes
// mc values, not argmins); the build derives them with the sequential
// covering relaxation [Tar82] and cross-checks w(replacement) == mc against
// the distributed result, so the index is self-validating on MST inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/instance.hpp"
#include "mpc/engine.hpp"
#include "sensitivity/sensitivity.hpp"
#include "verify/verifier.hpp"

namespace mpcmst::service {

using graph::Vertex;
using graph::Weight;

class LiveCore;  // update.hpp: the mutable generation layer (friended below)

/// Host-side scratch for the service builds' radix sorts (this layer has no
/// engine to lease from); thread_local so concurrent builds, parallel shard
/// slices and the update path's relabels never share buffers.
ScratchArena& host_scratch_arena();

/// Exact (not hashed) order-insensitive endpoint key; vertex ids fit in 32
/// bits for every instance that fits in memory.  Shared by the monolithic
/// endpoint map and the per-shard maps (both must agree byte-for-byte).
std::uint64_t endpoint_key(Vertex u, Vertex v);

/// Argmin covering non-tree edge per tree edge (keyed by child vertex): the
/// covering relaxation of [Tar82], same scheme as seq::sensitivity which only
/// keeps the weight.  -1 where uncovered.  Shared by the monolithic and the
/// sharded index builds, which both cross-check it against the distributed
/// mc values; the topology view can come straight from the distributed
/// prelude (verify::TreeTopology::from_artifacts) or from the raw tree.
std::vector<std::int64_t> replacement_edges(const graph::Instance& inst,
                                            const verify::TreeTopology& topo);

/// Resolved edge handle: a tree edge is keyed by its child endpoint, a
/// non-tree edge by its position in Instance::nontree.
struct EdgeRef {
  bool is_tree = false;
  std::int64_t id = -1;  // child vertex (tree) or orig_id (non-tree)

  friend bool operator==(const EdgeRef&, const EdgeRef&) = default;
};

/// Tree edge {v, p(v)}, indexed by child v (the root slot is unused).
struct TreeEdgeInfo {
  Vertex parent = -1;
  Weight w = 0;
  Weight mc = graph::kPosInfW;    // kPosInfW: uncovered (bridge in G)
  Weight sens = graph::kPosInfW;  // mc - w
  std::int64_t replacement = -1;  // orig_id of the argmin cover, -1 if none

  friend bool operator==(const TreeEdgeInfo&, const TreeEdgeInfo&) = default;
};

/// Non-tree edge, indexed by orig_id.
struct NonTreeEdgeInfo {
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 0;
  Weight maxpath = graph::kNegInfW;  // kNegInfW: covers nothing (self loop)
  Weight sens = graph::kPosInfW;     // w - maxpath (kPosInfW if no cover)

  friend bool operator==(const NonTreeEdgeInfo&,
                         const NonTreeEdgeInfo&) = default;
};

// Label storage is struct-of-arrays: each field lives in its own contiguous
// array, so a point query touches only the cache lines of the fields it
// reads and the fragility scan streams one flat weight array instead of
// striding through 40-byte records.  TreeEdgeInfo / NonTreeEdgeInfo remain
// the value types of the query API — get()/set() assemble and scatter them.

/// SoA tree-edge labels, indexed by child vertex (or child - lo in a shard).
struct TreeLabels {
  std::vector<Vertex> parent;
  std::vector<Weight> w;
  std::vector<Weight> mc;
  std::vector<Weight> sens;
  std::vector<std::int64_t> replacement;

  std::size_t size() const { return parent.size(); }

  /// Resize to `n` children, every slot holding TreeEdgeInfo{} defaults.
  void assign(std::size_t n) {
    parent.assign(n, -1);
    w.assign(n, 0);
    mc.assign(n, graph::kPosInfW);
    sens.assign(n, graph::kPosInfW);
    replacement.assign(n, -1);
  }

  TreeEdgeInfo get(std::size_t i) const {
    return TreeEdgeInfo{parent[i], w[i], mc[i], sens[i], replacement[i]};
  }

  void set(std::size_t i, const TreeEdgeInfo& e) {
    parent[i] = e.parent;
    w[i] = e.w;
    mc[i] = e.mc;
    sens[i] = e.sens;
    replacement[i] = e.replacement;
  }

  /// Append the slice [lo, hi) of `src` (bulk column copies).
  void append_slice(const TreeLabels& src, std::size_t lo, std::size_t hi) {
    parent.insert(parent.end(), src.parent.begin() + lo,
                  src.parent.begin() + hi);
    w.insert(w.end(), src.w.begin() + lo, src.w.begin() + hi);
    mc.insert(mc.end(), src.mc.begin() + lo, src.mc.begin() + hi);
    sens.insert(sens.end(), src.sens.begin() + lo, src.sens.begin() + hi);
    replacement.insert(replacement.end(), src.replacement.begin() + lo,
                       src.replacement.begin() + hi);
  }

  friend bool operator==(const TreeLabels&, const TreeLabels&) = default;
};

/// SoA non-tree-edge labels, indexed by orig_id (or shard-local slot).
struct NonTreeLabels {
  std::vector<Vertex> u;
  std::vector<Vertex> v;
  std::vector<Weight> w;
  std::vector<Weight> maxpath;
  std::vector<Weight> sens;

  std::size_t size() const { return u.size(); }

  void assign(std::size_t n) {
    u.assign(n, 0);
    v.assign(n, 0);
    w.assign(n, 0);
    maxpath.assign(n, graph::kNegInfW);
    sens.assign(n, graph::kPosInfW);
  }

  void reserve(std::size_t n) {
    u.reserve(n);
    v.reserve(n);
    w.reserve(n);
    maxpath.reserve(n);
    sens.reserve(n);
  }

  NonTreeEdgeInfo get(std::size_t i) const {
    return NonTreeEdgeInfo{u[i], v[i], w[i], maxpath[i], sens[i]};
  }

  void set(std::size_t i, const NonTreeEdgeInfo& e) {
    u[i] = e.u;
    v[i] = e.v;
    w[i] = e.w;
    maxpath[i] = e.maxpath;
    sens[i] = e.sens;
  }

  void push_back(const NonTreeEdgeInfo& e) {
    u.push_back(e.u);
    v.push_back(e.v);
    w.push_back(e.w);
    maxpath.push_back(e.maxpath);
    sens.push_back(e.sens);
  }

  /// Insert a row at position `i` (shard scatter moving a slot between
  /// shards keeps its roster sorted, so inserts land mid-column).
  void insert(std::size_t i, const NonTreeEdgeInfo& e) {
    u.insert(u.begin() + static_cast<std::ptrdiff_t>(i), e.u);
    v.insert(v.begin() + static_cast<std::ptrdiff_t>(i), e.v);
    w.insert(w.begin() + static_cast<std::ptrdiff_t>(i), e.w);
    maxpath.insert(maxpath.begin() + static_cast<std::ptrdiff_t>(i), e.maxpath);
    sens.insert(sens.begin() + static_cast<std::ptrdiff_t>(i), e.sens);
  }

  /// Remove the row at position `i`.
  void erase(std::size_t i) {
    u.erase(u.begin() + static_cast<std::ptrdiff_t>(i));
    v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
    w.erase(w.begin() + static_cast<std::ptrdiff_t>(i));
    maxpath.erase(maxpath.begin() + static_cast<std::ptrdiff_t>(i));
    sens.erase(sens.begin() + static_cast<std::ptrdiff_t>(i));
  }

  friend bool operator==(const NonTreeLabels&, const NonTreeLabels&) = default;
};

/// What the one-time distributed build cost (served back with every
/// stats() call so operators can amortize it against query volume).
struct CostReceipt {
  std::size_t build_rounds = 0;       // total MPC rounds of the build
  std::size_t peak_global_words = 0;  // measured global memory g
  std::size_t input_words = 0;
  std::size_t lca_contraction_steps = 0;
  // Shards actually built.  The serving entry points (QueryService's
  // sharded builders, LiveShardedBackend) clamp requests above the vertex
  // count, so through them this never exceeds n; the raw
  // ShardedSensitivityIndex build/split keep the explicit empty-trailing-
  // shard regime for callers that want it.
  std::size_t effective_shards = 1;
  verify::CoreStats verify_core;
  sensitivity::SensitivityStats sens_stats;
};

/// Immutable snapshot of one mst_sensitivity_mpc run.  Thread-safe by
/// construction: all accessors are const and the service shares it read-only.
class SensitivityIndex {
 public:
  /// Run the distributed pipeline on `eng` and snapshot the result.
  /// Verification rides on the same prelude: `is_mst()` records whether the
  /// tree really is an MST (sensitivity values are only meaningful if so).
  static std::shared_ptr<const SensitivityIndex> build(
      mpc::Engine& eng, const graph::Instance& inst);

  /// Snapshot the same labeling without an engine: sequential oracles
  /// (seq::sensitivity + the [Tar82] relaxation) fill the label arrays the
  /// distributed run would have produced — the two pipelines agree value-for-
  /// value on every input (the cross-check in build() enforces it), so the
  /// resulting index is byte-identical.  This is the relabel primitive of the
  /// incremental update path: swaps repair through it instead of paying the
  /// distributed pass again.  `receipt` carries forward the cost of the
  /// original distributed build (this call adds no rounds).
  static std::shared_ptr<const SensitivityIndex> build_host(
      const graph::Instance& inst, CostReceipt receipt = {});

  std::size_t n() const { return tree_.size(); }
  std::size_t num_nontree() const { return nontree_.size(); }
  Vertex root() const { return root_; }
  bool is_mst() const { return violations_ == 0; }
  std::size_t violations() const { return violations_; }

  /// 64-bit fingerprint of the underlying instance (cache key component).
  std::uint64_t fingerprint() const { return fingerprint_; }

  const CostReceipt& receipt() const { return receipt_; }

  /// `child` must be a non-root vertex.  Assembled from the SoA columns;
  /// returned by value (two cache lines of gathered fields).
  TreeEdgeInfo tree_edge(Vertex child) const {
    return tree_.get(static_cast<std::size_t>(child));
  }
  NonTreeEdgeInfo nontree_edge(std::int64_t orig_id) const {
    return nontree_.get(static_cast<std::size_t>(orig_id));
  }

  /// Raw SoA columns, for hot readers (top-k scans, shard splitting).
  const TreeLabels& tree_labels() const { return tree_; }
  const NonTreeLabels& nontree_labels() const { return nontree_; }

  /// Resolve an edge by endpoints (order-insensitive).  Tree edges win when
  /// both a tree and a non-tree edge join u and v (parallel edges); a
  /// non-tree duplicate resolves to the lightest one.
  std::optional<EdgeRef> find(Vertex u, Vertex v) const;

  /// Tree edges (as child vertices) by ascending sensitivity, ties by id.
  const std::vector<Vertex>& fragile_order() const { return fragile_order_; }

  /// Weight-agnostic topology view of the snapshotted tree (the path-repair
  /// primitive).  Captured by both build paths from the same prelude the
  /// labels came from; stays valid across reweights because it caches no
  /// weights, and is replaced wholesale on structure changes (the update
  /// path's swap relabels go through build_host, which installs a fresh one).
  const verify::TreeTopology& topology() const { return topo_; }

  /// Compute the instance fingerprint without building an index.
  static std::uint64_t fingerprint_of(const graph::Instance& inst);

 private:
  friend class LiveCore;      // the mutable generation layer patches snapshots
  friend struct SnapshotCodec;  // snapshot.cpp (de)serializes the columns

  SensitivityIndex() = default;

  /// Shared tail of both builds: replacement edges (+ cross-check against
  /// the mc labels already in tree_), endpoint map, fragility order.
  static void finish(SensitivityIndex& idx, const graph::Instance& inst,
                     const verify::TreeTopology& topo);

  Vertex root_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::size_t violations_ = 0;
  TreeLabels tree_;
  NonTreeLabels nontree_;
  std::vector<Vertex> fragile_order_;
  std::unordered_map<std::uint64_t, EdgeRef> by_endpoints_;
  verify::TreeTopology topo_;
  CostReceipt receipt_;
};

}  // namespace mpcmst::service
