#include "service/service.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mpcmst::service {

QueryService::QueryService(std::shared_ptr<const IndexBackend> backend,
                           ServiceOptions opts)
    : backend_(std::move(backend)),
      opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards) {
  MPCMST_ASSERT(backend_ != nullptr, "QueryService: null backend");
  std::size_t threads = opts_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 2;
  }
  if (opts_.chunk_size == 0) opts_.chunk_size = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

QueryService::QueryService(std::shared_ptr<const SensitivityIndex> index,
                           ServiceOptions opts)
    : QueryService(std::make_shared<const MonolithicBackend>(std::move(index)),
                   opts) {}

QueryService::QueryService(std::shared_ptr<UpdatableBackend> backend,
                           ServiceOptions opts)
    : QueryService(std::shared_ptr<const IndexBackend>(backend), opts) {
  updatable_ = std::move(backend);
}

std::unique_ptr<QueryService> QueryService::build(mpc::Engine& eng,
                                                  const graph::Instance& inst,
                                                  ServiceOptions opts) {
  return std::make_unique<QueryService>(SensitivityIndex::build(eng, inst),
                                        opts);
}

std::unique_ptr<QueryService> QueryService::build_sharded(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
    ServiceOptions opts) {
  return std::make_unique<QueryService>(
      std::make_shared<const QueryRouter>(ShardedSensitivityIndex::build(
          eng, inst, clamp_shard_count(num_shards, inst.n()))),
      opts);
}

std::unique_ptr<QueryService> QueryService::build_live(
    mpc::Engine& eng, const graph::Instance& inst, ServiceOptions opts) {
  return std::make_unique<QueryService>(
      std::shared_ptr<UpdatableBackend>(LiveMonolithBackend::build(eng, inst)),
      opts);
}

std::unique_ptr<QueryService> QueryService::build_live_sharded(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
    ServiceOptions opts) {
  return std::make_unique<QueryService>(
      std::shared_ptr<UpdatableBackend>(LiveShardedBackend::build(
          eng, inst, clamp_shard_count(num_shards, inst.n()))),
      opts);
}

UpdateReceipt QueryService::apply_update(Vertex u, Vertex v, Weight new_w) {
  MPCMST_ASSERT(updatable_ != nullptr,
                "apply_update: this service serves an immutable snapshot");
  return updatable_->apply_update(u, v, new_w);
}

const SensitivityIndex& QueryService::index() const {
  const auto* mono = dynamic_cast<const MonolithicBackend*>(backend_.get());
  MPCMST_ASSERT(mono != nullptr,
                "QueryService::index(): backend is not monolithic — use "
                "backend() instead");
  return mono->index();
}

void QueryService::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void QueryService::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

Answer QueryService::answer(const Query& q) {
  served_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t generation = backend_->generation();
  const CacheKey key{backend_->fingerprint(), q};
  if (auto hit = cache_.get(key)) return *std::move(hit);
  Answer a = backend_->answer(q);
  // Insert only if no update landed while the answer was computed: the
  // fingerprint alone cannot tell (an update plus a revert restores it),
  // the strictly increasing generation can.  A skipped insert is just a
  // cold entry; a poisoned key would be a wrong answer forever.
  if (backend_->generation() == generation) cache_.put(key, a);
  return a;
}

std::vector<Answer> QueryService::answer_batch(
    const std::vector<Query>& queries) {
  std::vector<Answer> out(queries.size());
  if (queries.empty()) return out;

  const std::size_t chunk = opts_.chunk_size;
  const std::size_t num_chunks = (queries.size() + chunk - 1) / chunk;
  if (num_chunks == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < queries.size(); ++i)
      out[i] = answer(queries[i]);
    return out;
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t remaining = num_chunks;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, queries.size());
    submit([this, &queries, &out, &done_mu, &done_cv, &remaining, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) out[i] = answer(queries[i]);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return out;
}

Answer QueryService::price_change(Vertex u, Vertex v, Weight delta) {
  return answer(Query::price_change(u, v, delta));
}

Answer QueryService::replacement_edge(Vertex u, Vertex v) {
  return answer(Query::replacement_edge(u, v));
}

Answer QueryService::top_k_fragile(std::int64_t k) {
  return answer(Query::top_k_fragile(k));
}

Answer QueryService::corridor_headroom(Vertex u, Vertex v) {
  return answer(Query::corridor_headroom(u, v));
}

QueryService::Stats QueryService::stats() const {
  return Stats{served_.load(std::memory_order_relaxed), cache_.stats()};
}

}  // namespace mpcmst::service
