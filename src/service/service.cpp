#include "service/service.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "common/check.hpp"
#include "net/client.hpp"
#include "service/snapshot.hpp"

namespace mpcmst::service {

namespace {

/// Fresh-tier persistence bootstrap: wipe/initialize the directory, attach,
/// and checkpoint the just-built generation-0 state so the tier is
/// recoverable before the first update ever lands.
void init_persistence(UpdatableBackend& backend,
                      std::optional<PersistenceConfig>& persist) {
  if (!persist) return;
  backend.attach_persistence(Persistence::create_fresh(*persist));
  backend.checkpoint();
}

}  // namespace

QueryService::QueryService(std::shared_ptr<const IndexBackend> backend,
                           ServiceOptions opts)
    : backend_(std::move(backend)),
      opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      pool_(opts.threads) {
  MPCMST_ASSERT(backend_ != nullptr, "QueryService: null backend");
  if (opts_.chunk_size == 0) opts_.chunk_size = 1;
  ServiceMetrics& tm = service_metrics();
  cache_.set_metric_counters(tm.cache_hits, tm.cache_misses,
                             tm.cache_evictions);
}

QueryService::~QueryService() = default;

QueryService::QueryService(std::shared_ptr<const SensitivityIndex> index,
                           ServiceOptions opts)
    : QueryService(std::make_shared<const MonolithicBackend>(std::move(index)),
                   opts) {}

QueryService::QueryService(std::shared_ptr<UpdatableBackend> backend,
                           ServiceOptions opts)
    : QueryService(std::shared_ptr<const IndexBackend>(backend), opts) {
  updatable_ = std::move(backend);
}

namespace {

/// open()'s recovery shape: reconstruct a persisted live tier from its
/// directory (newest valid snapshot + journal-tail replay through
/// replay_journal_record) and resume journaling.
std::unique_ptr<QueryService> open_recover(const ServiceConfig& sc) {
  const PersistenceConfig& cfg = *sc.persist;
  ServiceMetrics& tm = service_metrics();
  tm.recoveries->inc();
  TraceScope recover_span("recover");

  std::optional<TierImage> image;
  {
    TraceScope span("recover:snapshot-load", tm.recovery_snapshot_load);
    image = load_newest_snapshot(cfg.dir);
  }
  MPCMST_CHECK(image.has_value(),
               "recover: no valid snapshot in " << cfg.dir
                                                << " (never persisted, or "
                                                   "every file is torn)");

  // Truncate any torn tail first: everything after the last intact record
  // was never acknowledged, so dropping it is the correct outcome.
  Journal::Scan scan;
  {
    TraceScope span("recover:tail-scan", tm.recovery_tail_scan);
    scan = Journal::recover(journal_path(cfg.dir));
  }

  std::shared_ptr<UpdatableBackend> backend;
  if (image->sharded())
    backend = std::make_shared<LiveShardedBackend>(
        std::move(image->instance), image->index, image->shards,
        image->generation);
  else
    backend = std::make_shared<LiveMonolithBackend>(
        std::move(image->instance), image->index, image->generation);

  // Replay the journal tail through the ordinary update path, holding every
  // record to its own receipt: same resolution, same classification, same
  // fingerprint chain, same generation — or the directory is rejected.
  std::uint64_t replayed = 0;
  {
    TraceScope span("recover:replay", tm.recovery_replay);
    for (const JournalRecord& rec : scan.records) {
      if (rec.generation <= image->generation) continue;  // in the snapshot
      MPCMST_CHECK(rec.generation == backend->generation() + 1,
                   "recover: journal generation gap at " << rec.generation);
      (void)replay_journal_record(*backend, rec);
      ++replayed;
    }
  }

  // Staleness floor: a fallback past an invalid newer snapshot is only
  // sound if the journal bridged the gap (it does when the crash hit
  // between a checkpoint's snapshot write and its journal reset).  Landing
  // below the highest generation any snapshot file ever named would
  // silently un-acknowledge committed updates — refuse instead.
  const auto floor_gen = newest_snapshot_generation(cfg.dir);
  MPCMST_CHECK(floor_gen && backend->generation() >= *floor_gen,
               "recover: reached generation "
                   << backend->generation() << " but " << cfg.dir
                   << " names generation "
                   << (floor_gen ? *floor_gen : 0)
                   << " — the newest snapshot is invalid and the journal "
                      "cannot bridge to it");

  if (sc.recovered) {
    sc.recovered->snapshot_generation = image->generation;
    sc.recovered->replayed_records = replayed;
    sc.recovered->journal_was_torn = scan.torn;
  }

  backend->attach_persistence(Persistence::resume(cfg, replayed));
  // A long tail means the compaction policy fell behind (or the crash beat
  // it); fold the replayed records into a fresh snapshot now.
  if (cfg.snapshot_every_n > 0 && replayed >= cfg.snapshot_every_n)
    backend->checkpoint();
  return std::make_unique<QueryService>(std::move(backend), sc.options);
}

}  // namespace

std::unique_ptr<QueryService> QueryService::open(const ServiceConfig& cfg) {
  if (cfg.recover_existing) {
    MPCMST_CHECK(cfg.persist.has_value(),
                 "open: recover_existing requires a PersistenceConfig");
    MPCMST_CHECK(cfg.remote_shards.empty(),
                 "open: recovery of a networked leader is not supported — "
                 "recover in-process, then re-open with remote_shards");
    return open_recover(cfg);
  }

  if (!cfg.remote_shards.empty()) {
    if (!cfg.live) {
      // Read-only attach: the shard servers own their slices (started from
      // their own snapshots or bootstrapped by a leader elsewhere).
      return std::make_unique<QueryService>(
          net::make_remote_backend(cfg.remote_shards), cfg.options);
    }
    MPCMST_CHECK(cfg.engine != nullptr && cfg.instance != nullptr,
                 "open: a networked leader needs an engine and an instance");
    std::shared_ptr<UpdatableBackend> backend = net::make_leader_backend(
        *cfg.engine, *cfg.instance, cfg.remote_shards);
    std::optional<PersistenceConfig> persist = cfg.persist;
    init_persistence(*backend, persist);
    return std::make_unique<QueryService>(std::move(backend), cfg.options);
  }

  MPCMST_CHECK(cfg.engine != nullptr && cfg.instance != nullptr,
               "open: an in-process build needs an engine and an instance");
  mpc::Engine& eng = *cfg.engine;
  const graph::Instance& inst = *cfg.instance;
  const std::size_t shards = clamp_shard_count(cfg.num_shards, inst.n());

  if (!cfg.live) {
    MPCMST_CHECK(!cfg.persist.has_value(),
                 "open: persistence requires live = true (snapshot tiers are "
                 "immutable)");
    if (cfg.sharded)
      return std::make_unique<QueryService>(
          std::make_shared<const QueryRouter>(
              ShardedSensitivityIndex::build(eng, inst, shards)),
          cfg.options);
    return std::make_unique<QueryService>(SensitivityIndex::build(eng, inst),
                                          cfg.options);
  }

  std::shared_ptr<UpdatableBackend> backend;
  if (cfg.sharded)
    backend = LiveShardedBackend::build(eng, inst, shards);
  else
    backend = LiveMonolithBackend::build(eng, inst);
  std::optional<PersistenceConfig> persist = cfg.persist;
  init_persistence(*backend, persist);
  return std::make_unique<QueryService>(std::move(backend), cfg.options);
}

std::unique_ptr<QueryService> QueryService::build(mpc::Engine& eng,
                                                  const graph::Instance& inst,
                                                  ServiceOptions opts) {
  ServiceConfig cfg;
  cfg.engine = &eng;
  cfg.instance = &inst;
  cfg.options = opts;
  return open(cfg);
}

std::unique_ptr<QueryService> QueryService::build_sharded(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
    ServiceOptions opts) {
  ServiceConfig cfg;
  cfg.engine = &eng;
  cfg.instance = &inst;
  cfg.sharded = true;
  cfg.num_shards = num_shards;
  cfg.options = opts;
  return open(cfg);
}

std::unique_ptr<QueryService> QueryService::build_live(
    mpc::Engine& eng, const graph::Instance& inst, ServiceOptions opts,
    std::optional<PersistenceConfig> persist) {
  ServiceConfig cfg;
  cfg.engine = &eng;
  cfg.instance = &inst;
  cfg.live = true;
  cfg.persist = std::move(persist);
  cfg.options = opts;
  return open(cfg);
}

std::unique_ptr<QueryService> QueryService::build_live_sharded(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
    ServiceOptions opts, std::optional<PersistenceConfig> persist) {
  ServiceConfig cfg;
  cfg.engine = &eng;
  cfg.instance = &inst;
  cfg.sharded = true;
  cfg.num_shards = num_shards;
  cfg.live = true;
  cfg.persist = std::move(persist);
  cfg.options = opts;
  return open(cfg);
}

std::unique_ptr<QueryService> QueryService::recover(
    const PersistenceConfig& cfg, ServiceOptions opts, RecoveredInfo* info) {
  ServiceConfig sc;
  sc.persist = cfg;
  sc.recover_existing = true;
  sc.recovered = info;
  sc.options = opts;
  return open(sc);
}

void QueryService::checkpoint() {
  MPCMST_ASSERT(updatable_ != nullptr,
                "checkpoint: this service serves an immutable snapshot");
  updatable_->checkpoint();
}

UpdateReceipt QueryService::apply_update(Vertex u, Vertex v, Weight new_w) {
  MPCMST_ASSERT(updatable_ != nullptr,
                "apply_update: this service serves an immutable snapshot");
  return updatable_->apply_update(u, v, new_w);
}

UpdateReceipt QueryService::add_edge(Vertex u, Vertex v, Weight w) {
  MPCMST_ASSERT(updatable_ != nullptr,
                "add_edge: this service serves an immutable snapshot");
  return updatable_->add_edge(u, v, w);
}

UpdateReceipt QueryService::remove_edge(Vertex u, Vertex v) {
  MPCMST_ASSERT(updatable_ != nullptr,
                "remove_edge: this service serves an immutable snapshot");
  return updatable_->remove_edge(u, v);
}

std::vector<UpdateReceipt> QueryService::ingest(
    const std::vector<EdgeEvent>& events) {
  MPCMST_ASSERT(updatable_ != nullptr,
                "ingest: this service serves an immutable snapshot");
  // Chunked so one enormous stream cannot pin the writer lock (and the
  // readers out) for its whole duration; each chunk is one group commit.
  std::vector<UpdateReceipt> receipts;
  receipts.reserve(events.size());
  const std::size_t chunk = std::max<std::size_t>(opts_.chunk_size, 1);
  for (std::size_t lo = 0; lo < events.size(); lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, events.size());
    std::vector<EdgeEvent> slice(events.begin() + static_cast<std::ptrdiff_t>(lo),
                                 events.begin() + static_cast<std::ptrdiff_t>(hi));
    auto part = updatable_->ingest(slice);
    receipts.insert(receipts.end(), part.begin(), part.end());
  }
  return receipts;
}

const SensitivityIndex& QueryService::index() const {
  const auto* mono = dynamic_cast<const MonolithicBackend*>(backend_.get());
  MPCMST_ASSERT(mono != nullptr,
                "QueryService::index(): backend is not monolithic — use "
                "backend() instead");
  return mono->index();
}

Answer QueryService::answer(const Query& q) {
  served_.fetch_add(1, std::memory_order_relaxed);
  ServiceMetrics& tm = service_metrics();
  const auto kind = static_cast<std::size_t>(q.kind) % kNumQueryKinds;
  tm.queries[kind]->inc();
  ScopedLatency lat(*tm.query_latency[kind]);
  if (!cache_.enabled()) return backend_->answer(q);
  const std::uint64_t generation = backend_->generation();
  const CacheKey key{backend_->fingerprint(), q};
  if (auto hit = cache_.get(key)) return *std::move(hit);
  Answer a = backend_->answer(q);
  // Insert only if no update landed while the answer was computed: the
  // fingerprint alone cannot tell (an update plus a revert restores it),
  // the strictly increasing generation can.  A skipped insert is just a
  // cold entry; a poisoned key would be a wrong answer forever.
  if (backend_->generation() == generation) cache_.put(key, a);
  return a;
}

std::vector<Answer> QueryService::answer_batch(
    const std::vector<Query>& queries) {
  const std::size_t n = queries.size();
  std::vector<Answer> out(n);
  if (n == 0) return out;
  served_.fetch_add(n, std::memory_order_relaxed);
  ServiceMetrics& tm = service_metrics();
  tm.batches->inc();
  tm.batch_size->record(n);
  ScopedLatency batch_lat(*tm.batch_latency);

  // Snapshot the backend moment: the fingerprint keys every probe/insert of
  // this batch, the generation gates the bulk insert (same protocol as the
  // single-query path — an update mid-batch simply skips the insert).
  const std::uint64_t generation = backend_->generation();
  const std::uint64_t fingerprint = backend_->fingerprint();

  // --- bulk cache probe: one lock per touched cache shard ---
  // Per-kind totals ride the key-construction pass (a local array, flushed
  // as one striped add per kind) so the warm path never re-walks the batch.
  std::array<std::uint64_t, kNumQueryKinds> kind_counts{};
  std::vector<unsigned char> hit(n, 0);
  std::vector<CacheKey> keys;
  if (cache_.enabled()) {
    keys.reserve(n);
    for (const Query& q : queries) {
      ++kind_counts[static_cast<std::size_t>(q.kind) % kNumQueryKinds];
      keys.push_back(CacheKey{fingerprint, q});
    }
    cache_.get_many(keys.data(), n, out.data(), hit.data());
  } else {
    for (const Query& q : queries)
      ++kind_counts[static_cast<std::size_t>(q.kind) % kNumQueryKinds];
  }
  for (std::size_t k = 0; k < kNumQueryKinds; ++k)
    if (kind_counts[k] > 0) tm.queries[k]->inc(kind_counts[k]);

  // --- misses, counting-sorted into backend-shard runs ---
  const std::size_t num_hints =
      std::max<std::size_t>(backend_->num_shards(), 1);
  std::vector<std::uint32_t> miss;
  std::vector<std::uint32_t> run_bounds;  // batched backends: shard-run fence
  miss.reserve(n);
  if (num_hints == 1) {
    for (std::size_t i = 0; i < n; ++i)
      if (!hit[i]) miss.push_back(static_cast<std::uint32_t>(i));
  } else {
    std::vector<std::uint32_t> counts(num_hints + 1, 0);
    std::vector<std::uint32_t> hint(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (hit[i]) continue;
      hint[i] = static_cast<std::uint32_t>(backend_->shard_hint(queries[i]));
      ++counts[hint[i] + 1];
    }
    for (std::size_t s = 0; s < num_hints; ++s) counts[s + 1] += counts[s];
    miss.resize(counts[num_hints]);
    std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      if (!hit[i]) miss[cursor[hint[i]]++] = static_cast<std::uint32_t>(i);
    if (backend_->batched_runs()) run_bounds = std::move(counts);
  }

  if (!miss.empty() && backend_->batched_runs()) {
    // Remote backend: one answer_many() — one RPC — per shard-run, the runs
    // answered concurrently on the pool.  Answers stay byte-identical to the
    // per-query loop; only the transport batching differs.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
    if (run_bounds.empty()) {
      runs.emplace_back(0, static_cast<std::uint32_t>(miss.size()));
    } else {
      for (std::size_t s = 0; s + 1 < run_bounds.size(); ++s)
        if (run_bounds[s + 1] > run_bounds[s])
          runs.emplace_back(run_bounds[s], run_bounds[s + 1]);
    }
    pool_.run_tasks(runs.size(), [&](std::size_t t) {
      const auto [lo, hi] = runs[t];
      std::vector<Query> qs;
      qs.reserve(hi - lo);
      for (std::uint32_t r = lo; r < hi; ++r) qs.push_back(queries[miss[r]]);
      std::vector<Answer> ans = backend_->answer_many(qs);
      for (std::uint32_t r = lo; r < hi; ++r)
        out[miss[r]] = std::move(ans[r - lo]);
    });
    if (cache_.enabled() && backend_->generation() == generation)
      cache_.put_many(keys.data(), out.data(), miss.data(), miss.size());
  } else if (!miss.empty()) {
    // Shard-runs are contiguous in `miss`; chunking the sorted order keeps
    // each pool task inside (at most two) shards' working sets.
    const std::size_t chunk = opts_.chunk_size;
    const std::size_t num_chunks = (miss.size() + chunk - 1) / chunk;
    // Per-query latency is only clocked on misses (hits are bulk-accounted
    // above); the enabled check is hoisted so a disabled registry costs the
    // batch nothing.
    const bool timed = metrics_enabled();
    pool_.run_tasks(num_chunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, miss.size());
      for (std::size_t r = lo; r < hi; ++r) {
        const Query& q = queries[miss[r]];
        if (timed) {
          const std::uint64_t t0 = metrics_now_ns();
          out[miss[r]] = backend_->answer(q);
          tm.query_latency[static_cast<std::size_t>(q.kind) % kNumQueryKinds]
              ->record(metrics_now_ns() - t0);
        } else {
          out[miss[r]] = backend_->answer(q);
        }
      }
    });
    // --- bulk insert, gated on the generation exactly like answer() ---
    if (cache_.enabled() && backend_->generation() == generation)
      cache_.put_many(keys.data(), out.data(), miss.data(), miss.size());
  }
  return out;
}

Answer QueryService::price_change(Vertex u, Vertex v, Weight delta) {
  return answer(Query::price_change(u, v, delta));
}

Answer QueryService::replacement_edge(Vertex u, Vertex v) {
  return answer(Query::replacement_edge(u, v));
}

Answer QueryService::top_k_fragile(std::int64_t k) {
  return answer(Query::top_k_fragile(k));
}

Answer QueryService::still_mst(std::vector<PriceChange> changes) {
  return answer(Query::still_mst(std::move(changes)));
}

Answer QueryService::corridor_headroom(Vertex u, Vertex v) {
  return answer(Query::corridor_headroom(u, v));
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  s.queries_served = served_.load(std::memory_order_relaxed);
  s.generation = backend_->generation();
  s.cache = cache_.stats();
  s.telemetry = telemetry_snapshot();
  return s;
}

}  // namespace mpcmst::service
