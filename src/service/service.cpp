#include "service/service.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mpcmst::service {

QueryService::QueryService(std::shared_ptr<const IndexBackend> backend,
                           ServiceOptions opts)
    : backend_(std::move(backend)),
      opts_(opts),
      cache_(opts.cache_capacity, opts.cache_shards),
      pool_(opts.threads) {
  MPCMST_ASSERT(backend_ != nullptr, "QueryService: null backend");
  if (opts_.chunk_size == 0) opts_.chunk_size = 1;
}

QueryService::~QueryService() = default;

QueryService::QueryService(std::shared_ptr<const SensitivityIndex> index,
                           ServiceOptions opts)
    : QueryService(std::make_shared<const MonolithicBackend>(std::move(index)),
                   opts) {}

QueryService::QueryService(std::shared_ptr<UpdatableBackend> backend,
                           ServiceOptions opts)
    : QueryService(std::shared_ptr<const IndexBackend>(backend), opts) {
  updatable_ = std::move(backend);
}

std::unique_ptr<QueryService> QueryService::build(mpc::Engine& eng,
                                                  const graph::Instance& inst,
                                                  ServiceOptions opts) {
  return std::make_unique<QueryService>(SensitivityIndex::build(eng, inst),
                                        opts);
}

std::unique_ptr<QueryService> QueryService::build_sharded(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
    ServiceOptions opts) {
  return std::make_unique<QueryService>(
      std::make_shared<const QueryRouter>(ShardedSensitivityIndex::build(
          eng, inst, clamp_shard_count(num_shards, inst.n()))),
      opts);
}

std::unique_ptr<QueryService> QueryService::build_live(
    mpc::Engine& eng, const graph::Instance& inst, ServiceOptions opts) {
  return std::make_unique<QueryService>(
      std::shared_ptr<UpdatableBackend>(LiveMonolithBackend::build(eng, inst)),
      opts);
}

std::unique_ptr<QueryService> QueryService::build_live_sharded(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards,
    ServiceOptions opts) {
  return std::make_unique<QueryService>(
      std::shared_ptr<UpdatableBackend>(LiveShardedBackend::build(
          eng, inst, clamp_shard_count(num_shards, inst.n()))),
      opts);
}

UpdateReceipt QueryService::apply_update(Vertex u, Vertex v, Weight new_w) {
  MPCMST_ASSERT(updatable_ != nullptr,
                "apply_update: this service serves an immutable snapshot");
  return updatable_->apply_update(u, v, new_w);
}

const SensitivityIndex& QueryService::index() const {
  const auto* mono = dynamic_cast<const MonolithicBackend*>(backend_.get());
  MPCMST_ASSERT(mono != nullptr,
                "QueryService::index(): backend is not monolithic — use "
                "backend() instead");
  return mono->index();
}

Answer QueryService::answer(const Query& q) {
  served_.fetch_add(1, std::memory_order_relaxed);
  if (!cache_.enabled()) return backend_->answer(q);
  const std::uint64_t generation = backend_->generation();
  const CacheKey key{backend_->fingerprint(), q};
  if (auto hit = cache_.get(key)) return *std::move(hit);
  Answer a = backend_->answer(q);
  // Insert only if no update landed while the answer was computed: the
  // fingerprint alone cannot tell (an update plus a revert restores it),
  // the strictly increasing generation can.  A skipped insert is just a
  // cold entry; a poisoned key would be a wrong answer forever.
  if (backend_->generation() == generation) cache_.put(key, a);
  return a;
}

std::vector<Answer> QueryService::answer_batch(
    const std::vector<Query>& queries) {
  const std::size_t n = queries.size();
  std::vector<Answer> out(n);
  if (n == 0) return out;
  served_.fetch_add(n, std::memory_order_relaxed);

  // Snapshot the backend moment: the fingerprint keys every probe/insert of
  // this batch, the generation gates the bulk insert (same protocol as the
  // single-query path — an update mid-batch simply skips the insert).
  const std::uint64_t generation = backend_->generation();
  const std::uint64_t fingerprint = backend_->fingerprint();

  // --- bulk cache probe: one lock per touched cache shard ---
  std::vector<unsigned char> hit(n, 0);
  std::vector<CacheKey> keys;
  if (cache_.enabled()) {
    keys.reserve(n);
    for (const Query& q : queries) keys.push_back(CacheKey{fingerprint, q});
    cache_.get_many(keys.data(), n, out.data(), hit.data());
  }

  // --- misses, counting-sorted into backend-shard runs ---
  const std::size_t num_hints =
      std::max<std::size_t>(backend_->num_shards(), 1);
  std::vector<std::uint32_t> miss;
  miss.reserve(n);
  if (num_hints == 1) {
    for (std::size_t i = 0; i < n; ++i)
      if (!hit[i]) miss.push_back(static_cast<std::uint32_t>(i));
  } else {
    std::vector<std::uint32_t> counts(num_hints + 1, 0);
    std::vector<std::uint32_t> hint(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (hit[i]) continue;
      hint[i] = static_cast<std::uint32_t>(backend_->shard_hint(queries[i]));
      ++counts[hint[i] + 1];
    }
    for (std::size_t s = 0; s < num_hints; ++s) counts[s + 1] += counts[s];
    miss.resize(counts[num_hints]);
    std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      if (!hit[i]) miss[cursor[hint[i]]++] = static_cast<std::uint32_t>(i);
  }

  if (!miss.empty()) {
    // Shard-runs are contiguous in `miss`; chunking the sorted order keeps
    // each pool task inside (at most two) shards' working sets.
    const std::size_t chunk = opts_.chunk_size;
    const std::size_t num_chunks = (miss.size() + chunk - 1) / chunk;
    pool_.run_tasks(num_chunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, miss.size());
      for (std::size_t r = lo; r < hi; ++r)
        out[miss[r]] = backend_->answer(queries[miss[r]]);
    });
    // --- bulk insert, gated on the generation exactly like answer() ---
    if (cache_.enabled() && backend_->generation() == generation)
      cache_.put_many(keys.data(), out.data(), miss.data(), miss.size());
  }
  return out;
}

Answer QueryService::price_change(Vertex u, Vertex v, Weight delta) {
  return answer(Query::price_change(u, v, delta));
}

Answer QueryService::replacement_edge(Vertex u, Vertex v) {
  return answer(Query::replacement_edge(u, v));
}

Answer QueryService::top_k_fragile(std::int64_t k) {
  return answer(Query::top_k_fragile(k));
}

Answer QueryService::corridor_headroom(Vertex u, Vertex v) {
  return answer(Query::corridor_headroom(u, v));
}

QueryService::Stats QueryService::stats() const {
  return Stats{served_.load(std::memory_order_relaxed), cache_.stats()};
}

}  // namespace mpcmst::service
