#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "service/telemetry.hpp"

namespace mpcmst::service {

namespace {

// Header: magic(8) | version(u32) | crc32(magic+version).  The version
// covers the record layout below — bump it whenever JournalRecord changes.
constexpr char kMagic[8] = {'M', 'P', 'C', 'J', 'R', 'N', '0', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 16;

// Fixed frame: len(u32) | payload | crc32(payload).
constexpr std::size_t kPayloadSize = 6 * 8 + 1;
constexpr std::size_t kFrameSize = 4 + kPayloadSize + 4;

std::atomic<void (*)(const char*)> g_crash_hook{nullptr};

std::vector<unsigned char> header_bytes() {
  ByteWriter w;
  w.bytes(kMagic, sizeof kMagic);
  w.u32(kVersion);
  w.u32(crc32(w.data().data(), w.size()));
  return w.data();
}

bool header_valid(const unsigned char* p, std::size_t n) {
  if (n < kHeaderSize) return false;
  const auto expect = header_bytes();
  return std::memcmp(p, expect.data(), kHeaderSize) == 0;
}

void encode_record(ByteWriter& w, const JournalRecord& rec) {
  ByteWriter payload;
  payload.u64(rec.generation);
  payload.u64(rec.old_fingerprint);
  payload.u64(rec.new_fingerprint);
  payload.i64(rec.u);
  payload.i64(rec.v);
  payload.i64(rec.new_w);
  payload.u8(rec.cls);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data().data(), payload.size());
  w.u32(crc32(payload.data().data(), payload.size()));
}

}  // namespace

void write_all_fd(int fd, const unsigned char* p, std::size_t n,
                  const std::string& path) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0 && errno == EINTR) continue;
    MPCMST_CHECK(wrote > 0, "persist: write failed on " << path);
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

void set_persist_crash_hook(void (*hook)(const char* phase)) {
  g_crash_hook.store(hook, std::memory_order_release);
}

void persist_crash_point(const char* phase) {
  if (auto* hook = g_crash_hook.load(std::memory_order_acquire)) hook(phase);
}

std::string journal_path(const std::string& dir) {
  return dir + "/journal.bin";
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Journal::Journal(Journal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      mode_(other.mode_) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    mode_ = other.mode_;
  }
  return *this;
}

Journal Journal::open(const std::string& path, SyncMode mode) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
  MPCMST_CHECK(fd >= 0, "journal: cannot open " << path);
  Journal j;
  j.fd_ = fd;
  j.path_ = path;
  j.mode_ = mode;

  struct stat st {};
  MPCMST_CHECK(::fstat(fd, &st) == 0, "journal: cannot stat " << path);
  if (st.st_size == 0) {
    const auto header = header_bytes();
    write_all_fd(fd, header.data(), header.size(), path);
    MPCMST_CHECK(::fsync(fd) == 0, "journal: fsync failed on " << path);
  } else {
    unsigned char buf[kHeaderSize];
    const ssize_t got = ::pread(fd, buf, kHeaderSize, 0);
    MPCMST_CHECK(got == static_cast<ssize_t>(kHeaderSize) &&
                     header_valid(buf, kHeaderSize),
                 "journal: " << path << " has no valid header "
                             << "(not a journal, or an incompatible version)");
  }
  return j;
}

void Journal::append(const JournalRecord& rec) {
  MPCMST_ASSERT(fd_ >= 0, "journal: append on a closed handle");
  ScopedLatency append_lat(*service_metrics().journal_append);
  ByteWriter frame;
  encode_record(frame, rec);
  const unsigned char* p = frame.data().data();
  const std::size_t n = frame.size();
  if (g_crash_hook.load(std::memory_order_acquire) != nullptr) {
    // Two-part write with the crash point between: the harness can SIGKILL
    // here to manufacture a torn (partially written) record.
    const std::size_t half = n / 2;
    write_all_fd(fd_, p, half, path_);
    persist_crash_point("journal-mid-record");
    write_all_fd(fd_, p + half, n - half, path_);
  } else {
    write_all_fd(fd_, p, n, path_);
  }
  if (mode_ == SyncMode::kCommit) {
    // The fsync dominates commit latency; its own series isolates it from
    // the framing + write cost of the whole append.
    ScopedLatency fsync_lat(*service_metrics().journal_fsync);
    MPCMST_CHECK(::fsync(fd_) == 0, "journal: fsync failed on " << path_);
  }
  persist_crash_point("journal-post-commit");
}

void Journal::reset() {
  MPCMST_ASSERT(fd_ >= 0, "journal: reset on a closed handle");
  MPCMST_CHECK(::ftruncate(fd_, static_cast<off_t>(kHeaderSize)) == 0,
               "journal: truncate failed on " << path_);
  MPCMST_CHECK(::fsync(fd_) == 0, "journal: fsync failed on " << path_);
}

Journal::Scan Journal::scan(const std::string& path) {
  Scan out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.missing = true;
    return out;
  }
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  if (!header_valid(bytes.data(), bytes.size())) {
    out.missing = true;
    return out;
  }
  std::size_t off = kHeaderSize;
  while (off < bytes.size()) {
    ByteReader r(bytes.data() + off, bytes.size() - off);
    const std::uint32_t len = r.u32();
    if (!r.ok() || len != kPayloadSize || r.remaining() < kPayloadSize + 4)
      break;  // torn or foreign frame: stop at the intact prefix
    const unsigned char* payload = bytes.data() + off + 4;
    ByteReader pr(payload, kPayloadSize);
    JournalRecord rec;
    rec.generation = pr.u64();
    rec.old_fingerprint = pr.u64();
    rec.new_fingerprint = pr.u64();
    rec.u = pr.i64();
    rec.v = pr.i64();
    rec.new_w = pr.i64();
    rec.cls = pr.u8();
    std::uint32_t stored_crc;
    std::memcpy(&stored_crc, payload + kPayloadSize, 4);
    if (stored_crc != crc32(payload, kPayloadSize)) break;
    out.records.push_back(rec);
    off += kFrameSize;
  }
  out.valid_bytes = off;
  out.torn = off < bytes.size();
  return out;
}

Journal::Scan Journal::recover(const std::string& path) {
  Scan out = scan(path);
  if (out.missing || !out.torn) return out;
  const int fd = ::open(path.c_str(), O_RDWR);
  MPCMST_CHECK(fd >= 0, "journal: cannot reopen " << path << " to truncate");
  const bool ok = ::ftruncate(fd, static_cast<off_t>(out.valid_bytes)) == 0 &&
                  ::fsync(fd) == 0;
  ::close(fd);
  MPCMST_CHECK(ok, "journal: torn-tail truncation failed on " << path);
  return out;
}

}  // namespace mpcmst::service
