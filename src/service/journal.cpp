#include "service/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "service/telemetry.hpp"

namespace mpcmst::service {

namespace {

// Header: magic(8) | version(u32) | crc32(magic+version).  The version
// covers the record layout below — bump it whenever JournalRecord changes.
// v1: reweight-only payloads without the op byte.  v2: + op byte.
constexpr char kMagic[8] = {'M', 'P', 'C', 'J', 'R', 'N', '0', '1'};
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderSize = 16;

// Fixed frame: len(u32) | payload | crc32(payload).
constexpr std::size_t kPayloadSizeV1 = 6 * 8 + 1;
constexpr std::size_t kPayloadSizeV2 = 6 * 8 + 2;

constexpr std::size_t payload_size_for(std::uint32_t version) {
  return version == 1 ? kPayloadSizeV1 : kPayloadSizeV2;
}

std::atomic<void (*)(const char*)> g_crash_hook{nullptr};

std::vector<unsigned char> header_bytes(std::uint32_t version) {
  ByteWriter w;
  w.bytes(kMagic, sizeof kMagic);
  w.u32(version);
  w.u32(crc32(w.data().data(), w.size()));
  return w.data();
}

// 0 when `p` is not a valid journal header of a known version.
std::uint32_t header_version(const unsigned char* p, std::size_t n) {
  if (n < kHeaderSize) return 0;
  for (std::uint32_t v = 1; v <= kVersion; ++v) {
    const auto expect = header_bytes(v);
    if (std::memcmp(p, expect.data(), kHeaderSize) == 0) return v;
  }
  return 0;
}

void encode_record(ByteWriter& w, const JournalRecord& rec) {
  ByteWriter payload;
  payload.u64(rec.generation);
  payload.u64(rec.old_fingerprint);
  payload.u64(rec.new_fingerprint);
  payload.i64(rec.u);
  payload.i64(rec.v);
  payload.i64(rec.new_w);
  payload.u8(rec.cls);
  payload.u8(rec.op);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data().data(), payload.size());
  w.u32(crc32(payload.data().data(), payload.size()));
}

// Rewrite a valid-but-old journal file as the current version: re-encode
// the intact record prefix (v1 records get op = 0, i.e. reweight) into a
// temp file, fsync, rename over the original, fsync the directory.  A torn
// v1 tail is dropped here — the same bytes recover() would truncate.
void upgrade_in_place(const std::string& path, const Journal::Scan& scan) {
  const std::string tmp = path + ".upgrade.tmp";
  ByteWriter w;
  const auto header = header_bytes(kVersion);
  w.bytes(header.data(), header.size());
  for (const JournalRecord& rec : scan.records) encode_record(w, rec);
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  MPCMST_CHECK(fd >= 0, "journal: cannot open " << tmp << " for upgrade");
  write_all_fd(fd, w.data().data(), w.size(), tmp);
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  MPCMST_CHECK(synced, "journal: fsync failed on " << tmp);
  MPCMST_CHECK(::rename(tmp.c_str(), path.c_str()) == 0,
               "journal: cannot rename " << tmp << " over " << path);
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

void write_all_fd(int fd, const unsigned char* p, std::size_t n,
                  const std::string& path) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0 && errno == EINTR) continue;
    MPCMST_CHECK(wrote > 0, "persist: write failed on " << path);
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

void set_persist_crash_hook(void (*hook)(const char* phase)) {
  g_crash_hook.store(hook, std::memory_order_release);
}

void persist_crash_point(const char* phase) {
  if (auto* hook = g_crash_hook.load(std::memory_order_acquire)) hook(phase);
}

std::string journal_path(const std::string& dir) {
  return dir + "/journal.bin";
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Journal::Journal(Journal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      mode_(other.mode_) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    mode_ = other.mode_;
  }
  return *this;
}

Journal Journal::open(const std::string& path, SyncMode mode) {
  {
    // Upgrade an older-format file before taking the append handle, so the
    // append side only ever writes current-version frames.
    const Scan probe = scan(path);
    if (!probe.missing && probe.version != 0 && probe.version < kVersion)
      upgrade_in_place(path, probe);
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
  MPCMST_CHECK(fd >= 0, "journal: cannot open " << path);
  Journal j;
  j.fd_ = fd;
  j.path_ = path;
  j.mode_ = mode;

  struct stat st {};
  MPCMST_CHECK(::fstat(fd, &st) == 0, "journal: cannot stat " << path);
  if (st.st_size == 0) {
    const auto header = header_bytes(kVersion);
    write_all_fd(fd, header.data(), header.size(), path);
    MPCMST_CHECK(::fsync(fd) == 0, "journal: fsync failed on " << path);
  } else {
    unsigned char buf[kHeaderSize];
    const ssize_t got = ::pread(fd, buf, kHeaderSize, 0);
    MPCMST_CHECK(got == static_cast<ssize_t>(kHeaderSize) &&
                     header_version(buf, kHeaderSize) == kVersion,
                 "journal: " << path << " has no valid header "
                             << "(not a journal, or an incompatible version)");
  }
  return j;
}

void Journal::append(const JournalRecord& rec) {
  MPCMST_ASSERT(fd_ >= 0, "journal: append on a closed handle");
  ScopedLatency append_lat(*service_metrics().journal_append);
  ByteWriter frame;
  encode_record(frame, rec);
  commit_bytes(frame.data().data(), frame.size());
}

void Journal::append_batch(const std::vector<JournalRecord>& recs) {
  if (recs.empty()) return;
  MPCMST_ASSERT(fd_ >= 0, "journal: append on a closed handle");
  ScopedLatency append_lat(*service_metrics().journal_append);
  ByteWriter frames;
  for (const JournalRecord& rec : recs) encode_record(frames, rec);
  commit_bytes(frames.data().data(), frames.size());
}

void Journal::commit_bytes(const unsigned char* p, std::size_t n) {
  if (g_crash_hook.load(std::memory_order_acquire) != nullptr) {
    // Two-part write with the crash point between: the harness can SIGKILL
    // here to manufacture a torn (partially written) record.
    const std::size_t half = n / 2;
    write_all_fd(fd_, p, half, path_);
    persist_crash_point("journal-mid-record");
    write_all_fd(fd_, p + half, n - half, path_);
  } else {
    write_all_fd(fd_, p, n, path_);
  }
  if (mode_ == SyncMode::kCommit) {
    // The fsync dominates commit latency; its own series isolates it from
    // the framing + write cost of the whole append.
    ScopedLatency fsync_lat(*service_metrics().journal_fsync);
    MPCMST_CHECK(::fsync(fd_) == 0, "journal: fsync failed on " << path_);
  }
  persist_crash_point("journal-post-commit");
}

void Journal::reset() {
  MPCMST_ASSERT(fd_ >= 0, "journal: reset on a closed handle");
  MPCMST_CHECK(::ftruncate(fd_, static_cast<off_t>(kHeaderSize)) == 0,
               "journal: truncate failed on " << path_);
  MPCMST_CHECK(::fsync(fd_) == 0, "journal: fsync failed on " << path_);
}

Journal::Scan Journal::scan(const std::string& path) {
  Scan out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.missing = true;
    return out;
  }
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  const std::uint32_t version = header_version(bytes.data(), bytes.size());
  if (version == 0) {
    out.missing = true;
    return out;
  }
  out.version = version;
  const std::size_t payload_size = payload_size_for(version);
  std::size_t off = kHeaderSize;
  while (off < bytes.size()) {
    ByteReader r(bytes.data() + off, bytes.size() - off);
    const std::uint32_t len = r.u32();
    if (!r.ok() || len != payload_size || r.remaining() < payload_size + 4)
      break;  // torn or foreign frame: stop at the intact prefix
    const unsigned char* payload = bytes.data() + off + 4;
    ByteReader pr(payload, payload_size);
    JournalRecord rec;
    rec.generation = pr.u64();
    rec.old_fingerprint = pr.u64();
    rec.new_fingerprint = pr.u64();
    rec.u = pr.i64();
    rec.v = pr.i64();
    rec.new_w = pr.i64();
    rec.cls = pr.u8();
    if (version >= 2) rec.op = pr.u8();  // v1: every record is a reweight
    std::uint32_t stored_crc;
    std::memcpy(&stored_crc, payload + payload_size, 4);
    if (stored_crc != crc32(payload, payload_size)) break;
    out.records.push_back(rec);
    off += 4 + payload_size + 4;
  }
  out.valid_bytes = off;
  out.torn = off < bytes.size();
  return out;
}

Journal::Scan Journal::recover(const std::string& path) {
  Scan out = scan(path);
  if (out.missing || !out.torn) return out;
  const int fd = ::open(path.c_str(), O_RDWR);
  MPCMST_CHECK(fd >= 0, "journal: cannot reopen " << path << " to truncate");
  const bool ok = ::ftruncate(fd, static_cast<off_t>(out.valid_bytes)) == 0 &&
                  ::fsync(fd) == 0;
  ::close(fd);
  MPCMST_CHECK(ok, "journal: torn-tail truncation failed on " << path);
  return out;
}

}  // namespace mpcmst::service
