// The serving tier's named metric bundle over common/metrics.hpp.
//
// Every series the service layer emits is registered once, here, under a
// stable name (catalogued in src/service/README.md "Observability"), and
// handed out as a struct of raw pointers — the hot paths index an array
// instead of hashing a metric name.  The bundle is process-wide like the
// registry itself: two QueryService instances in one process add into the
// same series, which is exactly the Prometheus default-registry contract
// (per-instance numbers stay available via QueryService::stats()).
//
// This header deliberately depends only on common/metrics.hpp: the query
// kinds and update classes appear as label tables indexed by the enums'
// underlying values, so journal.cpp can emit fsync timings without pulling
// in the backend headers (the journal layer stays decoupled from
// update.hpp by design).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/metrics.hpp"

namespace mpcmst::service {

/// Mirrors QueryKind (query.hpp) / UpdateClass (update.hpp) — static_asserts
/// in telemetry.cpp pin the orders together.
inline constexpr std::size_t kNumQueryKinds = 5;
inline constexpr std::size_t kNumUpdateClasses = 10;  // incl. no_change

/// Label value for query kind i, e.g. "price_change".
const char* query_kind_label(std::size_t kind);

/// Label value for update class c, e.g. "tree_swap".
const char* update_class_label(std::size_t cls);

/// All serving-tier series, registered on first use.
struct ServiceMetrics {
  // Query path.
  std::array<Counter*, kNumQueryKinds> queries;        // per-kind totals
  std::array<Histogram*, kNumQueryKinds> query_latency;  // per-kind ns
  Counter* batches;
  Histogram* batch_size;     // queries per answer_batch call (kCount)
  Histogram* batch_latency;  // whole-batch wall time

  // Result cache (fed by ShardedLruCache via set_metric_counters).
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* cache_evictions;

  // Update path.
  std::array<Counter*, kNumUpdateClasses> updates;         // per-class totals
  std::array<Histogram*, kNumUpdateClasses> update_latency;  // per-class ns
  Counter* update_rejects;  // resolution failures (unknown edge, ...)

  // Persistence.
  Histogram* journal_append;  // whole append() incl. fsync
  Histogram* journal_fsync;   // the fsync alone (kCommit mode)
  Histogram* snapshot_write;
  Histogram* snapshot_load;
  Counter* checkpoints;

  // Recovery (one sample per recover() call).
  Counter* recoveries;
  Histogram* recovery_snapshot_load;
  Histogram* recovery_tail_scan;
  Histogram* recovery_replay;
};

/// The process-wide bundle (references into MetricsRegistry::instance()).
ServiceMetrics& service_metrics();

/// One histogram reduced to the operator-facing numbers.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
};

LatencySummary summarize(const HistogramSnapshot& h);

/// Registry slice served back through QueryService::stats(): process-wide
/// totals and percentiles for the serving tier (all zeros under
/// MPCMST_NO_METRICS).
struct TelemetrySnapshot {
  std::array<std::uint64_t, kNumQueryKinds> queries_by_kind{};
  std::array<LatencySummary, kNumQueryKinds> query_latency{};
  LatencySummary batch_size{};  // unit: queries, not ns
  std::array<std::uint64_t, kNumUpdateClasses> updates_by_class{};
  LatencySummary journal_append{};
  LatencySummary journal_fsync{};
  LatencySummary snapshot_write{};
  LatencySummary snapshot_load{};
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
};

TelemetrySnapshot telemetry_snapshot();

}  // namespace mpcmst::service
