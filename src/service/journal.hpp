// Crash-consistent update journal: the write-ahead half of the persistence
// layer (snapshot.hpp is the checkpoint half).
//
// Every confirmed change a live backend applies is one fixed-shape record —
// the canonical apply_update_to_instance inputs (u, v, new_w) plus the
// pre/post instance fingerprints, the generation the change produced, and
// its classification.  Records are CRC-framed ([len | payload | crc32]) and,
// in SyncMode::kCommit, fsync'd before the update is acknowledged, so an
// acknowledged change survives any process death.  A restarted tier replays
// the journal tail on top of the newest snapshot through the ordinary update
// path and lands byte-identical to a tier that never crashed
// (QueryService::recover, gated by the CI crash-injection job).
//
// Torn tails are expected, not errors: a crash mid-append leaves a partial
// frame (or a frame with a bad CRC) at the end of the file.  scan() stops at
// the first invalid frame; recover() additionally truncates the file back to
// the last intact record so the tier can append again.  Everything after a
// bad frame is discarded — with commit-synced appends the only bytes that
// can be bad are the unacknowledged tail.
//
// On-disk format (version 2):
//
//   header   magic "MPCJRN01" (8) | version u32 | crc32(magic+version)
//   frame    len u32 | payload | crc32(payload)
//   payload  generation u64 | old_fingerprint u64 | new_fingerprint u64
//            | u i64 | v i64 | new_w i64 | cls u8 | op u8      (50 bytes)
//
// Version 1 lacked the trailing `op` byte (49-byte payloads, reweights
// only).  scan()/recover() parse both versions; Journal::open() upgrades a
// v1 file in place (rewrite-to-temp + rename, records re-encoded with
// op = kReweight) so the append side only ever writes v2 frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpcmst::service {

/// When an appended record becomes durable.
enum class SyncMode : std::uint8_t {
  kCommit,  // fsync before the update is acknowledged (crash-durable)
  kNever,   // leave flushing to the OS: an acknowledged update may be lost
            // on a crash, but recovery still lands on a consistent prefix
};

/// How a live serving tier persists itself (QueryService::build_live{,
/// _sharded} / recover).
struct PersistenceConfig {
  std::string dir;  // journal + snapshots live here (created if missing)
  SyncMode sync_mode = SyncMode::kCommit;
  /// Journal records between snapshot compactions (a checkpoint writes a
  /// fresh snapshot, truncates the journal, and prunes old snapshot files);
  /// 0 = only explicit checkpoint() calls compact.
  std::size_t snapshot_every_n = 1024;
};

/// One committed change, exactly as the update path consumed it.  `cls` and
/// `op` mirror service::UpdateClass / service::UpdateOp (stored as bytes so
/// the journal layer does not depend on update.hpp).
struct JournalRecord {
  std::uint64_t generation = 0;       // epoch this change produced
  std::uint64_t old_fingerprint = 0;  // instance fingerprint before
  std::uint64_t new_fingerprint = 0;  // ... and after
  std::int64_t u = 0;                 // the submitted endpoints and price:
  std::int64_t v = 0;                 // replay re-resolves them against the
  std::int64_t new_w = 0;             // same pre-state, so it cannot drift
  std::uint8_t cls = 0;  // UpdateClass, for dumps and replay checks
  std::uint8_t op = 0;   // UpdateOp: reweight / add_edge / remove_edge

  friend bool operator==(const JournalRecord&, const JournalRecord&) = default;
};

/// Crash-injection hook (test-only): invoked at named points of the commit
/// path — "journal-mid-record" between the two halves of a frame write,
/// "journal-post-commit" after the record is durable, "snapshot-mid-write"
/// halfway through a snapshot file.  The CI recovery harness installs a hook
/// that SIGKILLs the process at a chosen invocation; production never sets
/// it (an unset hook costs one relaxed atomic load).
void set_persist_crash_hook(void (*hook)(const char* phase));
void persist_crash_point(const char* phase);

/// The journal file inside a persistence directory.
std::string journal_path(const std::string& dir);

/// Write exactly `n` bytes to `fd`, retrying short writes and EINTR; throws
/// ModelError naming `path` on any real failure.  Shared by the journal and
/// snapshot writers so the two commit paths cannot drift.
void write_all_fd(int fd, const unsigned char* p, std::size_t n,
                  const std::string& path);

/// Append-side handle (move-only; owns the fd).  Appends go through
/// O_APPEND, so a concurrent scan of the same file always sees a prefix.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open for append, creating the file (with its header) if missing or
  /// empty; an existing file must carry a valid header.  Torn tails are NOT
  /// truncated here — recover() the path first when resuming after a crash.
  static Journal open(const std::string& path, SyncMode mode);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Frame, append and (in kCommit mode) fsync one record.
  void append(const JournalRecord& rec);

  /// Group commit: frame all records into one contiguous write and (in
  /// kCommit mode) one fsync.  Either the whole batch becomes durable or a
  /// torn tail cuts it to a prefix — exactly the per-record guarantee, paid
  /// once.  The "journal-mid-record" crash point fires inside the combined
  /// write, same as for append().
  void append_batch(const std::vector<JournalRecord>& recs);

  /// Truncate back to the bare header (checkpoint compaction: the snapshot
  /// now owns everything the dropped records carried).
  void reset();

  /// What a read of the file found.
  struct Scan {
    std::vector<JournalRecord> records;  // intact prefix, in append order
    std::uint64_t valid_bytes = 0;       // header + intact records
    std::uint32_t version = 0;  // on-disk format version (0 when missing)
    bool torn = false;     // trailing bytes after the intact prefix
    bool missing = false;  // no file, or an unreadable/foreign header
  };

  /// Parse the intact record prefix (never modifies the file).
  static Scan scan(const std::string& path);

  /// scan(), then truncate any torn tail in place (fsync'd).
  static Scan recover(const std::string& path);

 private:
  /// Shared tail of append()/append_batch(): hook-aware two-half write of
  /// the framed bytes, then the kCommit fsync and the post-commit point.
  void commit_bytes(const unsigned char* p, std::size_t n);

  int fd_ = -1;
  std::string path_;
  SyncMode mode_ = SyncMode::kCommit;
};

}  // namespace mpcmst::service
