#include "service/query.hpp"

#include <algorithm>
#include <sstream>

namespace mpcmst::service {

namespace {

/// Sentinel-aware weight formatting (kPosInfW is "unbounded", never a price).
std::string weight_str(Weight w) {
  if (w >= graph::kPosInfW) return "inf";
  if (w <= graph::kNegInfW) return "-inf";
  return std::to_string(w);
}

Query edge_query(QueryKind kind, Vertex u, Vertex v) {
  Query q;
  q.kind = kind;
  q.u = std::min(u, v);  // canonical: equal questions hash equally
  q.v = std::max(u, v);
  return q;
}

}  // namespace

Query Query::price_change(Vertex u, Vertex v, Weight delta) {
  Query q = edge_query(QueryKind::kPriceChange, u, v);
  // Clamp to the sentinel band: weights live well below kPosInfW (see
  // graph/types.hpp), so w + delta cannot overflow and any delta at the
  // band answers the same as the band edge.  Also canonicalizes cache keys.
  q.delta = std::clamp(delta, graph::kNegInfW, graph::kPosInfW);
  return q;
}

Query Query::replacement_edge(Vertex u, Vertex v) {
  return edge_query(QueryKind::kReplacementEdge, u, v);
}

Query Query::top_k_fragile(std::int64_t k) {
  Query q;
  q.kind = QueryKind::kTopKFragile;
  q.k = std::max<std::int64_t>(k, 0);
  return q;
}

Query Query::corridor_headroom(Vertex u, Vertex v) {
  return edge_query(QueryKind::kCorridorHeadroom, u, v);
}

Query Query::still_mst(std::vector<PriceChange> changes) {
  Query q;
  q.kind = QueryKind::kStillMst;
  for (PriceChange& c : changes) {
    if (c.u > c.v) std::swap(c.u, c.v);
    // Same sentinel-band clamp as price_change: weights live well inside the
    // band, so every clamped scenario answers like the band edge.
    c.new_w = std::clamp(c.new_w, graph::kNegInfW, graph::kPosInfW);
  }
  // Canonical form: sorted by endpoints, one entry per edge.  The sort is
  // stable so "last occurrence wins" survives it — a scenario that restates
  // a price means the restatement.
  std::stable_sort(changes.begin(), changes.end(),
                   [](const PriceChange& a, const PriceChange& b) {
                     return a.u != b.u ? a.u < b.u : a.v < b.v;
                   });
  std::size_t out = 0;
  for (std::size_t i = 0; i < changes.size(); ++i) {
    if (out > 0 && changes[out - 1].u == changes[i].u &&
        changes[out - 1].v == changes[i].v)
      changes[out - 1].new_w = changes[i].new_w;  // last write wins
    else
      changes[out++] = changes[i];
  }
  changes.resize(out);
  q.changes = std::move(changes);
  return q;
}

FragileEntry make_fragile_entry(Vertex child, const TreeEdgeInfo& e) {
  return FragileEntry{child, e.parent, e.w, e.sens, e.replacement};
}

Answer answer_for_tree_edge(const Query& q, EdgeRef ref,
                            const TreeEdgeInfo& e) {
  Answer a;
  a.edge = ref;
  a.headroom = e.sens;
  a.swap_cost = e.mc;
  a.replacement = e.replacement;
  if (q.kind == QueryKind::kPriceChange) {
    // Definition 1.2, tree side: T stays optimal iff the new weight does
    // not exceed the cheapest cover (a tie keeps T optimal).  A bridge
    // (mc == kPosInfW) stays optimal at any price — including deltas
    // clamped to the sentinel band, where w + delta would exceed mc.
    a.still_optimal = e.mc >= graph::kPosInfW || e.w + q.delta <= e.mc;
  }
  return a;
}

Answer answer_for_nontree_edge(const Query& q, EdgeRef ref,
                               const NonTreeEdgeInfo& e) {
  Answer a;
  a.edge = ref;
  a.headroom = e.sens;
  a.swap_cost = e.maxpath;
  if (q.kind == QueryKind::kPriceChange) {
    // Non-tree side: the edge stays out iff it is no lighter than the
    // covering maximum of its path (ties keep T optimal).
    a.still_optimal = e.w + q.delta >= e.maxpath;
  } else if (q.kind == QueryKind::kReplacementEdge) {
    a.status = Status::kNotApplicable;  // nothing to replace: not in T
  }
  return a;
}

Answer answer_query(const SensitivityIndex& index, const Query& q) {
  if (q.kind == QueryKind::kStillMst) {
    Answer a;
    std::vector<verify::ResolvedChange> resolved;
    a.status = resolve_changes(
        [&index](Vertex u, Vertex v) { return index.find(u, v); }, q.changes,
        resolved);
    if (a.status != Status::kOk) return a;
    const std::vector<Weight>& tw = index.tree_labels().w;
    const verify::BatchCertifier cert(
        index.topology(),
        [&tw](Vertex child) { return tw[static_cast<std::size_t>(child)]; },
        resolved);
    // One pass over the non-tree labels: k O(1) covers() probes per edge,
    // path re-walks only where the batch actually crosses — verification,
    // never recomputation.  Certificates land in ascending orig_id.
    const NonTreeLabels& nt = index.nontree_labels();
    for (std::size_t i = 0; i < nt.size(); ++i)
      if (const auto viol = cert.certify(static_cast<std::int64_t>(i), nt.u[i],
                                         nt.v[i], nt.w[i], nt.maxpath[i]))
        a.certificates.push_back(*viol);
    a.still_optimal = a.certificates.empty();
    return a;
  }
  if (q.kind == QueryKind::kTopKFragile) {
    Answer a;
    const auto& order = index.fragile_order();
    const std::size_t k =
        std::min<std::size_t>(static_cast<std::size_t>(q.k), order.size());
    a.fragile.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
      a.fragile.push_back(
          make_fragile_entry(order[i], index.tree_edge(order[i])));
    return a;
  }

  const auto ref = index.find(q.u, q.v);
  if (!ref) {
    Answer a;
    a.status = Status::kUnknownEdge;
    return a;
  }
  if (ref->is_tree)
    return answer_for_tree_edge(q, *ref, index.tree_edge(ref->id));
  return answer_for_nontree_edge(q, *ref, index.nontree_edge(ref->id));
}

std::string to_string(const Query& q) {
  std::ostringstream os;
  switch (q.kind) {
    case QueryKind::kPriceChange:
      os << "price_change({" << q.u << "," << q.v << "}, " << q.delta << ")";
      break;
    case QueryKind::kReplacementEdge:
      os << "replacement_edge({" << q.u << "," << q.v << "})";
      break;
    case QueryKind::kTopKFragile:
      os << "top_k_fragile(" << q.k << ")";
      break;
    case QueryKind::kCorridorHeadroom:
      os << "corridor_headroom({" << q.u << "," << q.v << "})";
      break;
    case QueryKind::kStillMst:
      os << "still_mst(" << q.changes.size() << " changes)";
      break;
  }
  return os.str();
}

std::string to_string(const Answer& a) {
  std::ostringstream os;
  switch (a.status) {
    case Status::kUnknownEdge:
      return "unknown edge";
    case Status::kNotApplicable:
      return "not applicable (non-tree edge)";
    case Status::kWouldDisconnect:
      return "refused: would disconnect";
    case Status::kOk:
      break;
  }
  if (!a.certificates.empty()) {
    os << "no longer an MST: " << a.certificates.size()
       << " violating edge(s):";
    for (const verify::ViolationCert& c : a.certificates)
      os << " #" << c.orig_id << "{" << c.u << "," << c.v
         << "} w=" << weight_str(c.w) << " < path_max=" << weight_str(c.maxpath);
    return os.str();
  }
  if (!a.fragile.empty() || a.edge.id < 0) {
    os << a.fragile.size() << " fragile edges:";
    for (const FragileEntry& f : a.fragile)
      os << " {" << f.child << "," << f.parent << "} w=" << f.w
         << " headroom=" << weight_str(f.sens);
    return os.str();
  }
  os << (a.edge.is_tree ? "tree" : "non-tree") << " edge, "
     << (a.still_optimal ? "still optimal" : "optimum changes")
     << ", headroom=" << weight_str(a.headroom)
     << ", swap_cost=" << weight_str(a.swap_cost);
  if (a.replacement >= 0) os << ", replacement=#" << a.replacement;
  return os.str();
}

}  // namespace mpcmst::service
