#include "service/query.hpp"

#include <algorithm>
#include <sstream>

namespace mpcmst::service {

namespace {

/// Sentinel-aware weight formatting (kPosInfW is "unbounded", never a price).
std::string weight_str(Weight w) {
  if (w >= graph::kPosInfW) return "inf";
  if (w <= graph::kNegInfW) return "-inf";
  return std::to_string(w);
}

Query edge_query(QueryKind kind, Vertex u, Vertex v) {
  Query q;
  q.kind = kind;
  q.u = std::min(u, v);  // canonical: equal questions hash equally
  q.v = std::max(u, v);
  return q;
}

}  // namespace

Query Query::price_change(Vertex u, Vertex v, Weight delta) {
  Query q = edge_query(QueryKind::kPriceChange, u, v);
  // Clamp to the sentinel band: weights live well below kPosInfW (see
  // graph/types.hpp), so w + delta cannot overflow and any delta at the
  // band answers the same as the band edge.  Also canonicalizes cache keys.
  q.delta = std::clamp(delta, graph::kNegInfW, graph::kPosInfW);
  return q;
}

Query Query::replacement_edge(Vertex u, Vertex v) {
  return edge_query(QueryKind::kReplacementEdge, u, v);
}

Query Query::top_k_fragile(std::int64_t k) {
  Query q;
  q.kind = QueryKind::kTopKFragile;
  q.k = std::max<std::int64_t>(k, 0);
  return q;
}

Query Query::corridor_headroom(Vertex u, Vertex v) {
  return edge_query(QueryKind::kCorridorHeadroom, u, v);
}

FragileEntry make_fragile_entry(Vertex child, const TreeEdgeInfo& e) {
  return FragileEntry{child, e.parent, e.w, e.sens, e.replacement};
}

Answer answer_for_tree_edge(const Query& q, EdgeRef ref,
                            const TreeEdgeInfo& e) {
  Answer a;
  a.edge = ref;
  a.headroom = e.sens;
  a.swap_cost = e.mc;
  a.replacement = e.replacement;
  if (q.kind == QueryKind::kPriceChange) {
    // Definition 1.2, tree side: T stays optimal iff the new weight does
    // not exceed the cheapest cover (a tie keeps T optimal).  A bridge
    // (mc == kPosInfW) stays optimal at any price — including deltas
    // clamped to the sentinel band, where w + delta would exceed mc.
    a.still_optimal = e.mc >= graph::kPosInfW || e.w + q.delta <= e.mc;
  }
  return a;
}

Answer answer_for_nontree_edge(const Query& q, EdgeRef ref,
                               const NonTreeEdgeInfo& e) {
  Answer a;
  a.edge = ref;
  a.headroom = e.sens;
  a.swap_cost = e.maxpath;
  if (q.kind == QueryKind::kPriceChange) {
    // Non-tree side: the edge stays out iff it is no lighter than the
    // covering maximum of its path (ties keep T optimal).
    a.still_optimal = e.w + q.delta >= e.maxpath;
  } else if (q.kind == QueryKind::kReplacementEdge) {
    a.status = Status::kNotApplicable;  // nothing to replace: not in T
  }
  return a;
}

Answer answer_query(const SensitivityIndex& index, const Query& q) {
  if (q.kind == QueryKind::kTopKFragile) {
    Answer a;
    const auto& order = index.fragile_order();
    const std::size_t k =
        std::min<std::size_t>(static_cast<std::size_t>(q.k), order.size());
    a.fragile.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
      a.fragile.push_back(
          make_fragile_entry(order[i], index.tree_edge(order[i])));
    return a;
  }

  const auto ref = index.find(q.u, q.v);
  if (!ref) {
    Answer a;
    a.status = Status::kUnknownEdge;
    return a;
  }
  if (ref->is_tree)
    return answer_for_tree_edge(q, *ref, index.tree_edge(ref->id));
  return answer_for_nontree_edge(q, *ref, index.nontree_edge(ref->id));
}

std::string to_string(const Query& q) {
  std::ostringstream os;
  switch (q.kind) {
    case QueryKind::kPriceChange:
      os << "price_change({" << q.u << "," << q.v << "}, " << q.delta << ")";
      break;
    case QueryKind::kReplacementEdge:
      os << "replacement_edge({" << q.u << "," << q.v << "})";
      break;
    case QueryKind::kTopKFragile:
      os << "top_k_fragile(" << q.k << ")";
      break;
    case QueryKind::kCorridorHeadroom:
      os << "corridor_headroom({" << q.u << "," << q.v << "})";
      break;
  }
  return os.str();
}

std::string to_string(const Answer& a) {
  std::ostringstream os;
  switch (a.status) {
    case Status::kUnknownEdge:
      return "unknown edge";
    case Status::kNotApplicable:
      return "not applicable (non-tree edge)";
    case Status::kOk:
      break;
  }
  if (!a.fragile.empty() || a.edge.id < 0) {
    os << a.fragile.size() << " fragile edges:";
    for (const FragileEntry& f : a.fragile)
      os << " {" << f.child << "," << f.parent << "} w=" << f.w
         << " headroom=" << weight_str(f.sens);
    return os.str();
  }
  os << (a.edge.is_tree ? "tree" : "non-tree") << " edge, "
     << (a.still_optimal ? "still optimal" : "optimum changes")
     << ", headroom=" << weight_str(a.headroom)
     << ", swap_cost=" << weight_str(a.swap_cost);
  if (a.replacement >= 0) os << ", replacement=#" << a.replacement;
  return os.str();
}

}  // namespace mpcmst::service
