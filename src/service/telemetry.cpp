#include "service/telemetry.hpp"

#include <string>

#include "service/query.hpp"
#include "service/update.hpp"

namespace mpcmst::service {

// The label tables below are indexed by the enums' underlying values; pin
// the orders together so a reordered enum cannot silently relabel series.
static_assert(static_cast<std::size_t>(QueryKind::kPriceChange) == 0);
static_assert(static_cast<std::size_t>(QueryKind::kReplacementEdge) == 1);
static_assert(static_cast<std::size_t>(QueryKind::kTopKFragile) == 2);
static_assert(static_cast<std::size_t>(QueryKind::kCorridorHeadroom) == 3);
static_assert(static_cast<std::size_t>(QueryKind::kStillMst) == 4);
static_assert(static_cast<std::size_t>(UpdateClass::kNoChange) == 0);
static_assert(static_cast<std::size_t>(UpdateClass::kTreeReweight) == 1);
static_assert(static_cast<std::size_t>(UpdateClass::kTreeSwap) == 2);
static_assert(static_cast<std::size_t>(UpdateClass::kNonTreeReweight) == 3);
static_assert(static_cast<std::size_t>(UpdateClass::kNonTreeSwap) == 4);
static_assert(static_cast<std::size_t>(UpdateClass::kNonTreeInsert) == 5);
static_assert(static_cast<std::size_t>(UpdateClass::kInsertSwap) == 6);
static_assert(static_cast<std::size_t>(UpdateClass::kVertexAttach) == 7);
static_assert(static_cast<std::size_t>(UpdateClass::kNonTreeDelete) == 8);
static_assert(static_cast<std::size_t>(UpdateClass::kTreeDeletePromote) == 9);

namespace {

constexpr std::array<const char*, kNumQueryKinds> kKindLabels = {
    "price_change", "replacement_edge", "top_k_fragile", "corridor_headroom",
    "still_mst"};

constexpr std::array<const char*, kNumUpdateClasses> kClassLabels = {
    "no_change",      "tree_reweight", "tree_swap",
    "nontree_reweight", "nontree_swap", "nontree_insert",
    "insert_swap",    "vertex_attach", "nontree_delete",
    "tree_delete_promote"};

std::string kind_labels(std::size_t i) {
  return std::string("kind=\"") + kKindLabels[i] + "\"";
}

std::string class_labels(std::size_t c) {
  return std::string("class=\"") + kClassLabels[c] + "\"";
}

}  // namespace

const char* query_kind_label(std::size_t kind) { return kKindLabels[kind]; }

const char* update_class_label(std::size_t cls) { return kClassLabels[cls]; }

ServiceMetrics& service_metrics() {
  static ServiceMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::instance();
    ServiceMetrics b{};
    for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
      b.queries[k] = &r.counter("mpcmst_queries_total", kind_labels(k));
      b.query_latency[k] =
          &r.histogram("mpcmst_query_latency_seconds", kind_labels(k));
    }
    b.batches = &r.counter("mpcmst_query_batches_total");
    b.batch_size = &r.histogram("mpcmst_query_batch_size", "",
                                MetricUnit::kCount);
    b.batch_latency = &r.histogram("mpcmst_query_batch_latency_seconds");
    b.cache_hits = &r.counter("mpcmst_cache_hits_total");
    b.cache_misses = &r.counter("mpcmst_cache_misses_total");
    b.cache_evictions = &r.counter("mpcmst_cache_evictions_total");
    for (std::size_t c = 0; c < kNumUpdateClasses; ++c) {
      b.updates[c] = &r.counter("mpcmst_updates_total", class_labels(c));
      b.update_latency[c] =
          &r.histogram("mpcmst_update_latency_seconds", class_labels(c));
    }
    b.update_rejects = &r.counter("mpcmst_update_rejects_total");
    b.journal_append = &r.histogram("mpcmst_journal_append_seconds");
    b.journal_fsync = &r.histogram("mpcmst_journal_fsync_seconds");
    b.snapshot_write = &r.histogram("mpcmst_snapshot_write_seconds");
    b.snapshot_load = &r.histogram("mpcmst_snapshot_load_seconds");
    b.checkpoints = &r.counter("mpcmst_checkpoints_total");
    b.recoveries = &r.counter("mpcmst_recoveries_total");
    b.recovery_snapshot_load = &r.histogram(
        "mpcmst_recovery_phase_seconds", "phase=\"snapshot_load\"");
    b.recovery_tail_scan =
        &r.histogram("mpcmst_recovery_phase_seconds", "phase=\"tail_scan\"");
    b.recovery_replay =
        &r.histogram("mpcmst_recovery_phase_seconds", "phase=\"replay\"");
    return b;
  }();
  return m;
}

LatencySummary summarize(const HistogramSnapshot& h) {
  LatencySummary s;
  s.count = h.count;
  s.mean_ns = h.mean();
  s.p50_ns = h.percentile(0.50);
  s.p90_ns = h.percentile(0.90);
  s.p99_ns = h.percentile(0.99);
  s.max_ns = h.max;
  return s;
}

TelemetrySnapshot telemetry_snapshot() {
  TelemetrySnapshot t;
  const ServiceMetrics& m = service_metrics();
  for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
    t.queries_by_kind[k] = m.queries[k]->total();
    t.query_latency[k] = summarize(m.query_latency[k]->snapshot());
  }
  t.batch_size = summarize(m.batch_size->snapshot());
  for (std::size_t c = 0; c < kNumUpdateClasses; ++c)
    t.updates_by_class[c] = m.updates[c]->total();
  t.journal_append = summarize(m.journal_append->snapshot());
  t.journal_fsync = summarize(m.journal_fsync->snapshot());
  t.snapshot_write = summarize(m.snapshot_write->snapshot());
  t.snapshot_load = summarize(m.snapshot_load->snapshot());
  t.checkpoints = m.checkpoints->total();
  t.recoveries = m.recoveries->total();
  return t;
}

}  // namespace mpcmst::service
