// Sharded sensitivity snapshot: the SensitivityIndex partitioned by vertex
// range, so one logical index can span machines.
//
// The MPC layer computes every label with machines that hold only an
// O(n^δ)-word slice of the instance; a monolithic snapshot abandons that
// memory model at the serving layer.  ShardedSensitivityIndex restores it:
// shard i holds only the labels for child vertices in its range [lo, hi) —
//   - tree-edge infos for children in [lo, hi) (dense, offset by lo);
//   - the non-tree edges whose resolved EdgeRef lands in the range (an edge
//     is assigned to the shard owning its canonical min endpoint);
//   - the endpoint-map entries resolving to those edges (a tree entry lives
//     with its child, a non-tree entry with its min endpoint, so the shard
//     that resolves a key always owns the referenced labels);
//   - a locally-sorted fragility order (ascending sensitivity, ties by id);
//   - a per-shard cost receipt (resident words — the per-machine footprint).
// The fingerprint and the distributed build receipt are shared across shards.
//
// Two ways in: split() partitions an existing monolithic index; build() goes
// straight from the distributed run (verify::build_artifacts +
// mst_sensitivity_mpc) through per-range verify::ArtifactSlice views, never
// materializing the full endpoint map or fragility order on one host.  Both
// construct byte-identical shards; the QueryRouter (router.hpp) serves the
// four-query API over them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "service/index.hpp"

namespace mpcmst::service {

class LiveShardedBackend;  // update.hpp (friended below)

/// The serving-tier shard-count policy: a shard must own at least one
/// vertex to own any labels.  Shared by every serving entry point
/// (QueryService's sharded builders, LiveShardedBackend) so the clamp can
/// never drift between them; the raw ShardedSensitivityIndex build/split
/// below stay unclamped for callers that want the explicit
/// empty-trailing-shard regime.
inline std::size_t clamp_shard_count(std::size_t num_shards, std::size_t n) {
  return std::clamp<std::size_t>(num_shards, 1, std::max<std::size_t>(1, n));
}

/// Per-shard footprint receipt: what one participant of the sharded serving
/// tier holds, in entries and (approximate) machine words.
struct ShardCost {
  std::size_t tree_edges = 0;        // non-root children in range
  std::size_t nontree_edges = 0;     // resolved non-tree edges assigned here
  std::size_t endpoint_entries = 0;  // endpoint-map entries
  std::size_t resident_words = 0;    // total words resident on this shard
};

/// One vertex-range slice [lo, hi) of the sensitivity snapshot.  Immutable
/// after construction (only ShardedSensitivityIndex builds it); all
/// accessors are const and thread-safe.
///
/// Labels are struct-of-arrays like the monolith's: tree columns dense over
/// [lo, hi), non-tree columns parallel to the sorted `nontree_ids` roster
/// (binary-searched on lookup — the ids are stable between swaps, and swaps
/// rebuild the whole shard anyway), so point queries touch only the columns
/// they read and the fragility scan streams flat arrays.
struct IndexShard {
  Vertex lo = 0;
  Vertex hi = 0;  // exclusive; lo == hi for an empty trailing shard
  TreeLabels tree;  // indexed by child - lo (root slot unused)
  std::vector<std::int64_t> nontree_ids;  // sorted orig_ids assigned here
  NonTreeLabels nontree;                  // parallel to nontree_ids
  std::unordered_map<std::uint64_t, EdgeRef> by_endpoints;
  std::vector<Vertex> fragile_order;  // children by (sens, id) ascending
  std::size_t violations = 0;         // non-tree edges lighter than their path
  std::uint64_t generation = 0;       // epoch stamp (matches the index's)
  ShardCost cost;

  bool owns(Vertex v) const { return v >= lo && v < hi; }

  /// `child` must be owned by this shard.
  TreeEdgeInfo tree_edge(Vertex child) const {
    return tree.get(static_cast<std::size_t>(child - lo));
  }

  /// Sensitivity of an owned tree edge without assembling the full record
  /// (the top-k merge's inner loop).
  Weight tree_sens(Vertex child) const {
    return tree.sens[static_cast<std::size_t>(child - lo)];
  }

  /// Slot of `orig_id` in the non-tree columns, or -1 if not assigned here.
  std::ptrdiff_t nontree_slot(std::int64_t orig_id) const {
    const auto it =
        std::lower_bound(nontree_ids.begin(), nontree_ids.end(), orig_id);
    if (it == nontree_ids.end() || *it != orig_id) return -1;
    return it - nontree_ids.begin();
  }

  /// Empty if `orig_id` is not assigned to this shard.
  std::optional<NonTreeEdgeInfo> nontree_edge(std::int64_t orig_id) const {
    const std::ptrdiff_t slot = nontree_slot(orig_id);
    if (slot < 0) return std::nullopt;
    return nontree.get(static_cast<std::size_t>(slot));
  }

  /// Shard-local endpoint resolution (no bounds checks — the router owns
  /// those and probes at most two shards per key).
  std::optional<EdgeRef> find(std::uint64_t key) const {
    const auto it = by_endpoints.find(key);
    if (it == by_endpoints.end()) return std::nullopt;
    return it->second;
  }
};

// In-place patch primitives over one shard's slice.  The live sharded
// backend's scatter() and the networked ShardServer's patch application both
// go through these, so a label patched across a socket lands byte-identical
// to one patched in-process — the parity guarantee is by construction, not
// by parallel maintenance of two mutation paths.

/// Overwrite the labels of owned tree edge {child, p(child)}, repositioning
/// the child inside the shard-local fragility order when its sensitivity
/// moved.  `child` must be owned by `s`.
void shard_patch_tree(IndexShard& s, Vertex child, const TreeEdgeInfo& info);

/// Reconcile non-tree edge `id` with this shard: when `owned`, upsert it
/// into the sorted roster (labels overwritten in place when the slot already
/// exists); otherwise erase any stale slot (the edge moved to another
/// shard).  Returns true if the roster membership changed.
bool shard_patch_nontree(IndexShard& s, bool owned, std::int64_t id,
                         const NonTreeEdgeInfo& info);

/// Upsert one endpoint-map entry; a ref with is_tree == false && id < 0 is
/// the erase marker (see ChangedSet in update.hpp).  The caller routes the
/// key to the shard owning its high vertex (key >> 32).
void shard_patch_endpoint(IndexShard& s, std::uint64_t key, const EdgeRef& ref);

/// Recompute the shard's cost receipt from its current sizes — a pure
/// function of the slice, so refreshing an untouched shard is a no-op (the
/// same formula as ShardedSensitivityIndex's finalize()).
void shard_refresh_cost(IndexShard& s);

/// The sensitivity snapshot as a set of vertex-range shards.  Same answers
/// as the monolithic SensitivityIndex (byte-identical, see QueryRouter), but
/// no single shard ever holds more than its range's slice of the labeling.
class ShardedSensitivityIndex {
 public:
  /// Run the distributed pipeline once and scatter the labels straight into
  /// shards via per-range verify::ArtifactSlice views — the full index is
  /// never materialized on one host.
  static std::shared_ptr<const ShardedSensitivityIndex> build(
      mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards);

  /// Partition an existing monolithic snapshot (e.g. to migrate a serving
  /// tier without re-running the distributed build).
  static std::shared_ptr<const ShardedSensitivityIndex> split(
      const SensitivityIndex& full, std::size_t num_shards);

  std::size_t n() const { return n_; }
  std::size_t num_nontree() const { return num_nontree_; }
  Vertex root() const { return root_; }
  bool is_mst() const { return violations_ == 0; }
  std::size_t violations() const { return violations_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  const CostReceipt& receipt() const { return receipt_; }

  /// Update epoch: 0 for a freshly built (immutable) index; the live update
  /// layer stamps every shard with each new epoch, and the top-k merge
  /// refuses to combine shards carrying different stamps (the barrier that
  /// keeps one merged answer from mixing generations).
  std::uint64_t generation() const { return generation_; }

  std::size_t num_shards() const { return shards_.size(); }
  const IndexShard& shard(std::size_t i) const { return shards_[i]; }

  /// Vertices per shard range (partition arithmetic; the networked tier
  /// mirrors shard_of() client-side from this and num_shards()).
  std::size_t stride() const { return stride_; }

  /// Which shard owns vertex `v` (0 <= v < n)?  O(1): ranges are uniform
  /// stride-sized blocks (trailing shards may be empty).
  std::size_t shard_of(Vertex v) const {
    return std::min(static_cast<std::size_t>(v) / stride_,
                    shards_.size() - 1);
  }

  /// Resolved edge plus the shard holding its labels.  By construction the
  /// entry-owning shard always owns the referenced info, so a resolution
  /// never needs a second hop.
  struct Resolved {
    EdgeRef ref;
    const IndexShard* shard = nullptr;
  };

  /// Resolve {u, v} (order-insensitive) by probing the shards of both
  /// endpoints — a tree entry lives with its child, which may be either one.
  std::optional<Resolved> resolve(Vertex u, Vertex v) const;

  /// `child` must be a valid vertex; routes to the owning shard.
  TreeEdgeInfo tree_edge(Vertex child) const {
    return shards_[shard_of(child)].tree_edge(child);
  }

  /// Lookup by orig_id scans the shards (display paths only — point queries
  /// resolve by endpoints and stay on one shard).
  std::optional<NonTreeEdgeInfo> nontree_info(std::int64_t orig_id) const;

  /// Largest per-shard footprint — the words one machine of the serving
  /// tier must hold (the quantity sharding exists to bound).
  std::size_t max_shard_words() const;

  /// Weight-agnostic topology view of the whole tree (see
  /// SensitivityIndex::topology).  Router-resident, not per-shard: the
  /// still_mst certificate merge asks global path questions the per-range
  /// label slices cannot answer alone, and the view costs O(n) words of
  /// structure (no labels) — the router already holds O(1) per-shard state.
  const verify::TreeTopology& topology() const { return topo_; }

 private:
  friend class LiveShardedBackend;  // update.hpp: in-place generation patches
  friend struct SnapshotCodec;      // snapshot.cpp (de)serializes the shards

  ShardedSensitivityIndex() = default;

  /// Carve [0, n) into `num_shards` stride-sized ranges.
  void init_partition(std::size_t n, std::size_t num_shards);
  /// Per-shard fragility sort, cost accounting, violation totals.
  void finalize();
  /// Reassemble topo_ from the per-shard parent columns (deserialization —
  /// the builds capture it from their prelude instead).  False if the
  /// columns do not form a rooted tree (corrupt snapshot).
  bool rebuild_topology();

  std::size_t n_ = 0;
  std::size_t num_nontree_ = 0;
  std::size_t stride_ = 1;
  std::size_t violations_ = 0;
  Vertex root_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t generation_ = 0;
  CostReceipt receipt_;
  verify::TreeTopology topo_;
  std::vector<IndexShard> shards_;
};

}  // namespace mpcmst::service
