// Query and answer types of the sensitivity service, plus the stateless
// single-query evaluator.
//
// Every query is answered in O(1) (or O(k) for top-k) host-side work against
// an immutable SensitivityIndex; the tie convention follows Definition 1.2
// throughout (a weight change that creates a tie keeps T optimal).
//
// Queries are value types with a canonical form (endpoints are
// order-insensitive), so equal questions hash equally — the property the
// result cache keys on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "service/index.hpp"
#include "verify/still_mst.hpp"

namespace mpcmst::service {

enum class QueryKind : std::uint8_t {
  kPriceChange,       // edge {u, v}, delta: does T stay optimal?
  kReplacementEdge,   // tree edge {u, v}: cheapest swap-in cover
  kTopKFragile,       // k tree edges with least sensitivity
  kCorridorHeadroom,  // edge {u, v}: its sensitivity (Definition 1.2)
  kStillMst,          // batch of absolute reweights: is T still an MST?
};

/// One entry of a still_mst batch: edge {u, v} priced at `new_w` (absolute,
/// not a delta — a scenario fixes prices, it does not accumulate shocks).
struct PriceChange {
  Vertex u = -1;
  Vertex v = -1;
  Weight new_w = 0;

  friend bool operator==(const PriceChange&, const PriceChange&) = default;
};

struct Query {
  QueryKind kind = QueryKind::kCorridorHeadroom;
  Vertex u = -1;
  Vertex v = -1;
  Weight delta = 0;
  std::int64_t k = 0;
  std::vector<PriceChange> changes;  // kStillMst only, canonicalized

  static Query price_change(Vertex u, Vertex v, Weight delta);
  static Query replacement_edge(Vertex u, Vertex v);
  static Query top_k_fragile(std::int64_t k);
  static Query corridor_headroom(Vertex u, Vertex v);
  /// Canonicalizes the batch: endpoints ordered within each change, weights
  /// clamped to the sentinel band, duplicates of one edge collapsed to the
  /// last occurrence (a scenario's final word on that price), entries sorted
  /// by endpoints.  Permuted-but-equal change sets therefore compare — and
  /// hash — equal, which is what the result cache keys on.
  static Query still_mst(std::vector<PriceChange> changes);

  friend bool operator==(const Query&, const Query&) = default;
};

struct QueryHash {
  std::size_t operator()(const Query& q) const noexcept {
    HashStream h(static_cast<std::uint64_t>(q.kind));
    h.mix(static_cast<std::uint64_t>(q.u))
        .mix(static_cast<std::uint64_t>(q.v))
        .mix(static_cast<std::uint64_t>(q.delta))
        .mix(static_cast<std::uint64_t>(q.k));
    for (const PriceChange& c : q.changes)
      h.mix(hash_combine(static_cast<std::uint64_t>(c.u),
                         static_cast<std::uint64_t>(c.v),
                         static_cast<std::uint64_t>(c.new_w)));
    return static_cast<std::size_t>(h.digest());
  }
};

enum class Status : std::uint8_t {
  kOk,
  kUnknownEdge,      // {u, v} is neither a tree nor a non-tree edge
  kNotApplicable,    // e.g. replacement_edge of a non-tree edge
  kWouldDisconnect,  // remove_edge of a tree edge with no covering non-tree
                     // edge: the delete is refused, state is unchanged
};

/// One row of a top-k answer.
struct FragileEntry {
  Vertex child = -1;              // tree edge {child, p(child)}
  Vertex parent = -1;
  Weight w = 0;
  Weight sens = graph::kPosInfW;  // kPosInfW: no cover, infinitely robust
  std::int64_t replacement = -1;  // orig_id of the swap-in edge, -1 if none

  friend bool operator==(const FragileEntry&, const FragileEntry&) = default;
};

struct Answer {
  Status status = Status::kOk;
  EdgeRef edge;                   // resolved edge (edge queries)
  bool still_optimal = true;      // price_change / still_mst: T still optimal?
  Weight headroom = graph::kPosInfW;     // sensitivity of the queried edge
  Weight swap_cost = graph::kPosInfW;    // mc (tree) / maxpath (non-tree)
  std::int64_t replacement = -1;  // orig_id of the swap-in edge, -1 if none
  std::vector<FragileEntry> fragile;     // top_k_fragile only
  // still_mst only: the violating edges (ascending orig_id) — exactly the
  // violation set a fresh build on the reweighted instance would report.
  std::vector<verify::ViolationCert> certificates;

  friend bool operator==(const Answer&, const Answer&) = default;
};

/// Evaluate one query against the index.  Pure and thread-safe (the index is
/// immutable); the service wraps this with caching and a worker pool.
Answer answer_query(const SensitivityIndex& index, const Query& q);

// Backend-shared answer assembly: every evaluator (the monolithic
// answer_query above, the shard-routing QueryRouter) resolves an EdgeRef in
// its own way and delegates here, so all backends produce byte-identical
// answers for the same resolved edge.

/// One top-k row for the tree edge {child, p(child)}.
FragileEntry make_fragile_entry(Vertex child, const TreeEdgeInfo& e);

/// Answer a resolved point query on a tree edge (Definition 1.2, tree side).
Answer answer_for_tree_edge(const Query& q, EdgeRef ref, const TreeEdgeInfo& e);

/// Answer a resolved point query on a non-tree edge (Definition 1.2,
/// non-tree side; replacement_edge answers kNotApplicable).
Answer answer_for_nontree_edge(const Query& q, EdgeRef ref,
                               const NonTreeEdgeInfo& e);

/// Resolve a still_mst batch against any EdgeRef resolver, in batch order.
/// Returns kUnknownEdge (and clears `out`) if any change resolves nowhere —
/// a scenario naming a nonexistent edge has no well-defined answer.  Every
/// change resolves against the PRE-batch state with the index's precedence
/// (tree edge first, then the lightest duplicate), matching the oracle's
/// "apply all k, then rebuild" reading of a simultaneous batch.
template <typename FindFn>
Status resolve_changes(FindFn&& find, const std::vector<PriceChange>& batch,
                       std::vector<verify::ResolvedChange>& out) {
  out.clear();
  out.reserve(batch.size());
  for (const PriceChange& c : batch) {
    const std::optional<EdgeRef> ref = find(c.u, c.v);
    if (!ref) {
      out.clear();
      return Status::kUnknownEdge;
    }
    out.push_back(verify::ResolvedChange{ref->is_tree, ref->id, c.new_w});
  }
  return Status::kOk;
}

/// Human-readable one-liners for the REPL / logs.
std::string to_string(const Query& q);
std::string to_string(const Answer& a);

}  // namespace mpcmst::service
