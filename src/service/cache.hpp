// Sharded LRU result cache of the query service.
//
// The keyspace is split across independently-locked shards (shard = key hash
// high bits), so concurrent workers rarely contend on the same mutex; each
// shard is a classic intrusive-list LRU over an unordered_map.  Keys are
// compared for real equality — the hash only routes, it never answers — so
// hash collisions cost a lookup, never a wrong answer.
//
// Two lock disciplines:
//   - get()/put() take the shard mutex per call (single-query path);
//   - get_many()/put_many() bucket a whole batch by shard and take each
//     touched shard's mutex once (the answer_batch fast path).
// Contention note (2-core container, bench_service_throughput 100k, warm
// pass, batch 16384): the per-query path spends ~35% of its wall time in
// lock acquisition + task handoff; the batched path's one-lock-per-shard
// discipline removes that entirely — see the loop vs batch columns in
// BENCH_service.json.  The capacity==0 (disabled) fast path returns before
// touching any mutex, so a cache-off service never serializes its workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.hpp"

namespace mpcmst::service {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <class Key, class Value, class Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRUs.
  /// capacity == 0 disables caching (every get misses, puts are dropped).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16)
      : shards_(shards ? shards : 1) {
    per_shard_capacity_ = capacity / shards_.size();
    if (capacity > 0 && per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }

  /// Is any entry ever admitted?  Lock-free; callers use it to skip key
  /// construction entirely when the cache is configured off.
  bool enabled() const noexcept { return per_shard_capacity_ > 0; }

  /// Mirror hit/miss/eviction accounting into registry counters (owned by
  /// the MetricsRegistry, so their lifetime always exceeds the cache's).
  /// The bulk paths add once per touched shard, the same batching the
  /// shard atomics already use; null pointers (the default) cost nothing.
  void set_metric_counters(Counter* hits, Counter* misses,
                           Counter* evictions) noexcept {
    hits_metric_ = hits;
    misses_metric_ = misses;
    evictions_metric_ = evictions;
  }

  std::optional<Value> get(const Key& key) {
    // Disabled caches never touch a mutex and report zero lookups — the
    // service skips key construction entirely via enabled().
    if (!enabled()) return std::nullopt;
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.misses.fetch_add(1, std::memory_order_relaxed);
      if (misses_metric_ != nullptr) misses_metric_->inc();
      return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // mark most-recent
    s.hits.fetch_add(1, std::memory_order_relaxed);
    if (hits_metric_ != nullptr) hits_metric_->inc();
    return it->second->second;
  }

  void put(const Key& key, Value value) {
    if (!enabled()) return;
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    put_locked(s, key, std::move(value));
  }

  /// Bulk probe for the batch fast path: for each i in [0, n), look up
  /// keys[i]; on a hit, copy the value into out[i] and set hit[i] = 1
  /// (out/hit slots of misses are left untouched).  Probes are bucketed by
  /// shard so each touched shard's mutex is taken exactly once; hit/miss
  /// accounting matches n individual get() calls (recency updates included).
  void get_many(const Key* keys, std::size_t n, Value* out,
                unsigned char* hit) {
    if (n == 0 || !enabled()) return;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> bounds;
    bucket_by_shard(keys, nullptr, n, order, bounds);
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      if (bounds[sh] == bounds[sh + 1]) continue;
      Shard& s = shards_[sh];
      std::uint64_t sh_hits = 0, sh_misses = 0;
      {
        std::lock_guard<std::mutex> lock(s.mu);
        for (std::uint32_t r = bounds[sh]; r < bounds[sh + 1]; ++r) {
          const std::uint32_t i = order[r];
          auto it = s.map.find(keys[i]);
          if (it == s.map.end()) {
            ++sh_misses;
            continue;
          }
          s.lru.splice(s.lru.begin(), s.lru, it->second);
          out[i] = it->second->second;
          hit[i] = 1;
          ++sh_hits;
        }
      }
      s.hits.fetch_add(sh_hits, std::memory_order_relaxed);
      s.misses.fetch_add(sh_misses, std::memory_order_relaxed);
      if (hits_metric_ != nullptr && sh_hits > 0) hits_metric_->inc(sh_hits);
      if (misses_metric_ != nullptr && sh_misses > 0)
        misses_metric_->inc(sh_misses);
    }
  }

  /// Bulk insert for the batch fast path: stores (keys[sel[j]],
  /// values[sel[j]]) for j in [0, m), one mutex acquisition per touched
  /// shard.  Same admission/eviction behavior as m individual put() calls.
  void put_many(const Key* keys, const Value* values, const std::uint32_t* sel,
                std::size_t m) {
    if (m == 0 || !enabled()) return;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> bounds;
    bucket_by_shard(keys, sel, m, order, bounds);
    for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
      if (bounds[sh] == bounds[sh + 1]) continue;
      Shard& s = shards_[sh];
      std::lock_guard<std::mutex> lock(s.mu);
      for (std::uint32_t r = bounds[sh]; r < bounds[sh + 1]; ++r) {
        const std::uint32_t i = order[r];
        put_locked(s, keys[i], values[i]);
      }
    }
  }

  CacheStats stats() const {
    CacheStats out;
    for (const Shard& s : shards_) {
      out.hits += s.hits.load(std::memory_order_relaxed);
      out.misses += s.misses.load(std::memory_order_relaxed);
      out.evictions += s.evictions.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(s.mu);
      out.entries += s.map.size();
    }
    return out;
  }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
      s.lru.clear();
    }
  }

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<Key, Value>> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
    std::atomic<std::uint64_t> hits{0}, misses{0}, evictions{0};
  };

  std::size_t shard_index(const Key& key) const {
    // Route on the high bits: unordered_map buckets consume the low ones.
    const std::size_t h = Hash{}(key);
    return (h >> 16) % shards_.size();
  }

  Shard& shard_of(const Key& key) { return shards_[shard_index(key)]; }

  void put_locked(Shard& s, const Key& key, Value value) {
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.emplace_front(key, std::move(value));
    s.map.emplace(key, s.lru.begin());
    if (s.map.size() > per_shard_capacity_) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      s.evictions.fetch_add(1, std::memory_order_relaxed);
      if (evictions_metric_ != nullptr) evictions_metric_->inc();
    }
  }

  /// Counting-sort the probe indices (sel, or the identity when sel is
  /// null) by shard id: order[] comes out grouped, bounds[] marks the
  /// per-shard runs.  Probe order within a shard stays the batch order.
  void bucket_by_shard(const Key* keys, const std::uint32_t* sel,
                       std::size_t m, std::vector<std::uint32_t>& order,
                       std::vector<std::uint32_t>& bounds) const {
    const std::size_t S = shards_.size();
    std::vector<std::uint32_t> sid(m);
    bounds.assign(S + 1, 0);
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint32_t i = sel ? sel[j] : static_cast<std::uint32_t>(j);
      sid[j] = static_cast<std::uint32_t>(shard_index(keys[i]));
      ++bounds[sid[j] + 1];
    }
    for (std::size_t sh = 0; sh < S; ++sh) bounds[sh + 1] += bounds[sh];
    order.resize(m);
    std::vector<std::uint32_t> cursor(bounds.begin(), bounds.end() - 1);
    for (std::size_t j = 0; j < m; ++j)
      order[cursor[sid[j]]++] = sel ? sel[j] : static_cast<std::uint32_t>(j);
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_ = 0;
  Counter* hits_metric_ = nullptr;
  Counter* misses_metric_ = nullptr;
  Counter* evictions_metric_ = nullptr;
};

}  // namespace mpcmst::service
