// Sharded LRU result cache of the query service.
//
// The keyspace is split across independently-locked shards (shard = key hash
// high bits), so concurrent workers rarely contend on the same mutex; each
// shard is a classic intrusive-list LRU over an unordered_map.  Keys are
// compared for real equality — the hash only routes, it never answers — so
// hash collisions cost a lookup, never a wrong answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mpcmst::service {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

template <class Key, class Value, class Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` entries total, spread over `shards` independent LRUs.
  /// capacity == 0 disables caching (every get misses, puts are dropped).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 16)
      : shards_(shards ? shards : 1) {
    per_shard_capacity_ = capacity / shards_.size();
    if (capacity > 0 && per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }

  std::optional<Value> get(const Key& key) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      s.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // mark most-recent
    s.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  void put(const Key& key, Value value) {
    if (per_shard_capacity_ == 0) return;
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.emplace_front(key, std::move(value));
    s.map.emplace(key, s.lru.begin());
    if (s.map.size() > per_shard_capacity_) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
      s.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  CacheStats stats() const {
    CacheStats out;
    for (const Shard& s : shards_) {
      out.hits += s.hits.load(std::memory_order_relaxed);
      out.misses += s.misses.load(std::memory_order_relaxed);
      out.evictions += s.evictions.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(s.mu);
      out.entries += s.map.size();
    }
    return out;
  }

  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.clear();
      s.lru.clear();
    }
  }

  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<Key, Value>> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
    std::atomic<std::uint64_t> hits{0}, misses{0}, evictions{0};
  };

  Shard& shard_of(const Key& key) {
    // Route on the high bits: unordered_map buckets consume the low ones.
    const std::size_t h = Hash{}(key);
    return shards_[(h >> 16) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_ = 0;
};

}  // namespace mpcmst::service
