#include "service/shard.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/radix.hpp"
#include "mpc/dist.hpp"

namespace mpcmst::service {

void ShardedSensitivityIndex::init_partition(std::size_t n,
                                             std::size_t num_shards) {
  const std::size_t s = std::max<std::size_t>(1, num_shards);
  stride_ = n ? (n + s - 1) / s : 1;
  shards_.resize(s);
  for (std::size_t i = 0; i < s; ++i) {
    shards_[i].lo = static_cast<Vertex>(std::min(i * stride_, n));
    shards_[i].hi = static_cast<Vertex>(std::min((i + 1) * stride_, n));
  }
}

void ShardedSensitivityIndex::finalize() {
  violations_ = 0;
  receipt_.effective_shards = shards_.size();
  // Shards are independent: sort and account each in its own pool task.
  ThreadPool::shared().run_tasks(shards_.size(), [&](std::size_t i) {
    IndexShard& s = shards_[i];
    s.generation = generation_;
    // Local fragility order: same (sens, id) order as the monolithic sort,
    // so the k-way merge in the router reproduces the global order exactly
    // (stable radix over the ascending-id roster → ties by id for free).
    s.fragile_order.clear();
    s.fragile_order.reserve(s.tree.size());
    for (Vertex v = s.lo; v < s.hi; ++v)
      if (v != root_) s.fragile_order.push_back(v);
    radix_sort_records(s.fragile_order.data(), s.fragile_order.size(),
                       host_scratch_arena(),
                       [&s](Vertex child) { return s.tree_sens(child); });
    s.cost.tree_edges = s.fragile_order.size();
    s.cost.nontree_edges = s.nontree.size();
    s.cost.endpoint_entries = s.by_endpoints.size();
    // Words resident on this shard: dense tree columns, non-tree columns
    // (+1 word per orig_id roster entry), endpoint entries (+1 word per
    // key), and the fragility order.
    s.cost.resident_words =
        s.tree.size() * mpc::words_per<TreeEdgeInfo>() +
        s.nontree.size() * (mpc::words_per<NonTreeEdgeInfo>() + 1) +
        s.by_endpoints.size() * (mpc::words_per<EdgeRef>() + 1) +
        s.fragile_order.size();
  });
  for (const IndexShard& s : shards_) violations_ += s.violations;
}

std::shared_ptr<const ShardedSensitivityIndex> ShardedSensitivityIndex::build(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards) {
  MPCMST_ASSERT(inst.tree.well_formed(), "sharded build: input is not a tree");
  auto idx =
      std::shared_ptr<ShardedSensitivityIndex>(new ShardedSensitivityIndex());
  idx->root_ = inst.tree.root;
  idx->fingerprint_ = SensitivityIndex::fingerprint_of(inst);
  idx->n_ = inst.n();
  idx->num_nontree_ = inst.nontree.size();
  idx->init_partition(inst.n(), num_shards);

  // One distributed run, shared by every shard (same pipeline as the
  // monolithic build — the receipt is the price of the whole fleet).
  const mpc::RoundMeter meter(eng);
  const auto artifacts = verify::build_artifacts(eng, inst);
  const auto sens = sensitivity::mst_sensitivity_mpc(inst, artifacts);
  idx->receipt_.build_rounds = meter.delta();
  idx->receipt_.peak_global_words = eng.stats().peak_global_words;
  idx->receipt_.input_words = inst.input_words();
  idx->receipt_.lca_contraction_steps = artifacts.lca_contraction_steps;
  idx->receipt_.verify_core = sens.verify_core;
  idx->receipt_.sens_stats = sens.stats;

  // Tree skeleton per shard from its range-restricted artifact slice — each
  // shard only ever sees the prelude records for its own children (the
  // slices are carved out of the artifacts in one pass).
  std::vector<Vertex> starts;
  starts.reserve(idx->shards_.size() + 1);
  for (const IndexShard& s : idx->shards_) starts.push_back(s.lo);
  starts.push_back(idx->shards_.back().hi);
  const auto slices = verify::slice_artifacts(artifacts, starts);

  // Bucket the non-tree label records by owning shard (an edge lives with
  // its canonical min endpoint) so the per-shard slices below are
  // independent pool tasks.
  std::vector<std::vector<const sensitivity::NonTreeEdgeSens*>> nt_of(
      idx->shards_.size());
  for (const sensitivity::NonTreeEdgeSens& rec : sens.nontree.local()) {
    const graph::WEdge& we = inst.nontree[rec.orig_id];
    nt_of[idx->shard_of(std::min(we.u, we.v))].push_back(&rec);
  }
  // Tree label records land densely in their child's shard; bucket them too.
  std::vector<std::vector<const sensitivity::TreeEdgeSens*>> t_of(
      idx->shards_.size());
  for (const sensitivity::TreeEdgeSens& t : sens.tree.local())
    t_of[idx->shard_of(t.v)].push_back(&t);

  // Topology view from the shared prelude: retained for the router's
  // still_mst certificate merge, and lent to the [Tar82] replacement
  // relaxation below; shards themselves only retain their own label range.
  idx->topo_ = verify::TreeTopology::from_artifacts(artifacts);
  const std::vector<std::int64_t> repl = replacement_edges(inst, idx->topo_);

  const auto is_tree_edge = [&inst](Vertex a, Vertex b) {
    return (a != inst.tree.root && inst.tree.parent[a] == b) ||
           (b != inst.tree.root && inst.tree.parent[b] == a);
  };

  // Violations must be totalled before the cross-check runs, so the slices
  // proceed in two waves: fill labels, then check + endpoint maps.
  ThreadPool& pool = ThreadPool::shared();
  pool.run_tasks(idx->shards_.size(), [&](std::size_t i) {
    IndexShard& s = idx->shards_[i];
    s.tree.assign(static_cast<std::size_t>(s.hi - s.lo));
    for (const treeops::TreeRec& r : slices[i].tree) {
      const auto slot = static_cast<std::size_t>(r.v - s.lo);
      s.tree.parent[slot] = r.parent;
      s.tree.w[slot] = r.w;
    }
    for (const sensitivity::TreeEdgeSens* t : t_of[i]) {
      const auto slot = static_cast<std::size_t>(t->v - s.lo);
      s.tree.w[slot] = t->w;
      s.tree.mc[slot] = t->mc;
      s.tree.sens[slot] = t->sens;
    }
    // Non-tree columns: sort the assigned records by orig_id (the roster is
    // binary-searched), then fill the parallel arrays.
    auto& recs = nt_of[i];
    radix_sort_records(
        recs.data(), recs.size(), host_scratch_arena(),
        [](const sensitivity::NonTreeEdgeSens* r) {
          return r->orig_id;
        });
    s.nontree_ids.reserve(recs.size());
    s.nontree.reserve(recs.size());
    for (const sensitivity::NonTreeEdgeSens* rec : recs) {
      const graph::WEdge& we = inst.nontree[rec->orig_id];
      s.nontree_ids.push_back(rec->orig_id);
      s.nontree.push_back(
          NonTreeEdgeInfo{we.u, we.v, rec->w, rec->maxpath, rec->sens});
      if (rec->w < rec->maxpath) ++s.violations;
    }
  });
  std::size_t total_violations = 0;
  for (const IndexShard& s : idx->shards_) total_violations += s.violations;

  pool.run_tasks(idx->shards_.size(), [&](std::size_t i) {
    IndexShard& s = idx->shards_[i];
    // Scatter the replacement argmins and cross-check this shard's range.
    for (Vertex v = s.lo; v < s.hi; ++v) {
      if (v == inst.tree.root) continue;
      const auto slot = static_cast<std::size_t>(v - s.lo);
      s.tree.replacement[slot] = repl[v];
      if (total_violations == 0) {
        const Weight rw =
            repl[v] < 0 ? graph::kPosInfW : inst.nontree[repl[v]].w;
        MPCMST_ASSERT(rw == s.tree.mc[slot],
                      "sharded build: replacement weight "
                          << rw << " != mc " << s.tree.mc[slot]
                          << " for tree edge child " << v);
      }
    }
    // Endpoint map.  A tree entry lives with its child; a non-tree entry
    // with its min endpoint.  Tree edges shadow parallel non-tree edges and
    // duplicate non-tree edges resolve to the lightest (ascending orig_id,
    // strict <) — the same precedence the monolithic build applies globally,
    // reproduced shard-locally because all duplicates of a key share their
    // min endpoint and therefore their shard.
    s.by_endpoints.reserve(2 * (s.tree.size() + s.nontree.size()));
    for (Vertex v = s.lo; v < s.hi; ++v) {
      if (v == idx->root_) continue;
      s.by_endpoints.emplace(
          endpoint_key(v, s.tree.parent[static_cast<std::size_t>(v - s.lo)]),
          EdgeRef{true, v});
    }
    for (std::size_t r = 0; r < s.nontree_ids.size(); ++r) {
      const std::int64_t id = s.nontree_ids[r];
      const graph::WEdge& e = inst.nontree[static_cast<std::size_t>(id)];
      if (e.u == e.v) continue;              // tombstoned slot (update.hpp)
      if (is_tree_edge(e.u, e.v)) continue;  // shadowed: the tree entry wins
      auto [it, inserted] =
          s.by_endpoints.try_emplace(endpoint_key(e.u, e.v),
                                     EdgeRef{false, id});
      if (!inserted && !it->second.is_tree &&
          e.w < inst.nontree[static_cast<std::size_t>(it->second.id)].w)
        it->second.id = id;
    }
  });

  idx->finalize();
  return idx;
}

std::shared_ptr<const ShardedSensitivityIndex> ShardedSensitivityIndex::split(
    const SensitivityIndex& full, std::size_t num_shards) {
  auto idx =
      std::shared_ptr<ShardedSensitivityIndex>(new ShardedSensitivityIndex());
  idx->root_ = full.root();
  idx->fingerprint_ = full.fingerprint();
  idx->receipt_ = full.receipt();
  idx->n_ = full.n();
  idx->num_nontree_ = full.num_nontree();
  idx->topo_ = full.topology();
  idx->init_partition(full.n(), num_shards);

  // Bucket non-tree ids by owning shard first, so the per-shard fill below
  // runs as independent pool tasks (ids ascend within each bucket).
  const NonTreeLabels& nt = full.nontree_labels();
  std::vector<std::vector<std::int64_t>> ids_of(idx->shards_.size());
  for (std::size_t i = 0; i < nt.size(); ++i)
    ids_of[idx->shard_of(std::min(nt.u[i], nt.v[i]))].push_back(
        static_cast<std::int64_t>(i));

  ThreadPool::shared().run_tasks(idx->shards_.size(), [&](std::size_t si) {
    IndexShard& s = idx->shards_[si];
    // Tree columns: bulk slice copies out of the monolith's columns.
    s.tree.append_slice(full.tree_labels(), static_cast<std::size_t>(s.lo),
                        static_cast<std::size_t>(s.hi));
    s.by_endpoints.reserve(2 * (s.tree.size() + ids_of[si].size()));
    for (Vertex v = s.lo; v < s.hi; ++v) {
      if (v == idx->root_) continue;
      s.by_endpoints.emplace(
          endpoint_key(v, s.tree.parent[static_cast<std::size_t>(v - s.lo)]),
          EdgeRef{true, v});
    }
    s.nontree_ids = std::move(ids_of[si]);
    s.nontree.reserve(s.nontree_ids.size());
    for (const std::int64_t i : s.nontree_ids) {
      const NonTreeEdgeInfo info = nt.get(static_cast<std::size_t>(i));
      s.nontree.push_back(info);
      if (info.w < info.maxpath) ++s.violations;
      // The monolith already resolved shadowing and duplicates; reuse its
      // verdict (every duplicate of a key maps to the same resolved ref).
      const auto ref = full.find(info.u, info.v);
      if (ref && !ref->is_tree)
        s.by_endpoints.emplace(endpoint_key(info.u, info.v), *ref);
    }
  });

  idx->finalize();
  return idx;
}

std::optional<ShardedSensitivityIndex::Resolved>
ShardedSensitivityIndex::resolve(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= static_cast<Vertex>(n_) ||
      v >= static_cast<Vertex>(n_))
    return std::nullopt;
  const std::uint64_t key = endpoint_key(u, v);
  const IndexShard* first = &shards_[shard_of(u)];
  if (const auto ref = first->find(key)) return Resolved{*ref, first};
  const IndexShard* second = &shards_[shard_of(v)];
  if (second != first)
    if (const auto ref = second->find(key)) return Resolved{*ref, second};
  return std::nullopt;
}

std::optional<NonTreeEdgeInfo> ShardedSensitivityIndex::nontree_info(
    std::int64_t orig_id) const {
  for (const IndexShard& s : shards_)
    if (const auto e = s.nontree_edge(orig_id)) return e;
  return std::nullopt;
}

bool ShardedSensitivityIndex::rebuild_topology() {
  graph::RootedTree tree;
  tree.n = n_;
  tree.root = root_;
  tree.parent.assign(n_, -1);
  tree.weight.assign(n_, 0);
  if (root_ < 0 || static_cast<std::size_t>(root_) >= std::max<std::size_t>(
                                                         n_, 1))
    return false;
  for (const IndexShard& s : shards_)
    for (Vertex v = s.lo; v < s.hi; ++v) {
      const auto slot = static_cast<std::size_t>(v - s.lo);
      tree.parent[static_cast<std::size_t>(v)] = s.tree.parent[slot];
      tree.weight[static_cast<std::size_t>(v)] = s.tree.w[slot];
    }
  tree.parent[static_cast<std::size_t>(root_)] = root_;
  if (!tree.well_formed()) return false;
  topo_ = verify::TreeTopology(tree);
  return true;
}

std::size_t ShardedSensitivityIndex::max_shard_words() const {
  std::size_t best = 0;
  for (const IndexShard& s : shards_)
    best = std::max(best, s.cost.resident_words);
  return best;
}

// ---------------------------------------------------------------------------
// In-place patch primitives (shared by scatter() and the net shard server).

void shard_patch_tree(IndexShard& s, Vertex child, const TreeEdgeInfo& info) {
  MPCMST_ASSERT(s.owns(child),
                "shard_patch_tree: child " << child << " outside [" << s.lo
                                           << ", " << s.hi << ")");
  const auto slot = static_cast<std::size_t>(child - s.lo);
  if (s.tree.sens[slot] != info.sens) {
    // Reposition inside the shard-local fragility order, in place.
    const auto old_it =
        std::find(s.fragile_order.begin(), s.fragile_order.end(), child);
    MPCMST_ASSERT(old_it != s.fragile_order.end(),
                  "shard_patch_tree: child " << child
                                             << " missing from shard order");
    s.fragile_order.erase(old_it);
    s.tree.set(slot, info);
    const auto new_it = std::lower_bound(
        s.fragile_order.begin(), s.fragile_order.end(), child,
        [&s](Vertex a, Vertex b) {
          const Weight sa = s.tree_sens(a);
          const Weight sb = s.tree_sens(b);
          return sa != sb ? sa < sb : a < b;
        });
    s.fragile_order.insert(new_it, child);
  } else {
    s.tree.set(slot, info);
  }
}

bool shard_patch_nontree(IndexShard& s, bool owned, std::int64_t id,
                         const NonTreeEdgeInfo& info) {
  const std::ptrdiff_t slot = s.nontree_slot(id);
  if (!owned) {
    // The edge's owner is another shard (it moved, or was never here):
    // drop any stale slot.
    if (slot < 0) return false;
    s.nontree_ids.erase(s.nontree_ids.begin() + slot);
    s.nontree.erase(static_cast<std::size_t>(slot));
    return true;
  }
  if (slot >= 0) {
    s.nontree.set(static_cast<std::size_t>(slot), info);
    return false;
  }
  const auto it =
      std::lower_bound(s.nontree_ids.begin(), s.nontree_ids.end(), id);
  const auto at = static_cast<std::size_t>(it - s.nontree_ids.begin());
  s.nontree_ids.insert(it, id);
  s.nontree.insert(at, info);
  return true;
}

void shard_patch_endpoint(IndexShard& s, std::uint64_t key,
                          const EdgeRef& ref) {
  if (!ref.is_tree && ref.id < 0) {
    // Erase marker (see ChangedSet): the key no longer resolves.
    s.by_endpoints.erase(key);
  } else {
    s.by_endpoints[key] = ref;
  }
}

void shard_refresh_cost(IndexShard& s) {
  s.cost.tree_edges = s.fragile_order.size();
  s.cost.nontree_edges = s.nontree.size();
  s.cost.endpoint_entries = s.by_endpoints.size();
  s.cost.resident_words =
      s.tree.size() * mpc::words_per<TreeEdgeInfo>() +
      s.nontree.size() * (mpc::words_per<NonTreeEdgeInfo>() + 1) +
      s.by_endpoints.size() * (mpc::words_per<EdgeRef>() + 1) +
      s.fragile_order.size();
}

}  // namespace mpcmst::service
