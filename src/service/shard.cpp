#include "service/shard.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mpc/dist.hpp"

namespace mpcmst::service {

void ShardedSensitivityIndex::init_partition(std::size_t n,
                                             std::size_t num_shards) {
  const std::size_t s = std::max<std::size_t>(1, num_shards);
  stride_ = n ? (n + s - 1) / s : 1;
  shards_.resize(s);
  for (std::size_t i = 0; i < s; ++i) {
    shards_[i].lo = static_cast<Vertex>(std::min(i * stride_, n));
    shards_[i].hi = static_cast<Vertex>(std::min((i + 1) * stride_, n));
  }
}

void ShardedSensitivityIndex::finalize() {
  violations_ = 0;
  receipt_.effective_shards = shards_.size();
  for (IndexShard& s : shards_) {
    s.generation = generation_;
    violations_ += s.violations;
    // Local fragility order: same comparator as the monolithic sort, so the
    // k-way merge in the router reproduces the global order exactly.
    s.fragile_order.clear();
    s.fragile_order.reserve(s.tree.size());
    for (Vertex v = s.lo; v < s.hi; ++v)
      if (v != root_) s.fragile_order.push_back(v);
    std::sort(s.fragile_order.begin(), s.fragile_order.end(),
              [&s](Vertex a, Vertex b) {
                const Weight sa = s.tree_edge(a).sens;
                const Weight sb = s.tree_edge(b).sens;
                return sa != sb ? sa < sb : a < b;
              });
    s.cost.tree_edges = s.fragile_order.size();
    s.cost.nontree_edges = s.nontree.size();
    s.cost.endpoint_entries = s.by_endpoints.size();
    // Words resident on this shard: dense tree slots, keyed non-tree infos
    // (+1 word per orig_id key), endpoint entries (+1 word per key), and the
    // fragility order.
    s.cost.resident_words =
        s.tree.size() * mpc::words_per<TreeEdgeInfo>() +
        s.nontree.size() * (mpc::words_per<NonTreeEdgeInfo>() + 1) +
        s.by_endpoints.size() * (mpc::words_per<EdgeRef>() + 1) +
        s.fragile_order.size();
  }
}

std::shared_ptr<const ShardedSensitivityIndex> ShardedSensitivityIndex::build(
    mpc::Engine& eng, const graph::Instance& inst, std::size_t num_shards) {
  MPCMST_ASSERT(inst.tree.well_formed(), "sharded build: input is not a tree");
  auto idx =
      std::shared_ptr<ShardedSensitivityIndex>(new ShardedSensitivityIndex());
  idx->root_ = inst.tree.root;
  idx->fingerprint_ = SensitivityIndex::fingerprint_of(inst);
  idx->n_ = inst.n();
  idx->num_nontree_ = inst.nontree.size();
  idx->init_partition(inst.n(), num_shards);

  // One distributed run, shared by every shard (same pipeline as the
  // monolithic build — the receipt is the price of the whole fleet).
  const mpc::RoundMeter meter(eng);
  const auto artifacts = verify::build_artifacts(eng, inst);
  const auto sens = sensitivity::mst_sensitivity_mpc(inst, artifacts);
  idx->receipt_.build_rounds = meter.delta();
  idx->receipt_.peak_global_words = eng.stats().peak_global_words;
  idx->receipt_.input_words = inst.input_words();
  idx->receipt_.lca_contraction_steps = artifacts.lca_contraction_steps;
  idx->receipt_.verify_core = sens.verify_core;
  idx->receipt_.sens_stats = sens.stats;

  // Tree skeleton per shard from its range-restricted artifact slice — each
  // shard only ever sees the prelude records for its own children (the
  // slices are carved out of the artifacts in one pass).
  std::vector<Vertex> starts;
  starts.reserve(idx->shards_.size() + 1);
  for (const IndexShard& s : idx->shards_) starts.push_back(s.lo);
  starts.push_back(idx->shards_.back().hi);
  const auto slices = verify::slice_artifacts(artifacts, starts);
  for (std::size_t i = 0; i < idx->shards_.size(); ++i) {
    IndexShard& s = idx->shards_[i];
    s.tree.assign(static_cast<std::size_t>(s.hi - s.lo), TreeEdgeInfo{});
    for (const treeops::TreeRec& r : slices[i].tree) {
      TreeEdgeInfo& e = s.tree[static_cast<std::size_t>(r.v - s.lo)];
      e.parent = r.parent;
      e.w = r.w;
    }
  }

  // Scatter the distributed labels: a tree record goes to the shard owning
  // its child, a non-tree record to the shard owning its min endpoint.
  for (const sensitivity::TreeEdgeSens& t : sens.tree.local()) {
    IndexShard& s = idx->shards_[idx->shard_of(t.v)];
    TreeEdgeInfo& e = s.tree[static_cast<std::size_t>(t.v - s.lo)];
    e.w = t.w;
    e.mc = t.mc;
    e.sens = t.sens;
  }
  for (const sensitivity::NonTreeEdgeSens& rec : sens.nontree.local()) {
    const graph::WEdge& we = inst.nontree[rec.orig_id];
    IndexShard& s = idx->shards_[idx->shard_of(std::min(we.u, we.v))];
    s.nontree.emplace(rec.orig_id, NonTreeEdgeInfo{we.u, we.v, rec.w,
                                                   rec.maxpath, rec.sens});
    if (rec.w < rec.maxpath) ++s.violations;
  }
  std::size_t total_violations = 0;
  for (const IndexShard& s : idx->shards_) total_violations += s.violations;

  // Replacement argmins + cross-check against the distributed mc values.
  // The [Tar82] relaxation is a transient host pass (its topology view comes
  // straight from the shared prelude); shards only retain their own range.
  const std::vector<std::int64_t> repl =
      replacement_edges(inst, verify::TreeTopology::from_artifacts(artifacts));
  for (std::size_t v = 0; v < inst.n(); ++v) {
    if (static_cast<Vertex>(v) == inst.tree.root) continue;
    IndexShard& s = idx->shards_[idx->shard_of(static_cast<Vertex>(v))];
    TreeEdgeInfo& e = s.tree[v - static_cast<std::size_t>(s.lo)];
    e.replacement = repl[v];
    if (total_violations == 0) {
      const Weight rw =
          repl[v] < 0 ? graph::kPosInfW : inst.nontree[repl[v]].w;
      MPCMST_ASSERT(rw == e.mc, "sharded build: replacement weight "
                                    << rw << " != mc " << e.mc
                                    << " for tree edge child " << v);
    }
  }

  // Endpoint maps.  A tree entry lives with its child; a non-tree entry with
  // its min endpoint.  Tree edges shadow parallel non-tree edges and
  // duplicate non-tree edges resolve to the lightest (ascending orig_id,
  // strict <) — the same precedence the monolithic build applies globally,
  // reproduced shard-locally because all duplicates of a key share their min
  // endpoint and therefore their shard.
  for (IndexShard& s : idx->shards_) {
    for (Vertex v = s.lo; v < s.hi; ++v) {
      if (v == idx->root_) continue;
      s.by_endpoints.emplace(endpoint_key(v, s.tree_edge(v).parent),
                             EdgeRef{true, v});
    }
  }
  const auto is_tree_edge = [&inst](Vertex a, Vertex b) {
    return (a != inst.tree.root && inst.tree.parent[a] == b) ||
           (b != inst.tree.root && inst.tree.parent[b] == a);
  };
  for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
    const graph::WEdge& e = inst.nontree[i];
    if (is_tree_edge(e.u, e.v)) continue;  // shadowed: the tree entry wins
    IndexShard& s = idx->shards_[idx->shard_of(std::min(e.u, e.v))];
    auto [it, inserted] = s.by_endpoints.try_emplace(
        endpoint_key(e.u, e.v), EdgeRef{false, static_cast<std::int64_t>(i)});
    if (!inserted && !it->second.is_tree &&
        e.w < s.nontree.at(it->second.id).w)
      it->second.id = static_cast<std::int64_t>(i);
  }

  idx->finalize();
  return idx;
}

std::shared_ptr<const ShardedSensitivityIndex> ShardedSensitivityIndex::split(
    const SensitivityIndex& full, std::size_t num_shards) {
  auto idx =
      std::shared_ptr<ShardedSensitivityIndex>(new ShardedSensitivityIndex());
  idx->root_ = full.root();
  idx->fingerprint_ = full.fingerprint();
  idx->receipt_ = full.receipt();
  idx->n_ = full.n();
  idx->num_nontree_ = full.num_nontree();
  idx->init_partition(full.n(), num_shards);

  for (IndexShard& s : idx->shards_) {
    s.tree.reserve(static_cast<std::size_t>(s.hi - s.lo));
    for (Vertex v = s.lo; v < s.hi; ++v) s.tree.push_back(full.tree_edge(v));
    for (Vertex v = s.lo; v < s.hi; ++v) {
      if (v == idx->root_) continue;
      s.by_endpoints.emplace(endpoint_key(v, s.tree_edge(v).parent),
                             EdgeRef{true, v});
    }
  }
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(idx->num_nontree_);
       ++i) {
    const NonTreeEdgeInfo info = full.nontree_edge(i);
    IndexShard& s = idx->shards_[idx->shard_of(std::min(info.u, info.v))];
    s.nontree.emplace(i, info);
    if (info.w < info.maxpath) ++s.violations;
    // The monolith already resolved shadowing and duplicates; reuse its
    // verdict (every duplicate of a key maps to the same resolved ref).
    const auto ref = full.find(info.u, info.v);
    if (ref && !ref->is_tree)
      s.by_endpoints.emplace(endpoint_key(info.u, info.v), *ref);
  }

  idx->finalize();
  return idx;
}

std::optional<ShardedSensitivityIndex::Resolved>
ShardedSensitivityIndex::resolve(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= static_cast<Vertex>(n_) ||
      v >= static_cast<Vertex>(n_))
    return std::nullopt;
  const std::uint64_t key = endpoint_key(u, v);
  const IndexShard* first = &shards_[shard_of(u)];
  if (const auto ref = first->find(key)) return Resolved{*ref, first};
  const IndexShard* second = &shards_[shard_of(v)];
  if (second != first)
    if (const auto ref = second->find(key)) return Resolved{*ref, second};
  return std::nullopt;
}

std::optional<NonTreeEdgeInfo> ShardedSensitivityIndex::nontree_info(
    std::int64_t orig_id) const {
  for (const IndexShard& s : shards_)
    if (const NonTreeEdgeInfo* e = s.nontree_edge(orig_id)) return *e;
  return std::nullopt;
}

std::size_t ShardedSensitivityIndex::max_shard_words() const {
  std::size_t best = 0;
  for (const IndexShard& s : shards_)
    best = std::max(best, s.cost.resident_words);
  return best;
}

}  // namespace mpcmst::service
