#include "lca/all_edges_lca.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "mpc/ops.hpp"
#include "mpc/superlevel.hpp"

namespace mpcmst::lca {

namespace {

using cluster::ClusterNode;
using cluster::HierarchicalClustering;
using cluster::MergeRec;
using treeops::IntervalRec;

/// Per-edge working state through Algorithms 1 and 2.
struct EdgeState {
  Vertex u, v;
  Weight w;
  std::int64_t orig_id;
  Vertex cu, cv;              // leaders of the clusters containing u / v
  std::int64_t pre_u, pre_v;  // DFS numbers of the endpoints
  std::int64_t cu_lo, cu_hi;  // interval of cu's leader
  std::int64_t cv_lo, cv_hi;  // interval of cv's leader
  Vertex chi;                 // the descending candidate chi of Algorithm 1
  Vertex cand;                // candidate LCA cluster leader (Algorithm 2)
  std::int64_t cand_level;    // formed_at level of the candidate cluster
};

/// 2^i-ancestor links over the cluster tree (Lemma 2.16), all levels kept:
/// O(|C| log D̂) words.
struct Hop {
  Vertex c;
  std::int64_t level;
  Vertex target;
  std::int64_t tlo, thi;  // target leader's interval
};

}  // namespace

LcaResult all_edges_lca(const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
                        const treeops::DepthResult& depths,
                        const mpc::Dist<treeops::IntervalRec>& intervals,
                        const mpc::Dist<IdEdge>& edges, std::int64_t dhat) {
  mpc::Engine& eng = tree.engine();
  mpc::PhaseScope phase(eng, "lca");
  const std::size_t n = tree.size();

  // 1. Cluster down to n / dhat^2 (Corollary 3.6 scale).
  HierarchicalClustering hc(tree, root, intervals, graph::kNegInfW);
  const std::size_t target = cluster::cluster_target(n, dhat);
  const std::size_t steps = hc.run_until(
      target,
      [](std::int64_t old_label, const MergeRec&) { return old_label; });

  // 2. Vertex -> cluster assignment and edge state initialization.
  //
  // Superlevel fusion (mpc/superlevel.hpp): every per-edge step of
  // Algorithms 1 and 2 — the six initialization joins, the binary descent,
  // the candidate lookups, and the level-by-level UndoClustering — commutes
  // across edges, so the whole chain collapses into ONE physical sweep over
  // the edge states at the end, replaying per-level host lookup tables.
  // The charge mirrors stay at the original call sites with the original
  // operand sizes, so rounds / words / peak are byte-identical to the
  // unfused per-level joins.
  auto vc = cluster::assign_vertices_to_clusters(tree, root, depths.depth,
                                                 hc.nodes());
  mpc::Dist<EdgeState> state = mpc::map<EdgeState>(edges, [](const IdEdge& e) {
    EdgeState s{};
    s.u = e.u;
    s.v = e.v;
    s.w = e.w;
    s.orig_id = e.orig_id;
    s.cu = s.cv = -1;
    s.chi = s.cand = -1;
    s.cand_level = -1;
    return s;
  });
  auto sl = eng.superlevel_scope("lca");
  // Mirrors of the two cluster-of-endpoint joins and the four DFS-number /
  // leader-interval joins.
  sl.join_unique(state.words(), vc.words());
  sl.join_unique(state.words(), vc.words());
  for (int k = 0; k < 4; ++k) sl.join_unique(state.words(), intervals.words());
  // Dense lookup tables for the fused sweep.
  std::vector<Vertex> vc_of(n, -1);
  sl.sweep();
  for (const treeops::VertexValue& x : vc.local())
    vc_of[static_cast<std::size_t>(x.v)] = static_cast<Vertex>(x.val);
  std::vector<std::int64_t> iv_lo(n, -1), iv_hi(n, -1);
  sl.sweep();
  for (const IntervalRec& iv : intervals.local()) {
    iv_lo[static_cast<std::size_t>(iv.v)] = iv.lo;
    iv_hi[static_cast<std::size_t>(iv.v)] = iv.hi;
  }

  // 3. Auxiliary 2^i-ancestor links on the cluster tree (levels clamp at the
  // root cluster, which is fine for the monotone descent below).
  std::int64_t levels = 1;
  while ((std::int64_t{1} << levels) < std::max<std::int64_t>(dhat, 2))
    ++levels;
  mpc::Dist<Hop> hops = mpc::map<Hop>(hc.nodes(), [](const ClusterNode& c) {
    return Hop{c.leader, 0, c.parent_leader, 0, 0};
  });
  {
    // Targets' intervals for level 0.
    mpc::join_unique(
        hops, hc.nodes(), [](const Hop& h) { return std::uint64_t(h.target); },
        [](const ClusterNode& c) { return std::uint64_t(c.leader); },
        [](Hop& h, const ClusterNode* c) {
          MPCMST_ASSERT(c, "lca: missing hop target");
          h.tlo = c->lo;
          h.thi = c->hi;
        });
  }
  mpc::Dist<Hop> all_hops = hops.clone();
  for (std::int64_t lev = 1; lev < levels; ++lev) {
    mpc::Dist<Hop> next = hops.clone();
    mpc::join_unique(
        next, hops, [](const Hop& h) { return std::uint64_t(h.target); },
        [](const Hop& h) { return std::uint64_t(h.c); },
        [lev](Hop& h, const Hop* t) {
          MPCMST_ASSERT(t, "lca: missing hop chain");
          h.level = lev;
          h.target = t->target;
          h.tlo = t->tlo;
          h.thi = t->thi;
        });
    mpc::append(all_hops, next);
    hops = std::move(next);
  }

  // 4. FindLCAClusters (Algorithm 1) + 5. UndoClustering (Algorithm 2),
  // fused.  First the charge mirrors and host lookup tables, then one
  // physical sweep over the edge states replays the whole per-edge chain.

  // Mirrors of the per-level descent joins against all_hops and the two
  // candidate lookups against the cluster nodes.
  for (std::int64_t lev = levels - 1; lev >= 0; --lev)
    sl.join_unique(state.words(), all_hops.words());
  sl.join_unique(state.words(), hc.nodes().words());
  sl.join_unique(state.words(), hc.nodes().words());

  // Hop table: (level, cluster leader) -> 2^level-ancestor + its interval.
  struct HopTab {
    Vertex target = -1;
    std::int64_t tlo = 0, thi = 0;
  };
  std::vector<HopTab> hop_tab(static_cast<std::size_t>(levels) * n);
  sl.sweep();
  for (const Hop& h : all_hops.local()) {
    MPCMST_ASSERT(h.level >= 0 && h.level < levels, "lca: hop level");
    hop_tab[static_cast<std::size_t>(h.level) * n +
            static_cast<std::size_t>(h.c)] = {h.target, h.tlo, h.thi};
  }
  // Cluster-node table: leader -> (parent leader, formed_at).
  std::vector<Vertex> node_parent(n, -1);
  std::vector<std::int64_t> node_formed(n, -1);
  std::vector<char> node_ok(n, 0);
  sl.sweep();
  for (const ClusterNode& c : hc.nodes().local()) {
    const auto i = static_cast<std::size_t>(c.leader);
    node_parent[i] = c.parent_leader;
    node_formed[i] = c.formed_at;
    node_ok[i] = 1;
  }

  // Per-level undo tables: merges of each level bucketed by senior (junior
  // intervals are disjoint per senior, so a stab is a binary search), plus
  // the mirrors of the unfused reduce_by_key / stab_join / patch join.
  struct LevelTab {
    std::vector<MergeRec> merges;          // sorted by (senior, jlo)
    std::vector<std::int32_t> off, cnt;    // senior -> slice of `merges`
  };
  std::vector<LevelTab> undo(steps);
  for (std::int64_t lev = static_cast<std::int64_t>(steps); lev >= 1; --lev) {
    const mpc::Dist<MergeRec>& merges = hc.history()[lev - 1];
    LevelTab& tab = undo[static_cast<std::size_t>(lev - 1)];
    sl.sweep();
    tab.merges.assign(merges.local().begin(), merges.local().end());
    std::sort(tab.merges.begin(), tab.merges.end(),
              [](const MergeRec& a, const MergeRec& b) {
                return a.senior != b.senior ? a.senior < b.senior
                                            : a.jlo < b.jlo;
              });
    tab.off.assign(n, -1);
    tab.cnt.assign(n, 0);
    std::size_t seniors = 0;
    for (std::size_t i = 0; i < tab.merges.size(); ++i) {
      const auto s = static_cast<std::size_t>(tab.merges[i].senior);
      if (tab.off[s] < 0) {
        tab.off[s] = static_cast<std::int32_t>(i);
        ++seniors;
      }
      ++tab.cnt[s];
    }
    const std::size_t sp_words = seniors * 2;  // KeyVal<u64, i64>
    sl.reduce_by_key(merges.size() * 2, sp_words);
    const mpc::PhantomDist senior_prev_ph = sl.phantom(sp_words);
    sl.stab_join(state.words(), merges.words());
    sl.join_unique(state.words(), sp_words);
  }

  // The single physical sweep: classify, binary descent, candidate lookup,
  // and the full UndoClustering replay, per edge.
  mpc::for_each(state, [&](EdgeState& s) {
    s.cu = vc_of[static_cast<std::size_t>(s.u)];
    s.cv = vc_of[static_cast<std::size_t>(s.v)];
    MPCMST_ASSERT(s.cu >= 0, "lca: missing cluster of u");
    MPCMST_ASSERT(s.cv >= 0, "lca: missing cluster of v");
    s.pre_u = iv_lo[static_cast<std::size_t>(s.u)];
    s.pre_v = iv_lo[static_cast<std::size_t>(s.v)];
    MPCMST_ASSERT(s.pre_u >= 0 && s.pre_v >= 0, "lca: missing interval");
    s.cu_lo = iv_lo[static_cast<std::size_t>(s.cu)];
    s.cu_hi = iv_hi[static_cast<std::size_t>(s.cu)];
    s.cv_lo = iv_lo[static_cast<std::size_t>(s.cv)];
    s.cv_hi = iv_hi[static_cast<std::size_t>(s.cv)];

    // Algorithm 1: nested endpoint clusters resolve immediately; otherwise
    // binary-descend chi from cu.
    const bool cu_anc = s.cu_lo <= s.pre_v && s.pre_v <= s.cu_hi;
    const bool cv_anc = s.cv_lo <= s.pre_u && s.pre_u <= s.cv_hi;
    if (s.cu == s.cv || cu_anc) {
      s.cand = s.cu;
      s.chi = -1;
    } else if (cv_anc) {
      s.cand = s.cv;
      s.chi = -1;
    } else {
      s.chi = s.cu;
      s.cand = -1;
    }
    if (s.chi >= 0) {
      for (std::int64_t lev = levels - 1; lev >= 0; --lev) {
        const HopTab& h = hop_tab[static_cast<std::size_t>(lev) * n +
                                  static_cast<std::size_t>(s.chi)];
        MPCMST_ASSERT(h.target >= 0, "lca: missing hop during descent");
        // Move up iff the 2^lev-ancestor is still not an ancestor of cv.
        const bool anc_of_cv = h.tlo <= s.pre_v && s.pre_v <= h.thi;
        if (!anc_of_cv) s.chi = h.target;
      }
      // cand = parent cluster of chi for the edges that descended.
      MPCMST_ASSERT(node_ok[static_cast<std::size_t>(s.chi)],
                    "lca: missing chi cluster");
      s.cand = node_parent[static_cast<std::size_t>(s.chi)];
    }
    MPCMST_ASSERT(s.cand >= 0 && node_ok[static_cast<std::size_t>(s.cand)],
                  "lca: missing candidate cluster");
    s.cand_level = node_formed[static_cast<std::size_t>(s.cand)];

    // Algorithm 2: the candidate's level strictly decreases each refinement
    // (junior_formed_at and senior_prev_formed_at both precede the step).
    while (s.cand_level >= 1) {
      const LevelTab& tab = undo[static_cast<std::size_t>(s.cand_level - 1)];
      const auto senior = static_cast<std::size_t>(s.cand);
      const std::int32_t off = tab.off[senior];
      MPCMST_ASSERT(off >= 0, "lca: missing senior prev level");
      const MergeRec* lo = tab.merges.data() + off;
      const MergeRec* hi = lo + tab.cnt[senior];
      // Stab pre_u into the disjoint junior intervals of this senior.
      const MergeRec* m = std::upper_bound(
          lo, hi, s.pre_u, [](std::int64_t x, const MergeRec& r) {
            return x < r.jlo;
          });
      m = (m != lo && (m - 1)->jhi >= s.pre_u) ? m - 1 : nullptr;
      if (m != nullptr && m->jlo <= s.pre_v && s.pre_v <= m->jhi) {
        // A junior sub-cluster contains both endpoints: descend into it.
        s.cand = m->junior;
        s.cand_level = m->junior_formed_at;
      } else {
        // Stay with the senior, at its pre-merge formation level.
        s.cand_level = lo->senior_prev_formed_at;
      }
    }
  });

  LcaResult out{mpc::map<EdgeLca>(state,
                                  [](const EdgeState& s) {
                                    MPCMST_ASSERT(
                                        s.cand_level == 0,
                                        "lca: unresolved candidate level "
                                            << s.cand_level);
                                    return EdgeLca{s.u, s.v, s.w, s.orig_id,
                                                   s.cand};
                                  }),
                steps};
  return out;
}

mpc::Dist<AdEdge> ancestor_descendant_transform(const LcaResult& lca) {
  return mpc::flat_map<AdEdge>(lca.edges, [](const EdgeLca& e, auto&& emit) {
    if (e.u != e.lca) emit(AdEdge{e.u, e.lca, e.w, e.orig_id});
    if (e.v != e.lca) emit(AdEdge{e.v, e.lca, e.w, e.orig_id});
  });
}

}  // namespace mpcmst::lca
