#include "lca/all_edges_lca.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mpc/ops.hpp"

namespace mpcmst::lca {

namespace {

using cluster::ClusterNode;
using cluster::HierarchicalClustering;
using cluster::MergeRec;
using treeops::IntervalRec;

/// Per-edge working state through Algorithms 1 and 2.
struct EdgeState {
  Vertex u, v;
  Weight w;
  std::int64_t orig_id;
  Vertex cu, cv;              // leaders of the clusters containing u / v
  std::int64_t pre_u, pre_v;  // DFS numbers of the endpoints
  std::int64_t cu_lo, cu_hi;  // interval of cu's leader
  std::int64_t cv_lo, cv_hi;  // interval of cv's leader
  Vertex chi;                 // the descending candidate chi of Algorithm 1
  Vertex cand;                // candidate LCA cluster leader (Algorithm 2)
  std::int64_t cand_level;    // formed_at level of the candidate cluster
};

/// 2^i-ancestor links over the cluster tree (Lemma 2.16), all levels kept:
/// O(|C| log D̂) words.
struct Hop {
  Vertex c;
  std::int64_t level;
  Vertex target;
  std::int64_t tlo, thi;  // target leader's interval
};

}  // namespace

LcaResult all_edges_lca(const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
                        const treeops::DepthResult& depths,
                        const mpc::Dist<treeops::IntervalRec>& intervals,
                        const mpc::Dist<IdEdge>& edges, std::int64_t dhat) {
  mpc::Engine& eng = tree.engine();
  mpc::PhaseScope phase(eng, "lca");
  const std::size_t n = tree.size();

  // 1. Cluster down to n / dhat^2 (Corollary 3.6 scale).
  HierarchicalClustering hc(tree, root, intervals, graph::kNegInfW);
  const std::size_t target = cluster::cluster_target(n, dhat);
  const std::size_t steps = hc.run_until(
      target,
      [](std::int64_t old_label, const MergeRec&) { return old_label; });

  // 2. Vertex -> cluster assignment and edge state initialization.
  auto vc = cluster::assign_vertices_to_clusters(tree, root, depths.depth,
                                                 hc.nodes());
  mpc::Dist<EdgeState> state = mpc::map<EdgeState>(edges, [](const IdEdge& e) {
    EdgeState s{};
    s.u = e.u;
    s.v = e.v;
    s.w = e.w;
    s.orig_id = e.orig_id;
    s.cu = s.cv = -1;
    s.chi = s.cand = -1;
    s.cand_level = -1;
    return s;
  });
  auto fetch_cluster = [&](auto key_field, auto set_field) {
    mpc::join_unique(
        state, vc, key_field,
        [](const treeops::VertexValue& x) { return std::uint64_t(x.v); },
        set_field);
  };
  fetch_cluster([](const EdgeState& s) { return std::uint64_t(s.u); },
                [](EdgeState& s, const treeops::VertexValue* x) {
                  MPCMST_ASSERT(x, "lca: missing cluster of u");
                  s.cu = x->val;
                });
  fetch_cluster([](const EdgeState& s) { return std::uint64_t(s.v); },
                [](EdgeState& s, const treeops::VertexValue* x) {
                  MPCMST_ASSERT(x, "lca: missing cluster of v");
                  s.cv = x->val;
                });
  // Endpoint DFS numbers and cluster-leader intervals.
  auto fetch_interval = [&](auto key_field, auto set_field) {
    mpc::join_unique(
        state, intervals, key_field,
        [](const IntervalRec& iv) { return std::uint64_t(iv.v); }, set_field);
  };
  fetch_interval([](const EdgeState& s) { return std::uint64_t(s.u); },
                 [](EdgeState& s, const IntervalRec* iv) {
                   MPCMST_ASSERT(iv, "lca: missing interval of u");
                   s.pre_u = iv->lo;
                 });
  fetch_interval([](const EdgeState& s) { return std::uint64_t(s.v); },
                 [](EdgeState& s, const IntervalRec* iv) {
                   MPCMST_ASSERT(iv, "lca: missing interval of v");
                   s.pre_v = iv->lo;
                 });
  fetch_interval([](const EdgeState& s) { return std::uint64_t(s.cu); },
                 [](EdgeState& s, const IntervalRec* iv) {
                   MPCMST_ASSERT(iv, "lca: missing interval of cu");
                   s.cu_lo = iv->lo;
                   s.cu_hi = iv->hi;
                 });
  fetch_interval([](const EdgeState& s) { return std::uint64_t(s.cv); },
                 [](EdgeState& s, const IntervalRec* iv) {
                   MPCMST_ASSERT(iv, "lca: missing interval of cv");
                   s.cv_lo = iv->lo;
                   s.cv_hi = iv->hi;
                 });

  // 3. Auxiliary 2^i-ancestor links on the cluster tree (levels clamp at the
  // root cluster, which is fine for the monotone descent below).
  std::int64_t levels = 1;
  while ((std::int64_t{1} << levels) < std::max<std::int64_t>(dhat, 2))
    ++levels;
  mpc::Dist<Hop> hops = mpc::map<Hop>(hc.nodes(), [](const ClusterNode& c) {
    return Hop{c.leader, 0, c.parent_leader, 0, 0};
  });
  {
    // Targets' intervals for level 0.
    mpc::join_unique(
        hops, hc.nodes(), [](const Hop& h) { return std::uint64_t(h.target); },
        [](const ClusterNode& c) { return std::uint64_t(c.leader); },
        [](Hop& h, const ClusterNode* c) {
          MPCMST_ASSERT(c, "lca: missing hop target");
          h.tlo = c->lo;
          h.thi = c->hi;
        });
  }
  mpc::Dist<Hop> all_hops = hops.clone();
  for (std::int64_t lev = 1; lev < levels; ++lev) {
    mpc::Dist<Hop> next = hops.clone();
    mpc::join_unique(
        next, hops, [](const Hop& h) { return std::uint64_t(h.target); },
        [](const Hop& h) { return std::uint64_t(h.c); },
        [lev](Hop& h, const Hop* t) {
          MPCMST_ASSERT(t, "lca: missing hop chain");
          h.level = lev;
          h.target = t->target;
          h.tlo = t->tlo;
          h.thi = t->thi;
        });
    mpc::append(all_hops, next);
    hops = std::move(next);
  }

  // 4. FindLCAClusters (Algorithm 1).  If the endpoint clusters are nested,
  // the outer one is the LCA cluster; otherwise binary-descend chi from cu.
  mpc::for_each(state, [](EdgeState& s) {
    const bool cu_anc = s.cu_lo <= s.pre_v && s.pre_v <= s.cu_hi;
    const bool cv_anc = s.cv_lo <= s.pre_u && s.pre_u <= s.cv_hi;
    if (s.cu == s.cv || cu_anc) {
      s.cand = s.cu;
      s.chi = -1;
    } else if (cv_anc) {
      s.cand = s.cv;
      s.chi = -1;
    } else {
      s.chi = s.cu;  // descend
      s.cand = -1;
    }
  });
  for (std::int64_t lev = levels - 1; lev >= 0; --lev) {
    mpc::join_unique(
        state, all_hops,
        [lev](const EdgeState& s) {
          return mpc::pack2(std::uint64_t(s.chi < 0 ? 0 : s.chi),
                            std::uint64_t(lev)) |
                 (s.chi < 0 ? (1ULL << 63) : 0);  // park finished edges
        },
        [](const Hop& h) {
          return mpc::pack2(std::uint64_t(h.c), std::uint64_t(h.level));
        },
        [](EdgeState& s, const Hop* h) {
          if (s.chi < 0) return;
          MPCMST_ASSERT(h, "lca: missing hop during descent");
          // Move up iff the 2^lev-ancestor is still not an ancestor of cv.
          const bool anc_of_cv = h->tlo <= s.pre_v && s.pre_v <= h->thi;
          if (!anc_of_cv) s.chi = h->target;
        });
  }
  // cand = parent cluster of chi for the edges that descended.
  mpc::join_unique(
      state, hc.nodes(),
      [](const EdgeState& s) {
        return s.chi < 0 ? (1ULL << 63) : std::uint64_t(s.chi);
      },
      [](const ClusterNode& c) { return std::uint64_t(c.leader); },
      [](EdgeState& s, const ClusterNode* c) {
        if (s.chi < 0) return;
        MPCMST_ASSERT(c, "lca: missing chi cluster");
        s.cand = c->parent_leader;
      });
  // Candidate levels (formed_at of the candidate cluster).
  mpc::join_unique(
      state, hc.nodes(),
      [](const EdgeState& s) { return std::uint64_t(s.cand); },
      [](const ClusterNode& c) { return std::uint64_t(c.leader); },
      [](EdgeState& s, const ClusterNode* c) {
        MPCMST_ASSERT(c, "lca: missing candidate cluster");
        s.cand_level = c->formed_at;
      });

  // 5. UndoClustering (Algorithm 2): refine candidates level by level.
  for (std::int64_t lev = static_cast<std::int64_t>(steps); lev >= 1; --lev) {
    const mpc::Dist<MergeRec>& merges = hc.history()[lev - 1];
    // Senior -> prev level lookup (all merges of a senior share it).
    auto senior_prev = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
        merges, [](const MergeRec& m) { return std::uint64_t(m.senior); },
        [](const MergeRec& m) { return m.senior_prev_formed_at; },
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    // Does some junior of (cand at this level) contain pre_u?  Disjoint
    // junior intervals per senior make this a stabbing join.
    mpc::stab_join(
        state, merges,
        [lev](const EdgeState& s) {
          return s.cand_level == lev ? std::uint64_t(s.cand) : (1ULL << 63);
        },
        [](const EdgeState& s) { return s.pre_u; },
        [](const MergeRec& m) { return std::uint64_t(m.senior); },
        [](const MergeRec& m) { return m.jlo; },
        [](const MergeRec& m) { return m.jhi; },
        [lev](EdgeState& s, const MergeRec* m) {
          if (s.cand_level != lev) return;
          if (m != nullptr && m->jlo <= s.pre_v && s.pre_v <= m->jhi) {
            // A junior sub-cluster contains both endpoints: descend into it.
            s.cand = m->junior;
            s.cand_level = m->junior_formed_at;
          } else {
            s.cand_level = -2;  // stay with the senior; level patched below
          }
        });
    mpc::join_unique(
        state, senior_prev,
        [lev](const EdgeState& s) {
          return s.cand_level == -2 ? std::uint64_t(s.cand) : (1ULL << 63);
        },
        [](const auto& kv) { return kv.key; },
        [](EdgeState& s, const auto* kv) {
          if (s.cand_level != -2) return;
          MPCMST_ASSERT(kv, "lca: missing senior prev level");
          s.cand_level = kv->val;
        });
  }

  LcaResult out{mpc::map<EdgeLca>(state,
                                  [](const EdgeState& s) {
                                    MPCMST_ASSERT(
                                        s.cand_level == 0,
                                        "lca: unresolved candidate level "
                                            << s.cand_level);
                                    return EdgeLca{s.u, s.v, s.w, s.orig_id,
                                                   s.cand};
                                  }),
                steps};
  return out;
}

mpc::Dist<AdEdge> ancestor_descendant_transform(const LcaResult& lca) {
  return mpc::flat_map<AdEdge>(lca.edges, [](const EdgeLca& e, auto&& emit) {
    if (e.u != e.lca) emit(AdEdge{e.u, e.lca, e.w, e.orig_id});
    if (e.v != e.lca) emit(AdEdge{e.v, e.lca, e.w, e.orig_id});
  });
}

}  // namespace mpcmst::lca
