// All-edges LCA (paper §2.2, Algorithms 1-3) and the ancestor-descendant
// transform (Corollary 2.19).
//
// For every non-tree edge {u, v} we find LCA(u, v) in T in O(log D_T) rounds
// with O(m + n) global memory:
//   1. hierarchically cluster T down to n / D̂² clusters (§2.1);
//   2. build auxiliary 2^i-ancestor links on the *cluster* tree
//      (Lemma 2.16: O(|C| log D̂) = O(n) words);
//   3. FindLCAClusters (Algorithm 1): binary-descend each edge's candidate
//      cluster until its parent is the LCA cluster;
//   4. UndoClustering (Algorithm 2): replay the contraction history in
//      reverse, each level refining the candidate to the sub-cluster that
//      still contains both endpoints, until singletons remain.
//
// ancestor_descendant_transform then splits {u, v} into {u, LCA} and
// {v, LCA} (same weight, same original id), which by Observation 2.20
// preserves MST verification and sensitivity.
#pragma once

#include <cstdint>

#include "cluster/clustering.hpp"
#include "graph/types.hpp"
#include "mpc/dist.hpp"
#include "treeops/doubling.hpp"
#include "treeops/interval_label.hpp"

namespace mpcmst::lca {

using graph::Vertex;
using graph::Weight;

/// A non-tree edge with a stable original index (position in
/// Instance::nontree).
struct IdEdge {
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 0;
  std::int64_t orig_id = 0;
};

/// A non-tree edge after the LCA computation.
struct EdgeLca {
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 0;
  std::int64_t orig_id = 0;
  Vertex lca = 0;
};

/// An ancestor-descendant half-edge: hi is an ancestor of lo in T.
struct AdEdge {
  Vertex lo = 0;
  Vertex hi = 0;
  Weight w = 0;
  std::int64_t orig_id = 0;
};

struct LcaResult {
  mpc::Dist<EdgeLca> edges;
  std::size_t contraction_steps = 0;
};

/// Compute LCA(u, v) for every edge.  `dhat` is the 2-approximate tree
/// diameter (2 * max(height, 1), Remark 2.3).
LcaResult all_edges_lca(const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
                        const treeops::DepthResult& depths,
                        const mpc::Dist<treeops::IntervalRec>& intervals,
                        const mpc::Dist<IdEdge>& edges, std::int64_t dhat);

/// Corollary 2.19: replace each edge by its two ancestor-descendant halves
/// (halves with lo == hi, i.e. endpoint == LCA, are dropped: they cover no
/// tree edge).
mpc::Dist<AdEdge> ancestor_descendant_transform(const LcaResult& lca);

}  // namespace mpcmst::lca
