#include "bound/one_two_cycle.hpp"

#include <set>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace mpcmst::bound {

using graph::Instance;
using graph::RootedTree;
using graph::Vertex;
using graph::WEdge;

namespace {

/// Undirected edge key for set membership.
std::pair<Vertex, Vertex> key(Vertex a, Vertex b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

LowerBoundInstance make_apex_instance(std::size_t n, Candidate candidate) {
  MPCMST_CHECK(n >= 4 && n % 2 == 0, "apex instance needs even n >= 4");
  const Vertex apex = static_cast<Vertex>(n);
  const bool two_cycles = candidate == Candidate::TwoPathsPlusTwoApex ||
                          candidate == Candidate::CyclePlusPath;
  const std::size_t half = n / 2;

  // All edges of G*: the cycle edges (weight 1) and apex edges (weight 2).
  std::vector<WEdge> all;
  auto cycle_next = [&](std::size_t i) -> Vertex {
    if (!two_cycles) return static_cast<Vertex>((i + 1) % n);
    if (i < half) return static_cast<Vertex>((i + 1) % half);
    return static_cast<Vertex>(half + (i + 1 - half) % half);
  };
  for (std::size_t i = 0; i < n; ++i)
    all.push_back({static_cast<Vertex>(i), cycle_next(i), 1});
  for (std::size_t i = 0; i < n; ++i)
    all.push_back({apex, static_cast<Vertex>(i), 2});

  // Candidate tree edges (n of them, spanning n+1 vertices when valid).
  // Parent orientation: paths hang off the apex root.
  LowerBoundInstance out;
  RootedTree& t = out.instance.tree;
  t.n = n + 1;
  t.root = apex;
  t.parent.assign(n + 1, apex);
  t.weight.assign(n + 1, 0);
  std::set<std::pair<Vertex, Vertex>> tree_edges;
  auto add_tree_edge = [&](Vertex child, Vertex parent, graph::Weight w) {
    t.parent[child] = parent;
    t.weight[child] = w;
    tree_edges.insert(key(child, parent));
  };

  switch (candidate) {
    case Candidate::HamPathPlusApex:
      // 0 <- 1 <- ... <- n-1 hanging off apex at 0.
      add_tree_edge(0, apex, 2);
      for (std::size_t i = 1; i < n; ++i)
        add_tree_edge(static_cast<Vertex>(i), static_cast<Vertex>(i - 1), 1);
      out.tree_is_valid = true;
      out.expected_mst = true;  // weight (n-1) + 2 = n + 1, the MST weight
      break;
    case Candidate::TwoPathsPlusTwoApex:
      add_tree_edge(0, apex, 2);
      add_tree_edge(static_cast<Vertex>(half), apex, 2);
      for (std::size_t i = 1; i < half; ++i) {
        add_tree_edge(static_cast<Vertex>(i), static_cast<Vertex>(i - 1), 1);
        add_tree_edge(static_cast<Vertex>(half + i),
                      static_cast<Vertex>(half + i - 1), 1);
      }
      out.tree_is_valid = true;
      out.expected_mst = true;  // weight (n-2) + 4 = n + 2, minimal here
      break;
    case Candidate::HeavyApex:
      // 1-cycle world, but the candidate uses two apex edges: weight n+2.
      add_tree_edge(0, apex, 2);
      add_tree_edge(static_cast<Vertex>(n - 1), apex, 2);
      for (std::size_t i = 1; i < n - 1; ++i)
        add_tree_edge(static_cast<Vertex>(i), static_cast<Vertex>(i - 1), 1);
      out.tree_is_valid = true;
      out.expected_mst = false;  // the cycle edge {n-2, n-1} undercuts it
      break;
    case Candidate::CyclePlusPath: {
      // First cycle left closed (not a tree): orient it as a path plus a
      // *cycle-closing parent* to exercise the structural validation.
      add_tree_edge(static_cast<Vertex>(half), apex, 2);
      for (std::size_t i = 1; i < half; ++i)
        add_tree_edge(static_cast<Vertex>(half + i),
                      static_cast<Vertex>(half + i - 1), 1);
      // Closed cycle 0..half-1: every vertex points to its cycle predecessor.
      for (std::size_t i = 0; i < half; ++i) {
        const Vertex prev =
            static_cast<Vertex>(i == 0 ? half - 1 : i - 1);
        add_tree_edge(static_cast<Vertex>(i), prev, 1);
      }
      out.tree_is_valid = false;
      out.expected_mst = false;
      break;
    }
  }

  // Non-tree edges: everything in G* not claimed by the candidate.
  for (const WEdge& e : all)
    if (!tree_edges.count(key(e.u, e.v))) out.instance.nontree.push_back(e);
  return out;
}

}  // namespace mpcmst::bound
