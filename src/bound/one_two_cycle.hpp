// The conditional lower-bound instance family (paper §5 + Appendix A).
//
// From a 1-vs-2-cycle input on n vertices, Appendix A builds the weighted
// apex graph G*: the cycle edges keep weight 1 and a fresh apex vertex v* is
// connected to every cycle vertex with weight 2.  G* has n+1 vertices, 2n
// edges and diameter 2, yet the diameter of any candidate spanning tree is
// Θ(n) — so verifying a candidate costs Ω(log D_T) = Ω(log n) rounds unless
// the 1-vs-2-cycle conjecture fails (Theorem 5.2).
//
// The generator produces candidate trees T for both worlds:
//   - HamPathPlusApex (1-cycle world): cycle minus one edge plus one apex
//     edge — a genuine MST; verification must accept.
//   - TwoPathsPlusTwoApex (2-cycle world): both cycles broken, two apex
//     edges — the genuine MST of the 2-cycle instance; must accept.
//   - HeavyApex (1-cycle world): cycle broken twice, two apex edges — a
//     spanning tree heavier than the MST; must reject.
//   - CyclePlusPath (2-cycle world): one cycle left closed — not a spanning
//     tree at all; input validation (Remark 2.2) must reject, which is
//     exactly the connectivity detection the reduction hinges on.
#pragma once

#include <cstddef>

#include "graph/instance.hpp"

namespace mpcmst::bound {

enum class Candidate {
  HamPathPlusApex,
  TwoPathsPlusTwoApex,
  HeavyApex,
  CyclePlusPath,
};

struct LowerBoundInstance {
  graph::Instance instance;
  /// Is the candidate a spanning tree at all?
  bool tree_is_valid = true;
  /// Should verification accept (candidate is an MST of G*)?
  bool expected_mst = false;
};

/// Build the apex instance for `n` cycle vertices (n >= 4, even).
LowerBoundInstance make_apex_instance(std::size_t n, Candidate candidate);

}  // namespace mpcmst::bound
