#include "seq/oracles.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "seq/dsu.hpp"

namespace mpcmst::seq {

using graph::Instance;
using graph::kNegInfW;
using graph::kPosInfW;
using graph::RootedTree;
using graph::Vertex;
using graph::WEdge;
using graph::Weight;

SeqTreeIndex::SeqTreeIndex(const RootedTree& tree)
    : n_(tree.n), root_(tree.root) {
  MPCMST_CHECK(tree.well_formed(), "SeqTreeIndex requires a well-formed tree");
  depth_.assign(n_, 0);
  pre_.assign(n_, 0);
  size_.assign(n_, 1);

  // Children adjacency, in increasing vertex id (canonical sibling order).
  std::vector<std::int64_t> child_count(n_, 0);
  for (std::size_t v = 0; v < n_; ++v)
    if (static_cast<Vertex>(v) != root_) ++child_count[tree.parent[v]];
  std::vector<std::int64_t> offset(n_ + 1, 0);
  std::partial_sum(child_count.begin(), child_count.end(), offset.begin() + 1);
  std::vector<Vertex> children(n_ ? n_ - 1 : 0);
  {
    std::vector<std::int64_t> cursor(offset.begin(), offset.end() - 1);
    for (std::size_t v = 0; v < n_; ++v)
      if (static_cast<Vertex>(v) != root_)
        children[cursor[tree.parent[v]]++] = static_cast<Vertex>(v);
  }

  // Iterative DFS (explicit stack: path trees would overflow recursion).
  std::vector<std::int64_t> next_child(n_, 0);
  std::vector<Vertex> stack{root_};
  std::int64_t counter = 0;
  pre_[root_] = counter++;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    if (next_child[v] < child_count[v]) {
      const Vertex c = children[offset[v] + next_child[v]++];
      depth_[c] = depth_[v] + 1;
      pre_[c] = counter++;
      stack.push_back(c);
    } else {
      stack.pop_back();
      if (!stack.empty()) size_[stack.back()] += size_[v];
    }
  }
  height_ = n_ ? *std::max_element(depth_.begin(), depth_.end()) : 0;

  levels_ = 1;
  while ((std::int64_t{1} << levels_) <= std::max<std::int64_t>(height_, 1))
    ++levels_;
  up_.assign(static_cast<std::size_t>(levels_) * n_, root_);
  up_max_.assign(static_cast<std::size_t>(levels_) * n_, kNegInfW);
  for (std::size_t v = 0; v < n_; ++v) {
    up_[v] = tree.parent[v];
    up_max_[v] =
        static_cast<Vertex>(v) == root_ ? kNegInfW : tree.weight[v];
  }
  for (int k = 1; k < levels_; ++k) {
    const std::size_t cur = static_cast<std::size_t>(k) * n_;
    const std::size_t prev = cur - n_;
    for (std::size_t v = 0; v < n_; ++v) {
      const Vertex mid = up_[prev + v];
      up_[cur + v] = up_[prev + mid];
      up_max_[cur + v] = std::max(up_max_[prev + v], up_max_[prev + mid]);
    }
  }
}

Vertex SeqTreeIndex::lift(Vertex v, std::int64_t k) const {
  for (int b = 0; k != 0; ++b, k >>= 1)
    if (k & 1) v = up_[static_cast<std::size_t>(b) * n_ + v];
  return v;
}

Vertex SeqTreeIndex::lca(Vertex u, Vertex v) const {
  if (is_ancestor(u, v)) return u;
  if (is_ancestor(v, u)) return v;
  for (int k = levels_ - 1; k >= 0; --k) {
    const Vertex cand = up_[static_cast<std::size_t>(k) * n_ + u];
    if (!is_ancestor(cand, v)) u = cand;
  }
  return up_[u];
}

Weight SeqTreeIndex::max_on_path(Vertex u, Vertex v) const {
  const Vertex a = lca(u, v);
  Weight best = kNegInfW;
  auto climb = [&](Vertex x) {
    std::int64_t steps = depth_[x] - depth_[a];
    for (int b = 0; steps != 0; ++b, steps >>= 1) {
      if (steps & 1) {
        best = std::max(best, up_max_[static_cast<std::size_t>(b) * n_ + x]);
        x = up_[static_cast<std::size_t>(b) * n_ + x];
      }
    }
  };
  climb(u);
  climb(v);
  return best;
}

MsfInfo msf_weight_kruskal(const Instance& inst) {
  std::vector<WEdge> edges = inst.tree.tree_edges();
  edges.insert(edges.end(), inst.nontree.begin(), inst.nontree.end());
  std::sort(edges.begin(), edges.end(),
            [](const WEdge& a, const WEdge& b) { return a.w < b.w; });
  Dsu dsu(inst.n());
  MsfInfo out;
  out.components = inst.n();
  for (const WEdge& e : edges) {
    if (dsu.unite(e.u, e.v)) {
      out.weight += e.w;
      --out.components;
    }
  }
  return out;
}

bool verify_mst(const Instance& inst, const SeqTreeIndex& index) {
  for (const WEdge& e : inst.nontree) {
    if (e.u == e.v) continue;
    if (e.w < index.max_on_path(e.u, e.v)) return false;
  }
  return true;
}

bool verify_mst(const Instance& inst) {
  return verify_mst(inst, SeqTreeIndex(inst.tree));
}

bool verify_mst_by_weight(const Instance& inst) {
  if (!inst.tree.well_formed()) return false;
  Weight tree_weight = 0;
  for (std::size_t v = 0; v < inst.n(); ++v) tree_weight += inst.tree.weight[v];
  const MsfInfo msf = msf_weight_kruskal(inst);
  return msf.components == 1 && msf.weight == tree_weight;
}

SensitivityResult sensitivity(const Instance& inst,
                              const SeqTreeIndex& index) {
  const std::size_t n = inst.n();
  SensitivityResult out;
  out.tree_mc.assign(n, kPosInfW);
  out.nontree_maxpath.reserve(inst.nontree.size());

  // Non-tree sensitivity: max tree-path weight via lifting.
  for (const WEdge& e : inst.nontree)
    out.nontree_maxpath.push_back(e.u == e.v ? kNegInfW
                                             : index.max_on_path(e.u, e.v));

  // Tree-edge mc: process non-tree edges by increasing weight; each tree edge
  // takes the weight of the first (lightest) covering edge.  A DSU jumps over
  // already-labeled tree edges, giving near-linear total work [Tar82-style].
  std::vector<std::size_t> order(inst.nontree.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return inst.nontree[a].w < inst.nontree[b].w;
  });
  // jump classes group vertices whose parent edges are all labeled;
  // top[rep] is the shallowest vertex of the class (the next unlabeled spot).
  Dsu jump(n);
  std::vector<Vertex> top(n);
  std::iota(top.begin(), top.end(), Vertex{0});
  auto climb_top = [&](Vertex x) { return top[jump.find(x)]; };
  for (std::size_t idx : order) {
    const WEdge& e = inst.nontree[idx];
    if (e.u == e.v) continue;
    const Vertex a = index.lca(e.u, e.v);
    for (Vertex x : {e.u, e.v}) {
      x = climb_top(x);
      while (index.depth(x) > index.depth(a)) {
        out.tree_mc[x] = e.w;
        const Vertex next = climb_top(inst.tree.parent[x]);
        jump.unite(x, inst.tree.parent[x]);
        top[jump.find(x)] = next;
        x = next;
      }
    }
  }
  return out;
}

SensitivityResult sensitivity_brute(const Instance& inst) {
  // Forest-tolerant: any self-parent vertex is a root (Remark 2.4 support).
  const std::size_t n = inst.n();
  std::vector<std::int64_t> depth(n, 0);
  // Depth by repeated parent walk with memoization.
  {
    std::vector<signed char> done(n, 0);
    for (std::size_t v = 0; v < n; ++v)
      if (inst.tree.parent[v] == static_cast<Vertex>(v)) done[v] = 1;
    std::vector<Vertex> stack;
    for (std::size_t v0 = 0; v0 < n; ++v0) {
      Vertex v = static_cast<Vertex>(v0);
      stack.clear();
      while (!done[v]) {
        stack.push_back(v);
        v = inst.tree.parent[v];
      }
      while (!stack.empty()) {
        depth[stack.back()] = depth[v] + 1;
        v = stack.back();
        done[v] = 1;
        stack.pop_back();
      }
    }
  }

  SensitivityResult out;
  out.tree_mc.assign(n, kPosInfW);
  out.nontree_maxpath.reserve(inst.nontree.size());
  for (const WEdge& e : inst.nontree) {
    Weight maxw = kNegInfW;
    Vertex a = e.u, b = e.v;
    auto relax = [&](Vertex x) {
      out.tree_mc[x] = std::min(out.tree_mc[x], e.w);
      maxw = std::max(maxw, inst.tree.weight[x]);
    };
    while (a != b) {
      if (depth[a] >= depth[b]) {
        relax(a);
        a = inst.tree.parent[a];
      } else {
        relax(b);
        b = inst.tree.parent[b];
      }
    }
    out.nontree_maxpath.push_back(maxw);
  }
  return out;
}

}  // namespace mpcmst::seq
