// Sequential reference algorithms ("oracles").
//
// These implement the classical counterparts the paper cites —
// Kruskal MST, LCA / path-maximum via binary lifting, tree-edge sensitivity
// via the covering relaxation of Tarjan [Tar82] — and serve three purposes:
//   1. correctness oracles for the MPC algorithms in tests;
//   2. the sequential baseline row of the evaluation tables;
//   3. instance generation (MST-consistent weight assignment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/instance.hpp"
#include "graph/types.hpp"

namespace mpcmst::seq {

/// Preprocessed rooted tree: depth / preorder / subtree size (children visited
/// in increasing vertex id, the canonical order used across the project), and
/// binary-lifting tables for LCA and path-maximum queries.
class SeqTreeIndex {
 public:
  explicit SeqTreeIndex(const graph::RootedTree& tree);

  std::size_t n() const { return n_; }
  graph::Vertex root() const { return root_; }
  std::int64_t depth(graph::Vertex v) const { return depth_[v]; }
  std::int64_t pre(graph::Vertex v) const { return pre_[v]; }
  std::int64_t subtree_size(graph::Vertex v) const { return size_[v]; }
  std::int64_t height() const { return height_; }

  /// Is `a` an ancestor of `b` (including a == b)?
  bool is_ancestor(graph::Vertex a, graph::Vertex b) const {
    return pre_[a] <= pre_[b] && pre_[b] < pre_[a] + size_[a];
  }

  graph::Vertex lca(graph::Vertex u, graph::Vertex v) const;

  /// Maximum tree-edge weight on the path u..v (kNegInfW if u == v).
  graph::Weight max_on_path(graph::Vertex u, graph::Vertex v) const;

 private:
  graph::Vertex lift(graph::Vertex v, std::int64_t k) const;

  std::size_t n_ = 0;
  graph::Vertex root_ = 0;
  std::int64_t height_ = 0;
  int levels_ = 1;
  std::vector<std::int64_t> depth_, pre_, size_;
  std::vector<graph::Vertex> up_;       // levels_ x n
  std::vector<graph::Weight> up_max_;   // levels_ x n
};

/// Result of sequential sensitivity analysis.
struct SensitivityResult {
  /// mc value per tree edge, keyed by the child endpoint
  /// (kPosInfW when no non-tree edge covers it); mc[root] = kPosInfW.
  std::vector<graph::Weight> tree_mc;
  /// Max tree-path weight per non-tree edge, aligned with Instance::nontree.
  std::vector<graph::Weight> nontree_maxpath;
};

/// Weight of a minimum spanning forest of G = T ∪ nontree (Kruskal),
/// plus the number of connected components.
struct MsfInfo {
  graph::Weight weight = 0;
  std::size_t components = 0;
};
MsfInfo msf_weight_kruskal(const graph::Instance& inst);

/// Cycle-property verification: T is an MST of G iff no non-tree edge is
/// strictly lighter than the heaviest tree edge on the path it covers.
bool verify_mst(const graph::Instance& inst, const SeqTreeIndex& index);
bool verify_mst(const graph::Instance& inst);

/// Independent check through MSF weight: a spanning tree is an MST iff its
/// weight equals the MSF weight (used to cross-validate verify_mst).
bool verify_mst_by_weight(const graph::Instance& inst);

/// Fast sequential sensitivity: tree-edge mc via the sorted-edges + DSU
/// covering relaxation, non-tree max-path via lifting.
SensitivityResult sensitivity(const graph::Instance& inst,
                              const SeqTreeIndex& index);

/// Brute-force sensitivity via explicit parent walks (O(m * D)); independent
/// of SeqTreeIndex, used to validate everything else on small instances.
SensitivityResult sensitivity_brute(const graph::Instance& inst);

}  // namespace mpcmst::seq
