// Disjoint-set union with path compression + union by size.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "graph/types.hpp"

namespace mpcmst::seq {

class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), graph::Vertex{0});
  }

  graph::Vertex find(graph::Vertex x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns false if already in the same set.
  bool unite(graph::Vertex a, graph::Vertex b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool same(graph::Vertex a, graph::Vertex b) { return find(a) == find(b); }

 private:
  std::vector<graph::Vertex> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace mpcmst::seq
