#include "common/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"

namespace mpcmst {

// ---------------------------------------------------------------------------
// HistogramSnapshot math (both build modes — pure data, no atomics).

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // rank ceil(q * count), clamped to [1, count]: rank r means "the r-th
  // smallest recorded value" and the walk below finds its bucket.
  const double scaled = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) return std::min(bucket_upper(b), max);
  }
  return max;  // unreachable when the totals are consistent
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

#ifndef MPCMST_NO_METRICS

namespace {

/// Prometheus sample key, exactly as rendered: name or name{labels}.
std::string series_key(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

/// Shortest round-trippable decimal (le bounds, scaled sums).
std::string prom_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

constexpr double kNsPerSecond = 1e9;

}  // namespace

// ---------------------------------------------------------------------------
// Clock, enable flag, thread stripes.

namespace metrics_detail {

std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace metrics_detail

void metrics_set_enabled(bool on) {
  metrics_detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t metrics_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Histogram shard merge.

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const Stripe& s : stripes_) {
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      const std::uint64_t c = s.buckets[b].load(std::memory_order_relaxed);
      out.buckets[b] += c;
      out.count += c;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry.

struct MetricsRegistry::Impl {
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  static const char* type_name(Type t) {
    switch (t) {
      case Type::kCounter:
        return "counter";
      case Type::kGauge:
        return "gauge";
      default:
        return "histogram";
    }
  }

  struct Series {
    Type type;
    std::size_t slot;  // index into the deque of its type
  };

  mutable std::mutex mu;
  // Deques: growth never moves an element, so the references handed to
  // callers stay valid for the life of the process.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  // Ordered by (name, labels): render output is stable and grouped by
  // family without a separate sort.
  std::map<std::pair<std::string, std::string>, Series> series;

  Series& find_or_create(const std::string& name, const std::string& labels,
                         Type type, MetricUnit unit) {
    auto [it, inserted] = series.try_emplace(std::make_pair(name, labels));
    if (!inserted) {
      MPCMST_ASSERT(it->second.type == type,
                    "metric " << series_key(name, labels)
                              << " re-registered as a different type");
      return it->second;
    }
    it->second.type = type;
    switch (type) {
      case Type::kCounter:
        it->second.slot = counters.size();
        counters.emplace_back();
        break;
      case Type::kGauge:
        it->second.slot = gauges.size();
        gauges.emplace_back();
        break;
      case Type::kHistogram:
        it->second.slot = histograms.size();
        histograms.emplace_back();
        histograms.back().unit_ = unit;
        break;
    }
    return it->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose (never destroyed): instrumented code may run during
  // static destruction (pool teardown) and the references must stay valid.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const Impl::Series& s = impl_->find_or_create(
      name, labels, Impl::Type::kCounter, MetricUnit::kCount);
  return impl_->counters[s.slot];
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const Impl::Series& s = impl_->find_or_create(
      name, labels, Impl::Type::kGauge, MetricUnit::kCount);
  return impl_->gauges[s.slot];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels,
                                      MetricUnit unit) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const Impl::Series& s =
      impl_->find_or_create(name, labels, Impl::Type::kHistogram, unit);
  return impl_->histograms[s.slot];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [key, s] : impl_->series) {
    const std::string k = series_key(key.first, key.second);
    switch (s.type) {
      case Impl::Type::kCounter:
        out.counters[k] = impl_->counters[s.slot].total();
        break;
      case Impl::Type::kGauge:
        out.gauges[k] = impl_->gauges[s.slot].value();
        break;
      case Impl::Type::kHistogram:
        out.histograms[k] = impl_->histograms[s.slot].snapshot();
        break;
    }
  }
  return out;
}

namespace {

/// One histogram family member in exposition format.  Nanosecond series
/// scale values and bucket bounds to seconds (Prometheus base units).
void render_prom_histogram(std::ostream& os, const std::string& name,
                           const std::string& labels,
                           const HistogramSnapshot& h, MetricUnit unit) {
  const double scale =
      unit == MetricUnit::kNanoseconds ? 1.0 / kNsPerSecond : 1.0;
  const std::string le_prefix =
      labels.empty() ? name + "_bucket{le=\"" : name + "_bucket{" + labels +
                                                    ",le=\"";
  std::size_t top = 0;  // highest non-empty bucket: cap the emitted series
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b)
    if (h.buckets[b] != 0) top = b;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b <= top; ++b) {
    cum += h.buckets[b];
    const double ub =
        static_cast<double>(HistogramSnapshot::bucket_upper(b)) * scale;
    os << le_prefix << prom_double(ub) << "\"} " << cum << "\n";
  }
  os << le_prefix << "+Inf\"} " << h.count << "\n";
  os << series_key(name + "_sum", labels) << " "
     << prom_double(static_cast<double>(h.sum) * scale) << "\n";
  os << series_key(name + "_count", labels) << " " << h.count << "\n";
}

}  // namespace

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::string* prev_name = nullptr;
  for (const auto& [key, s] : impl_->series) {
    const auto& [name, labels] = key;
    if (prev_name == nullptr || *prev_name != name)
      os << "# TYPE " << name << " " << Impl::type_name(s.type) << "\n";
    prev_name = &name;
    switch (s.type) {
      case Impl::Type::kCounter:
        os << series_key(name, labels) << " "
           << impl_->counters[s.slot].total() << "\n";
        break;
      case Impl::Type::kGauge:
        os << series_key(name, labels) << " " << impl_->gauges[s.slot].value()
           << "\n";
        break;
      case Impl::Type::kHistogram:
        render_prom_histogram(os, name, labels,
                              impl_->histograms[s.slot].snapshot(),
                              impl_->histograms[s.slot].unit());
        break;
    }
  }
}

void MetricsRegistry::render_json(std::ostream& os) const {
  const MetricsSnapshot snap = snapshot();
  JsonWriter j(os);
  j.begin_object();
  j.key("counters").begin_object();
  for (const auto& [k, v] : snap.counters) j.key(k).value(v);
  j.end_object();
  j.key("gauges").begin_object();
  for (const auto& [k, v] : snap.gauges) j.key(k).value(v);
  j.end_object();
  j.key("histograms").begin_object();
  for (const auto& [k, h] : snap.histograms) {
    j.key(k).begin_object();
    j.key("count").value(h.count);
    j.key("sum").value(h.sum);
    j.key("max").value(h.max);
    j.key("mean").value(h.mean());
    j.key("p50").value(h.percentile(0.50));
    j.key("p90").value(h.percentile(0.90));
    j.key("p99").value(h.percentile(0.99));
    j.key("buckets").begin_array();
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      j.begin_object();
      j.key("le").value(HistogramSnapshot::bucket_upper(b));
      j.key("count").value(h.buckets[b]);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_object();
  j.end_object();
  os << "\n";
}

// ---------------------------------------------------------------------------
// Trace buffer.

struct TraceBuffer::Impl {
  struct Event {
    std::string name;
    std::uint64_t ts_us;
    std::uint64_t dur_us;
    std::uint32_t tid;
  };

  mutable std::mutex mu;
  std::vector<Event> events;
  std::size_t dropped = 0;
};

TraceBuffer::TraceBuffer() : impl_(new Impl) {}
TraceBuffer::~TraceBuffer() { delete impl_; }

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer* buf = new TraceBuffer();  // leaked, like the registry
  return *buf;
}

void TraceBuffer::append(const std::string& name, std::uint64_t ts_us,
                         std::uint64_t dur_us) {
  const auto tid =
      static_cast<std::uint32_t>(metrics_detail::thread_ordinal());
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->events.size() >= kMaxEvents) {
    ++impl_->dropped;
    return;
  }
  impl_->events.push_back(Impl::Event{name, ts_us, dur_us, tid});
}

void TraceBuffer::render_chrome_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  JsonWriter j(os);
  j.begin_object();
  j.key("traceEvents").begin_array();
  for (const Impl::Event& e : impl_->events) {
    j.begin_object();
    j.key("name").value(e.name);
    j.key("ph").value("X");
    j.key("ts").value(e.ts_us);
    j.key("dur").value(e.dur_us);
    j.key("pid").value(1);
    j.key("tid").value(e.tid);
    j.end_object();
  }
  j.end_array();
  if (impl_->dropped > 0) j.key("droppedEvents").value(impl_->dropped);
  j.end_object();
  os << "\n";
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->events.clear();
  impl_->dropped = 0;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events.size();
}

std::size_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dropped;
}

#else  // MPCMST_NO_METRICS

// Compiled-out stubs: one static of each class backs every registration,
// renders emit well-formed empty documents so tooling keeps parsing.

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

Counter& MetricsRegistry::counter(const std::string&, const std::string&) {
  static Counter c;
  return c;
}

Gauge& MetricsRegistry::gauge(const std::string&, const std::string&) {
  static Gauge g;
  return g;
}

Histogram& MetricsRegistry::histogram(const std::string&, const std::string&,
                                      MetricUnit) {
  static Histogram h;
  return h;
}

void MetricsRegistry::render_prometheus(std::ostream& os) const {
  os << "# telemetry compiled out (MPCMST_NO_METRICS)\n";
}

void MetricsRegistry::render_json(std::ostream& os) const {
  os << "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}}\n";
}

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer buf;
  return buf;
}

void TraceBuffer::render_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\": []}\n";
}

#endif  // MPCMST_NO_METRICS

}  // namespace mpcmst
