// Reusable scratch storage for the hot primitives.
//
// The MPC primitives (radix sorts, sort-merge joins) need per-call temporary
// arrays whose sizes track the input.  Allocating them per call dominates the
// runtime of small rounds and fragments the heap on large ones; the arena
// keeps a pool of 64-bit-word buffers that are leased for the duration of one
// primitive and returned on scope exit, so a long pipeline run settles into
// zero steady-state allocation.
//
// Leases nest (a primitive running inside another primitive's callback gets
// its own buffer), and a buffer only grows — capacity is retained across
// leases.  The arena is not thread-safe: each mpc::Engine owns one (the
// simulator is single-threaded per engine), and host-side users keep a
// thread_local instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mpcmst {

class ScratchArena {
 public:
  /// One leased buffer: behaves like a std::vector<std::uint64_t> of exactly
  /// `n` words (contents unspecified); returns itself to the pool on
  /// destruction.  Move-only.
  class Lease {
   public:
    Lease(ScratchArena* arena, std::vector<std::uint64_t>* buf)
        : arena_(arena), buf_(buf) {}
    Lease(Lease&& o) noexcept : arena_(o.arena_), buf_(o.buf_) {
      o.arena_ = nullptr;
      o.buf_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (arena_) arena_->release(buf_);
    }

    std::uint64_t* data() noexcept { return buf_->data(); }
    const std::uint64_t* data() const noexcept { return buf_->data(); }
    std::size_t size() const noexcept { return buf_->size(); }
    std::uint64_t& operator[](std::size_t i) noexcept { return (*buf_)[i]; }

    /// The buffer viewed as raw bytes (for trivially-copyable payloads).
    void* bytes() noexcept { return static_cast<void*>(buf_->data()); }

   private:
    ScratchArena* arena_;
    std::vector<std::uint64_t>* buf_;
  };

  /// Lease a buffer of at least `words` 64-bit words (sized to exactly
  /// `words`; capacity is retained across leases, so steady state reuses).
  Lease lease(std::size_t words) {
    std::vector<std::uint64_t>* buf;
    if (free_.empty()) {
      pool_.push_back(std::make_unique<std::vector<std::uint64_t>>());
      buf = pool_.back().get();
    } else {
      buf = free_.back();
      free_.pop_back();
    }
    buf->resize(words);
    return Lease(this, buf);
  }

  /// Words needed to hold `n` records of `bytes` bytes each.
  static constexpr std::size_t words_for(std::size_t n, std::size_t bytes) {
    return (n * bytes + 7) / 8;
  }

 private:
  friend class Lease;

  void release(std::vector<std::uint64_t>* buf) { free_.push_back(buf); }

  std::vector<std::unique_ptr<std::vector<std::uint64_t>>> pool_;
  std::vector<std::vector<std::uint64_t>*> free_;
};

}  // namespace mpcmst
