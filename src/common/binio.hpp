// Little-endian binary encoding helpers and CRC32 for the persistence layer
// (service/journal.hpp, service/snapshot.hpp).
//
// Columns and POD receipts are dumped as raw bytes (the SoA label arrays are
// exactly the on-disk layout we want), so the format is native-endian by
// construction; the static_assert below pins the library to little-endian
// hosts, which is every target we build for.  Integrity is end-to-end: both
// file formats frame their payload with a CRC32 and a version stamp, so a
// torn or foreign file is detected before any field is trusted.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace mpcmst {

static_assert(std::endian::native == std::endian::little,
              "persistence formats assume a little-endian host");

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — the standard zlib CRC.
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t crc = 0) {
  const auto& table = crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

/// Append-only byte buffer with typed writers.  Vectors of trivially
/// copyable records are written as a u64 count plus the raw element bytes
/// (bulk memcpy — the SoA columns serialize at memory-bandwidth speed).
class ByteWriter {
 public:
  void u8(std::uint8_t x) { buf_.push_back(x); }
  void u32(std::uint32_t x) { bytes(&x, sizeof x); }
  void u64(std::uint64_t x) { bytes(&x, sizeof x); }
  void i64(std::int64_t x) { bytes(&x, sizeof x); }

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof v);
  }

  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(T));
  }

  const std::vector<unsigned char>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<unsigned char> buf_;
};

/// Bounds-checked mirror of ByteWriter.  Reads past the end return zero
/// values and latch ok() to false — callers validate once at the end, so a
/// truncated payload can never fabricate a partially-parsed object.
class ByteReader {
 public:
  ByteReader(const void* p, std::size_t n)
      : p_(static_cast<const unsigned char*>(p)), end_(p_ + n) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  std::uint8_t u8() {
    std::uint8_t x = 0;
    bytes(&x, sizeof x);
    return x;
  }
  std::uint32_t u32() {
    std::uint32_t x = 0;
    bytes(&x, sizeof x);
    return x;
  }
  std::uint64_t u64() {
    std::uint64_t x = 0;
    bytes(&x, sizeof x);
    return x;
  }
  std::int64_t i64() {
    std::int64_t x = 0;
    bytes(&x, sizeof x);
    return x;
  }

  void bytes(void* out, std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, p_, n);
    p_ += n;
  }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    bytes(&v, sizeof v);
    return v;
  }

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = u64();
    // Reject counts the payload cannot possibly hold before allocating.
    if (!ok_ || count > remaining() / sizeof(T)) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(static_cast<std::size_t>(count));
    if (count) bytes(v.data(), v.size() * sizeof(T));
    return v;
  }

 private:
  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;
};

}  // namespace mpcmst
