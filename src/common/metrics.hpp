// Process-wide runtime telemetry: counters, gauges, log-bucketed latency
// histograms, and wall-clock trace spans.
//
// The registry is the real-time counterpart of the charged-cost meters
// (mpc::Stats counts rounds/words, CostReceipt amortizes one build): it
// measures what the serving tier actually does — queries per kind with
// latency percentiles, cache traffic, update classifications, journal fsync
// cost, recovery phases — and renders the lot as Prometheus text exposition
// or JSON.  TraceScope extends the charged-rounds PhaseScope idea to wall
// time and exports chrome://tracing-compatible JSON.
//
// Hot-path cost model: every mutation is a handful of relaxed atomic ops on
// a cache-line-aligned per-thread stripe — no locks, no allocation, no
// false sharing between recording threads.  Registration (find-or-create by
// name+labels) takes a mutex, so callers cache the returned reference;
// registered series live for the life of the process (a deque keeps their
// addresses stable), exactly the Prometheus default-registry contract.
//
// Two off switches:
//   - metrics_set_enabled(false): runtime flag, one relaxed load per
//     mutation (the in-binary overhead A/B of the benches);
//   - -DMPCMST_NO_METRICS: compile-out — every class below collapses to an
//     empty-bodied stub and the instrumentation folds to nothing.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace mpcmst {

/// What a histogram's raw values mean; render_prometheus() scales
/// kNanoseconds series to base-unit seconds, kCount passes through.
enum class MetricUnit : std::uint8_t { kNanoseconds, kCount };

/// Merged (or stubbed-out empty) view of one histogram: totals plus the 65
/// power-of-two buckets.  Plain data + pure math, defined in both build
/// modes so consumers (stats snapshots, bench JSON) compile unchanged.
struct HistogramSnapshot {
  /// Bucket 0 holds exact zeros; bucket i >= 1 holds values in
  /// [2^(i-1), 2^i - 1]; bucket 64 tops out the uint64 range.
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Bucket index of a value: 0 for 0, else bit_width (so boundaries sit
  /// exactly at the powers of two).
  static std::size_t bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive upper bound of bucket i (the value a percentile reports).
  static std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  /// Quantile q in [0, 1]: rank ceil(q * count) clamped to [1, count],
  /// walk the cumulative buckets, report the bucket's upper bound clamped
  /// to the recorded max (so a single sample reports itself exactly).
  /// Empty histograms report 0.
  std::uint64_t percentile(double q) const;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Fold another snapshot in (shard merge: counts add, maxes max).
  void merge(const HistogramSnapshot& other);
};

/// Everything the registry holds, frozen at one instant.  Keys are
/// "name" or "name{labels}" exactly as rendered.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t counter_or(const std::string& key, std::uint64_t dflt = 0)
      const {
    const auto it = counters.find(key);
    return it == counters.end() ? dflt : it->second;
  }

  HistogramSnapshot histogram_or(const std::string& key) const {
    const auto it = histograms.find(key);
    return it == histograms.end() ? HistogramSnapshot{} : it->second;
  }
};

#ifndef MPCMST_NO_METRICS

inline constexpr bool kMetricsCompiledOut = false;

namespace metrics_detail {

inline std::atomic<bool> g_enabled{true};

/// Stable small ordinal per thread (assigned on first use); stripe index =
/// ordinal mod stripe count, so a thread always hits the same stripe and
/// two threads rarely share one.
std::size_t thread_ordinal();

}  // namespace metrics_detail

/// Runtime kill switch (also the benches' in-binary overhead A/B).  The
/// registry itself stays queryable while disabled; only mutations stop.
inline bool metrics_enabled() {
  return metrics_detail::g_enabled.load(std::memory_order_relaxed);
}
void metrics_set_enabled(bool on);

/// Monotonic wall clock in nanoseconds (steady_clock).
std::uint64_t metrics_now_ns();

/// Monotonically increasing counter.  inc() is one relaxed fetch_add on a
/// cache-line-private stripe.
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;

  void inc(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    stripe().fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const Stripe& s : stripes_) t += s.v.load(std::memory_order_relaxed);
    return t;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& stripe() {
    return stripes_[metrics_detail::thread_ordinal() % kStripes].v;
  }

  std::array<Stripe, kStripes> stripes_;
};

/// Point-in-time signed value (queue depths, thread counts).  Single
/// atomic: gauges move at structural frequency, not per-query frequency.
/// add/sub ignore the runtime enable flag on purpose — paired moves must
/// stay balanced even if the flag flips between them, or the level drifts.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { add(-d); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed distribution (65 power-of-two buckets, see
/// HistogramSnapshot).  record() touches one per-thread stripe: a bucket
/// fetch_add, a sum fetch_add, and a max CAS that almost always short-
/// circuits.  snapshot() merges the stripes without stopping writers
/// (relaxed reads — totals are exact once writers quiesce).
class Histogram {
 public:
  static constexpr std::size_t kStripes = 8;

  void record(std::uint64_t v) {
    if (!metrics_enabled()) return;
    Stripe& s = stripes_[metrics_detail::thread_ordinal() % kStripes];
    s.buckets[HistogramSnapshot::bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;

  MetricUnit unit() const { return unit_; }

 private:
  friend class MetricsRegistry;

  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
        buckets{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  MetricUnit unit_ = MetricUnit::kNanoseconds;
  std::array<Stripe, kStripes> stripes_;
};

/// Process-wide singleton owning every registered series.  Lookups are
/// find-or-create by (name, labels); the same pair always returns the same
/// object, and the object is never freed — callers hold raw references.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// `labels` is the literal Prometheus label body, e.g. `kind="price"`
  /// (empty for an unlabeled series).  Series of one name must share one
  /// type — registering the same (name, labels) as two different types
  /// throws InvariantError.
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name,
                       const std::string& labels = "",
                       MetricUnit unit = MetricUnit::kNanoseconds);

  /// Prometheus text exposition format: # TYPE lines, labeled samples,
  /// cumulative _bucket/_sum/_count series for histograms (nanosecond
  /// series scaled to seconds).
  void render_prometheus(std::ostream& os) const;

  /// The same data as one JSON object {counters, gauges, histograms} with
  /// raw (unscaled) values plus derived mean/p50/p90/p99.
  void render_json(std::ostream& os) const;

  MetricsSnapshot snapshot() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();
  ~MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

/// RAII latency sample: records destructor-minus-constructor nanoseconds
/// into a histogram.  Skips the clock entirely while metrics are disabled.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h)
      : h_(&h), t0_(metrics_enabled() ? metrics_now_ns() : 0) {}
  ~ScopedLatency() {
    if (t0_ != 0) h_->record(metrics_now_ns() - t0_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_;
  std::uint64_t t0_;
};

/// Bounded in-memory trace sink (chrome://tracing "trace event format",
/// complete "X" events).  Appends take a mutex — spans mark phases, not
/// per-query work, so the lock is cold; past the cap events are dropped
/// and counted rather than grown without bound.
class TraceBuffer {
 public:
  static constexpr std::size_t kMaxEvents = 1 << 16;

  static TraceBuffer& instance();

  void append(const std::string& name, std::uint64_t ts_us,
              std::uint64_t dur_us);

  /// {"traceEvents": [...]} — load via chrome://tracing or Perfetto.
  void render_chrome_json(std::ostream& os) const;

  void clear();
  std::size_t size() const;
  std::size_t dropped() const;

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  TraceBuffer();
  ~TraceBuffer();
  struct Impl;
  Impl* impl_;
};

/// Wall-clock span: the real-time sibling of mpc::PhaseScope.  On
/// destruction emits one trace event, and optionally records the duration
/// into a histogram (so a span can be a percentile series at once).
class TraceScope {
 public:
  explicit TraceScope(std::string name, Histogram* also_record = nullptr)
      : name_(std::move(name)),
        hist_(also_record),
        t0_(metrics_enabled() ? metrics_now_ns() : 0) {}

  ~TraceScope() {
    if (t0_ == 0) return;
    const std::uint64_t dur = metrics_now_ns() - t0_;
    if (hist_ != nullptr) hist_->record(dur);
    TraceBuffer::instance().append(name_, t0_ / 1000, dur / 1000);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string name_;
  Histogram* hist_;
  std::uint64_t t0_;
};

#else  // MPCMST_NO_METRICS: the whole surface becomes free no-ops.

inline constexpr bool kMetricsCompiledOut = true;

inline bool metrics_enabled() { return false; }
inline void metrics_set_enabled(bool) {}
inline std::uint64_t metrics_now_ns() { return 0; }

class Counter {
 public:
  void inc(std::uint64_t = 1) {}
  std::uint64_t total() const { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  void sub(std::int64_t) {}
  std::int64_t value() const { return 0; }
};

class Histogram {
 public:
  void record(std::uint64_t) {}
  HistogramSnapshot snapshot() const { return {}; }
  MetricUnit unit() const { return MetricUnit::kNanoseconds; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();
  Counter& counter(const std::string&, const std::string& = "");
  Gauge& gauge(const std::string&, const std::string& = "");
  Histogram& histogram(const std::string&, const std::string& = "",
                       MetricUnit = MetricUnit::kNanoseconds);
  void render_prometheus(std::ostream& os) const;
  void render_json(std::ostream& os) const;
  MetricsSnapshot snapshot() const { return {}; }
};

class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram&) {}
};

class TraceBuffer {
 public:
  static TraceBuffer& instance();
  void append(const std::string&, std::uint64_t, std::uint64_t) {}
  void render_chrome_json(std::ostream& os) const;
  void clear() {}
  std::size_t size() const { return 0; }
  std::size_t dropped() const { return 0; }
};

class TraceScope {
 public:
  explicit TraceScope(const std::string&, Histogram* = nullptr) {}
};

#endif  // MPCMST_NO_METRICS

}  // namespace mpcmst
