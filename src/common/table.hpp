// Fixed-width plain-text table printer used by the benchmark harness to emit
// the paper-style result tables (EXPERIMENTS.md records these).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpcmst {

/// Collects rows of string cells and prints an aligned table with a header.
/// Cells are right-aligned except the first column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with operator<<.
  template <class... Ts>
  void row(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  void print(std::ostream& os, const std::string& title = "") const;

 private:
  template <class T>
  static std::string to_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 2);

}  // namespace mpcmst

#include <sstream>

namespace mpcmst {
template <class T>
std::string Table::to_cell(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_double(static_cast<double>(v));
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}
}  // namespace mpcmst
