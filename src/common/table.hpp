// Fixed-width plain-text table printer used by the benchmark harness to emit
// the paper-style result tables (EXPERIMENTS.md records these).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace mpcmst {

/// Collects rows of string cells and prints an aligned table with a header.
/// Cells are right-aligned except the first column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with operator<<.
  template <class... Ts>
  void row(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  void print(std::ostream& os, const std::string& title = "") const;

 private:
  template <class T>
  static std::string to_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 2);

/// Streaming JSON writer for the machine-readable benchmark outputs
/// (BENCH_*.json).  Handles nesting, comma placement, string escaping and
/// indentation; values are numbers, booleans or strings.
///
///   JsonWriter j(os);
///   j.begin_object();
///   j.key("qps").value(123.4);
///   j.key("points").begin_array();
///   ... j.begin_object(); ... j.end_object(); ...
///   j.end_array();
///   j.end_object();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  /// Any other integer (int, std::size_t where it is a distinct type, ...)
  /// widens to the matching 64-bit overload instead of being ambiguous.
  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::int64_t> &&
             !std::is_same_v<T, std::uint64_t>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return value(static_cast<std::int64_t>(v));
    else
      return value(static_cast<std::uint64_t>(v));
  }

 private:
  void prepare_slot();  // comma + newline + indent as needed
  void escape(const std::string& s);

  std::ostream& os_;
  std::vector<bool> has_items_;  // per open scope
  bool after_key_ = false;
};

}  // namespace mpcmst

#include <sstream>

namespace mpcmst {
template <class T>
std::string Table::to_cell(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_double(static_cast<double>(v));
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}
}  // namespace mpcmst
