// A minimal fixed-size thread pool for host-side build and serve phases.
//
// Deliberately work-stealing-free: one batch of tasks at a time, claimed off
// a single atomic cursor.  The workloads this pool runs (independent oracle
// stages, per-shard slices, shard-runs of a query batch) are pre-partitioned
// into near-equal chunks, so stealing would buy nothing and the cursor keeps
// the implementation small enough to reason about under sanitizers.
//
// The submitting thread participates in the batch (a pool with zero workers
// degenerates to a serial loop), nested submissions from inside a task run
// inline on the caller, and the first exception a task throws is rethrown on
// the submitting thread after the batch drains (MPCMST_ASSERT throws, so
// invariant failures inside tasks surface as ordinary test failures).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace mpcmst {

/// Process-wide pool telemetry (all ThreadPool instances add into the same
/// series: the gauges describe the process, like the registry itself).
struct PoolMetrics {
  Gauge* threads;         // live workers + submitters across pools
  Gauge* queue_depth;     // submitted-but-unclaimed tasks
  Gauge* active_workers;  // threads currently inside a claim loop
  Counter* batches;       // run_tasks batches dispatched to workers
  Counter* tasks;         // tasks in those batches
};

inline PoolMetrics& pool_metrics() {
  static PoolMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::instance();
    return PoolMetrics{&r.gauge("mpcmst_pool_threads"),
                       &r.gauge("mpcmst_pool_queue_depth"),
                       &r.gauge("mpcmst_pool_active_workers"),
                       &r.counter("mpcmst_pool_batches_total"),
                       &r.counter("mpcmst_pool_tasks_total")};
  }();
  return m;
}

class ThreadPool {
 public:
  /// `threads` = total concurrency *including* the submitting thread
  /// (the pool spawns threads-1 workers); 0 = hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 2;
    }
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
    pool_metrics().threads->add(static_cast<std::int64_t>(size()));
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    pool_metrics().threads->sub(static_cast<std::int64_t>(size()));
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the submitting thread).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Run fn(i) for every i in [0, count); blocks until all complete.
  /// Concurrent submitters serialize; a submission from inside a pool task
  /// runs its whole batch inline on the calling thread (no deadlock).
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (count == 1 || workers_.empty() || inside_task_flag()) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    std::lock_guard<std::mutex> submit_lock(submit_mu_);
    PoolMetrics& pm = pool_metrics();
    pm.batches->inc();
    pm.tasks->inc(count);
    pm.queue_depth->add(static_cast<std::int64_t>(count));
    Batch batch;
    batch.fn = &fn;
    batch.count = count;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch_ = &batch;
      ++batch_seq_;  // workers park on the sequence, never the address: a
                     // new stack Batch can reuse a retired one's address
    }
    work_cv_.notify_all();
    claim_loop(batch);
    {
      // The batch lives on this stack frame: wait until every task ran AND
      // no worker is still inside the claim loop before retiring it.
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return batch.done.load(std::memory_order_acquire) == batch.count &&
               batch.active == 0;
      });
      batch_ = nullptr;
    }
    work_cv_.notify_all();  // release workers parked on this batch
    if (batch.error) std::rethrow_exception(batch.error);
  }

  /// Chunked parallel loop: fn(lo, hi) over ~`chunks` contiguous slices of
  /// [0, n).  `chunks` defaults to 4 slices per thread (cheap load balance
  /// without a steal queue).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t chunks = 0) {
    if (n == 0) return;
    if (chunks == 0) chunks = 4 * size();
    chunks = std::min(chunks, n);
    const std::size_t stride = (n + chunks - 1) / chunks;
    run_tasks(chunks, [&](std::size_t c) {
      const std::size_t lo = c * stride;
      const std::size_t hi = std::min(lo + stride, n);
      if (lo < hi) fn(lo, hi);
    });
  }

  /// Process-wide pool shared by the build paths (constructed on first use,
  /// sized to the hardware).
  static ThreadPool& shared() {
    static ThreadPool pool;
    return pool;
  }

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t active = 0;  // workers inside claim_loop (guarded by mu_)
    std::exception_ptr error;  // first failure (guarded by error_mu)
    std::mutex error_mu;
  };

  static bool& inside_task_flag() {
    thread_local bool flag = false;
    return flag;
  }

  /// Claim tasks off the shared cursor until the batch is exhausted.
  void claim_loop(Batch& batch) {
    PoolMetrics& pm = pool_metrics();
    pm.active_workers->add(1);
    inside_task_flag() = true;
    for (;;) {
      const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.count) break;
      pm.queue_depth->sub(1);  // claimed: it is now running, not queued
      try {
        (*batch.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.error_mu);
        if (!batch.error) batch.error = std::current_exception();
      }
      batch.done.fetch_add(1, std::memory_order_acq_rel);
    }
    inside_task_flag() = false;
    pm.active_workers->sub(1);
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock, [&] { return stop_ || batch_ != nullptr; });
      if (stop_) return;
      Batch* batch = batch_;
      const std::uint64_t seq = batch_seq_;
      ++batch->active;  // registered under mu_: the batch cannot retire now
      lock.unlock();
      claim_loop(*batch);
      lock.lock();
      --batch->active;
      done_cv_.notify_all();
      // Park until a *newer* batch is submitted (or shutdown), so a drained
      // batch is never re-entered — keyed on the sequence number, because
      // the next stack Batch can legitimately reuse this one's address.
      work_cv_.wait(lock, [&] { return stop_ || batch_seq_ != seq; });
      if (stop_) return;
    }
  }

  std::mutex submit_mu_;  // serializes whole batches
  std::mutex mu_;         // guards batch_ / batch_seq_ / stop_ /
                          // Batch::active and the cvs
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;
  std::uint64_t batch_seq_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mpcmst
