// Lightweight runtime checking used across the library.
//
// MPCMST_CHECK is for *model* violations (capacity exceeded, malformed input):
// these throw mpcmst::ModelError so tests and benchmarks can observe them.
// MPCMST_ASSERT is for internal invariants; it also throws (never aborts) so a
// failing invariant surfaces as a test failure with a useful message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpcmst {

/// Thrown when an algorithm violates the MPC model constraints
/// (local memory capacity, global memory budget) or receives malformed input.
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant of the library is violated (a bug).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_model_error(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "MPC model violation at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw ModelError(os.str());
}

[[noreturn]] inline void throw_invariant_error(const char* expr,
                                               const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated at " << file << ":" << line << ": " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace mpcmst

#define MPCMST_CHECK(cond, msg)                                          \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mpcmst::detail::throw_model_error(#cond, __FILE__, __LINE__,     \
                                          (std::ostringstream{} << msg)  \
                                              .str());                   \
  } while (0)

#define MPCMST_ASSERT(cond, msg)                                            \
  do {                                                                      \
    if (!(cond))                                                            \
      ::mpcmst::detail::throw_invariant_error(#cond, __FILE__, __LINE__,    \
                                              (std::ostringstream{} << msg) \
                                                  .str());                  \
  } while (0)
