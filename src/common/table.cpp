#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace mpcmst {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  MPCMST_ASSERT(cells.size() == header_.size(),
                "row width " << cells.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << "  ";
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(width[c])) << r[c];
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << r[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& r : rows_) print_row(r);
  os.flush();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace mpcmst
