#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace mpcmst {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  MPCMST_ASSERT(cells.size() == header_.size(),
                "row width " << cells.size() << " != header width "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << "  ";
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(width[c])) << r[c];
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << r[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& r : rows_) print_row(r);
  os.flush();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::prepare_slot() {
  if (after_key_) {
    after_key_ = false;
    return;  // value goes right after "key": on the same line
  }
  if (!has_items_.empty()) {
    if (has_items_.back()) os_ << ",";
    has_items_.back() = true;
    os_ << "\n" << std::string(2 * has_items_.size(), ' ');
  }
}

void JsonWriter::escape(const std::string& s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\t': os_ << "\\t"; break;
      case '\r': os_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os_ << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  prepare_slot();
  os_ << "{";
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MPCMST_ASSERT(!has_items_.empty() && !after_key_, "json: bad end_object");
  const bool had = has_items_.back();
  has_items_.pop_back();
  if (had) os_ << "\n" << std::string(2 * has_items_.size(), ' ');
  os_ << "}";
  if (has_items_.empty()) os_ << "\n";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_slot();
  os_ << "[";
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MPCMST_ASSERT(!has_items_.empty() && !after_key_, "json: bad end_array");
  const bool had = has_items_.back();
  has_items_.pop_back();
  if (had) os_ << "\n" << std::string(2 * has_items_.size(), ' ');
  os_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  MPCMST_ASSERT(!after_key_, "json: key after key");
  prepare_slot();
  escape(name);
  os_ << ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  prepare_slot();
  escape(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  prepare_slot();
  os_ << format_double(v, 4);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_slot();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_slot();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_slot();
  os_ << v;
  return *this;
}

}  // namespace mpcmst
