// LSD radix sorting over 64-bit keys, the flat replacement for the
// comparator sorts on the hot paths.
//
// [GSZ11] reduces the O(1)-round MPC primitives to sorting and prefix sums
// over packed integer keys — exactly the shape this file exploits: every
// key the pipeline emits is (or order-embeds into) one 64-bit word, so a
// stable least-significant-digit radix sort with 8-bit digits replaces the
// O(n log n) comparator sorts.  Digit passes whose histogram shows a single
// occupied bucket are skipped, so keys that only span k significant bytes
// pay k passes (vertex-id keys typically pay 3-4 of the 8).
//
// Stability is load-bearing: callers rely on equal keys preserving input
// order (it is what makes the radix path byte-identical to the
// std::stable_sort it replaces).  All temporaries come from a ScratchArena,
// so steady-state sorting allocates nothing.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/arena.hpp"

namespace mpcmst {

/// Order-embed a signed 64-bit value into unsigned radix order: flipping the
/// sign bit makes unsigned byte-order agree with two's-complement order.
constexpr std::uint64_t radix_key(std::int64_t x) noexcept {
  return static_cast<std::uint64_t>(x) ^ (std::uint64_t{1} << 63);
}
constexpr std::uint64_t radix_key(std::uint64_t x) noexcept { return x; }

/// Does `K` order-embed into a 64-bit radix key via to_radix_key()?
template <class K>
inline constexpr bool is_radix_sortable_v =
    std::is_integral_v<K> && sizeof(K) <= 8;

/// Integral key of up to 64 bits -> radix key preserving the native order.
template <class K>
constexpr std::uint64_t to_radix_key(K x) noexcept {
  static_assert(is_radix_sortable_v<K>);
  if constexpr (std::is_signed_v<K>)
    return radix_key(static_cast<std::int64_t>(x));
  else
    return static_cast<std::uint64_t>(x);
}

namespace radix_detail {

/// One stable pass scattering (key, payload) by the byte at `shift`.
/// Histogram `count[257]` must hold the pass's bucket counts in [1, 257).
inline void scatter_pass(const std::uint64_t* key_in,
                         const std::uint32_t* pay_in, std::uint64_t* key_out,
                         std::uint32_t* pay_out, std::size_t n, unsigned shift,
                         std::size_t* offset) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = (key_in[i] >> shift) & 0xff;
    const std::size_t dst = offset[b]++;
    key_out[dst] = key_in[i];
    pay_out[dst] = pay_in[i];
  }
}

}  // namespace radix_detail

/// Stable-sort the payload array `pay` (any 32-bit payload, typically a
/// permutation index) by `keys`, least-significant-digit first.  Both arrays
/// have `n` entries and come out aligned: `keys` ascending, `pay` carried
/// along.  Temporaries lease from `arena`; zero allocation at steady state.
/// Returns false iff the keys were already sorted (pay untouched) — callers
/// use it to skip permutation application entirely, which matters because
/// the pipeline re-sorts id-ordered arrays constantly.
inline bool radix_sort_u32_payload(std::uint64_t* keys, std::uint32_t* pay,
                                   std::size_t n, ScratchArena& arena) {
  if (n < 2) return false;
  {
    // Already sorted?  One early-exit compare pass; a stable sort of a
    // sorted array is the identity, so there is nothing to do.
    std::size_t i = 1;
    while (i < n && keys[i - 1] <= keys[i]) ++i;
    if (i == n) return false;
  }
  if (n <= 64) {
    // Insertion sort (stable): the pipeline issues thousands of tiny sorts
    // at the deep contraction levels, where digit passes cost more than the
    // O(n^2) comparisons.
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint64_t k = keys[i];
      const std::uint32_t p = pay[i];
      std::size_t j = i;
      for (; j > 0 && keys[j - 1] > k; --j) {
        keys[j] = keys[j - 1];
        pay[j] = pay[j - 1];
      }
      keys[j] = k;
      pay[j] = p;
    }
    return true;
  }
  // All 8 histograms in one read pass over the keys (constant shifts, so
  // the digit loop unrolls); a digit whose histogram occupies one bucket
  // permutes nothing and skips its scatter pass — packed keys typically
  // span 3-6 of the 8 bytes.
  std::size_t count[8][256] = {};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    for (unsigned d = 0; d < 8; ++d) ++count[d][(k >> (8 * d)) & 0xff];
  }
  auto key_tmp = arena.lease(n);
  auto pay_tmp = arena.lease(ScratchArena::words_for(n, 4));
  std::uint64_t* key_a = keys;
  std::uint64_t* key_b = key_tmp.data();
  std::uint32_t* pay_a = pay;
  std::uint32_t* pay_b = reinterpret_cast<std::uint32_t*>(pay_tmp.bytes());
  for (unsigned d = 0; d < 8; ++d) {
    if (count[d][(key_a[0] >> (8 * d)) & 0xff] == n) continue;
    std::size_t offset[256];
    std::size_t sum = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      offset[b] = sum;
      sum += count[d][b];
    }
    radix_detail::scatter_pass(key_a, pay_a, key_b, pay_b, n, 8 * d, offset);
    std::swap(key_a, key_b);
    std::swap(pay_a, pay_b);
  }
  if (key_a != keys) {
    std::memcpy(keys, key_a, n * sizeof(std::uint64_t));
    std::memcpy(pay, pay_a, n * sizeof(std::uint32_t));
  }
  return true;
}

/// Stable permutation sorting `v` of `n` records by caller-extracted keys:
/// fills `perm` such that walking perm visits records in ascending key order
/// (equal keys in input order).  Keys come out sorted alongside.  Returns
/// false iff perm is the identity (keys were already sorted).
inline bool radix_sort_perm(std::uint64_t* keys, std::uint32_t* perm,
                            std::size_t n, ScratchArena& arena) {
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  return radix_sort_u32_payload(keys, perm, n, arena);
}

/// Apply a permutation to an array of trivially-copyable records in place,
/// staging through an arena buffer (all moves are memcpy of raw bytes).
template <class T>
void apply_perm(T* v, const std::uint32_t* perm, std::size_t n,
                ScratchArena& arena) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto tmp = arena.lease(ScratchArena::words_for(n, sizeof(T)));
  char* out = static_cast<char*>(tmp.bytes());
  for (std::size_t i = 0; i < n; ++i)
    std::memcpy(out + i * sizeof(T), v + perm[i], sizeof(T));
  std::memcpy(v, out, n * sizeof(T));
}

/// Stable LSD radix sort scattering the records themselves (no permutation
/// array): right for small trivially-copyable records whose key is a cheap
/// field read — each pass moves the record once, versus the perm path's
/// extract + perm passes + final gather.  Byte-identical result to
/// std::stable_sort with `key(a) < key(b)`.
template <class T, class KeyF>
void radix_sort_records_direct(T* v, std::size_t n, ScratchArena& arena,
                               KeyF&& key) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (n < 2) return;
  {
    std::size_t i = 1;
    while (i < n && to_radix_key(key(v[i - 1])) <= to_radix_key(key(v[i])))
      ++i;
    if (i == n) return;
  }
  if (n <= 64) {
    for (std::size_t i = 1; i < n; ++i) {
      const T rec = v[i];
      const std::uint64_t k = to_radix_key(key(rec));
      std::size_t j = i;
      for (; j > 0 && to_radix_key(key(v[j - 1])) > k; --j) v[j] = v[j - 1];
      v[j] = rec;
    }
    return;
  }
  std::size_t count[8][256] = {};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = to_radix_key(key(v[i]));
    for (unsigned d = 0; d < 8; ++d) ++count[d][(k >> (8 * d)) & 0xff];
  }
  auto tmp = arena.lease(ScratchArena::words_for(n, sizeof(T)));
  T* buf_a = v;
  T* buf_b = reinterpret_cast<T*>(tmp.bytes());
  for (unsigned d = 0; d < 8; ++d) {
    if (count[d][(to_radix_key(key(buf_a[0])) >> (8 * d)) & 0xff] == n)
      continue;
    std::size_t offset[256];
    std::size_t sum = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      offset[b] = sum;
      sum += count[d][b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bkt = (to_radix_key(key(buf_a[i])) >> (8 * d)) & 0xff;
      std::memcpy(buf_b + offset[bkt]++, buf_a + i, sizeof(T));
    }
    std::swap(buf_a, buf_b);
  }
  if (buf_a != v) std::memcpy(v, buf_a, n * sizeof(T));
}

/// Stable radix sort of `v` by a key projection returning any integral type
/// (or anything convertible through to_radix_key).  Byte-identical result to
/// std::stable_sort with `key(a) < key(b)`.
template <class T, class KeyF>
void radix_sort_records(T* v, std::size_t n, ScratchArena& arena,
                        KeyF&& key) {
  if (n < 2) return;
  auto keys = arena.lease(n);
  auto perm = arena.lease(ScratchArena::words_for(n, 4));
  std::uint32_t* p = reinterpret_cast<std::uint32_t*>(perm.bytes());
  for (std::size_t i = 0; i < n; ++i) keys[i] = to_radix_key(key(v[i]));
  if (radix_sort_perm(keys.data(), p, n, arena)) apply_perm(v, p, n, arena);
}

/// Stable radix sort by a composite (hi, lo) key pair, lexicographic: two
/// LSD passes (lo first, then hi — stability composes them).
template <class T, class HiF, class LoF>
void radix_sort_records2(T* v, std::size_t n, ScratchArena& arena, HiF&& hi,
                         LoF&& lo) {
  if (n < 2) return;
  auto keys = arena.lease(n);
  auto perm = arena.lease(ScratchArena::words_for(n, 4));
  std::uint32_t* p = reinterpret_cast<std::uint32_t*>(perm.bytes());
  for (std::size_t i = 0; i < n; ++i) keys[i] = to_radix_key(lo(v[i]));
  bool moved = radix_sort_perm(keys.data(), p, n, arena);
  for (std::size_t i = 0; i < n; ++i) keys[i] = to_radix_key(hi(v[p[i]]));
  moved |= radix_sort_u32_payload(keys.data(), p, n, arena);
  if (moved) apply_perm(v, p, n, arena);
}

}  // namespace mpcmst
