// Deterministic mixing / hashing helpers.
//
// The contraction steps of the hierarchical clustering (Definition 2.7 /
// Lemma 2.8) break symmetry on chains with per-cluster coins.  We derive the
// coins deterministically from (seed, step, cluster id) with a strong 64-bit
// mixer, so every run with the same seed is bit-reproducible — important for
// the round-count experiments.
#pragma once

#include <cstdint>

namespace mpcmst {

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine up to three 64-bit values into one hash.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b,
                                     std::uint64_t c = 0) noexcept {
  return mix64(mix64(mix64(a) ^ b) ^ c);
}

/// A deterministic fair coin for (seed, step, id).
constexpr bool coin(std::uint64_t seed, std::uint64_t step,
                    std::uint64_t id) noexcept {
  return (hash_combine(seed, step, id) & 1ULL) != 0;
}

/// Incremental hash over a variable-length word sequence.  Order- and
/// length-sensitive: every word is mixed into the running state, and the
/// digest folds in the word count, so [a] / [a, 0] / [0, a] all land apart.
/// Callers hashing *sets* (the service's batch change-set cache keys) must
/// canonicalize first — sort and dedup — so permuted-but-equal inputs feed
/// identical sequences; HashStream itself never reorders.
class HashStream {
 public:
  constexpr HashStream() = default;
  constexpr explicit HashStream(std::uint64_t seed) : state_(mix64(seed)) {}

  constexpr HashStream& mix(std::uint64_t word) noexcept {
    state_ = hash_combine(state_, word);
    ++count_;
    return *this;
  }

  constexpr std::uint64_t digest() const noexcept {
    return hash_combine(state_, count_);
  }

 private:
  std::uint64_t state_ = 0x2545f4914f6cdd1dULL;
  std::uint64_t count_ = 0;
};

}  // namespace mpcmst
