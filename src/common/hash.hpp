// Deterministic mixing / hashing helpers.
//
// The contraction steps of the hierarchical clustering (Definition 2.7 /
// Lemma 2.8) break symmetry on chains with per-cluster coins.  We derive the
// coins deterministically from (seed, step, cluster id) with a strong 64-bit
// mixer, so every run with the same seed is bit-reproducible — important for
// the round-count experiments.
#pragma once

#include <cstdint>

namespace mpcmst {

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine up to three 64-bit values into one hash.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b,
                                     std::uint64_t c = 0) noexcept {
  return mix64(mix64(mix64(a) ^ b) ^ c);
}

/// A deterministic fair coin for (seed, step, id).
constexpr bool coin(std::uint64_t seed, std::uint64_t step,
                    std::uint64_t id) noexcept {
  return (hash_combine(seed, step, id) & 1ULL) != 0;
}

}  // namespace mpcmst
