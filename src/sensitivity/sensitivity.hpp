// MST sensitivity in O(log D_T) rounds with optimal global memory
// (paper §4, Theorem 4.1).
//
// For every edge of G the sensitivity (Definition 1.2) is derived from:
//   - non-tree e:  sens(e) = w(e) - maxpath(e), where maxpath is the covering
//     maximum computed by the verification core (Observation 4.2);
//   - tree e:      sens(e) = mc(e) - w(e), where mc(e) is the minimum weight
//     of a non-tree edge covering e (Observation 4.3).
//
// The tree-edge mc values are the hard part and follow the paper exactly:
//   Algorithm 5 — contract while maintaining the invariant that no non-tree
//     edge covers an edge inside either *endpoint* cluster; endpoint clusters
//     that merge trigger cases 1/4/5 of Definition 4.5, truncating edges and
//     recording root-to-leaf notes (Definition 4.4);
//   Algorithm 6 — on the n/poly(D̂) cluster tree, split off topmost arcs,
//     aggregate depth-indexed minima over subtrees (Definition 4.8 realized
//     as a sparse (cluster, depth)->min fold), producing the mc of every
//     cluster-tree edge and one root-to-leaf note per cluster (Lemma 4.9);
//   Algorithm 7 — unwind the contraction, splitting every note into a senior
//     part, a junior part, and one concrete tree-edge mc update per level
//     (Lemma 4.11), deduplicating per level (Claim 4.13 keeps O(n) notes).
#pragma once

#include <cstdint>

#include "graph/instance.hpp"
#include "mpc/engine.hpp"
#include "verify/verifier.hpp"

namespace mpcmst::sensitivity {

using graph::Vertex;
using graph::Weight;

/// Sentinel-aware sensitivity conventions (Definition 1.2), single-sourced
/// so the distributed pipeline, the host-side index builds and the service's
/// incremental update layer can never disagree on the uncovered cases.
/// Tree edge: sens = mc - w, unbounded when nothing covers it (a bridge).
constexpr Weight tree_sens(Weight mc, Weight w) {
  return mc == graph::kPosInfW ? graph::kPosInfW : mc - w;
}
/// Non-tree edge: sens = w - maxpath, unbounded when it covers nothing
/// (e.g. a self loop, maxpath == kNegInfW).
constexpr Weight nontree_sens(Weight w, Weight maxpath) {
  return maxpath == graph::kNegInfW ? graph::kPosInfW : w - maxpath;
}

/// Per tree edge {v, parent(v)}, keyed by the child endpoint v.
struct TreeEdgeSens {
  Vertex v = 0;
  Weight w = 0;
  Weight mc = graph::kPosInfW;   // min covering non-tree weight
  Weight sens = graph::kPosInfW; // mc - w
};

/// Per non-tree edge (aligned with Instance::nontree by orig_id).
struct NonTreeEdgeSens {
  std::int64_t orig_id = 0;
  Weight w = 0;
  Weight maxpath = graph::kNegInfW;  // max tree weight on the covered path
  Weight sens = 0;                   // w - maxpath
};

struct SensitivityStats {
  std::size_t contraction_steps = 0;
  std::size_t final_clusters = 0;
  std::size_t notes_created = 0;   // total root-to-leaf notes over the run
  std::size_t notes_peak = 0;      // max live notes (Claim 4.13: O(n))
  std::size_t case1 = 0, case4 = 0, case5 = 0;  // Definition 4.5 frequencies
};

struct SensitivityResult {
  mpc::Dist<TreeEdgeSens> tree;
  mpc::Dist<NonTreeEdgeSens> nontree;
  SensitivityStats stats;
  verify::CoreStats verify_core;  // stats of the Observation 4.2 sub-run
};

/// Full MST sensitivity of an instance (Theorem 4.1).  `inst.tree` must be
/// an MST of the instance (as the problem definition requires); this is not
/// re-verified here — call verify::verify_mst_mpc first if unsure.
SensitivityResult mst_sensitivity_mpc(mpc::Engine& eng,
                                      const graph::Instance& inst);

/// Same, against prebuilt artifacts (verify::build_artifacts), so one prelude
/// serves verification, sensitivity, and the service index build.
SensitivityResult mst_sensitivity_mpc(const graph::Instance& inst,
                                      const verify::Artifacts& art);

}  // namespace mpcmst::sensitivity
