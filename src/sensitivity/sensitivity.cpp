#include "sensitivity/sensitivity.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/clustering.hpp"
#include "common/check.hpp"
#include "lca/all_edges_lca.hpp"
#include "mpc/ops.hpp"
#include "mpc/superlevel.hpp"
#include "treeops/doubling.hpp"
#include "treeops/interval_label.hpp"

namespace mpcmst::sensitivity {

namespace {

using cluster::ClusterNode;
using cluster::HierarchicalClustering;
using cluster::MergeRec;
using graph::kNegInfW;
using graph::kPosInfW;
using lca::AdEdge;
using treeops::SlotValue;
using treeops::TreeRec;

/// An E' edge (Algorithm 5): lo is always the *leader* of the cluster clo
/// containing it (the truncation invariant of Definition 4.5); hi sits in
/// chi and is a structural leaf of it.  Scratch fields stage the per-step
/// case analysis so every emission happens after all reads of old state.
struct SensEdge {
  Vertex lo, hi;
  Weight w;
  Vertex clo, chi;
  std::int64_t pre_lo;  // DFS number of the original lower endpoint
  // Case 5 staging.
  Vertex c5_junior;
  Weight c5_wtop;
  std::int64_t c5_level;
  Vertex c5_leaf;
  // Case 1/4 staging.
  std::int64_t c14_kind;  // 0 none, 1 or 4
  Vertex c14_junior, c14_senior, c14_attach;
  std::int64_t c14_step;
  std::int64_t dead;
};

/// A pending min-update of the mc value of tree edge {child, p(child)}.
struct McUpdate {
  Vertex child;
  Weight val;
};

/// Root-to-leaf note (Definition 4.4): the path from cluster leader r down
/// to vertex x (inside the cluster with leader r formed at `level`) is
/// covered by a non-tree edge of weight w.
struct Note {
  Vertex r;
  Vertex x;
  Weight w;
  std::int64_t level;
  std::int64_t pre_x;     // scratch: DFS number of x (unwinding)
  Vertex hit_junior;      // scratch: junior containing x this level
  std::int64_t hit_level;
  Vertex hit_attach;
  std::int64_t hit_prev;  // senior sub-cluster level
};

/// Keep the mc-update pool compressed to one entry per tree edge
/// (the paper's "dedicated machines" for mc values, §4 preamble).
mpc::Dist<McUpdate> compress_updates(mpc::Dist<McUpdate> pool) {
  auto reduced = mpc::reduce_by_key<std::uint64_t, Weight>(
      pool, [](const McUpdate& u) { return std::uint64_t(u.child); },
      [](const McUpdate& u) { return u.val; },
      [](Weight a, Weight b) { return std::min(a, b); });
  return mpc::map<McUpdate>(reduced, [](const auto& kv) {
    return McUpdate{static_cast<Vertex>(kv.key), kv.val};
  });
}

/// Deduplicate notes by (r, x): min weight, max level.  Safe because the
/// covered tree path r..x does not depend on the level and clusters only
/// grow with the level, so the higher-level unwind subsumes the lower.
/// Realizes Algorithm 7 line 12 within linear memory (Claim 4.13).
mpc::Dist<Note> dedup_notes(mpc::Dist<Note> pool) {
  struct WL {
    Weight w;
    std::int64_t level;
  };
  auto reduced = mpc::reduce_by_key<std::uint64_t, WL>(
      pool,
      [](const Note& n) {
        return mpc::pack2(std::uint64_t(n.r), std::uint64_t(n.x));
      },
      [](const Note& n) { return WL{n.w, n.level}; },
      [](WL a, WL b) {
        return WL{std::min(a.w, b.w), std::max(a.level, b.level)};
      });
  return mpc::map<Note>(reduced, [](const auto& kv) {
    Note n{};
    n.r = static_cast<Vertex>(kv.key >> 32);
    n.x = static_cast<Vertex>(kv.key & 0xffffffffULL);
    n.w = kv.val.w;
    n.level = kv.val.level;
    return n;
  });
}

struct TreeMcResult {
  mpc::Dist<McUpdate> mc;  // one entry per covered tree edge (child-keyed)
  SensitivityStats stats;
};

/// Algorithms 5-7: mc value of every covered tree edge.
TreeMcResult tree_edge_mc(const mpc::Dist<TreeRec>& tree, Vertex root,
                          const treeops::DepthResult& /*depths*/,
                          const mpc::Dist<treeops::IntervalRec>& intervals,
                          const mpc::Dist<AdEdge>& halves, std::int64_t dhat) {
  mpc::Engine& eng = tree.engine();
  mpc::PhaseScope phase(eng, "sensitivity-core");
  const std::size_t n = tree.size();
  SensitivityStats stats;

  // --- E' initialization (singleton clusters satisfy the invariant) ---
  mpc::Dist<SensEdge> edges = mpc::map<SensEdge>(halves, [](const AdEdge& e) {
    SensEdge s{};
    s.lo = e.lo;
    s.hi = e.hi;
    s.w = e.w;
    s.clo = e.lo;
    s.chi = e.hi;
    return s;
  });
  mpc::join_unique(
      edges, intervals, [](const SensEdge& s) { return std::uint64_t(s.lo); },
      [](const treeops::IntervalRec& iv) { return std::uint64_t(iv.v); },
      [](SensEdge& s, const treeops::IntervalRec* iv) {
        MPCMST_ASSERT(iv, "sens: missing interval of lo");
        s.pre_lo = iv->lo;
      });

  mpc::Dist<McUpdate> mc_pool(eng);
  mpc::Dist<Note> notes(eng);
  auto track_notes = [&](std::size_t created) {
    stats.notes_created += created;
    stats.notes_peak = std::max(stats.notes_peak, notes.size());
  };

  // --- Algorithm 5: contraction with truncation ---
  //
  // Superlevel fusion: the per-step case analysis (case 5's two stabbing
  // joins, the case 1/4 join, both emission flat_maps, the three counters,
  // the truncation commit, the case 2/3 join, and the liveness filter) is
  // per-edge work against this step's merge tables, so it collapses into
  // ONE physical sweep over the edges; the cross-edge pool maintenance
  // (compress_updates / dedup_notes / the truncation dedup sort) stays real.
  // Charges and Dist alloc/free interleaving replay the unfused order
  // byte-identically (see mpc/superlevel.hpp).
  HierarchicalClustering hc(tree, root, intervals, 0);
  const std::size_t target = cluster::cluster_target(n, dhat);
  auto sl = eng.superlevel_scope("sensitivity-core");

  struct StepChild {
    Vertex junior;
    std::int64_t lo, hi;
    Vertex attach;
  };
  std::vector<MergeRec> by_senior;         // sorted by (senior, jlo)
  std::vector<StepChild> children;         // of dying juniors, (junior, lo)
  // Packed per-cluster lookup row: the per-step sweep pays one cache line
  // per endpoint instead of three scattered int arrays.
  struct Slot {
    std::int32_t s_off = -1, s_cnt = 0;  // senior -> slice of by_senior
    std::int32_t j_merge = -1;           // junior -> merge index
  };
  std::vector<Slot> slot(n);
  std::vector<std::int32_t> c_off(n, -1), c_cnt(n, 0);  // junior -> children

  while (hc.num_clusters() > std::max<std::size_t>(target, 1)) {
    const mpc::Dist<MergeRec> merges = hc.plan_step();

    // This step's lookup tables (cleared sparsely afterwards).
    sl.sweep();
    by_senior.assign(merges.local().begin(), merges.local().end());
    std::sort(by_senior.begin(), by_senior.end(),
              [](const MergeRec& a, const MergeRec& b) {
                return a.senior != b.senior ? a.senior < b.senior
                                            : a.jlo < b.jlo;
              });
    for (std::size_t i = 0; i < by_senior.size(); ++i) {
      const auto sen = static_cast<std::size_t>(by_senior[i].senior);
      if (slot[sen].s_off < 0) slot[sen].s_off = static_cast<std::int32_t>(i);
      ++slot[sen].s_cnt;
      slot[static_cast<std::size_t>(by_senior[i].junior)].j_merge =
          static_cast<std::int32_t>(i);
    }
    sl.sweep();
    children.clear();
    for (const ClusterNode& c : hc.nodes().local()) {
      if (slot[static_cast<std::size_t>(c.parent_leader)].j_merge >= 0)
        children.push_back({c.parent_leader, c.lo, c.hi, c.attach});
    }
    std::sort(children.begin(), children.end(),
              [](const StepChild& a, const StepChild& b) {
                return a.junior != b.junior ? a.junior < b.junior
                                            : a.lo < b.lo;
              });
    for (std::size_t i = 0; i < children.size(); ++i) {
      const auto j = static_cast<std::size_t>(children[i].junior);
      if (c_off[j] < 0) c_off[j] = static_cast<std::int32_t>(i);
      ++c_cnt[j];
    }

    // The single per-step edge sweep: stage cases 5 and 1/4, collect the
    // emissions and counters, commit truncations, apply cases 2/3, and
    // split off the survivors.
    std::vector<McUpdate> ups_vec;
    std::vector<Note> notes_vec;
    std::vector<SensEdge> out_vec;
    out_vec.reserve(edges.size());
    std::int64_t cnt5 = 0, cnt1 = 0, cnt4 = 0;
    mpc::for_each(edges, [&](SensEdge& s) {
      s.c5_junior = -1;
      s.c5_leaf = -1;
      s.c14_kind = 0;

      // Case 5: a junior J != clo on the covered path merges into the
      // senior chi; find J, then its path-child x (leaf l = attach(x)).
      if (!s.dead) {
        const auto chi = static_cast<std::size_t>(s.chi);
        if (slot[chi].s_off >= 0) {
          const MergeRec* lo = by_senior.data() + slot[chi].s_off;
          const MergeRec* hi = lo + slot[chi].s_cnt;
          const MergeRec* m = std::upper_bound(
              lo, hi, s.pre_lo, [](std::int64_t x, const MergeRec& r) {
                return x < r.jlo;
              });
          m = (m != lo && (m - 1)->jhi >= s.pre_lo) ? m - 1 : nullptr;
          if (m != nullptr && m->junior != s.clo) {
            MPCMST_ASSERT(m->attach == s.hi,
                          "sens case 5: path enters chi away from hi");
            s.c5_junior = m->junior;
            s.c5_wtop = m->w_top;
            s.c5_level = m->junior_formed_at;
          }
        }
      }
      if (s.c5_junior >= 0) {
        const auto j = static_cast<std::size_t>(s.c5_junior);
        const StepChild* lo = children.data() + (c_off[j] >= 0 ? c_off[j] : 0);
        const StepChild* hi = lo + (c_off[j] >= 0 ? c_cnt[j] : 0);
        const StepChild* x = std::upper_bound(
            lo, hi, s.pre_lo, [](std::int64_t v, const StepChild& c) {
              return v < c.lo;
            });
        x = (x != lo && (x - 1)->hi >= s.pre_lo) ? x - 1 : nullptr;
        MPCMST_ASSERT(x, "sens case 5: missing path-child of junior");
        s.c5_leaf = x->attach;  // l = p(leader(x)), a leaf of the junior
      }

      // Cases 1 / 4: the cluster containing lo merges upward.
      if (!s.dead) {
        const std::int32_t ma = slot[static_cast<std::size_t>(s.clo)].j_merge;
        if (ma >= 0) {
          const MergeRec& m = by_senior[static_cast<std::size_t>(ma)];
          if (m.senior == s.chi) {
            MPCMST_ASSERT(m.attach == s.hi,
                          "sens case 1: path longer than one edge");
            s.c14_kind = 1;
          } else {
            s.c14_kind = 4;
          }
          s.c14_junior = m.junior;
          s.c14_senior = m.senior;
          s.c14_attach = m.attach;
          s.c14_step = m.step;
        }
      }

      // Emissions of this step (edge order, case 5 before case 1/4, exactly
      // like the unfused flat_maps).
      if (s.c5_junior >= 0) {
        ++cnt5;
        ups_vec.push_back(McUpdate{s.c5_junior, s.w});
        if (s.c5_leaf != s.c5_junior) {
          Note nn{};
          nn.r = s.c5_junior;
          nn.x = s.c5_leaf;
          nn.w = s.w;
          nn.level = s.c5_level;
          notes_vec.push_back(nn);
        }
      }
      if (s.c14_kind != 0) {
        ups_vec.push_back(McUpdate{s.c14_junior, s.w});
        if (s.c14_kind == 1) ++cnt1;
        if (s.c14_kind == 4) {
          ++cnt4;
          if (s.c14_attach != s.c14_senior) {
            Note nn{};
            nn.r = s.c14_senior;
            nn.x = s.c14_attach;
            nn.w = s.w;
            nn.level = s.c14_step;
            notes_vec.push_back(nn);
          }
        }
      }

      // Commit truncations, then cases 2/3 (id of chi's cluster moves).
      if (!s.dead) {
        if (s.c5_junior >= 0) s.hi = s.c5_leaf;
        if (s.c14_kind == 1) {
          s.dead = 1;
        } else if (s.c14_kind == 4) {
          s.lo = s.c14_senior;
          s.clo = s.c14_senior;
        }
      }
      if (!s.dead) {
        const std::int32_t mc = slot[static_cast<std::size_t>(s.chi)].j_merge;
        if (mc >= 0) s.chi = by_senior[static_cast<std::size_t>(mc)].senior;
        out_vec.push_back(s);
      }
    });

    // Sparse table reset for the next step.
    for (const MergeRec& m : by_senior) {
      slot[static_cast<std::size_t>(m.senior)] = Slot{};
      slot[static_cast<std::size_t>(m.junior)].j_merge = -1;
    }
    for (const StepChild& c : children) {
      c_off[static_cast<std::size_t>(c.junior)] = -1;
      c_cnt[static_cast<std::size_t>(c.junior)] = 0;
    }

    // Replay the unfused step's charges and Dist lifetimes in order: the
    // two stab_joins, the case 1/4 join, the two emission flat_maps, the
    // three counter reduces, the pool maintenance (real), the case 2/3
    // join, and the liveness filter (real re-materialization).
    sl.stab_join(edges.words(), merges.words());
    sl.stab_join(edges.words(), hc.nodes().words());
    sl.join_unique(edges.words(), merges.words());
    {
      sl.resize(ups_vec.size() * mpc::words_per<McUpdate>());
      mpc::Dist<McUpdate> ups(eng, std::move(ups_vec));
      sl.resize(notes_vec.size() * mpc::words_per<Note>());
      mpc::Dist<Note> fresh(eng, std::move(notes_vec));
      sl.reduce();
      stats.case5 += cnt5;
      sl.reduce();
      stats.case1 += cnt1;
      sl.reduce();
      stats.case4 += cnt4;
      track_notes(fresh.size());
      mc_pool = compress_updates(mpc::concat(mc_pool, ups));
      notes = dedup_notes(mpc::concat(notes, fresh));
    }
    sl.join_unique(edges.words(), merges.words());
    {
      sl.resize(out_vec.size() * mpc::words_per<SensEdge>());
      mpc::Dist<SensEdge> filtered(eng, std::move(out_vec));
      edges = std::move(filtered);
    }

    // Deduplicate identical truncations, keeping the lightest (one charged
    // sort + compaction).  The charges and the replace accounting replay
    // the sort_by2-over-records realization; physically, a step that
    // truncated nothing cannot have created duplicates (the pool was unique
    // by (lo, hi) going in and cases 2/3 touch only cluster ids), so only
    // the charges run, and otherwise a 3-word (key, w, idx) proxy is sorted
    // in place of the 16-word records and the survivors gathered.
    {
      eng.charge_sort(edges.words());
      if (cnt4 + cnt5 > 0) {
        eng.note_pass(2);  // proxy extract + sort, survivor gather
        auto& loc = edges.local();
        struct Proxy {
          std::uint64_t key;
          Weight w;
          std::uint32_t idx;
        };
        std::vector<Proxy> px;
        px.reserve(loc.size());
        for (std::size_t i = 0; i < loc.size(); ++i)
          px.push_back({mpc::pack2(std::uint64_t(loc[i].lo),
                                   std::uint64_t(loc[i].hi)),
                        loc[i].w, static_cast<std::uint32_t>(i)});
        radix_sort_records_direct(px.data(), px.size(), eng.scratch(),
                                  [](const Proxy& p) { return p.key; });
        std::vector<SensEdge> unique_edges;
        unique_edges.reserve(px.size());
        for (std::size_t i = 0; i < px.size();) {
          std::size_t best = i, j = i + 1;
          for (; j < px.size() && px[j].key == px[i].key; ++j)
            if (px[j].w < px[best].w) best = j;
          unique_edges.push_back(loc[px[best].idx]);
          i = j;
        }
        eng.charge_exchange(unique_edges.size() * mpc::words_per<SensEdge>());
        edges.replace(std::move(unique_edges));
      } else {
        eng.charge_exchange(edges.words());
        eng.note_free(edges.words());
        eng.note_alloc(edges.words());
        eng.check_balanced(edges.words());
      }
    }

    hc.apply_step(merges, [](std::int64_t l, const MergeRec&) { return l; });
    ++stats.contraction_steps;
    MPCMST_ASSERT(stats.contraction_steps <= 64 * 40,
                  "sensitivity contraction stalls");
  }
  stats.final_clusters = hc.num_clusters();

  // --- Algorithm 6: cluster-tree sensitivity with n/poly(D̂) clusters ---
  {
    // Cluster tree as a rooted tree over leaders.
    mpc::Dist<TreeRec> ctree = mpc::map<TreeRec>(
        hc.nodes(), [](const ClusterNode& c) {
          return TreeRec{c.leader, c.parent_leader, c.w_top};
        });
    const treeops::DepthResult cdepths =
        treeops::compute_depths(ctree, hc.root_cluster());

    // Lines 2-6: split off the topmost arc of every E' edge.  The path-child
    // J of chi satisfies attach(J) == hi (invariant); the arc {leader(J), hi}
    // gets mc <= w, and the remainder becomes the E'' record (clo, J, w).
    mpc::for_each(edges, [](SensEdge& s) { s.c5_junior = -1; });
    mpc::stab_join(
        edges, hc.nodes(),
        [](const SensEdge& s) { return std::uint64_t(s.chi); },
        [](const SensEdge& s) { return s.pre_lo; },
        [](const ClusterNode& c) { return std::uint64_t(c.parent_leader); },
        [](const ClusterNode& c) { return c.lo; },
        [](const ClusterNode& c) { return c.hi; },
        [](SensEdge& s, const ClusterNode* j) {
          MPCMST_ASSERT(j, "alg6: missing path-child of chi");
          MPCMST_ASSERT(j->attach == s.hi, "alg6: invariant violation");
          s.c5_junior = j->leader;  // J
        });
    mpc::Dist<McUpdate> arc_ups = mpc::flat_map<McUpdate>(
        edges, [](const SensEdge& s, auto&& emit) {
          if (s.c5_junior >= 0) emit(McUpdate{s.c5_junior, s.w});
        });
    mc_pool = compress_updates(mpc::concat(mc_pool, arc_ups));

    // E'' entries: (lower cluster, depth of upper cluster, weight); the edge
    // covers every cluster-tree edge {c, p(c)} with clo in subtree(c) and
    // dep(upper) < dep(c) — exactly the sparse Definition 4.8 minima.
    struct E2 {
      Vertex x;        // lower cluster
      Vertex a;        // upper cluster (J)
      Weight w;
      std::int64_t dep_a;
    };
    mpc::Dist<E2> e2 = mpc::flat_map<E2>(
        edges, [](const SensEdge& s, auto&& emit) {
          if (s.c5_junior >= 0 && s.c5_junior != s.clo)
            emit(E2{s.clo, s.c5_junior, s.w, 0});
        });
    mpc::join_unique(
        e2, cdepths.depth, [](const E2& e) { return std::uint64_t(e.a); },
        [](const treeops::DepthRec& d) { return std::uint64_t(d.v); },
        [](E2& e, const treeops::DepthRec* d) {
          MPCMST_ASSERT(d, "alg6: missing cluster depth");
          e.dep_a = d->depth;
        });
    mpc::Dist<SlotValue> entries = mpc::map<SlotValue>(e2, [](const E2& e) {
      return SlotValue{e.x, e.dep_a, e.w};
    });
    const mpc::Dist<SlotValue> agg =
        treeops::subtree_aggregate_sparse(ctree, cdepths.depth, entries);

    // minA(c) = min over subtree entries with slot < dep(c) (Definition 4.8
    // / Lemma 4.9 part ii); this is the mc of the cluster-tree edge
    // {c, p(c)}, giving one tree-edge update and one root-to-leaf note N_c
    // covering the path inside the parent cluster.
    struct CandidateRow {
      Vertex c;
      std::int64_t slot;
      Weight val;
      std::int64_t dep_c;
    };
    mpc::Dist<CandidateRow> rows = mpc::map<CandidateRow>(
        agg, [](const SlotValue& e) {
          return CandidateRow{e.v, e.slot, e.val, -1};
        });
    mpc::join_unique(
        rows, cdepths.depth,
        [](const CandidateRow& r) { return std::uint64_t(r.c); },
        [](const treeops::DepthRec& d) { return std::uint64_t(d.v); },
        [](CandidateRow& r, const treeops::DepthRec* d) {
          MPCMST_ASSERT(d, "alg6: missing depth for row");
          r.dep_c = d->depth;
        });
    mpc::Dist<CandidateRow> covering = mpc::filter(
        rows, [](const CandidateRow& r) { return r.slot < r.dep_c; });
    auto mina_per_cluster = mpc::reduce_by_key<std::uint64_t, Weight>(
        covering, [](const CandidateRow& r) { return std::uint64_t(r.c); },
        [](const CandidateRow& r) { return r.val; },
        [](Weight a, Weight b) { return std::min(a, b); });

    // mc of the cluster boundary edge + note N_c inside the parent cluster.
    struct BoundaryRow {
      Vertex c;
      Weight val;
      Vertex parent, attach;
      std::int64_t parent_level;
    };
    mpc::Dist<BoundaryRow> boundary = mpc::map<BoundaryRow>(
        mina_per_cluster, [](const auto& kv) {
          return BoundaryRow{static_cast<Vertex>(kv.key), kv.val, -1, -1, -1};
        });
    mpc::join_unique(
        boundary, hc.nodes(),
        [](const BoundaryRow& b) { return std::uint64_t(b.c); },
        [](const ClusterNode& c) { return std::uint64_t(c.leader); },
        [](BoundaryRow& b, const ClusterNode* c) {
          MPCMST_ASSERT(c, "alg6: missing cluster node");
          b.parent = c->parent_leader;
          b.attach = c->attach;
        });
    mpc::join_unique(
        boundary, hc.nodes(),
        [](const BoundaryRow& b) { return std::uint64_t(b.parent); },
        [](const ClusterNode& c) { return std::uint64_t(c.leader); },
        [](BoundaryRow& b, const ClusterNode* c) {
          MPCMST_ASSERT(c, "alg6: missing parent cluster node");
          b.parent_level = c->formed_at;
        });
    mpc::Dist<McUpdate> boundary_ups = mpc::map<McUpdate>(
        boundary, [](const BoundaryRow& b) { return McUpdate{b.c, b.val}; });
    mc_pool = compress_updates(mpc::concat(mc_pool, boundary_ups));
    mpc::Dist<Note> boundary_notes = mpc::flat_map<Note>(
        boundary, [](const BoundaryRow& b, auto&& emit) {
          if (b.attach != b.parent) {
            Note n{};
            n.r = b.parent;
            n.x = b.attach;
            n.w = b.val;
            n.level = b.parent_level;
            emit(n);
          }
        });
    track_notes(boundary_notes.size());
    notes = dedup_notes(mpc::concat(notes, std::move(boundary_notes)));
  }

  // --- Algorithm 7: unwind the contraction, resolving every note ---
  for (std::int64_t lev = hc.current_step(); lev >= 1; --lev) {
    // Fused split: one sweep produces this level's notes and the remainder,
    // mirroring the two unfused filters' charges and allocation order.
    std::vector<Note> cur_vec, rem_vec;
    sl.sweep();
    for (const Note& nn : notes.local())
      (nn.level == lev ? cur_vec : rem_vec).push_back(nn);
    sl.resize(cur_vec.size() * mpc::words_per<Note>());
    mpc::Dist<Note> cur(eng, std::move(cur_vec));
    sl.resize(rem_vec.size() * mpc::words_per<Note>());
    {
      mpc::Dist<Note> rem(eng, std::move(rem_vec));
      notes = std::move(rem);
    }
    if (cur.empty()) continue;
    cur = dedup_notes(std::move(cur));
    mpc::for_each(cur, [lev](Note& n) {
      n.level = lev;  // dedup keeps max level == lev here
      n.hit_junior = -1;
      n.hit_prev = -1;
    });
    // DFS number of the note target, for junior-membership stabbing.
    mpc::join_unique(
        cur, intervals, [](const Note& n) { return std::uint64_t(n.x); },
        [](const treeops::IntervalRec& iv) { return std::uint64_t(iv.v); },
        [](Note& n, const treeops::IntervalRec* iv) {
          MPCMST_ASSERT(iv, "alg7: missing interval of note target");
          n.pre_x = iv->lo;
        });
    const mpc::Dist<MergeRec>& merges = hc.history()[lev - 1];
    auto senior_prev = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
        merges, [](const MergeRec& m) { return std::uint64_t(m.senior); },
        [](const MergeRec& m) { return m.senior_prev_formed_at; },
        [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    mpc::stab_join(
        cur, merges, [](const Note& n) { return std::uint64_t(n.r); },
        [](const Note& n) { return n.pre_x; },
        [](const MergeRec& m) { return std::uint64_t(m.senior); },
        [](const MergeRec& m) { return m.jlo; },
        [](const MergeRec& m) { return m.jhi; },
        [](Note& n, const MergeRec* m) {
          if (m == nullptr) return;
          n.hit_junior = m->junior;
          n.hit_level = m->junior_formed_at;
          n.hit_attach = m->attach;
        });
    mpc::join_unique(
        cur, senior_prev,
        [](const Note& n) { return std::uint64_t(n.r); },
        [](const auto& kv) { return kv.key; },
        [](Note& n, const auto* kv) {
          MPCMST_ASSERT(kv, "alg7: note at level without merges");
          n.hit_prev = kv->val;
        });

    // Per note: either descend into the junior J containing x (mc of the
    // bridge {leader(J), attach}, plus senior and junior sub-notes), or stay
    // entirely within the senior sub-cluster.
    mpc::Dist<McUpdate> ups = mpc::flat_map<McUpdate>(
        cur, [](const Note& n, auto&& emit) {
          if (n.hit_junior >= 0) emit(McUpdate{n.hit_junior, n.w});
        });
    mc_pool = compress_updates(mpc::concat(mc_pool, ups));
    mpc::Dist<Note> fresh = mpc::flat_map<Note>(
        cur, [](const Note& n, auto&& emit) {
          if (n.hit_junior >= 0) {
            if (n.hit_attach != n.r) {
              Note s{};
              s.r = n.r;
              s.x = n.hit_attach;
              s.w = n.w;
              s.level = n.hit_prev;
              emit(s);
            }
            if (n.x != n.hit_junior) {
              Note j{};
              j.r = n.hit_junior;
              j.x = n.x;
              j.w = n.w;
              j.level = n.hit_level;
              emit(j);
            }
          } else if (n.x != n.r) {
            Note s{};
            s.r = n.r;
            s.x = n.x;
            s.w = n.w;
            s.level = n.hit_prev;
            emit(s);
          }
        });
    track_notes(fresh.size());
    notes = dedup_notes(mpc::concat(notes, std::move(fresh)));
  }
  MPCMST_ASSERT(notes.empty(), "alg7: unresolved notes remain");

  return TreeMcResult{std::move(mc_pool), stats};
}

}  // namespace

SensitivityResult mst_sensitivity_mpc(mpc::Engine& eng,
                                      const graph::Instance& inst) {
  // Observation 2.20 keeps both the tree-edge mc values and the non-tree
  // maxima unchanged under the ancestor-descendant transform.
  return mst_sensitivity_mpc(inst, verify::build_artifacts(eng, inst));
}

SensitivityResult mst_sensitivity_mpc(const graph::Instance& inst,
                                      const verify::Artifacts& art) {
  mpc::Engine& eng = art.tree.engine();
  const mpc::Dist<TreeRec>& dtree = art.tree;
  const mpc::Dist<treeops::IntervalRec>& intervals = art.intervals;
  const mpc::Dist<AdEdge>& halves = art.halves;
  const std::int64_t dhat = art.dhat;

  SensitivityResult out{mpc::Dist<TreeEdgeSens>(eng),
                        mpc::Dist<NonTreeEdgeSens>(eng),
                        {},
                        {}};

  // Non-tree sensitivity via the verification core (Observation 4.2).
  {
    const auto hv = verify::max_covered_weights(
        dtree, inst.tree.root, intervals, halves, dhat, &out.verify_core);
    auto combined = mpc::reduce_by_key<std::uint64_t, Weight>(
        hv,
        [](const verify::HalfVerdict& v) { return std::uint64_t(v.orig_id); },
        [](const verify::HalfVerdict& v) { return v.maxpath; },
        [](Weight a, Weight b) { return std::max(a, b); });
    mpc::Dist<NonTreeEdgeSens> rows = mpc::tabulate<NonTreeEdgeSens>(
        eng, inst.nontree.size(), [&](std::size_t i) {
          NonTreeEdgeSens r;
          r.orig_id = static_cast<std::int64_t>(i);
          r.w = inst.nontree[i].w;
          r.maxpath = kNegInfW;
          r.sens = nontree_sens(r.w, r.maxpath);  // covers nothing yet
          return r;
        });
    mpc::join_unique(
        rows, combined,
        [](const NonTreeEdgeSens& r) { return std::uint64_t(r.orig_id); },
        [](const auto& kv) { return kv.key; },
        [](NonTreeEdgeSens& r, const auto* kv) {
          if (kv == nullptr) return;
          r.maxpath = kv->val;
          r.sens = nontree_sens(r.w, r.maxpath);
        });
    out.nontree = std::move(rows);
  }

  // Tree-edge sensitivity via Algorithms 5-7 (Observation 4.3).
  {
    TreeMcResult mc = tree_edge_mc(dtree, inst.tree.root, art.depths,
                                   intervals, halves, dhat);
    out.stats = mc.stats;
    mpc::Dist<TreeEdgeSens> rows = mpc::flat_map<TreeEdgeSens>(
        dtree, [](const TreeRec& t, auto&& emit) {
          if (t.v == t.parent) return;  // the root has no parent edge
          TreeEdgeSens r;
          r.v = t.v;
          r.w = t.w;
          emit(r);
        });
    mpc::join_unique(
        rows, mc.mc, [](const TreeEdgeSens& r) { return std::uint64_t(r.v); },
        [](const McUpdate& u) { return std::uint64_t(u.child); },
        [](TreeEdgeSens& r, const McUpdate* u) {
          r.mc = u ? u->val : kPosInfW;
          r.sens = tree_sens(r.mc, r.w);
        });
    out.tree = std::move(rows);
  }
  return out;
}

}  // namespace mpcmst::sensitivity
