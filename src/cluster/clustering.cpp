#include "cluster/clustering.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "mpc/ops.hpp"

namespace mpcmst::cluster {

namespace {
/// Working record for planning one contraction step.
struct PlanRec {
  ClusterNode node;
  std::int64_t nchild = 0;
  bool proposes = false;
  bool parent_proposes = false;
};
}  // namespace

HierarchicalClustering::HierarchicalClustering(
    const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
    const mpc::Dist<treeops::IntervalRec>& intervals,
    std::int64_t initial_label)
    : eng_(&tree.engine()), root_(root), nodes_(tree.engine()) {
  nodes_ = mpc::map<ClusterNode>(tree, [&](const treeops::TreeRec& t) {
    ClusterNode c;
    c.leader = t.v;
    c.parent_leader = t.parent;  // singletons: the parent cluster is p(v)
    c.attach = t.parent;
    c.w_top = t.w;
    c.formed_at = 0;
    c.label = initial_label;
    return c;
  });
  mpc::join_unique(
      nodes_, intervals,
      [](const ClusterNode& c) { return std::uint64_t(c.leader); },
      [](const treeops::IntervalRec& iv) { return std::uint64_t(iv.v); },
      [](ClusterNode& c, const treeops::IntervalRec* iv) {
        MPCMST_ASSERT(iv != nullptr, "clustering: missing interval");
        c.lo = iv->lo;
        c.hi = iv->hi;
      });
  decay_.push_back(nodes_.size());
}

mpc::Dist<MergeRec> HierarchicalClustering::plan_step() {
  mpc::PhaseScope phase(*eng_, "contraction");
  const std::int64_t step = step_ + 1;

  // Child counts per cluster (root's self-edge excluded).
  mpc::Dist<PlanRec> plan = mpc::map<PlanRec>(nodes_, [](const ClusterNode& c) {
    return PlanRec{c, 0, false, false};
  });
  {
    auto counts = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
        nodes_,
        [](const ClusterNode& c) { return std::uint64_t(c.parent_leader); },
        [&](const ClusterNode& c) {
          return std::int64_t(c.leader != c.parent_leader);
        },
        std::plus<>{});
    mpc::join_unique(
        plan, counts,
        [](const PlanRec& p) { return std::uint64_t(p.node.leader); },
        [](const auto& kv) { return kv.key; },
        [](PlanRec& p, const auto* kv) { p.nchild = kv ? kv->val : 0; });
  }

  // Proposals: leaves always, chains on heads.
  const std::uint64_t seed = eng_->seed();
  mpc::for_each(plan, [&](PlanRec& p) {
    if (p.node.leader == p.node.parent_leader) return;  // root never proposes
    if (p.nchild == 0)
      p.proposes = true;
    else if (p.nchild == 1)
      p.proposes =
          coin(seed, std::uint64_t(step), std::uint64_t(p.node.leader));
  });

  // A proposal survives iff the parent does not propose (Definition 2.7:
  // no chained merges within one step).
  {
    const mpc::Dist<PlanRec> snapshot = plan.clone();
    mpc::join_unique(
        plan, snapshot,
        [](const PlanRec& p) { return std::uint64_t(p.node.parent_leader); },
        [](const PlanRec& p) { return std::uint64_t(p.node.leader); },
        [](PlanRec& p, const PlanRec* par) {
          MPCMST_ASSERT(par != nullptr, "clustering: missing parent cluster");
          p.parent_proposes = par->proposes;
        });
  }

  return mpc::flat_map<MergeRec>(plan, [&](const PlanRec& p, auto&& emit) {
    if (!p.proposes || p.parent_proposes) return;
    MergeRec m;
    m.step = step;
    m.junior = p.node.leader;
    m.senior = p.node.parent_leader;
    m.attach = p.node.attach;
    m.w_top = p.node.w_top;
    m.junior_formed_at = p.node.formed_at;
    m.senior_prev_formed_at = 0;  // filled in by apply_step from the senior
    m.jlo = p.node.lo;
    m.jhi = p.node.hi;
    m.junior_label = p.node.label;
    emit(m);
  });
}

void HierarchicalClustering::apply_step(const mpc::Dist<MergeRec>& merges,
                                        const LabelRule& rule) {
  mpc::PhaseScope phase(*eng_, "contraction");
  step_ += 1;

  // Fill senior_prev_formed_at (the senior's formed_at before this step).
  mpc::Dist<MergeRec> full = merges.clone();
  mpc::join_unique(
      full, nodes_, [](const MergeRec& m) { return std::uint64_t(m.senior); },
      [](const ClusterNode& c) { return std::uint64_t(c.leader); },
      [](MergeRec& m, const ClusterNode* c) {
        MPCMST_ASSERT(c != nullptr, "clustering: missing senior");
        m.senior_prev_formed_at = c->formed_at;
      });

  // Drop absorbed clusters.
  {
    mpc::Dist<ClusterNode> survivors = nodes_.clone();
    mpc::join_unique(
        survivors, full,
        [](const ClusterNode& c) { return std::uint64_t(c.leader); },
        [](const MergeRec& m) { return std::uint64_t(m.junior); },
        [](ClusterNode& c, const MergeRec* m) {
          if (m != nullptr) c.formed_at = -1;  // tombstone
        });
    nodes_ = mpc::filter(survivors,
                         [](const ClusterNode& c) { return c.formed_at >= 0; });
  }

  // Re-parent children of absorbed clusters and update their up-labels.
  mpc::join_unique(
      nodes_, full,
      [](const ClusterNode& c) { return std::uint64_t(c.parent_leader); },
      [](const MergeRec& m) { return std::uint64_t(m.junior); },
      [&](ClusterNode& c, const MergeRec* m) {
        if (m == nullptr) return;
        c.parent_leader = m->senior;
        c.label = rule(c.label, *m);
      });

  // Seniors that absorbed at least one junior were (re)formed at this step.
  {
    auto seniors = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
        full, [](const MergeRec& m) { return std::uint64_t(m.senior); },
        [](const MergeRec&) { return std::int64_t{1}; }, std::plus<>{});
    mpc::join_unique(
        nodes_, seniors,
        [](const ClusterNode& c) { return std::uint64_t(c.leader); },
        [](const auto& kv) { return kv.key; },
        [&](ClusterNode& c, const auto* kv) {
          if (kv != nullptr) c.formed_at = step_;
        });
  }

  history_.push_back(std::move(full));
  decay_.push_back(nodes_.size());
}

std::size_t HierarchicalClustering::step() {
  const mpc::Dist<MergeRec> merges = plan_step();
  const std::size_t count = merges.size();
  apply_step(merges, [](std::int64_t old_label, const MergeRec&) {
    return old_label;
  });
  return count;
}

mpc::Dist<treeops::VertexValue> assign_vertices_to_clusters(
    const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
    const mpc::Dist<treeops::DepthRec>& depths,
    const mpc::Dist<ClusterNode>& nodes) {
  // Value of vertex x: (depth(x) << 31 | x) if x is a cluster leader, else -1.
  // The root-path max is then the deepest leader above each vertex.
  struct Marked {
    Vertex v;
    std::int64_t depth;
    bool leader;
  };
  mpc::Dist<Marked> marked = mpc::map<Marked>(tree, [](const treeops::TreeRec&
                                                           t) {
    return Marked{t.v, 0, false};
  });
  mpc::join_unique(
      marked, depths, [](const Marked& m) { return std::uint64_t(m.v); },
      [](const treeops::DepthRec& d) { return std::uint64_t(d.v); },
      [](Marked& m, const treeops::DepthRec* d) {
        MPCMST_ASSERT(d != nullptr, "assign: missing depth");
        m.depth = d->depth;
      });
  mpc::join_unique(
      marked, nodes, [](const Marked& m) { return std::uint64_t(m.v); },
      [](const ClusterNode& c) { return std::uint64_t(c.leader); },
      [](Marked& m, const ClusterNode* c) { m.leader = c != nullptr; });

  mpc::Dist<treeops::VertexValue> vals = mpc::map<treeops::VertexValue>(
      marked, [](const Marked& m) {
        return treeops::VertexValue{
            m.v, m.leader ? ((m.depth << 31) | m.v) : std::int64_t{-1}};
      });
  auto acc = treeops::rootpath_accumulate(
      tree, root, vals,
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); },
      std::int64_t{-1});
  // The root itself is always a leader; a fold that saw no leader (only
  // possible for the root vertex, whose own value is replaced by the
  // identity) maps to the root cluster.
  return mpc::map<treeops::VertexValue>(
      acc.acc, [&](const treeops::VertexValue& x) {
        const Vertex leader =
            x.val < 0 ? root : static_cast<Vertex>(x.val & ((1LL << 31) - 1));
        return treeops::VertexValue{x.v, leader};
      });
}

std::size_t HierarchicalClustering::run_until(std::size_t target,
                                              const LabelRule& rule) {
  std::size_t steps = 0;
  const std::size_t floor = std::max<std::size_t>(target, 1);
  while (nodes_.size() > floor) {
    const mpc::Dist<MergeRec> merges = plan_step();
    apply_step(merges, rule);
    ++steps;
    MPCMST_ASSERT(steps <= 64 * 40,
                  "contraction fails to make progress (clusters="
                      << nodes_.size() << ", target=" << floor << ")");
  }
  return steps;
}

}  // namespace mpcmst::cluster
