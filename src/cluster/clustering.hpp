// Hierarchical clustering of a rooted tree (paper §2.1).
//
// Clusters are connected subgraphs of T identified by their *leader* (the
// root of the induced subtree, Definition 2.5).  A contraction step
// (Definition 2.7) merges a set of child clusters ("juniors") into their
// parents ("seniors") such that no two merges chain — realized here by
// rake-and-compress with deterministic per-step coins, our randomized
// substitute for the [CC23] derandomized Lemma 2.8 (DESIGN.md §2):
//   - a leaf cluster always proposes to merge into its parent;
//   - a chain cluster (exactly one child) proposes iff its coin is heads;
//   - a proposal is accepted iff the parent cluster does not itself propose.
// Every accepted proposal removes one cluster; in expectation a constant
// fraction of clusters disappears per step, so O(log D_T) steps reach
// n / poly(D_T) clusters (Corollary 3.6).
//
// The class exposes a two-phase step —
//     plan_step()  : compute the merge set from the current state;
//     apply_step() : mutate the cluster forest, updating each surviving
//                    child's up-label through a caller-provided rule;
// — because both the verification (θ of Definition 3.2) and sensitivity
// (Definition 4.5) maintenance must read the *pre-step* state while the
// merge set is known.  The merge history (one MergeRec per absorbed cluster,
// O(n) in total by Observation 2.10) is retained for the unwinding passes
// (Algorithm 2 / Algorithm 7).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/types.hpp"
#include "mpc/dist.hpp"
#include "treeops/doubling.hpp"
#include "treeops/interval_label.hpp"

namespace mpcmst::cluster {

using graph::Vertex;
using graph::Weight;

/// The contraction target n / D̂² (floor 1 is applied by the callers'
/// loops): how many clusters the §3/§4 cores contract down to before
/// switching to their per-cluster passes.  Shared by verification,
/// sensitivity and the all-edges LCA, which must agree on it.
inline std::size_t cluster_target(std::size_t n, std::int64_t dhat) {
  if (dhat <= 1) return n;
  const double dd = static_cast<double>(dhat) * static_cast<double>(dhat);
  return static_cast<std::size_t>(static_cast<double>(n) / dd);
}

/// One live cluster.  `label` is caller-defined state attached to the
/// cluster's up-edge (verification stores θ(this -> parent) there).
struct ClusterNode {
  Vertex leader = 0;          // cluster id == leader vertex
  Vertex parent_leader = 0;   // leader of the parent cluster (self iff root)
  Vertex attach = 0;          // p(leader) in T: where this cluster hangs off
  Weight w_top = 0;           // weight of the tree edge {leader, attach}
  std::int64_t formed_at = 0; // last step that merged juniors into this cluster
  std::int64_t lo = 0, hi = 0;  // DFS interval of the leader's subtree
  std::int64_t label = 0;     // caller-defined up-edge label
};

/// A junior cluster absorbed into its parent during `step`.
struct MergeRec {
  std::int64_t step = 0;
  Vertex junior = 0;                   // leader of the absorbed cluster
  Vertex senior = 0;                   // leader of the absorbing cluster
  Vertex attach = 0;                   // p(junior) in T, a vertex of the senior
  Weight w_top = 0;                    // weight of {junior, attach}
  std::int64_t junior_formed_at = 0;   // junior's formed_at at merge time
  std::int64_t senior_prev_formed_at = 0;
  std::int64_t jlo = 0, jhi = 0;       // junior leader's interval
  std::int64_t junior_label = 0;       // junior's up-edge label at merge time
};

/// Rule for updating the up-label of a surviving cluster x whose parent (the
/// junior `m`) was absorbed: returns the new label given x's old label.
/// Verification passes max(old, max(m.w_top, m.junior_label)) (Lemma 3.4);
/// passing through the old label keeps labels unused.
using LabelRule =
    std::function<std::int64_t(std::int64_t old_label, const MergeRec& m)>;

class HierarchicalClustering {
 public:
  /// Start from singleton clusters.  `intervals` must be the DFS interval
  /// labels of the same tree; `initial_label` seeds every up-edge label
  /// (verification: theta of an empty path = -infinity).
  HierarchicalClustering(const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
                         const mpc::Dist<treeops::IntervalRec>& intervals,
                         std::int64_t initial_label = 0);

  /// Compute this step's merge set from the current state (no mutation).
  mpc::Dist<MergeRec> plan_step();

  /// Apply a planned merge set: drop juniors, re-parent their children
  /// (updating labels via `rule`), bump seniors' formed_at, record history.
  void apply_step(const mpc::Dist<MergeRec>& merges, const LabelRule& rule);

  /// plan + apply with a pass-through label rule.
  std::size_t step();

  /// Contract until at most `target` clusters remain (or a single cluster).
  /// Returns the number of steps taken.
  std::size_t run_until(std::size_t target, const LabelRule& rule);

  std::size_t num_clusters() const { return nodes_.size(); }
  std::int64_t current_step() const { return step_; }
  const mpc::Dist<ClusterNode>& nodes() const { return nodes_; }
  Vertex root_cluster() const { return root_; }

  /// Merge history, one Dist per performed step (step i at index i-1).
  const std::vector<mpc::Dist<MergeRec>>& history() const { return history_; }

  /// Clusters remaining after each step (index 0 = before any step);
  /// feeds the contraction-decay experiment (E5).
  const std::vector<std::size_t>& decay() const { return decay_; }

 private:
  mpc::Engine* eng_;
  Vertex root_;
  std::int64_t step_ = 0;
  mpc::Dist<ClusterNode> nodes_;
  std::vector<mpc::Dist<MergeRec>> history_;
  std::vector<std::size_t> decay_;
};

/// Map every vertex to the leader of the final cluster containing it:
/// the deepest cluster leader on the vertex's root path (leaders are subtree
/// roots, so this is exactly cluster membership).  O(log D_T) rounds via a
/// (depth, id)-max root-path fold.
mpc::Dist<treeops::VertexValue> assign_vertices_to_clusters(
    const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
    const mpc::Dist<treeops::DepthRec>& depths,
    const mpc::Dist<ClusterNode>& nodes);

}  // namespace mpcmst::cluster
