// Batched MST re-verification against an existing sensitivity labeling
// (the paper's verification half, served incrementally).
//
// Question: given T with cached covering maxima (Observation 4.2) and a batch
// of k simultaneous weight changes, is T still an MST of the reweighted graph
// — and if not, which non-tree edges certify the violation?
//
// The cycle property (Definition 1.2) makes this local: T is an MST iff no
// non-tree edge is strictly lighter than the maximum tree-edge weight on the
// path it covers (ties keep T optimal).  A batch of k changes can only move
// an edge's verdict if it reweights the edge itself or a tree edge on its
// covered path — so re-verification is k O(1) covers() probes per non-tree
// edge plus a path re-walk for the few paths actually touched, never a
// rebuild.  That is exactly the verification-vs-recomputation gap of the
// distributed-verification literature (Kor–Korman–Peleg; Das Sarma et al.):
// checking a labeled answer is provably cheaper than recomputing it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "verify/verifier.hpp"

namespace mpcmst::verify {

/// One weight change of a batch, already resolved against the pre-batch
/// instance: a tree edge is keyed by its child endpoint, a non-tree edge by
/// its position in Instance::nontree (the EdgeRef convention of the service
/// index).  `new_w` is the absolute weight after the change.
struct ResolvedChange {
  bool is_tree = false;
  std::int64_t id = -1;  // child vertex (tree) or orig_id (non-tree)
  Weight new_w = 0;

  friend bool operator==(const ResolvedChange&, const ResolvedChange&) =
      default;
};

/// One violating edge: a non-tree edge strictly lighter (under the batch)
/// than the covering maximum of its tree path (under the batch).  The set of
/// certificates is exactly the violation set a fresh build on the reweighted
/// instance would report — the contract the service tests enforce.
struct ViolationCert {
  std::int64_t orig_id = -1;  // position in Instance::nontree
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 0;                       // effective weight under the batch
  Weight maxpath = graph::kNegInfW;   // effective covering maximum

  friend bool operator==(const ViolationCert&, const ViolationCert&) = default;
};

/// Certifies non-tree edges one at a time against a batch of resolved
/// changes, overlaying the batch on cached labels without mutating anything.
///
/// The topology and the base tree weights are borrowed views — the caller
/// (monolithic index or shard router) owns them and keeps them alive for the
/// certifier's lifetime.  Weight lookups go through `base_tree_w` so the
/// sharded tier can serve them from per-shard columns without assembling a
/// monolithic weight array.
///
/// Duplicate changes to one edge must be pre-collapsed (last write wins) by
/// the caller; the service's Query canonicalization does this.
class BatchCertifier {
 public:
  using TreeWeightFn = std::function<Weight(Vertex child)>;

  BatchCertifier(const TreeTopology& topo, TreeWeightFn base_tree_w,
                 const std::vector<ResolvedChange>& changes);

  /// Effective weight of tree edge {child, p(child)} under the batch.
  Weight tree_w(Vertex child) const;

  /// Effective weight of non-tree edge `orig_id` whose pre-batch weight is
  /// `base_w`.
  Weight nontree_w(std::int64_t orig_id, Weight base_w) const;

  /// Does any tree-edge change of the batch lie on the path u..v?
  /// O(#tree changes) covers() probes.
  bool path_touched(Vertex u, Vertex v) const;

  /// Covering maximum of the path u..v under the batch.  Untouched paths
  /// return the cached label verbatim; touched paths are re-walked with the
  /// overlay (path-length work, only for paths the batch actually crosses).
  Weight effective_maxpath(Vertex u, Vertex v, Weight cached_maxpath) const;

  /// Cycle-property verdict for one non-tree edge: a certificate iff its
  /// effective weight is strictly below its effective covering maximum
  /// (a tie keeps T optimal; self loops cover nothing and never violate).
  std::optional<ViolationCert> certify(std::int64_t orig_id, Vertex u, Vertex v,
                                       Weight base_w,
                                       Weight cached_maxpath) const;

  std::size_t num_tree_changes() const { return tree_over_.size(); }
  std::size_t num_nontree_changes() const { return nontree_over_.size(); }

 private:
  const TreeTopology* topo_ = nullptr;
  TreeWeightFn base_tree_w_;
  // Overlays, binary-searchable: (child, new_w) / (orig_id, new_w).
  std::vector<std::pair<Vertex, Weight>> tree_over_;
  std::vector<std::pair<std::int64_t, Weight>> nontree_over_;
};

}  // namespace mpcmst::verify
