// MST verification in O(log D_T) rounds with optimal global memory
// (paper §3, Theorem 3.1).
//
// Pipeline:
//   1. (optional) validate that T is a rooted spanning tree (Remark 2.2);
//   2. depths + height => D̂, the 2-approximate diameter (Remark 2.3);
//   3. DFS interval labels (Lemma 2.14);
//   4. all-edges LCA + ancestor-descendant transform (§2.2, Cor. 2.19);
//   5. hierarchical clustering to n/D̂² clusters while maintaining the
//      weight-preserving labeling (θ, ω) of Definition 3.2 (Lemmas 3.4/3.5);
//   6. collect cluster root paths with prefix maxima (Lemma 3.7) and evaluate
//      the covering maximum of every non-tree edge via Observation 3.3.
//
// T is an MST of G iff no non-tree edge is strictly lighter than the maximum
// tree-edge weight on the path it covers (cycle property; ties keep T
// optimal).  The per-edge maxima are returned because the sensitivity of
// non-tree edges is exactly w(e) - maxpath(e) (Observations 4.2/4.3).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/instance.hpp"
#include "lca/all_edges_lca.hpp"
#include "mpc/dist.hpp"
#include "mpc/engine.hpp"
#include "treeops/doubling.hpp"
#include "treeops/interval_label.hpp"

namespace mpcmst::verify {

using graph::Vertex;
using graph::Weight;

/// Reusable distributed artifacts of one instance: the loaded tree, depths
/// and 2-approximate diameter (Remark 2.3), DFS interval labels (Lemma 2.14),
/// and the ancestor-descendant halves of every non-tree edge (Cor. 2.19).
/// Steps 1-4 of the Theorem 3.1 pipeline are shared verbatim by verification
/// and sensitivity; building them once lets callers (and the service-layer
/// index build) run both consumers against a single prelude.
struct Artifacts {
  mpc::Dist<treeops::TreeRec> tree;
  treeops::DepthResult depths;
  std::int64_t dhat = 2;
  mpc::Dist<treeops::IntervalRec> intervals;
  mpc::Dist<lca::AdEdge> halves;
  std::size_t lca_contraction_steps = 0;
};

/// Steps 1-4: load the tree, compute depths / D̂ / interval labels, run the
/// all-edges LCA and split every non-tree edge into its halves.
Artifacts build_artifacts(mpc::Engine& eng, const graph::Instance& inst);

/// Host-side view of the prelude restricted to child vertices in [lo, hi):
/// the tree records one index shard consumes.  A range-restricted build
/// (service::ShardedSensitivityIndex) receives one slice per shard instead
/// of the full artifacts, mirroring the O(n^δ)-words-per-machine discipline
/// of the MPC layer: no participant of the sharded serving tier ever holds
/// more than its own range.
struct ArtifactSlice {
  Vertex lo = 0;
  Vertex hi = 0;  // exclusive
  std::vector<treeops::TreeRec> tree;  // children in [lo, hi)

  std::size_t words() const {
    return tree.size() * mpc::words_per<treeops::TreeRec>();
  }
};

/// Partition prebuilt artifacts into per-range slices in ONE pass: slice i
/// covers [starts[i], starts[i+1]) (so starts has one more entry than the
/// result, must be non-decreasing, and records outside the overall range are
/// dropped).  Ranges may be empty.
std::vector<ArtifactSlice> slice_artifacts(const Artifacts& art,
                                           const std::vector<Vertex>& starts);

/// Host-side topology view of one rooted tree — the path-repair primitive
/// shared by the index builds and the service's incremental update layer.
///
/// It answers the structural questions every path repair needs (which tree
/// edges lie on the path u..v?  does edge {c, p(c)} separate u from v?)
/// without caching any weights, so one view stays valid across arbitrary
/// reweights and is rebuilt only when the tree structure itself changes
/// (an edge swap).  Two ways in: straight from a RootedTree, or carved out
/// of prebuilt distributed Artifacts (parents, depths and DFS intervals are
/// already there — no second tree walk).
class TreeTopology {
 public:
  TreeTopology() = default;
  explicit TreeTopology(const graph::RootedTree& tree);

  /// Same view from the shared prelude of one distributed run.
  static TreeTopology from_artifacts(const Artifacts& art);

  std::size_t n() const { return parent_.size(); }
  Vertex root() const { return root_; }
  Vertex parent(Vertex v) const { return parent_[static_cast<std::size_t>(v)]; }
  std::int64_t depth(Vertex v) const {
    return depth_[static_cast<std::size_t>(v)];
  }

  /// Is `a` an ancestor of `b` (including a == b)?  DFS-interval containment.
  bool is_ancestor(Vertex a, Vertex b) const {
    return pre_[static_cast<std::size_t>(a)] <=
               pre_[static_cast<std::size_t>(b)] &&
           pre_[static_cast<std::size_t>(b)] <
               pre_[static_cast<std::size_t>(a)] +
                   size_[static_cast<std::size_t>(a)];
  }

  /// Lowest common ancestor by depth-aligned parent climbs (O(depth); the
  /// repair paths this primitive serves are path-length-bounded anyway).
  Vertex lca(Vertex u, Vertex v) const;

  /// Does the tree edge {child, p(child)} lie on the path u..v?
  /// Equivalently: does removing it separate u from v?
  bool covers(Vertex child, Vertex u, Vertex v) const {
    return is_ancestor(child, u) != is_ancestor(child, v);
  }

  /// Child endpoints of every tree edge on the path u..v (u-side climb
  /// first, then v-side; empty when u == v).
  std::vector<Vertex> path_children(Vertex u, Vertex v) const;

 private:
  Vertex root_ = 0;
  std::vector<Vertex> parent_;
  std::vector<std::int64_t> depth_;
  std::vector<std::int64_t> pre_, size_;
};

/// Per ancestor-descendant half-edge: the maximum tree-edge weight on the
/// covered path lo..hi.
struct HalfVerdict {
  Vertex lo = 0;
  Vertex hi = 0;
  Weight w = 0;
  std::int64_t orig_id = 0;
  Weight maxpath = graph::kNegInfW;
};

/// Meter details of one core run (for the experiment tables).
struct CoreStats {
  std::size_t contraction_steps = 0;
  std::size_t final_clusters = 0;
};

/// The Theorem 3.1 core: per-half covering maxima via clustering with a
/// weight-preserving labeling.  `halves` must be ancestor-descendant
/// (hi an ancestor of lo); `dhat` the 2-approximate diameter.
mpc::Dist<HalfVerdict> max_covered_weights(
    const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
    const mpc::Dist<treeops::IntervalRec>& intervals,
    const mpc::Dist<lca::AdEdge>& halves, std::int64_t dhat,
    CoreStats* stats = nullptr);

struct VerifyOptions {
  /// Validate the parent structure first (costs O(log n) rounds worst case;
  /// a non-tree input is reported instead of throwing).
  bool validate_input = false;
};

/// Per original non-tree edge: covering maximum over both halves.
struct EdgeVerdict {
  std::int64_t orig_id = 0;
  Weight w = 0;
  Weight maxpath = graph::kNegInfW;
};

struct VerifyResult {
  bool input_is_tree = true;   // false only with validate_input
  bool is_mst = false;
  std::size_t violations = 0;  // non-tree edges lighter than their path max
  CoreStats core;
  std::size_t lca_contraction_steps = 0;
  mpc::Dist<EdgeVerdict> verdicts;
};

/// Full MST verification of an instance (Theorem 3.1).
VerifyResult verify_mst_mpc(mpc::Engine& eng, const graph::Instance& inst,
                            const VerifyOptions& opts = {});

/// Verification steps 5-6 against prebuilt artifacts (no input validation:
/// the caller vouched for the tree when building the artifacts).
VerifyResult verify_mst_mpc(const graph::Instance& inst,
                            const Artifacts& art);

/// Combine per-half covering maxima into per-original-edge verdicts
/// (max over the two halves, Observation 2.20).
mpc::Dist<EdgeVerdict> combine_halves(const graph::Instance& inst,
                                      const mpc::Dist<HalfVerdict>& halves);

/// Fill violations / is_mst from per-edge verdicts.
void finalize_verdicts(VerifyResult& out, mpc::Dist<EdgeVerdict> verdicts);

}  // namespace mpcmst::verify
