#include "verify/still_mst.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mpcmst::verify {

BatchCertifier::BatchCertifier(const TreeTopology& topo,
                               TreeWeightFn base_tree_w,
                               const std::vector<ResolvedChange>& changes)
    : topo_(&topo), base_tree_w_(std::move(base_tree_w)) {
  for (const ResolvedChange& c : changes) {
    if (c.is_tree)
      tree_over_.emplace_back(static_cast<Vertex>(c.id), c.new_w);
    else
      nontree_over_.emplace_back(c.id, c.new_w);
  }
  std::sort(tree_over_.begin(), tree_over_.end());
  std::sort(nontree_over_.begin(), nontree_over_.end());
  for (std::size_t i = 1; i < tree_over_.size(); ++i)
    MPCMST_CHECK(tree_over_[i - 1].first != tree_over_[i].first,
                 "BatchCertifier: duplicate tree change (collapse first)");
  for (std::size_t i = 1; i < nontree_over_.size(); ++i)
    MPCMST_CHECK(nontree_over_[i - 1].first != nontree_over_[i].first,
                 "BatchCertifier: duplicate non-tree change (collapse first)");
}

Weight BatchCertifier::tree_w(Vertex child) const {
  const auto it = std::lower_bound(
      tree_over_.begin(), tree_over_.end(), child,
      [](const std::pair<Vertex, Weight>& p, Vertex c) { return p.first < c; });
  if (it != tree_over_.end() && it->first == child) return it->second;
  return base_tree_w_(child);
}

Weight BatchCertifier::nontree_w(std::int64_t orig_id, Weight base_w) const {
  const auto it = std::lower_bound(
      nontree_over_.begin(), nontree_over_.end(), orig_id,
      [](const std::pair<std::int64_t, Weight>& p, std::int64_t id) {
        return p.first < id;
      });
  if (it != nontree_over_.end() && it->first == orig_id) return it->second;
  return base_w;
}

bool BatchCertifier::path_touched(Vertex u, Vertex v) const {
  if (u == v) return false;
  for (const auto& [child, w] : tree_over_)
    if (topo_->covers(child, u, v)) return true;
  return false;
}

Weight BatchCertifier::effective_maxpath(Vertex u, Vertex v,
                                         Weight cached_maxpath) const {
  if (!path_touched(u, v)) return cached_maxpath;
  Weight best = graph::kNegInfW;
  for (Vertex child : topo_->path_children(u, v))
    best = std::max(best, tree_w(child));
  return best;
}

std::optional<ViolationCert> BatchCertifier::certify(
    std::int64_t orig_id, Vertex u, Vertex v, Weight base_w,
    Weight cached_maxpath) const {
  if (u == v) return std::nullopt;  // self loop: covers nothing
  const Weight w_eff = nontree_w(orig_id, base_w);
  const Weight mp_eff = effective_maxpath(u, v, cached_maxpath);
  if (w_eff >= mp_eff) return std::nullopt;  // ties keep T optimal
  return ViolationCert{orig_id, u, v, w_eff, mp_eff};
}

}  // namespace mpcmst::verify
