// Baseline MPC verifiers the paper's algorithm is evaluated against.
//
// All three compute the same per-edge covering maxima as the Theorem 3.1
// verifier, but with different round/memory profiles:
//
//   naive_verifier    — the §3-intro strawman: collect, for every vertex, its
//                       entire root path with prefix maxima.  O(log D_T)
//                       rounds but O(n * D_T) global memory — the blowup the
//                       paper's clustering exists to avoid.
//   lifting_verifier  — binary-lifting jump tables over the vertices:
//                       O(log D_T) rounds, O(n log D_T + m) memory — between
//                       the naive and the paper on the memory axis.
//   pram_verifier     — simulation of the classical PRAM approach: Euler tour
//                       + list ranking (Θ(log n) rounds regardless of D_T),
//                       then lifting queries.  The round baseline the paper's
//                       O(log D_T) bound is compared with ([CKT96]-style
//                       simulation, §1.3).
//
// Each returns the same VerifyResult shape as verify_mst_mpc; tests check
// all four agree edge-by-edge.
#pragma once

#include "graph/instance.hpp"
#include "mpc/engine.hpp"
#include "verify/verifier.hpp"

namespace mpcmst::verify {

VerifyResult naive_verifier(mpc::Engine& eng, const graph::Instance& inst);
VerifyResult lifting_verifier(mpc::Engine& eng, const graph::Instance& inst);
VerifyResult pram_verifier(mpc::Engine& eng, const graph::Instance& inst);

}  // namespace mpcmst::verify
