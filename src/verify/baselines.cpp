#include "verify/baselines.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"
#include "lca/all_edges_lca.hpp"
#include "mpc/ops.hpp"
#include "treeops/euler.hpp"

namespace mpcmst::verify {

namespace {

using graph::kNegInfW;
using treeops::DepthRec;
using treeops::TreeRec;

mpc::Dist<lca::IdEdge> load_nontree(mpc::Engine& eng,
                                    const graph::Instance& inst) {
  std::vector<lca::IdEdge> recs;
  recs.reserve(inst.nontree.size());
  for (std::size_t i = 0; i < inst.nontree.size(); ++i)
    recs.push_back({inst.nontree[i].u, inst.nontree[i].v, inst.nontree[i].w,
                    static_cast<std::int64_t>(i)});
  return mpc::scatter(eng, std::move(recs));
}

/// Binary-lifting jump table row: p^{2^level}(v) (clamped at the root) and
/// the max tree-edge weight on the climbed segment.
struct Jump {
  Vertex v;
  std::int64_t level;
  Vertex target;
  Weight maxw;
};

/// Build jump tables for levels 0..levels-1: O(levels) rounds,
/// O(n * levels) words — the memory the paper's clustering avoids.
mpc::Dist<Jump> build_jump_tables(const mpc::Dist<TreeRec>& tree,
                                  std::int64_t levels) {
  mpc::Dist<Jump> level0 = mpc::map<Jump>(tree, [](const TreeRec& t) {
    return Jump{t.v, 0, t.parent,
                t.v == t.parent ? kNegInfW : t.w};
  });
  mpc::Dist<Jump> all = level0.clone();
  mpc::Dist<Jump> cur = std::move(level0);
  for (std::int64_t lev = 1; lev < levels; ++lev) {
    mpc::Dist<Jump> next = cur.clone();
    mpc::join_unique(
        next, cur, [](const Jump& j) { return std::uint64_t(j.target); },
        [](const Jump& j) { return std::uint64_t(j.v); },
        [lev](Jump& j, const Jump* t) {
          MPCMST_ASSERT(t, "lifting: missing jump chain");
          j.level = lev;
          j.maxw = std::max(j.maxw, t->maxw);
          j.target = t->target;
        });
    mpc::append(all, next);
    cur = std::move(next);
  }
  return all;
}

/// Per-edge max tree-path weight by bilateral lifting climbs: equalize
/// depths, then descend both sides in lockstep until the jumps agree, then
/// take the final step to the LCA.  O(levels) rounds.
mpc::Dist<EdgeVerdict> lifting_maxpath(const mpc::Dist<TreeRec>& tree,
                                       const treeops::DepthResult& depths,
                                       const mpc::Dist<lca::IdEdge>& edges,
                                       std::int64_t levels) {
  const mpc::Dist<Jump> jumps = build_jump_tables(tree, levels);

  struct Climb {
    Vertex a, b;
    std::int64_t da, db;
    Weight w, maxw;
    std::int64_t orig_id;
    Vertex ta, tb;  // scratch: probed 2^lev ancestors
    Weight wa, wb;
  };
  mpc::Dist<Climb> st = mpc::map<Climb>(edges, [](const lca::IdEdge& e) {
    Climb c{};
    c.a = e.u;
    c.b = e.v;
    c.w = e.w;
    c.maxw = kNegInfW;
    c.orig_id = e.orig_id;
    return c;
  });
  auto fetch_depth = [&](auto key_field, auto set_field) {
    mpc::join_unique(
        st, depths.depth, key_field,
        [](const DepthRec& d) { return std::uint64_t(d.v); }, set_field);
  };
  fetch_depth([](const Climb& c) { return std::uint64_t(c.a); },
              [](Climb& c, const DepthRec* d) {
                MPCMST_ASSERT(d, "lifting: missing depth");
                c.da = d->depth;
              });
  fetch_depth([](const Climb& c) { return std::uint64_t(c.b); },
              [](Climb& c, const DepthRec* d) {
                MPCMST_ASSERT(d, "lifting: missing depth");
                c.db = d->depth;
              });
  mpc::for_each(st, [](Climb& c) {
    if (c.db > c.da) {
      std::swap(c.a, c.b);
      std::swap(c.da, c.db);
    }
  });

  const auto jump_key = [](Vertex v, std::int64_t lev) {
    return mpc::pack2(std::uint64_t(v), std::uint64_t(lev));
  };

  // Phase 1: equalize depths (climb a while deeper than b).
  for (std::int64_t lev = levels - 1; lev >= 0; --lev) {
    const std::int64_t span = std::int64_t{1} << lev;
    mpc::join_unique(
        st, jumps,
        [&](const Climb& c) {
          const bool take = c.a != c.b && c.da - span >= c.db;
          return take ? jump_key(c.a, lev) : (1ULL << 63);
        },
        [&](const Jump& j) { return jump_key(j.v, j.level); },
        [span](Climb& c, const Jump* j) {
          if (c.a == c.b || c.da - span < c.db) return;
          MPCMST_ASSERT(j, "lifting: missing equalize jump");
          c.maxw = std::max(c.maxw, j->maxw);
          c.a = j->target;
          c.da -= span;
        });
  }

  // Phase 2: joint descent while the probed ancestors differ.
  for (std::int64_t lev = levels - 1; lev >= 0; --lev) {
    const std::int64_t span = std::int64_t{1} << lev;
    mpc::for_each(st, [](Climb& c) { c.ta = c.tb = -1; });
    mpc::join_unique(
        st, jumps,
        [&](const Climb& c) {
          const bool probe = c.a != c.b && c.da - span >= 0;
          return probe ? jump_key(c.a, lev) : (1ULL << 63);
        },
        [&](const Jump& j) { return jump_key(j.v, j.level); },
        [](Climb& c, const Jump* j) {
          if (j) {
            c.ta = j->target;
            c.wa = j->maxw;
          }
        });
    mpc::join_unique(
        st, jumps,
        [&](const Climb& c) {
          const bool probe = c.a != c.b && c.da - span >= 0;
          return probe ? jump_key(c.b, lev) : (1ULL << 63);
        },
        [&](const Jump& j) { return jump_key(j.v, j.level); },
        [](Climb& c, const Jump* j) {
          if (j) {
            c.tb = j->target;
            c.wb = j->maxw;
          }
        });
    mpc::for_each(st, [span](Climb& c) {
      if (c.ta < 0 || c.tb < 0 || c.ta == c.tb) return;
      c.maxw = std::max({c.maxw, c.wa, c.wb});
      c.a = c.ta;
      c.b = c.tb;
      c.da -= span;
      c.db -= span;
    });
  }

  // Final step: a and b are now children of the LCA (or equal).
  for (int side = 0; side < 2; ++side) {
    mpc::join_unique(
        st, jumps,
        [&](const Climb& c) -> std::uint64_t {
          if (c.a == c.b) return (1ULL << 63);
          return jump_key(side == 0 ? c.a : c.b, 0);
        },
        [&](const Jump& j) { return jump_key(j.v, j.level); },
        [side](Climb& c, const Jump* j) {
          if (c.a == c.b) return;
          MPCMST_ASSERT(j, "lifting: missing final jump");
          c.maxw = std::max(c.maxw, j->maxw);
          if (side == 1) c.a = c.b = j->target;  // commit after both sides
        });
  }

  return mpc::map<EdgeVerdict>(st, [](const Climb& c) {
    return EdgeVerdict{c.orig_id, c.w, c.maxw};
  });
}

}  // namespace

VerifyResult naive_verifier(mpc::Engine& eng, const graph::Instance& inst) {
  mpc::PhaseScope phase(eng, "naive-verifier");
  VerifyResult out{true, false, 0, {}, 0, mpc::Dist<EdgeVerdict>(eng)};
  const auto dtree = treeops::load_tree(eng, inst.tree);
  const auto depths = treeops::compute_depths(dtree, inst.tree.root);
  const std::int64_t dhat = 2 * std::max<std::int64_t>(depths.height, 1);
  const auto labels =
      treeops::dfs_interval_labels(dtree, inst.tree.root, depths);
  auto dedges = load_nontree(eng, inst);
  const auto lcares = lca::all_edges_lca(dtree, inst.tree.root, depths,
                                         labels.intervals, dedges, dhat);
  const auto halves = lca::ancestor_descendant_transform(lcares);

  // Collect, for every vertex, its full root path with prefix maxima: the
  // O(n * D_T)-memory strawman of §3.
  struct PathEntry {
    Vertex v;
    Vertex anc;
    std::int64_t dist;
    Weight wmax;
  };
  mpc::Dist<PathEntry> entries = mpc::flat_map<PathEntry>(
      dtree, [](const TreeRec& t, auto&& emit) {
        if (t.v == t.parent) return;
        emit(PathEntry{t.v, t.parent, 1, t.w});
      });
  const Vertex root = inst.tree.root;
  std::size_t iters = 0;
  while (true) {
    std::unordered_map<Vertex, PathEntry> farthest;
    for (const PathEntry& e : entries.local()) {
      auto it = farthest.find(e.v);
      if (it == farthest.end() || e.dist > it->second.dist) farthest[e.v] = e;
    }
    bool any_open = false;
    for (const auto& [v, e] : farthest) any_open |= e.anc != root;
    if (!any_open) break;
    ++iters;
    MPCMST_ASSERT(iters <= 70, "naive path collection does not converge");
    eng.charge_sort(entries.words());
    std::unordered_map<Vertex, std::vector<const PathEntry*>> by_owner;
    for (const PathEntry& e : entries.local()) by_owner[e.v].push_back(&e);
    std::vector<PathEntry> fresh;
    for (const auto& [v, f] : farthest) {
      if (f.anc == root) continue;
      auto it = by_owner.find(f.anc);
      if (it == by_owner.end()) continue;
      for (const PathEntry* pe : it->second)
        fresh.push_back(
            {v, pe->anc, f.dist + pe->dist, std::max(f.wmax, pe->wmax)});
    }
    eng.charge_exchange(fresh.size() * mpc::words_per<PathEntry>());
    const mpc::Dist<PathEntry> fresh_d(eng, std::move(fresh));
    mpc::append(entries, fresh_d);
  }

  // Per half: the entry (lo, hi) holds max weight on the covered path.
  mpc::Dist<HalfVerdict> hv = mpc::map<HalfVerdict>(
      halves, [](const lca::AdEdge& e) {
        return HalfVerdict{e.lo, e.hi, e.w, e.orig_id, kNegInfW};
      });
  mpc::join_unique(
      hv, entries,
      [](const HalfVerdict& v) {
        return mpc::pack2(std::uint64_t(v.lo), std::uint64_t(v.hi));
      },
      [](const PathEntry& e) {
        return mpc::pack2(std::uint64_t(e.v), std::uint64_t(e.anc));
      },
      [](HalfVerdict& v, const PathEntry* e) {
        MPCMST_ASSERT(e, "naive: missing path entry");
        v.maxpath = e->wmax;
      });
  finalize_verdicts(out, combine_halves(inst, hv));
  return out;
}

VerifyResult lifting_verifier(mpc::Engine& eng, const graph::Instance& inst) {
  mpc::PhaseScope phase(eng, "lifting-verifier");
  VerifyResult out{true, false, 0, {}, 0, mpc::Dist<EdgeVerdict>(eng)};
  const auto dtree = treeops::load_tree(eng, inst.tree);
  const auto depths = treeops::compute_depths(dtree, inst.tree.root);
  std::int64_t levels = 1;
  while ((std::int64_t{1} << levels) < std::max<std::int64_t>(depths.height, 1))
    ++levels;
  auto dedges = load_nontree(eng, inst);
  finalize_verdicts(out, lifting_maxpath(dtree, depths, dedges, levels));
  return out;
}

VerifyResult pram_verifier(mpc::Engine& eng, const graph::Instance& inst) {
  mpc::PhaseScope phase(eng, "pram-verifier");
  VerifyResult out{true, false, 0, {}, 0, mpc::Dist<EdgeVerdict>(eng)};
  const auto dtree = treeops::load_tree(eng, inst.tree);
  // PRAM-simulation preprocessing: Euler tour + list ranking, Θ(log n)
  // rounds independent of the diameter (this is what the paper's O(log D_T)
  // beats on shallow trees).
  (void)treeops::euler_interval_labels(dtree, inst.tree.root, inst.n());
  const auto depths = treeops::compute_depths(dtree, inst.tree.root);
  // Diameter-oblivious: always ceil(log2 n) jump levels.
  std::int64_t levels = 1;
  while ((std::size_t{1} << levels) < std::max<std::size_t>(inst.n(), 2))
    ++levels;
  auto dedges = load_nontree(eng, inst);
  finalize_verdicts(out, lifting_maxpath(dtree, depths, dedges, levels));
  return out;
}

}  // namespace mpcmst::verify
