#include "verify/verifier.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/clustering.hpp"
#include "common/check.hpp"
#include "mpc/ops.hpp"
#include "mpc/superlevel.hpp"

namespace mpcmst::verify {

namespace {

using cluster::ClusterNode;
using cluster::HierarchicalClustering;
using cluster::MergeRec;
using graph::kNegInfW;
using lca::AdEdge;

/// Working record for one ancestor-descendant half through the contraction:
/// the ω labels of Definition 3.2 plus current endpoint clusters.
struct HalfState {
  Vertex lo, hi;
  Weight w;
  std::int64_t orig_id;
  Vertex clo, chi;      // clusters (leaders) currently containing lo / hi
  std::int64_t pre_lo;  // DFS number of lo, for path-membership stabbing
  Weight om_lo, om_hi;  // ω(lo->hi), ω(hi->lo)
  // Scratch for the per-step updates (rule B intermediates).
  Vertex hit_junior;
  Weight hit_wtop;
};

/// Root-path entry on the contracted cluster tree (Lemma 3.7), carrying the
/// prefix maxima needed by Observation 3.3.
struct PathEntry {
  Vertex c;            // owner cluster
  Vertex anc;          // ancestor cluster at distance dist
  std::int64_t dist;
  Weight incl;  // max θ(a_0..a_{dist-1}): labels of all crossed up-edges
  Weight excl;  // max θ(a_0..a_{dist-2}): same minus the topmost
  Weight wmax;  // max w_top(a_0..a_{dist-1}): all inter-cluster tree edges
};

/// The θ maintenance rule of Lemma 3.4: a surviving cluster x whose parent
/// (junior ci) merged into its grandparent extends its up-label by the
/// junior's bridge edge and the junior's own up-label.
std::int64_t theta_rule(std::int64_t old_label, const MergeRec& m) {
  return std::max(old_label,
                  std::max<std::int64_t>(m.w_top, m.junior_label));
}

}  // namespace

mpc::Dist<HalfVerdict> max_covered_weights(
    const mpc::Dist<treeops::TreeRec>& tree, Vertex root,
    const mpc::Dist<treeops::IntervalRec>& intervals,
    const mpc::Dist<lca::AdEdge>& halves, std::int64_t dhat,
    CoreStats* stats) {
  mpc::Engine& eng = tree.engine();
  mpc::PhaseScope phase(eng, "verify-core");
  const std::size_t n = tree.size();

  // --- edge state ---
  mpc::Dist<HalfState> state = mpc::map<HalfState>(halves, [](const AdEdge&
                                                                  e) {
    HalfState s{};
    s.lo = e.lo;
    s.hi = e.hi;
    s.w = e.w;
    s.orig_id = e.orig_id;
    s.clo = e.lo;  // singleton clusters initially
    s.chi = e.hi;
    s.om_lo = s.om_hi = kNegInfW;
    s.hit_junior = -1;
    return s;
  });
  mpc::join_unique(
      state, intervals, [](const HalfState& s) { return std::uint64_t(s.lo); },
      [](const treeops::IntervalRec& iv) { return std::uint64_t(iv.v); },
      [](HalfState& s, const treeops::IntervalRec* iv) {
        MPCMST_ASSERT(iv, "verify: missing interval of lo");
        s.pre_lo = iv->lo;
      });

  // --- contraction with (θ, ω) maintenance ---
  //
  // Superlevel fusion: the per-step rule updates (B's two stabbing joins,
  // A's and C's merge joins) commute across edges and touch nothing the
  // contraction itself reads, so the contraction runs first, recording one
  // compact lookup table per step, and a streaming replay afterwards applies
  // every step per edge.  The charge mirrors stay inside the loop at the
  // original call sites with the original operand sizes (the joins allocate
  // no Dists, so the peak is untouched); see mpc/superlevel.hpp.
  HierarchicalClustering hc(tree, root, intervals, kNegInfW);
  const std::size_t target = cluster::cluster_target(n, dhat);
  auto sl = eng.superlevel_scope("verify-core");

  struct StepChild {
    Vertex junior;
    std::int64_t lo, hi;
    Weight label;
  };
  // Per-cluster lookup row, packed so the replay sweep pays one cache line
  // per endpoint per step: as-senior slice of by_senior + as-junior merge.
  struct Slot {
    std::int32_t off = -1, cnt = 0;  // senior -> slice of by_senior
    std::int32_t merge = -1;         // junior -> its merge index
  };
  struct StepTab {
    std::vector<MergeRec> by_senior;  // sorted by (senior, jlo)
    std::vector<Slot> slot;           // cluster -> packed lookup row
    std::vector<StepChild> children;  // of dying juniors, (junior, lo)
    std::vector<std::int32_t> c_off, c_cnt;  // junior -> slice of children
  };
  std::vector<StepTab> tabs;

  std::size_t steps = 0;
  while (hc.num_clusters() > std::max<std::size_t>(target, 1)) {
    const mpc::Dist<MergeRec> merges = hc.plan_step();

    // Mirrors of rule B's stab_joins (vs merges, vs pre-step nodes) and the
    // rule A / rule C joins (both vs merges).
    sl.stab_join(state.words(), merges.words());
    sl.stab_join(state.words(), hc.nodes().words());
    sl.join_unique(state.words(), merges.words());
    sl.join_unique(state.words(), merges.words());

    tabs.emplace_back();
    StepTab& t = tabs.back();
    sl.sweep();  // merge table: stab intervals per senior + junior index
    t.by_senior.assign(merges.local().begin(), merges.local().end());
    std::sort(t.by_senior.begin(), t.by_senior.end(),
              [](const MergeRec& a, const MergeRec& b) {
                return a.senior != b.senior ? a.senior < b.senior
                                            : a.jlo < b.jlo;
              });
    t.slot.assign(n, Slot{});
    for (std::size_t i = 0; i < t.by_senior.size(); ++i) {
      const auto sen = static_cast<std::size_t>(t.by_senior[i].senior);
      if (t.slot[sen].off < 0) t.slot[sen].off = static_cast<std::int32_t>(i);
      ++t.slot[sen].cnt;
      t.slot[static_cast<std::size_t>(t.by_senior[i].junior)].merge =
          static_cast<std::int32_t>(i);
    }
    sl.sweep();  // children of this step's dying juniors (pre-step nodes)
    for (const ClusterNode& c : hc.nodes().local()) {
      const auto p = static_cast<std::size_t>(c.parent_leader);
      if (t.slot[p].merge >= 0)
        t.children.push_back(
            {c.parent_leader, c.lo, c.hi, static_cast<Weight>(c.label)});
    }
    std::sort(t.children.begin(), t.children.end(),
              [](const StepChild& a, const StepChild& b) {
                return a.junior != b.junior ? a.junior < b.junior
                                            : a.lo < b.lo;
              });
    t.c_off.assign(n, -1);
    t.c_cnt.assign(n, 0);
    for (std::size_t i = 0; i < t.children.size(); ++i) {
      const auto j = static_cast<std::size_t>(t.children[i].junior);
      if (t.c_off[j] < 0) t.c_off[j] = static_cast<std::int32_t>(i);
      ++t.c_cnt[j];
    }

    hc.apply_step(merges, theta_rule);
    ++steps;
    MPCMST_ASSERT(steps <= 64 * 40, "verification contraction stalls");
  }
  if (stats) {
    stats->contraction_steps = steps;
    stats->final_clusters = hc.num_clusters();
  }

  // Replay every contraction step per edge.  Step-major: one streaming pass
  // over the edges per recorded step, so the step's packed lookup table
  // (~n rows) stays cache-resident while the 10-word edge records stream —
  // the edge-major transposition pays two cache misses per edge per step on
  // the 13 tables' worth of rows.  Still zero charged rounds: the charges
  // were mirrored at the original per-step call sites above.
  for (const StepTab& t : tabs) {
    mpc::for_each(state, [&](HalfState& s) {
      s.hit_junior = -1;
      s.hit_wtop = kNegInfW;

      // Rule B (Lemma 3.4 case 3): a junior J (≠ clo) merges into the
      // cluster chi containing hi, and J lies on the covered path (its
      // leader's subtree contains pre_lo).  Extend ω(hi->lo) by J's bridge
      // edge and the θ of J's path-child.
      const Slot& slot_chi = t.slot[static_cast<std::size_t>(s.chi)];
      if (s.clo != s.chi) {
        if (slot_chi.off >= 0) {
          const MergeRec* lo = t.by_senior.data() + slot_chi.off;
          const MergeRec* hi = lo + slot_chi.cnt;
          const MergeRec* m = std::upper_bound(
              lo, hi, s.pre_lo, [](std::int64_t x, const MergeRec& r) {
                return x < r.jlo;
              });
          m = (m != lo && (m - 1)->jhi >= s.pre_lo) ? m - 1 : nullptr;
          if (m != nullptr && m->junior != s.clo) {  // clo: rule A below
            s.hit_junior = m->junior;
            s.hit_wtop = m->w_top;
          }
        }
      }
      if (s.hit_junior >= 0) {
        const auto j = static_cast<std::size_t>(s.hit_junior);
        const StepChild* lo =
            t.children.data() + (t.c_off[j] >= 0 ? t.c_off[j] : 0);
        const StepChild* hi = lo + (t.c_off[j] >= 0 ? t.c_cnt[j] : 0);
        const StepChild* x = std::upper_bound(
            lo, hi, s.pre_lo, [](std::int64_t v, const StepChild& c) {
              return v < c.lo;
            });
        x = (x != lo && (x - 1)->hi >= s.pre_lo) ? x - 1 : nullptr;
        MPCMST_ASSERT(x, "verify: missing path-child of merged junior");
        s.om_hi = std::max({s.om_hi, s.hit_wtop, x->label});
      }

      // Rule A (Lemma 3.4 cases 1/5): the cluster containing lo merges into
      // its parent.  If hi lives in the absorbing senior the halves' path
      // becomes internal (combine both ω); otherwise extend ω(lo->hi) by the
      // bridge edge and the junior's θ.
      const std::int32_t ma = t.slot[static_cast<std::size_t>(s.clo)].merge;
      if (ma >= 0) {
        const MergeRec& m = t.by_senior[static_cast<std::size_t>(ma)];
        if (s.clo == s.chi) {
          // Fully internal path: only the cluster id moves.
          s.clo = s.chi = m.senior;
        } else {
          if (s.chi == m.senior) {
            const Weight both =
                std::max({s.om_lo, static_cast<Weight>(m.w_top), s.om_hi});
            s.om_lo = s.om_hi = both;
          } else {
            s.om_lo = std::max({s.om_lo, static_cast<Weight>(m.w_top),
                                static_cast<Weight>(m.junior_label)});
          }
          s.clo = m.senior;
        }
      }

      // Rule C (Lemma 3.4 case 2): the cluster containing hi merges upward;
      // only the id moves.
      const std::int32_t mc = slot_chi.merge;
      if (mc >= 0) s.chi = t.by_senior[static_cast<std::size_t>(mc)].senior;
    });
  }

  // --- root-path collection with prefix maxima (Lemma 3.7) ---
  mpc::Dist<PathEntry> entries = mpc::flat_map<PathEntry>(
      hc.nodes(), [&](const ClusterNode& c, auto&& emit) {
        if (c.leader == c.parent_leader) return;  // root cluster
        emit(PathEntry{c.leader, c.parent_leader, 1,
                       static_cast<Weight>(c.label), kNegInfW,
                       c.w_top});
      });
  {
    const Vertex root_cluster = hc.root_cluster();
    std::size_t iters = 0;
    while (true) {
      // Farthest entry per cluster that has not yet reached the root.
      struct Far {
        Vertex c;
        PathEntry e;
      };
      std::unordered_map<Vertex, PathEntry> farthest;
      for (const PathEntry& e : entries.local()) {
        auto it = farthest.find(e.c);
        if (it == farthest.end() || e.dist > it->second.dist)
          farthest[e.c] = e;
      }
      bool any_open = false;
      for (const auto& [c, e] : farthest)
        any_open |= e.anc != root_cluster;
      if (!any_open) break;
      ++iters;
      MPCMST_ASSERT(iters <= 70, "path collection does not converge");
      // For every open cluster c with farthest entry (c -> a, d), append all
      // of a's entries: one sort-join round, output bounded by the final
      // path-entry count.  (reduce_by_key + one-to-many join in MPC terms.)
      eng.charge_sort(entries.words());
      std::unordered_map<Vertex, std::vector<const PathEntry*>> by_owner;
      for (const PathEntry& e : entries.local())
        by_owner[e.c].push_back(&e);
      std::vector<PathEntry> fresh;
      for (const auto& [c, f] : farthest) {
        if (f.anc == root_cluster) continue;
        auto it = by_owner.find(f.anc);
        if (it == by_owner.end()) continue;  // anc is the root cluster
        for (const PathEntry* pe : it->second) {
          PathEntry ne;
          ne.c = c;
          ne.anc = pe->anc;
          ne.dist = f.dist + pe->dist;
          ne.incl = std::max(f.incl, pe->incl);
          ne.excl = std::max(f.incl, pe->excl);
          ne.wmax = std::max(f.wmax, pe->wmax);
          fresh.push_back(ne);
        }
      }
      eng.charge_exchange(fresh.size() * mpc::words_per<PathEntry>());
      const mpc::Dist<PathEntry> fresh_d(eng, std::move(fresh));
      mpc::append(entries, fresh_d);
    }
  }

  // --- Observation 3.3: per-half covering maximum ---
  mpc::Dist<HalfVerdict> verdicts = mpc::map<HalfVerdict>(
      state, [](const HalfState& s) {
        HalfVerdict v;
        v.lo = s.lo;
        v.hi = s.hi;
        v.w = s.w;
        v.orig_id = s.orig_id;
        v.maxpath = std::max(s.om_lo, s.om_hi);
        return v;
      });
  // Cross-cluster halves additionally take the θ / w_top prefix maxima along
  // the cluster path from clo (exclusive of the topmost θ, Obs. 3.3).
  {
    // Re-key the verdict rows by (clo, chi) — carried via a parallel map.
    struct Query {
      std::uint64_t key;
      Weight add;
      bool cross;
    };
    mpc::Dist<Query> queries = mpc::map<Query>(state, [](const HalfState& s) {
      Query q;
      q.cross = s.clo != s.chi;
      q.key = q.cross ? mpc::pack2(std::uint64_t(s.clo), std::uint64_t(s.chi))
                      : 0;
      q.add = kNegInfW;
      return q;
    });
    mpc::join_unique(
        queries, entries,
        [](const Query& q) { return q.cross ? q.key : (1ULL << 63); },
        [](const PathEntry& e) {
          return mpc::pack2(std::uint64_t(e.c), std::uint64_t(e.anc));
        },
        [](Query& q, const PathEntry* e) {
          if (!q.cross) return;
          MPCMST_ASSERT(e, "verify: missing cluster path entry");
          q.add = std::max(e->excl, e->wmax);
        });
    verdicts = mpc::map2<HalfVerdict>(
        verdicts, queries, [](const HalfVerdict& v, const Query& q) {
          HalfVerdict out = v;
          if (q.cross) out.maxpath = std::max(out.maxpath, q.add);
          return out;
        });
  }
  return verdicts;
}

Artifacts build_artifacts(mpc::Engine& eng, const graph::Instance& inst) {
  auto dtree = treeops::load_tree(eng, inst.tree);
  auto depths = treeops::compute_depths(dtree, inst.tree.root);
  const std::int64_t dhat = 2 * std::max<std::int64_t>(depths.height, 1);
  auto labels = treeops::dfs_interval_labels(dtree, inst.tree.root, depths);

  // LCA + ancestor-descendant transform (Corollary 2.19).
  std::vector<lca::IdEdge> nontree;
  nontree.reserve(inst.nontree.size());
  for (std::size_t i = 0; i < inst.nontree.size(); ++i) {
    // Tombstoned slots (u == v, see service/update.hpp) cover nothing; the
    // sensitivity tabulation defaults their labels without a verdict row.
    if (inst.nontree[i].u == inst.nontree[i].v) continue;
    nontree.push_back({inst.nontree[i].u, inst.nontree[i].v,
                       inst.nontree[i].w, static_cast<std::int64_t>(i)});
  }
  auto dedges = mpc::scatter(eng, std::move(nontree));
  auto lcares = lca::all_edges_lca(dtree, inst.tree.root, depths,
                                   labels.intervals, dedges, dhat);
  auto halves = lca::ancestor_descendant_transform(lcares);
  return Artifacts{std::move(dtree),          std::move(depths), dhat,
                   std::move(labels.intervals), std::move(halves),
                   lcares.contraction_steps};
}

std::vector<ArtifactSlice> slice_artifacts(const Artifacts& art,
                                           const std::vector<Vertex>& starts) {
  MPCMST_ASSERT(starts.size() >= 2, "slice_artifacts: need >= 2 boundaries");
  MPCMST_ASSERT(std::is_sorted(starts.begin(), starts.end()),
                "slice_artifacts: boundaries must be non-decreasing");
  std::vector<ArtifactSlice> out(starts.size() - 1);
  for (std::size_t i = 0; i + 1 < starts.size(); ++i) {
    out[i].lo = starts[i];
    out[i].hi = starts[i + 1];
  }
  for (const treeops::TreeRec& r : art.tree.local()) {
    if (r.v < starts.front() || r.v >= starts.back()) continue;
    // Last range whose lo <= r.v; empty ranges ahead of it get nothing.
    const auto it = std::upper_bound(starts.begin(), starts.end(), r.v);
    out[static_cast<std::size_t>(it - starts.begin()) - 1].tree.push_back(r);
  }
  return out;
}

TreeTopology::TreeTopology(const graph::RootedTree& tree) {
  MPCMST_ASSERT(tree.well_formed(), "TreeTopology: input is not a tree");
  const std::size_t n = tree.n;
  root_ = tree.root;
  parent_ = tree.parent;
  depth_.assign(n, -1);
  pre_.assign(n, 0);
  size_.assign(n, 1);
  if (n == 0) return;
  depth_[static_cast<std::size_t>(root_)] = 0;
  // Depths by memoized parent climbs (no recursion: paths can be long).
  std::vector<Vertex> chain;
  for (std::size_t v = 0; v < n; ++v) {
    Vertex x = static_cast<Vertex>(v);
    chain.clear();
    while (depth_[static_cast<std::size_t>(x)] < 0) {
      chain.push_back(x);
      x = parent_[static_cast<std::size_t>(x)];
    }
    std::int64_t d = depth_[static_cast<std::size_t>(x)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it)
      depth_[static_cast<std::size_t>(*it)] = ++d;
  }
  // DFS intervals in the canonical order (children ascending by id).
  std::vector<std::vector<Vertex>> children(n);
  for (std::size_t v = 0; v < n; ++v)
    if (static_cast<Vertex>(v) != root_)
      children[static_cast<std::size_t>(parent_[v])].push_back(
          static_cast<Vertex>(v));
  std::int64_t clock = 0;
  std::vector<std::pair<Vertex, std::size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto& [v, next] = stack.back();
    if (next == 0) pre_[static_cast<std::size_t>(v)] = clock++;
    if (next < children[static_cast<std::size_t>(v)].size()) {
      stack.push_back({children[static_cast<std::size_t>(v)][next++], 0});
    } else {
      size_[static_cast<std::size_t>(v)] =
          clock - pre_[static_cast<std::size_t>(v)];
      stack.pop_back();
    }
  }
}

TreeTopology TreeTopology::from_artifacts(const Artifacts& art) {
  TreeTopology t;
  const std::size_t n = art.tree.local().size();
  t.parent_.assign(n, 0);
  t.depth_.assign(n, 0);
  t.pre_.assign(n, 0);
  t.size_.assign(n, 1);
  for (const treeops::TreeRec& r : art.tree.local()) {
    t.parent_[static_cast<std::size_t>(r.v)] = r.parent;
    if (r.v == r.parent) t.root_ = r.v;
  }
  for (const treeops::DepthRec& r : art.depths.depth.local())
    t.depth_[static_cast<std::size_t>(r.v)] = r.depth;
  // Interval labels are laminar, so containment of the entry point is
  // exactly subtree membership — the same is_ancestor the DFS pass yields.
  for (const treeops::IntervalRec& r : art.intervals.local()) {
    t.pre_[static_cast<std::size_t>(r.v)] = r.lo;
    t.size_[static_cast<std::size_t>(r.v)] = r.hi - r.lo + 1;
  }
  return t;
}

Vertex TreeTopology::lca(Vertex u, Vertex v) const {
  while (depth(u) > depth(v)) u = parent(u);
  while (depth(v) > depth(u)) v = parent(v);
  while (u != v) {
    u = parent(u);
    v = parent(v);
  }
  return u;
}

std::vector<Vertex> TreeTopology::path_children(Vertex u, Vertex v) const {
  std::vector<Vertex> out;
  const Vertex a = lca(u, v);
  for (Vertex x = u; x != a; x = parent(x)) out.push_back(x);
  for (Vertex x = v; x != a; x = parent(x)) out.push_back(x);
  return out;
}

VerifyResult verify_mst_mpc(mpc::Engine& eng, const graph::Instance& inst,
                            const VerifyOptions& opts) {
  if (opts.validate_input) {
    const auto dtree = treeops::load_tree(eng, inst.tree);
    if (!treeops::validate_rooted_tree(dtree, inst.tree.root, inst.n())) {
      VerifyResult out{false, false, 0, {}, 0, mpc::Dist<EdgeVerdict>(eng)};
      return out;  // not a spanning tree => not an MST
    }
  }
  return verify_mst_mpc(inst, build_artifacts(eng, inst));
}

VerifyResult verify_mst_mpc(const graph::Instance& inst,
                            const Artifacts& art) {
  mpc::Engine& eng = art.tree.engine();
  VerifyResult out{true, false, 0, {}, art.lca_contraction_steps,
                   mpc::Dist<EdgeVerdict>(eng)};
  const auto half_verdicts =
      max_covered_weights(art.tree, inst.tree.root, art.intervals, art.halves,
                          art.dhat, &out.core);
  finalize_verdicts(out, combine_halves(inst, half_verdicts));
  return out;
}

mpc::Dist<EdgeVerdict> combine_halves(const graph::Instance& inst,
                                      const mpc::Dist<HalfVerdict>& halves) {
  auto combined = mpc::reduce_by_key<std::uint64_t, Weight>(
      halves, [](const HalfVerdict& v) { return std::uint64_t(v.orig_id); },
      [](const HalfVerdict& v) { return v.maxpath; },
      [](Weight a, Weight b) { return std::max(a, b); });
  return mpc::map<EdgeVerdict>(combined, [&](const auto& kv) {
    EdgeVerdict v;
    v.orig_id = static_cast<std::int64_t>(kv.key);
    v.w = inst.nontree[v.orig_id].w;
    v.maxpath = kv.val;
    return v;
  });
}

void finalize_verdicts(VerifyResult& out, mpc::Dist<EdgeVerdict> verdicts) {
  out.violations = mpc::reduce(
      verdicts,
      [](const EdgeVerdict& v) { return std::int64_t(v.w < v.maxpath); },
      std::plus<>{}, std::int64_t{0});
  out.is_mst = out.violations == 0;
  out.verdicts = std::move(verdicts);
}

}  // namespace mpcmst::verify
