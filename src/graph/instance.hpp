// Problem instances: a rooted candidate tree T plus the non-tree edges of G.
//
// The paper's algorithms assume (Remark 2.2) that T is a rooted spanning tree
// given by parent pointers; unrooted input is supported through the Euler-tour
// rooting in treeops/euler.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace mpcmst::graph {

/// A rooted tree on vertices 0..n-1 with parent pointers and edge weights.
/// parent[root] == root and weight[root] == 0; weight[v] is the weight of the
/// tree edge {v, parent[v]}.
struct RootedTree {
  std::size_t n = 0;
  Vertex root = 0;
  std::vector<Vertex> parent;
  std::vector<Weight> weight;

  /// Sequentially verify the parent structure is a tree rooted at `root`
  /// (single root, in-range parents, acyclic).  Used by tests and input
  /// validation; the MPC-side check is treeops::validate_rooted_tree.
  bool well_formed() const;

  /// All n-1 tree edges as {child, parent, weight}.
  std::vector<WEdge> tree_edges() const;
};

/// A full input instance: candidate MST T and the remaining edges of G.
struct Instance {
  RootedTree tree;
  std::vector<WEdge> nontree;

  std::size_t n() const { return tree.n; }
  std::size_t m() const { return (tree.n ? tree.n - 1 : 0) + nontree.size(); }

  /// Input size in machine words (for MpcConfig::scaled and the
  /// linear-global-memory experiments): 3 words per edge + 2 per vertex.
  std::size_t input_words() const { return 3 * m() + 2 * n(); }
};

}  // namespace mpcmst::graph
