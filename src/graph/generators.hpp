// Workload generators for tests, examples and the benchmark sweeps.
//
// The evaluation sweeps diameter D_T at fixed n (the paper's round bounds
// depend on D_T only), so we provide tree families covering the whole
// spectrum: stars (D=2), k-ary trees (D ~ 2 log_k n), brooms/caterpillars
// (tunable), paths (D = n-1), plus random trees with a depth bound.
//
// Weight assignment distinguishes:
//   - MST-consistent instances (T is a genuine MST; verification says YES,
//     sensitivity is well-defined), and
//   - violated instances (a chosen number of non-tree edges undercut their
//     tree path; verification says NO).
#pragma once

#include <cstdint>
#include <optional>

#include "graph/instance.hpp"

namespace mpcmst::graph {

// --- tree shapes (unit weights; use the weight assigners below) ---
RootedTree path_tree(std::size_t n);
RootedTree star_tree(std::size_t n);
RootedTree kary_tree(std::size_t n, std::size_t k);
/// `spine` vertices in a path; remaining vertices attached to random spine
/// vertices as legs.
RootedTree caterpillar_tree(std::size_t n, std::size_t spine,
                            std::uint64_t seed);
/// A path of `handle` vertices whose last vertex fans out to all others.
RootedTree broom_tree(std::size_t n, std::size_t handle);
/// Random tree where every vertex picks a parent uniformly among vertices of
/// depth < max_depth; height <= max_depth.
RootedTree random_tree_depth_bounded(std::size_t n, std::size_t max_depth,
                                     std::uint64_t seed);
/// Random recursive tree (uniform parent among all previous vertices);
/// height ~ O(log n).
RootedTree random_recursive_tree(std::size_t n, std::uint64_t seed);

/// Apply a uniformly random relabeling of vertex ids (destroys any accidental
/// alignment between vertex ids and structure).
RootedTree relabel_random(const RootedTree& tree, std::uint64_t seed);

/// Random tree-edge weights in [lo, hi].
void assign_random_tree_weights(RootedTree& tree, Weight lo, Weight hi,
                                std::uint64_t seed);

/// Add `extra_edges` random non-tree edges whose weight is
/// maxpath(u,v) + delta with delta uniform in [0, slack] — so T is an MST
/// (delta = 0 creates ties, exercising the tie conventions).
/// Uses binary-lifting path maxima; fine up to a few million vertices.
Instance make_mst_instance(RootedTree tree, std::size_t extra_edges,
                           std::uint64_t seed, Weight slack = 8);

/// Add `extra_edges` random non-tree edges with weights uniform in [lo, hi]
/// (T typically not an MST).
Instance make_random_instance(RootedTree tree, std::size_t extra_edges,
                              std::uint64_t seed, Weight lo, Weight hi);

/// Large-scale MST instance without per-edge path-max queries: tree weights
/// in [1, band], non-tree weights in [band+1, 2*band] (T trivially an MST,
/// but mc / maxpath values still vary).
Instance make_layered_instance(RootedTree tree, std::size_t extra_edges,
                               std::uint64_t seed, Weight band = 1000000);

/// Lower `count` random non-tree edges strictly below their tree-path maximum
/// (turning a YES instance into a NO instance).  Returns how many edges were
/// actually lowered (an edge whose path max is minimal already may be
/// unloverable and is skipped).
std::size_t inject_violations(Instance& inst, std::size_t count,
                              std::uint64_t seed);

}  // namespace mpcmst::graph
