#include "graph/instance.hpp"

namespace mpcmst::graph {

bool RootedTree::well_formed() const {
  if (parent.size() != n || weight.size() != n) return false;
  if (n == 0) return true;
  if (root < 0 || static_cast<std::size_t>(root) >= n) return false;
  if (parent[root] != root || weight[root] != 0) return false;
  for (std::size_t v = 0; v < n; ++v) {
    if (parent[v] < 0 || static_cast<std::size_t>(parent[v]) >= n) return false;
    if (static_cast<Vertex>(v) != root && parent[v] == static_cast<Vertex>(v))
      return false;
  }
  // Acyclicity: every vertex must reach the root. Mark along the way so the
  // whole check is O(n).
  std::vector<signed char> state(n, 0);  // 0 unknown, 1 ok, 2 in progress
  state[root] = 1;
  std::vector<Vertex> stack;
  for (std::size_t v0 = 0; v0 < n; ++v0) {
    Vertex v = static_cast<Vertex>(v0);
    stack.clear();
    while (state[v] == 0) {
      state[v] = 2;
      stack.push_back(v);
      v = parent[v];
    }
    if (state[v] == 2) return false;  // cycle
    for (Vertex x : stack) state[x] = 1;
  }
  return true;
}

std::vector<WEdge> RootedTree::tree_edges() const {
  std::vector<WEdge> out;
  out.reserve(n ? n - 1 : 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<Vertex>(v) == root) continue;
    out.push_back({static_cast<Vertex>(v), parent[v], weight[v]});
  }
  return out;
}

}  // namespace mpcmst::graph
