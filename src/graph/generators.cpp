#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "common/check.hpp"
#include "seq/oracles.hpp"

namespace mpcmst::graph {

namespace {
std::mt19937_64 make_rng(std::uint64_t seed) { return std::mt19937_64(seed); }

RootedTree tree_with_unit_weights(std::size_t n) {
  RootedTree t;
  t.n = n;
  t.root = 0;
  t.parent.assign(n, 0);
  t.weight.assign(n, 1);
  if (n) t.weight[0] = 0;
  return t;
}
}  // namespace

RootedTree path_tree(std::size_t n) {
  RootedTree t = tree_with_unit_weights(n);
  for (std::size_t v = 1; v < n; ++v) t.parent[v] = static_cast<Vertex>(v - 1);
  return t;
}

RootedTree star_tree(std::size_t n) {
  return tree_with_unit_weights(n);  // all parents are vertex 0
}

RootedTree kary_tree(std::size_t n, std::size_t k) {
  MPCMST_CHECK(k >= 2, "kary_tree requires k >= 2");
  RootedTree t = tree_with_unit_weights(n);
  for (std::size_t v = 1; v < n; ++v)
    t.parent[v] = static_cast<Vertex>((v - 1) / k);
  return t;
}

RootedTree caterpillar_tree(std::size_t n, std::size_t spine,
                            std::uint64_t seed) {
  MPCMST_CHECK(spine >= 1 && spine <= n, "caterpillar spine out of range");
  RootedTree t = tree_with_unit_weights(n);
  auto rng = make_rng(seed);
  for (std::size_t v = 1; v < spine; ++v)
    t.parent[v] = static_cast<Vertex>(v - 1);
  std::uniform_int_distribution<std::size_t> pick(0, spine - 1);
  for (std::size_t v = spine; v < n; ++v)
    t.parent[v] = static_cast<Vertex>(pick(rng));
  return t;
}

RootedTree broom_tree(std::size_t n, std::size_t handle) {
  MPCMST_CHECK(handle >= 1 && handle <= n, "broom handle out of range");
  RootedTree t = tree_with_unit_weights(n);
  for (std::size_t v = 1; v < handle; ++v)
    t.parent[v] = static_cast<Vertex>(v - 1);
  for (std::size_t v = handle; v < n; ++v)
    t.parent[v] = static_cast<Vertex>(handle - 1);
  return t;
}

RootedTree random_tree_depth_bounded(std::size_t n, std::size_t max_depth,
                                     std::uint64_t seed) {
  MPCMST_CHECK(max_depth >= 1, "max_depth must be >= 1");
  RootedTree t = tree_with_unit_weights(n);
  auto rng = make_rng(seed);
  std::vector<std::size_t> depth(n, 0);
  // Candidates: vertices with depth < max_depth (kept as a growing pool).
  std::vector<Vertex> pool{0};
  for (std::size_t v = 1; v < n; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    const Vertex p = pool[pick(rng)];
    t.parent[v] = p;
    depth[v] = depth[p] + 1;
    if (depth[v] < max_depth) pool.push_back(static_cast<Vertex>(v));
  }
  return t;
}

RootedTree random_recursive_tree(std::size_t n, std::uint64_t seed) {
  RootedTree t = tree_with_unit_weights(n);
  auto rng = make_rng(seed);
  for (std::size_t v = 1; v < n; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, v - 1);
    t.parent[v] = static_cast<Vertex>(pick(rng));
  }
  return t;
}

RootedTree relabel_random(const RootedTree& tree, std::uint64_t seed) {
  const std::size_t n = tree.n;
  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), Vertex{0});
  auto rng = make_rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  RootedTree out;
  out.n = n;
  out.root = n ? perm[tree.root] : 0;
  out.parent.assign(n, 0);
  out.weight.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    out.parent[perm[v]] = perm[tree.parent[v]];
    out.weight[perm[v]] = tree.weight[v];
  }
  return out;
}

void assign_random_tree_weights(RootedTree& tree, Weight lo, Weight hi,
                                std::uint64_t seed) {
  MPCMST_CHECK(lo <= hi, "weight range inverted");
  auto rng = make_rng(seed);
  std::uniform_int_distribution<Weight> w(lo, hi);
  for (std::size_t v = 0; v < tree.n; ++v)
    tree.weight[v] = static_cast<Vertex>(v) == tree.root ? 0 : w(rng);
}

namespace {
/// Random distinct endpoints (u != v).
std::pair<Vertex, Vertex> random_pair(std::mt19937_64& rng, std::size_t n) {
  std::uniform_int_distribution<Vertex> pick(0, static_cast<Vertex>(n - 1));
  Vertex u = pick(rng);
  Vertex v = pick(rng);
  while (v == u) v = pick(rng);
  return {u, v};
}
}  // namespace

Instance make_mst_instance(RootedTree tree, std::size_t extra_edges,
                           std::uint64_t seed, Weight slack) {
  MPCMST_CHECK(tree.n >= 2 || extra_edges == 0,
               "need at least 2 vertices for non-tree edges");
  Instance inst;
  inst.tree = std::move(tree);
  if (extra_edges == 0) return inst;
  const seq::SeqTreeIndex index(inst.tree);
  auto rng = make_rng(seed);
  std::uniform_int_distribution<Weight> delta(0, slack);
  inst.nontree.reserve(extra_edges);
  for (std::size_t i = 0; i < extra_edges; ++i) {
    auto [u, v] = random_pair(rng, inst.n());
    const Weight base = index.max_on_path(u, v);
    inst.nontree.push_back({u, v, base + delta(rng)});
  }
  return inst;
}

Instance make_random_instance(RootedTree tree, std::size_t extra_edges,
                              std::uint64_t seed, Weight lo, Weight hi) {
  MPCMST_CHECK(lo <= hi, "weight range inverted");
  Instance inst;
  inst.tree = std::move(tree);
  auto rng = make_rng(seed);
  std::uniform_int_distribution<Weight> w(lo, hi);
  inst.nontree.reserve(extra_edges);
  for (std::size_t i = 0; i < extra_edges; ++i) {
    auto [u, v] = random_pair(rng, inst.n());
    inst.nontree.push_back({u, v, w(rng)});
  }
  return inst;
}

Instance make_layered_instance(RootedTree tree, std::size_t extra_edges,
                               std::uint64_t seed, Weight band) {
  Instance inst;
  inst.tree = std::move(tree);
  auto rng = make_rng(seed);
  std::uniform_int_distribution<Weight> tw(1, band);
  for (std::size_t v = 0; v < inst.n(); ++v)
    inst.tree.weight[v] =
        static_cast<Vertex>(v) == inst.tree.root ? 0 : tw(rng);
  std::uniform_int_distribution<Weight> nw(band + 1, 2 * band);
  inst.nontree.reserve(extra_edges);
  for (std::size_t i = 0; i < extra_edges; ++i) {
    auto [u, v] = random_pair(rng, inst.n());
    inst.nontree.push_back({u, v, nw(rng)});
  }
  return inst;
}

std::size_t inject_violations(Instance& inst, std::size_t count,
                              std::uint64_t seed) {
  if (inst.nontree.empty() || count == 0) return 0;
  const seq::SeqTreeIndex index(inst.tree);
  auto rng = make_rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, inst.nontree.size() - 1);
  std::size_t injected = 0;
  for (std::size_t attempts = 0; attempts < 16 * count && injected < count;
       ++attempts) {
    WEdge& e = inst.nontree[pick(rng)];
    const Weight maxw = index.max_on_path(e.u, e.v);
    if (e.w < maxw) {
      ++injected;  // already violating
      continue;
    }
    if (maxw == kNegInfW) continue;
    e.w = maxw - 1;
    ++injected;
  }
  return injected;
}

}  // namespace mpcmst::graph
