// Basic graph value types shared by every module.
#pragma once

#include <cstdint>

namespace mpcmst::graph {

using Vertex = std::int64_t;
using Weight = std::int64_t;

/// Sentinels: comfortably away from overflow when added/compared.
inline constexpr Weight kPosInfW = (INT64_C(1) << 60);
inline constexpr Weight kNegInfW = -(INT64_C(1) << 60);

/// An undirected weighted edge.
struct WEdge {
  Vertex u = 0;
  Vertex v = 0;
  Weight w = 0;

  friend bool operator==(const WEdge&, const WEdge&) = default;
};

}  // namespace mpcmst::graph
