// Round and memory meters for the simulated MPC.
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace mpcmst::mpc {

struct Stats {
  /// Communication rounds charged so far (the paper's complexity measure).
  std::size_t rounds = 0;

  /// Total words moved between machines across all rounds.
  std::size_t words_communicated = 0;

  /// Currently live words across all distributed arrays.
  std::size_t live_words = 0;

  /// Peak of live_words over the run: the measured global memory g.
  std::size_t peak_global_words = 0;

  /// Primitive invocation counters (for the cost-breakdown experiments).
  std::size_t sorts = 0;
  std::size_t exchanges = 0;
  std::size_t collectives = 0;

  /// Physical element sweeps the *simulator* performed: one per traversal of
  /// a record array by a primitive's realization (a sort counts as one sweep;
  /// internal radix sub-passes are excluded).  This is NOT a model quantity —
  /// charged `rounds` above is the paper's complexity measure.  Superlevel
  /// fusion (mpc/superlevel.hpp) drives physical_passes down while keeping
  /// rounds/words/peak byte-identical; the ratio rounds/physical_passes is
  /// the fusion win.
  std::size_t physical_passes = 0;

  /// Rounds attributed to named phases (PhaseScope).
  std::map<std::string, std::size_t> phase_rounds;
};

}  // namespace mpcmst::mpc
