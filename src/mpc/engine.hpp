// The MPC round/memory accounting engine.
//
// All distributed primitives (mpc/ops.hpp) charge their round and
// communication costs here, using the standard low-space MPC cost model:
//   - an all-to-all exchange where every machine sends and receives at most
//     s words is 1 round;
//   - collectives (reduce / broadcast / scan offsets) run over an aggregation
//     tree of fan-in f = Theta(s), i.e. ceil(log_f M) rounds per direction;
//   - a distributed sample sort is 2 * ceil(log_f M) + 1 rounds
//     (gather samples, broadcast splitters, partition exchange);
// Local computation is free, exactly as in the model.
//
// Memory accounting: every Dist<T> registers its live words; the engine
// tracks the peak (the measured global memory g) and enforces the per-machine
// balanced-block capacity s and the optional global budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "mpc/config.hpp"
#include "mpc/stats.hpp"

namespace mpcmst::mpc {

class Engine {
 public:
  explicit Engine(MpcConfig cfg);

  const MpcConfig& config() const noexcept { return cfg_; }
  const Stats& stats() const noexcept { return stats_; }
  std::size_t machines() const noexcept { return cfg_.machines; }
  std::size_t capacity() const noexcept { return cfg_.local_capacity; }
  std::size_t rounds() const noexcept { return stats_.rounds; }
  std::uint64_t seed() const noexcept { return cfg_.seed; }

  /// Depth of an aggregation tree moving items of `item_words` words with
  /// per-machine capacity s: ceil(log_f M) with fan-in f = max(2, s / item).
  std::size_t collective_depth(std::size_t item_words = 8) const;

  // --- cost charging (called by the primitives) ---
  void charge_exchange(std::size_t total_words);
  void charge_collective(std::size_t total_words, std::size_t item_words = 8);
  void charge_sort(std::size_t total_words);
  void charge_rounds(std::size_t rounds, std::size_t words = 0);

  /// Record `n` physical element sweeps (Stats::physical_passes).  Purely
  /// observational — charges nothing in the model.
  void note_pass(std::size_t n = 1) noexcept { stats_.physical_passes += n; }

  /// Open a fused-pass scope: execute several logical levels in one
  /// arena-resident sweep while mirroring the unfused loop's charges
  /// byte-identically (see mpc/superlevel.hpp for the full contract).
  class SuperlevelScope superlevel_scope(const char* what);

  // --- memory accounting (called by Dist<T>) ---
  void note_alloc(std::size_t words);
  void note_free(std::size_t words) noexcept;

  /// Reusable scratch buffers for the primitives' radix sorts and merges
  /// (simulator-internal: leased words are not model memory and are never
  /// charged).  One arena per engine — the simulator is single-threaded per
  /// engine, so primitives can lease without synchronization.
  ScratchArena& scratch() noexcept { return scratch_; }

  /// Check that `total_words` spread over machines in balanced blocks fits in
  /// local capacity (with the configured slack).
  void check_balanced(std::size_t total_words) const;

  // --- phase attribution ---
  // Besides charged-rounds attribution (Stats::phase_rounds), each phase is
  // clocked in wall time: pop emits a TraceScope-style event into the
  // process TraceBuffer and a sample into the per-phase
  // mpcmst_build_phase_seconds histogram, so every existing PhaseScope in
  // the pipeline doubles as a real-time span for free.
  void push_phase(std::string name);
  void pop_phase();

  /// Zero the meters (rounds, words, peak, counters, phases). Live-word
  /// tracking is preserved. Used by benchmarks to meter a single stage.
  void reset_meters();

 private:
  MpcConfig cfg_;
  Stats stats_;
  std::vector<std::string> phase_stack_;
  std::vector<std::uint64_t> phase_start_ns_;  // parallel to phase_stack_
  ScratchArena scratch_;
};

/// RAII phase label: rounds charged while alive are attributed to `name`.
class PhaseScope {
 public:
  PhaseScope(Engine& eng, std::string name) : eng_(&eng) {
    eng_->push_phase(std::move(name));
  }
  ~PhaseScope() { eng_->pop_phase(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Engine* eng_;
};

/// Measures rounds spent between construction and delta().
class RoundMeter {
 public:
  explicit RoundMeter(const Engine& eng)
      : eng_(&eng), start_(eng.rounds()) {}
  std::size_t delta() const { return eng_->rounds() - start_; }

 private:
  const Engine* eng_;
  std::size_t start_;
};

}  // namespace mpcmst::mpc
