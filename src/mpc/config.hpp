// MPC machine model configuration (Karloff–Suri–Vassilvitskii / low-space MPC).
//
// The simulated system has `machines` machines, each with `local_capacity`
// words of memory (the paper's s = O(n^delta)).  Global memory is
// machines * local_capacity (the paper's g; "optimal utilization" means
// g = Theta(m + n)).  Rounds and memory are *accounted*, local computation is
// free, exactly as in the model.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace mpcmst::mpc {

struct MpcConfig {
  /// Number of machines (m in the paper's model description).
  std::size_t machines = 64;

  /// Local memory per machine in words (s = O(n^delta)).
  std::size_t local_capacity = 4096;

  /// Transient per-machine skew allowed before a balanced block is considered
  /// a capacity violation.  Sample sort and joins produce bounded skew; the
  /// model hides it in constants, we make the constant explicit.
  double block_slack = 4.0;

  /// If true, exceeding block_slack * local_capacity words on a machine
  /// throws ModelError.
  bool enforce_local = true;

  /// If > 0, peak live global memory above global_budget_words throws.
  /// The linear-global-memory experiments set this to C * (m + n) words and
  /// prove "optimal utilization" by not throwing.
  std::size_t global_budget_words = 0;

  /// Seed for all symmetry-breaking coins (contraction steps).
  std::uint64_t seed = 0x5eedULL;

  /// Build a configuration scaled for an input of `input_words` words with
  /// local space s ~ input_words^delta, and a global budget of
  /// budget_factor * input_words (set budget_factor = 0 for unlimited).
  static MpcConfig scaled(std::size_t input_words, double delta = 0.5,
                          double budget_factor = 0.0,
                          std::uint64_t seed = 0x5eedULL) {
    MpcConfig cfg;
    const double nw = static_cast<double>(input_words < 16 ? 16 : input_words);
    cfg.local_capacity =
        static_cast<std::size_t>(std::ceil(std::pow(nw, delta)));
    if (cfg.local_capacity < 64) cfg.local_capacity = 64;
    // Enough machines that the budget fits; at least 2 to make communication
    // meaningful.
    const double budget =
        budget_factor > 0.0 ? budget_factor * nw : 64.0 * nw;
    cfg.machines = static_cast<std::size_t>(
        std::ceil(budget / static_cast<double>(cfg.local_capacity)));
    if (cfg.machines < 2) cfg.machines = 2;
    if (budget_factor > 0.0)
      cfg.global_budget_words = static_cast<std::size_t>(budget);
    cfg.seed = seed;
    return cfg;
  }
};

}  // namespace mpcmst::mpc
