#include "mpc/engine.hpp"

#include <algorithm>
#include <cmath>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace mpcmst::mpc {

namespace {

/// The simulator's primitives allocate and free multi-megabyte Dist buffers
/// thousands of times per pipeline run.  glibc serves such blocks via
/// mmap/munmap by default, so every round re-faults its pages in; raising
/// the mmap threshold keeps the blocks on the heap free lists (measured
/// ~15% off the n=100k build wall).  Done once, process-wide — a no-op on
/// non-glibc platforms.
void tune_allocator_once() {
#if defined(__GLIBC__)
  static const bool done = [] {
    mallopt(M_MMAP_THRESHOLD, 256 << 20);
    return true;
  }();
  (void)done;
#endif
}

}  // namespace

Engine::Engine(MpcConfig cfg) : cfg_(cfg) {
  tune_allocator_once();
  MPCMST_CHECK(cfg_.machines >= 2, "need at least 2 machines");
  MPCMST_CHECK(cfg_.local_capacity >= 16, "local capacity unreasonably small");
}

std::size_t Engine::collective_depth(std::size_t item_words) const {
  if (item_words == 0) item_words = 1;
  const std::size_t fan_in =
      std::max<std::size_t>(2, cfg_.local_capacity / item_words);
  std::size_t depth = 0;
  std::size_t reach = 1;
  while (reach < cfg_.machines) {
    reach *= fan_in;
    ++depth;
    if (depth > 64) break;  // unreachable in practice
  }
  return std::max<std::size_t>(depth, 1);
}

void Engine::charge_exchange(std::size_t total_words) {
  ++stats_.exchanges;
  charge_rounds(1, total_words);
}

void Engine::charge_collective(std::size_t total_words,
                               std::size_t item_words) {
  ++stats_.collectives;
  charge_rounds(collective_depth(item_words), total_words);
}

void Engine::charge_sort(std::size_t total_words) {
  ++stats_.sorts;
  // Sample sort: gather samples (tree up), broadcast splitters (tree down),
  // one partition all-to-all.  Local sorts are free.
  charge_rounds(2 * collective_depth() + 1, 2 * total_words);
}

void Engine::charge_rounds(std::size_t rounds, std::size_t words) {
  stats_.rounds += rounds;
  stats_.words_communicated += words;
  if (!phase_stack_.empty()) stats_.phase_rounds[phase_stack_.back()] += rounds;
}

void Engine::note_alloc(std::size_t words) {
  stats_.live_words += words;
  stats_.peak_global_words = std::max(stats_.peak_global_words,
                                      stats_.live_words);
  if (cfg_.global_budget_words > 0) {
    MPCMST_CHECK(stats_.live_words <= cfg_.global_budget_words,
                 "global memory budget exceeded: live=" << stats_.live_words
                     << " budget=" << cfg_.global_budget_words);
  }
}

void Engine::note_free(std::size_t words) noexcept {
  stats_.live_words -= std::min(stats_.live_words, words);
}

void Engine::check_balanced(std::size_t total_words) const {
  if (!cfg_.enforce_local) return;
  const std::size_t per_machine =
      (total_words + cfg_.machines - 1) / cfg_.machines;
  const auto limit = static_cast<std::size_t>(
      cfg_.block_slack * static_cast<double>(cfg_.local_capacity));
  MPCMST_CHECK(per_machine <= limit,
               "balanced block of " << per_machine
                   << " words/machine exceeds local capacity "
                   << cfg_.local_capacity << " (slack " << cfg_.block_slack
                   << ")");
}

void Engine::push_phase(std::string name) {
  phase_stack_.push_back(std::move(name));
  phase_start_ns_.push_back(metrics_enabled() ? metrics_now_ns() : 0);
}

void Engine::pop_phase() {
  MPCMST_ASSERT(!phase_stack_.empty(), "phase stack underflow");
  const std::uint64_t t0 = phase_start_ns_.back();
  phase_start_ns_.pop_back();
  if (t0 != 0) {
    // The wall-clock sibling of the phase_rounds attribution: one trace
    // event plus a per-phase latency sample.  Registration cost (a mutex +
    // map lookup) is per phase pop, not per charged round — the pipeline
    // pops phases a few thousand times per build at most.
    const std::string& name = phase_stack_.back();
    const std::uint64_t dur = metrics_now_ns() - t0;
    MetricsRegistry::instance()
        .histogram("mpcmst_build_phase_seconds",
                   "phase=\"" + name + "\"")
        .record(dur);
    TraceBuffer::instance().append("mpc:" + name, t0 / 1000, dur / 1000);
  }
  phase_stack_.pop_back();
}

void Engine::reset_meters() {
  const std::size_t live = stats_.live_words;
  stats_ = Stats{};
  stats_.live_words = live;
  stats_.peak_global_words = live;
}

}  // namespace mpcmst::mpc
