// Dist<T>: a distributed array of trivially-copyable records.
//
// Storage is a flat vector partitioned into balanced blocks of
// ceil(N / machines) elements; machine i owns block i.  This matches the
// "inputs and intermediates are spread evenly across machines" convention of
// MPC algorithm descriptions.  Every allocation / resize is registered with
// the engine for global-memory accounting and balanced-block capacity checks.
//
// Dist is move-only; use clone() for an explicit copy (it allocates).
#pragma once

#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "mpc/engine.hpp"

namespace mpcmst::mpc {

template <class T>
constexpr std::size_t words_per() {
  static_assert(std::is_trivially_copyable_v<T>,
                "Dist<T> requires trivially copyable records");
  return (sizeof(T) + 7) / 8;
}

template <class T>
class Dist {
 public:
  explicit Dist(Engine& eng) : eng_(&eng) {}

  Dist(Engine& eng, std::vector<T> data) : eng_(&eng), data_(std::move(data)) {
    account_alloc();
  }

  Dist(Dist&& o) noexcept : eng_(o.eng_), data_(std::move(o.data_)) {
    o.data_.clear();
    o.eng_ = nullptr;
  }

  Dist& operator=(Dist&& o) noexcept {
    if (this != &o) {
      release();
      eng_ = o.eng_;
      data_ = std::move(o.data_);
      o.data_.clear();
      o.eng_ = nullptr;
    }
    return *this;
  }

  Dist(const Dist&) = delete;
  Dist& operator=(const Dist&) = delete;

  ~Dist() { release(); }

  Dist clone() const {
    MPCMST_ASSERT(eng_, "clone of moved-from Dist");
    return Dist(*eng_, data_);
  }

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  std::size_t words() const noexcept { return data_.size() * words_per<T>(); }

  Engine& engine() const {
    MPCMST_ASSERT(eng_, "engine() on moved-from Dist");
    return *eng_;
  }

  /// Simulator-internal backing store.  Algorithm code must only touch this
  /// through the primitives in mpc/ops.hpp (which charge rounds); tests and
  /// oracles may read it freely.
  std::vector<T>& local() noexcept { return data_; }
  const std::vector<T>& local() const noexcept { return data_; }

  /// Replace the contents, adjusting the memory accounting.
  void replace(std::vector<T> new_data) {
    MPCMST_ASSERT(eng_, "replace on moved-from Dist");
    eng_->note_free(words());
    data_ = std::move(new_data);
    account_alloc();
  }

  /// Append records in place.  The accounting mirrors the copying
  /// realization (materialize the merged array, then retire the old
  /// blocks), so peak-memory tracking is byte-identical to
  /// `*this = concat(*this, more)` while the data itself grows amortized
  /// instead of re-copying the accumulated prefix every call.
  void append(const std::vector<T>& more) {
    MPCMST_ASSERT(eng_, "append on moved-from Dist");
    const std::size_t old_words = words();
    data_.insert(data_.end(), more.begin(), more.end());
    eng_->note_alloc(words());
    eng_->check_balanced(words());
    eng_->note_free(old_words);
  }

 private:
  void account_alloc() {
    eng_->note_alloc(words());
    eng_->check_balanced(words());
  }

  void release() noexcept {
    if (eng_) eng_->note_free(words());
    eng_ = nullptr;
    data_.clear();
  }

  Engine* eng_ = nullptr;
  std::vector<T> data_;
};

}  // namespace mpcmst::mpc
