// O(1)-round MPC primitives over Dist<T>.
//
// Every function charges the engine its round and communication cost under
// the standard low-space MPC cost model (see mpc/engine.hpp).  The semantics
// of each primitive are exactly those of its distributed implementation
// ([GSZ11]: sorting, prefix sums and searching in O(1) MPC rounds); the
// simulator realizes them with equivalent sequential code and charges the
// model cost, so measured round counts are structural properties of the
// algorithms, not implementation artifacts.
//
// Conventions:
//   - "free" primitives (map / for_each / tabulate) perform no communication:
//     they transform each record in place on its machine;
//   - size-changing primitives (filter / concat / flat_map) include the cost
//     of re-balancing blocks (prefix count + one exchange);
//   - joins assume 64-bit keys (use pack2 for composite keys).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "mpc/dist.hpp"

namespace mpcmst::mpc {

/// Pack two 32-bit-safe non-negative values into one 64-bit join key.
inline std::uint64_t pack2(std::uint64_t hi, std::uint64_t lo) {
  MPCMST_ASSERT(hi < (1ULL << 32) && lo < (1ULL << 32),
                "pack2 operands must fit in 32 bits: " << hi << "," << lo);
  return (hi << 32) | lo;
}

// ---------------------------------------------------------------------------
// Creation / materialization
// ---------------------------------------------------------------------------

/// Place already-distributed input: the model assumes the input is spread
/// across machines, so this charges no rounds.
template <class T>
Dist<T> scatter(Engine& eng, std::vector<T> data) {
  return Dist<T>(eng, std::move(data));
}

/// Create n records locally (each machine fills its block): free.
template <class T, class F>
Dist<T> tabulate(Engine& eng, std::size_t n, F&& f) {
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(f(i));
  return Dist<T>(eng, std::move(v));
}

/// Collect a distributed array to one place (tree gather).  Used for final
/// outputs and tiny summaries; charges a collective.
template <class T>
std::vector<T> gather(const Dist<T>& d) {
  d.engine().charge_collective(d.words(), words_per<T>());
  return d.local();
}

// ---------------------------------------------------------------------------
// Local (zero-round) transforms
// ---------------------------------------------------------------------------

template <class T, class F>
void for_each(Dist<T>& d, F&& f) {
  for (T& x : d.local()) f(x);
}

template <class T, class F>
void for_each_indexed(Dist<T>& d, F&& f) {
  auto& v = d.local();
  for (std::size_t i = 0; i < v.size(); ++i) f(i, v[i]);
}

template <class U, class T, class F>
Dist<U> map(const Dist<T>& d, F&& f) {
  std::vector<U> out;
  out.reserve(d.size());
  for (const T& x : d.local()) out.push_back(f(x));
  return Dist<U>(d.engine(), std::move(out));
}

/// Element-wise combine of two aligned distributed arrays (same size, same
/// block layout): free, like map.
template <class U, class A, class B, class F>
Dist<U> map2(const Dist<A>& a, const Dist<B>& b, F&& f) {
  MPCMST_ASSERT(a.size() == b.size(), "map2: size mismatch " << a.size()
                                          << " vs " << b.size());
  std::vector<U> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(f(a.local()[i], b.local()[i]));
  return Dist<U>(a.engine(), std::move(out));
}

// ---------------------------------------------------------------------------
// Size-changing transforms (charge compaction: prefix count + exchange)
// ---------------------------------------------------------------------------

template <class T, class P>
Dist<T> filter(const Dist<T>& d, P&& pred) {
  Engine& eng = d.engine();
  std::vector<T> out;
  for (const T& x : d.local())
    if (pred(x)) out.push_back(x);
  eng.charge_collective(8);            // prefix counts for target offsets
  eng.charge_exchange(out.size() * words_per<T>());
  return Dist<T>(eng, std::move(out));
}

/// Emit zero or more records per input record; `f(x, emit)`.
template <class U, class T, class F>
Dist<U> flat_map(const Dist<T>& d, F&& f) {
  Engine& eng = d.engine();
  std::vector<U> out;
  auto emit = [&out](U u) { out.push_back(u); };
  for (const T& x : d.local()) f(x, emit);
  eng.charge_collective(8);
  eng.charge_exchange(out.size() * words_per<U>());
  return Dist<U>(eng, std::move(out));
}

template <class T>
Dist<T> concat(const Dist<T>& a, const Dist<T>& b) {
  Engine& eng = a.engine();
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.local().begin(), a.local().end());
  out.insert(out.end(), b.local().begin(), b.local().end());
  eng.charge_exchange(out.size() * words_per<T>());  // re-balance blocks
  return Dist<T>(eng, std::move(out));
}

// ---------------------------------------------------------------------------
// Sorting ([GSZ11] sample sort: O(1) rounds)
// ---------------------------------------------------------------------------

/// Stable sort by a key projection (key must be < comparable).
template <class T, class KeyF>
void sort_by(Dist<T>& d, KeyF&& key) {
  d.engine().charge_sort(d.words());
  std::stable_sort(d.local().begin(), d.local().end(),
                   [&](const T& a, const T& b) { return key(a) < key(b); });
}

// ---------------------------------------------------------------------------
// Reductions and prefix scans (aggregation trees)
// ---------------------------------------------------------------------------

template <class U, class T, class GetF, class OpF>
U reduce(const Dist<T>& d, GetF&& get, OpF&& op, U init) {
  d.engine().charge_collective(8);
  U acc = init;
  for (const T& x : d.local()) acc = op(acc, get(x));
  return acc;
}

/// Exclusive prefix scan of get(x) under op; returns the prefix for each
/// element in order.
template <class U, class T, class GetF, class OpF>
Dist<U> exclusive_prefix(const Dist<T>& d, GetF&& get, OpF&& op, U init) {
  d.engine().charge_collective(8);
  d.engine().charge_collective(8);
  std::vector<U> out;
  out.reserve(d.size());
  U acc = init;
  for (const T& x : d.local()) {
    out.push_back(acc);
    acc = op(acc, get(x));
  }
  return Dist<U>(d.engine(), std::move(out));
}

/// Broadcast a small value to all machines.
template <class T>
T broadcast(Engine& eng, T value) {
  eng.charge_collective(words_per<T>() * eng.machines(), words_per<T>());
  return value;
}

// ---------------------------------------------------------------------------
// Keyed operations (sort + boundary carry)
// ---------------------------------------------------------------------------

template <class K, class V>
struct KeyVal {
  K key;
  V val;
};

/// Group records by key(x) and reduce val(x) within each group.
/// Cost: one sort + one boundary-carry round.
template <class K, class V, class T, class KeyF, class ValF, class OpF>
Dist<KeyVal<K, V>> reduce_by_key(const Dist<T>& d, KeyF&& key, ValF&& val,
                                 OpF&& op) {
  Engine& eng = d.engine();
  std::vector<KeyVal<K, V>> kv;
  kv.reserve(d.size());
  for (const T& x : d.local()) kv.push_back({key(x), val(x)});
  eng.charge_sort(kv.size() * words_per<KeyVal<K, V>>());
  std::stable_sort(kv.begin(), kv.end(),
                   [](const auto& a, const auto& b) { return a.key < b.key; });
  std::vector<KeyVal<K, V>> out;
  for (std::size_t i = 0; i < kv.size();) {
    std::size_t j = i;
    V acc = kv[i].val;
    for (++j; j < kv.size() && kv[j].key == kv[i].key; ++j)
      acc = op(acc, kv[j].val);
    out.push_back({kv[i].key, acc});
    i = j;
  }
  eng.charge_exchange(out.size() * words_per<KeyVal<K, V>>());
  return Dist<KeyVal<K, V>>(eng, std::move(out));
}

/// Apply `f(first, last)` to each maximal run of equal keys after sorting the
/// array by key.  Cost: one sort + one boundary-carry round.  This realizes
/// segmented scans/reductions ("sorting and prefix-sum" steps in the paper).
template <class T, class KeyF, class F>
void sorted_group_apply(Dist<T>& d, KeyF&& key, F&& f) {
  sort_by(d, key);
  d.engine().charge_exchange(8);  // boundary carry between adjacent machines
  auto& v = d.local();
  for (std::size_t i = 0; i < v.size();) {
    std::size_t j = i + 1;
    while (j < v.size() && !(key(v[i]) < key(v[j]))) ++j;
    f(v.data() + i, v.data() + j);
    i = j;
  }
}

/// Left join with unique 64-bit right keys: apply(left_record, right_or_null).
/// Cost: two sorts + one alignment round (sort-merge join with segmented
/// replication).
template <class L, class R, class LKeyF, class RKeyF, class ApplyF>
void join_unique(Dist<L>& left, const Dist<R>& right, LKeyF&& lkey,
                 RKeyF&& rkey, ApplyF&& apply) {
  Engine& eng = left.engine();
  eng.charge_sort(left.words());
  eng.charge_sort(right.words());
  eng.charge_exchange(left.words());
  std::unordered_map<std::uint64_t, const R*> index;
  index.reserve(right.size() * 2);
  for (const R& r : right.local()) {
    auto [it, inserted] = index.emplace(rkey(r), &r);
    MPCMST_ASSERT(inserted, "join_unique: duplicate right key " << rkey(r));
  }
  for (L& l : left.local()) {
    auto it = index.find(lkey(l));
    apply(l, it == index.end() ? nullptr : it->second);
  }
}

/// Interval-stabbing join: each query (group, point) finds the unique
/// interval (group, lo, hi) with lo <= point <= hi among *disjoint* intervals
/// of its group; apply(query, interval_or_null).
/// Cost: two sorts + one alignment round.
template <class Q, class I, class QKeyF, class QPointF, class IKeyF,
          class ILoF, class IHiF, class ApplyF>
void stab_join(Dist<Q>& queries, const Dist<I>& intervals, QKeyF&& qkey,
               QPointF&& qpoint, IKeyF&& ikey, ILoF&& ilo, IHiF&& ihi,
               ApplyF&& apply) {
  Engine& eng = queries.engine();
  eng.charge_sort(queries.words());
  eng.charge_sort(intervals.words());
  eng.charge_exchange(queries.words());
  // (group, lo) -> interval, sorted for binary search.
  std::vector<const I*> sorted;
  sorted.reserve(intervals.size());
  for (const I& iv : intervals.local()) sorted.push_back(&iv);
  std::sort(sorted.begin(), sorted.end(), [&](const I* a, const I* b) {
    if (ikey(*a) != ikey(*b)) return ikey(*a) < ikey(*b);
    return ilo(*a) < ilo(*b);
  });
  for (Q& q : queries.local()) {
    const auto g = qkey(q);
    const auto p = qpoint(q);
    // Last interval with (group, lo) <= (g, p).
    auto it = std::upper_bound(
        sorted.begin(), sorted.end(), std::make_pair(g, p),
        [&](const auto& probe, const I* iv) {
          if (probe.first != ikey(*iv)) return probe.first < ikey(*iv);
          return probe.second < ilo(*iv);
        });
    const I* hit = nullptr;
    if (it != sorted.begin()) {
      const I* cand = *(it - 1);
      if (ikey(*cand) == g && ilo(*cand) <= p && p <= ihi(*cand)) hit = cand;
    }
    apply(q, hit);
  }
}

}  // namespace mpcmst::mpc
