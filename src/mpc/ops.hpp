// O(1)-round MPC primitives over Dist<T>.
//
// Every function charges the engine its round and communication cost under
// the standard low-space MPC cost model (see mpc/engine.hpp).  The semantics
// of each primitive are exactly those of its distributed implementation
// ([GSZ11]: sorting, prefix sums and searching in O(1) MPC rounds); the
// simulator realizes them with equivalent sequential code and charges the
// model cost, so measured round counts are structural properties of the
// algorithms, not implementation artifacts.
//
// Conventions:
//   - "free" primitives (map / for_each / tabulate) perform no communication:
//     they transform each record in place on its machine;
//   - size-changing primitives (filter / concat / flat_map) include the cost
//     of re-balancing blocks (prefix count + one exchange);
//   - joins assume 64-bit keys (use pack2 for composite keys).
//
// Realization note: the charged costs model [GSZ11] sample sort, but the
// simulator executes every sort and join over the LSD radix path in
// common/radix.hpp whenever the key order-embeds into 64 bits (every key the
// pipeline emits does — pack2 keys, vertex ids, ranks, sign-biased weights).
// Joins radix-order one side into flat key columns and probe them (dense id
// keyspaces get a direct-address table; only the sparse-and-large shape
// still builds a hash map), and sort/merge temporaries lease from the
// engine's ScratchArena, so the sorting paths settle into zero steady-state
// allocation.  The radix sorts are stable on the same keys the comparators
// ordered, so results stay byte-identical to the comparator realization —
// and so do the charged rounds/words.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <numeric>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/radix.hpp"
#include "mpc/dist.hpp"

namespace mpcmst::mpc {

/// Pack two 32-bit-safe non-negative values into one 64-bit join key.
inline std::uint64_t pack2(std::uint64_t hi, std::uint64_t lo) {
  MPCMST_ASSERT(hi < (1ULL << 32) && lo < (1ULL << 32),
                "pack2 operands must fit in 32 bits: " << hi << "," << lo);
  return (hi << 32) | lo;
}

// ---------------------------------------------------------------------------
// Creation / materialization
// ---------------------------------------------------------------------------

/// Place already-distributed input: the model assumes the input is spread
/// across machines, so this charges no rounds.
template <class T>
Dist<T> scatter(Engine& eng, std::vector<T> data) {
  return Dist<T>(eng, std::move(data));
}

/// Create n records locally (each machine fills its block): free.
template <class T, class F>
Dist<T> tabulate(Engine& eng, std::size_t n, F&& f) {
  eng.note_pass();
  std::vector<T> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(f(i));
  return Dist<T>(eng, std::move(v));
}

/// Collect a distributed array to one place (tree gather).  Used for final
/// outputs and tiny summaries; charges a collective.
template <class T>
std::vector<T> gather(const Dist<T>& d) {
  d.engine().note_pass();
  d.engine().charge_collective(d.words(), words_per<T>());
  return d.local();
}

// ---------------------------------------------------------------------------
// Local (zero-round) transforms
// ---------------------------------------------------------------------------

template <class T, class F>
void for_each(Dist<T>& d, F&& f) {
  d.engine().note_pass();
  for (T& x : d.local()) f(x);
}

template <class T, class F>
void for_each_indexed(Dist<T>& d, F&& f) {
  d.engine().note_pass();
  auto& v = d.local();
  for (std::size_t i = 0; i < v.size(); ++i) f(i, v[i]);
}

template <class U, class T, class F>
Dist<U> map(const Dist<T>& d, F&& f) {
  d.engine().note_pass();
  std::vector<U> out;
  out.reserve(d.size());
  for (const T& x : d.local()) out.push_back(f(x));
  return Dist<U>(d.engine(), std::move(out));
}

/// Element-wise combine of two aligned distributed arrays (same size, same
/// block layout): free, like map.
template <class U, class A, class B, class F>
Dist<U> map2(const Dist<A>& a, const Dist<B>& b, F&& f) {
  MPCMST_ASSERT(a.size() == b.size(), "map2: size mismatch " << a.size()
                                          << " vs " << b.size());
  a.engine().note_pass();
  std::vector<U> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(f(a.local()[i], b.local()[i]));
  return Dist<U>(a.engine(), std::move(out));
}

// ---------------------------------------------------------------------------
// Size-changing transforms (charge compaction: prefix count + exchange)
// ---------------------------------------------------------------------------

template <class T, class P>
Dist<T> filter(const Dist<T>& d, P&& pred) {
  Engine& eng = d.engine();
  eng.note_pass();
  std::vector<T> out;
  for (const T& x : d.local())
    if (pred(x)) out.push_back(x);
  eng.charge_collective(8);            // prefix counts for target offsets
  eng.charge_exchange(out.size() * words_per<T>());
  return Dist<T>(eng, std::move(out));
}

/// Emit zero or more records per input record; `f(x, emit)`.
template <class U, class T, class F>
Dist<U> flat_map(const Dist<T>& d, F&& f) {
  Engine& eng = d.engine();
  eng.note_pass();
  std::vector<U> out;
  auto emit = [&out](U u) { out.push_back(u); };
  for (const T& x : d.local()) f(x, emit);
  eng.charge_collective(8);
  eng.charge_exchange(out.size() * words_per<U>());
  return Dist<U>(eng, std::move(out));
}

template <class T>
Dist<T> concat(const Dist<T>& a, const Dist<T>& b) {
  Engine& eng = a.engine();
  eng.note_pass();
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.local().begin(), a.local().end());
  out.insert(out.end(), b.local().begin(), b.local().end());
  eng.charge_exchange(out.size() * words_per<T>());  // re-balance blocks
  return Dist<T>(eng, std::move(out));
}

/// `a = concat(a, b)` without re-copying a's accumulated prefix: same
/// model cost and the same memory-accounting sequence as the concat form
/// (the model's merged array does not care which buffer holds it), but the
/// level-accumulation loops (path entries, LCA hops) go from quadratic to
/// linear copying.
template <class T>
void append(Dist<T>& a, const Dist<T>& b) {
  a.engine().note_pass();
  a.engine().charge_exchange((a.size() + b.size()) * words_per<T>());
  a.append(b.local());
}

// ---------------------------------------------------------------------------
// Sorting ([GSZ11] sample sort: O(1) rounds)
// ---------------------------------------------------------------------------

/// Stable sort by a key projection (key must be < comparable).  Integral
/// keys (up to 64 bits, signed or unsigned) take the radix path; anything
/// else falls back to a comparator sort.  Both are stable on the same key
/// order, so the choice is invisible to callers.
template <class T, class KeyF>
void sort_by(Dist<T>& d, KeyF&& key) {
  d.engine().note_pass();
  d.engine().charge_sort(d.words());
  using K = std::decay_t<std::invoke_result_t<KeyF&, const T&>>;
  if constexpr (is_radix_sortable_v<K>) {
    radix_sort_records(d.local().data(), d.local().size(),
                       d.engine().scratch(), key);
  } else {
    std::stable_sort(d.local().begin(), d.local().end(),
                     [&](const T& a, const T& b) { return key(a) < key(b); });
  }
}

/// Stable sort by the composite key (hi(x), lo(x)), compared
/// lexicographically.  One sort charge — a composite key is still one key in
/// the model (the pack2 convention); the simulator realizes it as two stable
/// LSD passes, so components need not fit one packed word.  Both projections
/// must return integral types.
template <class T, class HiF, class LoF>
void sort_by2(Dist<T>& d, HiF&& hi, LoF&& lo) {
  d.engine().note_pass();
  d.engine().charge_sort(d.words());
  radix_sort_records2(d.local().data(), d.local().size(), d.engine().scratch(),
                      hi, lo);
}

// ---------------------------------------------------------------------------
// Reductions and prefix scans (aggregation trees)
// ---------------------------------------------------------------------------

template <class U, class T, class GetF, class OpF>
U reduce(const Dist<T>& d, GetF&& get, OpF&& op, U init) {
  d.engine().note_pass();
  d.engine().charge_collective(8);
  U acc = init;
  for (const T& x : d.local()) acc = op(acc, get(x));
  return acc;
}

/// Exclusive prefix scan of get(x) under op; returns the prefix for each
/// element in order.
template <class U, class T, class GetF, class OpF>
Dist<U> exclusive_prefix(const Dist<T>& d, GetF&& get, OpF&& op, U init) {
  d.engine().note_pass();
  d.engine().charge_collective(8);
  d.engine().charge_collective(8);
  std::vector<U> out;
  out.reserve(d.size());
  U acc = init;
  for (const T& x : d.local()) {
    out.push_back(acc);
    acc = op(acc, get(x));
  }
  return Dist<U>(d.engine(), std::move(out));
}

/// Broadcast a small value to all machines.
template <class T>
T broadcast(Engine& eng, T value) {
  eng.charge_collective(words_per<T>() * eng.machines(), words_per<T>());
  return value;
}

// ---------------------------------------------------------------------------
// Keyed operations (sort + boundary carry)
// ---------------------------------------------------------------------------

template <class K, class V>
struct KeyVal {
  K key;
  V val;
};

/// Group records by key(x) and reduce val(x) within each group.
/// Cost: one sort + one boundary-carry round.  Radix-sortable keys sort the
/// 16-byte (key, val) records directly (LSD scatter of the records — no
/// permutation array, no final gather); values combine in input order
/// within each group, exactly as the stable comparator sort produced.
template <class K, class V, class T, class KeyF, class ValF, class OpF>
Dist<KeyVal<K, V>> reduce_by_key(const Dist<T>& d, KeyF&& key, ValF&& val,
                                 OpF&& op) {
  Engine& eng = d.engine();
  const std::size_t n = d.size();
  eng.note_pass(3);  // materialize kv, sort, group-scan
  eng.charge_sort(n * words_per<KeyVal<K, V>>());
  const auto& v = d.local();
  std::vector<KeyVal<K, V>> kv;
  kv.reserve(n);
  for (const T& x : v) kv.push_back({key(x), val(x)});
  if constexpr (is_radix_sortable_v<K>) {
    radix_sort_records_direct(kv.data(), n, eng.scratch(),
                              [](const KeyVal<K, V>& x) { return x.key; });
  } else {
    std::stable_sort(
        kv.begin(), kv.end(),
        [](const auto& a, const auto& b) { return a.key < b.key; });
  }
  std::vector<KeyVal<K, V>> out;
  for (std::size_t i = 0; i < kv.size();) {
    std::size_t j = i;
    V acc = kv[i].val;
    for (++j; j < kv.size() && kv[j].key == kv[i].key; ++j)
      acc = op(acc, kv[j].val);
    out.push_back({kv[i].key, acc});
    i = j;
  }
  eng.charge_exchange(out.size() * words_per<KeyVal<K, V>>());
  return Dist<KeyVal<K, V>>(eng, std::move(out));
}

/// Apply `f(first, last)` to each maximal run of equal keys after sorting the
/// array by key.  Cost: one sort + one boundary-carry round.  This realizes
/// segmented scans/reductions ("sorting and prefix-sum" steps in the paper).
template <class T, class KeyF, class F>
void sorted_group_apply(Dist<T>& d, KeyF&& key, F&& f) {
  sort_by(d, key);
  d.engine().note_pass();  // group scan (the sort noted its own pass)
  d.engine().charge_exchange(8);  // boundary carry between adjacent machines
  auto& v = d.local();
  for (std::size_t i = 0; i < v.size();) {
    std::size_t j = i + 1;
    while (j < v.size() && !(key(v[i]) < key(v[j]))) ++j;
    f(v.data() + i, v.data() + j);
    i = j;
  }
}

/// Left join with unique 64-bit right keys: apply(left_record, right_or_null).
/// Cost: two sorts + one alignment round.  Realized over the radix path:
/// the right key column is radix-ordered once (uniqueness checked on the
/// adjacent pairs), then every left record probes it by binary search — a
/// flat cache-resident column, no hash buckets, no pointer chasing, and the
/// large left side is never reordered.  Apply runs in left storage order,
/// the same visit order a hash-join realization would use.
template <class L, class R, class LKeyF, class RKeyF, class ApplyF>
void join_unique(Dist<L>& left, const Dist<R>& right, LKeyF&& lkey,
                 RKeyF&& rkey, ApplyF&& apply) {
  Engine& eng = left.engine();
  eng.note_pass(2);  // order the right key column, probe the left side
  eng.charge_sort(left.words());
  eng.charge_sort(right.words());
  eng.charge_exchange(left.words());
  const std::size_t ln = left.size();
  const std::size_t rn = right.size();
  ScratchArena& arena = eng.scratch();
  // Join keys are equality-only, so both sides cast straight to u64 (no
  // sign-bias: lkey and rkey may return different integral types and must
  // stay bit-comparable, exactly as a hash-map keyspace would be).
  auto rkeys = arena.lease(rn);
  auto rperm = arena.lease(ScratchArena::words_for(rn, 4));
  auto* rp = static_cast<std::uint32_t*>(rperm.bytes());
  {
    const auto& rv = right.local();
    for (std::size_t i = 0; i < rn; ++i)
      rkeys[i] = static_cast<std::uint64_t>(rkey(rv[i]));
  }
  radix_sort_perm(rkeys.data(), rp, rn, arena);
  // Checked before the empty-left early-out: the uniqueness invariant held
  // unconditionally in the hash-map realization and must keep asserting at
  // the call site that violated it.
  for (std::size_t j = 1; j < rn; ++j)
    MPCMST_ASSERT(rkeys[j] != rkeys[j - 1],
                  "join_unique: duplicate right key " << rkeys[j]);
  if (ln == 0) return;
  auto& lv = left.local();
  const auto& rv = right.local();
  constexpr std::uint32_t kNoMatch = ~std::uint32_t{0};
  const std::uint64_t max_key = rn ? rkeys[rn - 1] : 0;
  if (rn > 0 && max_key < 4 * rn + 1024) {
    // Dense right keys (vertex ids, cluster leaders — the common case):
    // direct-address table, one probe = one cache line.  Left-side sentinel
    // keys (1 << 63 opt-outs) fall outside the table and miss via the
    // bounds check.
    auto table = arena.lease(ScratchArena::words_for(max_key + 1, 4));
    auto* slot = static_cast<std::uint32_t*>(table.bytes());
    std::memset(slot, 0xff, (max_key + 1) * sizeof(std::uint32_t));
    for (std::size_t j = 0; j < rn; ++j) slot[rkeys[j]] = rp[j];
    for (std::size_t i = 0; i < ln; ++i) {
      const std::uint64_t k = static_cast<std::uint64_t>(lkey(lv[i]));
      const std::uint32_t s = k <= max_key ? slot[k] : kNoMatch;
      apply(lv[i], s == kNoMatch ? nullptr : &rv[s]);
    }
    return;
  }
  if (rn >= 8192) {
    // Sparse and large (pack2 composites over big sides, e.g. Euler arcs):
    // a hash table beats log(rn) cache-missing binary probes.
    std::unordered_map<std::uint64_t, std::uint32_t> index;
    index.reserve(rn * 2);
    for (std::size_t j = 0; j < rn; ++j) index.emplace(rkeys[j], rp[j]);
    for (std::size_t i = 0; i < ln; ++i) {
      const auto it = index.find(static_cast<std::uint64_t>(lkey(lv[i])));
      apply(lv[i], it == index.end() ? nullptr : &rv[it->second]);
    }
    return;
  }
  // Sparse and small: binary-probe the cache-resident sorted key column.
  for (std::size_t i = 0; i < ln; ++i) {
    const std::uint64_t k = static_cast<std::uint64_t>(lkey(lv[i]));
    std::size_t lo = 0, hi = rn;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (rkeys[mid] < k)
        lo = mid + 1;
      else
        hi = mid;
    }
    apply(lv[i], (lo < rn && rkeys[lo] == k) ? &rv[rp[lo]] : nullptr);
  }
}

/// Interval-stabbing join: each query (group, point) finds the unique
/// interval (group, lo, hi) with lo <= point <= hi among *disjoint* intervals
/// of its group; apply(query, interval_or_null).
/// Cost: two sorts + one alignment round.  When both sides' keys are
/// integral with matching signedness (every caller's are), the realization
/// radix-orders the interval side into flat (group, lo) columns and each
/// query binary-searches them — no pointer chasing, queries never reordered.
template <class Q, class I, class QKeyF, class QPointF, class IKeyF,
          class ILoF, class IHiF, class ApplyF>
void stab_join(Dist<Q>& queries, const Dist<I>& intervals, QKeyF&& qkey,
               QPointF&& qpoint, IKeyF&& ikey, ILoF&& ilo, IHiF&& ihi,
               ApplyF&& apply) {
  Engine& eng = queries.engine();
  eng.note_pass(2);  // order the interval columns, probe the queries
  eng.charge_sort(queries.words());
  eng.charge_sort(intervals.words());
  eng.charge_exchange(queries.words());
  using QK = std::decay_t<std::invoke_result_t<QKeyF&, const Q&>>;
  using QP = std::decay_t<std::invoke_result_t<QPointF&, const Q&>>;
  using IK = std::decay_t<std::invoke_result_t<IKeyF&, const I&>>;
  using IL = std::decay_t<std::invoke_result_t<ILoF&, const I&>>;
  using IH = std::decay_t<std::invoke_result_t<IHiF&, const I&>>;
  const auto& iv_all = intervals.local();
  auto& qv = queries.local();
  // The merge compares query keys against interval keys through
  // to_radix_key, which is only order-consistent across the two sides when
  // their signedness matches (the bias differs otherwise).
  constexpr bool kMergeable =
      is_radix_sortable_v<QK> && is_radix_sortable_v<QP> &&
      is_radix_sortable_v<IK> && is_radix_sortable_v<IL> &&
      is_radix_sortable_v<IH> &&
      std::is_signed_v<QK> == std::is_signed_v<IK> &&
      std::is_signed_v<QP> == std::is_signed_v<IL> &&
      std::is_signed_v<QP> == std::is_signed_v<IH>;
  if constexpr (kMergeable) {
    const std::size_t in = iv_all.size();
    const std::size_t qn = qv.size();
    if (qn == 0) return;
    ScratchArena& arena = eng.scratch();
    // Interval permutation by (group, lo): two stable LSD passes.
    auto iglo = arena.lease(in);   // ends sorted: lo column (aligned with ip)
    auto igrp = arena.lease(in);   // ends sorted: group column
    auto iperm = arena.lease(ScratchArena::words_for(in, 4));
    auto* ip = static_cast<std::uint32_t*>(iperm.bytes());
    for (std::size_t i = 0; i < in; ++i)
      iglo[i] = to_radix_key(ilo(iv_all[i]));
    radix_sort_perm(iglo.data(), ip, in, arena);
    for (std::size_t i = 0; i < in; ++i)
      igrp[i] = to_radix_key(ikey(iv_all[ip[i]]));
    radix_sort_u32_payload(igrp.data(), ip, in, arena);
    for (std::size_t i = 0; i < in; ++i)
      iglo[i] = to_radix_key(ilo(iv_all[ip[i]]));
    // Per-query binary search over the sorted (group, lo) columns — flat
    // arrays, no pointer chasing, and the (typically much larger) query
    // side is never reordered.
    for (Q& q : qv) {
      const std::uint64_t g = to_radix_key(qkey(q));
      const std::uint64_t p = to_radix_key(qpoint(q));
      // Last interval with (group, lo) <= (g, p).
      std::size_t lo_idx = 0, hi_idx = in;
      while (lo_idx < hi_idx) {
        const std::size_t mid = (lo_idx + hi_idx) / 2;
        if (igrp[mid] < g || (igrp[mid] == g && iglo[mid] <= p))
          lo_idx = mid + 1;
        else
          hi_idx = mid;
      }
      const I* hit = nullptr;
      if (lo_idx > 0 && igrp[lo_idx - 1] == g) {
        const I& cand = iv_all[ip[lo_idx - 1]];
        if (to_radix_key(ilo(cand)) <= p && p <= to_radix_key(ihi(cand)))
          hit = &cand;
      }
      apply(q, hit);
    }
  } else {
    // (group, lo) -> interval, sorted for per-query binary search.
    std::vector<const I*> sorted;
    sorted.reserve(iv_all.size());
    for (const I& iv : iv_all) sorted.push_back(&iv);
    std::sort(sorted.begin(), sorted.end(), [&](const I* a, const I* b) {
      if (ikey(*a) != ikey(*b)) return ikey(*a) < ikey(*b);
      return ilo(*a) < ilo(*b);
    });
    for (Q& q : qv) {
      const auto g = qkey(q);
      const auto p = qpoint(q);
      // Last interval with (group, lo) <= (g, p).
      auto it = std::upper_bound(
          sorted.begin(), sorted.end(), std::make_pair(g, p),
          [&](const auto& probe, const I* iv) {
            if (probe.first != ikey(*iv)) return probe.first < ikey(*iv);
            return probe.second < ilo(*iv);
          });
      const I* hit = nullptr;
      if (it != sorted.begin()) {
        const I* cand = *(it - 1);
        if (ikey(*cand) == g && ilo(*cand) <= p && p <= ihi(*cand)) hit = cand;
      }
      apply(q, hit);
    }
  }
}

}  // namespace mpcmst::mpc
