// Superlevel fusion: decouple *physical passes* from *charged rounds*.
//
// The per-level loops of the pipeline (pointer doubling, Borůvka phases,
// LCA descent/unwinding, the verify/sensitivity contraction passes) were
// realized as one-or-more array passes per logical level.  The charged cost
// model does not require that realization: charges are sums of per-primitive
// costs, and local computation is free.  A SuperlevelScope lets a consumer
// advance many logical levels in one arena-resident sweep while *mirroring*
// the unfused loop's charge sequence byte-identically:
//
//   - every mirror method below charges exactly what the primitive of the
//     same name in mpc/ops.hpp charges, given the same operand sizes;
//   - PhantomDist reproduces the note_alloc / check_balanced / note_free
//     sequence of a Dist the fused sweep no longer materializes (per-level
//     clone() snapshots, intermediate contribution arrays), so
//     peak_global_words tracking stays byte-identical;
//   - sweep() records the physical passes the fused code *actually*
//     performs (Stats::physical_passes) — the honest count, not a mirror.
//
// The contract is executable: tests/test_cost_model.cpp pins the charged
// rounds/peak of the full pipeline, generated from the unfused loops; the
// fused sweeps must reproduce them exactly.  The conceptual anchor is
// Robinson's single-round congested-clique result (see PAPERS.md and
// docs/PAPER_MAP.md): collapsing level work into fewer physical passes does
// not change what the model charges for it.
#pragma once

#include <cstddef>

#include "mpc/engine.hpp"

namespace mpcmst::mpc {

/// RAII mirror of an elided Dist<T>'s memory accounting: allocates `words`
/// on construction (with the balanced-block check Dist performs) and frees
/// them on destruction.  Move-only, like the Dist it stands in for.
class PhantomDist {
 public:
  PhantomDist(Engine& eng, std::size_t words) : eng_(&eng), words_(words) {
    eng_->note_alloc(words_);
    eng_->check_balanced(words_);
  }
  ~PhantomDist() { release(); }
  PhantomDist(PhantomDist&& o) noexcept : eng_(o.eng_), words_(o.words_) {
    o.eng_ = nullptr;
    o.words_ = 0;
  }
  PhantomDist& operator=(PhantomDist&& o) noexcept {
    if (this != &o) {
      release();
      eng_ = o.eng_;
      words_ = o.words_;
      o.eng_ = nullptr;
      o.words_ = 0;
    }
    return *this;
  }
  PhantomDist(const PhantomDist&) = delete;
  PhantomDist& operator=(const PhantomDist&) = delete;

  /// Free early (mirrors a Dist destroyed mid-scope).
  void release() noexcept {
    if (eng_) eng_->note_free(words_);
    eng_ = nullptr;
    words_ = 0;
  }

 private:
  Engine* eng_;
  std::size_t words_;
};

/// Charge mirrors for a fused sweep.  Each method charges byte-identically
/// to the ops.hpp primitive of the same name at the given operand sizes; the
/// caller is responsible for invoking them in the unfused loop's order with
/// the unfused loop's sizes.
class SuperlevelScope {
 public:
  SuperlevelScope(Engine& eng, const char* what) : eng_(&eng), what_(what) {}

  Engine& engine() const noexcept { return *eng_; }
  const char* what() const noexcept { return what_; }

  /// Mirror of mpc::join_unique(left, right, ...).
  void join_unique(std::size_t left_words, std::size_t right_words) {
    eng_->charge_sort(left_words);
    eng_->charge_sort(right_words);
    eng_->charge_exchange(left_words);
  }

  /// Mirror of mpc::stab_join(queries, intervals, ...).
  void stab_join(std::size_t query_words, std::size_t interval_words) {
    eng_->charge_sort(query_words);
    eng_->charge_sort(interval_words);
    eng_->charge_exchange(query_words);
  }

  /// Mirror of mpc::sort_by / sort_by2.
  void sort(std::size_t words) { eng_->charge_sort(words); }

  /// Mirror of mpc::reduce (aggregation-tree collective).
  void reduce() { eng_->charge_collective(8); }

  /// Mirror of the compaction charge of mpc::filter / flat_map.
  void resize(std::size_t out_words) {
    eng_->charge_collective(8);
    eng_->charge_exchange(out_words);
  }

  /// Mirror of the reduce_by_key charges *around* its output Dist: the sort
  /// of the (key, val) records and the re-balance exchange of the reduced
  /// output.  The output allocation itself is mirrored with phantom().
  void reduce_by_key(std::size_t kv_words, std::size_t out_words) {
    eng_->charge_sort(kv_words);
    eng_->charge_exchange(out_words);
  }

  /// Raw mirrors for bespoke sequences (concat/append re-balances etc.).
  void exchange(std::size_t words) { eng_->charge_exchange(words); }
  void collective(std::size_t total_words, std::size_t item_words = 8) {
    eng_->charge_collective(total_words, item_words);
  }

  /// Accounting stand-in for a Dist the sweep keeps virtual.
  PhantomDist phantom(std::size_t words) { return PhantomDist(*eng_, words); }

  /// Record the physical sweeps actually performed (not a mirror).
  void sweep(std::size_t n = 1) { eng_->note_pass(n); }

 private:
  Engine* eng_;
  const char* what_;
};

inline SuperlevelScope Engine::superlevel_scope(const char* what) {
  return SuperlevelScope(*this, what);
}

}  // namespace mpcmst::mpc
