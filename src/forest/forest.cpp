#include "forest/forest.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/check.hpp"
#include "mpc/ops.hpp"
#include "treeops/doubling.hpp"

namespace mpcmst::forest {

namespace {

using graph::Instance;
using graph::Vertex;
using graph::WEdge;

/// One component extracted from a forest instance: a single-root instance in
/// compact ids plus the maps back to the original ids.
struct Component {
  Instance instance;
  std::vector<Vertex> to_original;            // compact vertex -> original
  std::vector<std::int64_t> nontree_orig_id;  // compact edge -> original
};

struct Decomposition {
  std::vector<Component> components;
  std::size_t crossing_edges = 0;
  std::size_t rounds = 0;
  std::size_t peak_words = 0;
};

/// Find every vertex's component root by pointer doubling (a forest-aware
/// compute_depths), then split the instance.  O(log height) rounds.
Decomposition decompose(mpc::Engine& eng, const Instance& inst) {
  Decomposition out;
  const std::size_t n = inst.n();
  struct Ptr {
    Vertex v;
    Vertex ptr;
    Vertex ptr_parent;  // parent of ptr: self iff ptr is a root
  };
  std::vector<Ptr> init(n);
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex p = inst.tree.parent[v];
    init[v] = {static_cast<Vertex>(v), p, inst.tree.parent[p]};
  }
  auto state = mpc::scatter(eng, std::move(init));
  std::size_t iters = 0;
  while (true) {
    const std::int64_t open = mpc::reduce(
        state, [](const Ptr& p) { return std::int64_t(p.ptr != p.ptr_parent); },
        std::plus<>{}, std::int64_t{0});
    if (open == 0) break;
    ++iters;
    MPCMST_ASSERT(iters <= 70, "forest decomposition does not converge");
    const auto snapshot = state.clone();
    mpc::join_unique(
        state, snapshot, [](const Ptr& p) { return std::uint64_t(p.ptr); },
        [](const Ptr& p) { return std::uint64_t(p.v); },
        [](Ptr& p, const Ptr* t) {
          MPCMST_ASSERT(t, "forest decomposition: broken pointer");
          if (p.ptr == p.ptr_parent) return;  // already at a root
          p.ptr = t->ptr;
          p.ptr_parent = t->ptr_parent;
        });
  }
  out.rounds = eng.rounds();
  out.peak_words = eng.stats().peak_global_words;

  // Group vertices by root and compact ids (sorting by component in MPC
  // terms; realized host-side on the gathered roots).
  std::vector<Vertex> root_of(n);
  for (const Ptr& p : state.local()) root_of[p.v] = p.ptr;
  std::unordered_map<Vertex, std::size_t> comp_index;
  std::vector<std::vector<Vertex>> members;
  for (std::size_t v = 0; v < n; ++v) {
    const Vertex r = root_of[v];
    auto [it, fresh] = comp_index.emplace(r, members.size());
    if (fresh) members.emplace_back();
    members[it->second].push_back(static_cast<Vertex>(v));
  }
  std::vector<std::unordered_map<Vertex, Vertex>> compact(members.size());
  out.components.resize(members.size());
  for (std::size_t c = 0; c < members.size(); ++c) {
    Component& comp = out.components[c];
    comp.instance.tree.n = members[c].size();
    comp.to_original = members[c];
    for (std::size_t i = 0; i < members[c].size(); ++i)
      compact[c][members[c][i]] = static_cast<Vertex>(i);
    comp.instance.tree.parent.resize(members[c].size());
    comp.instance.tree.weight.resize(members[c].size());
    for (std::size_t i = 0; i < members[c].size(); ++i) {
      const Vertex v = members[c][i];
      comp.instance.tree.parent[i] = compact[c][inst.tree.parent[v]];
      comp.instance.tree.weight[i] =
          inst.tree.parent[v] == v ? 0 : inst.tree.weight[v];
      if (inst.tree.parent[v] == v)
        comp.instance.tree.root = static_cast<Vertex>(i);
    }
  }
  for (std::size_t e = 0; e < inst.nontree.size(); ++e) {
    const WEdge& edge = inst.nontree[e];
    if (root_of[edge.u] != root_of[edge.v]) {
      ++out.crossing_edges;
      continue;
    }
    const std::size_t c = comp_index[root_of[edge.u]];
    out.components[c].instance.nontree.push_back(
        {compact[c][edge.u], compact[c][edge.v], edge.w});
    out.components[c].nontree_orig_id.push_back(
        static_cast<std::int64_t>(e));
  }
  return out;
}

/// Run `body` per component on a fresh engine shaped like `eng`, metering
/// the parallel composition.
void run_components(mpc::Engine& eng, const Decomposition& dec,
                    ForestMeter& meter,
                    const std::function<void(const Component&,
                                             mpc::Engine&)>& body) {
  meter.rounds = dec.rounds;
  meter.peak_global_words = dec.peak_words;
  meter.components = dec.components.size();
  std::size_t max_rounds = 0;
  for (const Component& comp : dec.components) {
    mpc::Engine sub(eng.config());
    body(comp, sub);
    max_rounds = std::max(max_rounds, sub.rounds());
    meter.peak_global_words += sub.stats().peak_global_words;
  }
  meter.rounds += max_rounds;
}

}  // namespace

MsfVerifyResult verify_msf_mpc(mpc::Engine& eng, const Instance& inst) {
  MsfVerifyResult out;
  const Decomposition dec = decompose(eng, inst);
  out.crossing_edges = dec.crossing_edges;
  run_components(eng, dec, out.meter,
                 [&](const Component& comp, mpc::Engine& sub) {
                   const auto res = verify::verify_mst_mpc(sub, comp.instance);
                   out.violations += res.violations;
                 });
  // T is an MSF of G iff every component tree is an MST of its component
  // and no non-tree edge crosses components (otherwise T is not maximal).
  out.is_msf = out.violations == 0 && out.crossing_edges == 0;
  return out;
}

MsfSensitivityResult msf_sensitivity_mpc(mpc::Engine& eng,
                                         const Instance& inst) {
  MsfSensitivityResult out;
  const Decomposition dec = decompose(eng, inst);
  MPCMST_CHECK(dec.crossing_edges == 0,
               "msf_sensitivity: T is not a maximal spanning forest ("
                   << dec.crossing_edges << " crossing edges)");
  run_components(
      eng, dec, out.meter, [&](const Component& comp, mpc::Engine& sub) {
        const auto res = sensitivity::mst_sensitivity_mpc(sub, comp.instance);
        for (const auto& t : res.tree.local()) {
          auto mapped = t;
          mapped.v = comp.to_original[t.v];
          out.tree.push_back(mapped);
        }
        for (const auto& e : res.nontree.local()) {
          auto mapped = e;
          mapped.orig_id = comp.nontree_orig_id[e.orig_id];
          out.nontree.push_back(mapped);
        }
      });
  return out;
}

}  // namespace mpcmst::forest
