// Forest support (Remark 2.4): MSF verification and sensitivity when G may
// be disconnected and T is a rooted spanning *forest* (multiple self-parent
// roots in the parent array).
//
// Following the paper: first solve connectivity on the forest (each vertex
// finds its component root by pointer doubling, O(log D_T) rounds), then
// partition the edges by component and run the single-tree algorithms on
// every component *in parallel*.  The simulator executes components
// sequentially but meters them the way the model would run them:
//   rounds  = decomposition rounds + max over components,
//   memory  = decomposition peak + sum of component peaks.
// A non-tree edge joining two different components means T is not a maximal
// spanning forest of G, and verification rejects.
#pragma once

#include <cstddef>

#include "graph/instance.hpp"
#include "mpc/engine.hpp"
#include "sensitivity/sensitivity.hpp"
#include "verify/verifier.hpp"

namespace mpcmst::forest {

/// Combined meter for a parallel composition of per-component runs.
struct ForestMeter {
  std::size_t rounds = 0;            // decomposition + max component
  std::size_t peak_global_words = 0; // decomposition + sum of components
  std::size_t components = 0;
};

struct MsfVerifyResult {
  bool is_msf = false;
  std::size_t violations = 0;        // covering violations across components
  std::size_t crossing_edges = 0;    // non-tree edges joining two components
  ForestMeter meter;
};

/// Theorem 3.1 extended to forests (Remark 2.4).
MsfVerifyResult verify_msf_mpc(mpc::Engine& eng, const graph::Instance& inst);

struct MsfSensitivityResult {
  /// Concatenation of per-component results, in original vertex/edge ids.
  std::vector<sensitivity::TreeEdgeSens> tree;
  std::vector<sensitivity::NonTreeEdgeSens> nontree;
  ForestMeter meter;
};

/// Theorem 4.1 extended to forests (Remark 2.4).  All non-tree edges must
/// stay within components (T must be an MSF of G).
MsfSensitivityResult msf_sensitivity_mpc(mpc::Engine& eng,
                                         const graph::Instance& inst);

}  // namespace mpcmst::forest
