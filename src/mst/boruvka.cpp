#include "mst/boruvka.hpp"

#include <algorithm>
#include <functional>

#include "common/check.hpp"
#include "mpc/ops.hpp"

namespace mpcmst::mst {

namespace {

using graph::Vertex;
using graph::WEdge;
using graph::Weight;

struct Comp {
  Vertex v;
  Vertex comp;
};

struct BEdge {
  Vertex u, v;
  Weight w;
  Vertex cu, cv;
  std::int64_t id;
};

/// Chosen-edge payload: ordered by (w, id) for deterministic tie-breaking
/// (a total order on edges prevents contraction cycles beyond 2-cycles).
struct Pick {
  Weight w;
  std::int64_t id;
  Vertex cu, cv;
  Vertex u, v;

  bool less_than(const Pick& o) const {
    return w != o.w ? w < o.w : id < o.id;
  }
};

struct Ptr {
  Vertex c;
  Vertex ptr;
};

}  // namespace

MstResult mst_boruvka_mpc(mpc::Engine& eng, std::size_t n,
                          const std::vector<WEdge>& input) {
  mpc::PhaseScope phase(eng, "boruvka");
  MstResult out;

  mpc::Dist<Comp> comps = mpc::tabulate<Comp>(eng, n, [](std::size_t v) {
    return Comp{static_cast<Vertex>(v), static_cast<Vertex>(v)};
  });
  std::vector<BEdge> init;
  init.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i)
    init.push_back({input[i].u, input[i].v, input[i].w, input[i].u,
                    input[i].v, static_cast<std::int64_t>(i)});
  mpc::Dist<BEdge> edges = mpc::scatter(eng, std::move(init));

  while (true) {
    // Refresh endpoint components and drop intra-component edges.
    mpc::join_unique(
        edges, comps, [](const BEdge& e) { return std::uint64_t(e.u); },
        [](const Comp& c) { return std::uint64_t(c.v); },
        [](BEdge& e, const Comp* c) {
          MPCMST_ASSERT(c, "boruvka: missing component of u");
          e.cu = c->comp;
        });
    mpc::join_unique(
        edges, comps, [](const BEdge& e) { return std::uint64_t(e.v); },
        [](const Comp& c) { return std::uint64_t(c.v); },
        [](BEdge& e, const Comp* c) {
          MPCMST_ASSERT(c, "boruvka: missing component of v");
          e.cv = c->comp;
        });
    edges = mpc::filter(edges, [](const BEdge& e) { return e.cu != e.cv; });
    if (edges.empty()) break;
    ++out.phases;
    MPCMST_ASSERT(out.phases <= 64, "boruvka does not converge");

    // Minimum incident edge per component.
    struct Incident {
      Vertex comp;
      Pick pick;
    };
    mpc::Dist<Incident> incident = mpc::flat_map<Incident>(
        edges, [](const BEdge& e, auto&& emit) {
          const Pick p{e.w, e.id, e.cu, e.cv, e.u, e.v};
          emit(Incident{e.cu, p});
          emit(Incident{e.cv, p});
        });
    auto picks = mpc::reduce_by_key<std::uint64_t, Pick>(
        incident, [](const Incident& i) { return std::uint64_t(i.comp); },
        [](const Incident& i) { return i.pick; },
        [](const Pick& a, const Pick& b) { return a.less_than(b) ? a : b; });

    // Deduplicate edges chosen from both sides; record them in the forest.
    auto unique_picks = mpc::reduce_by_key<std::uint64_t, Pick>(
        picks, [](const auto& kv) { return std::uint64_t(kv.val.id); },
        [](const auto& kv) { return kv.val; },
        [](const Pick& a, const Pick&) { return a; });
    for (const auto& kv : mpc::gather(unique_picks)) {
      out.edges.push_back({kv.val.u, kv.val.v, kv.val.w});
      out.total_weight += kv.val.w;
    }

    // Contraction pointers: each component follows its chosen edge; mutual
    // pairs (2-cycles) are broken toward the smaller id.
    mpc::Dist<Ptr> ptrs = mpc::map<Ptr>(picks, [](const auto& kv) {
      const Vertex c = static_cast<Vertex>(kv.key);
      return Ptr{c, kv.val.cu == c ? kv.val.cv : kv.val.cu};
    });
    {
      const auto snapshot = ptrs.clone();
      mpc::join_unique(
          ptrs, snapshot, [](const Ptr& p) { return std::uint64_t(p.ptr); },
          [](const Ptr& p) { return std::uint64_t(p.c); },
          [](Ptr& p, const Ptr* t) {
            MPCMST_ASSERT(t, "boruvka: dangling pointer");
            if (t->ptr == p.c && p.c < p.ptr) p.ptr = p.c;  // 2-cycle break
          });
    }
    // Pointer-jump the pseudo-forest to stars.
    std::size_t jumps = 0;
    while (true) {
      const auto snapshot = ptrs.clone();
      bool changed = false;
      mpc::join_unique(
          ptrs, snapshot, [](const Ptr& p) { return std::uint64_t(p.ptr); },
          [](const Ptr& p) { return std::uint64_t(p.c); },
          [&](Ptr& p, const Ptr* t) {
            MPCMST_ASSERT(t, "boruvka: dangling pointer");
            if (p.ptr != t->ptr) {
              p.ptr = t->ptr;
              changed = true;
            }
          });
      if (!changed) break;
      ++jumps;
      MPCMST_ASSERT(jumps <= 70, "boruvka star contraction stalls");
    }
    // Relabel vertex components through the star roots.
    mpc::join_unique(
        comps, ptrs, [](const Comp& c) { return std::uint64_t(c.comp); },
        [](const Ptr& p) { return std::uint64_t(p.c); },
        [](Comp& c, const Ptr* p) {
          if (p != nullptr) c.comp = p->ptr;
        });
  }

  auto roots = mpc::reduce_by_key<std::uint64_t, std::int64_t>(
      comps, [](const Comp& c) { return std::uint64_t(c.comp); },
      [](const Comp&) { return std::int64_t{1}; }, std::plus<>{});
  out.components = roots.size();
  MPCMST_ASSERT(out.edges.size() + out.components == n,
                "boruvka: forest size mismatch");
  return out;
}

}  // namespace mpcmst::mst
