#include "mst/boruvka.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "mpc/ops.hpp"
#include "mpc/superlevel.hpp"

namespace mpcmst::mst {

namespace {

using graph::Vertex;
using graph::WEdge;
using graph::Weight;

struct Comp {
  Vertex v;
  Vertex comp;
};

struct BEdge {
  Vertex u, v;
  Weight w;
  Vertex cu, cv;
  std::int64_t id;
};

/// Chosen-edge payload: ordered by (w, id) for deterministic tie-breaking
/// (a total order on edges prevents contraction cycles beyond 2-cycles).
struct Pick {
  Weight w;
  std::int64_t id;
  Vertex cu, cv;
  Vertex u, v;

  bool less_than(const Pick& o) const {
    return w != o.w ? w < o.w : id < o.id;
  }
};

struct Ptr {
  Vertex c;
  Vertex ptr;
};

}  // namespace

MstResult mst_boruvka_mpc(mpc::Engine& eng, std::size_t n,
                          const std::vector<WEdge>& input) {
  mpc::PhaseScope phase(eng, "boruvka");
  MstResult out;

  // Superlevel fusion (mpc/superlevel.hpp): the per-phase chain — the two
  // endpoint-refresh joins, the intra-component filter, the min-incident
  // flat_map + reduce_by_key pair, the pick dedup, the 2-cycle break, the
  // star pointer-jumping loop, and the component relabel join — is per-edge
  // / per-component work over dense vertex-id keys, so each phase collapses
  // into one streaming sweep over the edges plus component-array passes.
  // The charge mirrors and PhantomDists replay the unfused primitives'
  // rounds / words / alloc interleaving byte-identically.
  auto sl = eng.superlevel_scope("boruvka");
  const std::size_t comps_words = n * mpc::words_per<Comp>();
  sl.sweep();  // tabulate's fill pass
  const mpc::PhantomDist comps_ph = sl.phantom(comps_words);
  std::vector<Vertex> comp(n);
  for (std::size_t v = 0; v < n; ++v) comp[v] = static_cast<Vertex>(v);

  std::vector<BEdge> init;
  init.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    MPCMST_ASSERT(input[i].u >= 0 && static_cast<std::size_t>(input[i].u) < n &&
                      input[i].v >= 0 &&
                      static_cast<std::size_t>(input[i].v) < n,
                  "boruvka: endpoint out of range");
    init.push_back({input[i].u, input[i].v, input[i].w, input[i].u,
                    input[i].v, static_cast<std::int64_t>(i)});
  }
  mpc::Dist<BEdge> edges = mpc::scatter(eng, std::move(init));

  struct Incident {
    Vertex comp;
    Pick pick;
  };
  constexpr std::size_t kKvWords =
      mpc::words_per<mpc::KeyVal<std::uint64_t, Pick>>();

  // Dense per-component scratch, reset sparsely via `touched` each phase.
  std::vector<Pick> best(n);
  std::vector<char> has(n, 0);
  std::vector<Vertex> touched;
  std::vector<Vertex> ptr(n, -1), ptr_next(n, -1);

  while (true) {
    // Refresh endpoint components, drop intra-component edges, and fold the
    // minimum incident pick per component — one sweep; mirrors of the two
    // joins, then the filter's compaction charge + the real re-materialized
    // edge Dist (alloc before the old one's free, as filter + move-assign).
    sl.join_unique(edges.words(), comps_words);
    sl.join_unique(edges.words(), comps_words);
    sl.sweep();
    touched.clear();
    std::vector<BEdge> kept;
    for (const BEdge& e : edges.local()) {
      BEdge f = e;
      f.cu = comp[static_cast<std::size_t>(f.u)];
      f.cv = comp[static_cast<std::size_t>(f.v)];
      if (f.cu == f.cv) continue;
      kept.push_back(f);
      const Pick p{f.w, f.id, f.cu, f.cv, f.u, f.v};
      for (const Vertex c : {f.cu, f.cv}) {
        const auto ci = static_cast<std::size_t>(c);
        if (!has[ci]) {
          has[ci] = 1;
          best[ci] = p;
          touched.push_back(c);
        } else if (p.less_than(best[ci])) {
          best[ci] = p;
        }
      }
    }
    sl.resize(kept.size() * mpc::words_per<BEdge>());
    {
      mpc::Dist<BEdge> filtered(eng, std::move(kept));
      edges = std::move(filtered);
    }
    if (edges.empty()) break;
    ++out.phases;
    MPCMST_ASSERT(out.phases <= 64, "boruvka does not converge");

    // Mirrors of the incident flat_map and the min-pick reduce_by_key.
    const std::size_t inc_words = 2 * edges.size() * mpc::words_per<Incident>();
    sl.resize(inc_words);
    const mpc::PhantomDist incident_ph = sl.phantom(inc_words);
    const std::size_t picks_words = touched.size() * kKvWords;
    sl.reduce_by_key(2 * edges.size() * kKvWords, picks_words);
    const mpc::PhantomDist picks_ph = sl.phantom(picks_words);

    // Deduplicate edges chosen from both sides; record them in the forest in
    // the unfused order (the dedup reduce_by_key emitted ids ascending, and
    // the gather visited that order).
    std::vector<std::int64_t> chosen_ids;
    chosen_ids.reserve(touched.size());
    for (const Vertex c : touched)
      chosen_ids.push_back(best[static_cast<std::size_t>(c)].id);
    std::sort(chosen_ids.begin(), chosen_ids.end());
    chosen_ids.erase(std::unique(chosen_ids.begin(), chosen_ids.end()),
                     chosen_ids.end());
    const std::size_t uniq_words = chosen_ids.size() * kKvWords;
    sl.reduce_by_key(picks_words, uniq_words);
    const mpc::PhantomDist uniq_ph = sl.phantom(uniq_words);
    sl.collective(uniq_words, kKvWords);  // the gather of the chosen edges
    for (const std::int64_t id : chosen_ids) {
      const auto i = static_cast<std::size_t>(id);
      out.edges.push_back({input[i].u, input[i].v, input[i].w});
      out.total_weight += input[i].w;
    }

    // Contraction pointers: each component follows its chosen edge; mutual
    // pairs (2-cycles) are broken toward the smaller id.  (Only the smaller
    // endpoint of a 2-cycle rewrites itself, so in-place matches the
    // snapshot-probing join.)
    const std::size_t ptrs_words = touched.size() * mpc::words_per<Ptr>();
    const mpc::PhantomDist ptrs_ph = sl.phantom(ptrs_words);
    for (const Vertex c : touched) {
      const Pick& p = best[static_cast<std::size_t>(c)];
      ptr[static_cast<std::size_t>(c)] = p.cu == c ? p.cv : p.cu;
    }
    {
      const mpc::PhantomDist snapshot_ph = sl.phantom(ptrs_words);
      sl.join_unique(ptrs_words, ptrs_words);
      sl.sweep();
      for (const Vertex c : touched) {
        const Vertex t = ptr[static_cast<std::size_t>(c)];
        MPCMST_ASSERT(has[static_cast<std::size_t>(t)],
                      "boruvka: dangling pointer");
        if (ptr[static_cast<std::size_t>(t)] == c && c < t)
          ptr[static_cast<std::size_t>(c)] = c;
      }
    }
    // Pointer-jump the pseudo-forest to stars.  Every iteration, including
    // the terminating no-change one, mirrors the snapshot clone + join the
    // unfused loop charged.
    std::size_t jumps = 0;
    while (true) {
      const mpc::PhantomDist snapshot_ph = sl.phantom(ptrs_words);
      sl.join_unique(ptrs_words, ptrs_words);
      sl.sweep();
      bool changed = false;
      for (const Vertex c : touched) {
        const auto ci = static_cast<std::size_t>(c);
        const Vertex t = ptr[ci];
        MPCMST_ASSERT(has[static_cast<std::size_t>(t)],
                      "boruvka: dangling pointer");
        ptr_next[ci] = ptr[static_cast<std::size_t>(t)];
        changed |= ptr_next[ci] != ptr[ci];
      }
      if (!changed) break;
      for (const Vertex c : touched) {
        const auto ci = static_cast<std::size_t>(c);
        ptr[ci] = ptr_next[ci];
      }
      ++jumps;
      MPCMST_ASSERT(jumps <= 70, "boruvka star contraction stalls");
    }
    // Relabel vertex components through the star roots (components with no
    // surviving incident edge keep their label, as the null-probe did).
    sl.join_unique(comps_words, ptrs_words);
    sl.sweep();
    for (std::size_t v = 0; v < n; ++v) {
      const auto c = static_cast<std::size_t>(comp[v]);
      if (has[c]) comp[v] = ptr[c];
    }

    for (const Vertex c : touched) has[static_cast<std::size_t>(c)] = 0;
  }

  // Root count (the unfused reduce_by_key over the component records).
  std::size_t components = 0;
  sl.sweep();
  for (std::size_t v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(comp[v]);
    if (!has[c]) {
      has[c] = 1;
      ++components;
    }
  }
  sl.reduce_by_key(n * mpc::words_per<mpc::KeyVal<std::uint64_t, std::int64_t>>(),
                   components *
                       mpc::words_per<mpc::KeyVal<std::uint64_t, std::int64_t>>());
  const mpc::PhantomDist roots_ph = sl.phantom(
      components * mpc::words_per<mpc::KeyVal<std::uint64_t, std::int64_t>>());
  out.components = components;
  MPCMST_ASSERT(out.edges.size() + out.components == n,
                "boruvka: forest size mismatch");
  return out;
}

}  // namespace mpcmst::mst
