// MST construction in MPC via Borůvka phases — the "related task" the paper
// positions itself against (§1: finding an MST needs Ω(log D_MST) rounds and
// the best linear-memory bound known is O(log n); this is that O(log n)
// algorithm, a PRAM-style simulation).
//
// Each phase: every component picks its minimum-weight incident edge
// (reduce-by-key), the resulting pseudo-forest is contracted by hash-coin
// star contraction (O(1) rounds per halving w.h.p.).  O(log n) phases.
//
// Ships as a library feature so downstream users can *produce* candidate
// trees to verify: mst_boruvka_mpc + verify_mst_mpc closes the loop.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/instance.hpp"
#include "mpc/engine.hpp"

namespace mpcmst::mst {

struct MstResult {
  /// Chosen MST/MSF edges (as input WEdge values).
  std::vector<graph::WEdge> edges;
  graph::Weight total_weight = 0;
  std::size_t components = 0;  // >1 when the input graph is disconnected
  std::size_t phases = 0;      // Borůvka phases (~log2 n)
};

/// Compute a minimum spanning forest of the n-vertex graph `edges`.
/// Deterministic for a fixed engine seed; ties broken by (weight, u, v).
MstResult mst_boruvka_mpc(mpc::Engine& eng, std::size_t n,
                          const std::vector<graph::WEdge>& edges);

}  // namespace mpcmst::mst
